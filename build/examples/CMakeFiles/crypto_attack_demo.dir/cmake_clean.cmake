file(REMOVE_RECURSE
  "CMakeFiles/crypto_attack_demo.dir/crypto_attack_demo.cpp.o"
  "CMakeFiles/crypto_attack_demo.dir/crypto_attack_demo.cpp.o.d"
  "crypto_attack_demo"
  "crypto_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
