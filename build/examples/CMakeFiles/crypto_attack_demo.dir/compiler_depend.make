# Empty compiler generated dependencies file for crypto_attack_demo.
# This may be replaced when dependencies are built.
