file(REMOVE_RECURSE
  "CMakeFiles/vlsa_tool.dir/vlsa_tool.cpp.o"
  "CMakeFiles/vlsa_tool.dir/vlsa_tool.cpp.o.d"
  "vlsa_tool"
  "vlsa_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
