# Empty compiler generated dependencies file for vlsa_tool.
# This may be replaced when dependencies are built.
