# Empty dependencies file for rtl_generator.
# This may be replaced when dependencies are built.
