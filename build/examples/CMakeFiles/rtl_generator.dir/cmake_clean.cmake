file(REMOVE_RECURSE
  "CMakeFiles/rtl_generator.dir/rtl_generator.cpp.o"
  "CMakeFiles/rtl_generator.dir/rtl_generator.cpp.o.d"
  "rtl_generator"
  "rtl_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
