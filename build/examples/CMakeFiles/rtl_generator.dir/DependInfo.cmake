
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/rtl_generator.cpp" "examples/CMakeFiles/rtl_generator.dir/rtl_generator.cpp.o" "gcc" "examples/CMakeFiles/rtl_generator.dir/rtl_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vlsa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vlsa_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/vlsa_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/multiplier/CMakeFiles/vlsa_multiplier.dir/DependInfo.cmake"
  "/root/repo/build/src/multiop/CMakeFiles/vlsa_multiop.dir/DependInfo.cmake"
  "/root/repo/build/src/approx/CMakeFiles/vlsa_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vlsa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vlsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adders/CMakeFiles/vlsa_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/vlsa_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vlsa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vlsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
