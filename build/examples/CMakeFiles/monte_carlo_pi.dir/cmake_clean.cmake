file(REMOVE_RECURSE
  "CMakeFiles/monte_carlo_pi.dir/monte_carlo_pi.cpp.o"
  "CMakeFiles/monte_carlo_pi.dir/monte_carlo_pi.cpp.o.d"
  "monte_carlo_pi"
  "monte_carlo_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monte_carlo_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
