# Empty compiler generated dependencies file for monte_carlo_pi.
# This may be replaced when dependencies are built.
