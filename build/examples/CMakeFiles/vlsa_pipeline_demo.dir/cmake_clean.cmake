file(REMOVE_RECURSE
  "CMakeFiles/vlsa_pipeline_demo.dir/vlsa_pipeline_demo.cpp.o"
  "CMakeFiles/vlsa_pipeline_demo.dir/vlsa_pipeline_demo.cpp.o.d"
  "vlsa_pipeline_demo"
  "vlsa_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
