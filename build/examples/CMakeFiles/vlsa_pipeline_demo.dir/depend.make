# Empty dependencies file for vlsa_pipeline_demo.
# This may be replaced when dependencies are built.
