file(REMOVE_RECURSE
  "CMakeFiles/recovery_ablation.dir/bench/recovery_ablation.cpp.o"
  "CMakeFiles/recovery_ablation.dir/bench/recovery_ablation.cpp.o.d"
  "bench/recovery_ablation"
  "bench/recovery_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
