# Empty dependencies file for recovery_ablation.
# This may be replaced when dependencies are built.
