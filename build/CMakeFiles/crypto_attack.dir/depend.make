# Empty dependencies file for crypto_attack.
# This may be replaced when dependencies are built.
