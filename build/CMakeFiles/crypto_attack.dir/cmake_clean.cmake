file(REMOVE_RECURSE
  "CMakeFiles/crypto_attack.dir/bench/crypto_attack.cpp.o"
  "CMakeFiles/crypto_attack.dir/bench/crypto_attack.cpp.o.d"
  "bench/crypto_attack"
  "bench/crypto_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
