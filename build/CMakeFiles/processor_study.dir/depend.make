# Empty dependencies file for processor_study.
# This may be replaced when dependencies are built.
