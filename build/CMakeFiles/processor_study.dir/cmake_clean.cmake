file(REMOVE_RECURSE
  "CMakeFiles/processor_study.dir/bench/processor_study.cpp.o"
  "CMakeFiles/processor_study.dir/bench/processor_study.cpp.o.d"
  "bench/processor_study"
  "bench/processor_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
