# Empty compiler generated dependencies file for k_sweep.
# This may be replaced when dependencies are built.
