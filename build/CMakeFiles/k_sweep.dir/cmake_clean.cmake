file(REMOVE_RECURSE
  "CMakeFiles/k_sweep.dir/bench/k_sweep.cpp.o"
  "CMakeFiles/k_sweep.dir/bench/k_sweep.cpp.o.d"
  "bench/k_sweep"
  "bench/k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
