file(REMOVE_RECURSE
  "CMakeFiles/ablation_sharing.dir/bench/ablation_sharing.cpp.o"
  "CMakeFiles/ablation_sharing.dir/bench/ablation_sharing.cpp.o.d"
  "bench/ablation_sharing"
  "bench/ablation_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
