# Empty compiler generated dependencies file for ablation_sharing.
# This may be replaced when dependencies are built.
