file(REMOVE_RECURSE
  "CMakeFiles/vlsa_latency.dir/bench/vlsa_latency.cpp.o"
  "CMakeFiles/vlsa_latency.dir/bench/vlsa_latency.cpp.o.d"
  "bench/vlsa_latency"
  "bench/vlsa_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
