# Empty dependencies file for vlsa_latency.
# This may be replaced when dependencies are built.
