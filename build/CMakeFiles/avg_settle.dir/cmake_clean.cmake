file(REMOVE_RECURSE
  "CMakeFiles/avg_settle.dir/bench/avg_settle.cpp.o"
  "CMakeFiles/avg_settle.dir/bench/avg_settle.cpp.o.d"
  "bench/avg_settle"
  "bench/avg_settle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avg_settle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
