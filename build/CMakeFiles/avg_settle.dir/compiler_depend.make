# Empty compiler generated dependencies file for avg_settle.
# This may be replaced when dependencies are built.
