file(REMOVE_RECURSE
  "CMakeFiles/fault_coverage.dir/bench/fault_coverage.cpp.o"
  "CMakeFiles/fault_coverage.dir/bench/fault_coverage.cpp.o.d"
  "bench/fault_coverage"
  "bench/fault_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
