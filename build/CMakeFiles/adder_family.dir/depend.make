# Empty dependencies file for adder_family.
# This may be replaced when dependencies are built.
