file(REMOVE_RECURSE
  "CMakeFiles/adder_family.dir/bench/adder_family.cpp.o"
  "CMakeFiles/adder_family.dir/bench/adder_family.cpp.o.d"
  "bench/adder_family"
  "bench/adder_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
