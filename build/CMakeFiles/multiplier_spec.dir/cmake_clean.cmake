file(REMOVE_RECURSE
  "CMakeFiles/multiplier_spec.dir/bench/multiplier_spec.cpp.o"
  "CMakeFiles/multiplier_spec.dir/bench/multiplier_spec.cpp.o.d"
  "bench/multiplier_spec"
  "bench/multiplier_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplier_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
