# Empty compiler generated dependencies file for multiplier_spec.
# This may be replaced when dependencies are built.
