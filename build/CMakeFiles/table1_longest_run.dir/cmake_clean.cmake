file(REMOVE_RECURSE
  "CMakeFiles/table1_longest_run.dir/bench/table1_longest_run.cpp.o"
  "CMakeFiles/table1_longest_run.dir/bench/table1_longest_run.cpp.o.d"
  "bench/table1_longest_run"
  "bench/table1_longest_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_longest_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
