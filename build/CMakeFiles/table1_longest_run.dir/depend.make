# Empty dependencies file for table1_longest_run.
# This may be replaced when dependencies are built.
