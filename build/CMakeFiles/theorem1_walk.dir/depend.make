# Empty dependencies file for theorem1_walk.
# This may be replaced when dependencies are built.
