file(REMOVE_RECURSE
  "CMakeFiles/theorem1_walk.dir/bench/theorem1_walk.cpp.o"
  "CMakeFiles/theorem1_walk.dir/bench/theorem1_walk.cpp.o.d"
  "bench/theorem1_walk"
  "bench/theorem1_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
