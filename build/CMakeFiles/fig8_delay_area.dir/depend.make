# Empty dependencies file for fig8_delay_area.
# This may be replaced when dependencies are built.
