file(REMOVE_RECURSE
  "CMakeFiles/fig8_delay_area.dir/bench/fig8_delay_area.cpp.o"
  "CMakeFiles/fig8_delay_area.dir/bench/fig8_delay_area.cpp.o.d"
  "bench/fig8_delay_area"
  "bench/fig8_delay_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_delay_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
