# Empty compiler generated dependencies file for seq_vlsa.
# This may be replaced when dependencies are built.
