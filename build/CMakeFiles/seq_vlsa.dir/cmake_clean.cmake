file(REMOVE_RECURSE
  "CMakeFiles/seq_vlsa.dir/bench/seq_vlsa.cpp.o"
  "CMakeFiles/seq_vlsa.dir/bench/seq_vlsa.cpp.o.d"
  "bench/seq_vlsa"
  "bench/seq_vlsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_vlsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
