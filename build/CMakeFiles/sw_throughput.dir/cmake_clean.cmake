file(REMOVE_RECURSE
  "CMakeFiles/sw_throughput.dir/bench/sw_throughput.cpp.o"
  "CMakeFiles/sw_throughput.dir/bench/sw_throughput.cpp.o.d"
  "bench/sw_throughput"
  "bench/sw_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
