# Empty compiler generated dependencies file for sw_throughput.
# This may be replaced when dependencies are built.
