file(REMOVE_RECURSE
  "CMakeFiles/approx_zoo.dir/bench/approx_zoo.cpp.o"
  "CMakeFiles/approx_zoo.dir/bench/approx_zoo.cpp.o.d"
  "bench/approx_zoo"
  "bench/approx_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
