# Empty compiler generated dependencies file for approx_zoo.
# This may be replaced when dependencies are built.
