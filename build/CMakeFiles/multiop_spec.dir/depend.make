# Empty dependencies file for multiop_spec.
# This may be replaced when dependencies are built.
