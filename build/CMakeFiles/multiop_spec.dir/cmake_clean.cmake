file(REMOVE_RECURSE
  "CMakeFiles/multiop_spec.dir/bench/multiop_spec.cpp.o"
  "CMakeFiles/multiop_spec.dir/bench/multiop_spec.cpp.o.d"
  "bench/multiop_spec"
  "bench/multiop_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiop_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
