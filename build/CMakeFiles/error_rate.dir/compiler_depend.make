# Empty compiler generated dependencies file for error_rate.
# This may be replaced when dependencies are built.
