file(REMOVE_RECURSE
  "CMakeFiles/error_rate.dir/bench/error_rate.cpp.o"
  "CMakeFiles/error_rate.dir/bench/error_rate.cpp.o.d"
  "bench/error_rate"
  "bench/error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
