file(REMOVE_RECURSE
  "CMakeFiles/energy_study.dir/bench/energy_study.cpp.o"
  "CMakeFiles/energy_study.dir/bench/energy_study.cpp.o.d"
  "bench/energy_study"
  "bench/energy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
