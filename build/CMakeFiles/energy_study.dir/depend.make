# Empty dependencies file for energy_study.
# This may be replaced when dependencies are built.
