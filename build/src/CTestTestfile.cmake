# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("adders")
subdirs("analysis")
subdirs("core")
subdirs("sim")
subdirs("workloads")
subdirs("crypto")
subdirs("approx")
subdirs("cpu")
subdirs("multiop")
subdirs("multiplier")
