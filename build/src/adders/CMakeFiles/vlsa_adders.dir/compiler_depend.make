# Empty compiler generated dependencies file for vlsa_adders.
# This may be replaced when dependencies are built.
