file(REMOVE_RECURSE
  "CMakeFiles/vlsa_adders.dir/cla.cpp.o"
  "CMakeFiles/vlsa_adders.dir/cla.cpp.o.d"
  "CMakeFiles/vlsa_adders.dir/condsum.cpp.o"
  "CMakeFiles/vlsa_adders.dir/condsum.cpp.o.d"
  "CMakeFiles/vlsa_adders.dir/factory.cpp.o"
  "CMakeFiles/vlsa_adders.dir/factory.cpp.o.d"
  "CMakeFiles/vlsa_adders.dir/pg.cpp.o"
  "CMakeFiles/vlsa_adders.dir/pg.cpp.o.d"
  "CMakeFiles/vlsa_adders.dir/prefix.cpp.o"
  "CMakeFiles/vlsa_adders.dir/prefix.cpp.o.d"
  "CMakeFiles/vlsa_adders.dir/ripple.cpp.o"
  "CMakeFiles/vlsa_adders.dir/ripple.cpp.o.d"
  "CMakeFiles/vlsa_adders.dir/skip_select.cpp.o"
  "CMakeFiles/vlsa_adders.dir/skip_select.cpp.o.d"
  "libvlsa_adders.a"
  "libvlsa_adders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
