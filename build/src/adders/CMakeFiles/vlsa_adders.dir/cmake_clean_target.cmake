file(REMOVE_RECURSE
  "libvlsa_adders.a"
)
