
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adders/cla.cpp" "src/adders/CMakeFiles/vlsa_adders.dir/cla.cpp.o" "gcc" "src/adders/CMakeFiles/vlsa_adders.dir/cla.cpp.o.d"
  "/root/repo/src/adders/condsum.cpp" "src/adders/CMakeFiles/vlsa_adders.dir/condsum.cpp.o" "gcc" "src/adders/CMakeFiles/vlsa_adders.dir/condsum.cpp.o.d"
  "/root/repo/src/adders/factory.cpp" "src/adders/CMakeFiles/vlsa_adders.dir/factory.cpp.o" "gcc" "src/adders/CMakeFiles/vlsa_adders.dir/factory.cpp.o.d"
  "/root/repo/src/adders/pg.cpp" "src/adders/CMakeFiles/vlsa_adders.dir/pg.cpp.o" "gcc" "src/adders/CMakeFiles/vlsa_adders.dir/pg.cpp.o.d"
  "/root/repo/src/adders/prefix.cpp" "src/adders/CMakeFiles/vlsa_adders.dir/prefix.cpp.o" "gcc" "src/adders/CMakeFiles/vlsa_adders.dir/prefix.cpp.o.d"
  "/root/repo/src/adders/ripple.cpp" "src/adders/CMakeFiles/vlsa_adders.dir/ripple.cpp.o" "gcc" "src/adders/CMakeFiles/vlsa_adders.dir/ripple.cpp.o.d"
  "/root/repo/src/adders/skip_select.cpp" "src/adders/CMakeFiles/vlsa_adders.dir/skip_select.cpp.o" "gcc" "src/adders/CMakeFiles/vlsa_adders.dir/skip_select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/vlsa_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vlsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
