file(REMOVE_RECURSE
  "libvlsa_util.a"
)
