file(REMOVE_RECURSE
  "CMakeFiles/vlsa_util.dir/bitvec.cpp.o"
  "CMakeFiles/vlsa_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/vlsa_util.dir/rng.cpp.o"
  "CMakeFiles/vlsa_util.dir/rng.cpp.o.d"
  "CMakeFiles/vlsa_util.dir/table.cpp.o"
  "CMakeFiles/vlsa_util.dir/table.cpp.o.d"
  "libvlsa_util.a"
  "libvlsa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
