# Empty compiler generated dependencies file for vlsa_util.
# This may be replaced when dependencies are built.
