file(REMOVE_RECURSE
  "libvlsa_cpu.a"
)
