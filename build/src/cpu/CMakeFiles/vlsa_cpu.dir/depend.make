# Empty dependencies file for vlsa_cpu.
# This may be replaced when dependencies are built.
