file(REMOVE_RECURSE
  "CMakeFiles/vlsa_cpu.dir/mini_cpu.cpp.o"
  "CMakeFiles/vlsa_cpu.dir/mini_cpu.cpp.o.d"
  "libvlsa_cpu.a"
  "libvlsa_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
