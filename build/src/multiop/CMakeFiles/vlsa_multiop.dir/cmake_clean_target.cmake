file(REMOVE_RECURSE
  "libvlsa_multiop.a"
)
