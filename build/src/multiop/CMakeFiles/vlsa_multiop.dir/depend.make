# Empty dependencies file for vlsa_multiop.
# This may be replaced when dependencies are built.
