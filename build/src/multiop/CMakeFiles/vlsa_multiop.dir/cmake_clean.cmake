file(REMOVE_RECURSE
  "CMakeFiles/vlsa_multiop.dir/csa.cpp.o"
  "CMakeFiles/vlsa_multiop.dir/csa.cpp.o.d"
  "CMakeFiles/vlsa_multiop.dir/multi_add.cpp.o"
  "CMakeFiles/vlsa_multiop.dir/multi_add.cpp.o.d"
  "libvlsa_multiop.a"
  "libvlsa_multiop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_multiop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
