# Empty dependencies file for vlsa_approx.
# This may be replaced when dependencies are built.
