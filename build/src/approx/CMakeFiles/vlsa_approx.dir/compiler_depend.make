# Empty compiler generated dependencies file for vlsa_approx.
# This may be replaced when dependencies are built.
