file(REMOVE_RECURSE
  "libvlsa_approx.a"
)
