file(REMOVE_RECURSE
  "CMakeFiles/vlsa_approx.dir/approx_adders.cpp.o"
  "CMakeFiles/vlsa_approx.dir/approx_adders.cpp.o.d"
  "libvlsa_approx.a"
  "libvlsa_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
