file(REMOVE_RECURSE
  "CMakeFiles/vlsa_sim.dir/vcd.cpp.o"
  "CMakeFiles/vlsa_sim.dir/vcd.cpp.o.d"
  "CMakeFiles/vlsa_sim.dir/vlsa_pipeline.cpp.o"
  "CMakeFiles/vlsa_sim.dir/vlsa_pipeline.cpp.o.d"
  "libvlsa_sim.a"
  "libvlsa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
