file(REMOVE_RECURSE
  "libvlsa_sim.a"
)
