# Empty dependencies file for vlsa_sim.
# This may be replaced when dependencies are built.
