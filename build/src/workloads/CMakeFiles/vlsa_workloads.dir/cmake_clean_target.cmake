file(REMOVE_RECURSE
  "libvlsa_workloads.a"
)
