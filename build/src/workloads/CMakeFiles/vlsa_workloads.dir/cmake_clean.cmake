file(REMOVE_RECURSE
  "CMakeFiles/vlsa_workloads.dir/operand_stream.cpp.o"
  "CMakeFiles/vlsa_workloads.dir/operand_stream.cpp.o.d"
  "libvlsa_workloads.a"
  "libvlsa_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
