# Empty dependencies file for vlsa_workloads.
# This may be replaced when dependencies are built.
