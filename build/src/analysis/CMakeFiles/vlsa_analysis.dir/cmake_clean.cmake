file(REMOVE_RECURSE
  "CMakeFiles/vlsa_analysis.dir/aca_probability.cpp.o"
  "CMakeFiles/vlsa_analysis.dir/aca_probability.cpp.o.d"
  "CMakeFiles/vlsa_analysis.dir/biguint.cpp.o"
  "CMakeFiles/vlsa_analysis.dir/biguint.cpp.o.d"
  "CMakeFiles/vlsa_analysis.dir/longest_run.cpp.o"
  "CMakeFiles/vlsa_analysis.dir/longest_run.cpp.o.d"
  "CMakeFiles/vlsa_analysis.dir/theorem1.cpp.o"
  "CMakeFiles/vlsa_analysis.dir/theorem1.cpp.o.d"
  "libvlsa_analysis.a"
  "libvlsa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
