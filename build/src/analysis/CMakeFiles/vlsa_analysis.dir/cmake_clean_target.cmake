file(REMOVE_RECURSE
  "libvlsa_analysis.a"
)
