
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aca_probability.cpp" "src/analysis/CMakeFiles/vlsa_analysis.dir/aca_probability.cpp.o" "gcc" "src/analysis/CMakeFiles/vlsa_analysis.dir/aca_probability.cpp.o.d"
  "/root/repo/src/analysis/biguint.cpp" "src/analysis/CMakeFiles/vlsa_analysis.dir/biguint.cpp.o" "gcc" "src/analysis/CMakeFiles/vlsa_analysis.dir/biguint.cpp.o.d"
  "/root/repo/src/analysis/longest_run.cpp" "src/analysis/CMakeFiles/vlsa_analysis.dir/longest_run.cpp.o" "gcc" "src/analysis/CMakeFiles/vlsa_analysis.dir/longest_run.cpp.o.d"
  "/root/repo/src/analysis/theorem1.cpp" "src/analysis/CMakeFiles/vlsa_analysis.dir/theorem1.cpp.o" "gcc" "src/analysis/CMakeFiles/vlsa_analysis.dir/theorem1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vlsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
