# Empty dependencies file for vlsa_analysis.
# This may be replaced when dependencies are built.
