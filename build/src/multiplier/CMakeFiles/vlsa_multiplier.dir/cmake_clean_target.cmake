file(REMOVE_RECURSE
  "libvlsa_multiplier.a"
)
