# Empty compiler generated dependencies file for vlsa_multiplier.
# This may be replaced when dependencies are built.
