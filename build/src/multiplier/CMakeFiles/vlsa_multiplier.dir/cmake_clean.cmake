file(REMOVE_RECURSE
  "CMakeFiles/vlsa_multiplier.dir/booth.cpp.o"
  "CMakeFiles/vlsa_multiplier.dir/booth.cpp.o.d"
  "CMakeFiles/vlsa_multiplier.dir/spec_multiplier.cpp.o"
  "CMakeFiles/vlsa_multiplier.dir/spec_multiplier.cpp.o.d"
  "libvlsa_multiplier.a"
  "libvlsa_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
