
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell_library.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/cell_library.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/cell_library.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/dot.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/dot.cpp.o.d"
  "/root/repo/src/netlist/emit.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/emit.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/emit.cpp.o.d"
  "/root/repo/src/netlist/equiv.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/equiv.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/equiv.cpp.o.d"
  "/root/repo/src/netlist/event_sim.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/event_sim.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/event_sim.cpp.o.d"
  "/root/repo/src/netlist/fault.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/fault.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/fault.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/opt.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/opt.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/opt.cpp.o.d"
  "/root/repo/src/netlist/seq_sim.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/seq_sim.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/seq_sim.cpp.o.d"
  "/root/repo/src/netlist/serialize.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/serialize.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/serialize.cpp.o.d"
  "/root/repo/src/netlist/simulator.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/simulator.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/simulator.cpp.o.d"
  "/root/repo/src/netlist/sta.cpp" "src/netlist/CMakeFiles/vlsa_netlist.dir/sta.cpp.o" "gcc" "src/netlist/CMakeFiles/vlsa_netlist.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vlsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
