file(REMOVE_RECURSE
  "CMakeFiles/vlsa_netlist.dir/cell_library.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/cell_library.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/dot.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/dot.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/emit.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/emit.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/equiv.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/equiv.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/event_sim.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/event_sim.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/fault.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/fault.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/netlist.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/opt.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/opt.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/seq_sim.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/seq_sim.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/serialize.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/serialize.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/simulator.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/simulator.cpp.o.d"
  "CMakeFiles/vlsa_netlist.dir/sta.cpp.o"
  "CMakeFiles/vlsa_netlist.dir/sta.cpp.o.d"
  "libvlsa_netlist.a"
  "libvlsa_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
