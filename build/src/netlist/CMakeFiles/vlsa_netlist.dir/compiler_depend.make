# Empty compiler generated dependencies file for vlsa_netlist.
# This may be replaced when dependencies are built.
