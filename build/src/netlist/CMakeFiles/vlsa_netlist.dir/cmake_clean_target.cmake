file(REMOVE_RECURSE
  "libvlsa_netlist.a"
)
