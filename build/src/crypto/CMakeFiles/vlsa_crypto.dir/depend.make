# Empty dependencies file for vlsa_crypto.
# This may be replaced when dependencies are built.
