file(REMOVE_RECURSE
  "libvlsa_crypto.a"
)
