file(REMOVE_RECURSE
  "CMakeFiles/vlsa_crypto.dir/adder32.cpp.o"
  "CMakeFiles/vlsa_crypto.dir/adder32.cpp.o.d"
  "CMakeFiles/vlsa_crypto.dir/attack.cpp.o"
  "CMakeFiles/vlsa_crypto.dir/attack.cpp.o.d"
  "CMakeFiles/vlsa_crypto.dir/tea.cpp.o"
  "CMakeFiles/vlsa_crypto.dir/tea.cpp.o.d"
  "CMakeFiles/vlsa_crypto.dir/text_model.cpp.o"
  "CMakeFiles/vlsa_crypto.dir/text_model.cpp.o.d"
  "libvlsa_crypto.a"
  "libvlsa_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
