
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/adder32.cpp" "src/crypto/CMakeFiles/vlsa_crypto.dir/adder32.cpp.o" "gcc" "src/crypto/CMakeFiles/vlsa_crypto.dir/adder32.cpp.o.d"
  "/root/repo/src/crypto/attack.cpp" "src/crypto/CMakeFiles/vlsa_crypto.dir/attack.cpp.o" "gcc" "src/crypto/CMakeFiles/vlsa_crypto.dir/attack.cpp.o.d"
  "/root/repo/src/crypto/tea.cpp" "src/crypto/CMakeFiles/vlsa_crypto.dir/tea.cpp.o" "gcc" "src/crypto/CMakeFiles/vlsa_crypto.dir/tea.cpp.o.d"
  "/root/repo/src/crypto/text_model.cpp" "src/crypto/CMakeFiles/vlsa_crypto.dir/text_model.cpp.o" "gcc" "src/crypto/CMakeFiles/vlsa_crypto.dir/text_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vlsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
