
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aca.cpp" "src/core/CMakeFiles/vlsa_core.dir/aca.cpp.o" "gcc" "src/core/CMakeFiles/vlsa_core.dir/aca.cpp.o.d"
  "/root/repo/src/core/aca_netlist.cpp" "src/core/CMakeFiles/vlsa_core.dir/aca_netlist.cpp.o" "gcc" "src/core/CMakeFiles/vlsa_core.dir/aca_netlist.cpp.o.d"
  "/root/repo/src/core/error_metrics.cpp" "src/core/CMakeFiles/vlsa_core.dir/error_metrics.cpp.o" "gcc" "src/core/CMakeFiles/vlsa_core.dir/error_metrics.cpp.o.d"
  "/root/repo/src/core/vlsa.cpp" "src/core/CMakeFiles/vlsa_core.dir/vlsa.cpp.o" "gcc" "src/core/CMakeFiles/vlsa_core.dir/vlsa.cpp.o.d"
  "/root/repo/src/core/vlsa_sequential.cpp" "src/core/CMakeFiles/vlsa_core.dir/vlsa_sequential.cpp.o" "gcc" "src/core/CMakeFiles/vlsa_core.dir/vlsa_sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vlsa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/vlsa_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/adders/CMakeFiles/vlsa_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vlsa_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
