# Empty dependencies file for vlsa_core.
# This may be replaced when dependencies are built.
