file(REMOVE_RECURSE
  "CMakeFiles/vlsa_core.dir/aca.cpp.o"
  "CMakeFiles/vlsa_core.dir/aca.cpp.o.d"
  "CMakeFiles/vlsa_core.dir/aca_netlist.cpp.o"
  "CMakeFiles/vlsa_core.dir/aca_netlist.cpp.o.d"
  "CMakeFiles/vlsa_core.dir/error_metrics.cpp.o"
  "CMakeFiles/vlsa_core.dir/error_metrics.cpp.o.d"
  "CMakeFiles/vlsa_core.dir/vlsa.cpp.o"
  "CMakeFiles/vlsa_core.dir/vlsa.cpp.o.d"
  "CMakeFiles/vlsa_core.dir/vlsa_sequential.cpp.o"
  "CMakeFiles/vlsa_core.dir/vlsa_sequential.cpp.o.d"
  "libvlsa_core.a"
  "libvlsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
