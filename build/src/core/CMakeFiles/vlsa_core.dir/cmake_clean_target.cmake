file(REMOVE_RECURSE
  "libvlsa_core.a"
)
