file(REMOVE_RECURSE
  "CMakeFiles/test_aca.dir/test_aca.cpp.o"
  "CMakeFiles/test_aca.dir/test_aca.cpp.o.d"
  "test_aca"
  "test_aca.pdb"
  "test_aca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
