# Empty dependencies file for test_aca.
# This may be replaced when dependencies are built.
