# Empty compiler generated dependencies file for test_multiop.
# This may be replaced when dependencies are built.
