file(REMOVE_RECURSE
  "CMakeFiles/test_multiop.dir/test_multiop.cpp.o"
  "CMakeFiles/test_multiop.dir/test_multiop.cpp.o.d"
  "test_multiop"
  "test_multiop.pdb"
  "test_multiop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
