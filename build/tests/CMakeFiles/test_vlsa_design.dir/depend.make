# Empty dependencies file for test_vlsa_design.
# This may be replaced when dependencies are built.
