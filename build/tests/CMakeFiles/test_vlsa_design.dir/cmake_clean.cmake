file(REMOVE_RECURSE
  "CMakeFiles/test_vlsa_design.dir/test_vlsa_design.cpp.o"
  "CMakeFiles/test_vlsa_design.dir/test_vlsa_design.cpp.o.d"
  "test_vlsa_design"
  "test_vlsa_design.pdb"
  "test_vlsa_design[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vlsa_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
