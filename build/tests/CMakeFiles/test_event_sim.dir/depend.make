# Empty dependencies file for test_event_sim.
# This may be replaced when dependencies are built.
