file(REMOVE_RECURSE
  "CMakeFiles/test_event_sim.dir/test_event_sim.cpp.o"
  "CMakeFiles/test_event_sim.dir/test_event_sim.cpp.o.d"
  "test_event_sim"
  "test_event_sim.pdb"
  "test_event_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
