# Empty dependencies file for test_emit.
# This may be replaced when dependencies are built.
