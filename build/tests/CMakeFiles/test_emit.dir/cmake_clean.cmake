file(REMOVE_RECURSE
  "CMakeFiles/test_emit.dir/test_emit.cpp.o"
  "CMakeFiles/test_emit.dir/test_emit.cpp.o.d"
  "test_emit"
  "test_emit.pdb"
  "test_emit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
