# Empty dependencies file for test_multiplier.
# This may be replaced when dependencies are built.
