file(REMOVE_RECURSE
  "CMakeFiles/test_multiplier.dir/test_multiplier.cpp.o"
  "CMakeFiles/test_multiplier.dir/test_multiplier.cpp.o.d"
  "test_multiplier"
  "test_multiplier.pdb"
  "test_multiplier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
