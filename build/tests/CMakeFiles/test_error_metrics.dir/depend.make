# Empty dependencies file for test_error_metrics.
# This may be replaced when dependencies are built.
