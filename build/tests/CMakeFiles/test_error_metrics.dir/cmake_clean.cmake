file(REMOVE_RECURSE
  "CMakeFiles/test_error_metrics.dir/test_error_metrics.cpp.o"
  "CMakeFiles/test_error_metrics.dir/test_error_metrics.cpp.o.d"
  "test_error_metrics"
  "test_error_metrics.pdb"
  "test_error_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
