# Empty dependencies file for test_aca_netlist.
# This may be replaced when dependencies are built.
