file(REMOVE_RECURSE
  "CMakeFiles/test_aca_netlist.dir/test_aca_netlist.cpp.o"
  "CMakeFiles/test_aca_netlist.dir/test_aca_netlist.cpp.o.d"
  "test_aca_netlist"
  "test_aca_netlist.pdb"
  "test_aca_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aca_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
