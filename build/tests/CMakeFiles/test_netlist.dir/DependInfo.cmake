
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/test_netlist.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/test_netlist.dir/test_netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vlsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adders/CMakeFiles/vlsa_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/vlsa_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vlsa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vlsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
