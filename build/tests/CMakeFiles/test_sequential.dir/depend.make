# Empty dependencies file for test_sequential.
# This may be replaced when dependencies are built.
