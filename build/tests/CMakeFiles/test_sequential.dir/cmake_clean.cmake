file(REMOVE_RECURSE
  "CMakeFiles/test_sequential.dir/test_sequential.cpp.o"
  "CMakeFiles/test_sequential.dir/test_sequential.cpp.o.d"
  "test_sequential"
  "test_sequential.pdb"
  "test_sequential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
