# Empty compiler generated dependencies file for test_cross_module.
# This may be replaced when dependencies are built.
