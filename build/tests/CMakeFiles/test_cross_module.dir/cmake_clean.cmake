file(REMOVE_RECURSE
  "CMakeFiles/test_cross_module.dir/test_cross_module.cpp.o"
  "CMakeFiles/test_cross_module.dir/test_cross_module.cpp.o.d"
  "test_cross_module"
  "test_cross_module.pdb"
  "test_cross_module[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
