# Empty dependencies file for test_aca_sub.
# This may be replaced when dependencies are built.
