file(REMOVE_RECURSE
  "CMakeFiles/test_aca_sub.dir/test_aca_sub.cpp.o"
  "CMakeFiles/test_aca_sub.dir/test_aca_sub.cpp.o.d"
  "test_aca_sub"
  "test_aca_sub.pdb"
  "test_aca_sub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aca_sub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
