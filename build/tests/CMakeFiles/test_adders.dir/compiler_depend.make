# Empty compiler generated dependencies file for test_adders.
# This may be replaced when dependencies are built.
