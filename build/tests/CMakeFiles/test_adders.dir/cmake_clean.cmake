file(REMOVE_RECURSE
  "CMakeFiles/test_adders.dir/test_adders.cpp.o"
  "CMakeFiles/test_adders.dir/test_adders.cpp.o.d"
  "test_adders"
  "test_adders.pdb"
  "test_adders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
