file(REMOVE_RECURSE
  "CMakeFiles/test_approx.dir/test_approx.cpp.o"
  "CMakeFiles/test_approx.dir/test_approx.cpp.o.d"
  "test_approx"
  "test_approx.pdb"
  "test_approx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
