# Empty dependencies file for test_approx.
# This may be replaced when dependencies are built.
