file(REMOVE_RECURSE
  "CMakeFiles/test_booth.dir/test_booth.cpp.o"
  "CMakeFiles/test_booth.dir/test_booth.cpp.o.d"
  "test_booth"
  "test_booth.pdb"
  "test_booth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_booth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
