# Empty dependencies file for test_booth.
# This may be replaced when dependencies are built.
