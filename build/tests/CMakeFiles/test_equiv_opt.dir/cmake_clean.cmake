file(REMOVE_RECURSE
  "CMakeFiles/test_equiv_opt.dir/test_equiv_opt.cpp.o"
  "CMakeFiles/test_equiv_opt.dir/test_equiv_opt.cpp.o.d"
  "test_equiv_opt"
  "test_equiv_opt.pdb"
  "test_equiv_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equiv_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
