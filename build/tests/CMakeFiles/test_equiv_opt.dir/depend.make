# Empty dependencies file for test_equiv_opt.
# This may be replaced when dependencies are built.
