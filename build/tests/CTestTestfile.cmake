# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_emit[1]_include.cmake")
include("/root/repo/build/tests/test_adders[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_aca[1]_include.cmake")
include("/root/repo/build/tests/test_aca_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_multiplier[1]_include.cmake")
include("/root/repo/build/tests/test_event_sim[1]_include.cmake")
include("/root/repo/build/tests/test_equiv_opt[1]_include.cmake")
include("/root/repo/build/tests/test_vlsa_design[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_multiop[1]_include.cmake")
include("/root/repo/build/tests/test_aca_sub[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_booth[1]_include.cmake")
include("/root/repo/build/tests/test_error_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_approx[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_sequential[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_cross_module[1]_include.cmake")
