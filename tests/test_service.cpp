// Tests for the arithmetic service: correctness against the scalar ACA
// model, fixed-seed determinism of the telemetry snapshot, bounded-queue
// backpressure, drain-on-destroy, and multi-producer/multi-worker
// operation (the suites here also run under the `tsan` preset).

#include <gtest/gtest.h>

#include <array>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/aca.hpp"
#include "service/bounded_queue.hpp"
#include "service/service.hpp"
#include "sim/isa.hpp"
#include "telemetry/registry.hpp"
#include "util/bitvec.hpp"
#include "workloads/operand_stream.hpp"

namespace vlsa {
namespace {

using service::AdderService;
using service::Completion;
using service::OverflowPolicy;
using service::ServiceConfig;
using util::BitVec;

ServiceConfig pump_config(int width, int window,
                          std::size_t capacity = 4096) {
  ServiceConfig config;
  config.pipeline.width = width;
  config.pipeline.window = window;
  config.workers = 0;
  config.queue_capacity = capacity;
  config.record_wall_time = false;
  return config;
}

long long counter_value(const telemetry::Snapshot& snap,
                        const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "no counter named " << name;
  return -1;
}

TEST(ServiceCorrectness, PumpModeMatchesScalarModel) {
  const int width = 64, window = 8;
  AdderService service(pump_config(width, window));
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0xfeed);
  struct Expected {
    BitVec sum;
    bool flagged;
    std::future<Completion> future;
  };
  std::vector<Expected> expected;
  for (int i = 0; i < 500; ++i) {
    const auto [a, b] = stream.next();
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value());
    expected.push_back({a + b, core::aca_flag(a, b, window),
                        std::move(*future)});
  }
  service.flush();
  for (auto& e : expected) {
    const Completion got = e.future.get();
    EXPECT_EQ(got.sum, e.sum);
    EXPECT_EQ(got.flagged, e.flagged);
    EXPECT_GE(got.latency_cycles, 1);
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.completed"), 500);
  EXPECT_EQ(counter_value(snap, "service.fast_path") +
                counter_value(snap, "service.recovered"),
            500);
}

TEST(ServiceCorrectness, WideBatchDispatchMatchesScalarModel) {
  // max_batch = the detected SIMD lane width (the default): a flush
  // after >512 queued submissions makes every dispatch pop a batch
  // wider than 64 lanes, driving the wide transpose/eval/un-transpose
  // path end to end.  Window 6 at width 64 flags often enough that the
  // recovery lane runs inside wide batches too.
  const int width = 64, window = 6;
  auto config = pump_config(width, window);
  config.max_batch = sim::active_lanes();
  AdderService service(config);
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0x51d5);
  struct Expected {
    BitVec sum;
    bool flagged;
    std::future<Completion> future;
  };
  std::vector<Expected> expected;
  for (int i = 0; i < 1200; ++i) {
    const auto [a, b] = stream.next();
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value());
    expected.push_back({a + b, core::aca_flag(a, b, window),
                        std::move(*future)});
  }
  service.flush();
  int flagged = 0;
  for (auto& e : expected) {
    const Completion got = e.future.get();
    EXPECT_EQ(got.sum, e.sum);
    EXPECT_EQ(got.flagged, e.flagged);
    flagged += e.flagged ? 1 : 0;
  }
  EXPECT_GT(flagged, 0);  // the batch actually exercised recovery
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.completed"), 1200);
  EXPECT_EQ(counter_value(snap, "service.recovered"), flagged);
}

TEST(ServiceDeterminism, FixedSeedSnapshotsAreByteIdentical) {
  // Single worker (pump mode), fixed seed, wall-time recording off:
  // the full telemetry snapshot — histograms included — must be
  // bit-identical across repeats.
  auto run = [] {
    // window 4 at width 64 flags often, exercising the recovery lane.
    AdderService service(pump_config(64, 4));
    workloads::OperandStream stream(workloads::Distribution::Uniform, 64,
                                    0x5eed);
    for (int i = 0; i < 1000; ++i) {
      auto [a, b] = stream.next();
      EXPECT_TRUE(service.submit(std::move(a), std::move(b)).has_value());
      if (i % 3 == 0) service.pump();  // interleave dispatch with arrivals
    }
    service.flush();
    return service.registry().snapshot();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_GT(counter_value(first, "service.recovered"), 0);
}

TEST(ServiceCorrectness, SubmitManyMatchesPerRequestSubmit) {
  const int width = 64, window = 8;
  AdderService service(pump_config(width, window));
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0xbead);
  std::vector<std::pair<BitVec, BitVec>> ops;
  std::vector<BitVec> sums;
  for (int i = 0; i < 200; ++i) {
    auto [a, b] = stream.next();
    sums.push_back(a + b);
    ops.emplace_back(std::move(a), std::move(b));
  }
  auto futures = service.submit_many(std::move(ops));
  ASSERT_EQ(futures.size(), 200u);
  service.flush();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].has_value()) << "rejected at " << i;
    EXPECT_EQ(futures[i]->get().sum, sums[i]);
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.submitted"), 200);
  EXPECT_EQ(counter_value(snap, "service.completed"), 200);
}

TEST(ServiceBackpressure, SubmitManyRejectsTailBeyondCapacity) {
  // Pump mode with a 8-slot queue: a 12-element batch accepts the first
  // 8 and rejects the last 4, in order.
  AdderService service(pump_config(32, 4, /*capacity=*/8));
  std::vector<std::pair<BitVec, BitVec>> ops;
  for (int i = 0; i < 12; ++i) {
    ops.emplace_back(BitVec::from_u64(32, static_cast<std::uint64_t>(i)),
                     BitVec::from_u64(32, 1));
  }
  auto futures = service.submit_many(std::move(ops));
  ASSERT_EQ(futures.size(), 12u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(futures[static_cast<std::size_t>(i)].has_value()) << i;
  }
  for (int i = 8; i < 12; ++i) {
    EXPECT_FALSE(futures[static_cast<std::size_t>(i)].has_value()) << i;
  }
  service.flush();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)]->get().sum,
              BitVec::from_u64(32, static_cast<std::uint64_t>(i) + 1));
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.submitted"), 8);
  EXPECT_EQ(counter_value(snap, "service.rejected"), 4);
}

TEST(ServiceBackpressure, BoundedQueueRejectsExactlyWhenFull) {
  auto config = pump_config(32, 4, /*capacity=*/8);
  config.overflow = OverflowPolicy::Reject;
  AdderService service(config);
  const BitVec a = BitVec::from_u64(32, 1);
  const BitVec b = BitVec::from_u64(32, 2);
  std::vector<std::future<Completion>> accepted;
  for (int i = 0; i < 8; ++i) {
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value()) << "rejected below capacity, i=" << i;
    accepted.push_back(std::move(*future));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(service.submit(a, b).has_value());
  }
  {
    const auto snap = service.registry().snapshot();
    EXPECT_EQ(counter_value(snap, "service.submitted"), 8);
    EXPECT_EQ(counter_value(snap, "service.rejected"), 3);
  }
  // Draining frees capacity: the next submission is accepted again.
  service.flush();
  auto future = service.submit(a, b);
  ASSERT_TRUE(future.has_value());
  accepted.push_back(std::move(*future));
  service.flush();
  for (auto& f : accepted) {
    EXPECT_EQ(f.get().sum, BitVec::from_u64(32, 3));
  }
}

TEST(ServiceShutdown, DestructorDrainsInFlight) {
  telemetry::Registry registry;
  std::vector<std::future<Completion>> futures;
  const int width = 64;
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0xd1e);
  std::vector<BitVec> sums;
  {
    ServiceConfig config;
    config.pipeline.width = width;
    config.pipeline.window = 8;
    config.workers = 2;
    config.queue_capacity = 256;
    AdderService service(config, &registry);
    for (int i = 0; i < 2000; ++i) {
      auto [a, b] = stream.next();
      sums.push_back(a + b);
      auto future = service.submit(std::move(a), std::move(b));
      ASSERT_TRUE(future.has_value());
      futures.push_back(std::move(*future));
    }
    // Destructor runs here with requests still queued and in flight.
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Completion got = futures[i].get();  // must not hang or throw
    EXPECT_EQ(got.sum, sums[i]);
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "service.completed"), 2000);
}

TEST(ServiceShutdown, SubmitAfterCloseThrows) {
  AdderService service(pump_config(32, 4));
  service.close();
  EXPECT_THROW(
      service.submit(BitVec::from_u64(32, 1), BitVec::from_u64(32, 2)),
      std::runtime_error);
}

TEST(ServiceShutdown, OperandWidthMismatchThrows) {
  AdderService service(pump_config(32, 4));
  EXPECT_THROW(
      service.submit(BitVec::from_u64(16, 1), BitVec::from_u64(32, 2)),
      std::invalid_argument);
}

TEST(ServiceConcurrency, MultiProducerBlockPolicyCompletesAll) {
  telemetry::Registry registry;
  {
    ServiceConfig config;
    config.pipeline.width = 64;
    config.pipeline.window = 6;
    config.workers = 4;
    config.queue_capacity = 64;  // small bound: exercises blocking
    config.overflow = OverflowPolicy::Block;
    AdderService service(config, &registry);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 2000;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&service, p] {
        workloads::OperandStream stream(workloads::Distribution::Uniform,
                                        64, 100 + p);
        for (int i = 0; i < kPerProducer; ++i) {
          auto [a, b] = stream.next();
          ASSERT_TRUE(
              service.submit(std::move(a), std::move(b)).has_value());
        }
      });
    }
    for (auto& producer : producers) producer.join();
    service.flush();
    const auto snap = registry.snapshot();
    EXPECT_EQ(counter_value(snap, "service.completed"),
              kProducers * kPerProducer);
    EXPECT_EQ(counter_value(snap, "service.rejected"), 0);
  }
}

TEST(ServiceRecovery, ComplementaryTrafficCongestsRecoveryLane) {
  const int width = 64, window = 8;
  auto config = pump_config(width, window);
  config.pipeline.recovery_cycles = 2;
  AdderService service(config);
  util::Rng rng(7);
  std::vector<std::pair<BitVec, std::future<Completion>>> expected;
  for (int i = 0; i < 256; ++i) {
    const BitVec a = rng.next_bits(width);
    const BitVec b = ~a;  // full-width propagate chain: always flags
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value());
    expected.emplace_back(a + b, std::move(*future));
  }
  service.flush();
  for (auto& [sum, future] : expected) {
    const Completion got = future.get();
    EXPECT_EQ(got.sum, sum);
    EXPECT_TRUE(got.flagged);
    EXPECT_GE(got.latency_cycles, 1 + config.pipeline.recovery_cycles);
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.recovered"), 256);
  EXPECT_EQ(counter_value(snap, "service.fast_path"), 0);
  // The serial recovery lane backs up: the tail is far above the median.
  for (const auto& h : snap.histograms) {
    if (h.name == "service.latency_cycles") {
      EXPECT_GT(h.p999(), h.p50());
      EXPECT_GE(h.max, 256u * 2u);  // ~2 cycles per queued recovery
    }
  }
}

TEST(ServiceTelemetry, FastPathMinimumLatencyIsOneCycle) {
  // A huge window never flags: everything takes the one-cycle fast path.
  AdderService service(pump_config(64, 64));
  workloads::OperandStream stream(workloads::Distribution::Uniform, 64, 3);
  for (int i = 0; i < 64; ++i) {
    auto [a, b] = stream.next();
    ASSERT_TRUE(service.submit(std::move(a), std::move(b)).has_value());
  }
  service.flush();
  const auto snap = service.registry().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name == "service.latency_cycles") {
      EXPECT_EQ(h.min, 1u);
      EXPECT_EQ(h.count, 64u);
    }
  }
  EXPECT_EQ(counter_value(snap, "service.recovered"), 0);
}

TEST(BoundedQueue, PushPopBatchBasics) {
  service::BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  EXPECT_TRUE(queue.try_push(4));
  EXPECT_FALSE(queue.try_push(5));  // full
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(queue.try_push(5));  // space again
  out.clear();
  EXPECT_EQ(queue.try_pop_batch(out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{4, 5}));
  EXPECT_EQ(queue.try_pop_batch(out, 10), 0u);
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  service::BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3));
  std::vector<int> out;
  // A closed queue drains without lingering...
  EXPECT_EQ(queue.pop_batch(out, 64, std::chrono::microseconds(1'000'000)),
            2u);
  // ...and then reports shutdown immediately (no block).
  EXPECT_EQ(queue.pop_batch(out, 64, std::chrono::microseconds(1'000'000)),
            0u);
}

// Like counter_value but tolerant of a not-yet-registered name: used
// for polling loops where failing the test on a race would be wrong.
long long counter_or_zero(const telemetry::Snapshot& snap,
                          const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  return 0;
}

TEST(ServiceShardedRouting, HashSpreadsUniformTrafficAcrossShards) {
  // Hash routing over uniform operands must land within a loose band of
  // the even split on every shard — a collapsed or starved shard means
  // the mixer is broken, not that the test got unlucky (8000 draws at
  // p=1/4 put 6 sigma well inside the band).
  auto config = pump_config(64, 8);
  config.shards = 4;
  AdderService service(config);
  workloads::OperandStream stream(workloads::Distribution::Uniform, 64,
                                  0x40a5);
  std::array<int, 4> counts{};
  constexpr int kDraws = 8000;
  for (int i = 0; i < kDraws; ++i) {
    const auto [a, b] = stream.next();
    counts[service.route_of(a, b)]++;
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(counts[static_cast<std::size_t>(s)], kDraws * 15 / 100)
        << "shard " << s << " starved";
    EXPECT_LT(counts[static_cast<std::size_t>(s)], kDraws * 35 / 100)
        << "shard " << s << " overloaded";
  }
}

TEST(ServiceShardedRouting, RouteIsDeterministicPerOperandPair) {
  // Block-policy network retries re-submit the same operands; hash
  // routing must send the retry to the same shard (and the same
  // operands must route identically across service instances with the
  // same shard count).
  auto config = pump_config(64, 8);
  config.shards = 4;
  AdderService first(config);
  AdderService second(config);
  workloads::OperandStream stream(workloads::Distribution::Uniform, 64, 77);
  for (int i = 0; i < 256; ++i) {
    const auto [a, b] = stream.next();
    const auto shard = first.route_of(a, b);
    EXPECT_EQ(shard, first.route_of(a, b));
    EXPECT_EQ(shard, second.route_of(a, b));
  }
}

TEST(ServiceSharded, PerShardCompletionOrderIsFifoNoLossNoDup) {
  // 4 shards x 1 dispatcher each, no stealing, a window that never
  // flags: each shard's completions must be exactly its submissions in
  // submission order — FIFO, no loss, no duplicates, and the executing
  // shard (Completion::shard) must equal the routed shard.
  ServiceConfig config;
  config.pipeline.width = 64;
  config.pipeline.window = 64;  // never flags: no recovery reordering
  config.workers = 4;
  config.shards = 4;
  config.queue_capacity = 4096;
  config.record_wall_time = false;
  telemetry::Registry registry;
  AdderService service(config, &registry);
  std::mutex mutex;
  std::array<std::vector<int>, 4> completed;
  std::array<std::vector<int>, 4> expected;
  workloads::OperandStream stream(workloads::Distribution::Uniform, 64,
                                  0xf1f0);
  constexpr int kRequests = 4000;
  for (int i = 0; i < kRequests; ++i) {
    auto [a, b] = stream.next();
    const auto shard = service.route_of(a, b);
    expected[shard].push_back(i);
    const bool ok = service.try_submit_callback(
        std::move(a), std::move(b), [&mutex, &completed, i](Completion c) {
          std::lock_guard<std::mutex> lock(mutex);
          completed[static_cast<std::size_t>(c.shard)].push_back(i);
        });
    ASSERT_TRUE(ok) << "backpressure below capacity at " << i;
  }
  service.flush();
  std::lock_guard<std::mutex> lock(mutex);
  std::size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(completed[static_cast<std::size_t>(s)],
              expected[static_cast<std::size_t>(s)])
        << "shard " << s << " broke per-shard FIFO";
    total += completed[static_cast<std::size_t>(s)].size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kRequests));
}

TEST(ServiceSharded, MultiProducerBlockCompletesAllAndLabelsAddUp) {
  // Sharded version of the Block-policy soak: small per-shard queues
  // force blocking, and afterwards the per-shard labeled counters must
  // sum exactly to the global ones (every request accounted to exactly
  // one shard).
  telemetry::Registry registry;
  {
    ServiceConfig config;
    config.pipeline.width = 64;
    config.pipeline.window = 6;
    config.workers = 4;
    config.shards = 4;
    config.queue_capacity = 64;
    config.overflow = OverflowPolicy::Block;
    AdderService service(config, &registry);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 2000;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&service, p] {
        workloads::OperandStream stream(workloads::Distribution::Uniform,
                                        64, 300 + p);
        for (int i = 0; i < kPerProducer; ++i) {
          auto [a, b] = stream.next();
          ASSERT_TRUE(
              service.submit(std::move(a), std::move(b)).has_value());
        }
      });
    }
    for (auto& producer : producers) producer.join();
    service.flush();
    const auto snap = registry.snapshot();
    constexpr long long kTotal = kProducers * kPerProducer;
    EXPECT_EQ(counter_value(snap, "service.completed"), kTotal);
    EXPECT_EQ(counter_value(snap, "service.rejected"), 0);
    long long submitted = 0, completed = 0;
    for (int s = 0; s < 4; ++s) {
      const std::string suffix = "{shard=" + std::to_string(s) + "}";
      submitted += counter_value(snap, "service.submitted" + suffix);
      completed += counter_value(snap, "service.completed" + suffix);
      EXPECT_GT(counter_value(snap, "service.submitted" + suffix), 0)
          << "shard " << s << " never saw traffic";
    }
    EXPECT_EQ(submitted, kTotal);
    EXPECT_EQ(completed, kTotal);
  }
}

TEST(ServiceSharded, RejectPolicyCountsAgainstTheRoutedShard) {
  // Pump mode, 2 shards, 8-slot per-shard queues, Reject policy: keep
  // submitting operands that hash-route to one shard until it overflows
  // — rejections must land on that shard's labeled counter only, and
  // the other shard must stay writable throughout.
  auto config = pump_config(64, 8, /*capacity=*/8);
  config.shards = 2;
  config.overflow = OverflowPolicy::Reject;
  AdderService service(config);
  workloads::OperandStream stream(workloads::Distribution::Uniform, 64,
                                  0x0dd);
  int accepted_to_0 = 0, rejected_from_0 = 0;
  std::pair<BitVec, BitVec> shard1_ops;
  bool have_shard1 = false;
  while (rejected_from_0 < 3) {
    auto [a, b] = stream.next();
    if (service.route_of(a, b) != 0) {
      if (!have_shard1) {
        shard1_ops = {a, b};
        have_shard1 = true;
      }
      continue;
    }
    if (service.submit(std::move(a), std::move(b)).has_value()) {
      ++accepted_to_0;
      ASSERT_LE(accepted_to_0, 8) << "accepted beyond per-shard capacity";
    } else {
      ++rejected_from_0;
    }
  }
  EXPECT_EQ(accepted_to_0, 8);
  // The sibling shard's queue is empty — it must still accept.
  ASSERT_TRUE(have_shard1);
  EXPECT_TRUE(service
                  .submit(std::move(shard1_ops.first),
                          std::move(shard1_ops.second))
                  .has_value());
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.rejected"), 3);
  EXPECT_EQ(counter_value(snap, "service.rejected{shard=0}"), 3);
  EXPECT_EQ(counter_value(snap, "service.rejected{shard=1}"), 0);
  service.flush();
}

TEST(ServiceSharded, NeighborStealExecutesOnThiefWithProvenance) {
  // 2 shards, all traffic hash-routed to shard 0, stealing on: shard
  // 1's idle dispatcher must lift batches from its neighbor, and every
  // stolen completion must carry the thief's shard id (Completion::
  // shard == 1) while the sums stay exact.  Sustained load with a
  // generous round cap keeps this deterministic-in-outcome even on a
  // single hardware thread.
  ServiceConfig config;
  config.pipeline.width = 64;
  config.pipeline.window = 64;  // never flags: isolate the steal path
  config.workers = 2;
  config.shards = 2;
  config.steal = service::StealPolicy::Neighbor;
  config.queue_capacity = 512;
  config.overflow = OverflowPolicy::Block;
  config.record_wall_time = false;
  telemetry::Registry registry;
  AdderService service(config, &registry);
  workloads::OperandStream stream(workloads::Distribution::Uniform, 64,
                                  0x57ea1);
  std::vector<std::pair<BitVec, BitVec>> pool;
  while (pool.size() < 256) {
    auto [a, b] = stream.next();
    if (service.route_of(a, b) == 0) pool.emplace_back(a, b);
  }
  std::vector<BitVec> sums;
  std::vector<std::future<Completion>> futures;
  bool stolen_seen = false;
  for (int round = 0; round < 400 && !stolen_seen; ++round) {
    for (const auto& [a, b] : pool) {
      auto future = service.submit(a, b);
      ASSERT_TRUE(future.has_value());
      sums.push_back(a + b);
      futures.push_back(std::move(*future));
    }
    stolen_seen = counter_or_zero(registry.snapshot(),
                                  "service.stolen{shard=1}") > 0;
  }
  service.flush();
  EXPECT_TRUE(stolen_seen) << "shard 1 never stole from its neighbor";
  int executed_on_thief = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Completion got = futures[i].get();
    EXPECT_EQ(got.sum, sums[i]);
    if (got.shard == 1) ++executed_on_thief;
  }
  EXPECT_GT(executed_on_thief, 0);
  const auto snap = registry.snapshot();
  EXPECT_EQ(counter_or_zero(snap, "service.stolen{shard=0}"), 0)
      << "shard 0 had nothing to steal from an empty neighbor";
  EXPECT_EQ(counter_value(snap, "service.completed"),
            static_cast<long long>(futures.size()));
}

TEST(ServiceSharded, SingleShardSnapshotHasNoShardLabels) {
  // shards == 1 must be byte-identical to the pre-sharding service:
  // in particular no `{shard=...}` labeled series may appear (the
  // fixed-seed determinism test above depends on this).
  AdderService service(pump_config(64, 8));
  const BitVec a = BitVec::from_u64(64, 7);
  const BitVec b = BitVec::from_u64(64, 9);
  ASSERT_TRUE(service.submit(a, b).has_value());
  service.flush();
  const auto snap = service.registry().snapshot();
  for (const auto& [key, value] : snap.counters) {
    EXPECT_EQ(key.find("{shard="), std::string::npos) << key;
  }
  for (const auto& [key, value] : snap.gauges) {
    EXPECT_EQ(key.find("{shard="), std::string::npos) << key;
  }
}

TEST(BoundedQueue, PopBatchForReportsDoneAtomicallyWithTheLastPop) {
  // The close/linger drain race: `done` must be computed under the same
  // lock as the pop, so a drainer can never see (taken == 0, done ==
  // false) forever nor exit while items remain.  The mc two-queue suite
  // (test_mc_suites.cpp) pins the interleaving; this is the plain unit
  // coverage.
  service::BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  std::vector<int> out;
  // Open queue with items: taken > 0, not done.
  auto result = queue.pop_batch_for(out, 64, std::chrono::microseconds(0),
                                    std::chrono::microseconds(1000));
  EXPECT_EQ(result.taken, 2u);
  EXPECT_FALSE(result.done);
  // Open queue, empty: times out with nothing, still not done.
  out.clear();
  result = queue.pop_batch_for(out, 64, std::chrono::microseconds(0),
                               std::chrono::microseconds(1000));
  EXPECT_EQ(result.taken, 0u);
  EXPECT_FALSE(result.done);
  // Closed with a residual item: the pop that takes the last item also
  // reports done — one call, no separate closed() check.
  EXPECT_TRUE(queue.try_push(3));
  queue.close();
  out.clear();
  result = queue.pop_batch_for(out, 64, std::chrono::microseconds(0),
                               std::chrono::microseconds(1'000'000));
  EXPECT_EQ(result.taken, 1u);
  EXPECT_EQ(out, (std::vector<int>{3}));
  EXPECT_TRUE(result.done);
}

TEST(BoundedQueue, PopBatchLingerCollectsLateArrivals) {
  service::BoundedQueue<int> queue(64);
  EXPECT_TRUE(queue.try_push(1));
  std::thread late([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(queue.try_push(2));
  });
  std::vector<int> out;
  const auto taken =
      queue.pop_batch(out, 64, std::chrono::microseconds(200'000));
  late.join();
  // The linger window must have picked up the second item.
  EXPECT_EQ(taken, 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace vlsa
