// Tests for the arithmetic service: correctness against the scalar ACA
// model, fixed-seed determinism of the telemetry snapshot, bounded-queue
// backpressure, drain-on-destroy, and multi-producer/multi-worker
// operation (the suites here also run under the `tsan` preset).

#include <gtest/gtest.h>

#include <future>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/aca.hpp"
#include "service/bounded_queue.hpp"
#include "service/service.hpp"
#include "sim/isa.hpp"
#include "telemetry/registry.hpp"
#include "util/bitvec.hpp"
#include "workloads/operand_stream.hpp"

namespace vlsa {
namespace {

using service::AdderService;
using service::Completion;
using service::OverflowPolicy;
using service::ServiceConfig;
using util::BitVec;

ServiceConfig pump_config(int width, int window,
                          std::size_t capacity = 4096) {
  ServiceConfig config;
  config.pipeline.width = width;
  config.pipeline.window = window;
  config.workers = 0;
  config.queue_capacity = capacity;
  config.record_wall_time = false;
  return config;
}

long long counter_value(const telemetry::Snapshot& snap,
                        const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "no counter named " << name;
  return -1;
}

TEST(ServiceCorrectness, PumpModeMatchesScalarModel) {
  const int width = 64, window = 8;
  AdderService service(pump_config(width, window));
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0xfeed);
  struct Expected {
    BitVec sum;
    bool flagged;
    std::future<Completion> future;
  };
  std::vector<Expected> expected;
  for (int i = 0; i < 500; ++i) {
    const auto [a, b] = stream.next();
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value());
    expected.push_back({a + b, core::aca_flag(a, b, window),
                        std::move(*future)});
  }
  service.flush();
  for (auto& e : expected) {
    const Completion got = e.future.get();
    EXPECT_EQ(got.sum, e.sum);
    EXPECT_EQ(got.flagged, e.flagged);
    EXPECT_GE(got.latency_cycles, 1);
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.completed"), 500);
  EXPECT_EQ(counter_value(snap, "service.fast_path") +
                counter_value(snap, "service.recovered"),
            500);
}

TEST(ServiceCorrectness, WideBatchDispatchMatchesScalarModel) {
  // max_batch = the detected SIMD lane width (the default): a flush
  // after >512 queued submissions makes every dispatch pop a batch
  // wider than 64 lanes, driving the wide transpose/eval/un-transpose
  // path end to end.  Window 6 at width 64 flags often enough that the
  // recovery lane runs inside wide batches too.
  const int width = 64, window = 6;
  auto config = pump_config(width, window);
  config.max_batch = sim::active_lanes();
  AdderService service(config);
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0x51d5);
  struct Expected {
    BitVec sum;
    bool flagged;
    std::future<Completion> future;
  };
  std::vector<Expected> expected;
  for (int i = 0; i < 1200; ++i) {
    const auto [a, b] = stream.next();
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value());
    expected.push_back({a + b, core::aca_flag(a, b, window),
                        std::move(*future)});
  }
  service.flush();
  int flagged = 0;
  for (auto& e : expected) {
    const Completion got = e.future.get();
    EXPECT_EQ(got.sum, e.sum);
    EXPECT_EQ(got.flagged, e.flagged);
    flagged += e.flagged ? 1 : 0;
  }
  EXPECT_GT(flagged, 0);  // the batch actually exercised recovery
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.completed"), 1200);
  EXPECT_EQ(counter_value(snap, "service.recovered"), flagged);
}

TEST(ServiceDeterminism, FixedSeedSnapshotsAreByteIdentical) {
  // Single worker (pump mode), fixed seed, wall-time recording off:
  // the full telemetry snapshot — histograms included — must be
  // bit-identical across repeats.
  auto run = [] {
    // window 4 at width 64 flags often, exercising the recovery lane.
    AdderService service(pump_config(64, 4));
    workloads::OperandStream stream(workloads::Distribution::Uniform, 64,
                                    0x5eed);
    for (int i = 0; i < 1000; ++i) {
      auto [a, b] = stream.next();
      EXPECT_TRUE(service.submit(std::move(a), std::move(b)).has_value());
      if (i % 3 == 0) service.pump();  // interleave dispatch with arrivals
    }
    service.flush();
    return service.registry().snapshot();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_GT(counter_value(first, "service.recovered"), 0);
}

TEST(ServiceCorrectness, SubmitManyMatchesPerRequestSubmit) {
  const int width = 64, window = 8;
  AdderService service(pump_config(width, window));
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0xbead);
  std::vector<std::pair<BitVec, BitVec>> ops;
  std::vector<BitVec> sums;
  for (int i = 0; i < 200; ++i) {
    auto [a, b] = stream.next();
    sums.push_back(a + b);
    ops.emplace_back(std::move(a), std::move(b));
  }
  auto futures = service.submit_many(std::move(ops));
  ASSERT_EQ(futures.size(), 200u);
  service.flush();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].has_value()) << "rejected at " << i;
    EXPECT_EQ(futures[i]->get().sum, sums[i]);
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.submitted"), 200);
  EXPECT_EQ(counter_value(snap, "service.completed"), 200);
}

TEST(ServiceBackpressure, SubmitManyRejectsTailBeyondCapacity) {
  // Pump mode with a 8-slot queue: a 12-element batch accepts the first
  // 8 and rejects the last 4, in order.
  AdderService service(pump_config(32, 4, /*capacity=*/8));
  std::vector<std::pair<BitVec, BitVec>> ops;
  for (int i = 0; i < 12; ++i) {
    ops.emplace_back(BitVec::from_u64(32, static_cast<std::uint64_t>(i)),
                     BitVec::from_u64(32, 1));
  }
  auto futures = service.submit_many(std::move(ops));
  ASSERT_EQ(futures.size(), 12u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(futures[static_cast<std::size_t>(i)].has_value()) << i;
  }
  for (int i = 8; i < 12; ++i) {
    EXPECT_FALSE(futures[static_cast<std::size_t>(i)].has_value()) << i;
  }
  service.flush();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)]->get().sum,
              BitVec::from_u64(32, static_cast<std::uint64_t>(i) + 1));
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.submitted"), 8);
  EXPECT_EQ(counter_value(snap, "service.rejected"), 4);
}

TEST(ServiceBackpressure, BoundedQueueRejectsExactlyWhenFull) {
  auto config = pump_config(32, 4, /*capacity=*/8);
  config.overflow = OverflowPolicy::Reject;
  AdderService service(config);
  const BitVec a = BitVec::from_u64(32, 1);
  const BitVec b = BitVec::from_u64(32, 2);
  std::vector<std::future<Completion>> accepted;
  for (int i = 0; i < 8; ++i) {
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value()) << "rejected below capacity, i=" << i;
    accepted.push_back(std::move(*future));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(service.submit(a, b).has_value());
  }
  {
    const auto snap = service.registry().snapshot();
    EXPECT_EQ(counter_value(snap, "service.submitted"), 8);
    EXPECT_EQ(counter_value(snap, "service.rejected"), 3);
  }
  // Draining frees capacity: the next submission is accepted again.
  service.flush();
  auto future = service.submit(a, b);
  ASSERT_TRUE(future.has_value());
  accepted.push_back(std::move(*future));
  service.flush();
  for (auto& f : accepted) {
    EXPECT_EQ(f.get().sum, BitVec::from_u64(32, 3));
  }
}

TEST(ServiceShutdown, DestructorDrainsInFlight) {
  telemetry::Registry registry;
  std::vector<std::future<Completion>> futures;
  const int width = 64;
  workloads::OperandStream stream(workloads::Distribution::Uniform, width,
                                  0xd1e);
  std::vector<BitVec> sums;
  {
    ServiceConfig config;
    config.pipeline.width = width;
    config.pipeline.window = 8;
    config.workers = 2;
    config.queue_capacity = 256;
    AdderService service(config, &registry);
    for (int i = 0; i < 2000; ++i) {
      auto [a, b] = stream.next();
      sums.push_back(a + b);
      auto future = service.submit(std::move(a), std::move(b));
      ASSERT_TRUE(future.has_value());
      futures.push_back(std::move(*future));
    }
    // Destructor runs here with requests still queued and in flight.
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Completion got = futures[i].get();  // must not hang or throw
    EXPECT_EQ(got.sum, sums[i]);
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "service.completed"), 2000);
}

TEST(ServiceShutdown, SubmitAfterCloseThrows) {
  AdderService service(pump_config(32, 4));
  service.close();
  EXPECT_THROW(
      service.submit(BitVec::from_u64(32, 1), BitVec::from_u64(32, 2)),
      std::runtime_error);
}

TEST(ServiceShutdown, OperandWidthMismatchThrows) {
  AdderService service(pump_config(32, 4));
  EXPECT_THROW(
      service.submit(BitVec::from_u64(16, 1), BitVec::from_u64(32, 2)),
      std::invalid_argument);
}

TEST(ServiceConcurrency, MultiProducerBlockPolicyCompletesAll) {
  telemetry::Registry registry;
  {
    ServiceConfig config;
    config.pipeline.width = 64;
    config.pipeline.window = 6;
    config.workers = 4;
    config.queue_capacity = 64;  // small bound: exercises blocking
    config.overflow = OverflowPolicy::Block;
    AdderService service(config, &registry);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 2000;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&service, p] {
        workloads::OperandStream stream(workloads::Distribution::Uniform,
                                        64, 100 + p);
        for (int i = 0; i < kPerProducer; ++i) {
          auto [a, b] = stream.next();
          ASSERT_TRUE(
              service.submit(std::move(a), std::move(b)).has_value());
        }
      });
    }
    for (auto& producer : producers) producer.join();
    service.flush();
    const auto snap = registry.snapshot();
    EXPECT_EQ(counter_value(snap, "service.completed"),
              kProducers * kPerProducer);
    EXPECT_EQ(counter_value(snap, "service.rejected"), 0);
  }
}

TEST(ServiceRecovery, ComplementaryTrafficCongestsRecoveryLane) {
  const int width = 64, window = 8;
  auto config = pump_config(width, window);
  config.pipeline.recovery_cycles = 2;
  AdderService service(config);
  util::Rng rng(7);
  std::vector<std::pair<BitVec, std::future<Completion>>> expected;
  for (int i = 0; i < 256; ++i) {
    const BitVec a = rng.next_bits(width);
    const BitVec b = ~a;  // full-width propagate chain: always flags
    auto future = service.submit(a, b);
    ASSERT_TRUE(future.has_value());
    expected.emplace_back(a + b, std::move(*future));
  }
  service.flush();
  for (auto& [sum, future] : expected) {
    const Completion got = future.get();
    EXPECT_EQ(got.sum, sum);
    EXPECT_TRUE(got.flagged);
    EXPECT_GE(got.latency_cycles, 1 + config.pipeline.recovery_cycles);
  }
  const auto snap = service.registry().snapshot();
  EXPECT_EQ(counter_value(snap, "service.recovered"), 256);
  EXPECT_EQ(counter_value(snap, "service.fast_path"), 0);
  // The serial recovery lane backs up: the tail is far above the median.
  for (const auto& h : snap.histograms) {
    if (h.name == "service.latency_cycles") {
      EXPECT_GT(h.p999(), h.p50());
      EXPECT_GE(h.max, 256u * 2u);  // ~2 cycles per queued recovery
    }
  }
}

TEST(ServiceTelemetry, FastPathMinimumLatencyIsOneCycle) {
  // A huge window never flags: everything takes the one-cycle fast path.
  AdderService service(pump_config(64, 64));
  workloads::OperandStream stream(workloads::Distribution::Uniform, 64, 3);
  for (int i = 0; i < 64; ++i) {
    auto [a, b] = stream.next();
    ASSERT_TRUE(service.submit(std::move(a), std::move(b)).has_value());
  }
  service.flush();
  const auto snap = service.registry().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name == "service.latency_cycles") {
      EXPECT_EQ(h.min, 1u);
      EXPECT_EQ(h.count, 64u);
    }
  }
  EXPECT_EQ(counter_value(snap, "service.recovered"), 0);
}

TEST(BoundedQueue, PushPopBatchBasics) {
  service::BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  EXPECT_TRUE(queue.try_push(4));
  EXPECT_FALSE(queue.try_push(5));  // full
  std::vector<int> out;
  EXPECT_EQ(queue.try_pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(queue.try_push(5));  // space again
  out.clear();
  EXPECT_EQ(queue.try_pop_batch(out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{4, 5}));
  EXPECT_EQ(queue.try_pop_batch(out, 10), 0u);
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  service::BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3));
  std::vector<int> out;
  // A closed queue drains without lingering...
  EXPECT_EQ(queue.pop_batch(out, 64, std::chrono::microseconds(1'000'000)),
            2u);
  // ...and then reports shutdown immediately (no block).
  EXPECT_EQ(queue.pop_batch(out, 64, std::chrono::microseconds(1'000'000)),
            0u);
}

TEST(BoundedQueue, PopBatchLingerCollectsLateArrivals) {
  service::BoundedQueue<int> queue(64);
  EXPECT_TRUE(queue.try_push(1));
  std::thread late([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(queue.try_push(2));
  });
  std::vector<int> out;
  const auto taken =
      queue.pop_batch(out, 64, std::chrono::microseconds(200'000));
  late.join();
  // The linger window must have picked up the second item.
  EXPECT_EQ(taken, 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace vlsa
