// Model-checked invariant suites over PRODUCTION concurrency code
// (docs/model_checking.md), plus the seeded-mutant tests that prove the
// checker actually catches the bug classes it exists for.
//
// The code under test is the shipped implementation, not a model:
//   * service::BoundedQueue<T, mc::Sync>   — the real queue on
//     checker-controlled mutex/condvar (service/bounded_queue.hpp).
//   * trace::BasicEventRing<mc::Atomics>   — the real seqlock ring on
//     checker-controlled atomics (trace/trace.hpp).
// Swapping the policy parameter is the only difference from production.
//
// Mutant convention: every McMutant test injects one specific bug (a
// deleted notify via Options::suppress_notify_cv, a skipped fence, a
// demoted memory order, a dropped seqlock increment, a reordered
// publish) and REQUIRES the checker to find it — and to reproduce it
// from the reported decision list.  A mutant the checker stops
// catching is a regression in the checker, not in the queue.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "mc/primitives.hpp"
#include "mc/sched.hpp"
#include "service/bounded_queue.hpp"
#include "trace/trace.hpp"

namespace mc = vlsa::mc;
using vlsa::service::BoundedQueue;
using vlsa::trace::BasicEventRing;
using vlsa::trace::EventName;
using vlsa::trace::Phase;
using vlsa::trace::TraceEvent;

namespace {

using McQueueT = BoundedQueue<int, mc::Sync>;
constexpr std::chrono::microseconds kNoLinger{0};

// ---------------------------------------------------------------------
// McQueue — no loss, no duplication, FIFO per producer, close-drain,
// linger: the queue's contract under every explored interleaving.

// Two producers, two items each, capacity 1 (maximum contention), the
// body thread consuming.  Items are tagged with their producer.
void queue_two_producer_body() {
  McQueueT q(1);
  mc::Thread p1([&] {
    MC_ASSERT(q.push_block(11));
    MC_ASSERT(q.push_block(12));
  });
  mc::Thread p2([&] {
    MC_ASSERT(q.push_block(21));
    MC_ASSERT(q.push_block(22));
  });
  std::vector<int> seen;
  std::vector<int> out;
  while (seen.size() < 4) {
    out.clear();
    (void)q.pop_batch(out, 4, kNoLinger);
    seen.insert(seen.end(), out.begin(), out.end());
  }
  p1.join();
  p2.join();
  // No loss, no duplication: each tagged item exactly once.
  for (const int want : {11, 12, 21, 22}) {
    int count = 0;
    for (const int v : seen) count += (v == want);
    MC_ASSERT(count == 1);
  }
  // FIFO per producer: 11 before 12, 21 before 22.
  std::size_t i11 = 0, i12 = 0, i21 = 0, i22 = 0;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] == 11) i11 = i;
    if (seen[i] == 12) i12 = i;
    if (seen[i] == 21) i21 = i;
    if (seen[i] == 22) i22 = i;
  }
  MC_ASSERT(i11 < i12);
  MC_ASSERT(i21 < i22);
}

TEST(McQueue, TwoProducersNoLossNoDupFifo) {
  mc::Options o;
  o.preemption_bound = 2;
  o.max_schedules = 20000;
  const mc::Result r = mc::explore(queue_two_producer_body, o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_GT(r.schedules, 100u);
}

TEST(McQueue, BulkPushBatchPop) {
  mc::Options o;
  o.preemption_bound = 2;
  o.max_schedules = 20000;
  const mc::Result r = mc::explore(
      [] {
        McQueueT q(2);
        mc::Thread p([&] {
          std::vector<int> items{1, 2, 3};
          MC_ASSERT(q.push_many_block(items) == 3);
        });
        std::vector<int> seen;
        std::vector<int> out;
        while (seen.size() < 3) {
          out.clear();
          (void)q.pop_batch(out, 2, kNoLinger);
          seen.insert(seen.end(), out.begin(), out.end());
        }
        p.join();
        MC_ASSERT(seen.size() == 3);
        // Single producer: global FIFO.
        for (int i = 0; i < 3; ++i) MC_ASSERT(seen[static_cast<std::size_t>(i)] == i + 1);
      },
      o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

TEST(McQueue, CloseDrainsThenSignalsShutdown) {
  const mc::Result r = mc::explore([] {
    McQueueT q(4);
    MC_ASSERT(q.try_push(1));
    MC_ASSERT(q.try_push(2));
    mc::Thread c([&] {
      std::vector<int> got;
      std::vector<int> out;
      for (;;) {
        out.clear();
        if (q.pop_batch(out, 4, kNoLinger) == 0) break;  // shutdown signal
        got.insert(got.end(), out.begin(), out.end());
      }
      // Everything queued before close drains, in order.
      MC_ASSERT(got.size() == 2);
      MC_ASSERT(got[0] == 1 && got[1] == 2);
    });
    q.close();
    MC_ASSERT(!q.try_push(3));  // closed: pushes fail
    c.join();
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(McQueue, LingerCollectsLateArrivals) {
  // The consumer lingers (timed wait) after its first item; whatever
  // interleaving the producer's second push lands in, the consumer
  // never deadlocks and eventually sees both items.
  mc::Options o;
  o.preemption_bound = 2;
  o.max_schedules = 20000;
  const mc::Result r = mc::explore(
      [] {
        McQueueT q(4);
        mc::Thread p([&] {
          MC_ASSERT(q.push_block(1));
          MC_ASSERT(q.push_block(2));
        });
        std::vector<int> seen;
        std::vector<int> out;
        while (seen.size() < 2) {
          out.clear();
          const std::size_t n =
              q.pop_batch(out, 2, std::chrono::microseconds(1000));
          MC_ASSERT(n == out.size());
          MC_ASSERT(n >= 1);  // not closed: blocking pop yields >= 1
          seen.insert(seen.end(), out.begin(), out.end());
        }
        p.join();
        MC_ASSERT(seen[0] == 1 && seen[1] == 2);
      },
      o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// The acceptance configuration: 2 producers, 2 consumers, capacity 1.
// Exploration must cover >= 10k distinct interleavings inside the CI
// budget without finding a violation.
TEST(McCoverage, TwoProducerTwoConsumerTenThousandSchedules) {
  mc::Options o;
  o.max_schedules = 12000;
  const mc::Result r = mc::explore(
      [] {
        McQueueT q(1);
        mc::Thread p1([&] { MC_ASSERT(q.push_block(1)); });
        mc::Thread p2([&] { MC_ASSERT(q.push_block(2)); });
        mc::atomic<int> popped{0};
        auto consume = [&] {
          std::vector<int> out;
          for (;;) {
            out.clear();
            const std::size_t n = q.pop_batch(out, 2, kNoLinger);
            if (n == 0) break;  // closed and empty
            popped.fetch_add(static_cast<int>(n));
          }
        };
        mc::Thread c1(consume);
        mc::Thread c2(consume);
        p1.join();
        p2.join();
        q.close();
        c1.join();
        c2.join();
        MC_ASSERT(popped.load() == 2);
      },
      o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_GE(r.schedules, 10000u);
}

// ---------------------------------------------------------------------
// McRing — the seqlock ring: a concurrent collector never observes a
// torn payload, and the writer never blocks on the collector.

// Events whose seven encoded words are pairwise distinct, so any
// cross-event mix of words decodes to something that matches none.
TraceEvent ring_event(int i) {
  TraceEvent e;
  e.ts_ns = 0x1000u * static_cast<std::uint64_t>(i + 1) + 1;
  e.dur_ns = 0x2000u * static_cast<std::uint64_t>(i + 1) + 2;
  e.tid = static_cast<std::uint32_t>(i + 1);
  e.name = static_cast<EventName>(i % 3);
  e.phase = Phase::kComplete;
  e.args.batch = 0x3000u * static_cast<std::uint64_t>(i + 1) + 3;
  e.args.lane = i + 4;
  e.args.k = i + 5;
  e.args.er = i % 2;
  e.args.chain = i + 6;
  e.args.a_lo = 0x4000u * static_cast<std::uint64_t>(i + 1) + 7;
  e.args.b_lo = 0x5000u * static_cast<std::uint64_t>(i + 1) + 8;
  e.args.has_operands = true;
  return e;
}

bool matches_some_pushed(const TraceEvent& got, int n_pushed) {
  const auto words = got.encode();
  for (int i = 0; i < n_pushed; ++i) {
    if (words == ring_event(i).encode()) return true;
  }
  return false;
}

// Capacity 2, three pushes: the third overwrites slot 0 while the
// collector may be mid-copy — the torn-read window the seqlock closes.
void ring_body(bool skip_busy_fence) {
  BasicEventRing<mc::Atomics> ring(2);
  // Quiescent pre-fill: both slots written by this thread before the
  // writer spawns, then a seq_cst store to flush the store buffer so
  // the committed state is the full two-event window.  Exploration
  // then concentrates on the one race the busy fence guards: an
  // overwriting push against a concurrent collector.
  ring.push(ring_event(0));
  ring.push(ring_event(1));
  mc::atomic<int> prefill_flush{0};
  prefill_flush.store(1);
  mc::Thread writer([&] {
    if (skip_busy_fence) {
      ring.push_skipping_busy_fence_for_test(ring_event(2));
    } else {
      ring.push(ring_event(2));
    }
  });
  std::vector<TraceEvent> out;
  ring.collect(out);
  for (const TraceEvent& e : out) {
    MC_ASSERT(matches_some_pushed(e, 3));
  }
  writer.join();
  // Quiescent collect sees exactly the retained window, in order.
  out.clear();
  MC_ASSERT(ring.collect(out) == 2);
  MC_ASSERT(matches_some_pushed(out[0], 3));
  MC_ASSERT(matches_some_pushed(out[1], 3));
  MC_ASSERT(ring.pushed() == 3);
}

TEST(McRing, CollectorNeverTornInterleaved) {
  mc::Options o;
  o.preemption_bound = 2;
  o.max_schedules = 20000;
  const mc::Result r = mc::explore([] { ring_body(false); }, o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

TEST(McRing, CollectorNeverTornWeakMemory) {
  // With store buffers modeled, the writer's fences carry the proof.
  mc::Options o;
  o.weak_memory = true;
  o.mode = mc::Options::Mode::kRandom;
  o.max_schedules = 2000;
  o.seed = 11;
  const mc::Result r = mc::explore([] { ring_body(false); }, o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

TEST(McRing, WriterNeverBlocksOnCollector) {
  // The writer's step count is bounded regardless of what the
  // collector does: a tight per-execution step budget still passes.
  mc::Options o;
  o.max_steps = 400;
  o.preemption_bound = 1;
  o.max_schedules = 5000;
  const mc::Result r = mc::explore([] { ring_body(false); }, o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// ---------------------------------------------------------------------
// McService — completion/promise handoff over the production queue.

TEST(McService, CompletionHandoffPublishesResult) {
  // Worker pops a request, writes the result cell (instrumented
  // relaxed atomic — shared data the checker schedules around), then
  // publishes via the done flag — the probe below may observe done==1
  // at any interleaving point and must then see the full result.
  const mc::Result r = mc::explore([] {
    McQueueT q(2);
    mc::atomic<int> result{0};
    mc::atomic<int> done{0};
    mc::Thread worker([&] {
      std::vector<int> out;
      while (out.empty()) (void)q.pop_batch(out, 1, kNoLinger);
      result.store(out[0] * 2, std::memory_order_relaxed);
      done.store(1, std::memory_order_release);
    });
    MC_ASSERT(q.push_block(21));
    if (done.load(std::memory_order_acquire) == 1) {
      MC_ASSERT(result.load(std::memory_order_relaxed) == 42);
    }
    worker.join();
    MC_ASSERT(done.load() == 1 && result.load() == 42);
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(McService, CompetingWorkersDeliverExactlyOnce) {
  mc::Options o;
  o.preemption_bound = 2;
  o.max_schedules = 20000;
  const mc::Result r = mc::explore(
      [] {
        McQueueT q(2);
        mc::atomic<int> delivered0{0};
        mc::atomic<int> delivered1{0};
        auto work = [&] {
          std::vector<int> out;
          for (;;) {
            out.clear();
            if (q.pop_batch(out, 2, kNoLinger) == 0) break;
            for (const int i : out) {
              if (i == 0) delivered0.fetch_add(1);
              if (i == 1) delivered1.fetch_add(1);
            }
          }
        };
        mc::Thread w1(work);
        mc::Thread w2(work);
        MC_ASSERT(q.push_block(0));
        MC_ASSERT(q.push_block(1));
        q.close();
        w1.join();
        w2.join();
        MC_ASSERT(delivered0.load() == 1);
        MC_ASSERT(delivered1.load() == 1);
      },
      o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// ---------------------------------------------------------------------
// McShardedDrain — the N-shard close/drain protocol the sharded
// service's steal-capable workers run (service.cpp worker_loop):
// pop_batch_for computes `done` (closed && empty) under the same lock
// as the pop, so "may I exit?" and "did I get the last item?" are one
// atomic question.  The two-step alternative — a timed pop returning 0
// followed by a separate closed() probe — loses the item pushed
// between the two steps; McMutant.TimedDrainSeparateClosedCheckLosesItem
// below pins that schedule.
//
// Loop-shape note: timed waits are always eligible via the modeled
// timeout path, so an unbounded retry loop would spin into the step
// budget.  These bodies therefore make a BOUNDED number of concurrent
// probes and finish with a post-join drain that the protocol
// guarantees completes in one call.

constexpr std::chrono::microseconds kProbeTimeout{100};

TEST(McShardedDrain, DoneImpliesTheOnlyConsumerTookEverything) {
  // Single queue, single consumer racing a push+close: whenever a
  // probe reports done, this consumer — the only one — must already
  // hold every pushed item.  This is the atomicity the separate
  // closed() check lacks.
  mc::Options o;
  o.preemption_bound = 2;
  o.max_schedules = 20000;
  const mc::Result r = mc::explore(
      [] {
        McQueueT q(2);
        mc::Thread p([&] {
          MC_ASSERT(q.push_block(7));
          q.close();
        });
        int drained = 0;
        bool done = false;
        std::vector<int> out;
        for (int probe = 0; probe < 2 && !done; ++probe) {
          out.clear();
          const auto result = q.pop_batch_for(out, 2, kNoLinger,
                                              kProbeTimeout);
          drained += static_cast<int>(result.taken);
          done = result.done;
          if (done) MC_ASSERT(drained == 1);  // exit implies drained
        }
        p.join();
        if (!done) {
          // Closed queue: one call returns the full residue AND done —
          // no second "see the close" call like pop_batch needs.
          out.clear();
          const auto result = q.pop_batch_for(out, 2, kNoLinger,
                                              kProbeTimeout);
          drained += static_cast<int>(result.taken);
          MC_ASSERT(result.done);
        }
        MC_ASSERT(drained == 1);
      },
      o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  // Sleep-set pruning leaves a small but real frontier here; the point
  // is exhaustion without a violation, not raw schedule count.
  EXPECT_GE(r.schedules, 20u);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(McShardedDrain, TwoQueueNeighborStealDrainNeverStrandsItems) {
  // The full sharded shape: two shard queues, one producer/closer,
  // two drainers each probing its own queue then stealing from the
  // neighbor (StealPolicy::Neighbor's pop pattern).  After both
  // drainers and the closer finish, the body's final pop_batch_for on
  // each queue must report done immediately, and every item must have
  // been popped exactly once across own-pops, steals, and the final
  // sweep.
  mc::Options o;
  o.preemption_bound = 2;
  o.max_schedules = 40000;
  const mc::Result r = mc::explore(
      [] {
        McQueueT q0(2);
        McQueueT q1(2);
        mc::atomic<int> count7{0};
        mc::atomic<int> count8{0};
        auto tally = [&](const std::vector<int>& out) {
          for (const int v : out) {
            MC_ASSERT(v == 7 || v == 8);
            (v == 7 ? count7 : count8).fetch_add(1);
          }
        };
        mc::Thread p([&] {
          MC_ASSERT(q0.push_block(7));
          MC_ASSERT(q1.push_block(8));
          q0.close();
          q1.close();
        });
        auto drain_pass = [&](McQueueT& own, McQueueT& victim) {
          std::vector<int> out;
          (void)own.pop_batch_for(out, 2, kNoLinger, kProbeTimeout);
          tally(out);
          out.clear();
          (void)victim.try_pop_batch(out, 2);  // the neighbor steal
          tally(out);
        };
        mc::Thread d0([&] { drain_pass(q0, q1); });
        mc::Thread d1([&] { drain_pass(q1, q0); });
        d0.join();
        d1.join();
        p.join();
        // Quiescent sweep: both queues are closed, so one call each
        // must take any residue and report done at the same time.
        std::vector<int> out;
        const auto r0 = q0.pop_batch_for(out, 2, kNoLinger, kProbeTimeout);
        tally(out);
        MC_ASSERT(r0.done);
        out.clear();
        const auto r1 = q1.pop_batch_for(out, 2, kNoLinger, kProbeTimeout);
        tally(out);
        MC_ASSERT(r1.done);
        // No loss, no duplication across own-pop, steal, and sweep.
        MC_ASSERT(count7.load() == 1);
        MC_ASSERT(count8.load() == 1);
      },
      o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_GT(r.schedules, 100u);
}

// ---------------------------------------------------------------------
// McMutant — seeded bugs the checker MUST catch, each replayable from
// its reported decision list.

void expect_replayable_failure(const std::function<void()>& body,
                               const mc::Result& r, const mc::Options& o) {
  ASSERT_TRUE(r.failed) << "mutant not caught after " << r.schedules
                        << " schedules";
  ASSERT_FALSE(r.failing.empty());
  const mc::Result again = mc::replay(body, r.failing, o);
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.message, r.message);
  EXPECT_EQ(again.trace, r.trace);
}

// Mutant 1 (the lost-wakeup regression of docs/model_checking.md):
// delete BoundedQueue's not_empty notify — registration order in the
// queue is mutex m0, not_empty c0, not_full c1 — and the consumer
// sleeps forever on a queue with an item in it.
TEST(McMutant, QueueLostNotEmptyWakeupDeadlocks) {
  auto body = [] {
    McQueueT q(1);
    mc::Thread p([&] { MC_ASSERT(q.push_block(7)); });
    std::vector<int> out;
    while (out.empty()) (void)q.pop_batch(out, 1, kNoLinger);
    p.join();
    MC_ASSERT(out[0] == 7);
  };
  mc::Options o;
  o.suppress_notify_cv = 0;  // not_empty_
  // Iterative bounding: the failure found is minimal in preemptions.
  const mc::Result r = mc::explore_iterative(body, 2, o);
  expect_replayable_failure(body, r, o);
  EXPECT_NE(r.message.find("deadlock"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("cv-wait"), std::string::npos) << r.message;
  // Pin the minimal failing schedule: exploration is deterministic, so
  // this string only moves when the scheduler's choice order changes —
  // review such a diff, then update the pin.
  EXPECT_EQ(mc::format_schedule(r.failing),
            mc::format_schedule(mc::explore_iterative(body, 2, o).failing));
}

// Mutant 2: delete the not_full notify — blocked producers never learn
// the consumer freed capacity.
TEST(McMutant, QueueLostNotFullWakeupDeadlocks) {
  auto body = [] {
    McQueueT q(1);
    mc::Thread p([&] {
      MC_ASSERT(q.push_block(1));
      MC_ASSERT(q.push_block(2));  // blocks on the full queue
    });
    std::vector<int> seen;
    std::vector<int> out;
    while (seen.size() < 2) {
      out.clear();
      (void)q.pop_batch(out, 1, kNoLinger);
      seen.insert(seen.end(), out.begin(), out.end());
    }
    p.join();
  };
  mc::Options o;
  o.suppress_notify_cv = 1;  // not_full_
  const mc::Result r = mc::explore_iterative(body, 2, o);
  expect_replayable_failure(body, r, o);
  EXPECT_NE(r.message.find("deadlock"), std::string::npos) << r.message;
}

// Mutant 3: delete close()'s not_empty broadcast — the shutdown signal
// never reaches a sleeping consumer.
TEST(McMutant, QueueLostCloseWakeupDeadlocks) {
  auto body = [] {
    McQueueT q(1);
    mc::Thread c([&] {
      std::vector<int> out;
      (void)q.pop_batch(out, 1, kNoLinger);  // returns 0 after close
      MC_ASSERT(out.empty());
    });
    q.close();
    c.join();
  };
  mc::Options o;
  o.suppress_notify_cv = 0;
  const mc::Result r = mc::explore_iterative(body, 2, o);
  expect_replayable_failure(body, r, o);
  EXPECT_NE(r.message.find("deadlock"), std::string::npos) << r.message;
}

// Mutant 4: skip the ring writer's busy-mark release fence (the hook
// trace.hpp ships for exactly this test).  Under the store-buffer
// model the overwriting payload can commit before the odd mark, and a
// mid-copy collector validates a torn event.
TEST(McMutant, RingSkippedBusyFenceTearsPayload) {
  auto body = [] { ring_body(true); };
  mc::Options o;
  o.weak_memory = true;
  o.mode = mc::Options::Mode::kRandom;
  o.max_schedules = 20000;
  o.seed = 3;
  const mc::Result r = mc::explore(body, o);
  expect_replayable_failure(body, r, o);
  EXPECT_NE(r.message.find("matches_some_pushed"), std::string::npos)
      << r.message;
}

// A three-word seqlock small enough to explore exhaustively — the
// memory-order mutants below are exact miniatures of the EventRing
// writer protocol.
struct MiniSeqlock {
  mc::atomic<std::uint64_t> seq{0};
  mc::atomic<std::uint64_t> w0{0};
  mc::atomic<std::uint64_t> w1{0};

  void write(std::uint64_t a, std::uint64_t b, bool drop_odd_mark,
             bool demote_publish_release) {
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    if (!drop_odd_mark) seq.store(s + 1, std::memory_order_relaxed);
    mc::fence_release();
    w0.store(a, std::memory_order_relaxed);
    w1.store(b, std::memory_order_relaxed);
    seq.store(s + 2, demote_publish_release ? std::memory_order_relaxed
                                            : std::memory_order_release);
  }

  // True = valid snapshot per the seqlock handshake.
  bool read(std::uint64_t* a, std::uint64_t* b) const {
    const std::uint64_t s1 = seq.load(std::memory_order_acquire);
    if (s1 & 1) return false;
    *a = w0.load(std::memory_order_relaxed);
    *b = w1.load(std::memory_order_relaxed);
    mc::fence_acquire();
    return seq.load(std::memory_order_relaxed) == s1;
  }
};

void mini_seqlock_body(bool drop_odd_mark, bool demote_publish_release) {
  MiniSeqlock s;
  mc::Thread writer([&] {
    s.write(0xAAAA, 0xBBBB, drop_odd_mark, demote_publish_release);
  });
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  if (s.read(&a, &b)) {
    // A validated snapshot is all-old or all-new, never a mix.
    MC_ASSERT((a == 0 && b == 0) || (a == 0xAAAA && b == 0xBBBB));
  }
  writer.join();
}

TEST(McMutant, SeqlockIntactProtocolPasses) {
  const mc::Result sc = mc::explore([] { mini_seqlock_body(false, false); });
  EXPECT_FALSE(sc.failed) << sc.message << "\n" << sc.trace;
  mc::Options o;
  o.weak_memory = true;
  const mc::Result wk =
      mc::explore([] { mini_seqlock_body(false, false); }, o);
  EXPECT_FALSE(wk.failed) << wk.message << "\n" << wk.trace;
}

// Mutant 5: drop the odd busy mark — a reader overlapping the write
// validates a half-written payload.  Caught under plain interleaving
// semantics, no weak memory needed.
TEST(McMutant, SeqlockDroppedBusyMarkTears) {
  auto body = [] { mini_seqlock_body(true, false); };
  const mc::Options o;
  const mc::Result r = mc::explore(body, o);
  expect_replayable_failure(body, r, o);
}

// Mutant 6: demote the publishing store from release to relaxed — with
// store buffers the new even seq can commit before the payload words,
// and the reader validates stale/mixed data.
TEST(McMutant, SeqlockDemotedReleasePublishTears) {
  auto body = [] { mini_seqlock_body(false, true); };
  mc::Options o;
  o.weak_memory = true;
  const mc::Result r = mc::explore(body, o);
  expect_replayable_failure(body, r, o);
}

// Mutant 7: the worker publishes completion before writing the result
// (the classic reordered-publish service bug).
TEST(McMutant, ServicePublishBeforeResultCaught) {
  auto body = [] {
    McQueueT q(2);
    // The result cell is shared data: it must be an instrumented
    // atomic (relaxed = "plain field the checker can see") or the
    // window between the two writes is not a scheduling point.
    mc::atomic<int> result{0};
    mc::atomic<int> done{0};
    mc::Thread worker([&] {
      std::vector<int> out;
      while (out.empty()) (void)q.pop_batch(out, 1, kNoLinger);
      done.store(1, std::memory_order_release);  // MUTANT: before result
      result.store(out[0] * 2, std::memory_order_relaxed);
    });
    MC_ASSERT(q.push_block(21));
    if (done.load(std::memory_order_acquire) == 1) {
      MC_ASSERT(result.load(std::memory_order_relaxed) == 42);
    }
    worker.join();
  };
  const mc::Options o;
  const mc::Result r = mc::explore(body, o);
  expect_replayable_failure(body, r, o);
  EXPECT_NE(r.message.find("== 42"), std::string::npos) << r.message;
}

// Mutant 8: the drain race PopResult::done exists to close.  Exit on
// "timed pop took nothing AND a separate closed() probe says closed":
// between the pop's unlock and the closed() call the producer pushes
// the last item and closes, the probe sees closed == true, and the
// drainer exits with the item stranded.  The sharded close sequence
// (close all queues, then join all dispatchers) makes this window real
// — which is why worker_loop exits on the atomic `done` instead.
TEST(McMutant, TimedDrainSeparateClosedCheckLosesItem) {
  auto body = [] {
    McQueueT q(2);
    mc::Thread p([&] {
      MC_ASSERT(q.push_block(7));
      q.close();
    });
    int drained = 0;
    bool exited = false;
    std::vector<int> out;
    for (int probe = 0; probe < 3 && !exited; ++probe) {
      out.clear();
      drained += static_cast<int>(
          q.pop_batch_for(out, 2, kNoLinger, kProbeTimeout).taken);
      // MUTANT: ignore PopResult::done; re-derive the exit condition
      // from a second, separately-locked probe.
      if (out.empty() && q.closed()) exited = true;
    }
    p.join();
    if (!exited) {
      out.clear();
      drained += static_cast<int>(
          q.pop_batch_for(out, 2, kNoLinger, kProbeTimeout).taken);
    }
    MC_ASSERT(drained == 1);
  };
  mc::Options o;
  const mc::Result r = mc::explore_iterative(body, 2, o);
  expect_replayable_failure(body, r, o);
  EXPECT_NE(r.message.find("drained == 1"), std::string::npos) << r.message;
}

}  // namespace
