// Tests for the CSA reduction utilities and the speculative multi-operand
// adder (behavioral and gate level).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "multiop/csa.hpp"
#include "multiop/multi_add.hpp"
#include "netlist/simulator.hpp"
#include "netlist/sta.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using multiop::exact_multi_add;
using multiop::speculative_multi_add;
using util::BitVec;
using util::Rng;

TEST(CsaWords, ReductionPreservesSum) {
  Rng rng(71);
  for (int m : {1, 2, 3, 4, 7, 15}) {
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<BitVec> addends;
      BitVec total(48);
      for (int i = 0; i < m; ++i) {
        addends.push_back(rng.next_bits(48));
        total = total + addends.back();
      }
      const auto [x, y] = multiop::csa_reduce_words(addends, 48);
      EXPECT_EQ(x + y, total) << "m=" << m;
    }
  }
}

TEST(CsaWords, EmptyAndSingleton) {
  const auto [x0, y0] = multiop::csa_reduce_words({}, 8);
  EXPECT_TRUE(x0.is_zero());
  EXPECT_TRUE(y0.is_zero());
  const BitVec v = BitVec::from_u64(8, 42);
  const auto [x1, y1] = multiop::csa_reduce_words({v}, 8);
  EXPECT_EQ(x1 + y1, v);
}

TEST(MultiAdd, ExactMatchesIteratedAddition) {
  Rng rng(72);
  std::vector<BitVec> addends;
  std::uint64_t native = 0;
  for (int i = 0; i < 9; ++i) {
    const std::uint64_t v = rng.next_u64();
    addends.push_back(BitVec::from_u64(64, v));
    native += v;
  }
  EXPECT_EQ(exact_multi_add(addends).low_u64(), native);
}

TEST(MultiAdd, SpeculativeSoundness) {
  // flagged == false implies the speculative total is exact — over many
  // random multi-operand sums at a smallish window.
  Rng rng(73);
  int flagged = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<BitVec> addends;
    for (int i = 0; i < 6; ++i) addends.push_back(rng.next_bits(64));
    const auto result = speculative_multi_add(addends, 8);
    if (result.flagged) {
      ++flagged;
    } else {
      ASSERT_EQ(result.sum, exact_multi_add(addends));
    }
  }
  EXPECT_GT(flagged, 0);       // k=8 at 64 bits misses sometimes
  EXPECT_LT(flagged, 1500);    // ...but not mostly
}

TEST(MultiAdd, WideWindowIsExact) {
  Rng rng(74);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<BitVec> addends;
    for (int i = 0; i < 5; ++i) addends.push_back(rng.next_bits(32));
    const auto result = speculative_multi_add(addends, 32);
    EXPECT_EQ(result.sum, exact_multi_add(addends));
    EXPECT_FALSE(result.flagged);
  }
}

TEST(MultiAdd, RejectsBadInput) {
  EXPECT_THROW(exact_multi_add({}), std::invalid_argument);
  const std::vector<BitVec> mismatched{BitVec(8), BitVec(9)};
  EXPECT_THROW(exact_multi_add(mismatched), std::invalid_argument);
  const std::vector<BitVec> ok{BitVec(8), BitVec(8)};
  EXPECT_THROW(speculative_multi_add(ok, 0), std::invalid_argument);
}

TEST(MultiAddNetlist, ExactMatchesBehavioralRandom) {
  for (const auto& [width, ops] : std::vector<std::pair<int, int>>{
           {8, 3}, {12, 4}, {16, 6}}) {
    const auto m = multiop::build_exact_multi_adder(width, ops);
    const netlist::Simulator sim(m.nl);
    const auto index = netlist::stim::input_index_map(m.nl);
    Rng rng(75 + width);
    std::vector<std::vector<BitVec>> cases(64);
    std::vector<std::uint64_t> stim(m.nl.inputs().size(), 0);
    for (int lane = 0; lane < 64; ++lane) {
      for (int op = 0; op < ops; ++op) {
        cases[static_cast<std::size_t>(lane)].push_back(
            rng.next_bits(width));
        netlist::stim::load_operand(
            stim, index, m.operands[static_cast<std::size_t>(op)],
            cases[static_cast<std::size_t>(lane)].back(), lane);
      }
    }
    const auto values = sim.eval(stim);
    for (int lane = 0; lane < 64; ++lane) {
      ASSERT_EQ(netlist::stim::read_bus(values, m.sum, lane),
                exact_multi_add(cases[static_cast<std::size_t>(lane)]))
          << "width=" << width << " ops=" << ops << " lane=" << lane;
    }
  }
}

TEST(MultiAddNetlist, SpeculativeMatchesBehavioral) {
  const int width = 16, ops = 5, k = 5;
  const auto m = multiop::build_speculative_multi_adder(width, ops, k);
  ASSERT_NE(m.error, netlist::kNoNet);
  const netlist::Simulator sim(m.nl);
  const auto index = netlist::stim::input_index_map(m.nl);
  Rng rng(76);
  std::vector<std::vector<BitVec>> cases(64);
  std::vector<std::uint64_t> stim(m.nl.inputs().size(), 0);
  for (int lane = 0; lane < 64; ++lane) {
    for (int op = 0; op < ops; ++op) {
      cases[static_cast<std::size_t>(lane)].push_back(rng.next_bits(width));
      netlist::stim::load_operand(
          stim, index, m.operands[static_cast<std::size_t>(op)],
          cases[static_cast<std::size_t>(lane)].back(), lane);
    }
  }
  const auto values = sim.eval(stim);
  for (int lane = 0; lane < 64; ++lane) {
    const bool error = (values[static_cast<std::size_t>(m.error)] >> lane) & 1;
    const BitVec sum = netlist::stim::read_bus(values, m.sum, lane);
    if (!error) {
      ASSERT_EQ(sum, exact_multi_add(cases[static_cast<std::size_t>(lane)]));
    }
  }
}

TEST(MultiAddNetlist, SpeculativeSavesDelayAtScale) {
  const int width = 128, ops = 8;
  const auto exact = multiop::build_exact_multi_adder(width, ops);
  const auto spec = multiop::build_speculative_multi_adder(width, ops, 12);
  EXPECT_LT(netlist::analyze_timing(spec.nl).critical_delay_ns,
            netlist::analyze_timing(exact.nl).critical_delay_ns);
}

TEST(MultiAddNetlist, RejectsBadDimensions) {
  EXPECT_THROW(multiop::build_exact_multi_adder(0, 4), std::invalid_argument);
  EXPECT_THROW(multiop::build_exact_multi_adder(8, 1), std::invalid_argument);
  EXPECT_THROW(multiop::build_speculative_multi_adder(8, 4, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
