// Tests for the error-magnitude metrics and the exact longest-run
// moments.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/aca_probability.hpp"
#include "analysis/longest_run.hpp"
#include "core/error_metrics.hpp"
#include "util/bitvec.hpp"

namespace vlsa {
namespace {

using core::measure_error_magnitude;
using core::normalized_distance;
using util::BitVec;

TEST(NormalizedDistance, KnownValues) {
  const BitVec a = BitVec::from_u64(8, 200);
  const BitVec b = BitVec::from_u64(8, 72);
  EXPECT_DOUBLE_EQ(normalized_distance(a, b), 128.0 / 256.0);
  EXPECT_DOUBLE_EQ(normalized_distance(b, a), 128.0 / 256.0);
  EXPECT_DOUBLE_EQ(normalized_distance(a, a), 0.0);
  EXPECT_THROW(normalized_distance(BitVec(8), BitVec(9)),
               std::invalid_argument);
}

TEST(NormalizedDistance, WideValuesStayFinite) {
  const BitVec big = BitVec::ones(2048);
  const BitVec zero(2048);
  EXPECT_NEAR(normalized_distance(big, zero), 1.0, 1e-12);
}

TEST(ErrorMagnitude, RateAgreesWithDp) {
  const auto m = measure_error_magnitude(256, 8, 40000, 0xe1);
  EXPECT_NEAR(m.error_rate / analysis::aca_wrong_probability(256, 8), 1.0,
              0.08);
}

TEST(ErrorMagnitude, ErrorsAreLargeButRare) {
  // The ACA error signature: a wrong sum differs at bit >= k-1, so the
  // *conditional* error magnitude is at least 2^(k-1)/2^n of full scale.
  const int n = 128, k = 10;
  const auto m = measure_error_magnitude(n, k, 30000, 0xe2);
  ASSERT_GT(m.wrong, 0);
  EXPECT_GE(m.min_error_bit, k - 1);
  const double min_conditional = std::ldexp(1.0, k - 1 - n);
  EXPECT_GE(m.normalized_med / m.error_rate, min_conditional);
}

TEST(ErrorMagnitude, PerfectWindowHasZeroEverything) {
  const auto m = measure_error_magnitude(32, 33, 2000, 0xe3);
  EXPECT_EQ(m.wrong, 0);
  EXPECT_DOUBLE_EQ(m.normalized_med, 0.0);
  EXPECT_DOUBLE_EQ(m.mred_given_wrong, 0.0);
  EXPECT_EQ(m.min_error_bit, -1);
}

TEST(ErrorMagnitude, RejectsBadArgs) {
  EXPECT_THROW(measure_error_magnitude(0, 4, 10, 1), std::invalid_argument);
  EXPECT_THROW(measure_error_magnitude(8, 0, 10, 1), std::invalid_argument);
  EXPECT_THROW(measure_error_magnitude(8, 4, 0, 1), std::invalid_argument);
}

TEST(RunMoments, SmallWidthByHand) {
  // n = 2: runs 0 (prob 1/4: "00"), 1 (1/2: "01","10"), 2 (1/4: "11").
  const auto m = analysis::longest_run_moments(2);
  EXPECT_NEAR(m.mean, 1.0, 1e-12);
  EXPECT_NEAR(m.variance, 0.5, 1e-12);
}

TEST(RunMoments, MatchesSchillingAsymptotics) {
  for (int n : {256, 1024}) {
    const auto m = analysis::longest_run_moments(n);
    EXPECT_NEAR(m.mean, analysis::schilling_expected_run(n), 0.4) << n;
    EXPECT_NEAR(m.variance, analysis::schilling_run_variance(), 0.25) << n;
  }
}

TEST(RunMoments, RejectsBadArgs) {
  EXPECT_THROW(analysis::longest_run_moments(0), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
