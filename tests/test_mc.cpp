// Self-tests of the deterministic concurrency model checker (src/mc/,
// docs/model_checking.md): the scheduler must FIND seeded races,
// deadlocks, and livelocks; must NOT flag correct code; and every
// failure it reports must replay deterministically from its decision
// list.  The production invariant suites (queue/ring/service) live in
// test_mc_suites.cpp — this file pins down the checker itself.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>

#include "mc/primitives.hpp"
#include "mc/sched.hpp"

namespace mc = vlsa::mc;

namespace {

// The canonical lost-update race: two threads load-then-store an
// increment.  Needs one preemption between t1's load and store.
void racy_increment() {
  mc::atomic<int> a{0};
  mc::Thread t1([&] {
    const int v = a.load();
    a.store(v + 1);
  });
  mc::Thread t2([&] {
    const int v = a.load();
    a.store(v + 1);
  });
  t1.join();
  t2.join();
  MC_ASSERT(a.load() == 2);
}

TEST(McSched, FindsRacyIncrement) {
  const mc::Result r = mc::explore(racy_increment);
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.message.find("MC_ASSERT"), std::string::npos) << r.message;
  EXPECT_FALSE(r.failing.empty());
  EXPECT_FALSE(r.trace.empty());
  // The trace names threads and operation sites.
  EXPECT_NE(r.trace.find("atomic::load"), std::string::npos) << r.trace;
}

TEST(McSched, CleanFetchAddPassesExhaustively) {
  const mc::Result r = mc::explore([] {
    mc::atomic<int> a{0};
    mc::Thread t1([&] { a.fetch_add(1); });
    mc::Thread t2([&] { a.fetch_add(1); });
    t1.join();
    t2.join();
    MC_ASSERT(a.load() == 2);
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_GT(r.schedules, 1u);  // it really did explore alternatives
}

TEST(McSched, DetectsAbbaDeadlock) {
  const mc::Result r = mc::explore([] {
    mc::Mutex ma;
    mc::Mutex mb;
    mc::Thread t1([&] {
      mc::LockGuard a(ma);
      mc::LockGuard b(mb);
    });
    mc::Thread t2([&] {
      mc::LockGuard b(mb);
      mc::LockGuard a(ma);
    });
    t1.join();
    t2.join();
  });
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.message.find("deadlock"), std::string::npos) << r.message;
  // The report names each blocked thread and what it is blocked on.
  EXPECT_NE(r.message.find("t1"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("t2"), std::string::npos) << r.message;
}

TEST(McSched, StepBudgetCatchesLivelock) {
  mc::Options o;
  o.max_steps = 200;
  const mc::Result r = mc::explore(
      [] {
        mc::atomic<int> flag{0};
        mc::Thread t([&] { /* never sets the flag */ });
        while (flag.load() == 0) mc::yield();
        t.join();
      },
      o);
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.message.find("step budget"), std::string::npos) << r.message;
}

TEST(McSched, MutexMisuseIsCaught) {
  const mc::Result r = mc::explore([] {
    mc::Mutex m;
    m.unlock();  // never locked
  });
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.message.find("unlock"), std::string::npos) << r.message;
}

TEST(McSched, RandomModeFindsRace) {
  mc::Options o;
  o.mode = mc::Options::Mode::kRandom;
  o.max_schedules = 500;
  o.seed = 7;
  const mc::Result r = mc::explore(racy_increment, o);
  EXPECT_TRUE(r.failed) << "random walk (seed 7) should hit the race";
  // Same seed, same result: the walk is deterministic.
  const mc::Result r2 = mc::explore(racy_increment, o);
  EXPECT_EQ(mc::format_schedule(r.failing), mc::format_schedule(r2.failing));
}

TEST(McSched, PreemptionBoundGatesDepth) {
  // The lost update needs one preemption: bound 0 must miss it (and
  // prove so exhaustively), bound 1 must find it.
  mc::Options o0;
  o0.preemption_bound = 0;
  const mc::Result r0 = mc::explore(racy_increment, o0);
  EXPECT_FALSE(r0.failed) << r0.message;
  EXPECT_FALSE(r0.budget_exhausted);

  mc::Options o1;
  o1.preemption_bound = 1;
  const mc::Result r1 = mc::explore(racy_increment, o1);
  EXPECT_TRUE(r1.failed);
}

TEST(McSched, IterativeBoundingFindsCounterexample) {
  const mc::Result r = mc::explore_iterative(racy_increment, 2);
  EXPECT_TRUE(r.failed);
  EXPECT_FALSE(r.failing.empty());
}

TEST(McSched, CondVarHandoffClean) {
  const mc::Result r = mc::explore([] {
    mc::Mutex m;
    mc::CondVar cv;
    int data = 0;
    mc::Thread c([&] {
      mc::UniqueLock lk(m);
      while (data == 0) cv.wait(lk);
      MC_ASSERT(data == 42);
    });
    {
      mc::LockGuard g(m);
      data = 42;
    }
    cv.notify_one();
    c.join();
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(McSched, TimedWaitTimeoutPathPreventsDeadlock) {
  // Nobody ever notifies; the consumer leans on the wait_until timeout
  // path, which the scheduler models as always eligible.  No deadlock.
  const mc::Result r = mc::explore([] {
    mc::Mutex m;
    mc::CondVar cv;
    int data = 0;
    mc::Thread c([&] {
      mc::UniqueLock lk(m);
      while (data == 0) {
        if (cv.wait_until(lk, std::chrono::steady_clock::now()) ==
            std::cv_status::timeout) {
          break;
        }
      }
    });
    c.join();
  });
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// ---------------------------------------------------------------------
// Replay

TEST(McReplay, ReproducesAssertionFailure) {
  const mc::Result found = mc::explore(racy_increment);
  ASSERT_TRUE(found.failed);
  const mc::Result again = mc::replay(racy_increment, found.failing);
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.message, found.message);
  EXPECT_EQ(again.trace, found.trace);
  EXPECT_EQ(again.schedules, 1u);
}

TEST(McReplay, ScheduleFormatRoundTrips) {
  const mc::Result found = mc::explore(racy_increment);
  ASSERT_TRUE(found.failed);
  const std::string text = mc::format_schedule(found.failing);
  const mc::Schedule parsed = mc::parse_schedule(text);
  EXPECT_EQ(parsed.choices, found.failing.choices);
  EXPECT_THROW(mc::parse_schedule("12 potato"), std::invalid_argument);
}

TEST(McReplay, DivergentScheduleIsReported) {
  // A schedule from a different body cannot drive this one; replay must
  // fail loudly (nondeterminism guard) instead of silently passing.
  const mc::Result found = mc::explore(racy_increment);
  ASSERT_TRUE(found.failed);
  const mc::Result r = mc::replay(
      [] {
        mc::Mutex m;
        mc::LockGuard g(m);
      },
      found.failing);
  EXPECT_TRUE(r.failed);
}

// ---------------------------------------------------------------------
// Weak-memory mode (per-thread store buffers)

// Store-buffering litmus (Dekker's core): both threads store their
// flag, then read the other's.  Under SC one store is always visible;
// with store buffers both loads can see 0.
void sb_litmus() {
  mc::atomic<int> x{0};
  mc::atomic<int> y{0};
  int rx = -1;
  int ry = -1;
  mc::Thread t1([&] {
    x.store(1, std::memory_order_relaxed);
    ry = y.load(std::memory_order_relaxed);
  });
  mc::Thread t2([&] {
    y.store(1, std::memory_order_relaxed);
    rx = x.load(std::memory_order_relaxed);
  });
  t1.join();
  t2.join();
  MC_ASSERT(!(rx == 0 && ry == 0));
}

TEST(McWeak, InterleavingSemanticsForbidSb) {
  const mc::Result r = mc::explore(sb_litmus);
  EXPECT_FALSE(r.failed) << r.message;
}

TEST(McWeak, StoreBuffersExposeSb) {
  mc::Options o;
  o.weak_memory = true;
  const mc::Result r = mc::explore(sb_litmus, o);
  EXPECT_TRUE(r.failed);
  // Buffered commits appear in the trace as separate steps.
  EXPECT_NE(r.trace.find("commit"), std::string::npos) << r.trace;
  const mc::Result again = mc::replay(sb_litmus, r.failing, o);
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.message, r.message);
}

TEST(McWeak, SeqCstStoresRestoreSb) {
  mc::Options o;
  o.weak_memory = true;
  const mc::Result r = mc::explore(
      [] {
        mc::atomic<int> x{0};
        mc::atomic<int> y{0};
        int rx = -1;
        int ry = -1;
        mc::Thread t1([&] {
          x.store(1);  // seq_cst: flushes, commits in place
          ry = y.load();
        });
        mc::Thread t2([&] {
          y.store(1);
          rx = x.load();
        });
        t1.join();
        t2.join();
        MC_ASSERT(!(rx == 0 && ry == 0));
      },
      o);
  EXPECT_FALSE(r.failed) << r.message << "\n" << r.trace;
}

// Message-passing litmus: data then flag, both relaxed.  The release
// fence between them is what keeps the commit order.
void mp_litmus(bool with_fence) {
  mc::atomic<int> data{0};
  mc::atomic<int> flag{0};
  mc::Thread w([&] {
    data.store(1, std::memory_order_relaxed);
    if (with_fence) mc::fence_release();
    flag.store(1, std::memory_order_relaxed);
  });
  if (flag.load(std::memory_order_acquire) == 1) {
    MC_ASSERT(data.load(std::memory_order_relaxed) == 1);
  }
  w.join();
}

TEST(McWeak, ReleaseFenceOrdersBufferedStores) {
  mc::Options o;
  o.weak_memory = true;
  const mc::Result broken = mc::explore([] { mp_litmus(false); }, o);
  EXPECT_TRUE(broken.failed) << "unfenced MP must be observable";
  const mc::Result fenced = mc::explore([] { mp_litmus(true); }, o);
  EXPECT_FALSE(fenced.failed) << fenced.message << "\n" << fenced.trace;
}

}  // namespace
