// Tests for the approximate-adder zoo: per-design semantics, error
// envelopes, and the comparative properties the zoo exists to show.

#include <gtest/gtest.h>

#include <cmath>

#include "approx/approx_adders.hpp"
#include "core/error_metrics.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using approx::approx_add;
using approx::ApproxKind;
using util::BitVec;
using util::Rng;

constexpr ApproxKind kAllKinds[] = {
    ApproxKind::AcaWindow, ApproxKind::EtaBlock, ApproxKind::LowerOr,
    ApproxKind::Truncated};

TEST(ApproxZoo, FullParameterMeansExactForWindowedKinds) {
  Rng rng(101);
  for (int i = 0; i < 300; ++i) {
    const BitVec a = rng.next_bits(48);
    const BitVec b = rng.next_bits(48);
    EXPECT_EQ(approx_add(ApproxKind::AcaWindow, a, b, 48), a + b);
    EXPECT_EQ(approx_add(ApproxKind::EtaBlock, a, b, 48), a + b);
  }
}

TEST(ApproxZoo, LowerOrIsExactWhenNoLowCarries) {
  // Disjoint low bits: OR == ADD there, and no carry crosses into the
  // upper part, so LOA is exact.
  const BitVec a = BitVec::from_u64(16, 0x0f05);
  const BitVec b = BitVec::from_u64(16, 0x10f0);
  EXPECT_EQ(approx_add(ApproxKind::LowerOr, a, b, 8), a + b);
}

TEST(ApproxZoo, LowerOrUpperPartIsAlwaysExactGivenItsCarryModel) {
  // The upper bits may differ from the true sum only because of the
  // simplified carry-in, never by more than one carry's worth.
  Rng rng(102);
  for (int i = 0; i < 2000; ++i) {
    const BitVec a = rng.next_bits(32);
    const BitVec b = rng.next_bits(32);
    const BitVec got = approx_add(ApproxKind::LowerOr, a, b, 8);
    const BitVec exact = a + b;
    // error distance < 2^9 (low part wrong by < 2^8, carry wrong adds 2^8)
    const double distance = core::normalized_distance(got, exact);
    EXPECT_LT(distance, std::ldexp(1.0, 9 - 32));
  }
}

TEST(ApproxZoo, TruncationErrorIsBoundedByLowPart) {
  Rng rng(103);
  for (int i = 0; i < 2000; ++i) {
    const BitVec a = rng.next_bits(32);
    const BitVec b = rng.next_bits(32);
    const BitVec got = approx_add(ApproxKind::Truncated, a, b, 10);
    const double distance = core::normalized_distance(got, a + b);
    // Low 10 bits wrong by < 2^10; a lost inter-part carry adds 2^10.
    EXPECT_LT(distance, std::ldexp(1.0, 11 - 32));
  }
}

TEST(ApproxZoo, EtaBlocksAreWeakerThanAcaAtSameSpan) {
  // Same carry span: ETAII blocks of s resolve chains of <= 2s only when
  // aligned; the sliding window resolves every chain < k.  So at equal
  // span the ACA errs less.
  Rng rng(104);
  const int n = 64;
  const int k = 8;                       // ACA span 8
  const int s = 4;                       // ETA span 2*4 = 8
  ASSERT_EQ(approx::carry_span(ApproxKind::AcaWindow, n, k),
            approx::carry_span(ApproxKind::EtaBlock, n, s));
  int aca_wrong = 0, eta_wrong = 0;
  for (int i = 0; i < 20000; ++i) {
    const BitVec a = rng.next_bits(n);
    const BitVec b = rng.next_bits(n);
    const BitVec exact = a + b;
    aca_wrong += approx_add(ApproxKind::AcaWindow, a, b, k) != exact;
    eta_wrong += approx_add(ApproxKind::EtaBlock, a, b, s) != exact;
  }
  EXPECT_LT(aca_wrong, eta_wrong);
}

TEST(ApproxZoo, ErrorProfilesDiffer) {
  // LOA errs often-but-small; ACA errs rarely-but-large.  Compare error
  // rate and conditional magnitude at comparable spans.
  Rng rng(105);
  const int n = 32, k = 10, l = n - 10;  // both spans ~10 and ~10
  long long aca_wrong = 0, loa_wrong = 0;
  double aca_dist = 0, loa_dist = 0;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    const BitVec a = rng.next_bits(n);
    const BitVec b = rng.next_bits(n);
    const BitVec exact = a + b;
    const BitVec aca = approx_add(ApproxKind::AcaWindow, a, b, k);
    const BitVec loa = approx_add(ApproxKind::LowerOr, a, b, l);
    if (aca != exact) {
      ++aca_wrong;
      aca_dist += core::normalized_distance(aca, exact);
    }
    if (loa != exact) {
      ++loa_wrong;
      loa_dist += core::normalized_distance(loa, exact);
    }
  }
  ASSERT_GT(aca_wrong, 0);
  ASSERT_GT(loa_wrong, 0);
  EXPECT_LT(aca_wrong, loa_wrong / 4);  // rare...
  EXPECT_GT(aca_dist / aca_wrong, loa_dist / loa_wrong);  // ...but large
}

TEST(ApproxZoo, OnlyAcaHasAFlag) {
  int with_flag = 0;
  for (ApproxKind kind : kAllKinds) {
    with_flag += approx::has_error_flag(kind);
  }
  EXPECT_EQ(with_flag, 1);
  EXPECT_TRUE(approx::has_error_flag(ApproxKind::AcaWindow));
}

TEST(ApproxZoo, CarrySpanConventions) {
  EXPECT_EQ(approx::carry_span(ApproxKind::AcaWindow, 64, 12), 12);
  EXPECT_EQ(approx::carry_span(ApproxKind::EtaBlock, 64, 6), 12);
  EXPECT_EQ(approx::carry_span(ApproxKind::LowerOr, 64, 20), 44);
  EXPECT_EQ(approx::carry_span(ApproxKind::Truncated, 64, 60), 4);
  EXPECT_EQ(approx::carry_span(ApproxKind::AcaWindow, 8, 100), 8);
}

TEST(ApproxZoo, NamesAreUniqueAndRejectsBadArgs) {
  std::set<std::string> names;
  for (ApproxKind kind : kAllKinds) names.insert(approx::approx_kind_name(kind));
  EXPECT_EQ(names.size(), 4u);
  EXPECT_THROW(approx_add(ApproxKind::LowerOr, BitVec(8), BitVec(9), 4),
               std::invalid_argument);
  EXPECT_THROW(approx_add(ApproxKind::LowerOr, BitVec(8), BitVec(8), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
