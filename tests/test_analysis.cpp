// Tests for the analysis module: BigUint arithmetic, the exact
// longest-run recurrence (cross-checked by brute force and by the
// published asymptotics), Theorem 1, and the ACA probability DP.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/aca_probability.hpp"
#include "analysis/biguint.hpp"
#include "analysis/longest_run.hpp"
#include "analysis/theorem1.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using analysis::BigUint;
using analysis::LongestRunCounter;

TEST(BigUint, SmallArithmeticMatchesNative) {
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng.next_u64() >> 1;  // avoid overflow
    const std::uint64_t y = rng.next_u64() >> 1;
    EXPECT_EQ((BigUint(x) + BigUint(y)).to_u64(), x + y);
    if (x >= y) {
      EXPECT_EQ((BigUint(x) - BigUint(y)).to_u64(), x - y);
    }
  }
}

TEST(BigUint, CarryAcrossLimbs) {
  const BigUint big = BigUint::pow2(64);
  const BigUint almost = big - BigUint(1);
  EXPECT_EQ(almost.bit_length(), 64);
  EXPECT_EQ((almost + BigUint(1)), big);
  EXPECT_EQ(big.bit_length(), 65);
  EXPECT_EQ((big - big), BigUint(0));
}

TEST(BigUint, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUint(1) - BigUint(2), std::underflow_error);
}

TEST(BigUint, ComparisonOrdering) {
  EXPECT_LT(BigUint(3), BigUint(5));
  EXPECT_LT(BigUint(5), BigUint::pow2(64));
  EXPECT_GT(BigUint::pow2(128), BigUint::pow2(127));
  EXPECT_EQ(BigUint(0), BigUint());
}

TEST(BigUint, RatioToPow2) {
  EXPECT_DOUBLE_EQ(BigUint(1).ratio_to_pow2(1), 0.5);
  EXPECT_DOUBLE_EQ(BigUint(3).ratio_to_pow2(2), 0.75);
  EXPECT_DOUBLE_EQ(BigUint::pow2(100).ratio_to_pow2(100), 1.0);
  // Tiny ratio of huge numbers stays accurate.
  const BigUint num = BigUint::pow2(1000) + BigUint::pow2(999);
  EXPECT_DOUBLE_EQ(num.ratio_to_pow2(1010), 1.5 / 1024.0);
  EXPECT_DOUBLE_EQ(BigUint(0).ratio_to_pow2(50), 0.0);
}

TEST(BigUint, HexFormatting) {
  EXPECT_EQ(BigUint(0).to_hex(), "0");
  EXPECT_EQ(BigUint(0xdeadbeefULL).to_hex(), "deadbeef");
  EXPECT_EQ(BigUint::pow2(64).to_hex(), "10000000000000000");
}

// Brute-force count of n-bit strings with longest 1-run <= x.
std::uint64_t brute_force_count(int n, int x) {
  std::uint64_t count = 0;
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << n); ++v) {
    int run = 0, best = 0;
    for (int i = 0; i < n; ++i) {
      run = (v >> i) & 1 ? run + 1 : 0;
      best = std::max(best, run);
    }
    if (best <= x) ++count;
  }
  return count;
}

TEST(LongestRun, RecurrenceMatchesBruteForce) {
  for (int n = 1; n <= 16; ++n) {
    for (int x = 0; x <= n; ++x) {
      LongestRunCounter counter(x);
      EXPECT_EQ(counter.count(n).to_u64(), brute_force_count(n, x))
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(LongestRun, KnownSmallValues) {
  // A_n(1) are the Fibonacci-like counts: strings with no "11".
  LongestRunCounter c1(1);
  EXPECT_EQ(c1.count(1).to_u64(), 2u);
  EXPECT_EQ(c1.count(2).to_u64(), 3u);
  EXPECT_EQ(c1.count(3).to_u64(), 5u);
  EXPECT_EQ(c1.count(4).to_u64(), 8u);
  EXPECT_EQ(c1.count(5).to_u64(), 13u);
}

TEST(LongestRun, ProbabilitiesAreMonotoneInX) {
  for (int x = 0; x < 12; ++x) {
    EXPECT_LE(analysis::prob_longest_run_at_most(64, x),
              analysis::prob_longest_run_at_most(64, x + 1) + 1e-15);
  }
}

TEST(LongestRun, AtLeastComplementsAtMost) {
  for (int x = 1; x <= 12; ++x) {
    const double sum = analysis::prob_longest_run_at_most(48, x - 1) +
                       analysis::prob_longest_run_at_least(48, x);
    EXPECT_NEAR(sum, 1.0, 1e-12) << x;
  }
}

TEST(LongestRun, EdgeCases) {
  EXPECT_DOUBLE_EQ(analysis::prob_longest_run_at_most(8, 8), 1.0);
  EXPECT_DOUBLE_EQ(analysis::prob_longest_run_at_least(8, 0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::prob_longest_run_at_least(8, 9), 0.0);
  // P(run >= n) = 2^-n (only the all-ones string).
  EXPECT_NEAR(analysis::prob_longest_run_at_least(10, 10), std::pow(2, -10),
              1e-15);
}

TEST(LongestRun, QuantileIsTightBound) {
  for (int n : {32, 64, 256, 1024}) {
    for (double prob : {0.99, 0.9999}) {
      const int x = analysis::longest_run_quantile(n, prob);
      EXPECT_GE(analysis::prob_longest_run_at_most(n, x), prob);
      if (x > 0) {
        EXPECT_LT(analysis::prob_longest_run_at_most(n, x - 1), prob);
      }
    }
  }
}

TEST(LongestRun, Table1ShapeAt1024Bits) {
  // The paper's Sec. 3 narrative: for a 1024-bit adder the carry
  // propagates < ~17 bits in 99% of cases and < ~23 bits in 99.99%.
  const int q99 = analysis::longest_run_quantile(1024, 0.99);
  const int q9999 = analysis::longest_run_quantile(1024, 0.9999);
  EXPECT_GE(q99, 14);
  EXPECT_LE(q99, 18);
  EXPECT_GE(q9999, 20);
  EXPECT_LE(q9999, 25);
  EXPECT_GT(q9999, q99);
}

TEST(LongestRun, SchillingExpectationMatchesExactMean) {
  // E[longest run] computed from the exact distribution vs log2(n) - 2/3.
  for (int n : {256, 1024}) {
    double mean = 0.0;
    for (int x = 1; x <= n; ++x) {
      mean += x * (analysis::prob_longest_run_at_most(n, x) -
                   analysis::prob_longest_run_at_most(n, x - 1));
      if (analysis::prob_longest_run_at_most(n, x) > 1.0 - 1e-14) break;
    }
    EXPECT_NEAR(mean, analysis::schilling_expected_run(n), 0.5) << n;
  }
}

TEST(LongestRun, GordonApproximationTracksExactTail) {
  for (int n : {128, 1024}) {
    for (int x = 10; x <= 20; ++x) {
      const double exact = analysis::prob_longest_run_at_least(n, x);
      const double approx = analysis::gordon_prob_run_at_least(n, x);
      EXPECT_NEAR(approx / exact, 1.0, 0.15) << "n=" << n << " x=" << x;
    }
  }
}

TEST(Theorem1, ClosedFormMatchesRecurrence) {
  for (int k = 1; k <= 30; ++k) {
    EXPECT_DOUBLE_EQ(analysis::expected_flips_recurrence(k),
                     static_cast<double>(analysis::expected_flips_closed_form(k)));
  }
}

TEST(Theorem1, MonteCarloAgreesWithClosedForm) {
  util::Rng rng(77);
  for (int k : {2, 4, 7}) {
    const double mc = analysis::expected_flips_monte_carlo(k, 20000, rng);
    const double exact =
        static_cast<double>(analysis::expected_flips_closed_form(k));
    EXPECT_NEAR(mc / exact, 1.0, 0.06) << k;
  }
}

TEST(Theorem1, RejectsBadArgs) {
  EXPECT_THROW(analysis::expected_flips_closed_form(0), std::invalid_argument);
  EXPECT_THROW(analysis::expected_flips_closed_form(63), std::invalid_argument);
}

TEST(AcaProbability, FlagProbabilityEqualsRunTail) {
  EXPECT_DOUBLE_EQ(analysis::aca_flag_probability(64, 8),
                   analysis::prob_longest_run_at_least(64, 8));
}

TEST(AcaProbability, WrongNeverExceedsFlag) {
  for (int n : {16, 64, 256}) {
    for (int k = 2; k <= 12; k += 2) {
      const double wrong = analysis::aca_wrong_probability(n, k);
      const double flag = analysis::aca_flag_probability(n, k);
      EXPECT_LE(wrong, flag + 1e-15) << "n=" << n << " k=" << k;
      EXPECT_GE(analysis::aca_false_positive_probability(n, k), -1e-15);
    }
  }
}

TEST(AcaProbability, WindowBeyondWidthIsAlwaysExact) {
  EXPECT_DOUBLE_EQ(analysis::aca_wrong_probability(8, 9), 0.0);
  EXPECT_DOUBLE_EQ(analysis::aca_flag_probability(8, 9), 0.0);
}

TEST(AcaProbability, ChooseWindowMeetsTarget) {
  for (int n : {64, 256, 1024}) {
    for (double target : {0.01, 0.0001}) {
      const int k = analysis::choose_window(n, target);
      EXPECT_LE(analysis::aca_flag_probability(n, k), target);
      EXPECT_GT(analysis::aca_flag_probability(n, k - 1), target);
    }
  }
}

TEST(AcaProbability, ExpectedCyclesFormula) {
  const double p = analysis::aca_flag_probability(64, 10);
  EXPECT_DOUBLE_EQ(analysis::expected_vlsa_cycles(64, 10, 2), 1.0 + 2 * p);
  EXPECT_DOUBLE_EQ(analysis::expected_vlsa_cycles(64, 10, 3), 1.0 + 3 * p);
}

TEST(AcaProbability, DpDecreasesGeometricallyInK) {
  // Each extra window bit should roughly halve the error probability once
  // the probability is small (the Poisson/extreme-value regime).
  double prev = analysis::aca_wrong_probability(1024, 12);
  for (int k = 13; k <= 20; ++k) {
    const double cur = analysis::aca_wrong_probability(1024, k);
    EXPECT_LT(cur, prev);
    EXPECT_NEAR(cur / prev, 0.5, 0.12) << k;
    prev = cur;
  }
}

}  // namespace
}  // namespace vlsa
