// Tests for the network front-end: wire-protocol round-trips, the
// incremental decoder against partial reads and hostile bytes (run
// these under the `asan` preset — the decoder must reject garbage
// without UB), and end-to-end loopback runs against a live epoll
// server under both overflow policies, including recovery-triggering
// traffic.  The aggregate `NetSuite` ctest entry carries the `net`
// label; the TSan job runs it too (client threads vs event loops vs
// service workers).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/aca.hpp"
#include "net/admin.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/service.hpp"
#include "telemetry/registry.hpp"
#include "trace/trace.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "workloads/operand_stream.hpp"

namespace vlsa {
namespace {

using net::DecoderLimits;
using net::FrameDecoder;
using net::FrameType;
using net::RequestFrame;
using net::ResponseFrame;
using net::Status;
using service::AdderService;
using service::OverflowPolicy;
using service::ServiceConfig;
using util::BitVec;

BitVec random_vec(util::Rng& rng, int width) {
  BitVec v(width);
  for (auto& limb : v.limbs()) limb = rng.next_u64();
  if (!v.limbs().empty() && width % 64 != 0) {
    v.limbs().back() &= (std::uint64_t{1} << (width % 64)) - 1;
  }
  return v;
}

// ---------------------------------------------------------------------
// Protocol: encode/decode round-trips

TEST(NetProtocol, RequestRoundTripAcrossWidths) {
  util::Rng rng(0x900d);
  for (const int width : {1, 7, 8, 63, 64, 65, 256, 1024}) {
    RequestFrame in;
    in.id = rng.next_u64();
    in.width = width;
    in.window = width >= 8 ? 8 : 0;
    in.a = random_vec(rng, width);
    in.b = random_vec(rng, width);

    std::vector<std::uint8_t> bytes;
    net::encode_request(in, bytes);

    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    RequestFrame out;
    ResponseFrame unused;
    ASSERT_EQ(decoder.next(out, unused), FrameDecoder::Result::Frame)
        << "width " << width;
    EXPECT_EQ(decoder.type(), FrameType::Request);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.width, width);
    EXPECT_EQ(out.window, in.window);
    EXPECT_EQ(out.a, in.a);
    EXPECT_EQ(out.b, in.b);
    EXPECT_EQ(decoder.buffered(), 0u);
    EXPECT_EQ(decoder.next(out, unused), FrameDecoder::Result::NeedMore);
  }
}

TEST(NetProtocol, ResponseRoundTripAllStatuses) {
  util::Rng rng(0xd00d);
  const int width = 128;
  for (const Status status :
       {Status::Ok, Status::Rejected, Status::Error}) {
    ResponseFrame in;
    in.id = rng.next_u64();
    in.status = status;
    in.width = width;
    in.window = 12;
    in.latency_ticks = 42;
    if (status == Status::Ok) {
      in.flags = net::kFlagRecovered;
      in.sum = random_vec(rng, width);
    }

    std::vector<std::uint8_t> bytes;
    net::encode_response(in, bytes);

    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    RequestFrame unused;
    ResponseFrame out;
    ASSERT_EQ(decoder.next(unused, out), FrameDecoder::Result::Frame);
    EXPECT_EQ(decoder.type(), FrameType::Response);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.status, status);
    EXPECT_EQ(out.flags, in.flags);
    EXPECT_EQ(out.latency_ticks, 42u);
    if (status == Status::Ok) {
      EXPECT_EQ(out.sum, in.sum);
    } else {
      EXPECT_EQ(out.sum.width(), 0);
    }
  }
}

TEST(NetProtocol, PipelinedFramesDecodeInOrder) {
  util::Rng rng(0xcafe);
  const int width = 96;
  std::vector<RequestFrame> frames;
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 17; ++i) {
    RequestFrame f;
    f.id = static_cast<std::uint64_t>(i) + 1;
    f.width = width;
    f.a = random_vec(rng, width);
    f.b = random_vec(rng, width);
    net::encode_request(f, bytes);
    frames.push_back(std::move(f));
  }
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  RequestFrame out;
  ResponseFrame unused;
  for (const RequestFrame& expected : frames) {
    ASSERT_EQ(decoder.next(out, unused), FrameDecoder::Result::Frame);
    EXPECT_EQ(out.id, expected.id);
    EXPECT_EQ(out.a, expected.a);
    EXPECT_EQ(out.b, expected.b);
  }
  EXPECT_EQ(decoder.next(out, unused), FrameDecoder::Result::NeedMore);
}

TEST(NetProtocol, OneByteAtATime) {
  util::Rng rng(0x1b1b);
  const int width = 200;
  RequestFrame in;
  in.id = 7;
  in.width = width;
  in.a = random_vec(rng, width);
  in.b = random_vec(rng, width);
  std::vector<std::uint8_t> bytes;
  net::encode_request(in, bytes);

  FrameDecoder decoder;
  RequestFrame out;
  ResponseFrame unused;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    ASSERT_EQ(decoder.next(out, unused), FrameDecoder::Result::NeedMore)
        << "frame completed early at byte " << i;
  }
  decoder.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.next(out, unused), FrameDecoder::Result::Frame);
  EXPECT_EQ(out.a, in.a);
  EXPECT_EQ(out.b, in.b);
}

TEST(NetProtocol, TruncationIsNeedMoreNotError) {
  RequestFrame in;
  in.id = 1;
  in.width = 64;
  in.a = BitVec::from_u64(64, 5);
  in.b = BitVec::from_u64(64, 6);
  std::vector<std::uint8_t> bytes;
  net::encode_request(in, bytes);
  // Every strict prefix must park the decoder, never poison it.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                net::kHeaderBytes - 1, net::kHeaderBytes,
                                bytes.size() - 1}) {
    FrameDecoder decoder;
    decoder.feed(bytes.data(), cut);
    RequestFrame out;
    ResponseFrame unused;
    EXPECT_EQ(decoder.next(out, unused), FrameDecoder::Result::NeedMore);
    EXPECT_FALSE(decoder.poisoned());
  }
}

FrameDecoder::Result decode_raw(std::vector<std::uint8_t> bytes,
                                std::string* error = nullptr) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  RequestFrame request;
  ResponseFrame response;
  const auto result = decoder.next(request, response);
  if (error != nullptr) *error = decoder.error();
  return result;
}

std::vector<std::uint8_t> valid_request_bytes() {
  RequestFrame in;
  in.id = 9;
  in.width = 64;
  in.a = BitVec::from_u64(64, 1);
  in.b = BitVec::from_u64(64, 2);
  std::vector<std::uint8_t> bytes;
  net::encode_request(in, bytes);
  return bytes;
}

TEST(NetProtocol, HostileHeadersAreFatal) {
  // Each mutation of one header byte must poison the decoder.
  struct Case {
    std::size_t offset;
    std::uint8_t value;
    const char* what;
  };
  const Case cases[] = {
      {0, 0x00, "bad magic"},        {4, 0x7f, "unknown version"},
      {5, 0x00, "bad frame type"},   {5, 0x03, "unknown frame type"},
      {6, 0x41, "unknown op"},       {7, 0x01, "response-only flag bit"},
      {24, 0x01, "request with latency"},
  };
  for (const Case& c : cases) {
    auto bytes = valid_request_bytes();
    bytes[c.offset] = c.value;
    EXPECT_EQ(decode_raw(std::move(bytes)), FrameDecoder::Result::Error)
        << c.what;
  }
}

TEST(NetProtocol, TraceSampledFlagRoundTripsBothDirections) {
  // Bit 2 is the one flag valid on requests: the client's sampling
  // decision riding the wire.  It must round-trip on requests, echo on
  // responses, and remain the ONLY acceptable request flag bit.
  RequestFrame in;
  in.id = 77;
  in.width = 64;
  in.window = 8;
  in.a = BitVec::from_u64(64, 1);
  in.b = BitVec::from_u64(64, 2);
  in.flags = net::kFlagTraceSampled;
  std::vector<std::uint8_t> bytes;
  net::encode_request(in, bytes);
  EXPECT_EQ(bytes[7], net::kFlagTraceSampled);

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  RequestFrame out;
  ResponseFrame unused;
  ASSERT_EQ(decoder.next(out, unused), FrameDecoder::Result::Frame);
  EXPECT_EQ(out.flags, net::kFlagTraceSampled);
  EXPECT_EQ(out.id, 77u);

  // Any higher bit stays fatal.
  auto hostile = valid_request_bytes();
  hostile[7] = 0x08;
  EXPECT_EQ(decode_raw(std::move(hostile)), FrameDecoder::Result::Error);

  // Response side: the echo coexists with the recovery flag.
  ResponseFrame response_in;
  response_in.id = 77;
  response_in.status = Status::Ok;
  response_in.width = 64;
  response_in.window = 8;
  response_in.flags = net::kFlagRecovered | net::kFlagTraceSampled;
  response_in.sum = BitVec::from_u64(64, 3);
  std::vector<std::uint8_t> response_bytes;
  net::encode_response(response_in, response_bytes);
  FrameDecoder response_decoder;
  response_decoder.feed(response_bytes.data(), response_bytes.size());
  RequestFrame runused;
  ResponseFrame response_out;
  ASSERT_EQ(response_decoder.next(runused, response_out),
            FrameDecoder::Result::Frame);
  EXPECT_EQ(response_out.flags,
            net::kFlagRecovered | net::kFlagTraceSampled);
}

TEST(NetProtocol, OversizedAndInconsistentLengthsAreFatal) {
  {
    // Declared width above the decoder limit.
    auto bytes = valid_request_bytes();
    bytes[16] = 0xff;
    bytes[17] = 0xff;  // width 65535 > max_width
    EXPECT_EQ(decode_raw(std::move(bytes)), FrameDecoder::Result::Error);
  }
  {
    // Zero width.
    auto bytes = valid_request_bytes();
    bytes[16] = 0;
    bytes[17] = 0;
    EXPECT_EQ(decode_raw(std::move(bytes)), FrameDecoder::Result::Error);
  }
  {
    // Payload length that disagrees with the declared width.
    auto bytes = valid_request_bytes();
    bytes[20] = 0xff;  // payload 255 != 16
    EXPECT_EQ(decode_raw(std::move(bytes)), FrameDecoder::Result::Error);
  }
  {
    // Hostile operand padding: width 60 declared, but bits 60..63 set.
    RequestFrame in;
    in.id = 2;
    in.width = 64;
    in.a = BitVec::ones(64);
    in.b = BitVec::ones(64);
    std::vector<std::uint8_t> bytes;
    net::encode_request(in, bytes);
    bytes[16] = 60;  // shrink the declared width; payload stays 16 bytes
    bytes[20] = 16;
    EXPECT_EQ(decode_raw(std::move(bytes)), FrameDecoder::Result::Error);
  }
}

TEST(NetProtocol, PoisonIsSticky) {
  auto bytes = valid_request_bytes();
  bytes[0] = 0;  // bad magic
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  RequestFrame request;
  ResponseFrame response;
  EXPECT_EQ(decoder.next(request, response), FrameDecoder::Result::Error);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_FALSE(decoder.error().empty());
  // Feeding perfectly valid bytes afterwards must not resurrect it —
  // framing is gone for good.
  const auto good = valid_request_bytes();
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(request, response), FrameDecoder::Result::Error);
}

TEST(NetProtocol, RandomGarbageNeverCrashes) {
  // Deterministic fuzz: random byte blobs in random chunk sizes.  The
  // decoder may report anything except UB (ASan is the real assertion
  // here); once poisoned it must stay poisoned.
  util::Rng rng(0xfa22);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    RequestFrame request;
    ResponseFrame response;
    bool poisoned = false;
    for (int chunk = 0; chunk < 8; ++chunk) {
      std::vector<std::uint8_t> blob(1 + rng.next_below(200));
      for (auto& byte : blob) {
        byte = static_cast<std::uint8_t>(rng.next_u64());
      }
      decoder.feed(blob.data(), blob.size());
      for (int pulls = 0; pulls < 64; ++pulls) {
        const auto result = decoder.next(request, response);
        if (result == FrameDecoder::Result::Error) {
          poisoned = true;
          break;
        }
        if (result == FrameDecoder::Result::NeedMore) break;
      }
      if (poisoned) break;
    }
    if (poisoned) {
      EXPECT_EQ(decoder.next(request, response),
                FrameDecoder::Result::Error);
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end over loopback

ServiceConfig service_config(int width, int window, OverflowPolicy policy,
                             std::size_t capacity = 1024) {
  ServiceConfig config;
  config.pipeline.width = width;
  config.pipeline.window = window;
  config.workers = 2;
  config.queue_capacity = capacity;
  config.overflow = policy;
  return config;
}

TEST(NetLoopback, BlockingCallsMatchScalarModel) {
  const int width = 64, window = 8;
  AdderService service(service_config(width, window, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  ASSERT_GT(server.port(), 0);

  net::Client client("127.0.0.1", server.port());
  util::Rng rng(0xabcd);
  for (int i = 0; i < 200; ++i) {
    const BitVec a = random_vec(rng, width);
    const BitVec b = random_vec(rng, width);
    const ResponseFrame response = client.call(a, b);
    ASSERT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.sum, a + b);
    EXPECT_EQ(response.width, width);
    EXPECT_EQ(response.window, window);
    EXPECT_GE(response.latency_ticks, 1u);
    // The wire flag must agree with the scalar ACA model.
    EXPECT_EQ((response.flags & net::kFlagRecovered) != 0,
              core::aca_flag(a, b, window));
  }
}

TEST(NetLoopback, PipelinedUnderBlockPolicyNothingDropped) {
  // Tiny queue + saturating pipelined client: Block policy must stall
  // the socket (TCP backpressure) rather than drop or reject anything.
  const int width = 64, window = 8;
  AdderService service(
      service_config(width, window, OverflowPolicy::Block, 8));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());

  util::Rng rng(0x8070);
  const int n = 2000;
  std::vector<BitVec> sums;
  sums.reserve(n);
  for (int i = 0; i < n; ++i) {
    const BitVec a = random_vec(rng, width);
    const BitVec b = random_vec(rng, width);
    sums.push_back(a + b);
    client.send(a, b);
  }
  int ok = 0;
  while (client.outstanding() > 0) {
    const ResponseFrame response = client.recv();
    ASSERT_EQ(response.status, Status::Ok);
    ASSERT_GE(response.id, 1u);
    ASSERT_LE(response.id, static_cast<std::uint64_t>(n));
    EXPECT_EQ(response.sum, sums[response.id - 1]);
    ++ok;
  }
  EXPECT_EQ(ok, n);
}

TEST(NetLoopback, ShardedServiceServesPipelinedTraffic) {
  // `vlsa_tool serve --shards 4` end-to-end in miniature: the net
  // front-end needs no sharding knowledge (hash routing hides behind
  // try_submit_callback), per-shard Block backpressure stalls the
  // socket exactly like the single-queue service, and afterwards the
  // per-shard labeled counters must account for every frame exactly
  // once.
  const int width = 64, window = 8;
  ServiceConfig config =
      service_config(width, window, OverflowPolicy::Block, /*capacity=*/64);
  config.workers = 4;
  config.shards = 4;
  AdderService service(config);
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());

  util::Rng rng(0x54a2d);
  const int n = 2000;
  std::vector<BitVec> sums;
  sums.reserve(n);
  for (int i = 0; i < n; ++i) {
    const BitVec a = random_vec(rng, width);
    const BitVec b = random_vec(rng, width);
    sums.push_back(a + b);
    client.send(a, b);
  }
  int ok = 0;
  while (client.outstanding() > 0) {
    const ResponseFrame response = client.recv();
    ASSERT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.sum, sums[response.id - 1]);
    ++ok;
  }
  EXPECT_EQ(ok, n);

  const auto snap = service.registry().snapshot();
  auto counter = [&snap](const std::string& name) {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "no counter named " << name;
    return -1LL;
  };
  EXPECT_EQ(counter("service.completed"), n);
  long long submitted = 0, completed = 0;
  for (int s = 0; s < 4; ++s) {
    const std::string suffix = "{shard=" + std::to_string(s) + "}";
    submitted += counter("service.submitted" + suffix);
    completed += counter("service.completed" + suffix);
    EXPECT_GT(counter("service.submitted" + suffix), 0)
        << "shard " << s << " starved behind the server";
  }
  EXPECT_EQ(submitted, n);
  EXPECT_EQ(completed, n);
}

TEST(NetLoopback, RejectPolicyAnswersRejectedFrames) {
  // Tiny queue + saturating pipelined client under Reject: every
  // request gets SOME answer, and the correct ones are exact.
  const int width = 64, window = 8;
  AdderService service(
      service_config(width, window, OverflowPolicy::Reject, 4));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());

  util::Rng rng(0x7e7e);
  const int n = 3000;
  std::vector<BitVec> sums;
  sums.reserve(n);
  for (int i = 0; i < n; ++i) {
    const BitVec a = random_vec(rng, width);
    const BitVec b = random_vec(rng, width);
    sums.push_back(a + b);
    client.send(a, b);
  }
  int ok = 0, rejected = 0;
  while (client.outstanding() > 0) {
    const ResponseFrame response = client.recv();
    if (response.status == Status::Rejected) {
      ++rejected;
      continue;
    }
    ASSERT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.sum, sums[response.id - 1]);
    ++ok;
  }
  EXPECT_EQ(ok + rejected, n);
  EXPECT_GT(ok, 0);
  // Backpressure must show up in the server's own accounting when any
  // rejection happened (a fast machine may drain everything in time).
  const auto snap = service.registry().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "net.frames_rejected") {
      EXPECT_EQ(value, rejected);
    }
  }
}

TEST(NetLoopback, RecoveryTrafficCarriesTheFlag) {
  // Complementary operands (b ≈ ~a) make nearly every addition
  // propagate across the window — the adversarial traffic the ER flag
  // exists for.  The wire must carry the recovery flag and the modeled
  // latency must exceed the fast path's.
  const int width = 256, window = 8;
  AdderService service(service_config(width, window, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());

  workloads::OperandStream stream(workloads::Distribution::Complementary,
                                  width, 0x5eed);
  int recovered = 0;
  for (int i = 0; i < 100; ++i) {
    const auto [a, b] = stream.next();
    const ResponseFrame response = client.call(a, b);
    ASSERT_EQ(response.status, Status::Ok);
    EXPECT_EQ(response.sum, a + b);
    const bool flagged = (response.flags & net::kFlagRecovered) != 0;
    EXPECT_EQ(flagged, core::aca_flag(a, b, window));
    if (flagged) ++recovered;
  }
  EXPECT_GT(recovered, 50);  // complementary traffic flags nearly always
}

TEST(NetLoopback, WidthMismatchIsAnErrorFrame) {
  AdderService service(service_config(64, 8, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());
  const ResponseFrame response =
      client.call(BitVec::from_u64(32, 1), BitVec::from_u64(32, 2));
  EXPECT_EQ(response.status, Status::Error);
}

TEST(NetLoopback, GarbageBytesCloseTheConnection) {
  AdderService service(service_config(64, 8, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());
  // A healthy exchange first, so the failure below is unambiguous.
  const ResponseFrame ok =
      client.call(BitVec::from_u64(64, 3), BitVec::from_u64(64, 4));
  ASSERT_EQ(ok.status, Status::Ok);

  // Raw garbage through a plain socket: the server must count a decode
  // error and hang up (EOF), never answer or crash.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  auto bytes = valid_request_bytes();
  bytes[0] = 0x00;  // break the magic
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  std::uint8_t buf[64];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
  }
  EXPECT_EQ(n, 0) << "expected EOF after a protocol violation";
  ::close(fd);

  // The healthy connection keeps working: poisoning is per-connection.
  const ResponseFrame still_ok =
      client.call(BitVec::from_u64(64, 5), BitVec::from_u64(64, 6));
  EXPECT_EQ(still_ok.status, Status::Ok);
  const auto snap = service.registry().snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "net.decode_errors") {
      EXPECT_EQ(value, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NetLoopback, GracefulShutdownDrainsOutstanding) {
  const int width = 64, window = 8;
  AdderService service(service_config(width, window, OverflowPolicy::Block));
  auto server = std::make_unique<net::Server>(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server->port());

  util::Rng rng(0x57a9);
  std::vector<BitVec> sums;
  for (int i = 0; i < 500; ++i) {
    const BitVec a = random_vec(rng, width);
    const BitVec b = random_vec(rng, width);
    sums.push_back(a + b);
    client.send(a, b);
  }
  client.finish_sending();
  server->shutdown();  // stop accepting + drain in-flight, then close
  // Every accepted request must have been answered before the close.
  int ok = 0;
  try {
    while (client.outstanding() > 0) {
      const ResponseFrame response = client.recv();
      ASSERT_EQ(response.status, Status::Ok);
      EXPECT_EQ(response.sum, sums[response.id - 1]);
      ++ok;
    }
  } catch (const net::ConnectionError&) {
    ADD_FAILURE() << "connection closed with " << client.outstanding()
                  << " responses undelivered (answered " << ok << ")";
  }
  EXPECT_EQ(ok, 500);
  EXPECT_EQ(server->active_connections(), 0);
  server.reset();  // second shutdown via destructor: must be a no-op
}

TEST(NetLoopback, ServerRefusesPumpModeService) {
  ServiceConfig config = service_config(64, 8, OverflowPolicy::Block);
  config.workers = 0;  // pump mode: nothing would ever drain the queue
  AdderService service(config);
  EXPECT_THROW(net::Server(net::ServerConfig{}, service),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Distributed tracing: the sampled flag across the wire

TEST(NetTracing, SampledRequestJoinsClientAndServerSpans) {
  // With a session active, every client send is sampled (rate 1.0),
  // the flag rides the wire, the server emits a net-serve span keyed
  // by the same request id, and the echoed flag keys the client-recv
  // span — the three spans trace::merge later joins across processes.
  trace::TraceSession session;
  const int width = 64, window = 8;
  AdderService service(service_config(width, window, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());
  util::Rng rng(0x7ace);
  for (int i = 0; i < 20; ++i) {
    const BitVec a = random_vec(rng, width);
    const BitVec b = random_vec(rng, width);
    const ResponseFrame response = client.call(a, b);
    ASSERT_EQ(response.status, Status::Ok);
    EXPECT_NE(response.flags & net::kFlagTraceSampled, 0)
        << "server must echo the trace-sampled bit";
  }
  session.stop();

  const auto events = session.collect();
  std::vector<std::uint64_t> send_reqs, recv_reqs, serve_reqs;
  for (const auto& e : events) {
    if (!e.args.has_req) continue;
    if (e.name == trace::EventName::kClientSend) {
      send_reqs.push_back(e.args.req);
    } else if (e.name == trace::EventName::kClientRecv) {
      recv_reqs.push_back(e.args.req);
    } else if (e.name == trace::EventName::kNetServe) {
      serve_reqs.push_back(e.args.req);
    }
  }
  EXPECT_EQ(send_reqs.size(), 20u);
  EXPECT_EQ(recv_reqs.size(), 20u);
  EXPECT_EQ(serve_reqs.size(), 20u);
  // Every request id appears on all three spans.
  std::sort(send_reqs.begin(), send_reqs.end());
  std::sort(recv_reqs.begin(), recv_reqs.end());
  std::sort(serve_reqs.begin(), serve_reqs.end());
  EXPECT_EQ(send_reqs, recv_reqs);
  EXPECT_EQ(send_reqs, serve_reqs);
}

TEST(NetTracing, NoSessionMeansNoFlagOnTheWire) {
  // trace::enabled() gates the client's sampling decision: without a
  // session the flag must stay clear (zero per-request overhead, and
  // the server never emits distributed-trace spans).
  const int width = 64, window = 8;
  AdderService service(service_config(width, window, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());
  const ResponseFrame response =
      client.call(BitVec::from_u64(64, 1), BitVec::from_u64(64, 2));
  ASSERT_EQ(response.status, Status::Ok);
  EXPECT_EQ(response.flags & net::kFlagTraceSampled, 0);
}

// ---------------------------------------------------------------------
// Admin plane: HTTP parser against partial reads and hostile input

using net::AdminConfig;
using net::AdminRequest;
using net::AdminResponse;
using net::AdminServer;
using net::HttpRequestParser;

TEST(AdminHttp, ParsesAGetByteAtATime) {
  const std::string head = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  HttpRequestParser parser;
  auto result = HttpRequestParser::Result::NeedMore;
  for (std::size_t i = 0; i < head.size(); ++i) {
    result = parser.feed(head.data() + i, 1);
    if (i + 1 < head.size()) {
      ASSERT_EQ(result, HttpRequestParser::Result::NeedMore) << "byte " << i;
    }
  }
  ASSERT_EQ(result, HttpRequestParser::Result::Request);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/metrics");
  EXPECT_EQ(parser.request().query, "");
}

TEST(AdminHttp, QuerySplitsFromPathAndBareLfIsTolerated) {
  const std::string head = "GET /tracez?start HTTP/1.0\n\n";
  HttpRequestParser parser;
  ASSERT_EQ(parser.feed(head.data(), head.size()),
            HttpRequestParser::Result::Request);
  EXPECT_EQ(parser.request().path, "/tracez");
  EXPECT_EQ(parser.request().query, "start");
}

TEST(AdminHttp, OversizedHeadIs431) {
  HttpRequestParser parser(/*max_bytes=*/64);
  const std::string filler(200, 'a');
  const std::string head = "GET /" + filler + " HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parser.feed(head.data(), head.size()),
            HttpRequestParser::Result::Error);
  EXPECT_EQ(parser.error_status(), 431);
  EXPECT_TRUE(parser.poisoned());
}

TEST(AdminHttp, MalformedRequestsAre400) {
  const char* cases[] = {
      "GARBAGE\r\n\r\n",                    // no METHOD SP TARGET SP VERSION
      "GET /x\r\n\r\n",                     // missing HTTP version
      "GET metrics HTTP/1.1\r\n\r\n",       // target must start with '/'
      "GET /x SMTP/1.1\r\n\r\n",            // not HTTP
      "\x01\x02 /x HTTP/1.1\r\n\r\n",       // control bytes
  };
  for (const char* head : cases) {
    HttpRequestParser parser;
    ASSERT_EQ(parser.feed(head, std::strlen(head)),
              HttpRequestParser::Result::Error)
        << head;
    EXPECT_EQ(parser.error_status(), 400) << head;
  }
}

TEST(AdminHttp, PoisonIsSticky) {
  HttpRequestParser parser;
  const std::string bad = "GARBAGE\r\n\r\n";
  ASSERT_EQ(parser.feed(bad.data(), bad.size()),
            HttpRequestParser::Result::Error);
  const std::string good = "GET / HTTP/1.1\r\n\r\n";
  EXPECT_EQ(parser.feed(good.data(), good.size()),
            HttpRequestParser::Result::Error);
}

// ---------------------------------------------------------------------
// Admin plane: the live HTTP server

// Minimal blocking HTTP exchange: write `request` bytes, half-close,
// read to EOF (the admin server always answers Connection: close; the
// half-close lets it reject byte streams that never finish a head).
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "GET " + target + " HTTP/1.1\r\n\r\n");
}

TEST(AdminPlane, ServesRegisteredPathsAndRejectsTheRest) {
  AdminServer admin(AdminConfig{});
  ASSERT_GT(admin.port(), 0);
  admin.handle("/ping", [](const AdminRequest&) {
    AdminResponse response;
    response.body = "pong\n";
    return response;
  });
  admin.handle("/boom", [](const AdminRequest&) -> AdminResponse {
    throw std::runtime_error("handler exploded");
  });

  EXPECT_NE(http_get(admin.port(), "/ping").find("200 OK"),
            std::string::npos);
  EXPECT_NE(http_get(admin.port(), "/ping").find("pong"),
            std::string::npos);
  EXPECT_NE(http_get(admin.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(http_exchange(admin.port(), "POST /ping HTTP/1.1\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(http_exchange(admin.port(), "GARBAGE\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(http_exchange(admin.port(),
                          "GET /" + std::string(20000, 'a') +
                              " HTTP/1.1\r\n\r\n")
                .find("431"),
            std::string::npos);
  // A handler that throws answers 500, and the server survives it.
  EXPECT_NE(http_get(admin.port(), "/boom").find("500"),
            std::string::npos);
  EXPECT_NE(http_get(admin.port(), "/ping").find("pong"),
            std::string::npos);
  admin.shutdown();  // idempotent with the destructor's shutdown
}

TEST(AdminPlane, HostileAdminTrafficNeverTouchesTheDataPort) {
  // The whole point of the separate admin thread: garbage on the admin
  // port must not poison, stall, or close data-plane connections.
  const int width = 64, window = 8;
  AdderService service(service_config(width, window, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  net::Client client("127.0.0.1", server.port());
  AdminServer admin(AdminConfig{});

  const ResponseFrame before =
      client.call(BitVec::from_u64(64, 1), BitVec::from_u64(64, 2));
  ASSERT_EQ(before.status, Status::Ok);

  http_exchange(admin.port(), std::string(4096, '\xff'));
  http_exchange(admin.port(), "POST / HTTP/1.1\r\n\r\n");
  http_exchange(admin.port(), "GET /" + std::string(20000, 'b') + " \r\n");

  const ResponseFrame after =
      client.call(BitVec::from_u64(64, 3), BitVec::from_u64(64, 4));
  EXPECT_EQ(after.status, Status::Ok);
  EXPECT_EQ(after.sum, BitVec::from_u64(64, 7));
  const auto snap = service.registry().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "net.decode_errors") {
      EXPECT_EQ(value, 0) << "admin garbage leaked into the data plane";
    }
  }
}

TEST(AdminPlane, ReadyzFlipsTheMomentDrainBegins) {
  // The lame-duck contract: Server::draining() turns true at the START
  // of shutdown (before connections close), and a /readyz wired to it
  // answers 503 from then on.
  const int width = 64, window = 8;
  AdderService service(service_config(width, window, OverflowPolicy::Block));
  net::Server server(net::ServerConfig{}, service);
  AdminServer admin(AdminConfig{});
  admin.handle("/readyz", [&server](const AdminRequest&) {
    AdminResponse response;
    if (server.draining()) {
      response.status = 503;
      response.body = "draining\n";
    } else {
      response.body = "ready\n";
    }
    return response;
  });

  EXPECT_FALSE(server.draining());
  EXPECT_NE(http_get(admin.port(), "/readyz").find("200"),
            std::string::npos);
  server.shutdown();
  EXPECT_TRUE(server.draining());
  EXPECT_NE(http_get(admin.port(), "/readyz").find("503"),
            std::string::npos);
}

}  // namespace
}  // namespace vlsa
