// Tests for the HDL emitters — the paper's generator artifact.  We check
// structural well-formedness (ports, declarations, one assignment per
// cell) and a full golden emission for a tiny circuit.

#include <gtest/gtest.h>

#include <string>

#include "adders/adders.hpp"
#include "core/aca_netlist.hpp"
#include "netlist/emit.hpp"

namespace vlsa {
namespace {

using netlist::Netlist;

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Emit, SanitizeIdentifier) {
  EXPECT_EQ(netlist::sanitize_identifier("a[3]"), "a_3");
  EXPECT_EQ(netlist::sanitize_identifier("sum[10]"), "sum_10");
  EXPECT_EQ(netlist::sanitize_identifier("3bad"), "n_3bad");
  EXPECT_EQ(netlist::sanitize_identifier(""), "n_");
}

TEST(Emit, GoldenVerilogForHalfAdder) {
  Netlist nl("half_adder");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.mark_output(nl.xor2(a, b), "s");
  nl.mark_output(nl.and2(a, b), "c");
  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("module half_adder (a, b, s, c);"), std::string::npos) << v;
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output s;"), std::string::npos);
  EXPECT_NE(v.find("assign w2 = a ^ b;"), std::string::npos) << v;
  EXPECT_NE(v.find("assign w3 = a & b;"), std::string::npos);
  EXPECT_NE(v.find("assign s = w2;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Emit, GoldenVhdlForHalfAdder) {
  Netlist nl("half_adder");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.mark_output(nl.xor2(a, b), "s");
  const std::string v = netlist::to_vhdl(nl);
  EXPECT_NE(v.find("entity half_adder is"), std::string::npos);
  EXPECT_NE(v.find("a : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("s : out std_logic"), std::string::npos);
  EXPECT_NE(v.find("architecture structural of half_adder is"),
            std::string::npos);
  EXPECT_NE(v.find("signal w2 : std_logic;"), std::string::npos);
  EXPECT_NE(v.find("w2 <= a xor b;"), std::string::npos);
  EXPECT_NE(v.find("s <= w2;"), std::string::npos);
  EXPECT_NE(v.find("end architecture structural;"), std::string::npos);
}

TEST(Emit, AdderEmissionIsStructurallyComplete) {
  const auto adder = adders::build_adder(adders::AdderKind::KoggeStone, 16);
  const std::string v = netlist::to_verilog(adder.nl);
  // Every input/output is declared exactly once.
  EXPECT_EQ(count_occurrences(v, "input a_0;"), 1);
  EXPECT_EQ(count_occurrences(v, "input b_15;"), 1);
  EXPECT_EQ(count_occurrences(v, "output sum_15;"), 1);
  EXPECT_EQ(count_occurrences(v, "output cout;"), 1);
  // One assignment per cell plus one per output alias.
  const int cells = adder.nl.num_cells();
  const int outputs = static_cast<int>(adder.nl.outputs().size());
  EXPECT_EQ(count_occurrences(v, "assign "), cells + outputs);
}

TEST(Emit, VhdlForVlsaMentionsAllControlPorts) {
  const auto v = core::build_vlsa(16, 4);
  const std::string hdl = netlist::to_vhdl(v.nl);
  EXPECT_NE(hdl.find("error : out std_logic"), std::string::npos);
  EXPECT_NE(hdl.find("valid : out std_logic"), std::string::npos);
  EXPECT_NE(hdl.find("spec_sum_0 : out std_logic"), std::string::npos);
  EXPECT_NE(hdl.find("sum_15 : out std_logic"), std::string::npos);
}

TEST(Emit, ConstantsEmitLiterals) {
  Netlist nl("consts");
  nl.mark_output(nl.const0(), "zero");
  nl.mark_output(nl.const1(), "one");
  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("1'b0"), std::string::npos);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
  const std::string h = netlist::to_vhdl(nl);
  EXPECT_NE(h.find("<= '0';"), std::string::npos);
  EXPECT_NE(h.find("<= '1';"), std::string::npos);
}

TEST(Emit, MuxUsesConditionalForms) {
  Netlist nl("muxes");
  const auto s = nl.add_input("s");
  const auto d0 = nl.add_input("d0");
  const auto d1 = nl.add_input("d1");
  nl.mark_output(nl.mux2(s, d0, d1), "y");
  EXPECT_NE(netlist::to_verilog(nl).find("s ? d1 : d0"), std::string::npos);
  EXPECT_NE(netlist::to_vhdl(nl).find("d1 when s = '1' else d0"),
            std::string::npos);
}

}  // namespace
}  // namespace vlsa
