// Cross-module consistency: the repository has several independent
// arithmetic implementations (BitVec limb arithmetic, BigUint,
// behavioral ACA, the 32-bit word ACA, netlist adders).  These tests pin
// them against each other on shared values, so a bug in any one of them
// breaks a triangle rather than hiding.

#include <gtest/gtest.h>

#include "analysis/biguint.hpp"
#include "core/aca.hpp"
#include "core/error_metrics.hpp"
#include "crypto/adder32.hpp"
#include "multiop/multi_add.hpp"
#include "multiplier/spec_multiplier.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using analysis::BigUint;
using util::BitVec;
using util::Rng;

// Interpret a BitVec as a BigUint.
BigUint to_biguint(const BitVec& v) {
  BigUint out;
  for (int i = v.width() - 1; i >= 0; --i) {
    out += out;  // shift left by one
    if (v.bit(i)) out += BigUint(1);
  }
  return out;
}

TEST(CrossModule, BitVecAdditionMatchesBigUint) {
  Rng rng(0xc0de);
  for (int width : {31, 64, 130, 257}) {
    for (int t = 0; t < 50; ++t) {
      const BitVec a = rng.next_bits(width);
      const BitVec b = rng.next_bits(width);
      // BigUint add is unbounded; reduce mod 2^width by subtracting when
      // the carry-out fired.
      BigUint expect = to_biguint(a) + to_biguint(b);
      const auto sum = a.add_with_carry(b);
      if (sum.carry_out) expect -= BigUint::pow2(width);
      ASSERT_EQ(to_biguint(sum.sum), expect) << width;
    }
  }
}

TEST(CrossModule, Word32AcaMatchesBitVecAcaEverywhere) {
  Rng rng(0xc0df);
  for (int k : {1, 2, 5, 9, 13, 21, 31, 32}) {
    for (int t = 0; t < 500; ++t) {
      const std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64());
      const std::uint32_t b = static_cast<std::uint32_t>(rng.next_u64());
      const auto wide =
          core::aca_add(BitVec::from_u64(32, a), BitVec::from_u64(32, b), k);
      ASSERT_EQ(crypto::aca_add_u32(a, b, k),
                static_cast<std::uint32_t>(wide.sum.low_u64()))
          << "k=" << k;
    }
  }
}

TEST(CrossModule, MultiAddOfTwoEqualsAcaAdd) {
  // speculative_multi_add([a, b], k) reduces trivially (no CSA needed)
  // and must equal the plain speculative addition.
  Rng rng(0xc0e0);
  for (int t = 0; t < 300; ++t) {
    const BitVec a = rng.next_bits(48);
    const BitVec b = rng.next_bits(48);
    const std::vector<BitVec> pair{a, b};
    const auto multi = multiop::speculative_multi_add(pair, 7);
    const auto direct = core::aca_add(a, b, 7);
    ASSERT_EQ(multi.sum, direct.sum);
    ASSERT_EQ(multi.flagged, direct.flagged);
  }
}

TEST(CrossModule, SignedAndUnsignedMultiplyAgreeOnNonNegative) {
  // For operands with a clear sign bit, the signed (Booth reference) and
  // unsigned products coincide.
  Rng rng(0xc0e1);
  for (int t = 0; t < 300; ++t) {
    BitVec a = rng.next_bits(16);
    BitVec b = rng.next_bits(16);
    a.set_bit(15, false);
    b.set_bit(15, false);
    ASSERT_EQ(multiplier::exact_multiply_signed(a, b),
              multiplier::exact_multiply(a, b));
  }
}

TEST(CrossModule, BoothAndWallaceSpeculativeAgreeWhenUnflagged) {
  Rng rng(0xc0e2);
  int checked = 0;
  for (int t = 0; t < 1000; ++t) {
    BitVec a = rng.next_bits(12);
    BitVec b = rng.next_bits(12);
    a.set_bit(11, false);  // keep both interpretations identical
    b.set_bit(11, false);
    const auto booth = multiplier::speculative_multiply_booth(a, b, 9);
    const auto wallace = multiplier::speculative_multiply(a, b, 9);
    if (!booth.flagged && !wallace.flagged) {
      ASSERT_EQ(booth.product, wallace.product);
      ++checked;
    }
  }
  EXPECT_GT(checked, 800);  // the comparison actually ran
}

TEST(CrossModule, BigUintRatioMatchesBitVecNormalization) {
  Rng rng(0xc0e3);
  for (int t = 0; t < 100; ++t) {
    const BitVec v = rng.next_bits(200);
    const double via_biguint = to_biguint(v).ratio_to_pow2(200);
    const double via_distance = core::normalized_distance(v, BitVec(200));
    ASSERT_NEAR(via_biguint, via_distance, 1e-12);
  }
}

}  // namespace
}  // namespace vlsa
