// Tests for the equivalence checker, the dead-logic pass and the DOT
// emitter — the utilities interlock: DCE output is proven equivalent to
// its input by the checker, on real generated circuits.

#include <gtest/gtest.h>

#include <string>

#include "adders/adders.hpp"
#include "core/aca_netlist.hpp"
#include "netlist/dot.hpp"
#include "netlist/equiv.hpp"
#include "netlist/opt.hpp"
#include "netlist/sta.hpp"

namespace vlsa {
namespace {

using netlist::check_equivalence;
using netlist::Netlist;
using netlist::remove_dead_gates;

TEST(Equiv, IdenticalNetlistsAreEquivalent) {
  const auto a1 = adders::build_adder(adders::AdderKind::KoggeStone, 8);
  const auto a2 = adders::build_adder(adders::AdderKind::KoggeStone, 8);
  const auto result = check_equivalence(a1.nl, a2.nl);
  EXPECT_TRUE(result.equivalent);
  EXPECT_TRUE(result.exhaustive);  // 16 inputs
  EXPECT_EQ(result.vectors_checked, 1LL << 16);
}

TEST(Equiv, DifferentTopologiesSameFunction) {
  // Every pair of adder architectures is functionally identical.
  const auto reference = adders::build_adder(adders::AdderKind::RippleCarry, 9);
  for (auto kind : adders::all_adder_kinds()) {
    const auto other = adders::build_adder(kind, 9);
    const auto result = check_equivalence(reference.nl, other.nl);
    EXPECT_TRUE(result.equivalent) << adders::adder_kind_name(kind);
    EXPECT_TRUE(result.exhaustive);
  }
}

TEST(Equiv, DetectsFunctionalDifference) {
  // ACA(16, 4) differs from an exact adder — the checker must find a
  // counterexample (an activated >=4 propagate chain).
  const auto exact = adders::build_adder(adders::AdderKind::KoggeStone, 16);
  auto aca = core::build_aca(16, 4);
  const auto result = check_equivalence(exact.nl, aca.nl, 1 << 16);
  EXPECT_FALSE(result.equivalent);
  EXPECT_FALSE(result.counterexample.empty());
  EXPECT_FALSE(result.mismatched_output.empty());
}

TEST(Equiv, WideCircuitsUseRandomPlusCorners) {
  const auto a1 = adders::build_adder(adders::AdderKind::BrentKung, 40);
  const auto a2 = adders::build_adder(adders::AdderKind::Sklansky, 40);
  const auto result = check_equivalence(a1.nl, a2.nl, 2048);
  EXPECT_TRUE(result.equivalent);
  EXPECT_FALSE(result.exhaustive);
  EXPECT_EQ(result.vectors_checked, 2048);
}

TEST(Equiv, WideAcaVsExactIsCaughtByCornerVectors) {
  // At width 64 exhaustive checking is impossible, but the walking-ones /
  // all-ones corner patterns activate long chains immediately.
  const auto exact = adders::build_adder(adders::AdderKind::KoggeStone, 64);
  const auto aca = core::build_aca(64, 6);
  const auto result = check_equivalence(exact.nl, aca.nl, 512);
  EXPECT_FALSE(result.equivalent);
}

TEST(Equiv, RejectsMismatchedInterfaces) {
  const auto a8 = adders::build_adder(adders::AdderKind::KoggeStone, 8);
  const auto a9 = adders::build_adder(adders::AdderKind::KoggeStone, 9);
  EXPECT_THROW(check_equivalence(a8.nl, a9.nl), std::invalid_argument);
}

TEST(Opt, StructureReportFindsDeadGate) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto used = nl.and2(a, b);
  nl.xor2(a, b);  // dead
  nl.mark_output(used, "x");
  const auto report = netlist::analyze_structure(nl);
  EXPECT_EQ(report.total_cells, 2);
  EXPECT_EQ(report.dead_gates, 1);
  EXPECT_EQ(report.unused_inputs, 0);
  EXPECT_TRUE(report.has_outputs);
}

TEST(Opt, RemoveDeadGatesShrinksAndPreservesFunction) {
  // Prefix adders keep a dead top-level block-P cell; DCE must remove
  // something and preserve the function exactly.
  for (auto kind : {adders::AdderKind::KoggeStone, adders::AdderKind::Sklansky,
                    adders::AdderKind::ConditionalSum}) {
    const auto adder = adders::build_adder(kind, 12);
    const Netlist cleaned = remove_dead_gates(adder.nl);
    const auto before = netlist::analyze_area(adder.nl);
    const auto after = netlist::analyze_area(cleaned);
    EXPECT_LE(after.total_area, before.total_area)
        << adders::adder_kind_name(kind);
    EXPECT_EQ(netlist::analyze_structure(cleaned).dead_gates, 0);
    const auto equiv = check_equivalence(adder.nl, cleaned);
    EXPECT_TRUE(equiv.equivalent) << adders::adder_kind_name(kind);
  }
}

TEST(Opt, DcePreservesVlsaSemantics) {
  const auto vlsa = core::build_vlsa(10, 3);
  const Netlist cleaned = remove_dead_gates(vlsa.nl);
  const auto equiv = check_equivalence(vlsa.nl, cleaned);
  EXPECT_TRUE(equiv.equivalent);
  EXPECT_TRUE(equiv.exhaustive);
}

TEST(Opt, DceKeepsUnusedInputsInInterface) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  nl.add_input("unused");
  nl.mark_output(nl.inv(a), "x");
  const Netlist cleaned = remove_dead_gates(nl);
  EXPECT_EQ(cleaned.inputs().size(), 2u);  // interface preserved
  EXPECT_EQ(netlist::analyze_structure(cleaned).unused_inputs, 1);
}

TEST(Dot, EmitsNodesEdgesAndCriticalPath) {
  const auto adder = adders::build_adder(adders::AdderKind::RippleCarry, 3);
  const auto timing = netlist::analyze_timing(adder.nl);
  const std::string dot = netlist::to_dot(adder.nl, timing.critical_path);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("a[0]"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // critical path
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace vlsa
