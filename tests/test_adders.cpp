// Functional verification of every baseline adder generator against the
// BitVec behavioral reference, across architectures and widths
// (parameterized sweep), plus structural sanity checks.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "adders/adders.hpp"
#include "netlist/sta.hpp"
#include "netlist_test_util.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using adders::AdderKind;
using adders::AdderNetlist;
using testing::run_adder_netlist;
using util::BitVec;
using util::Rng;

std::vector<std::pair<BitVec, BitVec>> corner_and_random_ops(int width,
                                                             int randoms,
                                                             Rng& rng) {
  std::vector<std::pair<BitVec, BitVec>> ops;
  const BitVec zero(width);
  const BitVec one = BitVec::from_u64(width, 1);
  const BitVec all = BitVec::ones(width);
  // Corners: force full-length carry chains and boundary behaviour.
  ops.push_back({zero, zero});
  ops.push_back({all, one});
  ops.push_back({all, all});
  ops.push_back({one, all - one});
  ops.push_back({all, zero});
  for (int i = 0; i < randoms; ++i) {
    ops.push_back({rng.next_bits(width), rng.next_bits(width)});
  }
  return ops;
}

struct SweepParam {
  AdderKind kind;
  int width;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = adders::adder_kind_name(info.param.kind);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_w" + std::to_string(info.param.width);
}

class AdderSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AdderSweep, MatchesBehavioralReference) {
  const auto [kind, width] = GetParam();
  const AdderNetlist adder = adders::build_adder(kind, width);
  Rng rng(0xadd5eed ^ (static_cast<std::uint64_t>(width) << 8) ^
          static_cast<std::uint64_t>(kind));
  const auto ops = corner_and_random_ops(width, 123, rng);
  const auto results =
      run_adder_netlist(adder.nl, adder.a, adder.b, adder.sum,
                        adder.carry_out, ops);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto expect = ops[i].first.add_with_carry(ops[i].second);
    ASSERT_EQ(results[i].sum, expect.sum)
        << "op " << i << ": " << ops[i].first.to_hex() << " + "
        << ops[i].second.to_hex();
    ASSERT_EQ(results[i].carry_out, expect.carry_out) << "op " << i;
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (AdderKind kind : adders::all_adder_kinds()) {
    for (int width : {1, 2, 3, 5, 8, 13, 16, 24, 32, 64, 100, 128, 256}) {
      params.push_back({kind, width});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllKindsAllWidths, AdderSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

TEST(Adders, ExhaustiveSmallWidth) {
  // Every 4-bit operand pair through every architecture.
  for (AdderKind kind : adders::all_adder_kinds()) {
    const AdderNetlist adder = adders::build_adder(kind, 4);
    std::vector<std::pair<BitVec, BitVec>> ops;
    for (int a = 0; a < 16; ++a) {
      for (int b = 0; b < 16; ++b) {
        ops.push_back({BitVec::from_u64(4, a), BitVec::from_u64(4, b)});
      }
    }
    const auto results =
        run_adder_netlist(adder.nl, adder.a, adder.b, adder.sum,
                          adder.carry_out, ops);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::uint64_t a = ops[i].first.low_u64();
      const std::uint64_t b = ops[i].second.low_u64();
      ASSERT_EQ(results[i].sum.low_u64(), (a + b) & 0xf)
          << adders::adder_kind_name(kind) << " " << a << "+" << b;
      ASSERT_EQ(results[i].carry_out, ((a + b) >> 4) != 0)
          << adders::adder_kind_name(kind) << " " << a << "+" << b;
    }
  }
}

TEST(Adders, DelayOrderingMatchesTheory) {
  // At 64 bits: ripple is the slowest; Kogge-Stone beats ripple by a wide
  // margin; the sqrt(n) designs sit in between (carry-skip is measured
  // pessimistically, see skip_select.cpp, so only carry-select is
  // asserted here).
  auto delay = [](AdderKind kind) {
    const auto adder = adders::build_adder(kind, 64);
    return netlist::analyze_timing(adder.nl).critical_delay_ns;
  };
  const double rca = delay(AdderKind::RippleCarry);
  const double ks = delay(AdderKind::KoggeStone);
  const double sel = delay(AdderKind::CarrySelect);
  EXPECT_LT(ks, sel);
  EXPECT_LT(sel, rca);
  EXPECT_LT(ks * 3, rca);  // logarithmic vs linear must be decisive
}

TEST(Adders, RippleHasSmallestArea) {
  for (AdderKind kind : adders::fast_adder_kinds()) {
    const auto fast = adders::build_adder(kind, 64);
    const auto rca = adders::build_adder(AdderKind::RippleCarry, 64);
    EXPECT_LT(netlist::analyze_area(rca.nl).total_area,
              netlist::analyze_area(fast.nl).total_area)
        << adders::adder_kind_name(kind);
  }
}

TEST(Adders, PrefixLogicLevelsAreLogarithmic) {
  for (int width : {16, 64, 256}) {
    const auto ks = adders::build_adder(AdderKind::KoggeStone, width);
    const auto t = netlist::analyze_timing(ks.nl);
    // xor/and preprocessing + log2(n) combine levels (2 cells each) + final
    // xor, with a little slack.
    int log2n = 0;
    while ((1 << log2n) < width) ++log2n;
    EXPECT_LE(t.logic_levels, 2 * log2n + 4) << width;
  }
}

TEST(Adders, FastestTraditionalIsLogarithmicFamily) {
  const auto choice = adders::fastest_traditional(128);
  bool in_fast_pool = false;
  for (AdderKind kind : adders::fast_adder_kinds()) {
    in_fast_pool |= kind == choice.kind;
  }
  EXPECT_TRUE(in_fast_pool);
  EXPECT_GT(choice.delay_ns, 0.0);
  EXPECT_GT(choice.area, 0.0);
}

TEST(Adders, KindNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (AdderKind kind : adders::all_adder_kinds()) {
    names.insert(adders::adder_kind_name(kind));
  }
  EXPECT_EQ(names.size(), adders::all_adder_kinds().size());
}

TEST(Adders, RejectsBadWidth) {
  EXPECT_THROW(adders::build_adder(AdderKind::KoggeStone, 0),
               std::invalid_argument);
  EXPECT_THROW(adders::build_adder(AdderKind::RippleCarry, -3),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
