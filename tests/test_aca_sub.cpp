// Tests for the carry-in extension and speculative subtraction.

#include <gtest/gtest.h>

#include "core/aca.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using core::aca_add;
using core::aca_sub;
using core::SpeculativeAdder;
using util::BitVec;
using util::Rng;

TEST(AcaCarryIn, ExhaustiveSoundnessWidth8) {
  // With carry-in the same theorem must hold: unflagged implies exact.
  const int k = 3;
  for (int cin = 0; cin <= 1; ++cin) {
    for (int av = 0; av < 256; ++av) {
      for (int bv = 0; bv < 256; ++bv) {
        const BitVec a = BitVec::from_u64(8, av);
        const BitVec b = BitVec::from_u64(8, bv);
        const auto got = aca_add(a, b, k, cin != 0);
        const auto exact = a.add_with_carry(b, cin != 0);
        if (!got.flagged) {
          ASSERT_EQ(got.sum, exact.sum)
              << av << "+" << bv << "+" << cin;
          ASSERT_EQ(got.carry_out, exact.carry_out);
        }
      }
    }
  }
}

TEST(AcaCarryIn, WideWindowMatchesExactWithCarry) {
  Rng rng(81);
  for (int i = 0; i < 500; ++i) {
    const BitVec a = rng.next_bits(72);
    const BitVec b = rng.next_bits(72);
    const auto got = aca_add(a, b, 72, true);
    const auto exact = a.add_with_carry(b, true);
    ASSERT_EQ(got.sum, exact.sum);
    ASSERT_EQ(got.carry_out, exact.carry_out);
    ASSERT_FALSE(got.flagged);
  }
}

TEST(AcaCarryIn, CarryInAffectsOnlyClampedWindows) {
  // With a kill at bit 0 the carry-in cannot reach any higher bit, so
  // both settings must agree above bit 0.
  BitVec a = BitVec::from_u64(16, 0b1010101010101010);
  BitVec b(16);  // a & b = 0 and a ^ b has no bit 0 set -> bit0 kill
  const auto without = aca_add(a, b, 4, false);
  const auto with = aca_add(a, b, 4, true);
  for (int i = 1; i < 16; ++i) {
    EXPECT_EQ(without.sum.bit(i), with.sum.bit(i)) << i;
  }
  EXPECT_NE(without.sum.bit(0), with.sum.bit(0));
}

TEST(AcaSub, UnflaggedSubtractionIsExact) {
  Rng rng(82);
  int flagged = 0;
  for (int i = 0; i < 5000; ++i) {
    const BitVec a = rng.next_bits(64);
    const BitVec b = rng.next_bits(64);
    const auto got = aca_sub(a, b, 8);
    if (got.flagged) {
      ++flagged;
    } else {
      ASSERT_EQ(got.sum, a - b);
    }
  }
  EXPECT_GT(flagged, 0);
  EXPECT_LT(flagged, 2500);
}

TEST(AcaSub, SubtractionOfEqualOperandsIsZeroButFlagged) {
  // a - a: ~a ^ a = all ones -> the propagate chain spans the word, so ER
  // fires... and yet the speculative result happens to be right only in
  // the low window.  The point: ER = 1 does not mean wrong, and a - a is
  // the canonical false-positive-or-error stress case.
  const BitVec a = BitVec::from_u64(32, 0x12345678);
  const auto got = aca_sub(a, a, 8);
  EXPECT_TRUE(got.flagged);
  // Exact difference is zero; whether speculation got it right is
  // irrelevant — flagged results go to recovery.
  EXPECT_EQ((a - a).low_u64(), 0u);
}

TEST(AcaSub, ComplementaryOperandsNeverFlag) {
  // a = 1010..., b = 0101...: the subtraction's propagate string
  // a ^ ~b is all zeros, so no window can misspeculate at any k.
  const BitVec a = BitVec::from_u64(64, 0xaaaaaaaaaaaaaaaa);
  const BitVec b = BitVec::from_u64(64, 0x5555555555555555);
  const auto got = aca_sub(a, b, 4);
  EXPECT_FALSE(got.flagged);
  EXPECT_EQ(got.sum, a - b);
}

TEST(AcaSub, NearbyOperandsAreTheSubtractionWorstCase) {
  // Subtracting nearly equal values makes ~b nearly equal to ~a, so the
  // propagate string is nearly all ones — subtraction flips the easy and
  // hard input classes relative to addition.  Deployments that subtract
  // accumulator-style values must budget for this.
  const BitVec a = BitVec::from_u64(64, 1'000'000'007);
  const BitVec b = BitVec::from_u64(64, 1'000'000'000);
  const auto got = aca_sub(a, b, 16);
  EXPECT_TRUE(got.flagged);
  EXPECT_EQ((a - b).low_u64(), 7u);
}

TEST(AcaSub, SpeculativeAdderSubApi) {
  SpeculativeAdder adder(48, 10);
  Rng rng(83);
  for (int i = 0; i < 2000; ++i) {
    const BitVec a = rng.next_bits(48);
    const BitVec b = rng.next_bits(48);
    const auto out = adder.sub(a, b);
    ASSERT_EQ(out.exact, a - b);
    if (out.was_wrong) {
      ASSERT_TRUE(out.flagged);
    }
  }
  EXPECT_EQ(adder.total_adds(), 2000);
}

TEST(AcaSub, RejectsWidthMismatch) {
  SpeculativeAdder adder(16, 4);
  EXPECT_THROW(adder.sub(BitVec(8), BitVec(16)), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
