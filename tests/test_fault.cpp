// Tests for the stuck-at fault simulator: hand-checkable injections,
// coverage accounting, and the interaction between silicon faults and
// the ACA's error flag.

#include <gtest/gtest.h>

#include "adders/adders.hpp"
#include "core/aca_netlist.hpp"
#include "netlist/fault.hpp"
#include "netlist/simulator.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using netlist::Fault;
using netlist::FaultSimulator;
using netlist::Netlist;

TEST(FaultSim, EnumerationSkipsConstants) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  nl.const0();
  nl.mark_output(nl.inv(a), "x");
  const auto faults = netlist::enumerate_faults(nl);
  // Nets: input a, const0, inv -> 2 faultable nets x 2 polarities.
  EXPECT_EQ(faults.size(), 4u);
}

TEST(FaultSim, StuckOutputForcesValue) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.and2(a, b);
  nl.mark_output(x, "x");
  FaultSimulator sim(nl);
  const std::vector<std::uint64_t> stim{~std::uint64_t{0}, ~std::uint64_t{0}};
  const auto faulty = sim.with_fault(Fault{x, false}, stim);
  EXPECT_EQ(faulty[static_cast<std::size_t>(x)], 0u);  // stuck-at-0 wins
  const auto golden = sim.golden(stim);
  EXPECT_EQ(golden[static_cast<std::size_t>(x)], ~std::uint64_t{0});
}

TEST(FaultSim, StuckInputPropagates) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.or2(a, b);
  nl.mark_output(x, "x");
  FaultSimulator sim(nl);
  const std::vector<std::uint64_t> stim{0, 0};
  const auto faulty = sim.with_fault(Fault{a, true}, stim);
  EXPECT_EQ(faulty[static_cast<std::size_t>(x)], ~std::uint64_t{0});
}

TEST(FaultSim, DetectingLanesIsExact) {
  // x = a AND b: stuck-at-0 on x is visible exactly in lanes where a&b=1.
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.and2(a, b);
  nl.mark_output(x, "x");
  FaultSimulator sim(nl);
  const std::uint64_t va = 0b1100, vb = 0b1010;
  const std::vector<std::uint64_t> stim{va, vb};
  const auto golden = sim.golden(stim);
  EXPECT_EQ(sim.detecting_lanes(Fault{x, false}, stim, golden), va & vb);
  EXPECT_EQ(sim.detecting_lanes(Fault{x, true}, stim, golden),
            ~(va & vb));
}

TEST(FaultSim, RedundancyFreeCircuitReachesFullCoverage) {
  // A ripple-carry adder has no redundant logic: with enough random
  // vectors every single-stuck-at fault is observable.
  const auto adder = adders::build_adder(adders::AdderKind::RippleCarry, 8);
  const auto coverage = netlist::measure_fault_coverage(adder.nl, 40, 5);
  EXPECT_EQ(coverage.detected, coverage.total_faults);
  EXPECT_DOUBLE_EQ(coverage.coverage, 1.0);
}

TEST(FaultSim, CoverageIsMonotoneInVectors) {
  const auto aca = core::build_aca(16, 5, true);
  const auto few = netlist::measure_fault_coverage(aca.nl, 1, 6);
  const auto many = netlist::measure_fault_coverage(aca.nl, 30, 6);
  EXPECT_LE(few.detected, many.detected);
  EXPECT_GT(many.coverage, 0.9);
}

TEST(FaultSim, ErFlagCatchesSomeSumCorruptingFaults) {
  // Reliability side-study: inject each fault into the ACA+ER netlist
  // and check how often a corrupted sum coincides with ER = 1.  The
  // detector is not designed for silicon faults, so coverage must be
  // partial — but faults inside the shared strips feed both the sum and
  // the flag, so it cannot be zero either.
  const auto aca = core::build_aca(32, 6, /*with_error_flag=*/true);
  FaultSimulator sim(aca.nl);
  util::Rng rng(7);
  std::vector<std::uint64_t> stim(aca.nl.inputs().size());
  for (auto& w : stim) w = rng.next_u64();
  const auto golden = sim.golden(stim);

  const auto error_net = static_cast<std::size_t>(aca.error);
  long long corrupting = 0, also_flagged = 0;
  for (const Fault& fault : netlist::enumerate_faults(aca.nl)) {
    const auto faulty = sim.with_fault(fault, stim);
    std::uint64_t sum_diff = 0;
    for (std::size_t i = 0; i < aca.sum.size(); ++i) {
      sum_diff |= faulty[static_cast<std::size_t>(aca.sum[i])] ^
                  golden[static_cast<std::size_t>(aca.sum[i])];
    }
    if (sum_diff == 0) continue;
    corrupting += 1;
    // Flagged in at least one lane where the sum is wrong.
    if ((faulty[error_net] & sum_diff) != 0) also_flagged += 1;
  }
  EXPECT_GT(corrupting, 0);
  EXPECT_GT(also_flagged, 0);
  EXPECT_LT(also_flagged, corrupting);  // and far from complete
}

TEST(FaultSim, RejectsBadArgs) {
  Netlist nl("m");
  nl.add_input("a");
  FaultSimulator sim(nl);
  EXPECT_THROW(sim.with_fault(Fault{0, false}, std::vector<std::uint64_t>{}),
               std::invalid_argument);
  EXPECT_THROW(netlist::measure_fault_coverage(nl, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
