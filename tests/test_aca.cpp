// Behavioral ACA tests: exhaustive verification at small widths, the
// soundness theorem (ER = 0 ⟹ exact), agreement between the Monte-Carlo
// error rate and the exact DP, and the SpeculativeAdder API.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/aca_probability.hpp"
#include "core/aca.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using core::aca_add;
using core::aca_flag;
using core::aca_is_exact;
using core::SpeculativeAdder;
using util::BitVec;
using util::Rng;

// Straight-line reference of the windowed-carry semantics: carry c_i from
// an independent (k-position) ripple with window carry-in 0.
BitVec reference_aca(const BitVec& a, const BitVec& b, int k, bool* cout) {
  const int n = a.width();
  BitVec sum(n);
  bool carry_prev = false;
  for (int i = 0; i < n; ++i) {
    sum.set_bit(i, a.bit(i) ^ b.bit(i) ^ carry_prev);
    const int lo = std::max(0, i - k + 1);
    bool c = false;  // assumed carry into the window
    for (int j = lo; j <= i; ++j) {
      const bool g = a.bit(j) && b.bit(j);
      const bool p = a.bit(j) ^ b.bit(j);
      c = g || (p && c);
    }
    carry_prev = c;
  }
  if (cout != nullptr) *cout = carry_prev;
  return sum;
}

TEST(AcaBehavioral, MatchesWindowReferenceExhaustivelyAtWidth8) {
  for (int k : {1, 2, 3, 5, 8, 9}) {
    for (int av = 0; av < 256; ++av) {
      for (int bv = 0; bv < 256; ++bv) {
        const BitVec a = BitVec::from_u64(8, av);
        const BitVec b = BitVec::from_u64(8, bv);
        bool ref_cout = false;
        const BitVec ref = reference_aca(a, b, k, &ref_cout);
        const auto got = aca_add(a, b, k);
        ASSERT_EQ(got.sum, ref) << "k=" << k << " a=" << av << " b=" << bv;
        ASSERT_EQ(got.carry_out, ref_cout)
            << "k=" << k << " a=" << av << " b=" << bv;
      }
    }
  }
}

TEST(AcaBehavioral, MatchesWindowReferenceRandomWide) {
  Rng rng(21);
  for (int k : {4, 11, 16}) {
    for (int i = 0; i < 200; ++i) {
      const BitVec a = rng.next_bits(200);
      const BitVec b = rng.next_bits(200);
      bool ref_cout = false;
      const BitVec ref = reference_aca(a, b, k, &ref_cout);
      const auto got = aca_add(a, b, k);
      ASSERT_EQ(got.sum, ref);
      ASSERT_EQ(got.carry_out, ref_cout);
    }
  }
}

TEST(AcaBehavioral, SoundnessFlagZeroImpliesExact) {
  // The detector's guarantee (Sec. 4.1): every unflagged sum is exact.
  // Exhaustive at width 10, k = 4.
  const int k = 4;
  for (int av = 0; av < 1024; ++av) {
    for (int bv = 0; bv < 1024; ++bv) {
      const BitVec a = BitVec::from_u64(10, av);
      const BitVec b = BitVec::from_u64(10, bv);
      const auto got = aca_add(a, b, k);
      if (!got.flagged) {
        const auto exact = a.add_with_carry(b);
        ASSERT_EQ(got.sum, exact.sum) << av << "+" << bv;
        ASSERT_EQ(got.carry_out, exact.carry_out) << av << "+" << bv;
      }
    }
  }
}

TEST(AcaBehavioral, WrongImpliesFlagged) {
  // Contrapositive coverage at another (n, k) point, randomized.
  Rng rng(22);
  for (int i = 0; i < 5000; ++i) {
    const BitVec a = rng.next_bits(96);
    const BitVec b = rng.next_bits(96);
    const auto got = aca_add(a, b, 5);
    const auto exact = a.add_with_carry(b);
    const bool wrong =
        got.sum != exact.sum || got.carry_out != exact.carry_out;
    if (wrong) {
      ASSERT_TRUE(got.flagged);
    }
  }
}

TEST(AcaBehavioral, FlagMatchesLongestRunDefinition) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const BitVec a = rng.next_bits(64);
    const BitVec b = rng.next_bits(64);
    for (int k : {3, 6, 10}) {
      EXPECT_EQ(aca_flag(a, b, k),
                core::longest_propagate_chain(a, b) >= k);
    }
  }
}

TEST(AcaBehavioral, WindowAtLeastWidthIsAlwaysExact) {
  Rng rng(24);
  for (int i = 0; i < 500; ++i) {
    const BitVec a = rng.next_bits(40);
    const BitVec b = rng.next_bits(40);
    EXPECT_TRUE(aca_is_exact(a, b, 40));
    EXPECT_TRUE(aca_is_exact(a, b, 41));
  }
}

TEST(AcaBehavioral, KnownAdversarialPattern) {
  // a = 0111...1, b = 0000...1: a single long propagate chain activated by
  // the generate at bit 0 — the classic worst case from the introduction.
  const int n = 32;
  BitVec a(n), b(n);
  for (int i = 1; i < n - 1; ++i) a.set_bit(i, true);
  a.set_bit(0, true);
  b.set_bit(0, true);
  // a ^ b has propagate run over bits [1, n-2]; g at bit 0.
  const auto got = aca_add(a, b, 8);
  EXPECT_TRUE(got.flagged);
  EXPECT_NE(got.sum, a + b);  // speculation genuinely fails here
  // And a window that covers the whole chain succeeds.
  const auto wide = aca_add(a, b, n);
  EXPECT_EQ(wide.sum, a + b);
}

TEST(AcaBehavioral, ErrorRateMatchesExactDp) {
  // Monte-Carlo wrong-rate vs the analysis DP at a point where errors are
  // common enough to measure (n = 256, k = 6: P ≈ few percent).
  const int n = 256, k = 6, trials = 200000;
  Rng rng(25);
  int wrong = 0, flagged = 0;
  for (int i = 0; i < trials; ++i) {
    const BitVec a = rng.next_bits(n);
    const BitVec b = rng.next_bits(n);
    const auto got = aca_add(a, b, k);
    flagged += got.flagged;
    const auto exact = a.add_with_carry(b);
    wrong += got.sum != exact.sum || got.carry_out != exact.carry_out;
  }
  const double wrong_rate = static_cast<double>(wrong) / trials;
  const double flag_rate = static_cast<double>(flagged) / trials;
  const double dp_wrong = analysis::aca_wrong_probability(n, k);
  const double dp_flag = analysis::aca_flag_probability(n, k);
  EXPECT_NEAR(wrong_rate / dp_wrong, 1.0, 0.05);
  EXPECT_NEAR(flag_rate / dp_flag, 1.0, 0.05);
  EXPECT_LT(wrong_rate, flag_rate);
}

TEST(SpeculativeAdderApi, TracksStatistics) {
  SpeculativeAdder adder(64, 6);
  Rng rng(26);
  for (int i = 0; i < 2000; ++i) {
    const auto out = adder.add(rng.next_bits(64), rng.next_bits(64));
    EXPECT_EQ(out.exact, out.speculative == out.exact
                             ? out.speculative
                             : out.exact);  // tautology guard for fields
    if (out.was_wrong) {
      EXPECT_TRUE(out.flagged);
    }
  }
  EXPECT_EQ(adder.total_adds(), 2000);
  EXPECT_GE(adder.flagged_adds(), adder.wrong_adds());
  EXPECT_GT(adder.observed_flag_rate(), 0.0);  // k=6 at n=64 flags often
  EXPECT_LE(adder.observed_error_rate(), adder.observed_flag_rate());
}

TEST(SpeculativeAdderApi, TargetAccuracyPicksDocumentedWindow) {
  const auto adder = SpeculativeAdder::with_target_accuracy(1024, 0.9999);
  EXPECT_EQ(adder.window(), analysis::choose_window(1024, 0.0001));
  EXPECT_LE(analysis::aca_flag_probability(1024, adder.window()), 0.0001);
}

TEST(SpeculativeAdderApi, ExactFieldIsAlwaysTheTrueSum) {
  SpeculativeAdder adder(128, 4);
  Rng rng(27);
  for (int i = 0; i < 500; ++i) {
    const BitVec a = rng.next_bits(128);
    const BitVec b = rng.next_bits(128);
    const auto out = adder.add(a, b);
    EXPECT_EQ(out.exact, a + b);
  }
}

TEST(SpeculativeAdderApi, RejectsBadConfig) {
  EXPECT_THROW(SpeculativeAdder(0, 4), std::invalid_argument);
  EXPECT_THROW(SpeculativeAdder(8, 0), std::invalid_argument);
  EXPECT_THROW(SpeculativeAdder::with_target_accuracy(64, 1.5),
               std::invalid_argument);
  SpeculativeAdder adder(16, 4);
  EXPECT_THROW(adder.add(BitVec(8), BitVec(16)), std::invalid_argument);
}

TEST(AcaBehavioral, RejectsBadArgs) {
  EXPECT_THROW(aca_add(BitVec(8), BitVec(9), 4), std::invalid_argument);
  EXPECT_THROW(aca_add(BitVec(8), BitVec(8), 0), std::invalid_argument);
  EXPECT_THROW(aca_add(BitVec(0), BitVec(0), 1), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
