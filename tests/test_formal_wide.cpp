// Wide-width formal proofs (`slow` ctest label): the 256/512-bit
// obligations that certify the paper's claims at sizes the random
// checker cannot meaningfully cover (2^513 input pairs).  The fast
// signal lives in test_formal.cpp; this file is the heavyweight sweep
// run by `ctest -L slow` and the CI `prove` job's ctest stage.

#include <gtest/gtest.h>

#include "adders/adders.hpp"
#include "core/aca_netlist.hpp"
#include "netlist/formal/miter.hpp"

namespace vlsa {
namespace {

using netlist::formal::FormalVerdict;
using netlist::formal::MiterSpec;
using netlist::formal::check_equivalence_formal;

TEST(FormalWide, ExactAddersPairwiseAt256) {
  // Prove every shipped architecture equal to ripple-carry at 256 bits.
  const auto reference =
      adders::build_adder(adders::AdderKind::RippleCarry, 256);
  for (auto kind : adders::all_adder_kinds()) {
    if (kind == adders::AdderKind::RippleCarry) continue;
    const auto other = adders::build_adder(kind, 256);
    const auto result = check_equivalence_formal(reference.nl, other.nl);
    EXPECT_EQ(result.verdict, FormalVerdict::Proven)
        << adders::adder_kind_name(kind) << ": " << result.summary();
  }
}

TEST(FormalWide, AcaConditionallyExactAt256And512) {
  for (const auto& [width, k] : {std::pair{256, 8}, std::pair{512, 9}}) {
    const auto exact =
        adders::build_adder(adders::AdderKind::RippleCarry, width);
    const auto aca = core::build_aca(width, k, true);
    MiterSpec spec;
    spec.assume_zero = {"error"};
    const auto result = check_equivalence_formal(aca.nl, exact.nl, spec);
    EXPECT_EQ(result.verdict, FormalVerdict::Proven)
        << "width " << width << " k " << k << ": " << result.summary();
    EXPECT_EQ(result.outputs_compared, width + 1);
  }
}

TEST(FormalWide, VlsaRecoveryExactAt256And512) {
  for (const auto& [width, k] : {std::pair{256, 8}, std::pair{512, 9}}) {
    const auto exact =
        adders::build_adder(adders::AdderKind::RippleCarry, width);
    const auto vlsa = core::build_vlsa(width, k);
    MiterSpec spec;
    spec.ignore_unmatched_outputs = true;
    const auto result = check_equivalence_formal(vlsa.nl, exact.nl, spec);
    EXPECT_EQ(result.verdict, FormalVerdict::Proven)
        << "width " << width << " k " << k << ": " << result.summary();
  }
}

TEST(FormalWide, AcaVsExactStillRefutableAt256) {
  // Without the flag assumption the 256-bit ACA must yield a
  // counterexample — the solver finds a >=k propagate chain among
  // 2^513 candidate input pairs.
  const auto exact =
      adders::build_adder(adders::AdderKind::RippleCarry, 256);
  const auto aca = core::build_aca(256, 8);
  const auto result = check_equivalence_formal(aca.nl, exact.nl);
  EXPECT_EQ(result.verdict, FormalVerdict::Counterexample)
      << result.summary();
}

}  // namespace
}  // namespace vlsa
