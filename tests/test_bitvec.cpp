// Unit tests for util::BitVec — the arithmetic substrate everything else
// trusts, so it is tested against native 64-bit arithmetic and by
// algebraic properties at wide widths.

#include <gtest/gtest.h>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using util::BitVec;
using util::Rng;

TEST(BitVec, DefaultIsZeroWidth) {
  const BitVec v;
  EXPECT_EQ(v.width(), 0);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_zero());
}

TEST(BitVec, FromU64RoundTrip) {
  const BitVec v = BitVec::from_u64(64, 0xdeadbeefcafebabeULL);
  EXPECT_EQ(v.low_u64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(v.width(), 64);
}

TEST(BitVec, FromU64TruncatesToWidth) {
  const BitVec v = BitVec::from_u64(8, 0x1ff);
  EXPECT_EQ(v.low_u64(), 0xff);
}

TEST(BitVec, BinaryStringRoundTrip) {
  const BitVec v = BitVec::from_binary("10110");
  EXPECT_EQ(v.width(), 5);
  EXPECT_EQ(v.low_u64(), 0b10110u);
  EXPECT_EQ(v.to_binary(), "10110");
}

TEST(BitVec, FromBinaryRejectsBadChars) {
  EXPECT_THROW(BitVec::from_binary("10x"), std::invalid_argument);
}

TEST(BitVec, HexRoundTrip) {
  const BitVec v = BitVec::from_hex("Fe01");
  EXPECT_EQ(v.width(), 16);
  EXPECT_EQ(v.low_u64(), 0xfe01u);
  EXPECT_EQ(v.to_hex(), "fe01");
}

TEST(BitVec, FromHexRejectsBadChars) {
  EXPECT_THROW(BitVec::from_hex("1g"), std::invalid_argument);
}

TEST(BitVec, OnesHasAllBitsSet) {
  const BitVec v = BitVec::ones(70);
  EXPECT_EQ(v.popcount(), 70);
  EXPECT_EQ(v.longest_one_run(), 70);
}

TEST(BitVec, SetAndGetBitAcrossLimbBoundary) {
  BitVec v(130);
  v.set_bit(63, true);
  v.set_bit(64, true);
  v.set_bit(129, true);
  EXPECT_TRUE(v.bit(63));
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.bit(129));
  EXPECT_FALSE(v.bit(0));
  EXPECT_EQ(v.popcount(), 3);
  v.set_bit(64, false);
  EXPECT_FALSE(v.bit(64));
}

TEST(BitVec, BitAccessOutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.bit(8), std::out_of_range);
  EXPECT_THROW(v.bit(-1), std::out_of_range);
  EXPECT_THROW(v.set_bit(8, true), std::out_of_range);
}

TEST(BitVec, AdditionMatchesNativeAt64Bits) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng.next_u64();
    const std::uint64_t y = rng.next_u64();
    const BitVec a = BitVec::from_u64(64, x);
    const BitVec b = BitVec::from_u64(64, y);
    EXPECT_EQ((a + b).low_u64(), x + y);
  }
}

TEST(BitVec, AdditionWrapsModuloWidth) {
  const BitVec a = BitVec::from_u64(8, 0xff);
  const BitVec b = BitVec::from_u64(8, 0x01);
  EXPECT_TRUE((a + b).is_zero());
}

TEST(BitVec, AddWithCarryReportsCarryOut) {
  const BitVec a = BitVec::from_u64(8, 0xff);
  const BitVec b = BitVec::from_u64(8, 0x01);
  const auto r = a.add_with_carry(b);
  EXPECT_TRUE(r.sum.is_zero());
  EXPECT_TRUE(r.carry_out);
  const auto r2 = a.add_with_carry(BitVec(8));
  EXPECT_FALSE(r2.carry_out);
}

TEST(BitVec, AddWithCarryAtNonLimbWidths) {
  // Width 100: carry out lives inside the top limb.
  const BitVec a = BitVec::ones(100);
  const BitVec one = BitVec::from_u64(100, 1);
  const auto r = a.add_with_carry(one);
  EXPECT_TRUE(r.sum.is_zero());
  EXPECT_TRUE(r.carry_out);
}

TEST(BitVec, CarryInPropagates) {
  const BitVec a = BitVec::from_u64(16, 10);
  const BitVec b = BitVec::from_u64(16, 20);
  EXPECT_EQ(a.add_with_carry(b, true).sum.low_u64(), 31u);
}

TEST(BitVec, SubtractionMatchesNative) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng.next_u64();
    const std::uint64_t y = rng.next_u64();
    const BitVec a = BitVec::from_u64(64, x);
    const BitVec b = BitVec::from_u64(64, y);
    EXPECT_EQ((a - b).low_u64(), x - y);
  }
}

TEST(BitVec, WideAdditionAssociativity) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const BitVec a = rng.next_bits(521);
    const BitVec b = rng.next_bits(521);
    const BitVec c = rng.next_bits(521);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(BitVec, WideAdditionCommutativity) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const BitVec a = rng.next_bits(2048);
    const BitVec b = rng.next_bits(2048);
    EXPECT_EQ(a + b, b + a);
  }
}

TEST(BitVec, SubtractionInvertsAddition) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const BitVec a = rng.next_bits(333);
    const BitVec b = rng.next_bits(333);
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST(BitVec, BitwiseOperatorsMatchNative) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next_u64();
    const std::uint64_t y = rng.next_u64();
    const BitVec a = BitVec::from_u64(64, x);
    const BitVec b = BitVec::from_u64(64, y);
    EXPECT_EQ((a & b).low_u64(), x & y);
    EXPECT_EQ((a | b).low_u64(), x | y);
    EXPECT_EQ((a ^ b).low_u64(), x ^ y);
    EXPECT_EQ((~a).low_u64(), ~x);
  }
}

TEST(BitVec, ComplementIsCanonical) {
  // ~0 at width 10 must not set bits above the width.
  const BitVec v = ~BitVec(10);
  EXPECT_EQ(v.popcount(), 10);
  EXPECT_EQ(v.low_u64(), 0x3ffu);
}

TEST(BitVec, WidthMismatchThrows) {
  const BitVec a(8);
  const BitVec b(9);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a & b, std::invalid_argument);
}

TEST(BitVec, ShiftsMatchNative) {
  Rng rng(7);
  for (int shift : {0, 1, 7, 31, 63}) {
    const std::uint64_t x = rng.next_u64();
    const BitVec a = BitVec::from_u64(64, x);
    EXPECT_EQ(a.shl(shift).low_u64(), x << shift);
    EXPECT_EQ(a.shr(shift).low_u64(), x >> shift);
  }
}

TEST(BitVec, ShiftBeyondWidthYieldsZero) {
  const BitVec a = BitVec::ones(32);
  EXPECT_TRUE(a.shl(32).is_zero());
  EXPECT_TRUE(a.shr(32).is_zero());
}

TEST(BitVec, ResizeZeroExtendsAndTruncates) {
  const BitVec a = BitVec::from_u64(8, 0xab);
  EXPECT_EQ(a.resized(16).low_u64(), 0xabu);
  EXPECT_EQ(a.resized(4).low_u64(), 0xbu);
}

TEST(BitVec, LongestOneRun) {
  EXPECT_EQ(BitVec::from_binary("0").longest_one_run(), 0);
  EXPECT_EQ(BitVec::from_binary("1").longest_one_run(), 1);
  EXPECT_EQ(BitVec::from_binary("0110111011110").longest_one_run(), 4);
  // Run crossing the 64-bit limb boundary.
  BitVec v(128);
  for (int i = 60; i < 70; ++i) v.set_bit(i, true);
  EXPECT_EQ(v.longest_one_run(), 10);
}

TEST(BitVec, NegativeWidthThrows) {
  EXPECT_THROW(BitVec(-1), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
