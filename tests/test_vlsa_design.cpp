// Tests for the VlsaDesign datasheet facade, the recovery-style ablation
// variants, and the VCD waveform emitter.

#include <gtest/gtest.h>

#include <string>

#include "analysis/aca_probability.hpp"
#include "core/aca_netlist.hpp"
#include "core/vlsa.hpp"
#include "netlist/equiv.hpp"
#include "netlist/sta.hpp"
#include "sim/vcd.hpp"
#include "sim/vlsa_pipeline.hpp"
#include "util/bitvec.hpp"

namespace vlsa {
namespace {

using core::VlsaDesign;
using util::BitVec;

TEST(VlsaDesign, PicksTheAnalysisWindow) {
  const auto d = VlsaDesign::design(256, 0.9999);
  EXPECT_EQ(d.window(), analysis::choose_window(256, 1e-4));
  EXPECT_LE(d.flag_probability(), 1e-4);
  EXPECT_LE(d.wrong_probability(), d.flag_probability());
}

TEST(VlsaDesign, TimingInvariants) {
  const auto d = VlsaDesign::design(256, 0.9999);
  EXPECT_GT(d.aca_delay_ns(), 0.0);
  EXPECT_LT(d.aca_delay_ns(), d.traditional_delay_ns());
  EXPECT_LT(d.error_detect_delay_ns(), d.traditional_delay_ns());
  EXPECT_GT(d.recovery_delay_ns(), d.aca_delay_ns());
  EXPECT_GE(d.clock_period_ns(),
            std::max(d.aca_delay_ns(), d.error_detect_delay_ns()));
  EXPECT_GT(d.expected_latency_cycles(), 1.0);
  EXPECT_LT(d.expected_latency_cycles(), 1.001);
  EXPECT_GT(d.average_speedup(), 1.0);
}

TEST(VlsaDesign, SpeedupGrowsWithWidth) {
  // Adjacent widths can wiggle (the window's binary decomposition changes
  // the ER tree depth), so compare across a wide gap where the
  // log k vs log n asymptotics dominate.
  const auto d64 = VlsaDesign::design(64, 0.9999);
  const auto d2048 = VlsaDesign::design(2048, 0.9999);
  EXPECT_GT(d2048.average_speedup(), d64.average_speedup() * 1.2);
}

TEST(VlsaDesign, ExplicitWindowVariant) {
  const auto d = VlsaDesign::with_window(128, 10, 3);
  EXPECT_EQ(d.window(), 10);
  EXPECT_EQ(d.recovery_cycles(), 3);
  EXPECT_DOUBLE_EQ(d.expected_latency_cycles(),
                   1.0 + 3 * analysis::aca_flag_probability(128, 10));
}

TEST(VlsaDesign, MakeAdderIsFunctional) {
  const auto d = VlsaDesign::design(64, 0.99);
  auto adder = d.make_adder();
  const auto out = adder.add(BitVec::from_u64(64, 123),
                             BitVec::from_u64(64, 456));
  EXPECT_EQ(out.exact.low_u64(), 579u);
}

TEST(VlsaDesign, DatasheetMentionsEverything) {
  const auto d = VlsaDesign::design(128, 0.9999);
  const std::string sheet = d.datasheet();
  EXPECT_NE(sheet.find("128-bit"), std::string::npos);
  EXPECT_NE(sheet.find("P(flag)"), std::string::npos);
  EXPECT_NE(sheet.find("average speedup"), std::string::npos);
  EXPECT_NE(sheet.find("area"), std::string::npos);
}

TEST(VlsaDesign, RejectsBadConfig) {
  EXPECT_THROW(VlsaDesign::design(64, 0.0), std::invalid_argument);
  EXPECT_THROW(VlsaDesign::design(64, 1.0), std::invalid_argument);
  EXPECT_THROW(VlsaDesign::with_window(1, 1), std::invalid_argument);
  EXPECT_THROW(VlsaDesign::with_window(64, 0), std::invalid_argument);
}

TEST(RecoveryStyle, BothStylesAreFunctionallyIdentical) {
  const auto reuse =
      core::build_vlsa(12, 4, core::RecoveryStyle::ReuseBlocks);
  const auto replicated =
      core::build_vlsa(12, 4, core::RecoveryStyle::ReplicatedAdder);
  const auto result = netlist::check_equivalence(reuse.nl, replicated.nl);
  EXPECT_TRUE(result.equivalent);
}

TEST(RecoveryStyle, ReuseSavesAreaOverReplication) {
  // Sec. 4.2's point: reusing the ACA's block (G, P) products is cheaper
  // than bolting a complete traditional adder next to the ACA.
  const int n = 256;
  const int k = analysis::choose_window(n, 1e-4);
  const auto reuse = core::build_vlsa(n, k, core::RecoveryStyle::ReuseBlocks);
  const auto replicated =
      core::build_vlsa(n, k, core::RecoveryStyle::ReplicatedAdder);
  EXPECT_LT(netlist::analyze_area(reuse.nl).total_area,
            netlist::analyze_area(replicated.nl).total_area);
}

TEST(Vcd, EmitsWellFormedWaveform) {
  sim::PipelineConfig config;
  config.width = 16;
  config.window = 4;
  config.clock_period_ns = 1.0;
  sim::VlsaPipeline pipe(config);
  pipe.submit(BitVec::from_u64(16, 0x00ff), BitVec::from_u64(16, 0x0001));
  pipe.submit(BitVec::from_u64(16, 3), BitVec::from_u64(16, 4));
  const std::string vcd = sim::to_vcd(pipe.trace(), 16, 1.0);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 16 $ a $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("b11111111 $"), std::string::npos);  // a of op 0
  // One rising edge per cycle, dumped as '1!' lines.
  int edges = 0;
  for (std::size_t pos = vcd.find("1!"); pos != std::string::npos;
       pos = vcd.find("1!", pos + 2)) {
    ++edges;
  }
  const long long cycles =
      pipe.trace().back().done_cycle - pipe.trace().front().issue_cycle + 1;
  EXPECT_EQ(edges, cycles);
}

TEST(Vcd, SumAppearsOnlyOnValidCycle) {
  sim::PipelineConfig config;
  config.width = 16;
  config.window = 4;
  config.clock_period_ns = 2.0;
  sim::VlsaPipeline pipe(config);
  // Forced misspeculation: activated long chain.
  BitVec a(16), b(16);
  a.set_bit(0, true);
  b.set_bit(0, true);
  for (int i = 1; i < 16; ++i) a.set_bit(i, true);
  pipe.submit(a, b);
  const std::string vcd = sim::to_vcd(pipe.trace(), 16, 2.0);
  // The exact sum (a + b = 0x10000 mod 2^16 = 0) appears as b0.
  EXPECT_NE(vcd.find("b0 &"), std::string::npos);
  // STALL is asserted during the recovery cycles.
  EXPECT_NE(vcd.find("1#"), std::string::npos);
}

}  // namespace
}  // namespace vlsa
