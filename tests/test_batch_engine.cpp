// Differential property tests for the bit-sliced batch engine: every
// output lane must match the scalar specification in core/aca.hpp
// bit-for-bit.  This equivalence is what licenses the batch Monte-Carlo
// driver as a *reproduction* instrument rather than a new model — the
// paper's statistics are only as trustworthy as this file.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "core/aca.hpp"
#include "sim/batch_engine.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using core::aca_add;
using core::aca_flag;
using core::aca_is_exact;
using core::aca_speculative_carries;
using core::aca_sub;
using core::longest_propagate_chain;
using sim::BatchResult;
using sim::kBatchLanes;
using sim::SlicedBatch;
using util::BitVec;
using util::Rng;

// The differential grid of the issue: every width crossed with windows
// {1, 4, log2 n, n}.  333 is deliberately not a multiple of 64 and 8
// exercises windows wider than the operand.
const int kWidths[] = {8, 16, 64, 256, 333};

std::vector<int> windows_for(int n) {
  const int log2n = std::max(1, static_cast<int>(std::lround(std::log2(n))));
  std::vector<int> ks{1, 4, log2n, n};
  // Dedup while keeping order (width 8 yields {1, 4, 3, 8}).
  std::vector<int> out;
  for (int k : ks) {
    bool seen = false;
    for (int o : out) seen = seen || o == k;
    if (!seen) out.push_back(k);
  }
  return out;
}

// Check every lane of `got` against the scalar model for the same
// operands.  `carry_in` is the lane mask that was fed to the engine.
void expect_lanes_match_scalar(const SlicedBatch& ops, int k,
                               std::uint64_t carry_in,
                               const BatchResult& got) {
  const int n = ops.width;
  for (int lane = 0; lane < kBatchLanes; ++lane) {
    const BitVec a = sim::lane_value(ops.a, n, lane);
    const BitVec b = sim::lane_value(ops.b, n, lane);
    const bool cin = (carry_in >> lane) & 1;

    const auto scalar = aca_add(a, b, k, cin);
    const auto exact = a.add_with_carry(b, cin);

    ASSERT_EQ(sim::lane_value(got.sum_spec, n, lane), scalar.sum)
        << "spec sum lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(sim::lane_value(got.sum_exact, n, lane), exact.sum)
        << "exact sum lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(sim::lane_value(got.carry_spec, n, lane),
              aca_speculative_carries(a, b, k, cin))
        << "carry lanes " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(((got.carry_out_spec >> lane) & 1) != 0, scalar.carry_out)
        << "spec cout lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(((got.carry_out_exact >> lane) & 1) != 0, exact.carry_out)
        << "exact cout lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(((got.flagged >> lane) & 1) != 0, aca_flag(a, b, k))
        << "ER lane " << lane << " n=" << n << " k=" << k;
    // aca_is_exact ignores carry-in/out by definition; the engine's
    // `wrong` also compares the carry out, so check against the full
    // scalar comparison and, when cin == 0, against aca_is_exact too.
    const bool scalar_wrong = scalar.sum != exact.sum ||
                              scalar.carry_out != exact.carry_out;
    ASSERT_EQ(((got.wrong >> lane) & 1) != 0, scalar_wrong)
        << "wrong lane " << lane << " n=" << n << " k=" << k;
    if (!cin && !scalar_wrong) {
      ASSERT_TRUE(aca_is_exact(a, b, k))
          << "lane " << lane << " n=" << n << " k=" << k;
    }
  }
}

TEST(BatchEngineDifferential, RandomBatchesAcrossWidthAndWindowGrid) {
  // ~10k random batches spread over the grid (more on the cheap widths),
  // each batch checked on all 64 lanes against the scalar model —
  // including random carry-in lane masks every fourth batch.
  Rng rng(0xba7c4);
  for (int n : kWidths) {
    for (int k : windows_for(n)) {
      const int batches = n <= 64 ? 700 : 150;
      SlicedBatch ops(n);
      for (int t = 0; t < batches; ++t) {
        sim::fill_uniform(rng, ops);
        const std::uint64_t carry_in = (t % 4 == 0) ? rng.next_u64() : 0;
        const auto got = sim::batch_aca_add(ops, k, carry_in);
        expect_lanes_match_scalar(ops, k, carry_in, got);
      }
    }
  }
}

TEST(BatchEngineDifferential, ExhaustiveWidth8Agreement) {
  // All 2^16 operand pairs at width 8, both carry-in values, windows
  // {1, 3, 4, 8} — the batch engine and the scalar model must be
  // indistinguishable on the entire input space.
  for (int k : {1, 3, 4, 8}) {
    for (int cin_all : {0, 1}) {
      std::vector<std::pair<BitVec, BitVec>> pairs;
      pairs.reserve(kBatchLanes);
      for (int av = 0; av < 256; ++av) {
        for (int bv = 0; bv < 256; ++bv) {
          pairs.emplace_back(BitVec::from_u64(8, av), BitVec::from_u64(8, bv));
          if (static_cast<int>(pairs.size()) == kBatchLanes) {
            const auto ops = sim::transpose_batch(pairs, 8);
            const std::uint64_t mask = cin_all ? ~std::uint64_t{0} : 0;
            expect_lanes_match_scalar(ops, k, mask,
                                      sim::batch_aca_add(ops, k, mask));
            pairs.clear();
          }
        }
      }
      ASSERT_TRUE(pairs.empty());  // 65536 pairs = exactly 1024 batches
    }
  }
}

TEST(BatchEngineDifferential, SubtractionPathMatchesScalar) {
  Rng rng(0x5ab);
  for (int n : kWidths) {
    for (int k : windows_for(n)) {
      SlicedBatch ops(n);
      for (int t = 0; t < 40; ++t) {
        sim::fill_uniform(rng, ops);
        const auto got = sim::batch_aca_sub(ops, k);
        for (int lane = 0; lane < kBatchLanes; ++lane) {
          const BitVec a = sim::lane_value(ops.a, n, lane);
          const BitVec b = sim::lane_value(ops.b, n, lane);
          const auto scalar = aca_sub(a, b, k);
          const auto exact = a.add_with_carry(~b, /*carry_in=*/true);
          ASSERT_EQ(sim::lane_value(got.sum_spec, n, lane), scalar.sum)
              << "sub lane " << lane << " n=" << n << " k=" << k;
          ASSERT_EQ(sim::lane_value(got.sum_exact, n, lane), exact.sum);
          ASSERT_EQ(((got.carry_out_spec >> lane) & 1) != 0,
                    scalar.carry_out);
          ASSERT_EQ(((got.flagged >> lane) & 1) != 0, scalar.flagged);
          const bool wrong = scalar.sum != exact.sum ||
                             scalar.carry_out != exact.carry_out;
          ASSERT_EQ(((got.wrong >> lane) & 1) != 0, wrong);
        }
      }
    }
  }
}

TEST(BatchEngine, FlagMaskMatchesDedicatedEvaluator) {
  Rng rng(0xf1a9);
  for (int n : {16, 64, 256}) {
    for (int k : {1, 4, 8, n}) {
      SlicedBatch ops(n);
      for (int t = 0; t < 50; ++t) {
        sim::fill_uniform(rng, ops);
        ASSERT_EQ(sim::batch_aca_flag(ops, k),
                  sim::batch_aca_add(ops, k).flagged);
      }
    }
  }
}

TEST(BatchEngine, SoundnessWrongLanesAreAlwaysFlagged) {
  // The paper's safety property, ER = 0 => exact, holds per lane: the
  // wrong mask must be a subset of the flag mask.  Complementary-style
  // operands make wrong lanes actually occur.
  Rng rng(0x50);
  for (int n : {64, 256}) {
    SlicedBatch ops(n);
    for (int t = 0; t < 200; ++t) {
      sim::fill_uniform(rng, ops);
      if (t % 2 == 0) {
        // b ~= ~a with a few flipped words: long propagate chains.
        for (int i = 0; i < n; ++i) ops.b[i] = ~ops.a[i];
        ops.b[rng.next_below(n)] = rng.next_u64();
      }
      for (int k : {2, 4, 8}) {
        const auto got = sim::batch_aca_add(ops, k);
        ASSERT_EQ(got.wrong & ~got.flagged, 0u)
            << "unflagged wrong lane at n=" << n << " k=" << k;
      }
    }
  }
}

TEST(BatchEngine, LongestRunsMatchScalarChainLength) {
  Rng rng(0x10e);
  for (int n : {8, 64, 333}) {
    SlicedBatch ops(n);
    for (int t = 0; t < 100; ++t) {
      sim::fill_uniform(rng, ops);
      const auto runs = sim::batch_longest_runs(ops);
      for (int lane = 0; lane < kBatchLanes; ++lane) {
        const BitVec a = sim::lane_value(ops.a, n, lane);
        const BitVec b = sim::lane_value(ops.b, n, lane);
        ASSERT_EQ(runs[lane], longest_propagate_chain(a, b))
            << "lane " << lane << " n=" << n;
      }
    }
  }
}

TEST(BatchEngine, TransposeRoundTrip) {
  Rng rng(0x77);
  const int n = 96;
  std::vector<std::pair<BitVec, BitVec>> pairs;
  for (int i = 0; i < 37; ++i) {  // deliberately a partial batch
    pairs.emplace_back(rng.next_bits(n), rng.next_bits(n));
  }
  const auto ops = sim::transpose_batch(pairs, n);
  for (int lane = 0; lane < 37; ++lane) {
    EXPECT_EQ(sim::lane_value(ops.a, n, lane), pairs[lane].first);
    EXPECT_EQ(sim::lane_value(ops.b, n, lane), pairs[lane].second);
  }
  for (int lane = 37; lane < kBatchLanes; ++lane) {
    EXPECT_TRUE(sim::lane_value(ops.a, n, lane).is_zero());
    EXPECT_TRUE(sim::lane_value(ops.b, n, lane).is_zero());
  }
}

TEST(BatchEngine, RejectsBadArguments) {
  SlicedBatch ops(8);
  EXPECT_THROW(sim::batch_aca_add(ops, 0), std::invalid_argument);
  EXPECT_THROW(sim::batch_aca_add(SlicedBatch(0), 4), std::invalid_argument);
  SlicedBatch corrupt(8);
  corrupt.a.pop_back();
  EXPECT_THROW(sim::batch_aca_add(corrupt, 4), std::invalid_argument);
  EXPECT_THROW(sim::lane_value(ops.a, 8, 64), std::invalid_argument);
  EXPECT_THROW(
      sim::transpose_batch(
          std::vector<std::pair<BitVec, BitVec>>(65,
                                                 {BitVec(8), BitVec(8)}),
          8),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Wide (SIMD-dispatched) engine — every kernel tier the machine supports
// is differentially pinned to the scalar core model and required to be
// bit-identical to the scalar tier.  Under VLSA_FORCE_ISA=<tier> the
// whole suite additionally reruns with that tier as the default, so CI
// exercises the scalar fallback on any hardware.
// ---------------------------------------------------------------------------

using sim::Isa;
using sim::WideBatch;
using sim::WideResult;

/// Every tier this build + machine can actually run.  Scalar is always
/// first: the wide tiers are compared against its outputs.
std::vector<Isa> testable_isas() {
  std::vector<Isa> out{Isa::Scalar};
  for (Isa isa : {Isa::Avx2, Isa::Avx512}) {
    if (sim::isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

/// Lane mask for the wide layout: bit (j % 64) of word (j / 64).
std::vector<std::uint64_t> random_lane_mask(Rng& rng, int lanes) {
  std::vector<std::uint64_t> mask(static_cast<std::size_t>(lanes) / 64);
  for (auto& w : mask) w = rng.next_u64();
  return mask;
}

void expect_wide_lane_matches_scalar(const WideBatch& ops,
                                     const std::vector<std::uint64_t>& cin,
                                     int k, const WideResult& got, int lane,
                                     const char* label) {
  const int n = ops.width;
  const int words = ops.words();
  const BitVec a = sim::wide_lane_value(ops.a, n, words, lane);
  const BitVec b = sim::wide_lane_value(ops.b, n, words, lane);
  const bool lane_cin =
      !cin.empty() &&
      ((cin[static_cast<std::size_t>(lane / 64)] >> (lane % 64)) & 1) != 0;
  const auto scalar = aca_add(a, b, k, lane_cin);
  const auto exact = a.add_with_carry(b, lane_cin);
  ASSERT_EQ(sim::wide_lane_value(got.sum_spec, n, words, lane), scalar.sum)
      << label << " spec sum lane " << lane << " n=" << n << " k=" << k;
  ASSERT_EQ(sim::wide_lane_value(got.sum_exact, n, words, lane), exact.sum)
      << label << " exact sum lane " << lane << " n=" << n << " k=" << k;
  const bool spec_cout =
      ((got.carry_out_spec[static_cast<std::size_t>(lane / 64)] >>
        (lane % 64)) &
       1) != 0;
  ASSERT_EQ(spec_cout, scalar.carry_out)
      << label << " spec cout lane " << lane;
  ASSERT_EQ(got.flagged_lane(lane), aca_flag(a, b, k))
      << label << " ER lane " << lane << " n=" << n << " k=" << k;
  ASSERT_EQ(got.wrong_lane(lane),
            scalar.sum != exact.sum || scalar.carry_out != exact.carry_out)
      << label << " wrong lane " << lane << " n=" << n << " k=" << k;
}

TEST(BatchEngineWide, EveryTierMatchesScalarModelOnRandomOperands) {
  Rng rng(0x51d0);
  for (Isa isa : testable_isas()) {
    for (int lanes : {64, 128, 256, 512}) {
      // A tier only runs when its group divides the batch; smaller
      // batches silently resolve to a narrower tier (checked in
      // BatchEngineIsa.ResolvedIsaFallsBackToDividingTier).
      for (int n : {8, 64, 333}) {
        for (int k : windows_for(n)) {
          WideBatch ops(n, lanes);
          for (int t = 0; t < 6; ++t) {
            sim::fill_uniform(rng, ops);
            const auto cin = (t % 2 == 0)
                                 ? random_lane_mask(rng, lanes)
                                 : std::vector<std::uint64_t>{};
            const auto got = sim::wide_aca_add(
                ops, k, cin.empty() ? nullptr : cin.data(), isa);
            for (int lane = 0; lane < lanes; ++lane) {
              expect_wide_lane_matches_scalar(ops, cin, k, got, lane,
                                              sim::isa_name(isa));
            }
          }
        }
      }
    }
  }
}

TEST(BatchEngineWide, EveryTierMatchesScalarOnAllPropagateOperands) {
  // Adversarial case: b = ~a makes every bit position a propagate, so
  // the chain spans the whole operand — the worst case for speculation
  // and the exact pattern where window seeding bugs would show.  With
  // carry-in set the speculative sum is wrong on every lane; without it
  // the speculative sum happens to be right but the flag still fires.
  const int n = 256;
  for (Isa isa : testable_isas()) {
    for (int lanes : {64, 256, 512}) {
      Rng rng(0xadf);
      WideBatch ops(n, lanes);
      sim::fill_uniform(rng, ops);
      for (std::size_t i = 0; i < ops.b.size(); ++i) ops.b[i] = ~ops.a[i];
      for (int k : {4, n / 2, n}) {
        std::vector<std::uint64_t> ones(
            static_cast<std::size_t>(lanes) / 64, ~std::uint64_t{0});
        const auto got = sim::wide_aca_add(ops, k, ones.data(), isa);
        for (int lane = 0; lane < lanes; ++lane) {
          expect_wide_lane_matches_scalar(ops, ones, k, got, lane,
                                          sim::isa_name(isa));
          ASSERT_TRUE(got.flagged_lane(lane));  // chain = n >= k always
          // With carry-in, the length-k window seeds 0 where the exact
          // chain carries 1 — at minimum the carry-out mispredicts.
          ASSERT_TRUE(got.wrong_lane(lane));
        }
        const auto no_cin = sim::wide_aca_add(ops, k, nullptr, isa);
        for (int lane = 0; lane < lanes; ++lane) {
          ASSERT_TRUE(no_cin.flagged_lane(lane));
          // All-propagate with cin=0: every window ripples to 0 carries,
          // which matches the exact chain — flagged but not wrong.
          ASSERT_FALSE(no_cin.wrong_lane(lane));
        }
      }
    }
  }
}

TEST(BatchEngineWide, AllTiersProduceBitIdenticalOutputs) {
  // Stronger than per-lane agreement: the raw output vectors of every
  // supported tier must equal the scalar tier's word for word.
  Rng rng(0xb17);
  const auto isas = testable_isas();
  for (int lanes : {256, 512}) {
    for (int n : {64, 333}) {
      WideBatch ops(n, lanes);
      sim::fill_uniform(rng, ops);
      const auto cin = random_lane_mask(rng, lanes);
      const int k = 8;
      const auto ref = sim::wide_aca_add(ops, k, cin.data(), Isa::Scalar);
      for (Isa isa : isas) {
        const auto got = sim::wide_aca_add(ops, k, cin.data(), isa);
        EXPECT_EQ(got.sum_spec, ref.sum_spec) << sim::isa_name(isa);
        EXPECT_EQ(got.sum_exact, ref.sum_exact) << sim::isa_name(isa);
        EXPECT_EQ(got.carry_spec, ref.carry_spec) << sim::isa_name(isa);
        EXPECT_EQ(got.carry_out_spec, ref.carry_out_spec)
            << sim::isa_name(isa);
        EXPECT_EQ(got.carry_out_exact, ref.carry_out_exact)
            << sim::isa_name(isa);
        EXPECT_EQ(got.flagged, ref.flagged) << sim::isa_name(isa);
        EXPECT_EQ(got.wrong, ref.wrong) << sim::isa_name(isa);
        EXPECT_EQ(sim::wide_aca_flag(ops, k, isa), ref.flagged)
            << sim::isa_name(isa);
        EXPECT_EQ(sim::wide_longest_runs(ops, isa),
                  sim::wide_longest_runs(ops, Isa::Scalar))
            << sim::isa_name(isa);
      }
    }
  }
}

TEST(BatchEngineWide, LongestRunsMatchScalarChainLength) {
  Rng rng(0x3a1);
  for (Isa isa : testable_isas()) {
    for (int lanes : {64, 512}) {
      for (int n : {8, 333}) {
        WideBatch ops(n, lanes);
        sim::fill_uniform(rng, ops);
        const auto runs = sim::wide_longest_runs(ops, isa);
        ASSERT_EQ(static_cast<int>(runs.size()), lanes);
        for (int lane = 0; lane < lanes; ++lane) {
          const BitVec a = sim::wide_lane_value(ops.a, n, ops.words(), lane);
          const BitVec b = sim::wide_lane_value(ops.b, n, ops.words(), lane);
          ASSERT_EQ(runs[lane], longest_propagate_chain(a, b))
              << sim::isa_name(isa) << " lane " << lane << " n=" << n;
        }
      }
    }
  }
}

TEST(BatchEngineWide, SubtractionPathMatchesScalar) {
  Rng rng(0x5b5);
  for (Isa isa : testable_isas()) {
    const int n = 64;
    const int k = 6;
    WideBatch ops(n, 512);
    sim::fill_uniform(rng, ops);
    const auto got = sim::wide_aca_sub(ops, k, isa);
    for (int lane = 0; lane < ops.lanes; ++lane) {
      const BitVec a = sim::wide_lane_value(ops.a, n, ops.words(), lane);
      const BitVec b = sim::wide_lane_value(ops.b, n, ops.words(), lane);
      const auto scalar = aca_sub(a, b, k);
      ASSERT_EQ(sim::wide_lane_value(got.sum_spec, n, ops.words(), lane),
                scalar.sum)
          << sim::isa_name(isa) << " lane " << lane;
      ASSERT_EQ(got.flagged_lane(lane), scalar.flagged)
          << sim::isa_name(isa) << " lane " << lane;
    }
  }
}

TEST(BatchEngineWide, TransposeRoundTripOnEveryTier) {
  Rng rng(0x7a2);
  const int n = 96;
  for (Isa isa : testable_isas()) {
    for (int lanes : {64, 256, 512}) {
      std::vector<std::pair<BitVec, BitVec>> pairs;
      const int used = lanes - 27;  // deliberately a partial batch
      for (int i = 0; i < used; ++i) {
        pairs.emplace_back(rng.next_bits(n), rng.next_bits(n));
      }
      const auto ops = sim::wide_transpose_batch(pairs, n, lanes, isa);
      const auto back_a = sim::wide_lane_values(ops.a, n, lanes, isa);
      const auto back_b = sim::wide_lane_values(ops.b, n, lanes, isa);
      for (int lane = 0; lane < used; ++lane) {
        ASSERT_EQ(back_a[static_cast<std::size_t>(lane)], pairs[lane].first)
            << sim::isa_name(isa) << " lane " << lane;
        ASSERT_EQ(back_b[static_cast<std::size_t>(lane)], pairs[lane].second)
            << sim::isa_name(isa) << " lane " << lane;
      }
      for (int lane = used; lane < lanes; ++lane) {
        ASSERT_TRUE(back_a[static_cast<std::size_t>(lane)].is_zero());
        ASSERT_TRUE(back_b[static_cast<std::size_t>(lane)].is_zero());
      }
    }
  }
}

TEST(BatchEngineWide, WideMatchesLegacy64LaneEngine) {
  // The 64-lane API is now a thin wrapper over the scalar kernel; a
  // 64-lane WideBatch must reproduce it exactly.
  Rng rng(0x64'64);
  const int n = 128;
  const int k = 9;
  SlicedBatch legacy(n);
  sim::fill_uniform(rng, legacy);
  WideBatch wide(n, 64);
  wide.a = legacy.a;
  wide.b = legacy.b;
  const std::uint64_t cin = rng.next_u64();
  const auto lres = sim::batch_aca_add(legacy, k, cin);
  const auto wres = sim::wide_aca_add(wide, k, &cin);
  EXPECT_EQ(wres.sum_spec, lres.sum_spec);
  EXPECT_EQ(wres.sum_exact, lres.sum_exact);
  EXPECT_EQ(wres.carry_out_spec[0], lres.carry_out_spec);
  EXPECT_EQ(wres.carry_out_exact[0], lres.carry_out_exact);
  EXPECT_EQ(wres.flagged[0], lres.flagged);
  EXPECT_EQ(wres.wrong[0], lres.wrong);
}

TEST(BatchEngineWide, RejectsBadArguments) {
  WideBatch ops(8, 64);
  EXPECT_THROW(sim::wide_aca_add(ops, 0), std::invalid_argument);
  EXPECT_THROW(sim::wide_aca_add(WideBatch(0, 64), 4), std::invalid_argument);
  // Lane counts are validated at dispatch: not a multiple of 64, zero,
  // or beyond kMaxBatchLanes all reject.
  WideBatch bad(8, 64);
  bad.lanes = 96;
  EXPECT_THROW(sim::wide_aca_add(bad, 4), std::invalid_argument);
  bad.lanes = 0;
  EXPECT_THROW(sim::wide_aca_add(bad, 4), std::invalid_argument);
  bad.lanes = 1024;
  EXPECT_THROW(sim::wide_aca_add(bad, 4), std::invalid_argument);
  EXPECT_THROW(sim::wide_lane_values(ops.a, 8, 128), std::invalid_argument);
  EXPECT_THROW(
      sim::wide_transpose_batch(
          std::vector<std::pair<BitVec, BitVec>>(65,
                                                 {BitVec(8), BitVec(8)}),
          8, 64),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ISA probing and dispatch resolution.
// ---------------------------------------------------------------------------

TEST(BatchEngineIsa, NamesLanesAndParsingAgree) {
  EXPECT_STREQ(sim::isa_name(Isa::Scalar), "scalar");
  EXPECT_STREQ(sim::isa_name(Isa::Avx2), "avx2");
  EXPECT_STREQ(sim::isa_name(Isa::Avx512), "avx512");
  EXPECT_EQ(sim::isa_lanes(Isa::Scalar), 64);
  EXPECT_EQ(sim::isa_lanes(Isa::Avx2), 256);
  EXPECT_EQ(sim::isa_lanes(Isa::Avx512), 512);
  for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Avx512}) {
    EXPECT_EQ(sim::parse_isa(sim::isa_name(isa)), isa);
  }
  EXPECT_EQ(sim::parse_isa("AVX2"), Isa::Avx2);       // case-insensitive
  EXPECT_EQ(sim::parse_isa("avx-512"), Isa::Avx512);  // hyphen alias
  EXPECT_EQ(sim::parse_isa("neon"), std::nullopt);
  EXPECT_EQ(sim::parse_isa(""), std::nullopt);
}

TEST(BatchEngineIsa, SupportImpliesCompiledAndScalarAlwaysWorks) {
  EXPECT_TRUE(sim::isa_compiled(Isa::Scalar));
  EXPECT_TRUE(sim::isa_supported(Isa::Scalar));
  for (Isa isa : {Isa::Avx2, Isa::Avx512}) {
    if (sim::isa_supported(isa)) {
      EXPECT_TRUE(sim::isa_compiled(isa));
    }
  }
  EXPECT_TRUE(sim::isa_supported(sim::best_isa()));
  EXPECT_TRUE(sim::isa_supported(sim::active_isa()));
  EXPECT_EQ(sim::active_lanes(), sim::isa_lanes(sim::active_isa()));
}

TEST(BatchEngineIsa, ResolvedIsaFallsBackToDividingTier) {
  // resolved_isa reports which tier a dispatch actually runs: the
  // widest supported tier <= requested whose group divides the batch.
  for (Isa req : testable_isas()) {
    // 64 lanes (1 word): only the scalar group divides it.
    EXPECT_EQ(sim::resolved_isa(req, 64), Isa::Scalar);
    // 128 lanes (2 words): no SIMD group (4 or 8 words) divides it.
    EXPECT_EQ(sim::resolved_isa(req, 128), Isa::Scalar);
    const Isa at256 = sim::resolved_isa(req, 256);
    const Isa at512 = sim::resolved_isa(req, 512);
    if (req == Isa::Scalar) {
      EXPECT_EQ(at256, Isa::Scalar);
      EXPECT_EQ(at512, Isa::Scalar);
    } else {
      // 256 lanes never resolves above AVX2 (the AVX-512 group is 8
      // words, 256 lanes is 4); 512 takes the requested tier.
      EXPECT_EQ(at256, Isa::Avx2);
      EXPECT_EQ(at512, req);
    }
  }
  EXPECT_THROW(static_cast<void>(sim::resolved_isa(Isa::Scalar, 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(sim::resolved_isa(Isa::Scalar, 96)),
               std::invalid_argument);
}

TEST(BatchEngineIsa, ForcedIsaIsHonored) {
  // When CI forces a tier via VLSA_FORCE_ISA, the process-wide choice
  // must match it — this is what makes the forced-scalar differential
  // run in CI meaningful.
  const char* forced = std::getenv("VLSA_FORCE_ISA");
  if (forced == nullptr || *forced == '\0') {
    GTEST_SKIP() << "VLSA_FORCE_ISA not set";
  }
  const auto parsed = sim::parse_isa(forced);
  ASSERT_TRUE(parsed.has_value()) << forced;
  EXPECT_EQ(sim::active_isa(), *parsed);
}

TEST(BatchEngineIsa, LanesForBatchPicksSmallestFit) {
  EXPECT_EQ(sim::lanes_for_batch(1), 64);
  EXPECT_EQ(sim::lanes_for_batch(64), 64);
  EXPECT_EQ(sim::lanes_for_batch(65), 256);
  EXPECT_EQ(sim::lanes_for_batch(256), 256);
  EXPECT_EQ(sim::lanes_for_batch(257), 512);
  EXPECT_EQ(sim::lanes_for_batch(512), 512);
}

}  // namespace
}  // namespace vlsa
