// Differential property tests for the bit-sliced batch engine: every
// output lane must match the scalar specification in core/aca.hpp
// bit-for-bit.  This equivalence is what licenses the batch Monte-Carlo
// driver as a *reproduction* instrument rather than a new model — the
// paper's statistics are only as trustworthy as this file.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/aca.hpp"
#include "sim/batch_engine.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using core::aca_add;
using core::aca_flag;
using core::aca_is_exact;
using core::aca_speculative_carries;
using core::aca_sub;
using core::longest_propagate_chain;
using sim::BatchResult;
using sim::kBatchLanes;
using sim::SlicedBatch;
using util::BitVec;
using util::Rng;

// The differential grid of the issue: every width crossed with windows
// {1, 4, log2 n, n}.  333 is deliberately not a multiple of 64 and 8
// exercises windows wider than the operand.
const int kWidths[] = {8, 16, 64, 256, 333};

std::vector<int> windows_for(int n) {
  const int log2n = std::max(1, static_cast<int>(std::lround(std::log2(n))));
  std::vector<int> ks{1, 4, log2n, n};
  // Dedup while keeping order (width 8 yields {1, 4, 3, 8}).
  std::vector<int> out;
  for (int k : ks) {
    bool seen = false;
    for (int o : out) seen = seen || o == k;
    if (!seen) out.push_back(k);
  }
  return out;
}

// Check every lane of `got` against the scalar model for the same
// operands.  `carry_in` is the lane mask that was fed to the engine.
void expect_lanes_match_scalar(const SlicedBatch& ops, int k,
                               std::uint64_t carry_in,
                               const BatchResult& got) {
  const int n = ops.width;
  for (int lane = 0; lane < kBatchLanes; ++lane) {
    const BitVec a = sim::lane_value(ops.a, n, lane);
    const BitVec b = sim::lane_value(ops.b, n, lane);
    const bool cin = (carry_in >> lane) & 1;

    const auto scalar = aca_add(a, b, k, cin);
    const auto exact = a.add_with_carry(b, cin);

    ASSERT_EQ(sim::lane_value(got.sum_spec, n, lane), scalar.sum)
        << "spec sum lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(sim::lane_value(got.sum_exact, n, lane), exact.sum)
        << "exact sum lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(sim::lane_value(got.carry_spec, n, lane),
              aca_speculative_carries(a, b, k, cin))
        << "carry lanes " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(((got.carry_out_spec >> lane) & 1) != 0, scalar.carry_out)
        << "spec cout lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(((got.carry_out_exact >> lane) & 1) != 0, exact.carry_out)
        << "exact cout lane " << lane << " n=" << n << " k=" << k;
    ASSERT_EQ(((got.flagged >> lane) & 1) != 0, aca_flag(a, b, k))
        << "ER lane " << lane << " n=" << n << " k=" << k;
    // aca_is_exact ignores carry-in/out by definition; the engine's
    // `wrong` also compares the carry out, so check against the full
    // scalar comparison and, when cin == 0, against aca_is_exact too.
    const bool scalar_wrong = scalar.sum != exact.sum ||
                              scalar.carry_out != exact.carry_out;
    ASSERT_EQ(((got.wrong >> lane) & 1) != 0, scalar_wrong)
        << "wrong lane " << lane << " n=" << n << " k=" << k;
    if (!cin && !scalar_wrong) {
      ASSERT_TRUE(aca_is_exact(a, b, k))
          << "lane " << lane << " n=" << n << " k=" << k;
    }
  }
}

TEST(BatchEngineDifferential, RandomBatchesAcrossWidthAndWindowGrid) {
  // ~10k random batches spread over the grid (more on the cheap widths),
  // each batch checked on all 64 lanes against the scalar model —
  // including random carry-in lane masks every fourth batch.
  Rng rng(0xba7c4);
  for (int n : kWidths) {
    for (int k : windows_for(n)) {
      const int batches = n <= 64 ? 700 : 150;
      SlicedBatch ops(n);
      for (int t = 0; t < batches; ++t) {
        sim::fill_uniform(rng, ops);
        const std::uint64_t carry_in = (t % 4 == 0) ? rng.next_u64() : 0;
        const auto got = sim::batch_aca_add(ops, k, carry_in);
        expect_lanes_match_scalar(ops, k, carry_in, got);
      }
    }
  }
}

TEST(BatchEngineDifferential, ExhaustiveWidth8Agreement) {
  // All 2^16 operand pairs at width 8, both carry-in values, windows
  // {1, 3, 4, 8} — the batch engine and the scalar model must be
  // indistinguishable on the entire input space.
  for (int k : {1, 3, 4, 8}) {
    for (int cin_all : {0, 1}) {
      std::vector<std::pair<BitVec, BitVec>> pairs;
      pairs.reserve(kBatchLanes);
      for (int av = 0; av < 256; ++av) {
        for (int bv = 0; bv < 256; ++bv) {
          pairs.emplace_back(BitVec::from_u64(8, av), BitVec::from_u64(8, bv));
          if (static_cast<int>(pairs.size()) == kBatchLanes) {
            const auto ops = sim::transpose_batch(pairs, 8);
            const std::uint64_t mask = cin_all ? ~std::uint64_t{0} : 0;
            expect_lanes_match_scalar(ops, k, mask,
                                      sim::batch_aca_add(ops, k, mask));
            pairs.clear();
          }
        }
      }
      ASSERT_TRUE(pairs.empty());  // 65536 pairs = exactly 1024 batches
    }
  }
}

TEST(BatchEngineDifferential, SubtractionPathMatchesScalar) {
  Rng rng(0x5ab);
  for (int n : kWidths) {
    for (int k : windows_for(n)) {
      SlicedBatch ops(n);
      for (int t = 0; t < 40; ++t) {
        sim::fill_uniform(rng, ops);
        const auto got = sim::batch_aca_sub(ops, k);
        for (int lane = 0; lane < kBatchLanes; ++lane) {
          const BitVec a = sim::lane_value(ops.a, n, lane);
          const BitVec b = sim::lane_value(ops.b, n, lane);
          const auto scalar = aca_sub(a, b, k);
          const auto exact = a.add_with_carry(~b, /*carry_in=*/true);
          ASSERT_EQ(sim::lane_value(got.sum_spec, n, lane), scalar.sum)
              << "sub lane " << lane << " n=" << n << " k=" << k;
          ASSERT_EQ(sim::lane_value(got.sum_exact, n, lane), exact.sum);
          ASSERT_EQ(((got.carry_out_spec >> lane) & 1) != 0,
                    scalar.carry_out);
          ASSERT_EQ(((got.flagged >> lane) & 1) != 0, scalar.flagged);
          const bool wrong = scalar.sum != exact.sum ||
                             scalar.carry_out != exact.carry_out;
          ASSERT_EQ(((got.wrong >> lane) & 1) != 0, wrong);
        }
      }
    }
  }
}

TEST(BatchEngine, FlagMaskMatchesDedicatedEvaluator) {
  Rng rng(0xf1a9);
  for (int n : {16, 64, 256}) {
    for (int k : {1, 4, 8, n}) {
      SlicedBatch ops(n);
      for (int t = 0; t < 50; ++t) {
        sim::fill_uniform(rng, ops);
        ASSERT_EQ(sim::batch_aca_flag(ops, k),
                  sim::batch_aca_add(ops, k).flagged);
      }
    }
  }
}

TEST(BatchEngine, SoundnessWrongLanesAreAlwaysFlagged) {
  // The paper's safety property, ER = 0 => exact, holds per lane: the
  // wrong mask must be a subset of the flag mask.  Complementary-style
  // operands make wrong lanes actually occur.
  Rng rng(0x50);
  for (int n : {64, 256}) {
    SlicedBatch ops(n);
    for (int t = 0; t < 200; ++t) {
      sim::fill_uniform(rng, ops);
      if (t % 2 == 0) {
        // b ~= ~a with a few flipped words: long propagate chains.
        for (int i = 0; i < n; ++i) ops.b[i] = ~ops.a[i];
        ops.b[rng.next_below(n)] = rng.next_u64();
      }
      for (int k : {2, 4, 8}) {
        const auto got = sim::batch_aca_add(ops, k);
        ASSERT_EQ(got.wrong & ~got.flagged, 0u)
            << "unflagged wrong lane at n=" << n << " k=" << k;
      }
    }
  }
}

TEST(BatchEngine, LongestRunsMatchScalarChainLength) {
  Rng rng(0x10e);
  for (int n : {8, 64, 333}) {
    SlicedBatch ops(n);
    for (int t = 0; t < 100; ++t) {
      sim::fill_uniform(rng, ops);
      const auto runs = sim::batch_longest_runs(ops);
      for (int lane = 0; lane < kBatchLanes; ++lane) {
        const BitVec a = sim::lane_value(ops.a, n, lane);
        const BitVec b = sim::lane_value(ops.b, n, lane);
        ASSERT_EQ(runs[lane], longest_propagate_chain(a, b))
            << "lane " << lane << " n=" << n;
      }
    }
  }
}

TEST(BatchEngine, TransposeRoundTrip) {
  Rng rng(0x77);
  const int n = 96;
  std::vector<std::pair<BitVec, BitVec>> pairs;
  for (int i = 0; i < 37; ++i) {  // deliberately a partial batch
    pairs.emplace_back(rng.next_bits(n), rng.next_bits(n));
  }
  const auto ops = sim::transpose_batch(pairs, n);
  for (int lane = 0; lane < 37; ++lane) {
    EXPECT_EQ(sim::lane_value(ops.a, n, lane), pairs[lane].first);
    EXPECT_EQ(sim::lane_value(ops.b, n, lane), pairs[lane].second);
  }
  for (int lane = 37; lane < kBatchLanes; ++lane) {
    EXPECT_TRUE(sim::lane_value(ops.a, n, lane).is_zero());
    EXPECT_TRUE(sim::lane_value(ops.b, n, lane).is_zero());
  }
}

TEST(BatchEngine, RejectsBadArguments) {
  SlicedBatch ops(8);
  EXPECT_THROW(sim::batch_aca_add(ops, 0), std::invalid_argument);
  EXPECT_THROW(sim::batch_aca_add(SlicedBatch(0), 4), std::invalid_argument);
  SlicedBatch corrupt(8);
  corrupt.a.pop_back();
  EXPECT_THROW(sim::batch_aca_add(corrupt, 4), std::invalid_argument);
  EXPECT_THROW(sim::lane_value(ops.a, 8, 64), std::invalid_argument);
  EXPECT_THROW(
      sim::transpose_batch(
          std::vector<std::pair<BitVec, BitVec>>(65,
                                                 {BitVec(8), BitVec(8)}),
          8),
      std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
