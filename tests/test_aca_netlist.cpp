// Gate-level verification of the ACA family generators against the
// behavioral model: speculative sums, error flags, the naive ablation
// variant, the standalone detector, and the full VLSA datapath.

#include <gtest/gtest.h>

#include <algorithm>

#include <string>
#include <utility>
#include <vector>

#include "core/aca.hpp"
#include "core/aca_netlist.hpp"
#include "netlist/simulator.hpp"
#include "netlist/sta.hpp"
#include "netlist_test_util.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using core::aca_add;
using core::AcaNetlist;
using core::VlsaNetlist;
using testing::run_adder_netlist;
using util::BitVec;
using util::Rng;

std::vector<std::pair<BitVec, BitVec>> mixed_ops(int width, int randoms,
                                                 Rng& rng) {
  std::vector<std::pair<BitVec, BitVec>> ops;
  ops.push_back({BitVec(width), BitVec(width)});
  ops.push_back({BitVec::ones(width), BitVec::from_u64(width, 1)});
  ops.push_back({BitVec::ones(width), BitVec::ones(width)});
  // Long activated propagate chain (guaranteed misspeculation for small k).
  BitVec chain_a(width), chain_b(width);
  chain_a.set_bit(0, true);
  chain_b.set_bit(0, true);
  for (int i = 1; i < width; ++i) chain_a.set_bit(i, true);
  ops.push_back({chain_a, chain_b});
  for (int i = 0; i < randoms; ++i) {
    ops.push_back({rng.next_bits(width), rng.next_bits(width)});
  }
  return ops;
}

struct Param {
  int width;
  int window;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return "w" + std::to_string(info.param.width) + "_k" +
         std::to_string(info.param.window);
}

class AcaNetlistSweep : public ::testing::TestWithParam<Param> {};

TEST_P(AcaNetlistSweep, SharedStripAcaMatchesBehavioral) {
  const auto [width, k] = GetParam();
  const AcaNetlist aca = core::build_aca(width, k, /*with_error_flag=*/true);
  Rng rng(0xaca0 + static_cast<std::uint64_t>(width) * 131 + k);
  const auto ops = mixed_ops(width, 120, rng);

  const netlist::Simulator sim(aca.nl);
  const auto index = netlist::stim::input_index_map(aca.nl);
  for (std::size_t base = 0; base < ops.size(); base += 64) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(64, ops.size() - base));
    std::vector<std::uint64_t> stim(aca.nl.inputs().size(), 0);
    for (int lane = 0; lane < lanes; ++lane) {
      netlist::stim::load_operand(stim, index, aca.a, ops[base + lane].first,
                                  lane);
      netlist::stim::load_operand(stim, index, aca.b, ops[base + lane].second,
                                  lane);
    }
    const auto values = sim.eval(stim);
    for (int lane = 0; lane < lanes; ++lane) {
      const auto& [a, b] = ops[base + static_cast<std::size_t>(lane)];
      const auto expect = aca_add(a, b, k);
      ASSERT_EQ(netlist::stim::read_bus(values, aca.sum, lane), expect.sum)
          << a.to_hex() << "+" << b.to_hex();
      ASSERT_EQ(testing::net_bit(values, aca.carry_out, lane),
                expect.carry_out);
      ASSERT_EQ(testing::net_bit(values, aca.error, lane), expect.flagged)
          << a.to_hex() << "+" << b.to_hex();
    }
  }
}

TEST_P(AcaNetlistSweep, NaiveAcaMatchesBehavioral) {
  const auto [width, k] = GetParam();
  const AcaNetlist aca = core::build_aca_naive(width, k);
  Rng rng(0xaca1 + static_cast<std::uint64_t>(width) * 131 + k);
  const auto ops = mixed_ops(width, 60, rng);
  const auto results =
      run_adder_netlist(aca.nl, aca.a, aca.b, aca.sum, aca.carry_out, ops);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto expect = aca_add(ops[i].first, ops[i].second, k);
    ASSERT_EQ(results[i].sum, expect.sum) << i;
    ASSERT_EQ(results[i].carry_out, expect.carry_out) << i;
  }
}

TEST_P(AcaNetlistSweep, ErrorDetectorMatchesBehavioralFlag) {
  const auto [width, k] = GetParam();
  const auto det = core::build_error_detector(width, k);
  Rng rng(0xaca2 + static_cast<std::uint64_t>(width) * 131 + k);
  const auto ops = mixed_ops(width, 120, rng);
  const netlist::Simulator sim(det.nl);
  const auto index = netlist::stim::input_index_map(det.nl);
  for (std::size_t base = 0; base < ops.size(); base += 64) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(64, ops.size() - base));
    std::vector<std::uint64_t> stim(det.nl.inputs().size(), 0);
    for (int lane = 0; lane < lanes; ++lane) {
      netlist::stim::load_operand(stim, index, det.a, ops[base + lane].first,
                                  lane);
      netlist::stim::load_operand(stim, index, det.b, ops[base + lane].second,
                                  lane);
    }
    const auto values = sim.eval(stim);
    for (int lane = 0; lane < lanes; ++lane) {
      const auto& [a, b] = ops[base + static_cast<std::size_t>(lane)];
      ASSERT_EQ(testing::net_bit(values, det.error, lane),
                core::aca_flag(a, b, k))
          << a.to_hex() << "+" << b.to_hex();
    }
  }
}

TEST_P(AcaNetlistSweep, VlsaExactOutputIsAlwaysCorrect) {
  const auto [width, k] = GetParam();
  const VlsaNetlist v = core::build_vlsa(width, k);
  Rng rng(0xaca3 + static_cast<std::uint64_t>(width) * 131 + k);
  const auto ops = mixed_ops(width, 120, rng);
  const netlist::Simulator sim(v.nl);
  const auto index = netlist::stim::input_index_map(v.nl);
  for (std::size_t base = 0; base < ops.size(); base += 64) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(64, ops.size() - base));
    std::vector<std::uint64_t> stim(v.nl.inputs().size(), 0);
    for (int lane = 0; lane < lanes; ++lane) {
      netlist::stim::load_operand(stim, index, v.a, ops[base + lane].first,
                                  lane);
      netlist::stim::load_operand(stim, index, v.b, ops[base + lane].second,
                                  lane);
    }
    const auto values = sim.eval(stim);
    for (int lane = 0; lane < lanes; ++lane) {
      const auto& [a, b] = ops[base + static_cast<std::size_t>(lane)];
      const auto exact = a.add_with_carry(b);
      const auto spec = aca_add(a, b, k);
      // Recovery path: always the true sum, regardless of the flag.
      ASSERT_EQ(netlist::stim::read_bus(values, v.exact_sum, lane), exact.sum)
          << a.to_hex() << "+" << b.to_hex();
      ASSERT_EQ(testing::net_bit(values, v.exact_carry_out, lane),
                exact.carry_out);
      // Speculative path mirrors the plain ACA.
      ASSERT_EQ(netlist::stim::read_bus(values, v.speculative_sum, lane),
                spec.sum);
      ASSERT_EQ(testing::net_bit(values, v.error, lane), spec.flagged);
      ASSERT_EQ(testing::net_bit(values, v.valid, lane), !spec.flagged);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndWindows, AcaNetlistSweep,
    ::testing::ValuesIn(std::vector<Param>{
        {4, 2}, {8, 1}, {8, 3}, {8, 8}, {8, 12}, {16, 1}, {16, 4},
        {16, 5}, {24, 6}, {32, 4}, {32, 8}, {48, 7}, {64, 8}, {64, 11},
        {100, 9}, {128, 12}, {192, 14}, {256, 16}}),
    param_name);

TEST(AcaNetlist, SharedBeatsNaiveOnAreaAndFanout) {
  // The point of Fig. 3/4: sharing the matrix products collapses the
  // O(n k) replicated logic to O(n log k) and bounds input fanout.
  const int n = 128, k = 12;
  const auto shared = core::build_aca(n, k);
  const auto naive = core::build_aca_naive(n, k);
  const auto shared_area = netlist::analyze_area(shared.nl);
  const auto naive_area = netlist::analyze_area(naive.nl);
  EXPECT_LT(shared_area.total_area, 0.5 * naive_area.total_area);
  EXPECT_LT(shared_area.max_input_fanout, naive_area.max_input_fanout);
}

TEST(AcaNetlist, AcaIsFasterThanItsWidthSuggests) {
  // Delay of ACA(256, k=10) should be close to a 16-bit exact adder, not a
  // 256-bit one: depth depends on k only (plus the constant preprocessing).
  const auto aca256 = core::build_aca(256, 10);
  const auto aca64 = core::build_aca(64, 10);
  const double d256 = netlist::analyze_timing(aca256.nl).critical_delay_ns;
  const double d64 = netlist::analyze_timing(aca64.nl).critical_delay_ns;
  EXPECT_NEAR(d256 / d64, 1.0, 0.25);
}

TEST(AcaNetlist, ErrorFlagAddsNoSumDelay) {
  // Requesting the ER output must not slow the sum outputs down by more
  // than the shared-strip fanout effect.
  const auto plain = core::build_aca(64, 8, false);
  const auto flagged = core::build_aca(64, 8, true);
  const double dp = netlist::analyze_timing(plain.nl).critical_delay_ns;
  const double df = netlist::analyze_timing(flagged.nl).critical_delay_ns;
  EXPECT_GE(df, dp);           // OR tree shows up as the new critical path
  EXPECT_LT(df, dp * 2.0);     // ...but stays in the same ballpark
}

TEST(AcaNetlist, RejectsBadDimensions) {
  EXPECT_THROW(core::build_aca(0, 4), std::invalid_argument);
  EXPECT_THROW(core::build_aca(8, 0), std::invalid_argument);
  EXPECT_THROW(core::build_vlsa(-1, 2), std::invalid_argument);
  EXPECT_THROW(core::build_error_detector(8, -2), std::invalid_argument);
}

TEST(AcaNetlist, DetectorWiderThanWordIsConstantZero) {
  const auto det = core::build_error_detector(8, 16);
  const netlist::Simulator sim(det.nl);
  std::vector<std::uint64_t> stim(det.nl.inputs().size(),
                                  ~std::uint64_t{0});  // all-ones operands
  const auto values = sim.eval(stim);
  EXPECT_EQ(values[static_cast<std::size_t>(det.error)], 0u);
}

}  // namespace
}  // namespace vlsa
