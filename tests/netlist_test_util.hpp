#pragma once
// Shared helpers for driving generated netlists in tests and benches.

#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "util/bitvec.hpp"

namespace vlsa::testing {

using util::BitVec;

/// Result of simulating one operand pair through an adder-like netlist.
struct AdderSimResult {
  BitVec sum;
  bool carry_out = false;
};

/// Simulate `ops` (any count; internally batched 64 lanes at a time)
/// through a two-operand netlist.  `cout` may be kNoNet.
inline std::vector<AdderSimResult> run_adder_netlist(
    const netlist::Netlist& nl, const std::vector<netlist::NetId>& a_bus,
    const std::vector<netlist::NetId>& b_bus,
    const std::vector<netlist::NetId>& sum_bus, netlist::NetId cout,
    const std::vector<std::pair<BitVec, BitVec>>& ops) {
  const netlist::Simulator sim(nl);
  const std::vector<int> index = netlist::stim::input_index_map(nl);
  std::vector<AdderSimResult> results(ops.size());
  for (std::size_t base = 0; base < ops.size(); base += 64) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(64, ops.size() - base));
    std::vector<std::uint64_t> stim(nl.inputs().size(), 0);
    for (int lane = 0; lane < lanes; ++lane) {
      const auto& [a, b] = ops[base + static_cast<std::size_t>(lane)];
      netlist::stim::load_operand(stim, index, a_bus, a, lane);
      netlist::stim::load_operand(stim, index, b_bus, b, lane);
    }
    const std::vector<std::uint64_t> values = sim.eval(stim);
    for (int lane = 0; lane < lanes; ++lane) {
      auto& r = results[base + static_cast<std::size_t>(lane)];
      r.sum = netlist::stim::read_bus(values, sum_bus, lane);
      if (cout != netlist::kNoNet) {
        r.carry_out =
            (values[static_cast<std::size_t>(cout)] >> lane) & 1;
      }
    }
  }
  return results;
}

/// Read one single-bit net for every lane of a previously prepared
/// simulation — convenience for flags like "error"/"valid".
inline bool net_bit(const std::vector<std::uint64_t>& values,
                    netlist::NetId net, int lane) {
  return (values[static_cast<std::size_t>(net)] >> lane) & 1;
}

}  // namespace vlsa::testing
