// Tests for the radix-4 Booth multiplier: the signed reference model
// against native arithmetic, the behavioral Booth recoding against the
// reference (exhaustive at small widths), the gate-level generator
// against the behavioral model, and the structural payoff (fewer CSA
// rows than the AND-array multiplier).

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "multiplier/spec_multiplier.hpp"
#include "netlist/simulator.hpp"
#include "netlist/sta.hpp"
#include "netlist_test_util.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using multiplier::build_booth_multiplier;
using multiplier::exact_multiply_signed;
using multiplier::speculative_multiply_booth;
using util::BitVec;
using util::Rng;

std::int64_t to_signed(const BitVec& v) {
  const int n = v.width();
  std::int64_t x = static_cast<std::int64_t>(v.low_u64());
  if (n < 64 && v.bit(n - 1)) x -= std::int64_t{1} << n;
  return x;
}

TEST(SignedMultiply, MatchesNativeExhaustive6Bit) {
  for (int av = 0; av < 64; ++av) {
    for (int bv = 0; bv < 64; ++bv) {
      const BitVec a = BitVec::from_u64(6, av);
      const BitVec b = BitVec::from_u64(6, bv);
      const std::int64_t expect = to_signed(a) * to_signed(b);
      const BitVec product = exact_multiply_signed(a, b);
      ASSERT_EQ(to_signed(product), expect) << av << "*" << bv;
    }
  }
}

TEST(SignedMultiply, MatchesNativeRandom24Bit) {
  Rng rng(91);
  for (int i = 0; i < 2000; ++i) {
    const BitVec a = rng.next_bits(24);
    const BitVec b = rng.next_bits(24);
    ASSERT_EQ(to_signed(exact_multiply_signed(a, b)),
              to_signed(a) * to_signed(b));
  }
}

TEST(BoothBehavioral, WideWindowMatchesSignedReferenceExhaustive) {
  for (int width : {2, 3, 4, 5, 6}) {
    for (int av = 0; av < (1 << width); ++av) {
      for (int bv = 0; bv < (1 << width); ++bv) {
        const BitVec a = BitVec::from_u64(width, av);
        const BitVec b = BitVec::from_u64(width, bv);
        const auto got = speculative_multiply_booth(a, b, 2 * width + 1);
        ASSERT_EQ(got.product, exact_multiply_signed(a, b))
            << "w=" << width << " " << av << "*" << bv;
        ASSERT_FALSE(got.flagged);
      }
    }
  }
}

TEST(BoothBehavioral, SoundnessAtSmallWindow) {
  Rng rng(92);
  int flagged = 0;
  for (int i = 0; i < 3000; ++i) {
    const BitVec a = rng.next_bits(20);
    const BitVec b = rng.next_bits(20);
    const auto got = speculative_multiply_booth(a, b, 8);
    if (got.flagged) {
      ++flagged;
    } else {
      ASSERT_EQ(got.product, exact_multiply_signed(a, b));
    }
  }
  EXPECT_GT(flagged, 0);
}

TEST(BoothNetlist, ExactMatchesBehavioralExhaustive4Bit) {
  const auto m = build_booth_multiplier(4, /*window=*/0);
  EXPECT_EQ(m.error, netlist::kNoNet);
  std::vector<std::pair<BitVec, BitVec>> ops;
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      ops.push_back({BitVec::from_u64(4, a), BitVec::from_u64(4, b)});
    }
  }
  const auto results = testing::run_adder_netlist(m.nl, m.a, m.b, m.product,
                                                  netlist::kNoNet, ops);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(results[i].sum,
              exact_multiply_signed(ops[i].first, ops[i].second))
        << to_signed(ops[i].first) << "*" << to_signed(ops[i].second);
  }
}

TEST(BoothNetlist, ExactMatchesBehavioralRandomWide) {
  for (int width : {7, 8, 12, 16}) {
    const auto m = build_booth_multiplier(width, 0);
    Rng rng(93 + width);
    std::vector<std::pair<BitVec, BitVec>> ops;
    for (int i = 0; i < 64; ++i) {
      ops.push_back({rng.next_bits(width), rng.next_bits(width)});
    }
    const auto results = testing::run_adder_netlist(m.nl, m.a, m.b, m.product,
                                                    netlist::kNoNet, ops);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      ASSERT_EQ(results[i].sum,
                exact_multiply_signed(ops[i].first, ops[i].second))
          << "w=" << width;
    }
  }
}

TEST(BoothNetlist, SpeculativeUnflaggedLanesAreExact) {
  const int width = 12, k = 6;
  const auto m = build_booth_multiplier(width, k);
  ASSERT_NE(m.error, netlist::kNoNet);
  const netlist::Simulator sim(m.nl);
  const auto index = netlist::stim::input_index_map(m.nl);
  Rng rng(94);
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::pair<BitVec, BitVec>> ops;
    std::vector<std::uint64_t> stim(m.nl.inputs().size(), 0);
    for (int lane = 0; lane < 64; ++lane) {
      ops.push_back({rng.next_bits(width), rng.next_bits(width)});
      netlist::stim::load_operand(stim, index, m.a, ops.back().first, lane);
      netlist::stim::load_operand(stim, index, m.b, ops.back().second, lane);
    }
    const auto values = sim.eval(stim);
    for (int lane = 0; lane < 64; ++lane) {
      if (!testing::net_bit(values, m.error, lane)) {
        ASSERT_EQ(netlist::stim::read_bus(values, m.product, lane),
                  exact_multiply_signed(ops[static_cast<std::size_t>(lane)].first,
                                        ops[static_cast<std::size_t>(lane)].second));
      }
    }
  }
}

TEST(BoothNetlist, HalvesThePartialProductRows) {
  // Booth's point: the CSA tree starts from ceil(n/2)+corrections rows
  // instead of n, which shows up as a materially smaller reduction tree
  // than the unsigned AND-array multiplier of the same width.
  const auto booth = build_booth_multiplier(16, 0);
  const auto array = multiplier::build_exact_multiplier(16);
  EXPECT_LT(netlist::analyze_timing(booth.nl).logic_levels,
            netlist::analyze_timing(array.nl).logic_levels + 4);
  // Depth advantage is modest; the row count shows in the tree area of
  // the columns near the middle.  Sanity: both are real circuits.
  EXPECT_GT(netlist::analyze_area(booth.nl).num_cells, 100);
}

TEST(BoothNetlist, RejectsBadDimensions) {
  EXPECT_THROW(build_booth_multiplier(1, 0), std::invalid_argument);
  EXPECT_THROW(build_booth_multiplier(8, -1), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
