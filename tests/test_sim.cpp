// Tests for the cycle-accurate VLSA pipeline and the Fig. 7 timing
// diagram renderer.

#include <gtest/gtest.h>

#include "analysis/aca_probability.hpp"
#include "sim/vlsa_pipeline.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using sim::PipelineConfig;
using sim::VlsaPipeline;
using util::BitVec;
using util::Rng;

PipelineConfig small_config() {
  PipelineConfig c;
  c.width = 32;
  c.window = 6;
  c.recovery_cycles = 2;
  c.clock_period_ns = 0.5;
  return c;
}

TEST(VlsaPipeline, HitTakesOneCycle) {
  VlsaPipeline pipe(small_config());
  // No propagate chain at all: a & b disjoint bits.
  const BitVec a = BitVec::from_u64(32, 0x0f0f0f0f);
  const BitVec b = BitVec::from_u64(32, 0x10101010);
  const auto& op = pipe.submit(a, b);
  EXPECT_FALSE(op.flagged);
  EXPECT_EQ(op.cycles(), 1);
  EXPECT_EQ(op.result, a + b);
  EXPECT_EQ(pipe.now(), 1);
}

TEST(VlsaPipeline, MissStallsForRecovery) {
  VlsaPipeline pipe(small_config());
  // Activated full-width propagate chain: guaranteed flag at k = 6.
  BitVec a(32), b(32);
  a.set_bit(0, true);
  b.set_bit(0, true);
  for (int i = 1; i < 32; ++i) a.set_bit(i, true);
  const auto& op = pipe.submit(a, b);
  EXPECT_TRUE(op.flagged);
  EXPECT_TRUE(op.speculative_wrong);
  EXPECT_EQ(op.cycles(), 1 + 2);
  EXPECT_EQ(op.result, a + b);  // recovery always yields the exact sum
  EXPECT_EQ(pipe.now(), 3);
}

TEST(VlsaPipeline, BackToBackIssueCycles) {
  VlsaPipeline pipe(small_config());
  const BitVec a = BitVec::from_u64(32, 1);
  const BitVec b = BitVec::from_u64(32, 2);
  pipe.submit(a, b);
  const auto& second = pipe.submit(a, b);
  EXPECT_EQ(second.issue_cycle, 1);  // accepted the cycle after the first
}

TEST(VlsaPipeline, ResultsAlwaysExactOverRandomStream) {
  VlsaPipeline pipe(small_config());
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    const BitVec a = rng.next_bits(32);
    const BitVec b = rng.next_bits(32);
    const auto& op = pipe.submit(a, b);
    ASSERT_EQ(op.result, a + b);
    ASSERT_EQ(op.cycles(), op.flagged ? 3 : 1);
  }
  const auto stats = pipe.stats();
  EXPECT_EQ(stats.operations, 3000);
  EXPECT_GT(stats.flagged, 0);  // k=6 at width 32 flags a few percent
}

TEST(VlsaPipeline, AverageLatencyMatchesAnalyticExpectation) {
  PipelineConfig config = small_config();
  VlsaPipeline pipe(config);
  Rng rng(32);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    pipe.submit(rng.next_bits(config.width), rng.next_bits(config.width));
  }
  const double expected = analysis::expected_vlsa_cycles(
      config.width, config.window, config.recovery_cycles);
  EXPECT_NEAR(pipe.stats().average_latency_cycles / expected, 1.0, 0.02);
}

TEST(VlsaPipeline, StatsDeriveFromClockPeriod) {
  PipelineConfig config = small_config();
  VlsaPipeline pipe(config);
  pipe.submit(BitVec::from_u64(32, 1), BitVec::from_u64(32, 2));
  const auto stats = pipe.stats();
  EXPECT_DOUBLE_EQ(stats.average_latency_ns,
                   stats.average_latency_cycles * config.clock_period_ns);
  EXPECT_GT(stats.throughput_adds_per_ns, 0.0);
}

TEST(VlsaPipeline, RejectsBadConfig) {
  PipelineConfig bad = small_config();
  bad.recovery_cycles = 0;
  EXPECT_THROW(VlsaPipeline{bad}, std::invalid_argument);
  bad = small_config();
  bad.clock_period_ns = 0.0;
  EXPECT_THROW(VlsaPipeline{bad}, std::invalid_argument);
}

TEST(TimingDiagram, ShowsStallAndCorrection) {
  VlsaPipeline pipe(small_config());
  const BitVec easy_a = BitVec::from_u64(32, 0x0f0f0f0f);
  const BitVec easy_b = BitVec::from_u64(32, 0x10101010);
  BitVec hard_a(32), hard_b(32);
  hard_a.set_bit(0, true);
  hard_b.set_bit(0, true);
  for (int i = 1; i < 32; ++i) hard_a.set_bit(i, true);

  pipe.submit(easy_a, easy_b);   // op 0: 1 cycle
  pipe.submit(hard_a, hard_b);   // op 1: stalls
  pipe.submit(easy_a, easy_b);   // op 2: 1 cycle
  const std::string diagram = sim::render_timing_diagram(pipe.trace());
  EXPECT_NE(diagram.find("CLK"), std::string::npos);
  EXPECT_NE(diagram.find("STALL"), std::string::npos);
  EXPECT_NE(diagram.find("S1*!"), std::string::npos);  // misspeculation mark
  EXPECT_NE(diagram.find("A1B1"), std::string::npos);
  // Operands of the stalled op occupy several columns.
  std::size_t first = diagram.find("A1B1");
  std::size_t second = diagram.find("A1B1", first + 1);
  EXPECT_NE(second, std::string::npos);
}

TEST(VlsaPipeline, OverlappedRecoveryKeepsIssuing) {
  PipelineConfig config = small_config();
  config.overlapped_recovery = true;
  VlsaPipeline pipe(config);
  BitVec hard_a(32), hard_b(32);
  hard_a.set_bit(0, true);
  hard_b.set_bit(0, true);
  for (int i = 1; i < 32; ++i) hard_a.set_bit(i, true);
  const BitVec easy_a = BitVec::from_u64(32, 0x0f0f0f0f);
  const BitVec easy_b = BitVec::from_u64(32, 0x10101010);

  pipe.submit(hard_a, hard_b);  // flagged: completes at cycle 2
  pipe.submit(easy_a, easy_b);  // issues at cycle 1, completes at cycle 1
  const auto& trace = pipe.trace();
  EXPECT_EQ(trace[0].issue_cycle, 0);
  EXPECT_EQ(trace[0].done_cycle, 2);
  EXPECT_EQ(trace[1].issue_cycle, 1);  // no stall
  EXPECT_EQ(trace[1].done_cycle, 1);   // completes before op 0
  EXPECT_EQ(trace[0].result, hard_a + hard_b);  // still exact
  // Makespan covers the late completion.
  EXPECT_EQ(pipe.stats().total_cycles, 3);
}

TEST(VlsaPipeline, OverlappedThroughputIsOnePerCycle) {
  PipelineConfig config = small_config();
  config.overlapped_recovery = true;
  VlsaPipeline pipe(config);
  Rng rng(33);
  const int ops = 5000;
  for (int i = 0; i < ops; ++i) {
    pipe.submit(rng.next_bits(32), rng.next_bits(32));
  }
  const auto stats = pipe.stats();
  // Makespan = ops (+ a possible recovery tail of the last flagged op).
  EXPECT_LE(stats.total_cycles, ops + config.recovery_cycles);
  EXPECT_GE(stats.total_cycles, ops);
  // Latency still varies per op.
  EXPECT_GT(stats.average_latency_cycles, 1.0);
}

TEST(TimingDiagram, EmptyTrace) {
  EXPECT_EQ(sim::render_timing_diagram({}), "(empty trace)\n");
}

}  // namespace
}  // namespace vlsa
