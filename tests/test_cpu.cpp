// Tests for the mini CPU: kernel semantics against closed forms, the
// exact-vs-VLSA architectural equivalence, and the stall accounting.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cpu/mini_cpu.hpp"

namespace vlsa {
namespace {

using cpu::CpuConfig;
using cpu::Opcode;
using cpu::Program;
using cpu::run_program;

CpuConfig exact_cpu() {
  CpuConfig c;
  c.speculative_alu = false;
  return c;
}

CpuConfig vlsa_cpu(int window = 12) {
  CpuConfig c;
  c.speculative_alu = true;
  c.window = window;
  return c;
}

TEST(MiniCpu, SumLoopClosedForm) {
  const auto stats = run_program(cpu::kernel_sum_loop(1000), exact_cpu());
  ASSERT_TRUE(stats.halted);
  EXPECT_EQ(stats.registers[1].low_u64(), 1000ull * 1001 / 2);
  EXPECT_GT(stats.alu_ops, 1000);
}

TEST(MiniCpu, FibonacciClosedForm) {
  const auto stats = run_program(cpu::kernel_fibonacci(30), exact_cpu());
  ASSERT_TRUE(stats.halted);
  EXPECT_EQ(stats.registers[1].low_u64(), 1346269u);  // F(31) with F(1)=1
}

TEST(MiniCpu, MixedKernelTerminates) {
  const auto stats = run_program(cpu::kernel_mixed(500), exact_cpu());
  ASSERT_TRUE(stats.halted);
  EXPECT_FALSE(stats.registers[1].is_zero());
}

TEST(MiniCpu, VlsaCoreRetiresIdenticalState) {
  // The headline architectural property: recovery makes the speculative
  // core's retired state bit-identical to the exact core's.
  for (const Program& program :
       {cpu::kernel_sum_loop(2000), cpu::kernel_fibonacci(64),
        cpu::kernel_mixed(2000)}) {
    const auto exact = run_program(program, exact_cpu());
    const auto spec = run_program(program, vlsa_cpu(10));
    ASSERT_TRUE(exact.halted);
    ASSERT_TRUE(spec.halted);
    EXPECT_EQ(exact.registers, spec.registers);
    EXPECT_EQ(exact.instructions, spec.instructions);
  }
}

TEST(MiniCpu, StallAccountingIsExact) {
  const auto stats = run_program(cpu::kernel_mixed(3000), vlsa_cpu(8));
  ASSERT_TRUE(stats.halted);
  // cycles = instructions + recovery_cycles * flagged ALU ops.
  EXPECT_EQ(stats.cycles,
            stats.instructions + 2 * stats.flagged_alu_ops);
  EXPECT_GT(stats.flagged_alu_ops, 0);
  EXPECT_GT(stats.cpi, 1.0);
}

TEST(MiniCpu, CounterDecrementsThroughAluAlwaysStall) {
  // A finding the uniform-operand analysis hides: decrementing a small
  // counter (x - 1, i.e. x + 0xFF...F) has a propagate chain that spans
  // nearly the whole word, so EVERY such ALU op flags and stalls.
  // kernel_sum_loop keeps its counter on the ALU deliberately.
  const std::uint64_t iters = 2000;
  const auto stats = run_program(cpu::kernel_sum_loop(iters), vlsa_cpu(12));
  ASSERT_TRUE(stats.halted);
  // One Sub per iteration, and essentially all of them flag.
  EXPECT_GE(stats.flagged_alu_ops, static_cast<long long>(iters) - 1);
}

TEST(MiniCpu, DedicatedDecrementerRemovesTheStalls) {
  // kernel_mixed routes loop control through Dec: only the accumulation
  // adds remain on the speculative ALU and they flag ~never at k=18.
  const auto stats = run_program(cpu::kernel_mixed(2000), vlsa_cpu(18));
  ASSERT_TRUE(stats.halted);
  EXPECT_LT(stats.flagged_alu_ops, 20);
  EXPECT_LT(stats.cpi, 1.01);
}

TEST(MiniCpu, ExactCoreCpiIsOne) {
  const auto stats = run_program(cpu::kernel_sum_loop(500), exact_cpu());
  EXPECT_DOUBLE_EQ(stats.cpi, 1.0);
}

TEST(MiniCpu, WideWindowNeverStalls) {
  const auto stats = run_program(cpu::kernel_sum_loop(500), vlsa_cpu(65));
  EXPECT_EQ(stats.flagged_alu_ops, 0);
  EXPECT_DOUBLE_EQ(stats.cpi, 1.0);
}

TEST(MiniCpu, BudgetExhaustionReported) {
  Program spin{{Opcode::LoadImm, 1, 0, 0, 1, 0},
               /*1:*/ {Opcode::Bnez, 0, 1, 0, 0, 1}};
  CpuConfig config = exact_cpu();
  config.max_cycles = 100;
  const auto stats = run_program(spin, config);
  EXPECT_FALSE(stats.halted);
  EXPECT_EQ(stats.cycles, 100);
}

TEST(MiniCpu, RejectsBadPrograms) {
  const Program off_end{{Opcode::Nop, 0, 0, 0, 0, 0}};  // no halt
  EXPECT_THROW(run_program(off_end, exact_cpu()), std::out_of_range);
  const Program bad_reg{{Opcode::LoadImm, 99, 0, 0, 1, 0},
                        {Opcode::Halt, 0, 0, 0, 0, 0}};
  EXPECT_THROW(run_program(bad_reg, exact_cpu()), std::out_of_range);
}

}  // namespace
}  // namespace vlsa
