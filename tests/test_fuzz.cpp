// Randomized cross-validation ("fuzzing") of the netlist toolchain: a
// generator builds random combinational circuits, and every consumer —
// the 64-lane functional simulator, the event-driven timing simulator,
// the fault simulator's golden path, the DCE pass + equivalence checker,
// the STA bound, and the HDL emitters' structural invariants — must tell
// a consistent story on each of them.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/emit.hpp"
#include "netlist/equiv.hpp"
#include "netlist/event_sim.hpp"
#include "netlist/fault.hpp"
#include "netlist/opt.hpp"
#include "netlist/simulator.hpp"
#include "netlist/sta.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using netlist::CellKind;
using netlist::NetId;
using netlist::Netlist;

// Random feed-forward circuit: `inputs` primary inputs, `gates` random
// cells drawing operands from any earlier net, a random subset of nets
// marked as outputs.
Netlist random_netlist(util::Rng& rng, int inputs, int gates, int outputs) {
  Netlist nl("fuzz");
  std::vector<NetId> nets;
  for (int i = 0; i < inputs; ++i) {
    nets.push_back(nl.add_input("i" + std::to_string(i)));
  }
  const CellKind kinds[] = {
      CellKind::Buf,   CellKind::Inv,   CellKind::And2,  CellKind::Or2,
      CellKind::Nand2, CellKind::Nor2,  CellKind::Xor2,  CellKind::Xnor2,
      CellKind::And3,  CellKind::Or3,   CellKind::Aoi21, CellKind::Oai21,
      CellKind::Mux2};
  for (int g = 0; g < gates; ++g) {
    const CellKind kind =
        kinds[rng.next_below(sizeof kinds / sizeof kinds[0])];
    const int fanin = netlist::CellLibrary::umc18().spec(kind).fanin;
    std::vector<NetId> ins;
    for (int i = 0; i < fanin; ++i) {
      ins.push_back(nets[rng.next_below(nets.size())]);
    }
    nets.push_back(nl.add_gate(kind, ins));
  }
  for (int o = 0; o < outputs; ++o) {
    nl.mark_output(nets[rng.next_below(nets.size())],
                   "o" + std::to_string(o));
  }
  return nl;
}

class FuzzCase : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCase, AllToolsAgree) {
  util::Rng rng(0xf022 + static_cast<std::uint64_t>(GetParam()));
  const int inputs = 3 + static_cast<int>(rng.next_below(10));
  const int gates = 5 + static_cast<int>(rng.next_below(120));
  const int outputs = 1 + static_cast<int>(rng.next_below(8));
  const Netlist nl = random_netlist(rng, inputs, gates, outputs);

  // One shared random stimulus batch (64 lanes).
  std::vector<std::uint64_t> stim(static_cast<std::size_t>(inputs));
  for (auto& w : stim) w = rng.next_u64();

  // 1. Functional simulator == fault simulator's golden path.
  const netlist::Simulator sim(nl);
  const auto values = sim.eval(stim);
  const auto golden = netlist::FaultSimulator(nl).golden(stim);
  ASSERT_EQ(values, golden);

  // 2. Event-driven simulator settles to the same output values, lane by
  //    lane, and never beyond the static critical path.
  const double critical = netlist::analyze_timing(nl).critical_delay_ns;
  netlist::EventSimulator esim(nl);
  std::vector<bool> vec(static_cast<std::size_t>(inputs), false);
  esim.settle_initial(vec);
  for (int lane = 0; lane < 8; ++lane) {
    for (int i = 0; i < inputs; ++i) {
      vec[static_cast<std::size_t>(i)] =
          (stim[static_cast<std::size_t>(i)] >> lane) & 1;
    }
    const auto result = esim.apply(vec);
    EXPECT_LE(result.settle_ns, critical + 1e-9);
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      const bool expect =
          (values[static_cast<std::size_t>(nl.outputs()[o].net)] >> lane) & 1;
      ASSERT_EQ(result.outputs[o], expect) << "lane " << lane << " out " << o;
    }
  }

  // 3. DCE preserves the function (exhaustive when feasible).
  const Netlist cleaned = netlist::remove_dead_gates(nl);
  const auto equiv = netlist::check_equivalence(nl, cleaned, 512);
  EXPECT_TRUE(equiv.equivalent);
  EXPECT_EQ(netlist::analyze_structure(cleaned).dead_gates, 0);

  // 4. Emitters: one assignment per cell plus one alias per output.
  const std::string verilog = netlist::to_verilog(nl);
  int assigns = 0;
  for (std::size_t pos = verilog.find("assign "); pos != std::string::npos;
       pos = verilog.find("assign ", pos + 7)) {
    ++assigns;
  }
  EXPECT_EQ(assigns,
            nl.num_cells() + static_cast<int>(nl.outputs().size()) +
                (nl.num_nets() - nl.num_cells() -
                 static_cast<int>(nl.inputs().size())));  // + constants
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, FuzzCase, ::testing::Range(0, 24));

}  // namespace
}  // namespace vlsa
