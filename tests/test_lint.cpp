// Structural lint tests: broken fixtures proving every diagnostic kind
// fires on exactly the defect it names, plus a sweep holding all
// shipped generators to the lint bar (error-free raw, finding-free
// after remove_dead_gates).
//
// The fixtures use Netlist::unchecked_gate() to seed corruptions the
// builder API refuses to create (double drivers, dangling references,
// back-edges); that is the hook's entire reason to exist.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adders/adders.hpp"
#include "core/aca_netlist.hpp"
#include "multiplier/spec_multiplier.hpp"
#include "netlist/lint.hpp"
#include "netlist/opt.hpp"

namespace vlsa::netlist {
namespace {

using core::RecoveryStyle;

// A tiny healthy netlist: s = a ^ b, c = a & b (half adder).
Netlist half_adder() {
  Netlist nl("ha");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.mark_output(nl.xor2(a, b), "s");
  nl.mark_output(nl.and2(a, b), "c");
  return nl;
}

TEST(LintBasics, CleanNetlistReportsNothing) {
  const LintReport report = lint(half_adder());
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.structurally_sound());
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.warnings, 0);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.to_string(), "");
}

TEST(LintBasics, KindNamesAndSeveritiesAreStable) {
  EXPECT_STREQ(lint_kind_name(LintKind::CombinationalLoop),
               "combinational-loop");
  EXPECT_STREQ(lint_kind_name(LintKind::DeadCell), "dead-cell");
  EXPECT_STREQ(lint_kind_name(LintKind::FanoutCapExceeded),
               "fanout-cap-exceeded");
  EXPECT_EQ(lint_kind_severity(LintKind::UndrivenNet), LintSeverity::Error);
  EXPECT_EQ(lint_kind_severity(LintKind::FloatingInput), LintSeverity::Error);
  EXPECT_EQ(lint_kind_severity(LintKind::DeadCell), LintSeverity::Warning);
  EXPECT_EQ(lint_kind_severity(LintKind::UnusedPrimaryInput),
            LintSeverity::Warning);
}

TEST(LintBasics, DiagnosticMessageFormat) {
  LintDiagnostic d{LintKind::FloatingInput, 7, 1, "AND2 input left open"};
  EXPECT_EQ(d.message(),
            "error: floating-input: net 7 pin 1: AND2 input left open");
  LintDiagnostic w{LintKind::DeadCell, 3, -1, "unreachable"};
  EXPECT_EQ(w.message(), "warning: dead-cell: net 3: unreachable");
}

// ----- seeded-defect fixtures: each diagnostic fires on its defect -----

TEST(LintFixtures, CombinationalLoopDetected) {
  Netlist nl("loop");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.and2(a, b);
  const NetId y = nl.or2(x, a);
  nl.mark_output(y, "z");
  // Rewire x's first input forward to y: x -> y -> x.
  nl.unchecked_gate(x).inputs[0] = y;

  const LintReport report = lint(nl);
  EXPECT_FALSE(report.structurally_sound());
  const auto loops = report.of_kind(LintKind::CombinationalLoop);
  ASSERT_EQ(loops.size(), 1u) << report.to_string();
  EXPECT_EQ(loops[0].net, x);  // lowest-numbered member of the cycle
  EXPECT_NE(loops[0].detail.find("2 cell(s)"), std::string::npos)
      << loops[0].detail;
}

TEST(LintFixtures, SelfLoopDetected) {
  Netlist nl("selfloop");
  const NetId a = nl.add_input("a");
  const NetId x = nl.inv(a);
  nl.mark_output(x, "z");
  nl.unchecked_gate(x).inputs[0] = x;

  const auto loops = lint(nl).of_kind(LintKind::CombinationalLoop);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].net, x);
  EXPECT_NE(loops[0].detail.find("1 cell(s)"), std::string::npos);
}

TEST(LintFixtures, DffFeedbackIsNotACombinationalLoop) {
  Netlist nl("toggle");
  const NetId q = nl.dff();
  nl.connect_dff(q, nl.inv(q));  // classic toggle flop
  nl.mark_output(q, "q");

  const LintReport report = lint(nl);
  EXPECT_TRUE(report.of_kind(LintKind::CombinationalLoop).empty())
      << report.to_string();
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(LintFixtures, DoubleDriverAlsoLeavesANetUndriven) {
  Netlist nl("dd");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.and2(a, b);
  const NetId y = nl.or2(a, b);
  nl.mark_output(x, "x");
  nl.mark_output(y, "y");
  // y's gate now claims x's net id: x has two drivers, y none.
  nl.unchecked_gate(y).output = x;

  const LintReport report = lint(nl);
  const auto multi = report.of_kind(LintKind::MultiplyDrivenNet);
  ASSERT_EQ(multi.size(), 1u) << report.to_string();
  EXPECT_EQ(multi[0].net, x);
  const auto undriven = report.of_kind(LintKind::UndrivenNet);
  ASSERT_EQ(undriven.size(), 1u);
  EXPECT_EQ(undriven[0].net, y);
  EXPECT_EQ(report.errors, 2);
}

TEST(LintFixtures, UnconnectedDffIsAFloatingInput) {
  Netlist nl("floatdff");
  const NetId q = nl.dff();  // D never connected
  nl.mark_output(q, "q");

  const auto floating = lint(nl).of_kind(LintKind::FloatingInput);
  ASSERT_EQ(floating.size(), 1u);
  EXPECT_EQ(floating[0].net, q);
  EXPECT_EQ(floating[0].pin, 0);
  EXPECT_NE(floating[0].detail.find("connect_dff"), std::string::npos);
}

TEST(LintFixtures, SeededFloatingPinOnCombinationalCell) {
  Netlist nl("floatpin");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.and2(a, b);
  nl.mark_output(x, "x");
  nl.unchecked_gate(x).inputs[1] = kNoNet;

  const auto floating = lint(nl).of_kind(LintKind::FloatingInput);
  ASSERT_EQ(floating.size(), 1u);
  EXPECT_EQ(floating[0].net, x);
  EXPECT_EQ(floating[0].pin, 1);
}

TEST(LintFixtures, OutOfRangePinIsAnInvalidNetRef) {
  Netlist nl("badref");
  const NetId a = nl.add_input("a");
  const NetId x = nl.inv(a);
  nl.mark_output(x, "x");
  nl.unchecked_gate(x).inputs[0] = 999;

  const auto bad = lint(nl).of_kind(LintKind::InvalidNetRef);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].net, x);
  EXPECT_EQ(bad[0].pin, 0);
  EXPECT_NE(bad[0].detail.find("999"), std::string::npos);
}

TEST(LintFixtures, DeadCellIsAWarningNotAnError) {
  Netlist nl("dead");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId dead = nl.and2(a, b);  // feeds nothing
  nl.mark_output(nl.xor2(a, b), "s");

  const LintReport report = lint(nl);
  EXPECT_TRUE(report.structurally_sound());
  EXPECT_FALSE(report.clean());
  const auto cells = report.of_kind(LintKind::DeadCell);
  ASSERT_EQ(cells.size(), 1u) << report.to_string();
  EXPECT_EQ(cells[0].net, dead);
  // The sweep removes it, and the swept netlist is spotless.
  EXPECT_TRUE(lint(remove_dead_gates(nl)).clean());
  // The check can be disabled for intentionally partial netlists.
  LintOptions options;
  options.check_dead_cells = false;
  EXPECT_TRUE(lint(nl, options).clean());
}

TEST(LintFixtures, UnusedPrimaryInputDetected) {
  Netlist nl("unused");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");  // never read
  nl.mark_output(nl.or2(a, b), "z");

  const auto unused = lint(nl).of_kind(LintKind::UnusedPrimaryInput);
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0].net, c);
  EXPECT_NE(unused[0].detail.find("'c'"), std::string::npos);
}

TEST(LintFixtures, FanoutCapEnforcedOnlyWhenEnabled) {
  Netlist nl("fanout");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.mark_output(nl.and2(a, b), "x");
  nl.mark_output(nl.or2(a, b), "y");
  nl.mark_output(nl.xor2(a, b), "z");  // a and b each fan out to 3 pins

  EXPECT_TRUE(lint(nl).clean());  // cap disabled by default
  LintOptions options;
  options.fanout_cap = 2;
  const auto over = lint(nl, options).of_kind(LintKind::FanoutCapExceeded);
  ASSERT_EQ(over.size(), 2u);
  EXPECT_EQ(over[0].net, a);
  EXPECT_EQ(over[1].net, b);
  options.fanout_cap = 3;
  EXPECT_TRUE(lint(nl, options).clean());
}

TEST(LintFixtures, DuplicatePortNameDetected) {
  Netlist nl("dup");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("a");  // same name, distinct nets
  nl.mark_output(nl.or2(a, b), "z");

  const auto dup = lint(nl).of_kind(LintKind::PortNameCollision);
  ASSERT_EQ(dup.size(), 1u);
  EXPECT_NE(dup[0].detail.find("'a'"), std::string::npos);
  EXPECT_NE(dup[0].detail.find("2 times"), std::string::npos);
}

TEST(LintFixtures, BusGapDetected) {
  Netlist nl("gap");
  const NetId s0 = nl.add_input("s[0]");
  const NetId s2 = nl.add_input("s[2]");  // s[1] missing
  nl.mark_output(nl.xor2(s0, s2), "z");

  const auto gaps = lint(nl).of_kind(LintKind::PortBusGap);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_NE(gaps[0].detail.find("'s'"), std::string::npos);
  EXPECT_NE(gaps[0].detail.find("missing index 1"), std::string::npos);
}

// ----- shipped-generator sweep: the lint bar every builder must hold ---
//
//  * raw netlist: structurally sound (zero Error findings) — the
//    generators legitimately build dead logic pre-sweep;
//  * after remove_dead_gates: completely clean (zero findings).

void expect_lint_bar(const Netlist& nl, const std::string& what) {
  const LintReport raw = lint(nl);
  EXPECT_TRUE(raw.structurally_sound())
      << what << " raw:\n"
      << raw.to_string();
  EXPECT_TRUE(raw.of_kind(LintKind::UnusedPrimaryInput).empty())
      << what << " has unused primary inputs:\n"
      << raw.to_string();
  const LintReport swept = lint(remove_dead_gates(nl));
  EXPECT_TRUE(swept.clean()) << what << " swept:\n" << swept.to_string();
}

TEST(LintSweep, AllAdderArchitectures) {
  for (const adders::AdderKind kind : adders::all_adder_kinds()) {
    for (const int width : {8, 16, 33}) {
      expect_lint_bar(adders::build_adder(kind, width).nl,
                      std::string(adders::adder_kind_name(kind)) + " w=" +
                          std::to_string(width));
    }
  }
}

TEST(LintSweep, AcaSharedAndNaive) {
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {16, 4}, {32, 8}, {64, 8}, {20, 6}}) {
    const std::string tag =
        "(" + std::to_string(n) + "," + std::to_string(k) + ")";
    expect_lint_bar(core::build_aca(n, k).nl, "aca" + tag);
    expect_lint_bar(core::build_aca(n, k, /*with_error_flag=*/true).nl,
                    "aca+er" + tag);
    expect_lint_bar(core::build_aca_naive(n, k).nl, "aca-naive" + tag);
    expect_lint_bar(core::build_error_detector(n, k).nl, "errdet" + tag);
  }
}

TEST(LintSweep, VlsaBothRecoveryStyles) {
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {16, 4}, {32, 8}, {64, 16}}) {
    const std::string tag =
        "(" + std::to_string(n) + "," + std::to_string(k) + ")";
    expect_lint_bar(core::build_vlsa(n, k, RecoveryStyle::ReuseBlocks).nl,
                    "vlsa-reuse" + tag);
    expect_lint_bar(
        core::build_vlsa(n, k, RecoveryStyle::ReplicatedAdder).nl,
        "vlsa-replicated" + tag);
  }
}

TEST(LintSweep, Multipliers) {
  expect_lint_bar(multiplier::build_exact_multiplier(8).nl, "mul-exact w=8");
  expect_lint_bar(multiplier::build_speculative_multiplier(8, 6).nl,
                  "mul-aca w=8 k=6");
  expect_lint_bar(multiplier::build_booth_multiplier(8, 0).nl,
                  "mul-booth-exact w=8");
  expect_lint_bar(multiplier::build_booth_multiplier(8, 6).nl,
                  "mul-booth w=8 k=6");
}

}  // namespace
}  // namespace vlsa::netlist
