#pragma once
// Shared contract between the fuzz harnesses and the fixed-iteration
// fallback driver (driver_main.cpp, used when the toolchain has no
// libFuzzer — see CMakeLists.txt here and docs/static_analysis.md).
//
// Each harness defines the standard libFuzzer entry point plus a small
// seed corpus the fallback driver mutates from.  Under a real
// `clang++ -fsanitize=fuzzer` build only LLVMFuzzerTestOneInput is
// used; the seeds double as the `-runs=N` smoke baseline either way.

#include <cstddef>
#include <cstdint>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

/// Seed inputs the fallback driver starts its mutations from.  Keep
/// them small and structurally interesting (valid frames, valid
/// netlists) so random byte flips explore deep paths.
const std::vector<std::vector<std::uint8_t>>& fuzz_seed_inputs();
