// Fixed-iteration fallback driver for the fuzz harnesses: a
// deterministic mutation loop over each harness's seed corpus, run
// when the compiler cannot build libFuzzer (GCC, or clang without
// compiler-rt).  Accepts the libFuzzer-style flags the smoke test
// passes (`-runs=N`, `-seed=S`), ignores everything else, so the ctest
// command line is identical under both drivers.
//
// This is NOT coverage-guided — it exists so the harnesses are
// compiled, exercised, and sanitizer-checked on every configuration,
// and so `ctest -L fuzz` means the same thing everywhere.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fuzz_driver.hpp"

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void mutate(std::vector<std::uint8_t>& data, std::uint64_t& rng) {
  const int edits = 1 + static_cast<int>(splitmix64(rng) % 4);
  for (int e = 0; e < edits; ++e) {
    switch (splitmix64(rng) % 4) {
      case 0:  // flip a byte
        if (!data.empty()) {
          data[splitmix64(rng) % data.size()] ^=
              static_cast<std::uint8_t>(splitmix64(rng));
        }
        break;
      case 1:  // insert a byte
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(
                                       splitmix64(rng) % (data.size() + 1)),
                    static_cast<std::uint8_t>(splitmix64(rng)));
        break;
      case 2:  // delete a byte
        if (!data.empty()) {
          data.erase(data.begin() +
                     static_cast<std::ptrdiff_t>(splitmix64(rng) %
                                                 data.size()));
        }
        break;
      default:  // truncate
        if (!data.empty()) data.resize(splitmix64(rng) % data.size());
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 5000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "-runs=", 6) == 0) {
      runs = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "-seed=", 6) == 0) {
      seed = std::strtoull(argv[i] + 6, nullptr, 10);
    }
  }
  const auto& seeds = fuzz_seed_inputs();
  // Every seed verbatim first — the harness must at least survive its
  // own corpus.
  for (const auto& s : seeds) {
    LLVMFuzzerTestOneInput(s.data(), s.size());
  }
  std::uint64_t rng = seed;
  std::vector<std::uint8_t> input;
  for (std::uint64_t run = 0; run < runs; ++run) {
    const std::uint64_t pick = splitmix64(rng) % (seeds.size() + 1);
    if (pick < seeds.size()) {
      input = seeds[pick];
      mutate(input, rng);
    } else {
      input.resize(splitmix64(rng) % 256);
      for (auto& b : input) b = static_cast<std::uint8_t>(splitmix64(rng));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("fallback fuzz driver: %llu runs, %zu seeds, no crash\n",
              static_cast<unsigned long long>(runs), seeds.size());
  return 0;
}
