// Fuzz harness for the netlist text format (src/netlist/serialize.hpp):
// from_text on arbitrary bytes must either throw the documented
// std::invalid_argument or produce a netlist whose serialization
// round-trips to a fixpoint.  Anything else — another exception type,
// a crash, a round-trip mismatch — is a finding.

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_driver.hpp"
#include "netlist/serialize.hpp"

namespace {

void require(bool cond) {
  if (!cond) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 1 << 16) return 0;  // parser is line-oriented; cap input
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const vlsa::netlist::Netlist nl = vlsa::netlist::from_text(text);
    // Round-trip stability: text -> netlist -> text is a fixpoint.
    const std::string once = vlsa::netlist::to_text(nl);
    const std::string twice =
        vlsa::netlist::to_text(vlsa::netlist::from_text(once));
    require(once == twice);
  } catch (const std::invalid_argument&) {
    // The documented rejection path.
  }
  return 0;
}

const std::vector<std::vector<std::uint8_t>>& fuzz_seed_inputs() {
  static const auto* seeds = [] {
    auto* s = new std::vector<std::vector<std::uint8_t>>;
    const char* corpus[] = {
        "netlist adder\n"
        "input a\n"
        "input b\n"
        "gate XOR 0 1\n"
        "gate AND 0 1\n"
        "output 2 sum\n"
        "output 3 carry\n",
        "netlist seq\n"
        "input d\n"
        "dff\n"
        "bind 1 0\n"
        "output 1 q\n",
        "netlist consts\n"
        "const0\n"
        "const1\n"
        "gate OR 0 1\n"
        "output 2 x\n",
        "# comment only\nnetlist empty\n",
    };
    for (const char* c : corpus) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(c);
      s->emplace_back(p, p + std::char_traits<char>::length(c));
    }
    return s;
  }();
  return *seeds;
}
