// Fuzz harness for net::FrameDecoder (src/net/protocol.hpp): hostile
// bytes, arbitrarily fragmented, must never crash the decoder, never
// grow its buffer past the limit-implied bound, and must poison it
// permanently on the first protocol violation.
//
// The input's first byte picks the fragmentation pattern (how the
// remaining bytes are split into feed() calls) so the fuzzer explores
// the incremental-parse state machine, not just whole-buffer decodes.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "fuzz_driver.hpp"
#include "net/protocol.hpp"
#include "util/bitvec.hpp"

namespace {

void require(bool cond) {
  if (!cond) std::abort();  // invariant violation -> fuzzer finding
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  vlsa::net::DecoderLimits limits;
  limits.max_width = 256;  // keep the buffered-bytes bound tight
  vlsa::net::FrameDecoder decoder(limits);
  vlsa::net::RequestFrame request;
  vlsa::net::ResponseFrame response;

  const std::size_t chunk =
      size == 0 ? 1 : static_cast<std::size_t>(data[0] % 37) + 1;
  std::size_t offset = size == 0 ? 0 : 1;
  bool errored = false;
  while (offset < size) {
    const std::size_t n = std::min(chunk, size - offset);
    decoder.feed(data + offset, n);
    offset += n;
    for (;;) {
      const auto result = decoder.next(request, response);
      if (result == vlsa::net::FrameDecoder::Result::NeedMore) break;
      if (result == vlsa::net::FrameDecoder::Result::Error) {
        errored = true;
        require(decoder.poisoned());
        require(!decoder.error().empty());
        break;
      }
      // A decoded frame obeys the limits the decoder enforces.
      if (decoder.type() == vlsa::net::FrameType::Request) {
        require(request.width >= 1 && request.width <= limits.max_width);
        require(request.a.width() == request.width);
        require(request.b.width() == request.width);
      } else {
        require(response.width >= 1 && response.width <= limits.max_width);
      }
    }
    if (errored) break;
  }
  if (errored) {
    // Poisoned is forever: more bytes never resurrect the stream.
    const std::uint8_t junk[4] = {0xDE, 0xAD, 0xBE, 0xEF};
    decoder.feed(junk, sizeof junk);
    require(decoder.next(request, response) ==
            vlsa::net::FrameDecoder::Result::Error);
  } else {
    // No error: buffered bytes are bounded by one max-size frame plus
    // one read burst (the decoder compacts consumed prefixes).
    const std::size_t bound =
        vlsa::net::kHeaderBytes +
        2 * vlsa::net::operand_bytes(limits.max_width) + size + 64;
    require(decoder.buffered() <= bound);
  }
  return 0;
}

const std::vector<std::vector<std::uint8_t>>& fuzz_seed_inputs() {
  static const auto* seeds = [] {
    auto* s = new std::vector<std::vector<std::uint8_t>>;
    // A valid request and a valid response, each prefixed with the
    // fragmentation-pattern byte the harness consumes.
    {
      vlsa::net::RequestFrame f;
      f.id = 7;
      f.width = 64;
      f.window = 8;
      f.a = vlsa::util::BitVec::from_u64(64, 0x0123456789ABCDEFull);
      f.b = vlsa::util::BitVec::from_u64(64, 0xFEDCBA9876543210ull);
      std::vector<std::uint8_t> bytes{5};  // chunk pattern
      encode_request(f, bytes);
      s->push_back(bytes);
    }
    {
      vlsa::net::ResponseFrame f;
      f.id = 7;
      f.status = vlsa::net::Status::Ok;
      f.width = 64;
      f.window = 8;
      f.latency_ticks = 3;
      f.sum = vlsa::util::BitVec::from_u64(64, 0x1111111111111111ull);
      std::vector<std::uint8_t> bytes{9};
      encode_response(f, bytes);
      s->push_back(bytes);
    }
    return s;
  }();
  return *seeds;
}
