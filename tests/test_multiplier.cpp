// Tests for the speculative multiplier: behavioral model, gate-level
// exact and speculative multipliers, and the soundness of the final
// adder's error flag in the multiplier context.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "multiplier/spec_multiplier.hpp"
#include "netlist/simulator.hpp"
#include "netlist/sta.hpp"
#include "netlist_test_util.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using multiplier::build_exact_multiplier;
using multiplier::build_speculative_multiplier;
using multiplier::exact_multiply;
using multiplier::speculative_multiply;
using util::BitVec;
using util::Rng;

TEST(ExactMultiply, MatchesNativeAt32Bits) {
  Rng rng(51);
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint32_t b = static_cast<std::uint32_t>(rng.next_u64());
    const BitVec product =
        exact_multiply(BitVec::from_u64(32, a), BitVec::from_u64(32, b));
    EXPECT_EQ(product.low_u64(),
              static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
  }
}

TEST(ExactMultiply, EdgeCases) {
  const BitVec zero(16);
  const BitVec ones = BitVec::ones(16);
  EXPECT_TRUE(exact_multiply(zero, ones).is_zero());
  // (2^16 - 1)^2 = 2^32 - 2^17 + 1.
  EXPECT_EQ(exact_multiply(ones, ones).low_u64(),
            (0xffffull * 0xffffull));
  EXPECT_THROW(exact_multiply(BitVec(8), BitVec(9)), std::invalid_argument);
}

TEST(SpeculativeMultiply, UnflaggedResultsAreExact) {
  Rng rng(52);
  int flagged = 0;
  for (int i = 0; i < 3000; ++i) {
    const BitVec a = rng.next_bits(24);
    const BitVec b = rng.next_bits(24);
    const auto result = speculative_multiply(a, b, 10);
    if (!result.flagged) {
      ASSERT_EQ(result.product, exact_multiply(a, b))
          << a.to_hex() << " * " << b.to_hex();
    } else {
      ++flagged;
    }
  }
  // The final addends of a multiplier are not uniform, but flags must
  // stay rare at k = 10 while still occurring.
  EXPECT_GT(flagged, 0);
  EXPECT_LT(flagged, 600);
}

TEST(SpeculativeMultiply, WideWindowIsExact) {
  Rng rng(53);
  for (int i = 0; i < 500; ++i) {
    const BitVec a = rng.next_bits(16);
    const BitVec b = rng.next_bits(16);
    const auto result = speculative_multiply(a, b, 32);
    EXPECT_EQ(result.product, exact_multiply(a, b));
    EXPECT_FALSE(result.flagged);
  }
}

TEST(MultiplierNetlist, ExactMatchesReferenceExhaustive4Bit) {
  const auto m = build_exact_multiplier(4);
  std::vector<std::pair<BitVec, BitVec>> ops;
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      ops.push_back({BitVec::from_u64(4, a), BitVec::from_u64(4, b)});
    }
  }
  const auto results = testing::run_adder_netlist(m.nl, m.a, m.b, m.product,
                                                  netlist::kNoNet, ops);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(results[i].sum.low_u64(),
              ops[i].first.low_u64() * ops[i].second.low_u64())
        << ops[i].first.low_u64() << "*" << ops[i].second.low_u64();
  }
}

TEST(MultiplierNetlist, ExactMatchesReferenceRandomWide) {
  for (int width : {8, 12, 16}) {
    const auto m = build_exact_multiplier(width);
    Rng rng(54 + width);
    std::vector<std::pair<BitVec, BitVec>> ops;
    for (int i = 0; i < 64; ++i) {
      ops.push_back({rng.next_bits(width), rng.next_bits(width)});
    }
    const auto results = testing::run_adder_netlist(m.nl, m.a, m.b, m.product,
                                                    netlist::kNoNet, ops);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      ASSERT_EQ(results[i].sum, exact_multiply(ops[i].first, ops[i].second));
    }
  }
}

TEST(MultiplierNetlist, SpeculativeSoundness) {
  // Whenever the gate-level error flag is 0, the gate-level product is
  // exact — the multiplier inherits the adder's detector guarantee.
  const int width = 12, k = 6;
  const auto m = build_speculative_multiplier(width, k);
  ASSERT_NE(m.error, netlist::kNoNet);
  const netlist::Simulator sim(m.nl);
  const auto index = netlist::stim::input_index_map(m.nl);
  Rng rng(55);
  int flagged = 0, unflagged = 0;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<std::pair<BitVec, BitVec>> ops;
    for (int lane = 0; lane < 64; ++lane) {
      ops.push_back({rng.next_bits(width), rng.next_bits(width)});
    }
    std::vector<std::uint64_t> stim(m.nl.inputs().size(), 0);
    for (int lane = 0; lane < 64; ++lane) {
      netlist::stim::load_operand(stim, index, m.a, ops[lane].first, lane);
      netlist::stim::load_operand(stim, index, m.b, ops[lane].second, lane);
    }
    const auto values = sim.eval(stim);
    for (int lane = 0; lane < 64; ++lane) {
      const BitVec product = netlist::stim::read_bus(values, m.product, lane);
      const bool error = testing::net_bit(values, m.error, lane);
      if (error) {
        ++flagged;
      } else {
        ++unflagged;
        ASSERT_EQ(product, exact_multiply(ops[lane].first, ops[lane].second));
      }
    }
  }
  EXPECT_GT(unflagged, flagged);  // flags must be the minority at k=6/w=12
}

TEST(MultiplierNetlist, SpeculativeFinalAdderIsFasterAtScale) {
  // The speculative multiplier's final adder is shallower; total delay
  // must drop (the CSA tree is identical in both).
  const int width = 32;
  const auto exact = build_exact_multiplier(width);
  const auto spec = build_speculative_multiplier(
      width, /*window=*/8);
  const double d_exact = netlist::analyze_timing(exact.nl).critical_delay_ns;
  const double d_spec = netlist::analyze_timing(spec.nl).critical_delay_ns;
  EXPECT_LT(d_spec, d_exact);
}

TEST(MultiplierNetlist, RejectsBadDimensions) {
  EXPECT_THROW(build_exact_multiplier(0), std::invalid_argument);
  EXPECT_THROW(build_speculative_multiplier(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
