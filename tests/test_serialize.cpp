// Tests for netlist serialization: round-trips (combinational and
// sequential), equivalence of the reload, library scaling invariance of
// the headline ratios, and malformed-input rejection.

#include <gtest/gtest.h>

#include <string>

#include "adders/adders.hpp"
#include "core/aca_netlist.hpp"
#include "core/vlsa_sequential.hpp"
#include "netlist/equiv.hpp"
#include "netlist/seq_sim.hpp"
#include "netlist/serialize.hpp"
#include "netlist/sta.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using netlist::from_text;
using netlist::Netlist;
using netlist::to_text;

TEST(Serialize, RoundTripIsByteIdentical) {
  const auto adder = adders::build_adder(adders::AdderKind::BrentKung, 16);
  const std::string text = to_text(adder.nl);
  const Netlist loaded = from_text(text);
  EXPECT_EQ(to_text(loaded), text);
  EXPECT_EQ(loaded.module_name(), adder.nl.module_name());
  EXPECT_EQ(loaded.num_nets(), adder.nl.num_nets());
}

TEST(Serialize, ReloadedAdderIsEquivalent) {
  for (auto kind : {adders::AdderKind::KoggeStone,
                    adders::AdderKind::ConditionalSum,
                    adders::AdderKind::CarrySelect}) {
    const auto adder = adders::build_adder(kind, 9);
    const Netlist loaded = from_text(to_text(adder.nl));
    const auto equiv = netlist::check_equivalence(adder.nl, loaded);
    EXPECT_TRUE(equiv.equivalent) << adders::adder_kind_name(kind);
    EXPECT_TRUE(equiv.exhaustive);
  }
}

TEST(Serialize, VlsaWithConstantsRoundTrips) {
  const auto v = core::build_vlsa(8, 3);
  const Netlist loaded = from_text(to_text(v.nl));
  EXPECT_TRUE(netlist::check_equivalence(v.nl, loaded).equivalent);
}

TEST(Serialize, SequentialRoundTripPreservesBehaviour) {
  const auto v = core::build_sequential_vlsa(8, 3);
  const std::string text = to_text(v.nl);
  EXPECT_NE(text.find("dff"), std::string::npos);
  EXPECT_NE(text.find("bind "), std::string::npos);
  const Netlist loaded = from_text(text);
  EXPECT_EQ(loaded.num_dffs(), v.nl.num_dffs());

  netlist::SequentialSimulator sim_a(v.nl);
  netlist::SequentialSimulator sim_b(loaded);
  util::Rng rng(0x53a);
  for (int t = 0; t < 40; ++t) {
    std::vector<std::uint64_t> stim(v.nl.inputs().size());
    for (auto& w : stim) w = rng.next_u64();
    const auto va = sim_a.step(stim);
    const auto vb = sim_b.step(stim);
    for (std::size_t o = 0; o < v.nl.outputs().size(); ++o) {
      ASSERT_EQ(va[static_cast<std::size_t>(v.nl.outputs()[o].net)],
                vb[static_cast<std::size_t>(loaded.outputs()[o].net)])
          << t;
    }
  }
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Netlist nl = from_text(
      "# a comment\n"
      "netlist tiny\n"
      "\n"
      "input a\n"
      "input b\n"
      "gate AND2X1 0 1\n"
      "output 2 y\n");
  EXPECT_EQ(nl.module_name(), "tiny");
  EXPECT_EQ(nl.num_cells(), 1);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(from_text("input a\n"), std::invalid_argument);  // no header
  EXPECT_THROW(from_text("netlist m\nfrobnicate\n"), std::invalid_argument);
  EXPECT_THROW(from_text("netlist m\ngate NOSUCH 0\n"),
               std::invalid_argument);
  EXPECT_THROW(from_text("netlist m\ninput a\ngate AND2X1 0 7\n"),
               std::invalid_argument);  // operand does not exist
  EXPECT_THROW(from_text("netlist m\noutput 0 y\n"), std::invalid_argument);
}

TEST(ScaledLibrary, UniformScalingPreservesHeadlineRatios) {
  // The whole Fig. 8 story is about ratios; a uniformly scaled library
  // (different process corner) must leave them untouched.
  const auto fast = netlist::CellLibrary::scaled("corner", 0.6, 1.1);
  const auto trad = adders::build_adder(adders::AdderKind::KoggeStone, 64);
  const auto aca = core::build_aca(64, 12);
  const double r_base =
      netlist::analyze_timing(trad.nl).critical_delay_ns /
      netlist::analyze_timing(aca.nl).critical_delay_ns;
  const double r_scaled =
      netlist::analyze_timing(trad.nl, fast).critical_delay_ns /
      netlist::analyze_timing(aca.nl, fast).critical_delay_ns;
  EXPECT_NEAR(r_base, r_scaled, 1e-9);
  // Absolute delay did change.
  EXPECT_NEAR(netlist::analyze_timing(trad.nl, fast).critical_delay_ns,
              0.6 * netlist::analyze_timing(trad.nl).critical_delay_ns,
              1e-9);
  EXPECT_THROW(netlist::CellLibrary::scaled("bad", 0.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
