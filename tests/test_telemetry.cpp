// Tests for the telemetry layer: bucket math, quantile extraction,
// concurrent recording, registry semantics, deterministic JSON
// serialization (the property the service determinism test builds on),
// info metrics, and the Prometheus exposition edge cases the admin
// plane's /metrics endpoint must honor.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/histogram.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/registry.hpp"

namespace vlsa {
namespace {

using telemetry::Histogram;
using telemetry::HistogramBuckets;
using telemetry::Registry;

TEST(TelemetryHistogram, SmallValuesLandInExactBuckets) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(snap.buckets[i], 1u) << "bucket " << i;
  }
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 15u);
  EXPECT_EQ(snap.sum, 120u);
}

TEST(TelemetryHistogram, BucketIndexIsMonotoneAndInvertible) {
  // lower_bound is a left inverse of index, and the representative
  // never overstates the value by construction (it is a lower bound
  // within 12.5%).
  for (int i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    EXPECT_EQ(HistogramBuckets::index(HistogramBuckets::lower_bound(i)), i);
  }
  std::vector<std::uint64_t> probes;
  for (int shift = 0; shift < 63; ++shift) {
    probes.push_back(std::uint64_t{1} << shift);
    probes.push_back((std::uint64_t{1} << shift) + 1);
    probes.push_back((std::uint64_t{1} << shift) * 2 - 1);
  }
  std::sort(probes.begin(), probes.end());
  int previous = 0;
  for (std::uint64_t v : probes) {
    const int idx = HistogramBuckets::index(v);
    const std::uint64_t lower = HistogramBuckets::lower_bound(idx);
    EXPECT_LE(lower, v);
    EXPECT_GE(idx, previous) << "not monotone at " << v;
    previous = idx;
    if (v >= 16) {
      EXPECT_LE(v - lower, v / 8) << "relative error too large at " << v;
    }
  }
}

TEST(TelemetryHistogram, QuantilesOnKnownData) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(100);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 90u + 1000u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_EQ(snap.p50(), 1u);
  EXPECT_EQ(snap.p90(), 1u);
  // p99 falls in 100's bucket; the reported value is its lower bound.
  const std::uint64_t bucket_100 =
      HistogramBuckets::lower_bound(HistogramBuckets::index(100));
  EXPECT_EQ(snap.p99(), bucket_100);
  EXPECT_EQ(snap.p999(), bucket_100);
  EXPECT_NEAR(snap.mean(), 10.9, 1e-9);
}

TEST(TelemetryHistogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const auto snap = h.snapshot("empty");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.p999(), 0u);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(TelemetryHistogram, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.buckets[t], static_cast<std::uint64_t>(kPerThread));
  }
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 7u);
}

TEST(TelemetryRegistry, SameNameReturnsSameMetric) {
  Registry registry;
  auto& c1 = registry.counter("service.submitted");
  auto& c2 = registry.counter("service.submitted");
  EXPECT_EQ(&c1, &c2);
  c1.increment(3);
  EXPECT_EQ(c2.value(), 3);
  auto& h1 = registry.histogram("latency");
  auto& h2 = registry.histogram("latency");
  EXPECT_EQ(&h1, &h2);
}

TEST(TelemetryRegistry, CrossKindNameCollisionThrows) {
  Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
  registry.histogram("h");
  EXPECT_THROW(registry.counter("h"), std::invalid_argument);
}

TEST(TelemetryRegistry, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("zulu");
  registry.counter("alpha");
  registry.counter("mike");
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mike");
  EXPECT_EQ(snap.counters[2].first, "zulu");
}

TEST(TelemetryRegistry, IdenticalHistoriesSerializeIdentically) {
  auto build = [] {
    Registry registry;
    registry.counter("requests").increment(42);
    registry.gauge("depth").set(-7);
    auto& h = registry.histogram("latency");
    for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
    return registry.snapshot().to_json();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"p99\""), std::string::npos);
  EXPECT_NE(a.find("\"requests\": 42"), std::string::npos);
}

TEST(TelemetryRegistry, InfoMetricRoundTripsAndCollides) {
  Registry registry;
  registry.info("build_info", {{"git_sha", "abc123"}, {"isa", "avx2"}});
  // Re-registering replaces the labels (idempotent for build info).
  registry.info("build_info", {{"git_sha", "abc123"}, {"isa", "avx512"}});
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.infos.size(), 1u);
  EXPECT_EQ(snap.infos[0].name, "build_info");
  ASSERT_EQ(snap.infos[0].labels.size(), 2u);
  EXPECT_EQ(snap.infos[0].labels[1].second, "avx512");

  // Cross-kind collisions throw in both directions.
  EXPECT_THROW(registry.counter("build_info"), std::invalid_argument);
  EXPECT_THROW(registry.gauge("build_info"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("build_info"), std::invalid_argument);
  registry.counter("c");
  EXPECT_THROW(registry.info("c", {}), std::invalid_argument);

  // JSON carries an "infos" block only when one exists (keeping
  // info-free registries byte-identical to their pre-info form).
  EXPECT_NE(snap.to_json().find("\"infos\""), std::string::npos);
  Registry bare;
  bare.counter("c").increment();
  EXPECT_EQ(bare.snapshot().to_json().find("\"infos\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Prometheus exposition edge cases (the admin plane's /metrics)

TEST(TelemetryPrometheus, LabelValuesAreEscaped) {
  EXPECT_EQ(telemetry::prometheus_label_value("plain"), "plain");
  EXPECT_EQ(telemetry::prometheus_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::prometheus_label_value("say \"hi\""),
            "say \\\"hi\\\"");
  EXPECT_EQ(telemetry::prometheus_label_value("line\nbreak"),
            "line\\nbreak");
}

TEST(TelemetryPrometheus, InfoRendersAsGaugeWithEscapedLabels) {
  Registry registry;
  registry.info("build_info",
                {{"git_sha", "abc\"123"}, {"note", "a\\b\nc"}});
  std::ostringstream os;
  telemetry::write_prometheus(registry.snapshot(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE vlsa_build_info gauge"), std::string::npos);
  EXPECT_NE(out.find("vlsa_build_info{git_sha=\"abc\\\"123\","
                     "note=\"a\\\\b\\nc\"} 1"),
            std::string::npos);
}

TEST(TelemetryPrometheus, EmptySummaryQuantilesAreNaN) {
  Registry registry;
  registry.histogram("latency_ns");  // registered, never recorded
  std::ostringstream os;
  telemetry::write_prometheus(registry.snapshot(), os);
  const std::string out = os.str();
  // Per the spec, quantiles of an empty summary are NaN — 0 would
  // claim a latency that was never observed.
  EXPECT_NE(out.find("vlsa_latency_ns{quantile=\"0.5\"} NaN"),
            std::string::npos);
  EXPECT_NE(out.find("vlsa_latency_ns_count 0"), std::string::npos);
  // The native histogram still carries its mandatory +Inf bucket.
  EXPECT_NE(out.find("vlsa_latency_ns_hist_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(out.find("vlsa_latency_ns_hist_count 0"), std::string::npos);
}

TEST(TelemetryPrometheus, HistogramBucketsAreCumulativeWithInf) {
  Registry registry;
  auto& h = registry.histogram("lat");
  h.record(1);
  h.record(1);
  h.record(5);
  h.record(1'000'000);
  std::ostringstream os;
  telemetry::write_prometheus(registry.snapshot(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE vlsa_lat_hist histogram"), std::string::npos);
  // le="1" covers both 1s; le="5" adds the 5; +Inf covers everything.
  EXPECT_NE(out.find("vlsa_lat_hist_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("vlsa_lat_hist_bucket{le=\"5\"} 3"),
            std::string::npos);
  EXPECT_NE(out.find("vlsa_lat_hist_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(out.find("vlsa_lat_hist_count 4"), std::string::npos);
  EXPECT_NE(out.find("vlsa_lat_hist_sum 1000007"), std::string::npos);

  // Cumulative counts never decrease across the rendered buckets.
  std::uint64_t previous = 0;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    const auto pos = line.find("vlsa_lat_hist_bucket{le=\"");
    if (pos != 0 || line.find("+Inf") != std::string::npos) continue;
    const auto space = line.rfind(' ');
    const std::uint64_t count = std::stoull(line.substr(space + 1));
    EXPECT_GE(count, previous) << line;
    previous = count;
  }
}

TEST(TelemetryRegistry, ConcurrentMetricCreationIsSafe) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.counter("shared").increment();
        registry.histogram("hist").record(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters[0].second, 8000);
  EXPECT_EQ(snap.histograms[0].count, 8000u);
}

}  // namespace
}  // namespace vlsa
