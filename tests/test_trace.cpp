// Tests for the observability layer: trace-ring wraparound and torn-read
// safety under a concurrent collector (run these under the `tsan`
// preset), Chrome JSON export validity and quiescent stability, the
// misprediction postmortem ring, the ER drift monitor (screams on
// all-propagate operands, quiet on the model rate), and the Prometheus
// exposition of the telemetry registry.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/service.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/registry.hpp"
#include "trace/drift.hpp"
#include "trace/merge.hpp"
#include "trace/postmortem.hpp"
#include "trace/trace.hpp"
#include "util/bitvec.hpp"

namespace vlsa {
namespace {

using util::BitVec;

// ---------------------------------------------------------------------
// A minimal JSON validator — enough structure-awareness to prove the
// exported document parses (objects, arrays, strings, numbers, bools),
// without depending on an external JSON library.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    const bool ok = value();
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      pos_ += text_[pos_] == '\\' ? 2 : 1;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool members(char open, char close, bool keyed) {
    if (pos_ >= text_.size() || text_[pos_] != open) return false;
    ++pos_;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == close) {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (keyed) {
        if (!string()) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
      }
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return members('{', '}', /*keyed=*/true);
      case '[':
        return members('[', ']', /*keyed=*/false);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(TraceRing, EncodeDecodeRoundTrips) {
  trace::TraceEvent event;
  event.ts_ns = 123456789;
  event.dur_ns = 4242;
  event.tid = 7;
  event.name = trace::EventName::kRecovery;
  event.phase = trace::Phase::kComplete;
  event.args.batch = 991;
  event.args.lane = 63;
  event.args.k = 18;
  event.args.er = 1;
  event.args.chain = 64;
  event.args.a_lo = 0xdeadbeefcafef00dULL;
  event.args.b_lo = 0x0123456789abcdefULL;
  event.args.has_operands = true;
  event.args.req = 0xfedcba9876543210ULL;  // full 64-bit wire id
  event.args.has_req = true;

  const auto decoded = trace::TraceEvent::decode(event.encode());
  EXPECT_EQ(decoded.ts_ns, event.ts_ns);
  EXPECT_EQ(decoded.dur_ns, event.dur_ns);
  EXPECT_EQ(decoded.tid, event.tid);
  EXPECT_EQ(decoded.name, event.name);
  EXPECT_EQ(decoded.phase, event.phase);
  EXPECT_EQ(decoded.args.batch, event.args.batch);
  EXPECT_EQ(decoded.args.lane, event.args.lane);
  EXPECT_EQ(decoded.args.k, event.args.k);
  EXPECT_EQ(decoded.args.er, event.args.er);
  EXPECT_EQ(decoded.args.chain, event.args.chain);
  EXPECT_EQ(decoded.args.a_lo, event.args.a_lo);
  EXPECT_EQ(decoded.args.b_lo, event.args.b_lo);
  EXPECT_TRUE(decoded.args.has_operands);
  EXPECT_EQ(decoded.args.req, event.args.req);
  EXPECT_TRUE(decoded.args.has_req);

  // Absent-marker round trip (the sentinels share slot words with real
  // values, so "unset" must survive encoding too).
  trace::TraceEvent bare;
  const auto bare_decoded = trace::TraceEvent::decode(bare.encode());
  EXPECT_EQ(bare_decoded.args.batch, trace::kNoBatch);
  EXPECT_EQ(bare_decoded.args.lane, -1);
  EXPECT_EQ(bare_decoded.args.k, -1);
  EXPECT_EQ(bare_decoded.args.er, -1);
  EXPECT_EQ(bare_decoded.args.chain, -1);
  EXPECT_FALSE(bare_decoded.args.has_operands);
  EXPECT_FALSE(bare_decoded.args.has_req);
  EXPECT_EQ(bare_decoded.args.req, 0u);
}

TEST(TraceRing, WraparoundKeepsTheNewestEvents) {
  trace::EventRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    trace::TraceEvent event;
    event.ts_ns = i;
    event.args.batch = i;
    ring.push(event);
  }
  EXPECT_EQ(ring.pushed(), 20u);

  std::vector<trace::TraceEvent> events;
  const std::size_t got = ring.collect(events);
  ASSERT_EQ(got, 8u);
  // Oldest-first, and exactly the last `capacity` pushes survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 12 + i);
    EXPECT_EQ(events[i].args.batch, 12 + i);
  }
}

// The seqlock contract: a collector running concurrently with a writer
// never observes a torn slot.  Every pushed event satisfies
// `args.batch == ts_ns` and `args.a_lo == ~ts_ns`; any interleaving of
// two different events' words would break the invariant.  Run under
// the `tsan` preset for the full data-race check.
TEST(TraceRing, ConcurrentCollectorNeverSeesTornEvents) {
  constexpr std::uint64_t kPushes = 50'000;
  trace::EventRing ring(64);
  std::atomic<bool> done{false};
  std::thread writer([&ring, &done] {
    for (std::uint64_t i = 0; i < kPushes; ++i) {
      trace::TraceEvent event;
      event.ts_ns = i;
      event.args.batch = i;
      event.args.a_lo = ~i;
      event.args.has_operands = true;
      ring.push(event);
    }
    done.store(true, std::memory_order_release);
  });

  const auto validate = [](const std::vector<trace::TraceEvent>& events) {
    for (const auto& event : events) {
      ASSERT_EQ(event.args.batch, event.ts_ns);
      ASSERT_EQ(event.args.a_lo, ~event.ts_ns);
    }
  };
  // Race with the live writer...
  std::vector<trace::TraceEvent> events;
  while (!done.load(std::memory_order_acquire)) {
    events.clear();
    ring.collect(events);
    validate(events);
  }
  writer.join();
  // ...and confirm a quiescent collect sees exactly the newest window.
  events.clear();
  ASSERT_EQ(ring.collect(events), ring.capacity());
  validate(events);
  EXPECT_EQ(ring.pushed(), kPushes);
  EXPECT_EQ(events.back().ts_ns, kPushes - 1);
}

// Pump-mode service: deterministic, single-threaded, recovery inline.
service::ServiceConfig pump_config(int width, int window) {
  service::ServiceConfig config;
  config.pipeline.width = width;
  config.pipeline.window = window;
  config.workers = 0;
  config.queue_capacity = 4096;
  config.record_wall_time = false;
  return config;
}

// Drive `n` all-propagate additions (a + ~a: every bit position
// propagates, chain == width, ER fires on every request) through a
// pump-mode service.
void run_all_propagate(service::AdderService& service, int width, int n) {
  for (int i = 0; i < n; ++i) {
    const auto a =
        BitVec::from_u64(width, 0x9e3779b97f4a7c15ULL * (i + 1));
    service.submit(a, ~a);
    if ((i + 1) % 64 == 0) service.pump();
  }
  service.flush();
}

TEST(TraceSession, SecondConcurrentSessionThrows) {
  trace::TraceSession session;
  EXPECT_THROW(trace::TraceSession(trace::TraceConfig{}), std::logic_error);
}

TEST(TraceSession, DisabledGateCostsNothingAndRecordsNothing) {
  EXPECT_FALSE(trace::enabled());
  // Emitting with no session active is a no-op, not an error.
  trace::emit_instant(trace::EventName::kSubmit);
  trace::TraceSession session;
  EXPECT_TRUE(trace::enabled());
  session.stop();
  EXPECT_FALSE(trace::enabled());
  EXPECT_TRUE(session.collect().empty());
}

TEST(TraceSession, RecoverySpansCarryOperandsAndChainLength) {
  constexpr int kWidth = 64;
  constexpr int kWindow = 8;
  trace::TraceSession session;
  {
    service::AdderService service(pump_config(kWidth, kWindow));
    run_all_propagate(service, kWidth, 256);
  }
  session.stop();

  const auto events = session.collect();
  ASSERT_FALSE(events.empty());
  std::size_t recoveries = 0;
  for (const auto& event : events) {
    if (event.name != trace::EventName::kRecovery) continue;
    ++recoveries;
    EXPECT_EQ(event.phase, trace::Phase::kComplete);
    EXPECT_EQ(event.args.er, 1);
    EXPECT_EQ(event.args.k, kWindow);
    EXPECT_TRUE(event.args.has_operands);
    // a + ~a: every position propagates.
    EXPECT_EQ(event.args.chain, kWidth);
    EXPECT_EQ(event.args.b_lo, ~event.args.a_lo);
    EXPECT_NE(event.args.batch, trace::kNoBatch);
    EXPECT_GE(event.args.lane, 0);
  }
  EXPECT_EQ(recoveries, 256u);
}

TEST(TraceSession, ChromeExportIsValidJsonAndQuiescentStable) {
  trace::TraceSession session;
  {
    service::AdderService service(pump_config(32, 6));
    run_all_propagate(service, 32, 128);
  }
  session.stop();

  const std::string first = session.chrome_json();
  const std::string second = session.chrome_json();
  EXPECT_EQ(first, second) << "quiescent exports must be byte-identical";

  JsonValidator validator(first);
  EXPECT_TRUE(validator.valid()) << "export is not well-formed JSON";

  // Structural spot checks a Perfetto load depends on.
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(first.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(first.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(first.find("\"recovery\""), std::string::npos);
  EXPECT_NE(first.find("\"er-check\""), std::string::npos);
  EXPECT_NE(first.find("\"chain\""), std::string::npos);
}

TEST(TraceSession, SamplingRateZeroStillRecordsRecoveryEvents) {
  trace::TraceConfig config;
  config.sample_rate = 0.0;
  config.always_sample_recovery = true;
  trace::TraceSession session(config);
  {
    service::AdderService service(pump_config(32, 6));
    run_all_propagate(service, 32, 128);
  }
  session.stop();

  const auto events = session.collect();
  ASSERT_FALSE(events.empty());
  for (const auto& event : events) {
    // Detail events are sampled out; only the recovery path remains.
    EXPECT_TRUE(event.name == trace::EventName::kRecovery ||
                event.name == trace::EventName::kErCheck ||
                event.name == trace::EventName::kComplete)
        << "unexpected detail event " << trace::event_name(event.name);
  }
}

// ---------------------------------------------------------------------
// trace::merge — stitching per-process exports into one timeline

TEST(TraceMerge, StitchesClientAndServerExportsByRequestId) {
  // Two sequential sessions stand in for two processes: a "client"
  // recording send/recv spans for one sampled request, and a "server"
  // recording the matching net-serve span.  The shared join key is the
  // wire request id in args.req.
  constexpr std::uint64_t kReq = 0xabcdef0112345678ULL;
  std::string client_json, server_json;
  {
    trace::TraceSession session;
    trace::EventArgs args;
    args.req = kReq;
    args.has_req = true;
    trace::emit_span(trace::EventName::kClientSend, 1000, 500, args);
    trace::emit_span(trace::EventName::kClientRecv, 9000, 700, args);
    session.stop();
    client_json = session.chrome_json();
  }
  {
    trace::TraceSession session;
    trace::EventArgs args;
    args.req = kReq;
    args.has_req = true;
    args.k = 8;
    trace::emit_span(trace::EventName::kNetServe, 3000, 2000, args);
    session.stop();
    server_json = session.chrome_json();
  }

  std::ostringstream os;
  const auto stats =
      trace::merge({{"client", client_json}, {"server", server_json}}, os);
  EXPECT_EQ(stats.sources, 2u);
  EXPECT_EQ(stats.matched_reqs, 1u) << "the request id must join the sides";
  EXPECT_GE(stats.events, 3u);

  const std::string merged = os.str();
  JsonValidator validator(merged);
  EXPECT_TRUE(validator.valid()) << "merged export is not well-formed JSON";

  // Each source becomes its own pid with a process_name label, and the
  // three distributed-tracing span names all survive the merge.
  EXPECT_NE(merged.find("\"process_name\""), std::string::npos);
  EXPECT_NE(merged.find("\"client\""), std::string::npos);
  EXPECT_NE(merged.find("\"server\""), std::string::npos);
  EXPECT_NE(merged.find("\"client-send\""), std::string::npos);
  EXPECT_NE(merged.find("\"client-recv\""), std::string::npos);
  EXPECT_NE(merged.find("\"net-serve\""), std::string::npos);
  EXPECT_NE(merged.find("\"pid\": 2"), std::string::npos);

  // The full 64-bit request id re-emits losslessly (the merger keeps
  // raw number text; a double round-trip would corrupt the high bits)
  // — once per span, on both sides.
  const std::string req_decimal = std::to_string(kReq);
  std::size_t occurrences = 0;
  for (std::size_t pos = merged.find(req_decimal);
       pos != std::string::npos; pos = merged.find(req_decimal, pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 3u);
}

TEST(TraceMerge, MalformedInputThrows) {
  std::ostringstream os;
  EXPECT_THROW(trace::merge({{"a", "{"}, {"b", "{}"}}, os),
               std::runtime_error);
  // Structurally valid JSON but missing the epoch_ns alignment key.
  EXPECT_THROW(trace::merge({{"a", R"({"traceEvents": []})"},
                             {"b", R"({"traceEvents": []})"}},
                            os),
               std::runtime_error);
}

TEST(TracePostmortem, RingKeepsTheLastNMispredictions) {
  trace::PostmortemRing ring(16);
  for (int i = 0; i < 50; ++i) {
    const auto a = BitVec::from_u64(32, static_cast<std::uint64_t>(i));
    ring.record(a, ~a, /*k=*/6, /*wrong=*/i % 2 == 0,
                /*batch=*/static_cast<std::uint64_t>(i), /*lane=*/i % 64);
  }
  EXPECT_EQ(ring.total_recorded(), 50u);
  const auto records = ring.records();
  ASSERT_EQ(records.size(), 16u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, 34 + i);  // oldest-first, last 16
    EXPECT_EQ(records[i].chain, 32);         // a + ~a all-propagate
    EXPECT_EQ(records[i].k, 6);
  }
  const std::string json = ring.to_json();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid());
  EXPECT_NE(json.find("\"total_recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"chain\""), std::string::npos);
}

TEST(TracePostmortem, ServiceRecoveryPathFeedsTheRing) {
  trace::PostmortemRing ring(8);
  auto config = pump_config(64, 8);
  config.postmortem = &ring;
  {
    service::AdderService service(config);
    run_all_propagate(service, 64, 100);
  }
  EXPECT_EQ(ring.total_recorded(), 100u);
  const auto records = ring.records();
  ASSERT_EQ(records.size(), 8u);
  for (const auto& record : records) {
    EXPECT_EQ(record.chain, 64);
    EXPECT_EQ(record.b, ~record.a);
  }
}

TEST(DriftMonitor, FlagsAnAllPropagateStream) {
  trace::DriftConfig config;
  config.width = 64;
  config.k = 8;
  config.window = 1024;
  telemetry::Registry registry;
  std::ostringstream log;
  trace::DriftMonitor monitor(config, &registry, &log);

  // Simulate the service's per-batch reporting with every lane flagged.
  for (int batch = 0; batch < 32; ++batch) monitor.record_batch(64, 64);

  const auto status = monitor.status();
  EXPECT_EQ(status.total, 2048u);
  EXPECT_EQ(status.flagged, 2048u);
  EXPECT_EQ(status.windows, 2u);
  EXPECT_EQ(status.windows_out_of_band, 2u);
  EXPECT_TRUE(status.out_of_band);
  EXPECT_GT(status.last_z, config.z_threshold);
  EXPECT_NE(log.str().find("OUT OF BAND"), std::string::npos);

  // The verdict also lands in telemetry gauges.
  const auto snap = registry.snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "drift.out_of_band") {
      EXPECT_EQ(value, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DriftMonitor, QuietOnTheModelRate) {
  trace::DriftConfig config;
  config.width = 64;
  config.k = 4;  // high flag probability, so in-band traffic is testable
  config.window = 4096;
  trace::DriftMonitor monitor(config);
  const double expected = monitor.expected_rate();
  ASSERT_GT(expected, 0.0);

  // Feed batches whose flag count matches the model exactly (the
  // per-window residual stays far inside the ±4σ band).
  const auto per_window =
      static_cast<std::uint64_t>(std::llround(expected * 4096));
  for (int w = 0; w < 8; ++w) {
    monitor.record_batch(4096 - per_window, 0);
    monitor.record_batch(per_window, per_window);
  }
  const auto status = monitor.status();
  EXPECT_EQ(status.windows, 8u);
  EXPECT_EQ(status.windows_out_of_band, 0u);
  EXPECT_FALSE(status.out_of_band);
}

TEST(DriftMonitor, ServiceIntegrationScreamsOnAdversarialOperands) {
  trace::DriftConfig drift_config;
  drift_config.width = 64;
  drift_config.k = 8;
  drift_config.window = 256;
  telemetry::Registry registry;
  trace::DriftMonitor monitor(drift_config, &registry, nullptr);

  auto config = pump_config(64, 8);
  config.drift = &monitor;
  {
    service::AdderService service(config, &registry);
    run_all_propagate(service, 64, 512);
  }
  const auto status = monitor.status();
  EXPECT_GE(status.windows, 2u);
  EXPECT_EQ(status.windows_out_of_band, status.windows);
  EXPECT_TRUE(status.out_of_band);
}

TEST(TracePrometheus, NameSanitization) {
  EXPECT_EQ(telemetry::prometheus_name("service.latency_ns"),
            "service_latency_ns");
  EXPECT_EQ(telemetry::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(telemetry::prometheus_name("a-b c/d"), "a_b_c_d");
}

TEST(TracePrometheus, ExposesCountersGaugesAndSummaries) {
  telemetry::Registry registry;
  registry.counter("service.submitted").increment(42);
  registry.gauge("service.queue_depth").set(17);
  auto& histogram = registry.histogram("service.latency_ns");
  for (int i = 1; i <= 100; ++i) histogram.record(i);

  const std::string text = telemetry::to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE vlsa_service_submitted counter"),
            std::string::npos);
  EXPECT_NE(text.find("vlsa_service_submitted 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vlsa_service_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("vlsa_service_queue_depth 17"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vlsa_service_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("vlsa_service_latency_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("vlsa_service_latency_ns_sum 5050"),
            std::string::npos);
  EXPECT_NE(text.find("vlsa_service_latency_ns_count 100"),
            std::string::npos);
  // Histogram min/max ride along as gauges (not derivable from the
  // quantile lines, which are bucket lower bounds).
  EXPECT_NE(text.find("vlsa_service_latency_ns_min 1"), std::string::npos);
  EXPECT_NE(text.find("vlsa_service_latency_ns_max 100"),
            std::string::npos);

  // Determinism: equal snapshots render to identical bytes.
  EXPECT_EQ(text, telemetry::to_prometheus(registry.snapshot()));
}

TEST(TracePrometheus, ReporterWritesTheMetricsFile) {
  telemetry::Registry registry;
  registry.counter("reporter.test").increment(7);
  const std::string path =
      testing::TempDir() + "vlsa_metrics_reporter_test.prom";
  {
    telemetry::MetricsReporter reporter(
        registry, path, std::chrono::milliseconds(10));
    // stop() performs a final synchronous write, so the file exists
    // even if no periodic tick fired.
    reporter.stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("vlsa_reporter_test 7"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vlsa
