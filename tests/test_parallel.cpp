// The parallel substrate: RNG substreams, the thread pool, and the
// reproducibility contract of the batch Monte-Carlo driver — same seed
// must mean bit-identical tallies no matter how many threads ran — plus
// the thread safety of SpeculativeAdder's statistics counters.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/aca.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "workloads/batch_monte_carlo.hpp"

namespace vlsa {
namespace {

using core::SpeculativeAdder;
using util::Rng;
using util::ThreadPool;
using workloads::BatchMcConfig;
using workloads::run_batch_monte_carlo;

TEST(RngSplit, IsDeterministicAndLeavesParentUntouched) {
  Rng parent(42);
  Rng control(42);

  Rng child_a = parent.split(7);
  Rng child_b = parent.split(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64());
  }

  // split is const: the parent's own sequence is exactly what it would
  // have been without any splitting.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(parent.next_u64(), control.next_u64());
  }
}

TEST(RngSplit, DistinctStreamsAndDistinctParentsDiverge) {
  Rng parent(42);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t stream = 0; stream < 256; ++stream) {
    firsts.insert(parent.split(stream).next_u64());
  }
  // All 256 substreams start differently (a collision here would mean
  // shards silently sharing operands).
  EXPECT_EQ(firsts.size(), 256u);

  // The substream depends on the parent state, not just the index.
  Rng other(43);
  EXPECT_NE(parent.split(0).next_u64(), other.split(0).next_u64());
}

TEST(RngSplit, ChildIsNotAPrefixOfTheParentStream) {
  Rng parent(1234);
  Rng child = parent.split(0);
  Rng control(1234);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff = any_diff || (child.next_u64() != control.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> seen(100);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count, &seen, i] {
      seen[i].fetch_add(1);
      count.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(ThreadPool, WaitIdleRethrowsFirstJobException) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i == 4) throw std::runtime_error("job 4 failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);  // the failure does not cancel other jobs
  // The pool is reusable after an error.
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ParallelForShards, CoversAllShardsOnAnyThreadCount) {
  for (int threads : {1, 2, 13}) {
    std::vector<std::atomic<int>> hits(57);
    util::parallel_for_shards(57, threads,
                              [&](int shard) { hits[shard].fetch_add(1); });
    for (int s = 0; s < 57; ++s) {
      ASSERT_EQ(hits[s].load(), 1) << "threads=" << threads << " s=" << s;
    }
  }
}

TEST(BatchMonteCarlo, TalliesAreIdenticalAcrossThreadCounts) {
  // Several shards' worth of work (512 batches/shard) so the schedule
  // actually interleaves, small enough to run three times.  Lanes are
  // pinned so the shard count doesn't depend on the machine's SIMD
  // tier (the lane count is part of the stream; the thread count must
  // not be).
  BatchMcConfig config;
  config.width = 64;
  config.window = 6;
  config.trials = 200'000;
  config.seed = 0xabcdef;
  config.threads = 1;
  config.lanes = 64;
  const auto base = run_batch_monte_carlo(config);
  EXPECT_GE(base.tally.trials, config.trials);
  EXPECT_GT(base.shards, 1);

  for (int threads : {4, 13}) {
    config.threads = threads;
    const auto got = run_batch_monte_carlo(config);
    EXPECT_EQ(got.tally.trials, base.tally.trials) << threads;
    EXPECT_EQ(got.tally.flagged, base.tally.flagged) << threads;
    EXPECT_EQ(got.tally.wrong, base.tally.wrong) << threads;
    EXPECT_EQ(got.tally.run_histogram, base.tally.run_histogram) << threads;
  }
}

TEST(BatchMonteCarlo, TalliesAreInternallyConsistent) {
  BatchMcConfig config;
  config.width = 32;
  config.window = 4;
  config.trials = 100'000;
  config.threads = 2;
  const auto got = run_batch_monte_carlo(config);

  // Soundness per tally: a wrong sum implies a flag.
  EXPECT_LE(got.tally.wrong, got.tally.flagged);
  EXPECT_LE(got.tally.flagged, got.tally.trials);

  // The run histogram partitions the trials, and every trial with a
  // chain >= k must be exactly the flagged count.
  long long histogram_total = 0, chains_ge_k = 0;
  for (std::size_t run = 0; run < got.tally.run_histogram.size(); ++run) {
    histogram_total += got.tally.run_histogram[run];
    if (static_cast<int>(run) >= config.window) {
      chains_ge_k += got.tally.run_histogram[run];
    }
  }
  EXPECT_EQ(histogram_total, got.tally.trials);
  EXPECT_EQ(chains_ge_k, got.tally.flagged);
}

TEST(BatchMonteCarlo, ExplicitLaneCountsAgreeStatistically) {
  // The lane count is part of the RNG stream, so wider runs are not
  // trial-for-trial identical to 64-lane ones — but the flag rate is an
  // estimate of the same probability (Eq. 2 of the paper) and must
  // agree within Monte-Carlo error.  The result also records which
  // lane count / ISA tier produced it (bench sidecar provenance).
  BatchMcConfig config;
  config.width = 64;
  config.window = 6;
  config.trials = 400'000;
  config.seed = 0x1a9e5;
  config.threads = 2;
  double rates[2];
  const int lane_options[2] = {64, 256};
  for (int i = 0; i < 2; ++i) {
    config.lanes = lane_options[i];
    const auto got = run_batch_monte_carlo(config);
    EXPECT_EQ(got.lanes, lane_options[i]);
    EXPECT_EQ(got.isa,
              sim::resolved_isa(sim::active_isa(), lane_options[i]));
    EXPECT_GE(got.tally.trials, config.trials);
    EXPECT_EQ(got.tally.trials % lane_options[i], 0);
    rates[i] = static_cast<double>(got.tally.flagged) /
               static_cast<double>(got.tally.trials);
  }
  // ER(64, 6) ~ 0.2; with 4e5 trials the standard error is ~6e-4.
  EXPECT_NEAR(rates[0], rates[1], 0.01);
}

TEST(BatchMonteCarlo, RejectsBadLaneCounts) {
  BatchMcConfig config;
  config.width = 8;
  config.trials = 1000;
  for (int lanes : {-64, 32, 96, 1024}) {
    config.lanes = lanes;
    EXPECT_THROW(run_batch_monte_carlo(config), std::invalid_argument)
        << lanes;
  }
}

TEST(BatchMonteCarlo, SubtractPathRuns) {
  BatchMcConfig config;
  config.width = 64;
  config.window = 8;
  config.trials = 64 * 100;
  config.subtract = true;
  config.collect_runs = false;
  config.lanes = 64;  // keep trials an exact multiple of the batch
  const auto got = run_batch_monte_carlo(config);
  EXPECT_EQ(got.tally.trials, config.trials);
  EXPECT_LE(got.tally.wrong, got.tally.flagged);
}

TEST(SpeculativeAdderConcurrency, CountersSurviveParallelHammering) {
  // 8 threads x 2000 additions on one shared adder: the relaxed-atomic
  // counters must neither lose nor invent increments, and the totals
  // must equal the sum of what each thread observed.
  SpeculativeAdder adder(64, 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::atomic<long long> flagged_seen{0}, wrong_seen{0};

  util::parallel_for_shards(kThreads, kThreads, [&](int shard) {
    Rng rng = Rng(0xc0ffee).split(shard);
    long long flagged = 0, wrong = 0;
    for (int i = 0; i < kPerThread; ++i) {
      const auto out = adder.add(rng.next_bits(64), rng.next_bits(64));
      flagged += out.flagged;
      wrong += out.was_wrong;
    }
    flagged_seen.fetch_add(flagged);
    wrong_seen.fetch_add(wrong);
  });

  EXPECT_EQ(adder.total_adds(), kThreads * kPerThread);
  EXPECT_EQ(adder.flagged_adds(), flagged_seen.load());
  EXPECT_EQ(adder.wrong_adds(), wrong_seen.load());
  EXPECT_LE(adder.wrong_adds(), adder.flagged_adds());
}

}  // namespace
}  // namespace vlsa
