// Tests for the cryptographic substrate: the pluggable 32-bit ACA, the
// TEA cipher, the text model, and the end-to-end ciphertext-only attack
// with exact and speculative decryption hardware.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/aca.hpp"
#include "crypto/adder32.hpp"
#include "crypto/attack.hpp"
#include "crypto/tea.hpp"
#include "crypto/text_model.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using crypto::Adder32;
using crypto::TeaCipher;
using util::BitVec;
using util::Rng;

TEST(Adder32, AcaMatchesBitVecModel) {
  Rng rng(41);
  for (int k : {1, 4, 8, 16, 31, 32, 40}) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64());
      const std::uint32_t b = static_cast<std::uint32_t>(rng.next_u64());
      const auto ref =
          core::aca_add(BitVec::from_u64(32, a), BitVec::from_u64(32, b), k);
      ASSERT_EQ(crypto::aca_add_u32(a, b, k),
                static_cast<std::uint32_t>(ref.sum.low_u64()))
          << "k=" << k << " a=" << a << " b=" << b;
    }
  }
}

TEST(Adder32, WindowThirtyTwoIsExact) {
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint32_t b = static_cast<std::uint32_t>(rng.next_u64());
    EXPECT_EQ(crypto::aca_add_u32(a, b, 32), a + b);
  }
}

TEST(Adder32, ExactModeAndSub) {
  const Adder32 exact = Adder32::exact();
  EXPECT_FALSE(exact.is_speculative());
  EXPECT_EQ(exact.add(7, 9), 16u);
  EXPECT_EQ(exact.sub(7, 9), static_cast<std::uint32_t>(7 - 9));
  const Adder32 spec = Adder32::speculative(8);
  EXPECT_TRUE(spec.is_speculative());
  EXPECT_EQ(spec.window(), 8);
  EXPECT_THROW(Adder32::speculative(0), std::invalid_argument);
}

TEST(Adder32, SpeculativeSubInvertsAddWhenUnflagged) {
  // sub(a+b, b) == a whenever the speculative chains stay short.
  Rng rng(43);
  const Adder32 spec = Adder32::speculative(12);
  int matches = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint32_t b = static_cast<std::uint32_t>(rng.next_u64());
    matches += spec.sub(a + b, b) == a;
  }
  EXPECT_GT(matches, trials * 97 / 100);  // k=12 at 32 bits: rare misses
}

TEST(Tea, EncryptDecryptRoundTrip) {
  const TeaCipher cipher({0x12345678, 0x9abcdef0, 0x0fedcba9, 0x87654321});
  std::uint32_t v0 = 0xdeadbeef, v1 = 0xcafebabe;
  cipher.encrypt_block(v0, v1);
  EXPECT_NE(v0, 0xdeadbeefu);  // actually encrypted
  cipher.decrypt_block(v0, v1, Adder32::exact());
  EXPECT_EQ(v0, 0xdeadbeefu);
  EXPECT_EQ(v1, 0xcafebabeu);
}

TEST(Tea, BufferRoundTripAndBlockIndependence) {
  const TeaCipher cipher({1, 2, 3, 4});
  std::vector<std::uint8_t> plain(64);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>('a' + i % 26);
  }
  auto cipher_text = cipher.encrypt(plain);
  EXPECT_NE(cipher_text, plain);
  EXPECT_EQ(cipher.decrypt(cipher_text, Adder32::exact()), plain);
  // ECB: flipping one ciphertext block only corrupts that block.
  cipher_text[8] ^= 0xff;
  const auto corrupted = cipher.decrypt(cipher_text, Adder32::exact());
  EXPECT_TRUE(std::equal(corrupted.begin(), corrupted.begin() + 8,
                         plain.begin()));
  EXPECT_TRUE(std::equal(corrupted.begin() + 16, corrupted.end(),
                         plain.begin() + 16));
  EXPECT_FALSE(std::equal(corrupted.begin() + 8, corrupted.begin() + 16,
                          plain.begin() + 8));
}

TEST(Tea, RejectsNonBlockSizes) {
  const TeaCipher cipher({1, 2, 3, 4});
  const std::vector<std::uint8_t> bad(7);
  EXPECT_THROW(cipher.encrypt(bad), std::invalid_argument);
}

TEST(Tea, WrongKeyProducesGarbage) {
  const TeaCipher good({1, 2, 3, 4});
  const TeaCipher bad({1, 2, 3, 5});
  std::vector<std::uint8_t> plain(32, static_cast<std::uint8_t>('e'));
  const auto ct = good.encrypt(plain);
  EXPECT_NE(bad.decrypt(ct, Adder32::exact()), plain);
}

TEST(TextModel, FrequenciesFormDistribution) {
  double total = 0;
  for (char c = 'a'; c <= 'z'; ++c) total += crypto::english_frequency(c);
  total += crypto::english_frequency(' ');
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(crypto::english_frequency('e'), crypto::english_frequency('x'));
  EXPECT_EQ(crypto::english_frequency('!'), 0.0);
}

TEST(TextModel, GeneratedTextScoresFarBelowRandomBytes) {
  Rng rng(44);
  const std::string text = crypto::generate_english_like_text(4096, rng);
  std::vector<std::uint8_t> text_bytes(text.begin(), text.end());
  std::vector<std::uint8_t> random_bytes(4096);
  for (auto& b : random_bytes) b = static_cast<std::uint8_t>(rng.next_u64());
  const double text_score = crypto::chi_square_vs_english(text_bytes);
  const double random_score = crypto::chi_square_vs_english(random_bytes);
  EXPECT_LT(text_score * 100, random_score);
}

TEST(TextModel, EmptyBufferThrows) {
  EXPECT_THROW(crypto::chi_square_vs_english({}), std::invalid_argument);
}

class AttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(45);
    const std::string text = crypto::generate_english_like_text(4096, rng);
    plaintext_.assign(text.begin(), text.end());
    ciphertext_ = TeaCipher(true_key_).encrypt(plaintext_);
  }
  TeaCipher::Key true_key_{0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344};
  std::vector<std::uint8_t> plaintext_;
  std::vector<std::uint8_t> ciphertext_;
};

TEST_F(AttackTest, ExactAdderFindsKey) {
  crypto::AttackConfig config;
  config.candidate_keys = 32;
  const auto result =
      crypto::ciphertext_only_attack(ciphertext_, true_key_, config);
  EXPECT_EQ(result.true_key_rank, 1);
  EXPECT_LT(result.true_key_score * 10, result.best_decoy_score);
  EXPECT_EQ(result.wrong_blocks_true_key, 0);
}

TEST_F(AttackTest, SpeculativeAdderStillFindsKey) {
  // The paper's claim: ACA decryption corrupts a few blocks but cannot
  // perturb the corpus statistics enough to change the ranking.  One TEA
  // block chains 32 rounds x 8 speculative adds, so the per-add error is
  // amplified ~256x at the block level — the window must be chosen for
  // the *block* error budget (k = 14 gives a few percent of bad blocks).
  crypto::AttackConfig config;
  config.candidate_keys = 32;
  config.adder = Adder32::speculative(14);
  const auto result =
      crypto::ciphertext_only_attack(ciphertext_, true_key_, config);
  EXPECT_EQ(result.true_key_rank, 1);
  EXPECT_GT(result.wrong_blocks_true_key, 0);  // speculation did miss
  EXPECT_LT(result.wrong_blocks_true_key, result.total_blocks / 4);
  EXPECT_LT(result.true_key_score * 10, result.best_decoy_score);
}

TEST_F(AttackTest, TooAggressiveWindowCorruptsMostBlocks) {
  // The flip side — with k = 10 more than a quarter of the blocks decrypt
  // wrongly under the true key; the attack degrades.  This documents the
  // chained-add amplification that any deployment must budget for.
  crypto::AttackConfig config;
  config.candidate_keys = 8;
  config.adder = Adder32::speculative(10);
  const auto result =
      crypto::ciphertext_only_attack(ciphertext_, true_key_, config);
  EXPECT_GT(result.wrong_blocks_true_key, result.total_blocks / 4);
}

TEST_F(AttackTest, RankingIsSortedAndComplete) {
  crypto::AttackConfig config;
  config.candidate_keys = 16;
  const auto result =
      crypto::ciphertext_only_attack(ciphertext_, true_key_, config);
  ASSERT_EQ(result.ranking.size(), 16u);
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_LE(result.ranking[i - 1].chi_square, result.ranking[i].chi_square);
  }
  int true_count = 0;
  for (const auto& entry : result.ranking) true_count += entry.is_true_key;
  EXPECT_EQ(true_count, 1);
}

TEST_F(AttackTest, RejectsBadConfig) {
  crypto::AttackConfig config;
  config.candidate_keys = 1;
  EXPECT_THROW(crypto::ciphertext_only_attack(ciphertext_, true_key_, config),
               std::invalid_argument);
  config.candidate_keys = 4;
  EXPECT_THROW(crypto::ciphertext_only_attack({}, true_key_, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
