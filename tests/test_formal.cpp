// Formal equivalence checking: the in-repo CDCL solver, the structurally
// hashing CNF builder, and the miter over the netlist IR.
//
// The suite cross-checks the SAT layer against every independent oracle
// the repo has: the random-vector checker (differential, on seeded
// defects), the 64-lane simulator (counterexample replay and exhaustive
// truth tables on small random netlists), and the adder generators
// themselves (pairwise proofs).  Wide (256/512-bit) proofs live in
// test_formal_wide.cpp under the `slow` label; this file stays fast.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "adders/adders.hpp"
#include "core/aca_netlist.hpp"
#include "netlist/equiv.hpp"
#include "netlist/formal/cnf.hpp"
#include "netlist/formal/miter.hpp"
#include "netlist/formal/solver.hpp"
#include "netlist/simulator.hpp"
#include "netlist_test_util.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using netlist::CellKind;
using netlist::Netlist;
using netlist::formal::CnfBuilder;
using netlist::formal::FormalOptions;
using netlist::formal::FormalResult;
using netlist::formal::FormalVerdict;
using netlist::formal::Lit;
using netlist::formal::MiterSpec;
using netlist::formal::SatVerdict;
using netlist::formal::Solver;
using netlist::formal::check_equivalence_formal;
using netlist::formal::counterexample_bus;
using netlist::formal::negate;

// ---------------------------------------------------------------------
// Solver unit tests.

TEST(FormalSolver, TrivialSatAndModel) {
  Solver s;
  const Lit x = netlist::formal::make_lit(s.new_var(), false);
  const Lit y = netlist::formal::make_lit(s.new_var(), false);
  s.add_clause({x, y});
  s.add_clause({negate(x)});
  ASSERT_EQ(s.solve(), SatVerdict::Sat);
  EXPECT_FALSE(s.model_value(netlist::formal::var_of(x)));
  EXPECT_TRUE(s.model_value(netlist::formal::var_of(y)));
}

TEST(FormalSolver, TrivialUnsat) {
  Solver s;
  const Lit x = netlist::formal::make_lit(s.new_var(), false);
  s.add_clause({x});
  s.add_clause({negate(x)});
  EXPECT_EQ(s.solve(), SatVerdict::Unsat);
}

TEST(FormalSolver, AssumptionsAreTemporary) {
  Solver s;
  const Lit x = netlist::formal::make_lit(s.new_var(), false);
  const Lit y = netlist::formal::make_lit(s.new_var(), false);
  s.add_clause({x, y});
  const Lit assumptions[] = {negate(x), negate(y)};
  EXPECT_EQ(s.solve(assumptions), SatVerdict::Unsat);
  // The assumptions must not persist: the instance itself is SAT.
  EXPECT_EQ(s.solve(), SatVerdict::Sat);
}

TEST(FormalSolver, IncrementalClauseAddition) {
  Solver s;
  const Lit x = netlist::formal::make_lit(s.new_var(), false);
  const Lit y = netlist::formal::make_lit(s.new_var(), false);
  s.add_clause({x, y});
  ASSERT_EQ(s.solve(), SatVerdict::Sat);
  s.add_clause({negate(x)});
  ASSERT_EQ(s.solve(), SatVerdict::Sat);
  s.add_clause({negate(y)});
  EXPECT_EQ(s.solve(), SatVerdict::Unsat);
}

// ---------------------------------------------------------------------
// CNF builder: structural hashing and constant folding.

TEST(FormalCnf, HashingAndFolding) {
  CnfBuilder b;
  const Lit x = b.add_input();
  const Lit y = b.add_input();
  EXPECT_EQ(b.lit_and(x, y), b.lit_and(y, x));
  EXPECT_EQ(b.lit_and(x, x), x);
  EXPECT_EQ(b.lit_and(x, negate(x)), b.lit_false());
  EXPECT_EQ(b.lit_xor(x, x), b.lit_false());
  EXPECT_EQ(b.lit_xor(x, negate(x)), b.lit_true());
  // XNOR shares the XOR node, differing only in polarity.
  EXPECT_EQ(b.lit_xor(negate(x), y), negate(b.lit_xor(x, y)));
}

// ---------------------------------------------------------------------
// Miter proofs over the shipped generators.

TEST(Formal, AdderGeneratorsPairwiseEquivalent) {
  // Every architecture is proved, not sampled, equal to ripple-carry —
  // at an odd width so block-structured generators exercise their
  // tail-block paths.
  for (const int width : {21, 33}) {
    const auto reference =
        adders::build_adder(adders::AdderKind::RippleCarry, width);
    for (auto kind : adders::all_adder_kinds()) {
      const auto other = adders::build_adder(kind, width);
      const auto result = check_equivalence_formal(reference.nl, other.nl);
      EXPECT_EQ(result.verdict, FormalVerdict::Proven)
          << adders::adder_kind_name(kind) << " width " << width << ": "
          << result.summary();
      EXPECT_EQ(result.outputs_compared, width + 1);
    }
  }
}

TEST(Formal, AcaVsExactYieldsReplayableCounterexample) {
  // ACA(16,4) is *not* an exact adder; the miter must produce inputs
  // that the simulator confirms disagree.
  const auto exact = adders::build_adder(adders::AdderKind::KoggeStone, 16);
  const auto aca = core::build_aca(16, 4);
  const auto result = check_equivalence_formal(aca.nl, exact.nl);
  ASSERT_EQ(result.verdict, FormalVerdict::Counterexample)
      << result.summary();
  EXPECT_FALSE(result.mismatched_output.empty());

  const auto a = counterexample_bus(aca.nl, result.counterexample, "a");
  const auto b = counterexample_bus(aca.nl, result.counterexample, "b");
  const auto aca_out = testing::run_adder_netlist(
      aca.nl, aca.a, aca.b, aca.sum, aca.carry_out, {{a, b}});
  const auto exact_out = testing::run_adder_netlist(
      exact.nl, exact.a, exact.b, exact.sum, exact.carry_out, {{a, b}});
  EXPECT_TRUE(aca_out[0].sum != exact_out[0].sum ||
              aca_out[0].carry_out != exact_out[0].carry_out)
      << "counterexample a=0x" << a.to_hex() << " b=0x" << b.to_hex()
      << " does not replay";
}

TEST(Formal, AcaConditionallyExactUnderFlagZero) {
  // The paper's central claim: whenever ER = 0 the speculative sum is
  // the exact sum.  Proven, not sampled, at width 64.
  const auto exact = adders::build_adder(adders::AdderKind::RippleCarry, 64);
  const auto aca = core::build_aca(64, 6, true);
  MiterSpec spec;
  spec.assume_zero = {"error"};
  const auto result = check_equivalence_formal(aca.nl, exact.nl, spec);
  EXPECT_EQ(result.verdict, FormalVerdict::Proven) << result.summary();
  // sum[0..63] + cout, with "error" assumed rather than compared.
  EXPECT_EQ(result.outputs_compared, 65);
}

TEST(Formal, VlsaRecoveryPathIsExact) {
  const auto exact = adders::build_adder(adders::AdderKind::RippleCarry, 64);
  const auto vlsa = core::build_vlsa(64, 6);
  MiterSpec spec;
  spec.ignore_unmatched_outputs = true;  // skip spec_sum/error/valid
  const auto result = check_equivalence_formal(vlsa.nl, exact.nl, spec);
  EXPECT_EQ(result.verdict, FormalVerdict::Proven) << result.summary();
  EXPECT_EQ(result.outputs_compared, 65);
}

TEST(Formal, SweepingIsOptionalAndAgrees) {
  FormalOptions no_sweep;
  no_sweep.sweep = false;
  const auto exact = adders::build_adder(adders::AdderKind::RippleCarry, 32);
  const auto cla = adders::build_adder(adders::AdderKind::CarryLookahead4, 32);
  EXPECT_EQ(check_equivalence_formal(exact.nl, cla.nl, {}, no_sweep).verdict,
            FormalVerdict::Proven);
  const auto aca = core::build_aca(16, 4);
  const auto exact16 =
      adders::build_adder(adders::AdderKind::RippleCarry, 16);
  EXPECT_EQ(
      check_equivalence_formal(aca.nl, exact16.nl, {}, no_sweep).verdict,
      FormalVerdict::Counterexample);
}

TEST(Formal, ConflictBudgetYieldsUnknown) {
  FormalOptions options;
  options.conflict_limit = 1;
  options.sweep = false;
  const auto a = adders::build_adder(adders::AdderKind::RippleCarry, 64);
  const auto b = adders::build_adder(adders::AdderKind::KoggeStone, 64);
  const auto result = check_equivalence_formal(a.nl, b.nl, {}, options);
  EXPECT_EQ(result.verdict, FormalVerdict::Unknown) << result.summary();
  EXPECT_FALSE(result.mismatched_output.empty());  // names the timed-out slice
}

TEST(Formal, PortMismatchNamesTheOffendingPort) {
  const auto a9 = adders::build_adder(adders::AdderKind::KoggeStone, 9);
  const auto a8 = adders::build_adder(adders::AdderKind::KoggeStone, 8);
  try {
    check_equivalence_formal(a9.nl, a8.nl);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("a[8]"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------
// Differential: seeded single-gate defects.  Every defect must be found
// SAT by the miter, agree with the random checker, and replay in the
// simulator; the clean pair must stay UNSAT.

// Invert the driver of output `port` in place (the polarity-flipped
// sibling of its cell kind).  Returns false for kinds without one.
bool invert_output_driver(Netlist& nl, const std::string& port) {
  const netlist::NetId net = nl.find_output(port);
  if (net == netlist::kNoNet) return false;
  auto& gate = nl.unchecked_gate(net);
  switch (gate.kind) {
    case CellKind::Xor2:  gate.kind = CellKind::Xnor2; return true;
    case CellKind::Xnor2: gate.kind = CellKind::Xor2;  return true;
    case CellKind::And2:  gate.kind = CellKind::Nand2; return true;
    case CellKind::Nand2: gate.kind = CellKind::And2;  return true;
    case CellKind::Or2:   gate.kind = CellKind::Nor2;  return true;
    case CellKind::Nor2:  gate.kind = CellKind::Or2;   return true;
    case CellKind::Buf:   gate.kind = CellKind::Inv;   return true;
    case CellKind::Inv:   gate.kind = CellKind::Buf;   return true;
    case CellKind::Mux2:  // swap the data legs (conditional-sum drivers)
      std::swap(gate.inputs[1], gate.inputs[2]);
      return true;
    default: return false;
  }
}

TEST(Formal, SeededDefectsDifferentialAgainstRandomChecker) {
  const int width = 24;
  const auto reference =
      adders::build_adder(adders::AdderKind::RippleCarry, width);
  for (auto kind : {adders::AdderKind::KoggeStone,
                    adders::AdderKind::BrentKung,
                    adders::AdderKind::ConditionalSum}) {
    // Clean pair: both checkers agree on equivalent.
    auto circuit = adders::build_adder(kind, width);
    ASSERT_EQ(check_equivalence_formal(reference.nl, circuit.nl).verdict,
              FormalVerdict::Proven)
        << adders::adder_kind_name(kind);
    ASSERT_TRUE(
        netlist::check_equivalence(reference.nl, circuit.nl).equivalent);

    // Defect pair: a single inverted output driver must flip both
    // verdicts, and the formal counterexample must replay.
    for (const char* port : {"sum[0]", "sum[13]", "sum[23]"}) {
      auto broken = adders::build_adder(kind, width);
      ASSERT_TRUE(invert_output_driver(broken.nl, port))
          << adders::adder_kind_name(kind) << " " << port;
      const auto formal =
          check_equivalence_formal(reference.nl, broken.nl);
      ASSERT_EQ(formal.verdict, FormalVerdict::Counterexample)
          << adders::adder_kind_name(kind) << " " << port;
      EXPECT_FALSE(
          netlist::check_equivalence(reference.nl, broken.nl).equivalent)
          << adders::adder_kind_name(kind) << " " << port;

      const auto a =
          counterexample_bus(reference.nl, formal.counterexample, "a");
      const auto b =
          counterexample_bus(reference.nl, formal.counterexample, "b");
      const auto good = testing::run_adder_netlist(
          reference.nl, reference.a, reference.b, reference.sum,
          reference.carry_out, {{a, b}});
      const auto bad = testing::run_adder_netlist(
          broken.nl, broken.a, broken.b, broken.sum, broken.carry_out,
          {{a, b}});
      EXPECT_TRUE(good[0].sum != bad[0].sum ||
                  good[0].carry_out != bad[0].carry_out)
          << adders::adder_kind_name(kind) << " " << port;
    }
  }
}

TEST(Formal, WideSeededDefectReplaysAt256) {
  // Acceptance fixture: a single corrupted gate in a 256-bit prefix
  // adder yields a SAT counterexample whose operands reproduce the
  // mismatch in the simulator — far beyond exhaustive reach.
  const auto reference =
      adders::build_adder(adders::AdderKind::RippleCarry, 256);
  auto broken = adders::build_adder(adders::AdderKind::KoggeStone, 256);
  ASSERT_TRUE(invert_output_driver(broken.nl, "sum[137]"));
  const auto result = check_equivalence_formal(reference.nl, broken.nl);
  ASSERT_EQ(result.verdict, FormalVerdict::Counterexample)
      << result.summary();
  EXPECT_EQ(result.mismatched_output, "sum[137]");

  const auto a = counterexample_bus(reference.nl, result.counterexample, "a");
  const auto b = counterexample_bus(reference.nl, result.counterexample, "b");
  const auto good = testing::run_adder_netlist(
      reference.nl, reference.a, reference.b, reference.sum,
      reference.carry_out, {{a, b}});
  const auto bad = testing::run_adder_netlist(
      broken.nl, broken.a, broken.b, broken.sum, broken.carry_out, {{a, b}});
  EXPECT_NE(good[0].sum.bit(137), bad[0].sum.bit(137));
}

// ---------------------------------------------------------------------
// Property fuzz: on netlists small enough to enumerate, the SAT verdict
// must match the exhaustive truth table exactly.

Netlist random_netlist(std::uint64_t seed, int n_inputs, int n_gates,
                       int n_outputs) {
  util::Rng rng(seed);
  Netlist nl("fuzz");
  std::vector<netlist::NetId> nets;
  for (int i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.add_input("x[" + std::to_string(i) + "]"));
  }
  for (int g = 0; g < n_gates; ++g) {
    const auto pick = [&] {
      return nets[static_cast<std::size_t>(rng.next_below(nets.size()))];
    };
    netlist::NetId id;
    switch (rng.next_below(8)) {
      case 0: id = nl.and2(pick(), pick()); break;
      case 1: id = nl.or2(pick(), pick()); break;
      case 2: id = nl.xor2(pick(), pick()); break;
      case 3: id = nl.nand2(pick(), pick()); break;
      case 4: id = nl.xnor2(pick(), pick()); break;
      case 5: id = nl.mux2(pick(), pick(), pick()); break;
      case 6: id = nl.aoi21(pick(), pick(), pick()); break;
      default: id = nl.inv(pick()); break;
    }
    nets.push_back(id);
  }
  for (int o = 0; o < n_outputs; ++o) {
    nl.mark_output(nets[nets.size() - 1 - static_cast<std::size_t>(o)],
                   "y[" + std::to_string(o) + "]");
  }
  return nl;
}

// Exhaustively compare two netlists with identical interfaces; returns
// true iff they agree on every assignment.
bool exhaustively_equal(const Netlist& lhs, const Netlist& rhs) {
  const netlist::Simulator sl(lhs);
  const netlist::Simulator sr(rhs);
  const std::size_t n = lhs.inputs().size();
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t base = 0; base < total; base += 64) {
    const int lanes = static_cast<int>(std::min<std::uint64_t>(64, total - base));
    std::vector<std::uint64_t> stim(n, 0);
    for (int lane = 0; lane < lanes; ++lane) {
      const std::uint64_t v = base + static_cast<std::uint64_t>(lane);
      for (std::size_t i = 0; i < n; ++i) {
        stim[i] |= ((v >> i) & 1) << lane;
      }
    }
    const auto lo = sl.eval_outputs(stim);
    const auto ro = sr.eval_outputs(stim);
    const std::uint64_t mask =
        lanes == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << lanes) - 1);
    for (std::size_t o = 0; o < lo.size(); ++o) {
      if ((lo[o] ^ ro[o]) & mask) return false;
    }
  }
  return true;
}

TEST(Formal, RandomNetlistVerdictMatchesExhaustiveEnumeration) {
  int counterexamples = 0;
  int proofs = 0;
  for (std::uint64_t iter = 0; iter < 60; ++iter) {
    const int n_inputs = 4 + static_cast<int>(iter % 7);   // 4..10
    const int n_gates = 12 + static_cast<int>(iter % 25);
    const int n_outputs = 1 + static_cast<int>(iter % 3);
    const std::uint64_t seed = 0x5eed0000 + iter;
    const Netlist lhs = random_netlist(seed, n_inputs, n_gates, n_outputs);
    // Every third pair is an identical reconstruction (guaranteed
    // Proven); the rest are independent circuits over the same ports.
    const Netlist rhs = random_netlist(iter % 3 == 0 ? seed : ~seed,
                                       n_inputs, n_gates, n_outputs);
    const auto result = check_equivalence_formal(lhs, rhs);
    ASSERT_NE(result.verdict, FormalVerdict::Unknown);
    const bool equal = exhaustively_equal(lhs, rhs);
    ASSERT_EQ(result.verdict == FormalVerdict::Proven, equal)
        << "iter " << iter << ": " << result.summary();
    if (equal) {
      ++proofs;
    } else {
      ++counterexamples;
      // The returned assignment must be a genuine witness.
      const netlist::Simulator sl(lhs);
      const netlist::Simulator sr(rhs);
      std::vector<std::uint64_t> stim(static_cast<std::size_t>(n_inputs), 0);
      for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
        stim[i] = result.counterexample[i] ? 1 : 0;
      }
      const auto lo = sl.eval_outputs(stim);
      const auto ro = sr.eval_outputs(stim);
      bool differs = false;
      for (std::size_t o = 0; o < lo.size(); ++o) {
        differs = differs || ((lo[o] ^ ro[o]) & 1);
      }
      EXPECT_TRUE(differs) << "iter " << iter;
    }
  }
  // The mix must exercise both verdicts, or the fuzz proves nothing.
  EXPECT_GT(counterexamples, 0);
  EXPECT_GT(proofs, 0);
}

// ---------------------------------------------------------------------
// Random checker diagnostics (satellite fix): the failure message names
// the output and prints the witness grouped by bus.

TEST(Equiv, FailureMessageNamesOutputAndWitness) {
  const auto exact = adders::build_adder(adders::AdderKind::RippleCarry, 16);
  const auto aca = core::build_aca(16, 4);
  const auto result = netlist::check_equivalence(exact.nl, aca.nl, 1 << 16);
  ASSERT_FALSE(result.equivalent);
  ASSERT_FALSE(result.failure_message.empty());
  EXPECT_NE(result.failure_message.find(result.mismatched_output),
            std::string::npos)
      << result.failure_message;
  EXPECT_NE(result.failure_message.find("witness inputs:"),
            std::string::npos);
  // The witness buses are the hex of the stored counterexample bits
  // (decoded name-robustly via the formal helper, same convention).
  const auto a = counterexample_bus(exact.nl, result.counterexample, "a");
  const auto b = counterexample_bus(exact.nl, result.counterexample, "b");
  EXPECT_NE(result.failure_message.find("a=0x" + a.to_hex()),
            std::string::npos)
      << result.failure_message;
  EXPECT_NE(result.failure_message.find("b=0x" + b.to_hex()),
            std::string::npos)
      << result.failure_message;
}

TEST(Equiv, MessageEmptyWhenEquivalent) {
  const auto a1 = adders::build_adder(adders::AdderKind::KoggeStone, 8);
  const auto a2 = adders::build_adder(adders::AdderKind::BrentKung, 8);
  const auto result = netlist::check_equivalence(a1.nl, a2.nl);
  ASSERT_TRUE(result.equivalent);
  EXPECT_TRUE(result.failure_message.empty());
}

TEST(Equiv, PortMismatchNamesTheOffendingPort) {
  const auto a9 = adders::build_adder(adders::AdderKind::KoggeStone, 9);
  const auto a8 = adders::build_adder(adders::AdderKind::KoggeStone, 8);
  try {
    netlist::check_equivalence(a9.nl, a8.nl);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("a[8]"), std::string::npos)
        << e.what();
  }
  // The reverse direction names the port too (rhs-only port).
  try {
    netlist::check_equivalence(a8.nl, a9.nl);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("a[8]"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace vlsa
