// Tests for the netlist IR, the cell library, STA and the simulator's
// per-cell semantics.

#include <gtest/gtest.h>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/simulator.hpp"
#include "netlist/sta.hpp"

namespace vlsa {
namespace {

using netlist::CellKind;
using netlist::CellLibrary;
using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;
using netlist::Simulator;

TEST(CellLibrary, EverySpecIsSane) {
  const CellLibrary& lib = CellLibrary::umc18();
  for (int i = 0; i < netlist::kNumCellKinds; ++i) {
    const auto& spec = lib.spec(static_cast<CellKind>(i));
    EXPECT_GE(spec.fanin, 0);
    EXPECT_LE(spec.fanin, 3);
    EXPECT_GE(spec.area, 0.0);
    EXPECT_GE(spec.intrinsic_ns, 0.0);
    EXPECT_GE(spec.slope_ns, 0.0);
  }
}

TEST(CellLibrary, DelayGrowsWithFanout) {
  const CellLibrary& lib = CellLibrary::umc18();
  EXPECT_LT(lib.delay_ns(CellKind::Nand2, 1), lib.delay_ns(CellKind::Nand2, 4));
  // Fanout 0 (dangling) is charged like fanout 1.
  EXPECT_EQ(lib.delay_ns(CellKind::Inv, 0), lib.delay_ns(CellKind::Inv, 1));
}

TEST(CellLibrary, RelativeCellCosts) {
  const CellLibrary& lib = CellLibrary::umc18();
  // XOR must cost more than NAND in both delay and area — the paper's
  // "simple gates are faster than complex gates" argument rests on this.
  EXPECT_GT(lib.spec(CellKind::Xor2).intrinsic_ns,
            lib.spec(CellKind::Nand2).intrinsic_ns);
  EXPECT_GT(lib.spec(CellKind::Xor2).area, lib.spec(CellKind::Nand2).area);
}

TEST(Netlist, InputBusNamesAndOrder) {
  Netlist nl("m");
  const auto bus = nl.add_input_bus("a", 3);
  ASSERT_EQ(bus.size(), 3u);
  EXPECT_EQ(nl.inputs()[0].name, "a[0]");
  EXPECT_EQ(nl.inputs()[2].name, "a[2]");
  EXPECT_EQ(nl.find_input("a[1]"), bus[1]);
  EXPECT_EQ(nl.find_input("zzz"), kNoNet);
}

TEST(Netlist, OperandMustExist) {
  Netlist nl("m");
  EXPECT_THROW(nl.inv(5), std::invalid_argument);
  EXPECT_THROW(nl.mark_output(0, "x"), std::invalid_argument);
}

TEST(Netlist, ConstantsAreShared) {
  Netlist nl("m");
  EXPECT_EQ(nl.const0(), nl.const0());
  EXPECT_EQ(nl.const1(), nl.const1());
  EXPECT_NE(nl.const0(), nl.const1());
}

TEST(Netlist, NumCellsExcludesInputsAndConstants) {
  Netlist nl("m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.const0();
  const NetId x = nl.and2(a, b);
  nl.mark_output(x, "x");
  EXPECT_EQ(nl.num_cells(), 1);
  EXPECT_EQ(nl.num_nets(), 4);
}

TEST(Netlist, FanoutCountsIncludeOutputs) {
  Netlist nl("m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.and2(a, b);
  const NetId y = nl.or2(a, x);
  nl.mark_output(y, "y");
  nl.mark_output(x, "x_too");
  const auto fanout = nl.fanout_counts();
  EXPECT_EQ(fanout[static_cast<std::size_t>(a)], 2);  // and2 + or2
  EXPECT_EQ(fanout[static_cast<std::size_t>(b)], 1);
  EXPECT_EQ(fanout[static_cast<std::size_t>(x)], 2);  // or2 + output
  EXPECT_EQ(fanout[static_cast<std::size_t>(y)], 1);  // output only
}

TEST(Netlist, AndTreeOrTreeSemantics) {
  Netlist nl("m");
  std::vector<NetId> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const NetId all = nl.and_tree(ins);
  const NetId any = nl.or_tree(ins);
  nl.mark_output(all, "all");
  nl.mark_output(any, "any");

  Simulator sim(nl);
  // Lane 0: all ones.  Lane 1: all zero.  Lane 2: single one.
  std::vector<std::uint64_t> stim(7, 0);
  for (auto& w : stim) w |= 1;          // lane 0
  stim[3] |= 1u << 2;                   // lane 2
  const auto values = sim.eval(stim);
  EXPECT_TRUE(values[static_cast<std::size_t>(all)] & 1);
  EXPECT_TRUE(values[static_cast<std::size_t>(any)] & 1);
  EXPECT_FALSE((values[static_cast<std::size_t>(all)] >> 1) & 1);
  EXPECT_FALSE((values[static_cast<std::size_t>(any)] >> 1) & 1);
  EXPECT_FALSE((values[static_cast<std::size_t>(all)] >> 2) & 1);
  EXPECT_TRUE((values[static_cast<std::size_t>(any)] >> 2) & 1);
}

TEST(Netlist, EmptyTreesAreConstants) {
  Netlist nl("m");
  const NetId all = nl.and_tree({});
  const NetId any = nl.or_tree({});
  EXPECT_EQ(all, nl.const1());
  EXPECT_EQ(any, nl.const0());
}

TEST(Simulator, AllTwoInputCellTruthTables) {
  Netlist nl("m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  struct Case {
    NetId net;
    std::uint64_t expected;  // over lanes (a,b,c) = 000,001(a=1),010,...,111
  };
  // Lane index bit0 = a, bit1 = b, bit2 = c.
  const std::uint64_t A = 0b10101010, B = 0b11001100, C = 0b11110000;
  std::vector<Case> cases = {
      {nl.and2(a, b), A & B},
      {nl.or2(a, b), A | B},
      {nl.nand2(a, b), ~(A & B) & 0xff},
      {nl.nor2(a, b), ~(A | B) & 0xff},
      {nl.xor2(a, b), A ^ B},
      {nl.xnor2(a, b), ~(A ^ B) & 0xff},
      {nl.and3(a, b, c), A & B & C},
      {nl.or3(a, b, c), A | B | C},
      {nl.aoi21(a, b, c), ~((A & B) | C) & 0xff},
      {nl.oai21(a, b, c), ~((A | B) & C) & 0xff},
      {nl.mux2(a, b, c), (A & C) | (~A & B)},
      {nl.inv(a), ~A & 0xff},
      {nl.buf(b), B},
  };
  for (const auto& cs : cases) nl.mark_output(cs.net, "o" + std::to_string(cs.net));
  Simulator sim(nl);
  const auto values = sim.eval(std::vector<std::uint64_t>{A, B, C});
  for (const auto& cs : cases) {
    EXPECT_EQ(values[static_cast<std::size_t>(cs.net)] & 0xff, cs.expected)
        << "net " << cs.net;
  }
}

TEST(Sta, SingleGateDelay) {
  Netlist nl("m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.and2(a, b);
  nl.mark_output(x, "x");
  const auto t = netlist::analyze_timing(nl);
  const auto& lib = CellLibrary::umc18();
  EXPECT_DOUBLE_EQ(t.critical_delay_ns, lib.delay_ns(CellKind::And2, 1));
  EXPECT_EQ(t.logic_levels, 1);
  ASSERT_EQ(t.critical_path.size(), 2u);  // input -> and2
  EXPECT_EQ(t.critical_path.back(), x);
}

TEST(Sta, ChainAccumulatesAndFanoutPenalizes) {
  Netlist nl("chain");
  const NetId a = nl.add_input("a");
  NetId x = a;
  for (int i = 0; i < 5; ++i) x = nl.inv(x);
  nl.mark_output(x, "x");
  const auto t1 = netlist::analyze_timing(nl);
  const auto& lib = CellLibrary::umc18();
  EXPECT_NEAR(t1.critical_delay_ns, 5 * lib.delay_ns(CellKind::Inv, 1), 1e-12);
  EXPECT_EQ(t1.logic_levels, 5);

  // Adding a second consumer of the first inverter increases its load and
  // hence the critical delay.
  Netlist nl2("chain2");
  const NetId a2 = nl2.add_input("a");
  NetId y = nl2.inv(a2);
  const NetId extra = nl2.inv(y);
  NetId z = y;
  for (int i = 0; i < 4; ++i) z = nl2.inv(z);
  nl2.mark_output(z, "z");
  nl2.mark_output(extra, "extra");
  const auto t2 = netlist::analyze_timing(nl2);
  EXPECT_GT(t2.critical_delay_ns, t1.critical_delay_ns);
}

TEST(Sta, PicksWorstOutput) {
  Netlist nl("m");
  const NetId a = nl.add_input("a");
  const NetId fast = nl.inv(a);
  NetId slow = a;
  for (int i = 0; i < 3; ++i) slow = nl.xor2(slow, a);
  nl.mark_output(fast, "fast");
  nl.mark_output(slow, "slow");
  const auto t = netlist::analyze_timing(nl);
  EXPECT_EQ(t.critical_path.back(), slow);
}

TEST(Sta, AreaReportCountsCells) {
  Netlist nl("m");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.and2(a, b);
  const NetId y = nl.xor2(x, a);
  nl.mark_output(y, "y");
  const auto area = netlist::analyze_area(nl);
  const auto& lib = CellLibrary::umc18();
  EXPECT_EQ(area.num_cells, 2);
  EXPECT_DOUBLE_EQ(area.total_area, lib.spec(CellKind::And2).area +
                                        lib.spec(CellKind::Xor2).area);
  EXPECT_EQ(area.max_input_fanout, 2);  // `a` feeds both gates
}

TEST(Simulator, InputArityMismatchThrows) {
  Netlist nl("m");
  nl.add_input("a");
  Simulator sim(nl);
  EXPECT_THROW(sim.eval(std::vector<std::uint64_t>{}), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
