// Tests for the RNG and the table formatter.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "util/table.hpp"

namespace vlsa {
namespace {

using util::Rng;
using util::Table;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BoolRespectsProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, NextBitsHasRequestedWidthAndIsCanonical) {
  Rng rng(7);
  const auto v = rng.next_bits(100);
  EXPECT_EQ(v.width(), 100);
  // Canonical: adding zero must not disturb upper bits.
  EXPECT_EQ(v + util::BitVec(100), v);
}

TEST(Rng, NextBitsRoughlyHalfOnes) {
  Rng rng(8);
  long long ones = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) ones += rng.next_bits(256).popcount();
  const double mean = static_cast<double>(ones) / trials;
  EXPECT_NEAR(mean, 128.0, 3.0);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace vlsa
