// Tests for the operand distributions: reproducibility, structural
// properties of each distribution, the input-dependence of the ACA
// error rate they are designed to expose, trace parsing, and the
// open-loop load generator (the LoadGen suite also runs under the
// `tsan` preset).

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "core/aca.hpp"
#include "workloads/load_gen.hpp"
#include "workloads/operand_stream.hpp"

namespace vlsa {
namespace {

using workloads::Distribution;
using workloads::OperandStream;

TEST(OperandStream, ReproducibleForSameSeed) {
  for (Distribution d : workloads::all_distributions()) {
    OperandStream s1(d, 64, 9);
    OperandStream s2(d, 64, 9);
    for (int i = 0; i < 20; ++i) {
      const auto a = s1.next();
      const auto b = s2.next();
      EXPECT_EQ(a.first, b.first) << workloads::distribution_name(d);
      EXPECT_EQ(a.second, b.second);
    }
  }
}

TEST(OperandStream, WidthsAreRespected) {
  for (Distribution d : workloads::all_distributions()) {
    OperandStream s(d, 100, 1);
    for (int i = 0; i < 5; ++i) {
      const auto [a, b] = s.next();
      EXPECT_EQ(a.width(), 100);
      EXPECT_EQ(b.width(), 100);
    }
  }
}

TEST(OperandStream, SmallOperandsOnlyUseLowBits) {
  OperandStream s(Distribution::SmallOperands, 128, 2);
  for (int i = 0; i < 50; ++i) {
    const auto [a, b] = s.next();
    for (int bit = 32; bit < 128; ++bit) {
      ASSERT_FALSE(a.bit(bit));
      ASSERT_FALSE(b.bit(bit));
    }
  }
}

TEST(OperandStream, SparseDensities) {
  OperandStream low(Distribution::SparseLow, 256, 3);
  OperandStream high(Distribution::SparseHigh, 256, 3);
  long long low_ones = 0, high_ones = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    low_ones += low.next().first.popcount();
    high_ones += high.next().first.popcount();
  }
  EXPECT_NEAR(low_ones / (256.0 * trials), 0.125, 0.02);
  EXPECT_NEAR(high_ones / (256.0 * trials), 0.875, 0.02);
}

TEST(OperandStream, CounterIncrements) {
  OperandStream s(Distribution::Counter, 32, 4);
  const auto first = s.next();
  const auto second = s.next();
  EXPECT_EQ(first.first.low_u64(), 1u);
  EXPECT_EQ(second.first.low_u64(), 2u);
  EXPECT_EQ(first.second.low_u64(), 1u);
}

TEST(OperandStream, ComplementaryHasLongPropagateChains) {
  OperandStream s(Distribution::Complementary, 256, 5);
  for (int i = 0; i < 20; ++i) {
    const auto [a, b] = s.next();
    // With ~width/32 flips, expected chain length is ~width/(flips+1).
    EXPECT_GT(core::longest_propagate_chain(a, b), 16);
  }
}

TEST(OperandStream, ErrorRateIsInputDependent) {
  // The deployment caveat: at the same (n, k), benign distributions have
  // ~zero error while the adversarial one fails almost always.
  const int width = 256, k = 10, trials = 2000;
  auto wrong_rate = [&](Distribution d) {
    OperandStream s(d, width, 6);
    int wrong = 0;
    for (int i = 0; i < trials; ++i) {
      const auto [a, b] = s.next();
      wrong += !core::aca_is_exact(a, b, k);
    }
    return static_cast<double>(wrong) / trials;
  };
  EXPECT_LT(wrong_rate(Distribution::SmallOperands), 0.02);
  EXPECT_LT(wrong_rate(Distribution::Counter), 0.001);
  EXPECT_GT(wrong_rate(Distribution::Complementary), 0.9);
  const double uniform = wrong_rate(Distribution::Uniform);
  EXPECT_GT(uniform, 0.0);
  EXPECT_LT(uniform, 0.3);
}

TEST(TraceStream, ReplayWrapsAround) {
  std::vector<std::pair<util::BitVec, util::BitVec>> trace{
      {util::BitVec::from_u64(8, 1), util::BitVec::from_u64(8, 2)},
      {util::BitVec::from_u64(8, 3), util::BitVec::from_u64(8, 4)}};
  workloads::TraceStream stream(trace, 8);
  EXPECT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream.next().first.low_u64(), 1u);
  EXPECT_EQ(stream.next().first.low_u64(), 3u);
  EXPECT_EQ(stream.next().first.low_u64(), 1u);  // wrapped
}

TEST(TraceStream, TextRoundTrip) {
  const auto stream = workloads::TraceStream::from_text(
      "# captured trace\n"
      "00ff 0001\n"
      "dead beef\n");
  EXPECT_EQ(stream.width(), 16);
  EXPECT_EQ(stream.size(), 2u);
  const auto reparsed =
      workloads::TraceStream::from_text(stream.to_text());
  EXPECT_EQ(reparsed.to_text(), stream.to_text());
}

TEST(TraceStream, MixedDigitCountsArePadded) {
  auto stream = workloads::TraceStream::from_text("f 10\n");
  EXPECT_EQ(stream.width(), 8);
  const auto [a, b] = stream.next();
  EXPECT_EQ(a.low_u64(), 0xfu);
  EXPECT_EQ(b.low_u64(), 0x10u);
}

TEST(TraceStream, RejectsBadInput) {
  EXPECT_THROW(workloads::TraceStream::from_text(""), std::invalid_argument);
  EXPECT_THROW(workloads::TraceStream::from_text("onlyone\n"),
               std::invalid_argument);
  EXPECT_THROW(workloads::TraceStream({}, 8), std::invalid_argument);
  std::vector<std::pair<util::BitVec, util::BitVec>> bad{
      {util::BitVec(8), util::BitVec(9)}};
  EXPECT_THROW(workloads::TraceStream(bad, 8), std::invalid_argument);
}

TEST(TraceStream, ParseErrorsCarryLineNumbers) {
  const auto message_of = [](const std::string& text) {
    try {
      workloads::TraceStream::from_text(text);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string("(no error)");
  };
  // Missing second operand on line 3 (line 1 is a comment, line 2 ok).
  EXPECT_NE(message_of("# trace\nff 01\nabcd\n").find("line 3"),
            std::string::npos);
  EXPECT_NE(message_of("# trace\nff 01\nabcd\n").find("got one"),
            std::string::npos);
  // Invalid hex digit, reported with the offending operand.
  const auto bad_hex = message_of("ff 0x1\n");
  EXPECT_NE(bad_hex.find("line 1"), std::string::npos);
  EXPECT_NE(bad_hex.find("invalid hex digit 'x'"), std::string::npos);
  // Trailing garbage after the two operands.
  const auto garbage = message_of("ff 01\nff 01 02\n");
  EXPECT_NE(garbage.find("line 2"), std::string::npos);
  EXPECT_NE(garbage.find("trailing garbage"), std::string::npos);
}

TEST(TraceStream, CommentsAndBlanksAreSkipped) {
  // Whitespace-only lines, full-line comments, and trailing comments
  // after a complete operand pair are all fine.
  const auto stream = workloads::TraceStream::from_text(
      "# header\n"
      "\n"
      "   \n"
      "  # indented comment\n"
      "ff 01 # trailing comment\n");
  EXPECT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream.width(), 8);
}

TEST(OperandStream, RejectsBadWidth) {
  EXPECT_THROW(OperandStream(Distribution::Uniform, 0, 1),
               std::invalid_argument);
}

TEST(OperandStream, DistributionNamesUnique) {
  std::set<std::string> names;
  for (Distribution d : workloads::all_distributions()) {
    names.insert(workloads::distribution_name(d));
  }
  EXPECT_EQ(names.size(), workloads::all_distributions().size());
}

service::ServiceConfig loadgen_service_config(int workers) {
  service::ServiceConfig config;
  config.pipeline.width = 32;
  config.pipeline.window = 6;
  config.workers = workers;
  config.queue_capacity = 4096;
  return config;
}

TEST(LoadGen, SaturateOffersAndCompletesEverything) {
  service::AdderService service(loadgen_service_config(/*workers=*/2));
  workloads::LoadGenConfig load;
  load.arrival = workloads::ArrivalProcess::Saturate;
  load.requests = 5000;
  load.seed = 42;
  const auto report = workloads::run_load_gen(service, load);
  EXPECT_EQ(report.offered, 5000);
  EXPECT_EQ(report.accepted, 5000);  // Block policy: nothing rejected
  EXPECT_EQ(report.rejected, 0);
  EXPECT_GT(report.achieved_rate, 0.0);
  const auto snap = service.registry().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "service.completed") {
      EXPECT_EQ(value, 5000);
    }
  }
}

TEST(LoadGen, PoissonAtHighRateCompletesAll) {
  service::AdderService service(loadgen_service_config(/*workers=*/1));
  workloads::LoadGenConfig load;
  load.arrival = workloads::ArrivalProcess::Poisson;
  load.rate_per_sec = 2e6;  // far above service: exercises catch-up path
  load.requests = 3000;
  const auto report = workloads::run_load_gen(service, load);
  EXPECT_EQ(report.accepted + report.rejected, report.offered);
  EXPECT_EQ(report.offered, 3000);
  EXPECT_EQ(report.rejected, 0);
}

TEST(LoadGen, PhaseBreakdownSumsToTheTotals) {
  service::AdderService service(loadgen_service_config(/*workers=*/2));
  workloads::LoadGenConfig load;
  load.arrival = workloads::ArrivalProcess::Bursty;
  load.rate_per_sec = 500'000.0;
  load.requests = 5000;
  load.seed = 7;
  const auto report = workloads::run_load_gen(service, load);
  EXPECT_EQ(report.steady.offered + report.burst.offered, report.offered);
  EXPECT_EQ(report.steady.accepted + report.burst.accepted, report.accepted);
  EXPECT_EQ(report.steady.rejected + report.burst.rejected, report.rejected);
  // Both phases of the two-state process must actually occur.
  EXPECT_GT(report.steady.offered, 0);
  EXPECT_GT(report.burst.offered, 0);
  EXPECT_GE(report.steady.submit_stall_s, 0.0);
  EXPECT_GE(report.burst.submit_stall_s, 0.0);
}

TEST(LoadGen, RejectPolicyAttributesRejectionsToPhases) {
  auto config = loadgen_service_config(/*workers=*/1);
  config.queue_capacity = 16;  // tiny queue: overload must reject
  config.overflow = service::OverflowPolicy::Reject;
  service::AdderService service(config);
  workloads::LoadGenConfig load;
  load.arrival = workloads::ArrivalProcess::Saturate;
  load.requests = 20000;
  const auto report = workloads::run_load_gen(service, load);
  EXPECT_GT(report.rejected, 0);
  // Saturate has no burst state: everything lands in `steady`, so the
  // per-phase ledger carries the full rejection count.
  EXPECT_EQ(report.burst.offered, 0);
  EXPECT_EQ(report.steady.rejected, report.rejected);
}

TEST(LoadGen, BurstyRejectsImpossibleShape) {
  service::AdderService service(loadgen_service_config(/*workers=*/1));
  workloads::LoadGenConfig load;
  load.arrival = workloads::ArrivalProcess::Bursty;
  load.burst_factor = 20.0;
  load.burst_fraction = 0.1;  // 20 * 0.1 >= 1: off-state rate negative
  EXPECT_THROW(workloads::run_load_gen(service, load),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
