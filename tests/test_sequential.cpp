// Tests for sequential-netlist support: flip-flop plumbing, the
// cycle-accurate sequential simulator, sequential STA, HDL emission with
// clocks, DCE over registers — and the clocked Fig. 6 VLSA FSM verified
// against the behavioral model, operation by operation.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/aca.hpp"
#include "core/vlsa_sequential.hpp"
#include "netlist/emit.hpp"
#include "netlist/event_sim.hpp"
#include "netlist/opt.hpp"
#include "netlist/seq_sim.hpp"
#include "netlist/simulator.hpp"
#include "netlist/sta.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using netlist::CellKind;
using netlist::Netlist;
using netlist::SequentialSimulator;
using util::BitVec;
using util::Rng;

TEST(Dff, UnconnectedIsRejectedAtSimTime) {
  Netlist nl("m");
  nl.dff();
  EXPECT_THROW(SequentialSimulator{nl}, std::logic_error);
}

TEST(Dff, ConnectValidation) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto q = nl.dff();
  EXPECT_THROW(nl.connect_dff(a, a), std::invalid_argument);  // not a dff
  nl.connect_dff(q, a);
  EXPECT_NO_THROW(nl.check_dffs_connected());
  EXPECT_TRUE(nl.is_sequential());
  EXPECT_EQ(nl.num_dffs(), 1);
}

TEST(Dff, CombinationalToolsRejectSequential) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  nl.mark_output(nl.dff(a), "q");
  EXPECT_THROW(netlist::Simulator{nl}, std::invalid_argument);
  EXPECT_THROW(netlist::EventSimulator{nl}, std::invalid_argument);
}

TEST(SeqSim, ToggleFlipFlop) {
  Netlist nl("t");
  const auto q = nl.dff();
  nl.connect_dff(q, nl.inv(q));
  nl.mark_output(q, "q");
  SequentialSimulator sim(nl);
  std::vector<std::uint64_t> no_inputs;
  EXPECT_EQ(sim.step(no_inputs)[static_cast<std::size_t>(q)] & 1, 0u);
  EXPECT_EQ(sim.step(no_inputs)[static_cast<std::size_t>(q)] & 1, 1u);
  EXPECT_EQ(sim.step(no_inputs)[static_cast<std::size_t>(q)] & 1, 0u);
  sim.reset();
  EXPECT_EQ(sim.step(no_inputs)[static_cast<std::size_t>(q)] & 1, 0u);
}

TEST(SeqSim, TwoBitCounterCounts) {
  Netlist nl("c");
  const auto q0 = nl.dff();
  const auto q1 = nl.dff();
  nl.connect_dff(q0, nl.inv(q0));
  nl.connect_dff(q1, nl.xor2(q1, q0));
  nl.mark_output(q0, "b0");
  nl.mark_output(q1, "b1");
  SequentialSimulator sim(nl);
  std::vector<std::uint64_t> no_inputs;
  int expected = 0;
  for (int t = 0; t < 10; ++t) {
    const auto values = sim.step(no_inputs);
    const int got =
        static_cast<int>((values[static_cast<std::size_t>(q0)] & 1) |
                         ((values[static_cast<std::size_t>(q1)] & 1) << 1));
    EXPECT_EQ(got, expected & 3) << t;
    ++expected;
  }
}

TEST(SeqSim, LanesAreIndependent) {
  // Enable-gated register: each of the 64 lanes follows its own enable.
  Netlist nl("en");
  const auto en = nl.add_input("en");
  const auto d = nl.add_input("d");
  const auto q = nl.dff();
  nl.connect_dff(q, nl.mux2(en, q, d));
  nl.mark_output(q, "q");
  SequentialSimulator sim(nl);
  // Lane 0: enabled, lane 1: disabled.
  sim.step(std::vector<std::uint64_t>{0b01, 0b11});
  const auto values = sim.step(std::vector<std::uint64_t>{0b00, 0b00});
  EXPECT_EQ(values[static_cast<std::size_t>(q)] & 0b11, 0b01u);
}

TEST(SeqSta, PathClasses) {
  // in -> comb -> dff -> comb -> out, plus a feedthrough.
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.xor2(a, b);
  const auto q = nl.dff(x);
  const auto y = nl.and2(q, a);
  nl.mark_output(y, "y");
  nl.mark_output(nl.or2(a, b), "feedthrough");
  const auto report = netlist::analyze_sequential_timing(nl);
  EXPECT_GT(report.worst_in_to_reg_ns, 0.0);   // a^b + setup
  EXPECT_GT(report.worst_reg_to_out_ns, 0.0);  // clk->q + and2
  EXPECT_GT(report.worst_in_to_out_ns, 0.0);   // or2
  EXPECT_DOUBLE_EQ(report.worst_reg_to_reg_ns, 0.0);  // no such path
  EXPECT_GE(report.min_clock_ns, report.worst_in_to_reg_ns);
}

TEST(SeqEmit, VerilogAndVhdlAreClocked) {
  Netlist nl("ff");
  const auto a = nl.add_input("a");
  nl.mark_output(nl.dff(a), "q");
  const std::string v = netlist::to_verilog(nl);
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("reg "), std::string::npos);
  const std::string h = netlist::to_vhdl(nl);
  EXPECT_NE(h.find("clk : in std_logic"), std::string::npos);
  EXPECT_NE(h.find("rising_edge(clk)"), std::string::npos);
}

TEST(SeqOpt, DcePreservesSequentialBehaviour) {
  const auto v = core::build_sequential_vlsa(8, 3);
  const Netlist cleaned = netlist::remove_dead_gates(v.nl);
  EXPECT_EQ(cleaned.num_dffs(), v.nl.num_dffs());
  SequentialSimulator sim_a(v.nl);
  SequentialSimulator sim_b(cleaned);
  Rng rng(0x5eb);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::uint64_t> stim(v.nl.inputs().size());
    for (auto& w : stim) w = rng.next_u64();
    const auto va = sim_a.step(stim);
    const auto vb = sim_b.step(stim);
    for (std::size_t o = 0; o < v.nl.outputs().size(); ++o) {
      ASSERT_EQ(va[static_cast<std::size_t>(v.nl.outputs()[o].net)],
                vb[static_cast<std::size_t>(cleaned.outputs()[o].net)])
          << "cycle " << t << " output " << o;
    }
  }
}

// Drive the clocked VLSA with a stream of operations using the
// VALID/STALL handshake and check every presented result and its latency
// against the behavioral model.
class SequentialVlsaTest : public ::testing::TestWithParam<int> {};

TEST_P(SequentialVlsaTest, MatchesBehavioralStream) {
  const int width = 16;
  const int k = GetParam();
  const auto v = core::build_sequential_vlsa(width, k);
  SequentialSimulator sim(v.nl);
  const auto index = netlist::stim::input_index_map(v.nl);

  Rng rng(0x5ec + static_cast<std::uint64_t>(k));
  std::vector<std::pair<BitVec, BitVec>> ops;
  // Mix of random and adversarial operations.
  for (int i = 0; i < 40; ++i) {
    ops.push_back({rng.next_bits(width), rng.next_bits(width)});
  }
  BitVec chain_a(width), chain_b(width);
  chain_a.set_bit(0, true);
  chain_b.set_bit(0, true);
  for (int i = 1; i < width; ++i) chain_a.set_bit(i, true);
  ops.insert(ops.begin() + 5, {chain_a, chain_b});  // guaranteed flag

  std::size_t next_op = 0;      // next operand pair to present
  std::size_t completed = 0;    // results observed
  long long last_valid_cycle = -1;
  const int kLane = 0;
  bool first_valid_skipped = false;  // cycle 0 presents the reset sum

  for (long long cycle = 0; cycle < 400 && completed < ops.size(); ++cycle) {
    std::vector<std::uint64_t> stim(v.nl.inputs().size(), 0);
    if (next_op < ops.size()) {
      netlist::stim::load_operand(stim, index, v.a, ops[next_op].first,
                                  kLane);
      netlist::stim::load_operand(stim, index, v.b, ops[next_op].second,
                                  kLane);
    }
    const auto values = sim.step(stim);
    const bool valid =
        (values[static_cast<std::size_t>(v.valid)] >> kLane) & 1;
    const bool stall =
        (values[static_cast<std::size_t>(v.stall)] >> kLane) & 1;
    ASSERT_NE(valid, stall);  // Fig. 6: STALL is the complement of VALID
    if (!valid) continue;
    if (!first_valid_skipped) {
      // The reset state evaluates 0 + 0; its result is presented on the
      // first cycle and the op we drove this cycle is captured now.
      first_valid_skipped = true;
      next_op += 1;
      last_valid_cycle = cycle;
      continue;
    }
    // The presented sum is the exact sum of the previously captured op.
    const auto& [a, b] = ops[completed];
    const BitVec sum = netlist::stim::read_bus(values, v.sum, kLane);
    ASSERT_EQ(sum, a + b) << "op " << completed;
    // Latency: 1 cycle normally, 1 + 2 when the behavioral model flags.
    const long long cycles_taken = cycle - last_valid_cycle;
    const bool flagged = core::aca_flag(a, b, k);
    ASSERT_EQ(cycles_taken, flagged ? 3 : 1) << "op " << completed;
    last_valid_cycle = cycle;
    completed += 1;
    next_op += 1;
  }
  EXPECT_EQ(completed, ops.size());
}

INSTANTIATE_TEST_SUITE_P(Windows, SequentialVlsaTest,
                         ::testing::Values(3, 5, 8, 16));

TEST(SequentialVlsa, TimingReportShape) {
  const auto v = core::build_sequential_vlsa(32, 8);
  const auto report = netlist::analyze_sequential_timing(v.nl);
  EXPECT_GT(report.worst_reg_to_reg_ns, 0.0);   // ER -> capture -> regs
  // Every D pin goes through the capture mux, whose select is reg-fed, so
  // the conservative net-level classifier reports no pure in->reg paths.
  EXPECT_DOUBLE_EQ(report.worst_in_to_reg_ns, 0.0);
  EXPECT_GT(report.worst_reg_to_out_ns, 0.0);   // datapath to sum
  EXPECT_GT(report.min_clock_ns, 0.0);
  EXPECT_DOUBLE_EQ(report.min_clock_ns,
                   std::max({report.worst_reg_to_reg_ns,
                             report.worst_in_to_reg_ns,
                             report.worst_reg_to_out_ns}));
}

TEST(SequentialVlsa, RejectsBadDimensions) {
  EXPECT_THROW(core::build_sequential_vlsa(1, 3), std::invalid_argument);
  EXPECT_THROW(core::build_sequential_vlsa(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
