// Tests for the event-driven timing simulator: functional agreement with
// the bit-parallel simulator, hand-computed settle times, transport-delay
// event cancellation, and the data-dependent-delay property the paper's
// premise rests on (random carries are short, so the ripple adder settles
// in ~log n typical time despite its Θ(n) worst case).

#include <gtest/gtest.h>

#include <vector>

#include "adders/adders.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/event_sim.hpp"
#include "netlist/sta.hpp"
#include "util/rng.hpp"

namespace vlsa {
namespace {

using netlist::CellKind;
using netlist::CellLibrary;
using netlist::EventSimulator;
using netlist::Netlist;

TEST(EventSim, SettleInitialMatchesFunction) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.mark_output(nl.xor2(a, b), "x");
  nl.mark_output(nl.and2(a, b), "y");
  EventSimulator sim(nl);
  const auto out = sim.settle_initial({true, true});
  EXPECT_FALSE(out[0]);  // 1^1
  EXPECT_TRUE(out[1]);   // 1&1
}

TEST(EventSim, SingleGateTransitionTime) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.and2(a, b);
  nl.mark_output(x, "x");
  EventSimulator sim(nl);
  sim.settle_initial({false, true});
  const auto result = sim.apply({true, true});
  const double expected = CellLibrary::umc18().delay_ns(CellKind::And2, 1);
  EXPECT_DOUBLE_EQ(result.settle_ns, expected);
  EXPECT_TRUE(result.outputs[0]);
  EXPECT_EQ(result.events, 2);  // the input itself + the AND output
}

TEST(EventSim, NoChangeNoEvents) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  nl.mark_output(nl.inv(a), "x");
  EventSimulator sim(nl);
  sim.settle_initial({true});
  const auto result = sim.apply({true});
  EXPECT_EQ(result.events, 0);
  EXPECT_DOUBLE_EQ(result.settle_ns, 0.0);
}

TEST(EventSim, MaskedInputChangeStopsEarly) {
  // b flips but a = 0 masks it: the AND output never changes, so the
  // output settle time stays 0 even though an input event fired.
  Netlist nl("m");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.mark_output(nl.and2(a, b), "x");
  EventSimulator sim(nl);
  sim.settle_initial({false, false});
  const auto result = sim.apply({false, true});
  EXPECT_DOUBLE_EQ(result.settle_ns, 0.0);
  EXPECT_FALSE(result.outputs[0]);
}

TEST(EventSim, ChainSettleAccumulates) {
  Netlist nl("m");
  const auto a = nl.add_input("a");
  netlist::NetId x = a;
  for (int i = 0; i < 4; ++i) x = nl.inv(x);
  nl.mark_output(x, "x");
  EventSimulator sim(nl);
  sim.settle_initial({false});
  const auto result = sim.apply({true});
  EXPECT_DOUBLE_EQ(result.settle_ns,
                   4 * CellLibrary::umc18().delay_ns(CellKind::Inv, 1));
}

TEST(EventSim, FinalStateAlwaysMatchesFunctionalSim) {
  // Property: after any transition sequence, the event simulator's state
  // equals a fresh functional evaluation — on an adder with random
  // vectors (this exercises reconvergence and event cancellation).
  const auto adder = adders::build_adder(adders::AdderKind::KoggeStone, 16);
  EventSimulator sim(adder.nl);
  util::Rng rng(61);
  const std::size_t n_in = adder.nl.inputs().size();
  std::vector<bool> vec(n_in, false);
  sim.settle_initial(vec);
  for (int t = 0; t < 200; ++t) {
    for (std::size_t i = 0; i < n_in; ++i) vec[i] = rng.next_bool();
    const auto result = sim.apply(vec);
    // Fresh evaluation via a second simulator.
    EventSimulator fresh(adder.nl);
    const auto expect = fresh.settle_initial(vec);
    ASSERT_EQ(result.outputs, expect) << "transition " << t;
  }
}

TEST(EventSim, SettleNeverExceedsStaticCriticalPath) {
  for (auto kind :
       {adders::AdderKind::RippleCarry, adders::AdderKind::KoggeStone}) {
    const auto adder = adders::build_adder(kind, 32);
    const double critical =
        netlist::analyze_timing(adder.nl).critical_delay_ns;
    const auto stats = netlist::measure_settle_distribution(adder.nl, 300, 7);
    EXPECT_LE(stats.max_ns, critical + 1e-9)
        << adders::adder_kind_name(kind);
    EXPECT_GT(stats.mean_ns, 0.0);
  }
}

TEST(EventSim, RippleAverageSettleIsFarBelowWorstCase) {
  // The paper's premise, measured: a 64-bit ripple adder's *typical*
  // settle time is a small fraction of its critical path, because random
  // carry chains are ~log n long.
  const auto rca = adders::build_adder(adders::AdderKind::RippleCarry, 64);
  const double critical = netlist::analyze_timing(rca.nl).critical_delay_ns;
  const auto stats = netlist::measure_settle_distribution(rca.nl, 400, 8);
  EXPECT_LT(stats.mean_ns, 0.45 * critical);
}

TEST(EventSim, AdversarialCarryChainHitsWorstCase) {
  // a = 111...1, b: 0 -> 1 at bit 0 launches a full-length carry ripple.
  const int n = 32;
  const auto rca = adders::build_adder(adders::AdderKind::RippleCarry, n);
  EventSimulator sim(rca.nl);
  std::vector<bool> vec(rca.nl.inputs().size(), false);
  for (int i = 0; i < n; ++i) vec[static_cast<std::size_t>(i)] = true;  // a
  sim.settle_initial(vec);
  vec[static_cast<std::size_t>(n)] = true;  // b[0] flips
  const auto result = sim.apply(vec);
  const double critical = netlist::analyze_timing(rca.nl).critical_delay_ns;
  EXPECT_GT(result.settle_ns, 0.9 * critical);
}

TEST(EventSim, RejectsBadUsage) {
  Netlist nl("m");
  nl.add_input("a");
  EventSimulator sim(nl);
  EXPECT_THROW(sim.apply({true}), std::logic_error);
  EXPECT_THROW(sim.settle_initial({true, false}), std::invalid_argument);
  EXPECT_THROW(netlist::measure_settle_distribution(nl, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlsa
