// AVX2 instantiation of the bit-sliced kernels — the only translation
// unit compiled with -mavx2 (src/sim/CMakeLists.txt), so no 256-bit
// code can leak into paths a non-AVX2 CPU executes.  When the compiler
// lacks the flag this TU still builds and reports the tier absent.

#include "sim/wide_kernel.hpp"

namespace vlsa::sim::detail {

const Kernels* avx2_kernels() {
#if defined(__AVX2__)
  return make_kernels<Avx2Word>();
#else
  return nullptr;
#endif
}

}  // namespace vlsa::sim::detail
