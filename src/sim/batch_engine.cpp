#include "sim/batch_engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace vlsa::sim {

namespace {

void check_batch(const SlicedBatch& ops, int k) {
  if (ops.width < 1) {
    throw std::invalid_argument("batch engine: empty operands");
  }
  if (static_cast<int>(ops.a.size()) != ops.width ||
      static_cast<int>(ops.b.size()) != ops.width) {
    throw std::invalid_argument("batch engine: slice/width mismatch");
  }
  if (k < 1) {
    throw std::invalid_argument("batch engine: window must be >= 1");
  }
}

/// Lane mask of runs: after the doubling loop, r[i] has lane j set iff
/// lane j's propagate bits [i-k+1 .. i] are all 1.  OR over i (only
/// i >= k-1 can have a full window) is exactly the scalar ER flag.
std::uint64_t sliced_flag(const std::vector<std::uint64_t>& p, int k) {
  const int n = static_cast<int>(p.size());
  if (k > n) return 0;
  std::vector<std::uint64_t> r = p;  // r[i]: run of length t ends at i
  int t = 1;
  while (t < k) {
    const int s = std::min(t, k - t);
    // Descending i so r[i - s] is still the length-t value.
    for (int i = n - 1; i >= 0; --i) {
      r[i] = (i >= s) ? (r[i] & r[i - s]) : 0;
    }
    t += s;
  }
  std::uint64_t any = 0;
  for (int i = k - 1; i < n; ++i) any |= r[i];
  return any;
}

void eval(const std::vector<std::uint64_t>& a,
          const std::vector<std::uint64_t>& b, int k, std::uint64_t carry_in,
          int n, BatchResult& out) {
  out.width = n;
  out.sum_spec.assign(n, 0);
  out.sum_exact.assign(n, 0);
  out.carry_spec.assign(n, 0);

  // Propagate/generate slices (kept as locals: p and g are cheap to
  // recompute per use but the spec-carry loop reads them k times each).
  std::vector<std::uint64_t> p(n), g(n);
  for (int i = 0; i < n; ++i) {
    p[i] = a[i] ^ b[i];
    g[i] = a[i] & b[i];
  }

  // Exact carry chain: c_i = g_i | (p_i & c_{i-1}), c_{-1} = carry_in.
  std::uint64_t ec = carry_in;
  for (int i = 0; i < n; ++i) {
    out.sum_exact[i] = p[i] ^ ec;
    ec = g[i] | (p[i] & ec);
  }
  out.carry_out_exact = ec;

  // Speculative carries: each bit i ripples only its window
  // [max(0, i-k+1) .. i].  The seed entering the window is 0 when the
  // window is full-length (a k-propagate window speculates 0 — the error
  // source) and the architectural carry-in when the window is clamped at
  // bit 0 with fewer than k positions (a short chain to bit 0 *knows*
  // the carry-in).  Any generate/kill inside the window overwrites the
  // seed, so the two cases only differ on all-propagate windows —
  // exactly the scalar model's case split on the run length.
  std::uint64_t sc = carry_in;  // c_{i-1}; c_{-1} = carry_in
  for (int i = 0; i < n; ++i) {
    out.sum_spec[i] = p[i] ^ sc;
    const int lo = std::max(0, i - k + 1);
    std::uint64_t c = (i < k - 1) ? carry_in : 0;
    for (int j = lo; j <= i; ++j) {
      c = g[j] | (p[j] & c);
    }
    out.carry_spec[i] = c;
    sc = c;
  }
  out.carry_out_spec = sc;

  out.flagged = sliced_flag(p, k);

  out.wrong = out.carry_out_spec ^ out.carry_out_exact;
  for (int i = 0; i < n; ++i) {
    out.wrong |= out.sum_spec[i] ^ out.sum_exact[i];
  }
}

}  // namespace

void batch_aca_add_into(const SlicedBatch& ops, int k,
                        std::uint64_t carry_in, BatchResult& out) {
  check_batch(ops, k);
  eval(ops.a, ops.b, k, carry_in, ops.width, out);
}

BatchResult batch_aca_add(const SlicedBatch& ops, int k,
                          std::uint64_t carry_in) {
  BatchResult out;
  batch_aca_add_into(ops, k, carry_in, out);
  return out;
}

BatchResult batch_aca_sub(const SlicedBatch& ops, int k) {
  check_batch(ops, k);
  // a - b = a + ~b + 1 per lane; every slice word is fully populated
  // (64 lanes), so the lane-wise complement is a plain word complement.
  BatchResult out;
  std::vector<std::uint64_t> bc(ops.width);
  for (int i = 0; i < ops.width; ++i) bc[i] = ~ops.b[i];
  eval(ops.a, bc, k, /*carry_in=*/~std::uint64_t{0}, ops.width, out);
  return out;
}

std::uint64_t batch_aca_flag(const SlicedBatch& ops, int k) {
  check_batch(ops, k);
  std::vector<std::uint64_t> p(ops.width);
  for (int i = 0; i < ops.width; ++i) p[i] = ops.a[i] ^ ops.b[i];
  return sliced_flag(p, k);
}

std::array<int, kBatchLanes> batch_longest_runs(const SlicedBatch& ops) {
  check_batch(ops, /*k=*/1);
  const int n = ops.width;
  std::vector<std::uint64_t> p(n);
  for (int i = 0; i < n; ++i) p[i] = ops.a[i] ^ ops.b[i];

  std::array<int, kBatchLanes> runs{};
  // r[i]: lanes whose propagate run of length t ends at bit i.  Extend
  // one bit per round; a lane's longest run is the last t it survived.
  std::vector<std::uint64_t> r = p;
  for (int t = 1; t <= n; ++t) {
    std::uint64_t alive = 0;
    for (int i = t - 1; i < n; ++i) alive |= r[i];
    if (alive == 0) break;
    while (alive != 0) {
      const int lane = std::countr_zero(alive);
      runs[lane] = t;
      alive &= alive - 1;
    }
    for (int i = n - 1; i >= 1; --i) r[i] = r[i - 1] & p[i];
    r[0] = 0;
  }
  return runs;
}

namespace {

/// In-place 64x64 bit-matrix transpose (recursive block swaps, Hacker's
/// Delight 7-3), LSB-first indexing: afterwards bit c of w[r] is what
/// bit r of w[c] was.  384 word ops — the service dispatcher leans on
/// this; the bit-at-a-time loop it replaced cost ~64x more.
void transpose64x64(std::uint64_t* w) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((w[k] >> j) ^ w[k + j]) & m;
      w[k] ^= t << j;
      w[k + j] ^= t;
    }
  }
}

}  // namespace

SlicedBatch transpose_batch(
    const std::vector<std::pair<util::BitVec, util::BitVec>>& pairs,
    int width) {
  if (static_cast<int>(pairs.size()) > kBatchLanes) {
    throw std::invalid_argument("transpose_batch: more than 64 pairs");
  }
  for (const auto& [a, b] : pairs) {
    if (a.width() != width || b.width() != width) {
      throw std::invalid_argument("transpose_batch: operand width mismatch");
    }
  }
  SlicedBatch batch(width);
  const int limbs = (width + 63) / 64;
  std::array<std::uint64_t, kBatchLanes> ta{}, tb{};
  for (int limb = 0; limb < limbs; ++limb) {
    ta.fill(0);
    tb.fill(0);
    for (int lane = 0; lane < static_cast<int>(pairs.size()); ++lane) {
      ta[lane] = pairs[lane].first.limbs()[limb];
      tb[lane] = pairs[lane].second.limbs()[limb];
    }
    transpose64x64(ta.data());
    transpose64x64(tb.data());
    const int hi = std::min(64, width - limb * 64);
    for (int i = 0; i < hi; ++i) {
      batch.a[limb * 64 + i] = ta[i];
      batch.b[limb * 64 + i] = tb[i];
    }
  }
  return batch;
}

util::BitVec lane_value(const std::vector<std::uint64_t>& sliced, int width,
                        int lane) {
  if (lane < 0 || lane >= kBatchLanes) {
    throw std::invalid_argument("lane_value: lane out of range");
  }
  if (static_cast<int>(sliced.size()) < width) {
    throw std::invalid_argument("lane_value: slice shorter than width");
  }
  util::BitVec v(width);
  for (int i = 0; i < width; ++i) {
    v.set_bit(i, (sliced[i] >> lane) & 1);
  }
  return v;
}

std::vector<util::BitVec> lane_values(
    const std::vector<std::uint64_t>& sliced, int width) {
  if (static_cast<int>(sliced.size()) < width) {
    throw std::invalid_argument("lane_values: slice shorter than width");
  }
  std::vector<util::BitVec> lanes(kBatchLanes, util::BitVec(width));
  const int limbs = (width + 63) / 64;
  std::array<std::uint64_t, kBatchLanes> t{};
  for (int limb = 0; limb < limbs; ++limb) {
    t.fill(0);
    const int hi = std::min(64, width - limb * 64);
    for (int i = 0; i < hi; ++i) t[i] = sliced[limb * 64 + i];
    transpose64x64(t.data());
    for (int lane = 0; lane < kBatchLanes; ++lane) {
      lanes[static_cast<std::size_t>(lane)].limbs()[limb] = t[lane];
    }
  }
  return lanes;
}

void fill_uniform(util::Rng& rng, SlicedBatch& batch) {
  for (auto& word : batch.a) word = rng.next_u64();
  for (auto& word : batch.b) word = rng.next_u64();
}

}  // namespace vlsa::sim
