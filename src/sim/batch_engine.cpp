#include "sim/batch_engine.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "sim/wide_kernel.hpp"

namespace vlsa::sim {

// The evaluation recurrences live in wide_kernel.hpp, templated over a
// LaneWord; this file instantiates the scalar (64-lane) tier and hosts
// both public APIs.  The legacy 64-lane entry points below are exactly
// the wide path with one word per bit (stride 1, group offset 0) — one
// algorithm, every tier differentially tested against core::aca_*.

namespace detail {

const Kernels* scalar_kernels() { return make_kernels<ScalarWord>(); }

}  // namespace detail

namespace {

void check_batch(const SlicedBatch& ops, int k) {
  if (ops.width < 1) {
    throw std::invalid_argument("batch engine: empty operands");
  }
  if (static_cast<int>(ops.a.size()) != ops.width ||
      static_cast<int>(ops.b.size()) != ops.width) {
    throw std::invalid_argument("batch engine: slice/width mismatch");
  }
  if (k < 1) {
    throw std::invalid_argument("batch engine: window must be >= 1");
  }
}

void check_lanes(int lanes) {
  if (lanes < 64 || lanes > kMaxBatchLanes || lanes % 64 != 0) {
    throw std::invalid_argument(
        "batch engine: lanes must be a multiple of 64 in [64, 512]");
  }
}

void check_wide(const WideBatch& ops, int k) {
  if (ops.width < 1) {
    throw std::invalid_argument("batch engine: empty operands");
  }
  check_lanes(ops.lanes);
  const auto expect =
      static_cast<std::size_t>(ops.width) * static_cast<std::size_t>(
                                                ops.words());
  if (ops.a.size() != expect || ops.b.size() != expect) {
    throw std::invalid_argument("batch engine: slice/width/lanes mismatch");
  }
  if (k < 1) {
    throw std::invalid_argument("batch engine: window must be >= 1");
  }
}

/// Run the eval kernel group by group over a wide slice pair.
void wide_eval(const std::uint64_t* a, const std::uint64_t* b, int n,
               int lanes, int k, const std::uint64_t* carry_in,
               WideResult& out, Isa isa) {
  const int words = lanes / 64;
  out.width = n;
  out.lanes = lanes;
  const auto signal_words =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(words);
  out.sum_spec.assign(signal_words, 0);
  out.sum_exact.assign(signal_words, 0);
  out.carry_spec.assign(signal_words, 0);
  out.carry_out_spec.assign(static_cast<std::size_t>(words), 0);
  out.carry_out_exact.assign(static_cast<std::size_t>(words), 0);
  out.flagged.assign(static_cast<std::size_t>(words), 0);
  out.wrong.assign(static_cast<std::size_t>(words), 0);

  const detail::EvalOut eo{out.sum_spec.data(),       out.sum_exact.data(),
                           out.carry_spec.data(),     out.carry_out_spec.data(),
                           out.carry_out_exact.data(), out.flagged.data(),
                           out.wrong.data()};
  const detail::Kernels* kn = detail::kernels_for(isa, words);
  for (int w0 = 0; w0 < words; w0 += kn->group_words) {
    kn->eval(a, b, n, words, w0, k, carry_in, eo);
  }
}

}  // namespace

void batch_aca_add_into(const SlicedBatch& ops, int k,
                        std::uint64_t carry_in, BatchResult& out) {
  check_batch(ops, k);
  const int n = ops.width;
  out.width = n;
  out.sum_spec.assign(static_cast<std::size_t>(n), 0);
  out.sum_exact.assign(static_cast<std::size_t>(n), 0);
  out.carry_spec.assign(static_cast<std::size_t>(n), 0);
  const detail::EvalOut eo{out.sum_spec.data(),   out.sum_exact.data(),
                           out.carry_spec.data(), &out.carry_out_spec,
                           &out.carry_out_exact,  &out.flagged,
                           &out.wrong};
  detail::kernel_eval<detail::ScalarWord>(ops.a.data(), ops.b.data(), n,
                                          /*stride=*/1, /*w0=*/0, k,
                                          &carry_in, eo);
}

BatchResult batch_aca_add(const SlicedBatch& ops, int k,
                          std::uint64_t carry_in) {
  BatchResult out;
  batch_aca_add_into(ops, k, carry_in, out);
  return out;
}

BatchResult batch_aca_sub(const SlicedBatch& ops, int k) {
  check_batch(ops, k);
  // a - b = a + ~b + 1 per lane; every slice word is fully populated
  // (64 lanes), so the lane-wise complement is a plain word complement.
  SlicedBatch neg(ops.width);
  neg.a = ops.a;
  for (int i = 0; i < ops.width; ++i) neg.b[i] = ~ops.b[i];
  return batch_aca_add(neg, k, /*carry_in=*/~std::uint64_t{0});
}

std::uint64_t batch_aca_flag(const SlicedBatch& ops, int k) {
  check_batch(ops, k);
  std::uint64_t flagged = 0;
  detail::kernel_flag_only<detail::ScalarWord>(ops.a.data(), ops.b.data(),
                                               ops.width, /*stride=*/1,
                                               /*w0=*/0, k, &flagged);
  return flagged;
}

std::array<int, kBatchLanes> batch_longest_runs(const SlicedBatch& ops) {
  check_batch(ops, /*k=*/1);
  std::array<int, kBatchLanes> runs{};
  detail::kernel_longest_runs<detail::ScalarWord>(
      ops.a.data(), ops.b.data(), ops.width, /*stride=*/1, /*w0=*/0,
      runs.data());
  return runs;
}

void wide_aca_add_into(const WideBatch& ops, int k,
                       const std::uint64_t* carry_in, WideResult& out,
                       Isa isa) {
  check_wide(ops, k);
  wide_eval(ops.a.data(), ops.b.data(), ops.width, ops.lanes, k, carry_in,
            out, isa);
}

WideResult wide_aca_add(const WideBatch& ops, int k,
                        const std::uint64_t* carry_in, Isa isa) {
  WideResult out;
  wide_aca_add_into(ops, k, carry_in, out, isa);
  return out;
}

void wide_aca_sub_into(const WideBatch& ops, int k, WideResult& out,
                       Isa isa) {
  check_wide(ops, k);
  // a - b = a + ~b + 1 per lane, carry-in set on every lane.
  std::vector<std::uint64_t> bc(ops.b.size());
  for (std::size_t i = 0; i < bc.size(); ++i) bc[i] = ~ops.b[i];
  const std::vector<std::uint64_t> ones(
      static_cast<std::size_t>(ops.words()), ~std::uint64_t{0});
  wide_eval(ops.a.data(), bc.data(), ops.width, ops.lanes, k, ones.data(),
            out, isa);
}

WideResult wide_aca_sub(const WideBatch& ops, int k, Isa isa) {
  WideResult out;
  wide_aca_sub_into(ops, k, out, isa);
  return out;
}

std::vector<std::uint64_t> wide_aca_flag(const WideBatch& ops, int k,
                                         Isa isa) {
  check_wide(ops, k);
  const int words = ops.words();
  std::vector<std::uint64_t> flagged(static_cast<std::size_t>(words), 0);
  const detail::Kernels* kn = detail::kernels_for(isa, words);
  for (int w0 = 0; w0 < words; w0 += kn->group_words) {
    kn->flag_only(ops.a.data(), ops.b.data(), ops.width, words, w0, k,
                  flagged.data());
  }
  return flagged;
}

std::vector<int> wide_longest_runs(const WideBatch& ops, Isa isa) {
  check_wide(ops, /*k=*/1);
  const int words = ops.words();
  std::vector<int> runs(static_cast<std::size_t>(ops.lanes), 0);
  const detail::Kernels* kn = detail::kernels_for(isa, words);
  for (int w0 = 0; w0 < words; w0 += kn->group_words) {
    kn->longest_runs(ops.a.data(), ops.b.data(), ops.width, words, w0,
                     runs.data() + static_cast<std::ptrdiff_t>(w0) * 64);
  }
  return runs;
}

namespace {

/// In-place 64x64 bit-matrix transpose, LSB-first indexing: afterwards
/// bit c of w[r] is what bit r of w[c] was.  384 word ops — the
/// single-block (scalar) instantiation of the kernel the wide paths
/// run 4/8 blocks at a time.
void transpose64x64(std::uint64_t* w) {
  detail::kernel_transpose64<detail::ScalarWord>(w);
}

}  // namespace

SlicedBatch transpose_batch(
    const std::vector<std::pair<util::BitVec, util::BitVec>>& pairs,
    int width) {
  if (static_cast<int>(pairs.size()) > kBatchLanes) {
    throw std::invalid_argument("transpose_batch: more than 64 pairs");
  }
  for (const auto& [a, b] : pairs) {
    if (a.width() != width || b.width() != width) {
      throw std::invalid_argument("transpose_batch: operand width mismatch");
    }
  }
  SlicedBatch batch(width);
  const int limbs = (width + 63) / 64;
  std::array<std::uint64_t, kBatchLanes> ta{}, tb{};
  for (int limb = 0; limb < limbs; ++limb) {
    ta.fill(0);
    tb.fill(0);
    for (int lane = 0; lane < static_cast<int>(pairs.size()); ++lane) {
      ta[lane] = pairs[lane].first.limbs()[limb];
      tb[lane] = pairs[lane].second.limbs()[limb];
    }
    transpose64x64(ta.data());
    transpose64x64(tb.data());
    const int hi = std::min(64, width - limb * 64);
    for (int i = 0; i < hi; ++i) {
      batch.a[limb * 64 + i] = ta[i];
      batch.b[limb * 64 + i] = tb[i];
    }
  }
  return batch;
}

WideBatch wide_transpose_batch(
    const std::vector<std::pair<util::BitVec, util::BitVec>>& pairs,
    int width, int lanes, Isa isa) {
  check_lanes(lanes);
  if (static_cast<int>(pairs.size()) > lanes) {
    throw std::invalid_argument(
        "wide_transpose_batch: more pairs than lanes");
  }
  for (const auto& [a, b] : pairs) {
    if (a.width() != width || b.width() != width) {
      throw std::invalid_argument(
          "wide_transpose_batch: operand width mismatch");
    }
  }
  WideBatch batch(width, lanes);
  const int words = batch.words();
  const int limbs = (width + 63) / 64;
  const detail::Kernels* kn = detail::kernels_for(isa, words);
  const int g_words = kn->group_words;
  // One (gather, G-block transpose, scatter) per G lane groups x limb.
  // The interleaved block layout kernel_transpose64 wants is the wide
  // slice layout restricted to those groups, so the scatter side is
  // plain contiguous copies.
  std::vector<std::uint64_t> ta(static_cast<std::size_t>(64) * g_words);
  std::vector<std::uint64_t> tb(ta.size());
  for (int w0 = 0; w0 < words; w0 += g_words) {
    const int group_lanes = std::clamp(
        static_cast<int>(pairs.size()) - w0 * 64, 0, 64 * g_words);
    for (int limb = 0; limb < limbs; ++limb) {
      std::fill(ta.begin(), ta.end(), 0);
      std::fill(tb.begin(), tb.end(), 0);
      for (int idx = 0; idx < group_lanes; ++idx) {
        const auto at =
            static_cast<std::size_t>(idx % 64) * g_words + idx / 64;
        ta[at] = pairs[w0 * 64 + idx].first.limbs()[limb];
        tb[at] = pairs[w0 * 64 + idx].second.limbs()[limb];
      }
      kn->transpose64(ta.data());
      kn->transpose64(tb.data());
      const int hi = std::min(64, width - limb * 64);
      for (int i = 0; i < hi; ++i) {
        const auto at =
            static_cast<std::size_t>(limb * 64 + i) * words + w0;
        std::copy_n(ta.data() + static_cast<std::size_t>(i) * g_words,
                    g_words, batch.a.data() + at);
        std::copy_n(tb.data() + static_cast<std::size_t>(i) * g_words,
                    g_words, batch.b.data() + at);
      }
    }
  }
  return batch;
}

util::BitVec lane_value(const std::vector<std::uint64_t>& sliced, int width,
                        int lane) {
  if (lane < 0 || lane >= kBatchLanes) {
    throw std::invalid_argument("lane_value: lane out of range");
  }
  if (static_cast<int>(sliced.size()) < width) {
    throw std::invalid_argument("lane_value: slice shorter than width");
  }
  util::BitVec v(width);
  for (int i = 0; i < width; ++i) {
    v.set_bit(i, (sliced[i] >> lane) & 1);
  }
  return v;
}

util::BitVec wide_lane_value(const std::vector<std::uint64_t>& sliced,
                             int width, int words, int lane) {
  if (words < 1 || lane < 0 || lane >= words * 64) {
    throw std::invalid_argument("wide_lane_value: lane out of range");
  }
  if (sliced.size() < static_cast<std::size_t>(width) *
                          static_cast<std::size_t>(words)) {
    throw std::invalid_argument("wide_lane_value: slice shorter than width");
  }
  util::BitVec v(width);
  const int w = lane >> 6;
  const int bit = lane & 63;
  for (int i = 0; i < width; ++i) {
    v.set_bit(i, (sliced[static_cast<std::size_t>(i) * words + w] >> bit) & 1);
  }
  return v;
}

std::vector<util::BitVec> lane_values(
    const std::vector<std::uint64_t>& sliced, int width) {
  if (static_cast<int>(sliced.size()) < width) {
    throw std::invalid_argument("lane_values: slice shorter than width");
  }
  std::vector<util::BitVec> lanes(kBatchLanes, util::BitVec(width));
  const int limbs = (width + 63) / 64;
  std::array<std::uint64_t, kBatchLanes> t{};
  for (int limb = 0; limb < limbs; ++limb) {
    t.fill(0);
    const int hi = std::min(64, width - limb * 64);
    for (int i = 0; i < hi; ++i) t[i] = sliced[limb * 64 + i];
    transpose64x64(t.data());
    for (int lane = 0; lane < kBatchLanes; ++lane) {
      lanes[static_cast<std::size_t>(lane)].limbs()[limb] = t[lane];
    }
  }
  return lanes;
}

std::vector<util::BitVec> wide_lane_values(
    const std::vector<std::uint64_t>& sliced, int width, int lanes,
    Isa isa) {
  check_lanes(lanes);
  const int words = lanes / 64;
  if (sliced.size() < static_cast<std::size_t>(width) *
                          static_cast<std::size_t>(words)) {
    throw std::invalid_argument("wide_lane_values: slice shorter than width");
  }
  std::vector<util::BitVec> out(static_cast<std::size_t>(lanes),
                                util::BitVec(width));
  const int limbs = (width + 63) / 64;
  const detail::Kernels* kn = detail::kernels_for(isa, words);
  const int g_words = kn->group_words;
  // Inverse of wide_transpose_batch: the gather side is contiguous
  // copies out of the wide slice, the G-block transpose runs on the
  // selected tier, and the scatter writes one limb per lane.
  std::vector<std::uint64_t> t(static_cast<std::size_t>(64) * g_words);
  for (int w0 = 0; w0 < words; w0 += g_words) {
    for (int limb = 0; limb < limbs; ++limb) {
      const int hi = std::min(64, width - limb * 64);
      for (int i = 0; i < hi; ++i) {
        std::copy_n(sliced.data() +
                        static_cast<std::size_t>(limb * 64 + i) * words + w0,
                    g_words, t.data() + static_cast<std::size_t>(i) * g_words);
      }
      if (hi < 64) {
        std::fill(t.begin() + static_cast<std::size_t>(hi) * g_words,
                  t.end(), 0);
      }
      kn->transpose64(t.data());
      for (int idx = 0; idx < 64 * g_words; ++idx) {
        const int g = idx / 64;
        const int lane = idx % 64;
        out[static_cast<std::size_t>((w0 + g) * 64 + lane)].limbs()[limb] =
            t[static_cast<std::size_t>(lane) * g_words + g];
      }
    }
  }
  return out;
}

void fill_uniform(util::Rng& rng, SlicedBatch& batch) {
  for (auto& word : batch.a) word = rng.next_u64();
  for (auto& word : batch.b) word = rng.next_u64();
}

void fill_uniform(util::Rng& rng, WideBatch& batch) {
  for (auto& word : batch.a) word = rng.next_u64();
  for (auto& word : batch.b) word = rng.next_u64();
}

}  // namespace vlsa::sim
