#include "sim/vlsa_pipeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace vlsa::sim {

VlsaPipeline::VlsaPipeline(const PipelineConfig& config)
    : config_(config), adder_(config.width, config.window) {
  if (config.recovery_cycles < 1) {
    throw std::invalid_argument("VlsaPipeline: recovery_cycles must be >= 1");
  }
  if (config.clock_period_ns <= 0.0) {
    throw std::invalid_argument("VlsaPipeline: clock period must be > 0");
  }
}

const OperationTrace& VlsaPipeline::submit(const BitVec& a, const BitVec& b) {
  const auto outcome = adder_.add(a, b);
  OperationTrace op;
  op.a = a;
  op.b = b;
  op.speculative = outcome.speculative;
  op.result = outcome.exact;
  op.flagged = outcome.flagged;
  op.speculative_wrong = outcome.was_wrong;
  op.issue_cycle = now_;
  // Cycle `issue` computes ACA+ER; on a miss the corrected sum appears
  // `recovery_cycles` later.  In Fig. 7 mode the whole pipeline stalls
  // until then; with overlapped recovery the front end keeps issuing.
  op.done_cycle = now_ + (op.flagged ? config_.recovery_cycles : 0);
  now_ = config_.overlapped_recovery ? now_ + 1 : op.done_cycle + 1;
  makespan_ = std::max(makespan_, op.done_cycle + 1);

  operations_ += 1;
  flagged_ += op.flagged ? 1 : 0;
  latency_cycles_accum_ += op.cycles();
  trace_.push_back(std::move(op));
  return trace_.back();
}

PipelineStats VlsaPipeline::stats() const {
  PipelineStats s;
  s.operations = operations_;
  s.flagged = flagged_;
  s.total_cycles = makespan_;
  if (operations_ > 0) {
    s.average_latency_cycles =
        static_cast<double>(latency_cycles_accum_) / operations_;
    s.average_latency_ns = s.average_latency_cycles * config_.clock_period_ns;
    s.throughput_adds_per_ns =
        static_cast<double>(operations_) /
        (static_cast<double>(makespan_) * config_.clock_period_ns);
  }
  return s;
}

std::string render_timing_diagram(const std::vector<OperationTrace>& trace,
                                  std::size_t max_ops) {
  const std::size_t ops = std::min(max_ops, trace.size());
  if (ops == 0) return "(empty trace)\n";
  const long long first = trace[0].issue_cycle;
  const long long last = trace[ops - 1].done_cycle;
  const int cycles = static_cast<int>(last - first + 1);

  // One fixed-width column per cycle.
  constexpr int kCol = 6;
  auto cell = [&](const std::string& text) {
    std::string s = text.substr(0, kCol - 1);
    s.insert(s.end(), static_cast<std::size_t>(kCol - 1) - s.size() + 1, ' ');
    return s;
  };
  std::vector<std::string> in(static_cast<std::size_t>(cycles), "");
  std::vector<std::string> spec(static_cast<std::size_t>(cycles), "");
  std::vector<std::string> valid(static_cast<std::size_t>(cycles), "");
  std::vector<std::string> stall(static_cast<std::size_t>(cycles), "");
  std::vector<std::string> out(static_cast<std::size_t>(cycles), "");

  for (std::size_t i = 0; i < ops; ++i) {
    const OperationTrace& op = trace[i];
    const std::string name = "A" + std::to_string(i) + "B" + std::to_string(i);
    for (long long c = op.issue_cycle; c <= op.done_cycle; ++c) {
      const auto idx = static_cast<std::size_t>(c - first);
      in[idx] = name;
      const bool last_cycle = c == op.done_cycle;
      valid[idx] = last_cycle ? "1" : "0";
      stall[idx] = last_cycle ? "0" : "1";
      if (c == op.issue_cycle) {
        spec[idx] = op.speculative_wrong ? ("S" + std::to_string(i) + "*!")
                                         : ("S" + std::to_string(i));
      }
      if (last_cycle) out[idx] = "S" + std::to_string(i);
    }
  }

  std::ostringstream os;
  auto row = [&](const char* label, const std::vector<std::string>& cells) {
    os << label;
    for (const auto& c : cells) os << "|" << cell(c);
    os << "|\n";
  };
  os << "CLK    ";
  for (int c = 0; c < cycles; ++c) {
    os << "|" << cell(std::to_string(first + c));
  }
  os << "|\n";
  row("A,B    ", in);
  row("SUM*   ", spec);
  row("VALID  ", valid);
  row("STALL  ", stall);
  row("SUM    ", out);
  os << "(SUM* = speculative ACA output; a trailing '!' marks a "
        "misspeculation corrected by the recovery stage)\n";
  return os.str();
}

}  // namespace vlsa::sim
