#pragma once
// Bit-sliced (transposed) batch evaluator for the ACA — 64 independent
// additions per machine word.
//
// The scalar model in core/aca.hpp walks one operand pair bit by bit;
// Monte-Carlo studies built on it top out around 1e4-1e5 trials.  This
// engine stores a batch of 64 operand pairs *transposed*: word i holds
// bit i of all 64 lanes (lane j lives in bit j of every word).  All the
// adder's signals — propagate/generate, the windowed speculative
// carries, the exact carries, the ER flag, the mispredict indicator —
// are then plain AND/OR/XOR recurrences over those words, evaluating
// every lane simultaneously.  One batch costs O(n·k) word operations,
// i.e. ~k operations per addition instead of a per-bit interpreted
// loop, which is where the batch Monte-Carlo driver
// (workloads/batch_monte_carlo.hpp) gets its two-orders-of-magnitude
// throughput win.
//
// The engine is only a valid reproduction instrument because it is
// bit-exactly equivalent to the scalar specification:
// tests/test_batch_engine.cpp proves every output lane equal to
// core::aca_add / aca_flag / aca_is_exact across widths, windows, the
// carry-in path, and the subtraction path (exhaustively at width 8).

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa::sim {

/// Lanes per batch — one per bit of the slice words.
inline constexpr int kBatchLanes = 64;

/// 64 operand pairs in transposed layout: `a[i]` / `b[i]` hold bit i of
/// every lane, for i in [0, width).  Unused lanes are simply lanes whose
/// bits are all zero (their results are valid too — they compute 0+0).
struct SlicedBatch {
  explicit SlicedBatch(int w = 0) : width(w), a(w, 0), b(w, 0) {}

  int width = 0;
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
};

/// All outputs of one batched evaluation, transposed like the inputs.
/// Mask members hold one bit per lane.
struct BatchResult {
  int width = 0;
  std::vector<std::uint64_t> sum_spec;    ///< speculative (ACA) sums
  std::vector<std::uint64_t> sum_exact;   ///< true sums (recovery output)
  std::vector<std::uint64_t> carry_spec;  ///< windowed carry chain, bit i
                                          ///< = carry out of position i
  std::uint64_t carry_out_spec = 0;   ///< lane mask: speculative carry out
  std::uint64_t carry_out_exact = 0;  ///< lane mask: exact carry out
  std::uint64_t flagged = 0;  ///< lane mask: ER fired (chain >= k)
  std::uint64_t wrong = 0;    ///< lane mask: speculative != exact
};

/// Evaluate ACA(width, k) plus the exact adder on all 64 lanes.
/// `carry_in` is a lane mask (bit j = architectural carry into lane j),
/// matching the scalar `aca_add(a, b, k, carry_in)` semantics per lane.
BatchResult batch_aca_add(const SlicedBatch& ops, int k,
                          std::uint64_t carry_in = 0);

/// Same, reusing `out`'s buffers — the zero-allocation form the
/// Monte-Carlo driver loops on.
void batch_aca_add_into(const SlicedBatch& ops, int k,
                        std::uint64_t carry_in, BatchResult& out);

/// Lane-wise speculative subtraction a - b (two's complement:
/// a + ~b + 1), matching scalar `aca_sub` per lane.
BatchResult batch_aca_sub(const SlicedBatch& ops, int k);

/// Just the ER lane mask: bit j set iff lane j has a propagate chain of
/// length >= k (matches scalar `aca_flag`).
std::uint64_t batch_aca_flag(const SlicedBatch& ops, int k);

/// Per-lane longest propagate chain (matches scalar
/// `longest_propagate_chain`) — the statistic behind Table 1.
std::array<int, kBatchLanes> batch_longest_runs(const SlicedBatch& ops);

/// Transpose up to 64 scalar operand pairs (all of `width`) into a
/// batch; lanes beyond `pairs.size()` are zero.
SlicedBatch transpose_batch(
    const std::vector<std::pair<util::BitVec, util::BitVec>>& pairs,
    int width);

/// Read one lane back out of a transposed signal (inverse of the
/// transpose for a single lane).
util::BitVec lane_value(const std::vector<std::uint64_t>& sliced, int width,
                        int lane);

/// Read all 64 lanes back out of a transposed signal in one pass — a
/// word-level un-transpose, ~64x cheaper than 64 lane_value() calls.
/// Element j is lane j's value (unused lanes decode to 0).
std::vector<util::BitVec> lane_values(
    const std::vector<std::uint64_t>& sliced, int width);

/// Fill a batch with i.i.d. uniform bits.  Drawing each slice word
/// directly is distribution-identical to transposing 64 scalar
/// `rng.next_bits(width)` draws (every bit of every lane is an
/// independent fair coin either way) — this is the fast path the
/// uniform Monte-Carlo driver uses.  It is *not* the same stream as the
/// scalar draws, so scalar and batch runs agree in distribution, not
/// trial-for-trial.
void fill_uniform(util::Rng& rng, SlicedBatch& batch);

}  // namespace vlsa::sim
