#pragma once
// Bit-sliced (transposed) batch evaluator for the ACA — 64 independent
// additions per machine word.
//
// The scalar model in core/aca.hpp walks one operand pair bit by bit;
// Monte-Carlo studies built on it top out around 1e4-1e5 trials.  This
// engine stores a batch of 64 operand pairs *transposed*: word i holds
// bit i of all 64 lanes (lane j lives in bit j of every word).  All the
// adder's signals — propagate/generate, the windowed speculative
// carries, the exact carries, the ER flag, the mispredict indicator —
// are then plain AND/OR/XOR recurrences over those words, evaluating
// every lane simultaneously.  One batch costs O(n·k) word operations,
// i.e. ~k operations per addition instead of a per-bit interpreted
// loop, which is where the batch Monte-Carlo driver
// (workloads/batch_monte_carlo.hpp) gets its two-orders-of-magnitude
// throughput win.
//
// The engine is only a valid reproduction instrument because it is
// bit-exactly equivalent to the scalar specification:
// tests/test_batch_engine.cpp proves every output lane equal to
// core::aca_add / aca_flag / aca_is_exact across widths, windows, the
// carry-in path, and the subtraction path (exhaustively at width 8).

#include <array>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/isa.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa::sim {

/// Lanes per batch — one per bit of the slice words.
inline constexpr int kBatchLanes = 64;

/// 64 operand pairs in transposed layout: `a[i]` / `b[i]` hold bit i of
/// every lane, for i in [0, width).  Unused lanes are simply lanes whose
/// bits are all zero (their results are valid too — they compute 0+0).
struct SlicedBatch {
  explicit SlicedBatch(int w = 0) : width(w), a(w, 0), b(w, 0) {}

  int width = 0;
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
};

/// All outputs of one batched evaluation, transposed like the inputs.
/// Mask members hold one bit per lane.
struct BatchResult {
  int width = 0;
  std::vector<std::uint64_t> sum_spec;    ///< speculative (ACA) sums
  std::vector<std::uint64_t> sum_exact;   ///< true sums (recovery output)
  std::vector<std::uint64_t> carry_spec;  ///< windowed carry chain, bit i
                                          ///< = carry out of position i
  std::uint64_t carry_out_spec = 0;   ///< lane mask: speculative carry out
  std::uint64_t carry_out_exact = 0;  ///< lane mask: exact carry out
  std::uint64_t flagged = 0;  ///< lane mask: ER fired (chain >= k)
  std::uint64_t wrong = 0;    ///< lane mask: speculative != exact
};

/// Evaluate ACA(width, k) plus the exact adder on all 64 lanes.
/// `carry_in` is a lane mask (bit j = architectural carry into lane j),
/// matching the scalar `aca_add(a, b, k, carry_in)` semantics per lane.
BatchResult batch_aca_add(const SlicedBatch& ops, int k,
                          std::uint64_t carry_in = 0);

/// Same, reusing `out`'s buffers — the zero-allocation form the
/// Monte-Carlo driver loops on.
void batch_aca_add_into(const SlicedBatch& ops, int k,
                        std::uint64_t carry_in, BatchResult& out);

/// Lane-wise speculative subtraction a - b (two's complement:
/// a + ~b + 1), matching scalar `aca_sub` per lane.
BatchResult batch_aca_sub(const SlicedBatch& ops, int k);

/// Just the ER lane mask: bit j set iff lane j has a propagate chain of
/// length >= k (matches scalar `aca_flag`).
std::uint64_t batch_aca_flag(const SlicedBatch& ops, int k);

/// Per-lane longest propagate chain (matches scalar
/// `longest_propagate_chain`) — the statistic behind Table 1.
std::array<int, kBatchLanes> batch_longest_runs(const SlicedBatch& ops);

/// Transpose up to 64 scalar operand pairs (all of `width`) into a
/// batch; lanes beyond `pairs.size()` are zero.
SlicedBatch transpose_batch(
    const std::vector<std::pair<util::BitVec, util::BitVec>>& pairs,
    int width);

/// Read one lane back out of a transposed signal (inverse of the
/// transpose for a single lane).
util::BitVec lane_value(const std::vector<std::uint64_t>& sliced, int width,
                        int lane);

/// Read all 64 lanes back out of a transposed signal in one pass — a
/// word-level un-transpose, ~64x cheaper than 64 lane_value() calls.
/// Element j is lane j's value (unused lanes decode to 0).
std::vector<util::BitVec> lane_values(
    const std::vector<std::uint64_t>& sliced, int width);

/// Fill a batch with i.i.d. uniform bits.  Drawing each slice word
/// directly is distribution-identical to transposing 64 scalar
/// `rng.next_bits(width)` draws (every bit of every lane is an
/// independent fair coin either way) — this is the fast path the
/// uniform Monte-Carlo driver uses.  It is *not* the same stream as the
/// scalar draws, so scalar and batch runs agree in distribution, not
/// trial-for-trial.
void fill_uniform(util::Rng& rng, SlicedBatch& batch);

// ---------------------------------------------------------------------------
// Wide (SIMD-dispatched) batches — the 64-lane API above generalised to
// any multiple of 64 lanes up to kMaxBatchLanes.  The layout is the
// same transposition with a word stride: bit i of the batch lives in
// the `lanes/64` consecutive words at offset `i * (lanes/64)`, lane j
// in bit (j % 64) of word (j / 64) of each group.  Evaluation runs on
// the widest kernel the requested ISA allows (see sim/isa.hpp): one
// AVX-512 step advances 512 lanes, AVX2 256, scalar 64, all
// bit-identical to each other and to the scalar core::aca_* model
// (tests/test_batch_engine.cpp forces each tier via VLSA_FORCE_ISA).
// ---------------------------------------------------------------------------

/// Widest batch any kernel tier produces (AVX-512: 8 words x 64).
inline constexpr int kMaxBatchLanes = 512;

/// Smallest supported lane count that fits `count` requests — the
/// service uses this so small batches keep the 64-lane cost.
[[nodiscard]] constexpr int lanes_for_batch(int count) {
  if (count <= 64) return 64;
  if (count <= 256) return 256;
  return kMaxBatchLanes;
}

/// `lanes` operand pairs in the wide transposed layout; lanes must be a
/// positive multiple of 64, at most kMaxBatchLanes.  Unused lanes are
/// all-zero (they validly compute 0+0).
struct WideBatch {
  explicit WideBatch(int w = 0, int l = 64)
      : width(w),
        lanes(l),
        a(static_cast<std::size_t>(w) * (l / 64), 0),
        b(static_cast<std::size_t>(w) * (l / 64), 0) {}

  int width = 0;
  int lanes = 64;
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;

  /// Words per bit position (= lane-mask words = lanes / 64).
  [[nodiscard]] int words() const { return lanes / 64; }
};

/// All outputs of one wide evaluation.  Signal members hold
/// `width * words()` words (wide slice layout); mask members hold
/// `words()` words, lane j in bit (j % 64) of word (j / 64).
struct WideResult {
  int width = 0;
  int lanes = 0;
  std::vector<std::uint64_t> sum_spec;    ///< speculative (ACA) sums
  std::vector<std::uint64_t> sum_exact;   ///< true sums (recovery output)
  std::vector<std::uint64_t> carry_spec;  ///< windowed carry chain
  std::vector<std::uint64_t> carry_out_spec;   ///< lane mask
  std::vector<std::uint64_t> carry_out_exact;  ///< lane mask
  std::vector<std::uint64_t> flagged;  ///< lane mask: ER fired (chain >= k)
  std::vector<std::uint64_t> wrong;    ///< lane mask: speculative != exact

  [[nodiscard]] int words() const { return lanes / 64; }
  [[nodiscard]] bool flagged_lane(int lane) const {
    return ((flagged[static_cast<std::size_t>(lane >> 6)] >> (lane & 63)) &
            1) != 0;
  }
  [[nodiscard]] bool wrong_lane(int lane) const {
    return ((wrong[static_cast<std::size_t>(lane >> 6)] >> (lane & 63)) &
            1) != 0;
  }
  /// Flagged lanes among the first `used_lanes`.
  [[nodiscard]] int flagged_count(int used_lanes) const {
    int count = 0;
    for (int w = 0; w * 64 < used_lanes; ++w) {
      std::uint64_t m = flagged[static_cast<std::size_t>(w)];
      const int rem = used_lanes - w * 64;
      if (rem < 64) m &= (std::uint64_t{1} << rem) - 1;
      count += std::popcount(m);
    }
    return count;
  }
};

/// Evaluate ACA(width, k) plus the exact adder on all lanes.
/// `carry_in` is a nullable lane-mask pointer (`ops.words()` words;
/// nullptr = no carry in).  `isa` is the upper bound on the kernel tier
/// (see resolved_isa); the default is the process-wide choice.
void wide_aca_add_into(const WideBatch& ops, int k,
                       const std::uint64_t* carry_in, WideResult& out,
                       Isa isa = active_isa());

[[nodiscard]] WideResult wide_aca_add(const WideBatch& ops, int k,
                                      const std::uint64_t* carry_in = nullptr,
                                      Isa isa = active_isa());

/// Lane-wise speculative subtraction a - b (a + ~b + 1 per lane).
void wide_aca_sub_into(const WideBatch& ops, int k, WideResult& out,
                       Isa isa = active_isa());

[[nodiscard]] WideResult wide_aca_sub(const WideBatch& ops, int k,
                                      Isa isa = active_isa());

/// Just the ER lane mask (`ops.words()` words).
[[nodiscard]] std::vector<std::uint64_t> wide_aca_flag(
    const WideBatch& ops, int k, Isa isa = active_isa());

/// Per-lane longest propagate chain (`ops.lanes` entries).
[[nodiscard]] std::vector<int> wide_longest_runs(const WideBatch& ops,
                                                 Isa isa = active_isa());

/// Transpose up to `lanes` scalar operand pairs (all of `width`) into a
/// wide batch; lanes beyond `pairs.size()` are zero.  The bit-matrix
/// transpose itself runs on the `isa` tier (4/8 blocks per step — see
/// wide_kernel.hpp:kernel_transpose64); the result is identical on
/// every tier.
[[nodiscard]] WideBatch wide_transpose_batch(
    const std::vector<std::pair<util::BitVec, util::BitVec>>& pairs,
    int width, int lanes, Isa isa = active_isa());

/// Read one lane out of a wide-sliced signal of `words` stride.
[[nodiscard]] util::BitVec wide_lane_value(
    const std::vector<std::uint64_t>& sliced, int width, int words, int lane);

/// Read all `lanes` lanes out of a wide-sliced signal in one pass
/// (word-level un-transpose, like lane_values, SIMD-widened like
/// wide_transpose_batch).
[[nodiscard]] std::vector<util::BitVec> wide_lane_values(
    const std::vector<std::uint64_t>& sliced, int width, int lanes,
    Isa isa = active_isa());

/// Fill a wide batch with i.i.d. uniform bits (same contract as the
/// 64-lane fill_uniform: distribution-identical to scalar draws, not
/// stream-identical).
void fill_uniform(util::Rng& rng, WideBatch& batch);

}  // namespace vlsa::sim
