#pragma once
// The lane-width-generic ACA kernels, templated over a LaneWord (see
// lane_word.hpp), plus the function-pointer table the runtime ISA
// dispatcher (isa.cpp) selects from.
//
// Layout contract (the "wide slice" layout): a batch of `64 * words`
// lanes stores bit i of every lane in the `words` consecutive uint64_t
// at offset `i * stride`.  A kernel instantiated for a Word with
// kWords = G processes ONE group of 64*G lanes per call — the group
// whose words sit at offset `w0` within each slice — so the dispatcher
// covers a batch by looping `w0 = 0, G, 2G, ...` with any kernel whose
// G divides `words`.  Mask outputs (carry-outs, ER flags, mispredict)
// are lane masks occupying words [w0, w0+G).
//
// The algorithms are verbatim the 64-lane recurrences PR 1 shipped
// (exact carry chain, windowed speculative carries, doubling-run flag,
// round-extension longest runs); the template only changes how many
// lanes one word step advances.  Differential tests pin every
// instantiation to the scalar model (tests/test_batch_engine.cpp).

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/isa.hpp"
#include "sim/lane_word.hpp"

namespace vlsa::sim::detail {

/// Output pointers for one kernel_eval call, all in the wide slice
/// layout described above (sum/carry arrays are `n * stride` words,
/// mask arrays are `stride` words; the kernel touches only its group).
struct EvalOut {
  std::uint64_t* sum_spec = nullptr;
  std::uint64_t* sum_exact = nullptr;
  std::uint64_t* carry_spec = nullptr;
  std::uint64_t* carry_out_spec = nullptr;
  std::uint64_t* carry_out_exact = nullptr;
  std::uint64_t* flagged = nullptr;
  std::uint64_t* wrong = nullptr;
};

/// Lane mask of runs: after the doubling loop, r[i] has lane j set iff
/// lane j's propagate bits [i-k+1 .. i] are all 1.  OR over i (only
/// i >= k-1 can hold a full window) is exactly the scalar ER flag.
template <class Word>
Word kernel_flag_from_p(const std::vector<Word>& p, int k) {
  const int n = static_cast<int>(p.size());
  if (k > n) return Word::zero();
  std::vector<Word> r = p;  // r[i]: run of length t ends at i
  int t = 1;
  while (t < k) {
    const int s = std::min(t, k - t);
    // Descending i so r[i - s] is still the length-t value.
    for (int i = n - 1; i >= 0; --i) {
      r[i] = (i >= s) ? (r[i] & r[i - s]) : Word::zero();
    }
    t += s;
  }
  Word any = Word::zero();
  for (int i = k - 1; i < n; ++i) any = any | r[i];
  return any;
}

/// Full evaluation of ACA(n, k) plus the exact adder on one lane group.
/// `carry_in` is a lane-mask base pointer (nullptr = no carry in).
template <class Word>
void kernel_eval(const std::uint64_t* a, const std::uint64_t* b, int n,
                 int stride, int w0, int k, const std::uint64_t* carry_in,
                 const EvalOut& out) {
  // Propagate/generate slices (kept as locals: p and g are cheap to
  // recompute per use but the spec-carry loop reads them k times each).
  std::vector<Word> p(static_cast<std::size_t>(n));
  std::vector<Word> g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Word av = Word::load(a + static_cast<std::size_t>(i) * stride + w0);
    const Word bv = Word::load(b + static_cast<std::size_t>(i) * stride + w0);
    p[i] = av ^ bv;
    g[i] = av & bv;
  }
  const Word cin =
      carry_in == nullptr ? Word::zero() : Word::load(carry_in + w0);

  // Exact carry chain: c_i = g_i | (p_i & c_{i-1}), c_{-1} = carry_in.
  Word ec = cin;
  for (int i = 0; i < n; ++i) {
    (p[i] ^ ec).store(out.sum_exact + static_cast<std::size_t>(i) * stride +
                      w0);
    ec = g[i] | (p[i] & ec);
  }
  ec.store(out.carry_out_exact + w0);

  // Speculative carries: each bit i ripples only its window
  // [max(0, i-k+1) .. i].  The seed entering the window is 0 when the
  // window is full-length (a k-propagate window speculates 0 — the error
  // source) and the architectural carry-in when the window is clamped at
  // bit 0 with fewer than k positions (a short chain to bit 0 *knows*
  // the carry-in).  Any generate/kill inside the window overwrites the
  // seed, so the two cases only differ on all-propagate windows —
  // exactly the scalar model's case split on the run length.
  //
  // `wrong` is accumulated in the same pass: a lane's speculative sum
  // bit differs from the exact one iff the incoming carries differed,
  // and the freshly computed spec sum is still in a register here.
  Word wrong = Word::zero();
  Word sc = cin;  // c_{i-1}; c_{-1} = carry_in
  for (int i = 0; i < n; ++i) {
    const std::size_t at = static_cast<std::size_t>(i) * stride + w0;
    const Word ss = p[i] ^ sc;
    ss.store(out.sum_spec + at);
    wrong = wrong | (ss ^ Word::load(out.sum_exact + at));
    const int lo = std::max(0, i - k + 1);
    Word c = (i < k - 1) ? cin : Word::zero();
    for (int j = lo; j <= i; ++j) {
      c = g[j] | (p[j] & c);
    }
    c.store(out.carry_spec + at);
    sc = c;
  }
  sc.store(out.carry_out_spec + w0);
  wrong = wrong | (sc ^ ec);
  wrong.store(out.wrong + w0);

  kernel_flag_from_p(p, k).store(out.flagged + w0);
}

/// Just the ER lane mask for one group (matches scalar `aca_flag`).
template <class Word>
void kernel_flag_only(const std::uint64_t* a, const std::uint64_t* b, int n,
                      int stride, int w0, int k, std::uint64_t* flagged) {
  std::vector<Word> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    p[i] = Word::load(a + static_cast<std::size_t>(i) * stride + w0) ^
           Word::load(b + static_cast<std::size_t>(i) * stride + w0);
  }
  kernel_flag_from_p(p, k).store(flagged + w0);
}

/// Per-lane longest propagate chain for one group; `runs` receives
/// 64 * Word::kWords entries (lane order within the group).  Extend one
/// bit per round; a lane's longest run is the last t it survived.
template <class Word>
void kernel_longest_runs(const std::uint64_t* a, const std::uint64_t* b,
                         int n, int stride, int w0, int* runs) {
  std::vector<Word> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    p[i] = Word::load(a + static_cast<std::size_t>(i) * stride + w0) ^
           Word::load(b + static_cast<std::size_t>(i) * stride + w0);
  }
  std::fill(runs, runs + 64 * Word::kWords, 0);
  std::vector<Word> r = p;  // r[i]: lanes whose run of length t ends at i
  std::uint64_t alive_words[Word::kWords];
  for (int t = 1; t <= n; ++t) {
    Word alive = Word::zero();
    for (int i = t - 1; i < n; ++i) alive = alive | r[i];
    alive.store(alive_words);
    bool any = false;
    for (int w = 0; w < Word::kWords; ++w) {
      std::uint64_t m = alive_words[w];
      any = any || m != 0;
      while (m != 0) {
        runs[w * 64 + std::countr_zero(m)] = t;
        m &= m - 1;
      }
    }
    if (!any) break;
    for (int i = n - 1; i >= 1; --i) r[i] = r[i - 1] & p[i];
    r[0] = Word::zero();
  }
}

/// In-place 64x64 bit-matrix transpose (recursive block swaps, Hacker's
/// Delight 7-3) of kWords INDEPENDENT blocks at once, stored
/// interleaved: word r of block g is t[r * kWords + g], and afterwards
/// bit c of word r of block g is what bit r of word c of block g was.
/// Interleaved is exactly the wide slice layout restricted to one lane
/// group, so the service's pack/unpack paths feed this directly.  All
/// 384 word operations of the scalar transpose become 384 vector
/// operations covering 4 or 8 blocks — the transpose was the dominant
/// non-scaling cost of a wide dispatch before this.
template <class Word>
void kernel_transpose64(std::uint64_t* t) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    const Word mask = Word::splat(m);
    for (int r = 0; r < 64; r = (r + j + 1) & ~j) {
      Word lo = Word::load(t + static_cast<std::size_t>(r) * Word::kWords);
      Word hi =
          Word::load(t + static_cast<std::size_t>(r + j) * Word::kWords);
      const Word x = (lo.shr(j) ^ hi) & mask;
      lo = lo ^ x.shl(j);
      hi = hi ^ x;
      lo.store(t + static_cast<std::size_t>(r) * Word::kWords);
      hi.store(t + static_cast<std::size_t>(r + j) * Word::kWords);
    }
  }
}

/// The per-ISA entry points the dispatcher selects between.  One table
/// per compiled LaneWord; `group_words` is Word::kWords.
struct Kernels {
  int group_words = 1;
  void (*eval)(const std::uint64_t* a, const std::uint64_t* b, int n,
               int stride, int w0, int k, const std::uint64_t* carry_in,
               const EvalOut& out) = nullptr;
  void (*flag_only)(const std::uint64_t* a, const std::uint64_t* b, int n,
                    int stride, int w0, int k,
                    std::uint64_t* flagged) = nullptr;
  void (*longest_runs)(const std::uint64_t* a, const std::uint64_t* b, int n,
                       int stride, int w0, int* runs) = nullptr;
  void (*transpose64)(std::uint64_t* t) = nullptr;
};

template <class Word>
const Kernels* make_kernels() {
  static const Kernels table{Word::kWords, &kernel_eval<Word>,
                             &kernel_flag_only<Word>,
                             &kernel_longest_runs<Word>,
                             &kernel_transpose64<Word>};
  return &table;
}

// One accessor per ISA tier.  The scalar table always exists
// (batch_engine.cpp); the SIMD ones return nullptr when their
// translation unit was compiled without the instruction set
// (batch_engine_avx2.cpp / batch_engine_avx512.cpp, gated in
// src/sim/CMakeLists.txt on compiler support).
const Kernels* scalar_kernels();
const Kernels* avx2_kernels();
const Kernels* avx512_kernels();

/// Dispatch resolution (isa.cpp): widest tier <= `requested` that is
/// supported on this machine and whose group divides `words`.  Never
/// null — scalar (group 1) always qualifies.
const Kernels* kernels_for(Isa requested, int words);

}  // namespace vlsa::sim::detail
