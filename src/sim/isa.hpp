#pragma once
// Runtime ISA selection for the wide batch engine.
//
// The bit-sliced kernels (wide_kernel.hpp) are compiled three times —
// scalar (always), AVX2 and AVX-512 (when the compiler supports the
// flags; see src/sim/CMakeLists.txt) — and selected at runtime from a
// CPUID probe.  The choice is a process-wide constant: `active_isa()`
// resolves once (widest supported tier, or the `VLSA_FORCE_ISA`
// environment override — values `scalar` / `avx2` / `avx512`,
// case-insensitive) and every caller that doesn't pass an explicit Isa
// inherits it.  Forcing an ISA the build lacks or the CPU can't run is
// an error, not a silent fallback — tests rely on the override actually
// overriding.
//
// A *requested* ISA is still only an upper bound per call: a kernel is
// usable for a batch only when its lane group divides the batch's lane
// count, so e.g. a 256-lane batch on an AVX-512 machine runs the AVX2
// kernel and a 64-lane batch always runs scalar.  `resolved_isa()`
// exposes that final choice for provenance (bench sidecars record it).

#include <optional>
#include <string_view>

namespace vlsa::sim {

/// Kernel tiers, narrowest to widest.  The integer order is the
/// dispatch order: a request for tier T may use any tier <= T.
enum class Isa { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Canonical lowercase name ("scalar" / "avx2" / "avx512") — the
/// values `VLSA_FORCE_ISA` accepts and sidecars record.
[[nodiscard]] const char* isa_name(Isa isa);

/// Lanes one kernel step of this tier advances (64 / 256 / 512).
[[nodiscard]] int isa_lanes(Isa isa);

/// Was this tier's translation unit built with its instruction set?
[[nodiscard]] bool isa_compiled(Isa isa);

/// Compiled AND the running CPU reports the features (CPUID probe;
/// AVX-512 requires F+BW+DQ+VL, the flag set the TU is built with).
[[nodiscard]] bool isa_supported(Isa isa);

/// Preferred supported tier on this machine/build.  NOT simply the
/// widest: AVX2 is preferred over AVX-512 even when both are supported,
/// because measured batch throughput at service widths is HIGHER on
/// AVX2 (BENCH_simd.json: 1.807x vs 1.755x over scalar at width 1024 —
/// 512-bit execution downclocks the core and the wider lanes do not
/// earn the frequency loss back; see docs/benchmarks.md).  Set
/// VLSA_FORCE_ISA=avx512 to opt back in on parts where it wins.
[[nodiscard]] Isa best_isa();

/// The process-wide tier: best_isa(), unless VLSA_FORCE_ISA names
/// another (resolved once, then cached).  Throws std::invalid_argument
/// on an unknown name and std::runtime_error on an unsupported one.
[[nodiscard]] Isa active_isa();

/// isa_lanes(active_isa()) — the batch width the service packs to.
[[nodiscard]] int active_lanes();

/// Parse a (case-insensitive) ISA name; nullopt if unknown.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name);

/// The tier a `lanes`-lane batch actually executes on when `requested`
/// is the upper bound: widest tier <= requested that is supported and
/// whose lane group divides `lanes`.  Scalar always qualifies.
[[nodiscard]] Isa resolved_isa(Isa requested, int lanes);

}  // namespace vlsa::sim
