#include "sim/vcd.hpp"

#include <algorithm>
#include <sstream>

namespace vlsa::sim {

namespace {

std::string bus_bits(const util::BitVec& v) {
  // VCD binary literal, MSB first, low 64 bits.
  const int bits = std::min(v.width(), 64);
  std::string s = "b";
  bool seen_one = false;
  for (int i = bits - 1; i >= 0; --i) {
    const bool bit = v.bit(i);
    if (bit) seen_one = true;
    if (seen_one || i == 0) s.push_back(bit ? '1' : '0');
  }
  return s;
}

}  // namespace

std::string to_vcd(const std::vector<OperationTrace>& trace, int width,
                   double clock_period_ns) {
  const int bus_width = std::min(width, 64);
  std::ostringstream os;
  os << "$timescale 1ps $end\n";
  os << "$scope module vlsa $end\n";
  os << "$var wire 1 ! clk $end\n";
  os << "$var wire 1 \" valid $end\n";
  os << "$var wire 1 # stall $end\n";
  os << "$var wire " << bus_width << " $ a $end\n";
  os << "$var wire " << bus_width << " % b $end\n";
  os << "$var wire " << bus_width << " & sum $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  const long long period_ps =
      static_cast<long long>(clock_period_ns * 1000.0);
  auto at = [&](long long cycle, bool high) {
    return cycle * period_ps + (high ? 0 : period_ps / 2);
  };

  os << "#0\n0!\nx\"\nx#\n";
  for (const OperationTrace& op : trace) {
    for (long long c = op.issue_cycle; c <= op.done_cycle; ++c) {
      const bool last = c == op.done_cycle;
      os << "#" << at(c, true) << "\n1!\n";
      if (c == op.issue_cycle) {
        os << bus_bits(op.a) << " $\n" << bus_bits(op.b) << " %\n";
      }
      os << (last ? "1\"\n0#\n" : "0\"\n1#\n");
      if (last) os << bus_bits(op.result) << " &\n";
      os << "#" << at(c, false) << "\n0!\n";
    }
  }
  if (!trace.empty()) {
    os << "#" << at(trace.back().done_cycle + 1, true) << "\n";
  }
  return os.str();
}

}  // namespace vlsa::sim
