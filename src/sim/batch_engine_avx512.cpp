// AVX-512 instantiation of the bit-sliced kernels — the only
// translation unit compiled with -mavx512f/bw/dq/vl
// (src/sim/CMakeLists.txt), so no 512-bit code can leak into paths a
// non-AVX-512 CPU executes.  When the compiler lacks the flags this TU
// still builds and reports the tier absent.

#include "sim/wide_kernel.hpp"

namespace vlsa::sim::detail {

const Kernels* avx512_kernels() {
#if defined(__AVX512F__)
  return make_kernels<Avx512Word>();
#else
  return nullptr;
#endif
}

}  // namespace vlsa::sim::detail
