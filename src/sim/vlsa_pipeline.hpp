#pragma once
// Cycle-accurate model of the Variable Latency Speculative Adder
// (Sec. 4.3, Fig. 6/7).
//
// The clocked wrapper runs at a period slightly above
// max(T_ACA, T_error_detection).  Each addition normally completes in one
// cycle with VALID = 1; when the error detector fires, VALID drops,
// STALL rises and the corrected sum appears `recovery_cycles` later.
// Because the flag probability is tiny at the design window, the average
// latency is barely above 1 cycle — that is the paper's headline claim.

#include <string>
#include <vector>

#include "core/aca.hpp"
#include "util/bitvec.hpp"

namespace vlsa::sim {

using util::BitVec;

/// Static configuration of a pipeline instance.
struct PipelineConfig {
  int width = 64;
  int window = 8;
  int recovery_cycles = 2;      ///< extra cycles when ER fires
  double clock_period_ns = 1.0; ///< > max(T_ACA, T_ER); set from STA
  /// Fig. 6 stalls the whole pipeline during recovery (false).  With a
  /// dedicated (pipelined) recovery unit the front end keeps issuing one
  /// addition per cycle and flagged results complete late, out of order
  /// (true) — the natural next step the paper's processor sketch invites.
  bool overlapped_recovery = false;
};

/// Per-operation record (also drives the timing-diagram renderer).
struct OperationTrace {
  BitVec a, b;
  BitVec speculative;       ///< what the ACA produced in cycle 1
  BitVec result;            ///< final (always exact) sum
  bool flagged = false;     ///< ER fired, recovery was taken
  bool speculative_wrong = false;
  long long issue_cycle = 0;
  long long done_cycle = 0; ///< cycle whose end has VALID=1 for this op
  int cycles() const { return static_cast<int>(done_cycle - issue_cycle + 1); }
};

/// Aggregate statistics of a run.
struct PipelineStats {
  long long operations = 0;
  long long flagged = 0;
  long long total_cycles = 0;    ///< makespan (last completion + 1)
  double average_latency_cycles = 0.0;  ///< mean of per-op cycles()
  double average_latency_ns = 0.0;
  double throughput_adds_per_ns = 0.0;
};

/// Drives operations through the VLSA handshake and records the trace.
class VlsaPipeline {
 public:
  explicit VlsaPipeline(const PipelineConfig& config);

  const PipelineConfig& config() const { return config_; }

  /// Execute one addition; the pipeline advances 1 cycle on a hit and
  /// 1 + recovery_cycles on a flagged operation.  Returns the trace entry.
  const OperationTrace& submit(const BitVec& a, const BitVec& b);

  /// Current clock (cycles elapsed since construction).
  long long now() const { return now_; }

  const std::vector<OperationTrace>& trace() const { return trace_; }
  PipelineStats stats() const;

  /// Drop the recorded trace (statistics keep accumulating).
  void clear_trace() { trace_.clear(); }

 private:
  PipelineConfig config_;
  core::SpeculativeAdder adder_;
  long long now_ = 0;
  long long makespan_ = 0;
  long long operations_ = 0;
  long long flagged_ = 0;
  long long latency_cycles_accum_ = 0;
  std::vector<OperationTrace> trace_;
};

/// Render a Fig. 7-style ASCII timing diagram (CLK / A,B / SUM* / VALID /
/// STALL / SUM rows) for the first `max_ops` trace entries.
std::string render_timing_diagram(const std::vector<OperationTrace>& trace,
                                  std::size_t max_ops = 8);

}  // namespace vlsa::sim
