#include "sim/isa.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/wide_kernel.hpp"

namespace vlsa::sim {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
  }
  return "scalar";
}

int isa_lanes(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return 64;
    case Isa::Avx2:
      return 256;
    case Isa::Avx512:
      return 512;
  }
  return 64;
}

namespace {

const detail::Kernels* kernels_of(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return detail::scalar_kernels();
    case Isa::Avx2:
      return detail::avx2_kernels();
    case Isa::Avx512:
      return detail::avx512_kernels();
  }
  return detail::scalar_kernels();
}

bool cpu_has(Isa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::Avx512:
      // The AVX-512 TU is built with F+BW+DQ+VL, so require them all —
      // the compiler is free to use any of them there.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
  }
  return false;
#else
  return isa == Isa::Scalar;
#endif
}

}  // namespace

bool isa_compiled(Isa isa) { return kernels_of(isa) != nullptr; }

bool isa_supported(Isa isa) { return isa_compiled(isa) && cpu_has(isa); }

Isa best_isa() {
  // AVX2 ahead of AVX-512, deliberately: on the machines we measure,
  // 512-bit execution downclocks the core and ends up *slower* end to
  // end than AVX2 at every service width (docs/benchmarks.md records
  // the numbers).  VLSA_FORCE_ISA=avx512 (active_isa) is the explicit
  // opt-in for parts where the wide tier does win.
  if (isa_supported(Isa::Avx2)) return Isa::Avx2;
  if (isa_supported(Isa::Avx512)) return Isa::Avx512;
  return Isa::Scalar;
}

std::optional<Isa> parse_isa(std::string_view name) {
  std::string low;
  low.reserve(name.size());
  for (const char c : name) {
    low.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (low == "scalar") return Isa::Scalar;
  if (low == "avx2") return Isa::Avx2;
  if (low == "avx512" || low == "avx-512") return Isa::Avx512;
  return std::nullopt;
}

Isa active_isa() {
  // Resolved once; the env var is read before any service thread exists
  // (first call wins), so the cached value is what every batch uses.
  static const Isa cached = [] {
    const char* forced = std::getenv("VLSA_FORCE_ISA");
    if (forced == nullptr || *forced == '\0') return best_isa();
    const std::optional<Isa> parsed = parse_isa(forced);
    if (!parsed.has_value()) {
      throw std::invalid_argument(
          std::string("VLSA_FORCE_ISA: unknown ISA '") + forced +
          "' (expected scalar, avx2, or avx512)");
    }
    if (!isa_supported(*parsed)) {
      throw std::runtime_error(
          std::string("VLSA_FORCE_ISA: ISA '") + isa_name(*parsed) +
          (isa_compiled(*parsed) ? "' is not supported by this CPU"
                                 : "' was not compiled into this build"));
    }
    return *parsed;
  }();
  return cached;
}

int active_lanes() { return isa_lanes(active_isa()); }

namespace detail {

const Kernels* kernels_for(Isa requested, int words) {
  constexpr Isa kTiers[] = {Isa::Avx512, Isa::Avx2, Isa::Scalar};
  for (const Isa tier : kTiers) {
    if (static_cast<int>(tier) > static_cast<int>(requested)) continue;
    if (!isa_supported(tier)) continue;
    const Kernels* k = kernels_of(tier);
    if (words % k->group_words != 0) continue;
    return k;
  }
  return scalar_kernels();  // unreachable: scalar always qualifies
}

}  // namespace detail

Isa resolved_isa(Isa requested, int lanes) {
  if (lanes < 64 || lanes % 64 != 0) {
    throw std::invalid_argument("resolved_isa: lanes must be a positive "
                                "multiple of 64");
  }
  switch (detail::kernels_for(requested, lanes / 64)->group_words) {
    case 8:
      return Isa::Avx512;
    case 4:
      return Isa::Avx2;
    default:
      return Isa::Scalar;
  }
}

}  // namespace vlsa::sim
