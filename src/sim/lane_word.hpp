#pragma once
// LaneWord — the machine word the bit-sliced kernels are generic over.
//
// A LaneWord is a flat vector of 64 * kWords one-bit lanes.  Because
// every signal in the ACA (propagate/generate, both carry chains, the
// ER flag, the mispredict mask) is a boolean recurrence across *bit
// positions*, lanes never interact within a word: widening the word
// widens the batch with zero algorithmic change.  The kernels in
// wide_kernel.hpp require exactly this interface:
//
//   static constexpr int kWords;           // 64-bit words per LaneWord
//   static W load(const std::uint64_t*);   // unaligned
//   void store(std::uint64_t*) const;      // unaligned
//   static W zero();
//   static W splat(std::uint64_t);         // same value in every word
//   W.shl(j), W.shr(j)                     // logical shift per 64-bit word
//   W & W, W | W, W ^ W                    // lane-wise boolean algebra
//
// The shifts and splat exist for the block transpose (64x64 bit-matrix
// transpose of kWords independent blocks at once — see
// wide_kernel.hpp:kernel_transpose64); the boolean ops carry the adder
// recurrences.
//
// Three models ship: ScalarWord (uint64_t, 64 lanes, always available),
// Avx2Word (__m256i, 256 lanes) and Avx512Word (__m512i, 512 lanes).
// The SIMD types are only defined in translation units compiled with
// the matching -m flags (batch_engine_avx2.cpp / batch_engine_avx512.cpp);
// everything else sees only ScalarWord, so no AVX type ever leaks into
// code the CPU might run without the feature.

#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace vlsa::sim::detail {

/// 64 lanes in a plain machine word — the portable fallback and the
/// kernel every other implementation is differentially tested against.
struct ScalarWord {
  static constexpr int kWords = 1;

  std::uint64_t v;

  static ScalarWord load(const std::uint64_t* p) { return {*p}; }
  void store(std::uint64_t* p) const { *p = v; }
  static ScalarWord zero() { return {0}; }
  static ScalarWord splat(std::uint64_t x) { return {x}; }
  ScalarWord shl(int j) const { return {v << j}; }
  ScalarWord shr(int j) const { return {v >> j}; }

  friend ScalarWord operator&(ScalarWord x, ScalarWord y) {
    return {x.v & y.v};
  }
  friend ScalarWord operator|(ScalarWord x, ScalarWord y) {
    return {x.v | y.v};
  }
  friend ScalarWord operator^(ScalarWord x, ScalarWord y) {
    return {x.v ^ y.v};
  }
};

#if defined(__AVX2__)
/// 256 lanes per step.  Unaligned loads/stores: the slice buffers are
/// plain std::vector<uint64_t> with no alignment promise.
struct Avx2Word {
  static constexpr int kWords = 4;

  __m256i v;

  static Avx2Word load(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Avx2Word zero() { return {_mm256_setzero_si256()}; }
  static Avx2Word splat(std::uint64_t x) {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  Avx2Word shl(int j) const {
    return {_mm256_sll_epi64(v, _mm_cvtsi32_si128(j))};
  }
  Avx2Word shr(int j) const {
    return {_mm256_srl_epi64(v, _mm_cvtsi32_si128(j))};
  }

  friend Avx2Word operator&(Avx2Word x, Avx2Word y) {
    return {_mm256_and_si256(x.v, y.v)};
  }
  friend Avx2Word operator|(Avx2Word x, Avx2Word y) {
    return {_mm256_or_si256(x.v, y.v)};
  }
  friend Avx2Word operator^(Avx2Word x, Avx2Word y) {
    return {_mm256_xor_si256(x.v, y.v)};
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// 512 lanes per step.
struct Avx512Word {
  static constexpr int kWords = 8;

  __m512i v;

  static Avx512Word load(const std::uint64_t* p) {
    return {_mm512_loadu_si512(reinterpret_cast<const void*>(p))};
  }
  void store(std::uint64_t* p) const {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
  }
  static Avx512Word zero() { return {_mm512_setzero_si512()}; }
  static Avx512Word splat(std::uint64_t x) {
    return {_mm512_set1_epi64(static_cast<long long>(x))};
  }
  // GNU vector-extension shifts rather than shift intrinsics: GCC 12
  // expands every unmasked AVX-512 intrinsic through
  // _mm512_undefined_epi32, which -Werror=uninitialized rejects when
  // inlined into user code (the strict preset).  Emits the same vpsllq.
  Avx512Word shl(int j) const {
    using V = unsigned long long __attribute__((vector_size(64)));
    return {(__m512i)((V)v << j)};
  }
  Avx512Word shr(int j) const {
    using V = unsigned long long __attribute__((vector_size(64)));
    return {(__m512i)((V)v >> j)};
  }

  friend Avx512Word operator&(Avx512Word x, Avx512Word y) {
    return {_mm512_and_si512(x.v, y.v)};
  }
  friend Avx512Word operator|(Avx512Word x, Avx512Word y) {
    return {_mm512_or_si512(x.v, y.v)};
  }
  friend Avx512Word operator^(Avx512Word x, Avx512Word y) {
    return {_mm512_xor_si512(x.v, y.v)};
  }
};
#endif  // __AVX512F__

}  // namespace vlsa::sim::detail
