#pragma once
// VCD (Value Change Dump) emission for VLSA pipeline traces.
//
// Produces a standard IEEE-1364 VCD file with CLK, STALL, VALID and the
// operand/result buses, so the Fig. 7 behaviour can be inspected in any
// waveform viewer (GTKWave etc.) — the artifact a hardware reviewer asks
// for first.

#include <string>
#include <vector>

#include "sim/vlsa_pipeline.hpp"

namespace vlsa::sim {

/// Render a pipeline trace as VCD text.  `clock_period_ns` scales the
/// timestamps (timescale 1ps); buses wider than 64 bits are truncated to
/// their low 64 bits in the dump (VCD-friendly), which is lossless for
/// the widths the examples use.
std::string to_vcd(const std::vector<OperationTrace>& trace,
                   int width, double clock_period_ns);

}  // namespace vlsa::sim
