#pragma once
// Minimal ASCII table formatter used by the benchmark harnesses to print
// paper-style tables (Table 1, Fig. 8 data, ...) to stdout.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace vlsa::util {

/// Accumulates rows of strings and renders them as an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Format a double with the given number of decimals.
  static std::string num(double value, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vlsa::util
