#include "util/rng.hpp"

#include <stdexcept>

namespace vlsa::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: zero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split(std::uint64_t stream) const {
  std::uint64_t x = stream;
  std::uint64_t seed = splitmix64(x) ^ state_[0] ^ rotl(state_[1], 17) ^
                       rotl(state_[2], 31) ^ rotl(state_[3], 47);
  return Rng(splitmix64(seed));
}

BitVec Rng::next_bits(int width) {
  BitVec v(width);
  for (auto& limb : v.limbs()) limb = next_u64();
  if (width % 64 != 0 && !v.limbs().empty()) {
    v.limbs().back() &= (~std::uint64_t{0}) >> (64 - width % 64);
  }
  return v;
}

}  // namespace vlsa::util
