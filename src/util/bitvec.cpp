#include "util/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace vlsa::util {

BitVec::BitVec(int width) : width_(width), limbs_(limb_count(width), 0) {
  if (width < 0) throw std::invalid_argument("BitVec: negative width");
}

BitVec BitVec::from_u64(int width, std::uint64_t value) {
  BitVec v(width);
  if (width > 0) {
    v.limbs_[0] = value;
    v.canonicalize();
  }
  return v;
}

BitVec BitVec::from_binary(std::string_view bits) {
  BitVec v(static_cast<int>(bits.size()));
  for (int i = 0; i < v.width_; ++i) {
    const char c = bits[bits.size() - 1 - static_cast<std::size_t>(i)];
    if (c == '1') {
      v.set_bit(i, true);
    } else if (c != '0') {
      throw std::invalid_argument("BitVec::from_binary: bad character");
    }
  }
  return v;
}

BitVec BitVec::from_hex(std::string_view digits) {
  BitVec v(static_cast<int>(digits.size()) * 4);
  for (std::size_t pos = 0; pos < digits.size(); ++pos) {
    const char c = digits[digits.size() - 1 - pos];
    int nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      throw std::invalid_argument("BitVec::from_hex: bad character");
    }
    for (int b = 0; b < 4; ++b) {
      v.set_bit(static_cast<int>(pos) * 4 + b, (nibble >> b) & 1);
    }
  }
  return v;
}

BitVec BitVec::ones(int width) {
  BitVec v(width);
  for (auto& limb : v.limbs_) limb = ~std::uint64_t{0};
  v.canonicalize();
  return v;
}

bool BitVec::bit(int i) const {
  if (i < 0 || i >= width_) throw std::out_of_range("BitVec::bit");
  return (limbs_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1;
}

void BitVec::set_bit(int i, bool value) {
  if (i < 0 || i >= width_) throw std::out_of_range("BitVec::set_bit");
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  auto& limb = limbs_[static_cast<std::size_t>(i) / 64];
  limb = value ? (limb | mask) : (limb & ~mask);
}

std::uint64_t BitVec::low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

int BitVec::popcount() const {
  int n = 0;
  for (auto limb : limbs_) n += std::popcount(limb);
  return n;
}

int BitVec::longest_one_run() const {
  int best = 0;
  int run = 0;
  for (int i = 0; i < width_; ++i) {
    if (bit(i)) {
      run += 1;
      if (run > best) best = run;
    } else {
      run = 0;
    }
  }
  return best;
}

bool BitVec::is_zero() const {
  for (auto limb : limbs_) {
    if (limb != 0) return false;
  }
  return true;
}

BitVec BitVec::operator~() const {
  BitVec r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] = ~limbs_[i];
  r.canonicalize();
  return r;
}

namespace {
void require_same_width(const BitVec& a, const BitVec& b) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("BitVec: width mismatch");
  }
}
}  // namespace

BitVec BitVec::operator&(const BitVec& rhs) const {
  require_same_width(*this, rhs);
  BitVec r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i] = limbs_[i] & rhs.limbs_[i];
  }
  return r;
}

BitVec BitVec::operator|(const BitVec& rhs) const {
  require_same_width(*this, rhs);
  BitVec r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i] = limbs_[i] | rhs.limbs_[i];
  }
  return r;
}

BitVec BitVec::operator^(const BitVec& rhs) const {
  require_same_width(*this, rhs);
  BitVec r(width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i] = limbs_[i] ^ rhs.limbs_[i];
  }
  return r;
}

BitVec::SumWithCarry BitVec::add_with_carry(const BitVec& rhs,
                                            bool carry_in) const {
  require_same_width(*this, rhs);
  BitVec sum(width_);
  unsigned __int128 carry = carry_in ? 1 : 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(limbs_[i]) + rhs.limbs_[i] + carry;
    sum.limbs_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  bool carry_out = carry != 0;
  // The carry out of bit width-1 may live inside the top limb when the
  // width is not a multiple of 64.
  if (width_ % 64 != 0 && !limbs_.empty()) {
    carry_out = (sum.limbs_.back() >> (width_ % 64)) & 1;
  }
  sum.canonicalize();
  return {sum, carry_out};
}

BitVec BitVec::operator+(const BitVec& rhs) const {
  return add_with_carry(rhs).sum;
}

BitVec BitVec::operator-(const BitVec& rhs) const {
  // a - b = a + ~b + 1 (mod 2^width).
  return add_with_carry(~rhs, /*carry_in=*/true).sum;
}

BitVec BitVec::shl(int shift) const {
  if (shift < 0) throw std::invalid_argument("BitVec::shl: negative shift");
  BitVec r(width_);
  for (int i = width_ - 1; i >= shift; --i) r.set_bit(i, bit(i - shift));
  return r;
}

BitVec BitVec::shr(int shift) const {
  if (shift < 0) throw std::invalid_argument("BitVec::shr: negative shift");
  BitVec r(width_);
  for (int i = 0; i + shift < width_; ++i) r.set_bit(i, bit(i + shift));
  return r;
}

BitVec BitVec::resized(int new_width) const {
  BitVec r(new_width);
  const int n = std::min(new_width, width_);
  for (int i = 0; i < n; ++i) r.set_bit(i, bit(i));
  return r;
}

std::string BitVec::to_binary() const {
  std::string s(static_cast<std::size_t>(width_), '0');
  for (int i = 0; i < width_; ++i) {
    if (bit(i)) s[static_cast<std::size_t>(width_ - 1 - i)] = '1';
  }
  return s;
}

std::string BitVec::to_hex() const {
  const int digits = (width_ + 3) / 4;
  std::string s(static_cast<std::size_t>(digits), '0');
  static constexpr char kHex[] = "0123456789abcdef";
  for (int d = 0; d < digits; ++d) {
    int nibble = 0;
    for (int b = 0; b < 4; ++b) {
      const int i = d * 4 + b;
      if (i < width_ && bit(i)) nibble |= 1 << b;
    }
    s[static_cast<std::size_t>(digits - 1 - d)] = kHex[nibble];
  }
  return s;
}

void BitVec::canonicalize() {
  if (width_ % 64 != 0 && !limbs_.empty()) {
    limbs_.back() &= (~std::uint64_t{0}) >> (64 - width_ % 64);
  }
}

}  // namespace vlsa::util
