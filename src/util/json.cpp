#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vlsa::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (int i = 0; i < indent_ * static_cast<int>(stack_.size()); ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level value
  Frame& top = stack_.back();
  if (top.scope == Scope::Object) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object needs a key");
    }
    key_pending_ = false;
    return;  // key() already placed comma/indent
  }
  if (!top.empty) os_ << ',';
  top.empty = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().scope != Scope::Object) {
    throw std::logic_error("JsonWriter: key outside of object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: key after key");
  Frame& top = stack_.back();
  if (!top.empty) os_ << ',';
  top.empty = false;
  newline_indent();
  os_ << '"' << json_escape(name) << "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back({Scope::Object, true});
  os_ << '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().scope != Scope::Object ||
      key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  os_ << '}';
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back({Scope::Array, true});
  os_ << '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().scope != Scope::Array) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent();
  os_ << ']';
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  os_ << v;
  return *this;
}

}  // namespace vlsa::util
