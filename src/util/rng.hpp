#pragma once
// Deterministic, fast random number generation for workloads and tests.
//
// We use xoshiro256** rather than std::mt19937_64: it is faster, has a
// tiny state, and — importantly for reproducibility — its output is fully
// specified here, independent of the standard library implementation.

#include <cstdint>

#include "util/bitvec.hpp"

namespace vlsa::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Uniform random bit vector of the given width.
  BitVec next_bits(int width);

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace vlsa::util
