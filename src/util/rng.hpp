#pragma once
// Deterministic, fast random number generation for workloads and tests.
//
// We use xoshiro256** rather than std::mt19937_64: it is faster, has a
// tiny state, and — importantly for reproducibility — its output is fully
// specified here, independent of the standard library implementation.

#include <cstdint>

#include "util/bitvec.hpp"

namespace vlsa::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Uniform random bit vector of the given width.
  BitVec next_bits(int width);

  /// Derive an independent child generator for substream `stream` without
  /// touching this generator's sequence (const — a parent draws the same
  /// values whether or not it was split, and splitting twice with the
  /// same index yields identical children).
  ///
  /// Substream spec (frozen: sharded Monte-Carlo tallies are only
  /// reproducible across thread counts if every shard derives its RNG the
  /// same way forever):
  ///
  ///   child = Rng(sm(sm(stream) ^ s0 ^ rotl(s1,17) ^ rotl(s2,31)
  ///                             ^ rotl(s3,47)))
  ///
  /// where `s0..s3` is this generator's current xoshiro state, `sm(x)` is
  /// one splitmix64 step (add the golden-gamma 0x9e3779b97f4a7c15, then
  /// the 30/27/31 xor-multiply finalizer), and the Rng constructor expands
  /// the 64-bit seed through four further splitmix64 steps.  Distinct
  /// stream indices therefore land in unrelated regions of seed space,
  /// and a shard's stream depends only on (master seed, shard index).
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace vlsa::util
