#pragma once
// Minimal streaming JSON writer for the machine-readable bench outputs.
//
// The benches emit <name>.bench.json files so successive PRs have a
// throughput/accuracy trajectory that scripts can diff; this writer is
// deliberately tiny (no DOM, no parsing) and emits pretty-printed,
// deterministic output: keys appear in call order and doubles round-trip
// (printf %.17g, with NaN/Inf mapped to null since JSON has neither).

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace vlsa::util {

/// Escape a string for inclusion in a JSON document (no quotes added).
std::string json_escape(std::string_view s);

/// Streaming writer; nesting is tracked so commas and indentation are
/// automatic.  Usage:
///   JsonWriter j(os);
///   j.begin_object();
///   j.kv("width", 64).kv("flag_rate", 1e-4);
///   j.key("rows").begin_array(); ... j.end_array();
///   j.end_object();
/// Misuse (value without key inside an object, close of the wrong scope)
/// throws std::logic_error rather than emitting invalid JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit `"name":` — must be inside an object, before each value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);

  /// Any other integer type (int, std::uint64_t, std::size_t, ...).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return value(static_cast<long long>(v));
    } else {
      return value(static_cast<unsigned long long>(v));
    }
  }

  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

 private:
  enum class Scope { Object, Array };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  bool key_pending_ = false;
  struct Frame {
    Scope scope;
    bool empty = true;
  };
  std::vector<Frame> stack_;
};

}  // namespace vlsa::util
