#pragma once
// Fixed-size thread pool and a sharded parallel-for — the execution
// substrate for the batch Monte-Carlo driver.
//
// Determinism contract: the pool makes no ordering guarantees (jobs are
// claimed dynamically by whichever worker is free), so reproducible
// results come from the *data layout*, not the schedule — give every
// shard its own RNG substream (util::Rng::split) and its own output
// slot, then reduce the slots in shard-index order after wait_idle().
// Everything built that way tallies identically for 1, 4, or 13 threads
// (tests/test_parallel.cpp locks this down).
//
// The pool's internal locking discipline is machine-checked: its state
// lives behind an annotated util::Mutex (GUARDED_BY in parallel.cpp)
// and compiles clean under `clang++ -Wthread-safety` — the
// `thread-safety` CMake preset.

#include <functional>
#include <memory>

namespace vlsa::util {

/// A fixed pool of worker threads consuming a shared job queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 1 still uses a worker thread so
  /// the execution path is identical at every size).
  explicit ThreadPool(int num_threads);

  /// Joins all workers.  Pending jobs are still executed first — destroy
  /// the pool (or call wait_idle) to reach a quiescent state.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  /// Enqueue a job.  Jobs must not submit to the pool they run on from
  /// within wait_idle's quiescence window (plain nested submit is fine).
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.  If any job
  /// threw, rethrows the first captured exception (the remaining jobs
  /// still ran).
  void wait_idle();

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// Run `fn(shard)` for every shard in [0, num_shards) on `num_threads`
/// workers.  `num_threads <= 1` runs inline on the calling thread (no pool
/// is created), so serial and parallel callers share one code path.
/// Shard-to-thread assignment is dynamic; see the determinism contract
/// above.  Rethrows the first exception any shard threw, after all
/// remaining shards finished.
void parallel_for_shards(int num_shards, int num_threads,
                         const std::function<void(int)>& fn);

}  // namespace vlsa::util
