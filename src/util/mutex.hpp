#pragma once
// Annotated synchronization primitives — thin wrappers over the
// <mutex>/<condition_variable> types that carry the Clang
// thread-safety-analysis attributes (util/thread_annotations.hpp).
//
// `std::mutex` itself cannot be annotated, so every class whose locking
// discipline should be machine-checked holds a `util::Mutex` and marks
// its protected state `GUARDED_BY(mutex_)`.  The wrappers add no state
// and no behavior beyond the standard types; a build with annotations
// disabled (any non-Clang compiler) compiles to exactly the std
// equivalents.
//
// Conventions (see docs/static_analysis.md):
//   * `LockGuard` for plain critical sections (== std::lock_guard).
//   * `UniqueLock` when a CondVar wait or a manual unlock/relock is
//     needed (== std::unique_lock); it is a re-lockable scoped
//     capability, so the analysis tracks `unlock()`/`lock()` pairs.
//   * `CondVar` deliberately has NO predicate-lambda overloads: the
//     analysis does not propagate the held capability into lambda
//     bodies, so guarded fields read inside a predicate would warn.
//     Call sites write the canonical `while (!pred) cv.wait(lock);`
//     loop instead, which the analysis checks completely.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace vlsa::util {

/// Annotated exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { impl_.lock(); }
  void unlock() RELEASE() { impl_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return impl_.try_lock(); }

  /// The wrapped native mutex — needed by CondVar; never lock it
  /// directly (the analysis cannot see such a lock).
  std::mutex& native() { return impl_; }

 private:
  std::mutex impl_;
};

/// RAII critical section (== std::lock_guard<std::mutex>).
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII lock usable with CondVar and manual unlock/relock
/// (== std::unique_lock<std::mutex>).  Re-lockable scoped capability:
/// after `unlock()` the analysis knows the capability is dropped until
/// the matching `lock()` (or destruction, which releases only if held —
/// std::unique_lock semantics).
class SCOPED_CAPABILITY UniqueLock {
 public:
  /// Constructs locked.
  explicit UniqueLock(Mutex& mutex) ACQUIRE(mutex) : impl_(mutex.native()) {}
  ~UniqueLock() RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() { impl_.lock(); }
  void unlock() RELEASE() { impl_.unlock(); }

  /// The wrapped native lock — for CondVar only.
  std::unique_lock<std::mutex>& native() { return impl_; }

 private:
  std::unique_lock<std::mutex> impl_;
};

/// Condition variable over util::Mutex (wraps std::condition_variable).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { impl_.notify_one(); }
  void notify_all() noexcept { impl_.notify_all(); }

  /// Atomically release `lock` and sleep; the lock is held again when
  /// this returns.  Spurious wakeups happen — always wait in a loop.
  void wait(UniqueLock& lock) { impl_.wait(lock.native()); }

  /// Timed variant; std::cv_status::timeout when `deadline` passed.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return impl_.wait_until(lock.native(), deadline);
  }

 private:
  std::condition_variable impl_;
};

}  // namespace vlsa::util
