#pragma once
// BitVec — fixed-width unsigned bit vector over 64-bit limbs.
//
// This is the arithmetic substrate for the whole repository: operand
// widths in the paper range from 64 to 2048 bits, so native integers are
// not enough.  BitVec keeps a canonical representation (bits above
// `width()` are always zero), which lets equality and hashing be plain
// limb comparisons.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vlsa::util {

/// Fixed-width unsigned integer / bit vector.  All operations require both
/// operands to have the same width unless documented otherwise; arithmetic
/// wraps modulo 2^width.
class BitVec {
 public:
  /// Zero-valued vector of the given width (width 0 is allowed and empty).
  explicit BitVec(int width = 0);

  /// Vector of `width` bits holding `value` mod 2^width.
  static BitVec from_u64(int width, std::uint64_t value);

  /// Parse a binary string, most significant bit first ("0101...").
  /// The width is the string length.  Throws std::invalid_argument on any
  /// character other than '0'/'1'.
  static BitVec from_binary(std::string_view bits);

  /// Parse a hexadecimal string (no prefix), most significant digit first.
  /// The width is 4 * (number of digits).
  static BitVec from_hex(std::string_view digits);

  /// All-ones vector of the given width.
  static BitVec ones(int width);

  int width() const { return width_; }
  bool empty() const { return width_ == 0; }

  /// Bit accessors; `i` must lie in [0, width).
  bool bit(int i) const;
  void set_bit(int i, bool value);

  /// Value of the low 64 bits (the whole value when width <= 64).
  std::uint64_t low_u64() const;

  /// Raw limb access (little-endian limb order; top limb is masked).
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }
  std::vector<std::uint64_t>& limbs() { return limbs_; }

  /// Number of 1 bits.
  int popcount() const;

  /// Length of the longest run of consecutive 1 bits (0 for the zero vector).
  int longest_one_run() const;

  /// True iff every bit is zero.
  bool is_zero() const;

  // ----- bitwise operators (same width required) -----
  BitVec operator~() const;
  BitVec operator&(const BitVec& rhs) const;
  BitVec operator|(const BitVec& rhs) const;
  BitVec operator^(const BitVec& rhs) const;

  // ----- arithmetic (mod 2^width) -----
  BitVec operator+(const BitVec& rhs) const;
  BitVec operator-(const BitVec& rhs) const;

  /// Addition that also reports the carry out of the most significant bit.
  struct SumWithCarry;  // defined after the class (holds a BitVec)
  SumWithCarry add_with_carry(const BitVec& rhs, bool carry_in = false) const;

  /// Logical shifts (shift >= 0; shifting by >= width yields zero).
  BitVec shl(int shift) const;
  BitVec shr(int shift) const;

  /// Resize to `new_width`, zero-extending or truncating at the top.
  BitVec resized(int new_width) const;

  bool operator==(const BitVec& rhs) const = default;

  /// Most-significant-bit-first binary string of exactly `width()` chars.
  std::string to_binary() const;

  /// Hex string, most significant digit first, ceil(width/4) digits.
  std::string to_hex() const;

 private:
  void canonicalize();
  static int limb_count(int width) { return (width + 63) / 64; }

  int width_ = 0;
  std::vector<std::uint64_t> limbs_;
};

struct BitVec::SumWithCarry {
  BitVec sum;
  bool carry_out = false;
};

}  // namespace vlsa::util
