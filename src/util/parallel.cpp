#include "util/parallel.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace vlsa::util {

struct ThreadPool::State {
  Mutex mutex;
  CondVar work_ready;
  CondVar idle;
  std::deque<std::function<void()>> queue GUARDED_BY(mutex);
  std::exception_ptr first_error GUARDED_BY(mutex);
  int active GUARDED_BY(mutex) = 0;
  bool stopping GUARDED_BY(mutex) = false;
  // Written only by the constructing thread before any worker can
  // observe it through this vector; workers never touch it.
  std::vector<std::thread> workers;

  void worker_loop() {
    UniqueLock lock(mutex);
    for (;;) {
      while (!stopping && queue.empty()) work_ready.wait(lock);
      if (queue.empty()) return;  // stopping and drained
      auto job = std::move(queue.front());
      queue.pop_front();
      ++active;
      lock.unlock();
      try {
        job();
      } catch (...) {
        lock.lock();
        if (!first_error) first_error = std::current_exception();
        lock.unlock();
      }
      lock.lock();
      --active;
      if (queue.empty() && active == 0) idle.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : state_(std::make_unique<State>()) {
  if (num_threads < 1) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  state_->workers.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    state_->workers.emplace_back([s = state_.get()] { s->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(state_->mutex);
    state_->stopping = true;
  }
  state_->work_ready.notify_all();
  for (auto& w : state_->workers) w.join();
}

int ThreadPool::size() const {
  return static_cast<int>(state_->workers.size());
}

void ThreadPool::submit(std::function<void()> job) {
  {
    LockGuard lock(state_->mutex);
    if (state_->stopping) {
      throw std::logic_error("ThreadPool::submit: pool is shutting down");
    }
    state_->queue.push_back(std::move(job));
  }
  state_->work_ready.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(state_->mutex);
  while (!state_->queue.empty() || state_->active != 0) {
    state_->idle.wait(lock);
  }
  if (state_->first_error) {
    auto err = std::exchange(state_->first_error, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void parallel_for_shards(int num_shards, int num_threads,
                         const std::function<void(int)>& fn) {
  if (num_shards < 0) {
    throw std::invalid_argument("parallel_for_shards: negative shard count");
  }
  if (num_shards == 0) return;
  if (num_threads <= 1 || num_shards == 1) {
    for (int shard = 0; shard < num_shards; ++shard) fn(shard);
    return;
  }
  ThreadPool pool(std::min(num_threads, num_shards));
  for (int shard = 0; shard < num_shards; ++shard) {
    pool.submit([&fn, shard] { fn(shard); });
  }
  pool.wait_idle();
}

}  // namespace vlsa::util
