#pragma once
// Clang thread-safety-analysis annotation macros.
//
// These expand to Clang's `capability` attribute family when compiling
// with a Clang that understands them (the `thread-safety` CMake preset
// builds with `-Wthread-safety -Werror`) and to nothing everywhere else,
// so GCC builds are unaffected.  The macro set and spelling follow the
// canonical mutex.h from the Clang documentation; see
// docs/static_analysis.md for the conventions used in this repository.
//
// The short version:
//
//   * a lockable type is marked CAPABILITY("mutex"),
//   * data protected by a lock is marked GUARDED_BY(lock),
//   * a function that must be called with the lock held is marked
//     REQUIRES(lock),
//   * functions that take/drop the lock are marked ACQUIRE/RELEASE,
//   * RAII holders are marked SCOPED_CAPABILITY.
//
// With those in place, `clang++ -Wthread-safety` proves at compile time
// that every access to a guarded field happens under its lock — the
// static complement to the TSan preset, which only sees the schedules a
// test run happens to exercise.

#if defined(__clang__) && !defined(SWIG)
#define VLSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VLSA_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) VLSA_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY VLSA_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) VLSA_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) VLSA_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  VLSA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  VLSA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  VLSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  VLSA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  VLSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  VLSA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  VLSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  VLSA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  VLSA_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  VLSA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  VLSA_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) VLSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) VLSA_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  VLSA_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) VLSA_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  VLSA_THREAD_ANNOTATION(no_thread_safety_analysis)
