#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vlsa::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace vlsa::util
