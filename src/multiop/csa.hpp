#pragma once
// Carry-save (3:2) reduction — shared by the speculative multiplier and
// the multi-operand adder.
//
// A 3:2 compressor column never propagates a carry more than one
// position, so arbitrarily many addends can be reduced to two in
// O(log_{3/2} m) levels with *no* long carry chain; the single
// carry-propagate step left at the end is where speculation pays
// (paper Sec. 2 on redundant number systems, Sec. 6 future work).

#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace vlsa::multiop {

/// Word-level reduction of `addends` (all of width `width`, mod 2^width)
/// to two addends whose sum equals the total.
std::pair<util::BitVec, util::BitVec> csa_reduce_words(
    std::vector<util::BitVec> addends, int width);

/// Gate-level column-wise reduction: columns[c] holds the bit nets of
/// weight c; returns two rows of `columns.size()` nets each.  Columns may
/// have unequal heights (multiplier trapezoids).
std::pair<std::vector<netlist::NetId>, std::vector<netlist::NetId>>
csa_reduce_columns(netlist::Netlist& nl,
                   std::vector<std::vector<netlist::NetId>> columns);

}  // namespace vlsa::multiop
