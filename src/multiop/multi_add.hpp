#pragma once
// Speculative multi-operand addition (paper Sec. 6 future work).
//
// Summing m operands costs one carry-save tree (carry-free, shallow)
// plus a single carry-propagate addition — so the relative win from
// speculating that last addition *grows* with m, because the CSA tree is
// shared by both designs and the exact final adder is the only Θ(log n)
// part left.  ER semantics carry over unchanged: the flag refers to the
// final addition's propagate chains.

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace vlsa::multiop {

using util::BitVec;

/// Exact sum of all addends, mod 2^width (all must share one width).
BitVec exact_multi_add(std::span<const BitVec> addends);

struct SpecSumResult {
  BitVec sum;     ///< mod 2^width
  bool flagged;   ///< final adder's ER; false implies `sum` is exact
};

/// CSA-reduce to two addends, then ACA(width, window) for the final add.
SpecSumResult speculative_multi_add(std::span<const BitVec> addends,
                                    int window);

/// Gate-level m-operand adder.
struct MultiAdderNetlist {
  netlist::Netlist nl;
  std::vector<std::vector<netlist::NetId>> operands;  ///< m buses, LSB first
  std::vector<netlist::NetId>
      sum;  ///< width bits (the total mod 2^width, as the behavioral model)
  netlist::NetId error = netlist::kNoNet;  ///< kNoNet for the exact variant
};

/// Exact variant: CSA tree + Kogge-Stone final adder.
MultiAdderNetlist build_exact_multi_adder(int width, int operands);

/// Speculative variant: CSA tree + ACA final adder + ER.
MultiAdderNetlist build_speculative_multi_adder(int width, int operands,
                                                int window);

}  // namespace vlsa::multiop
