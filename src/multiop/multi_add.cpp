#include "multiop/multi_add.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "adders/pg.hpp"
#include "adders/prefix.hpp"
#include "core/aca.hpp"
#include "core/aca_netlist.hpp"
#include "multiop/csa.hpp"

namespace vlsa::multiop {

using adders::PG;
using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;

namespace {

void check_addends(std::span<const BitVec> addends) {
  if (addends.empty()) {
    throw std::invalid_argument("multi_add: no addends");
  }
  for (const BitVec& a : addends) {
    if (a.width() != addends[0].width()) {
      throw std::invalid_argument("multi_add: width mismatch");
    }
  }
}

}  // namespace

BitVec exact_multi_add(std::span<const BitVec> addends) {
  check_addends(addends);
  BitVec acc(addends[0].width());
  for (const BitVec& a : addends) acc = acc + a;
  return acc;
}

SpecSumResult speculative_multi_add(std::span<const BitVec> addends,
                                    int window) {
  check_addends(addends);
  const int width = addends[0].width();
  auto [x, y] =
      csa_reduce_words({addends.begin(), addends.end()}, width);
  const auto sum = core::aca_add(x, y, window);
  return {sum.sum, sum.flagged};
}

namespace {

MultiAdderNetlist build_multi(int width, int operands, int window,
                              bool speculative) {
  if (width < 1 || operands < 2) {
    throw std::invalid_argument("multi_adder: need width >= 1, operands >= 2");
  }
  MultiAdderNetlist m{
      Netlist(std::string(speculative ? "specmadd" : "madd") +
              std::to_string(width) + "x" + std::to_string(operands)),
      {}, {}, kNoNet};
  Netlist& nl = m.nl;
  std::vector<std::vector<NetId>> columns(static_cast<std::size_t>(width));
  for (int op = 0; op < operands; ++op) {
    auto bus = nl.add_input_bus("x" + std::to_string(op), width);
    for (int b = 0; b < width; ++b) {
      columns[static_cast<std::size_t>(b)].push_back(
          bus[static_cast<std::size_t>(b)]);
    }
    m.operands.push_back(std::move(bus));
  }
  auto [row0, row1] = csa_reduce_columns(nl, std::move(columns));

  if (speculative) {
    core::AcaNets nets = core::build_aca_into(nl, row0, row1, window,
                                              /*with_error_flag=*/true);
    m.sum = std::move(nets.sum);
    m.error = nets.error;
    nl.mark_output(m.error, "error");
  } else {
    std::vector<PG> pg = adders::bitwise_pg(nl, row0, row1);
    std::vector<PG> prefix = pg;
    adders::kogge_stone_core(nl, prefix);
    m.sum.resize(static_cast<std::size_t>(width));
    m.sum[0] = pg[0].p;
    for (int i = 1; i < width; ++i) {
      m.sum[static_cast<std::size_t>(i)] =
          nl.xor2(pg[static_cast<std::size_t>(i)].p,
                  prefix[static_cast<std::size_t>(i - 1)].g);
    }
  }
  nl.mark_output_bus("sum", m.sum);
  return m;
}

}  // namespace

MultiAdderNetlist build_exact_multi_adder(int width, int operands) {
  return build_multi(width, operands, /*window=*/0, /*speculative=*/false);
}

MultiAdderNetlist build_speculative_multi_adder(int width, int operands,
                                                int window) {
  if (window < 1) throw std::invalid_argument("multi_adder: window < 1");
  return build_multi(width, operands, window, /*speculative=*/true);
}

}  // namespace vlsa::multiop
