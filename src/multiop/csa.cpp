#include "multiop/csa.hpp"

namespace vlsa::multiop {

using netlist::NetId;
using netlist::Netlist;
using util::BitVec;

std::pair<BitVec, BitVec> csa_reduce_words(std::vector<BitVec> addends,
                                           int width) {
  while (addends.size() > 2) {
    std::vector<BitVec> next;
    std::size_t i = 0;
    while (addends.size() - i >= 3) {
      const BitVec& x = addends[i];
      const BitVec& y = addends[i + 1];
      const BitVec& z = addends[i + 2];
      next.push_back(x ^ y ^ z);
      next.push_back(((x & y) | (x & z) | (y & z)).shl(1));
      i += 3;
    }
    for (; i < addends.size(); ++i) next.push_back(addends[i]);
    addends = std::move(next);
  }
  if (addends.empty()) return {BitVec(width), BitVec(width)};
  if (addends.size() == 1) return {addends[0], BitVec(width)};
  return {addends[0], addends[1]};
}

namespace {

struct CsaBit {
  NetId sum;
  NetId carry;
};

CsaBit full_adder(Netlist& nl, NetId x, NetId y, NetId z) {
  const NetId xy = nl.xor2(x, y);
  // majority(x, y, z) = (x & y) | ((x ^ y) & z)
  return {nl.xor2(xy, z), nl.or2(nl.and2(x, y), nl.and2(xy, z))};
}

CsaBit half_adder(Netlist& nl, NetId x, NetId y) {
  return {nl.xor2(x, y), nl.and2(x, y)};
}

}  // namespace

std::pair<std::vector<NetId>, std::vector<NetId>> csa_reduce_columns(
    Netlist& nl, std::vector<std::vector<NetId>> columns) {
  const std::size_t wide = columns.size();
  bool more = true;
  while (more) {
    more = false;
    std::vector<std::vector<NetId>> next(wide);
    for (std::size_t col = 0; col < wide; ++col) {
      auto& bits = columns[col];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        const CsaBit fa = full_adder(nl, bits[i], bits[i + 1], bits[i + 2]);
        next[col].push_back(fa.sum);
        if (col + 1 < wide) next[col + 1].push_back(fa.carry);
        i += 3;
      }
      if (bits.size() - i == 2 && bits.size() > 2) {
        const CsaBit ha = half_adder(nl, bits[i], bits[i + 1]);
        next[col].push_back(ha.sum);
        if (col + 1 < wide) next[col + 1].push_back(ha.carry);
        i += 2;
      }
      for (; i < bits.size(); ++i) next[col].push_back(bits[i]);
    }
    columns = std::move(next);
    for (const auto& col : columns) {
      if (col.size() > 2) more = true;
    }
  }
  std::vector<NetId> row0(wide), row1(wide);
  for (std::size_t col = 0; col < wide; ++col) {
    row0[col] = columns[col].empty() ? nl.const0() : columns[col][0];
    row1[col] = columns[col].size() < 2 ? nl.const0() : columns[col][1];
  }
  return {row0, row1};
}

}  // namespace vlsa::multiop
