#include "approx/approx_adders.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/aca.hpp"

namespace vlsa::approx {

const char* approx_kind_name(ApproxKind kind) {
  switch (kind) {
    case ApproxKind::AcaWindow:
      return "ACA (sliding window)";
    case ApproxKind::EtaBlock:
      return "ETAII-style blocks";
    case ApproxKind::LowerOr:
      return "LOA (lower-part OR)";
    case ApproxKind::Truncated:
      return "truncated";
  }
  throw std::invalid_argument("approx_kind_name: bad kind");
}

namespace {

void check(const BitVec& a, const BitVec& b, int param) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("approx_add: width mismatch");
  }
  if (param < 1) throw std::invalid_argument("approx_add: param < 1");
}

// Aligned-block carries: block j's carry-in is the carry out of block
// j-1 computed with carry-in 0 (one block of lookahead, as in ETAII).
BitVec eta_block_add(const BitVec& a, const BitVec& b, int block) {
  const int n = a.width();
  BitVec sum(n);
  bool carry_into_block = false;  // carry into the current block
  for (int lo = 0; lo < n; lo += block) {
    const int hi = std::min(lo + block, n);
    bool c = carry_into_block;
    bool c_from_zero = false;  // same block rippled with carry-in 0
    for (int i = lo; i < hi; ++i) {
      const bool ai = a.bit(i), bi = b.bit(i);
      sum.set_bit(i, ai ^ bi ^ c);
      c = (ai && bi) || ((ai != bi) && c);
      c_from_zero = (ai && bi) || ((ai != bi) && c_from_zero);
    }
    carry_into_block = c_from_zero;  // next block sees the truncated carry
  }
  return sum;
}

BitVec lower_or_add(const BitVec& a, const BitVec& b, int low_bits) {
  const int n = a.width();
  const int l = std::min(low_bits, n);
  BitVec sum(n);
  for (int i = 0; i < l; ++i) sum.set_bit(i, a.bit(i) || b.bit(i));
  // Exact upper part; LOA feeds it carry-in a_{l-1} & b_{l-1}.
  bool c = l > 0 && a.bit(l - 1) && b.bit(l - 1);
  for (int i = l; i < n; ++i) {
    const bool ai = a.bit(i), bi = b.bit(i);
    sum.set_bit(i, ai ^ bi ^ c);
    c = (ai && bi) || ((ai != bi) && c);
  }
  return sum;
}

BitVec truncated_add(const BitVec& a, const BitVec& b, int low_bits) {
  const int n = a.width();
  const int l = std::min(low_bits, n);
  BitVec sum(n);
  // Constant all-ones low part (halves the expected truncation error
  // versus all-zeros) and an exact upper adder with carry-in 0.
  for (int i = 0; i < l; ++i) sum.set_bit(i, true);
  bool c = false;
  for (int i = l; i < n; ++i) {
    const bool ai = a.bit(i), bi = b.bit(i);
    sum.set_bit(i, ai ^ bi ^ c);
    c = (ai && bi) || ((ai != bi) && c);
  }
  return sum;
}

}  // namespace

BitVec approx_add(ApproxKind kind, const BitVec& a, const BitVec& b,
                  int param) {
  check(a, b, param);
  switch (kind) {
    case ApproxKind::AcaWindow:
      return core::aca_add(a, b, param).sum;
    case ApproxKind::EtaBlock:
      return eta_block_add(a, b, param);
    case ApproxKind::LowerOr:
      return lower_or_add(a, b, param);
    case ApproxKind::Truncated:
      return truncated_add(a, b, param);
  }
  throw std::invalid_argument("approx_add: bad kind");
}

int carry_span(ApproxKind kind, int width, int param) {
  switch (kind) {
    case ApproxKind::AcaWindow:
      return std::min(param, width);
    case ApproxKind::EtaBlock:
      // A block plus its predecessor's lookahead.
      return std::min(2 * param, width);
    case ApproxKind::LowerOr:
    case ApproxKind::Truncated:
      // The exact upper adder dominates.
      return std::max(width - param, 1);
  }
  throw std::invalid_argument("carry_span: bad kind");
}

bool has_error_flag(ApproxKind kind) {
  return kind == ApproxKind::AcaWindow;
}

}  // namespace vlsa::approx
