#pragma once
// A small zoo of classical approximate adders, for positioning the ACA.
//
// The paper seeded a large approximate-arithmetic literature; the designs
// here are the standard comparison points that followed it.  All share
// the same contract: break the carry chain somewhere and accept errors.
// They differ in *where* the error mass goes:
//
//   * ACA (this paper)    — sliding k-window carries; errors are rare but
//                           large, and uniquely: *detectable* (ER).
//   * ETAII-style blocks  — aligned s-bit blocks, each block's carry-in
//                           computed from the previous block only; a
//                           coarser (cheaper, weaker) version of the
//                           sliding window.
//   * LOA (lower-part OR) — low l bits approximated as a|b, exact adder
//                           on top; errors are frequent but tiny.
//   * Truncation          — low l bits forced to 1...1; the crudest
//                           trade-off, kept as the floor of the design
//                           space.
//
// Every variant reports a "carry span" (the number of consecutive bit
// positions its longest exact carry chain crosses), which is the
// log-delay proxy used for like-for-like comparisons.

#include <string>

#include "util/bitvec.hpp"

namespace vlsa::approx {

using util::BitVec;

enum class ApproxKind {
  AcaWindow,     ///< param = k (the paper's design)
  EtaBlock,      ///< param = block size s
  LowerOr,       ///< param = approximated low bits l
  Truncated,     ///< param = truncated low bits l
};

const char* approx_kind_name(ApproxKind kind);

/// Approximate sum (mod 2^width); `param` as documented per kind.
BitVec approx_add(ApproxKind kind, const BitVec& a, const BitVec& b,
                  int param);

/// Longest exact carry chain the design can resolve — the delay proxy
/// (the exact adder over the un-approximated part dominates for
/// LOA/truncation, hence width - param there).
int carry_span(ApproxKind kind, int width, int param);

/// True iff the design exposes a sound error-detection flag (only the
/// ACA does; this is its differentiator in the zoo).
bool has_error_flag(ApproxKind kind);

}  // namespace vlsa::approx
