#pragma once
// Static timing analysis and area accounting over a Netlist.
//
// The delay model is the cell library's linear model (intrinsic plus a
// per-fanout slope); primary inputs arrive at t = 0.  Because a Netlist
// is stored in topological order, one forward sweep suffices.

#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace vlsa::netlist {

/// Result of a full timing sweep.
struct TimingReport {
  double critical_delay_ns = 0.0;       ///< max arrival over primary outputs
  std::vector<double> arrival_ns;       ///< per net
  std::vector<NetId> critical_path;     ///< input→output chain of nets
  int logic_levels = 0;                 ///< max cell depth over outputs
};

/// Compute arrival times for every net and extract the critical path
/// ending at the latest primary output.
TimingReport analyze_timing(const Netlist& nl,
                            const CellLibrary& lib = CellLibrary::umc18());

/// Structural statistics used by the area/fanout comparisons.
struct AreaReport {
  double total_area = 0.0;  ///< NAND2-equivalent units
  int num_cells = 0;        ///< real cells (no inputs/constants)
  int max_fanout = 0;       ///< over all nets
  int max_input_fanout = 0; ///< over primary-input nets only
};

AreaReport analyze_area(const Netlist& nl,
                        const CellLibrary& lib = CellLibrary::umc18());

/// Sequential timing: register-to-register / input / output path classes
/// and the resulting minimum single-cycle clock period.  Paths *through*
/// a flip-flop are cut (Q launches at clk->Q, D pins are endpoints with
/// setup charged).  Multicycle paths (like the VLSA recovery cone) are
/// the caller's policy: compare `worst_*` against N x clock.
struct SeqTimingReport {
  double clk_to_q_ns = 0.0;
  double worst_reg_to_reg_ns = 0.0;   ///< Q -> D, incl. clk->Q and setup
  double worst_in_to_reg_ns = 0.0;    ///< input -> D, incl. setup
  double worst_reg_to_out_ns = 0.0;   ///< Q -> output, incl. clk->Q
  double worst_in_to_out_ns = 0.0;    ///< pure combinational feedthrough
  /// max of the register-bounded classes — the single-cycle constraint
  /// (feedthrough paths are reported but do not constrain the clock).
  double min_clock_ns = 0.0;
};
SeqTimingReport analyze_sequential_timing(
    const Netlist& nl, const CellLibrary& lib = CellLibrary::umc18());

}  // namespace vlsa::netlist
