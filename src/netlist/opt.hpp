#pragma once
// Structural analysis and the dead-logic elimination pass.
//
// Generators occasionally build signals that no output transitively
// consumes (e.g. the block-P half of the top prefix node of an adder).
// A synthesis tool would sweep these away before reporting area, so the
// benches do the same: `remove_dead_gates` rebuilds the netlist keeping
// only the cone of influence of the primary outputs, preserving port
// names (checked equivalent by netlist/equiv.hpp in the test suite).

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

/// Report of structurally suspicious (not ill-formed) constructs.
struct StructuralReport {
  int dead_gates = 0;       ///< cells no primary output depends on
  int unused_inputs = 0;    ///< primary inputs outside every output cone
  int total_cells = 0;
  bool has_outputs = false;
};

StructuralReport analyze_structure(const Netlist& nl);

/// Copy `nl` without dead cells.  Port names and semantics are preserved;
/// net ids are NOT (hold ports by name afterwards).
Netlist remove_dead_gates(const Netlist& nl);

}  // namespace vlsa::netlist
