#pragma once
// Cycle-accurate 64-lane simulation of sequential netlists.
//
// Flip-flop outputs are state: each `step` evaluates the combinational
// logic with the current state and the given inputs, samples the primary
// outputs, then latches every D input — i.e. one positive clock edge.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

class SequentialSimulator {
 public:
  /// Throws if any flip-flop's D input is unconnected.
  explicit SequentialSimulator(const Netlist& nl);

  /// Reset all flip-flops to 0 (all lanes).
  void reset();

  /// One clock cycle: returns the value of every net *before* the edge
  /// (i.e. the combinational response to `input_values` and the current
  /// state); then latches.
  std::vector<std::uint64_t> step(
      std::span<const std::uint64_t> input_values);

  /// State of a flip-flop's Q net (by its NetId), current lanes.
  std::uint64_t state_of(NetId q) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<NetId> dff_nets_;          // Q nets in creation order
  std::vector<std::uint64_t> state_;     // parallel to dff_nets_
};

}  // namespace vlsa::netlist
