#pragma once
// Gate-level netlist intermediate representation.
//
// A Netlist is a feed-forward (combinational) graph of library cells.
// Every cell drives exactly one net, identified by a dense NetId; cell
// inputs reference previously created nets, so creation order is already
// a topological order — STA and simulation exploit this.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/cell_library.hpp"

namespace vlsa::netlist {

/// Dense identifier of a net (== the index of its driving cell).
using NetId = std::int32_t;

inline constexpr NetId kNoNet = -1;

/// One cell instance; `output` equals its index in the gate array.
struct Gate {
  CellKind kind = CellKind::Const0;
  NetId inputs[3] = {kNoNet, kNoNet, kNoNet};  ///< used entries: fanin(kind)
  NetId output = kNoNet;
};

/// Named primary port (input or output).
struct Port {
  std::string name;
  NetId net = kNoNet;
};

/// Combinational netlist with named primary inputs/outputs.
class Netlist {
 public:
  explicit Netlist(std::string module_name = "top");

  const std::string& module_name() const { return module_name_; }

  // ----- construction -----

  /// Create a primary input net.
  NetId add_input(std::string name);

  /// Create a bus of `width` primary inputs named `name[0..width)`,
  /// least significant first.
  std::vector<NetId> add_input_bus(const std::string& name, int width);

  /// Mark an existing net as a primary output under `name`.
  void mark_output(NetId net, std::string name);

  /// Mark a whole bus of outputs named `name[0..width)`.
  void mark_output_bus(const std::string& name, std::span<const NetId> nets);

  /// Constant nets (created lazily, shared).
  NetId const0();
  NetId const1();

  /// Generic gate creation; inputs.size() must equal the cell's fanin.
  NetId add_gate(CellKind kind, std::span<const NetId> inputs);

  // Convenience builders (all validate operands).
  NetId buf(NetId a);
  NetId inv(NetId a);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId nand2(NetId a, NetId b);
  NetId nor2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b);
  NetId and3(NetId a, NetId b, NetId c);
  NetId or3(NetId a, NetId b, NetId c);
  NetId aoi21(NetId a, NetId b, NetId c);  ///< !((a & b) | c)
  NetId oai21(NetId a, NetId b, NetId c);  ///< !((a | b) & c)
  NetId mux2(NetId sel, NetId d0, NetId d1);

  /// Create a D flip-flop whose D input is connected later (sequential
  /// circuits need feedback); returns the Q net.  Connect with
  /// `connect_dff` before simulating/emitting.
  NetId dff();
  /// Create a flip-flop with an already-known D input.
  NetId dff(NetId d);
  /// Bind (or rebind) the D input of flip-flop `q`.
  void connect_dff(NetId q, NetId d);

  /// True iff the netlist contains any flip-flop.
  bool is_sequential() const { return num_dffs_ > 0; }
  int num_dffs() const { return num_dffs_; }
  /// Throws std::logic_error if any flip-flop's D input is unconnected.
  void check_dffs_connected() const;

  /// Balanced AND / OR reduction tree over any number of nets using
  /// 2- and 3-input cells.  An empty span yields the identity constant.
  NetId and_tree(std::span<const NetId> nets);
  NetId or_tree(std::span<const NetId> nets);

  // ----- inspection -----

  int num_nets() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(NetId id) const { return gates_[static_cast<std::size_t>(id)]; }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Port>& inputs() const { return inputs_; }
  const std::vector<Port>& outputs() const { return outputs_; }

  /// Number of real cells (excludes inputs and constants).
  int num_cells() const;

  /// Fanout of each net: number of gate input pins it drives plus one per
  /// primary output it feeds.
  std::vector<int> fanout_counts() const;

  /// Find a primary input/output net by exact port name; kNoNet if absent.
  NetId find_input(std::string_view name) const;
  NetId find_output(std::string_view name) const;

  /// Unchecked mutable access to a gate record, bypassing every
  /// construction-time invariant (operand existence, creation-order
  /// topology, one-driver-per-net).  Exists so the structural lint
  /// tests can seed exactly the defects the builder API refuses to
  /// create, and for low-level tooling; normal code never needs it —
  /// a netlist mutated through here is only safe to hand to
  /// netlist::lint().
  Gate& unchecked_gate(NetId id) {
    return gates_[static_cast<std::size_t>(id)];
  }

 private:
  NetId push_gate(CellKind kind, NetId a = kNoNet, NetId b = kNoNet,
                  NetId c = kNoNet);
  void check_operand(NetId id) const;

  std::string module_name_;
  std::vector<Gate> gates_;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  int num_dffs_ = 0;
};

}  // namespace vlsa::netlist
