#pragma once
// Technology cell library with a linear delay model.
//
// The paper synthesizes its generated circuits with a UMC 0.18 µm
// standard-cell library and compares delays/areas of circuits built from
// the *same* library, so all of its claims are relative.  We reproduce
// that with a self-contained library of combinational cells whose delay
// is modeled as
//
//     delay(cell, fanout) = intrinsic_ns + slope_ns * fanout
//
// and whose area is expressed in NAND2-equivalent gate units.  The values
// below are representative of a 0.18 µm-class process (sub-nanosecond
// simple gates, XOR ≈ 2× NAND, AOI between the two) — the *ratios* are
// what matter for reproducing Fig. 8.

#include <cstdint>
#include <string>

namespace vlsa::netlist {

/// Combinational cell kinds available to netlist generators.
/// `Input` is a pseudo-cell for primary inputs; `Const0`/`Const1` are tie
/// cells.
enum class CellKind : std::uint8_t {
  Input,
  Const0,
  Const1,
  Buf,
  Inv,
  And2,
  Or2,
  Nand2,
  Nor2,
  Xor2,
  Xnor2,
  And3,
  Or3,
  Aoi21,  // out = !((a & b) | c)
  Oai21,  // out = !((a | b) & c)
  Mux2,   // out = sel ? d1 : d0   (inputs: sel, d0, d1)
  Dff,    // positive-edge D flip-flop (input: d); intrinsic = clk->Q
};

/// Number of distinct cell kinds (for table sizing).
inline constexpr int kNumCellKinds = static_cast<int>(CellKind::Dff) + 1;

/// Setup time charged on every flip-flop D pin by the sequential STA.
inline constexpr double kDffSetupNs = 0.10;

/// Static description of one cell.
struct CellSpec {
  CellKind kind;
  const char* name;        ///< library cell name (used by the HDL emitters)
  int fanin;               ///< number of input pins
  double area;             ///< NAND2-equivalent units
  double intrinsic_ns;     ///< delay at fanout 1
  double slope_ns;         ///< additional delay per extra fanout
  double energy_fj;        ///< switching energy per output transition (fJ)
  bool inverting;          ///< true for logically inverting cells
};

/// A fixed technology library.  `umc18()` returns the default 0.18 µm-class
/// library used throughout the reproduction.
class CellLibrary {
 public:
  /// The default library (singleton, immutable).
  static const CellLibrary& umc18();

  /// A uniformly scaled copy of the default library (e.g. a faster
  /// process corner).  All relative claims in the benches must be
  /// invariant under this scaling — tested.
  static CellLibrary scaled(std::string name, double delay_scale,
                            double area_scale, double energy_scale = 1.0);

  const CellSpec& spec(CellKind kind) const;

  /// Pin-to-output delay of `kind` driving `fanout` sinks (fanout >= 0;
  /// a dangling net is charged as fanout 1).
  double delay_ns(CellKind kind, int fanout) const;

  /// Human-readable library name.
  const std::string& name() const { return name_; }

 private:
  explicit CellLibrary(std::string name);

  std::string name_;
  CellSpec specs_[kNumCellKinds];
};

/// Name of a cell kind (e.g. "NAND2") — convenience for diagnostics.
const char* cell_kind_name(CellKind kind);

}  // namespace vlsa::netlist
