#pragma once
// Structural lint — the netlist layer's machine-checked sanity pass.
//
// Every delay/area/error-rate number downstream (STA, the simulators,
// the Fig. 8 benches) silently assumes the generated netlist is
// well-formed: acyclic through combinational cells, every net driven
// exactly once, every used input pin connected, every cell observable
// from some primary output.  A generator bug that violates one of these
// does not crash anything — it just corrupts every number computed from
// the netlist, which is exactly the failure mode the rectification
// literature warns about for approximate-adder pipelines.  `lint()`
// turns each invariant into a typed diagnostic so generator bugs fail
// loudly, in tests and in `vlsa_tool lint`.
//
// Two severities:
//
//  * Error — structural corruption that invalidates analyses outright
//    (loops, undriven/multiply-driven nets, floating pins, invalid
//    references, port collisions).  Every shipped generator must be
//    error-clean at all times (tests/test_lint.cpp sweeps them).
//  * Warning — structurally legal but suspicious constructs (dead
//    cells, unused primary inputs, fanout-cap violations).  Generators
//    legitimately build dead logic that `remove_dead_gates` sweeps
//    before any area/delay is reported; after the sweep a netlist must
//    be completely clean.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

enum class LintKind {
  // ----- errors -----
  CombinationalLoop,   ///< cycle through combinational cells (no DFF cut)
  UndrivenNet,         ///< net id no gate's output claims
  MultiplyDrivenNet,   ///< net id claimed by more than one gate output
  InvalidNetRef,       ///< pin/output/port references an id outside the IR
  FloatingInput,       ///< used input pin (or DFF D) left unconnected
  PortNameCollision,   ///< two ports share one exact name
  PortBusGap,          ///< bus "name[i]" indices are not contiguous from 0
  // ----- warnings -----
  DeadCell,            ///< cell outside the cone of every primary output
  UnusedPrimaryInput,  ///< input net that feeds no pin and no output port
  FanoutCapExceeded,   ///< fanout above LintOptions::fanout_cap
};

enum class LintSeverity { Warning, Error };

/// Stable lower-case name, e.g. "combinational-loop" (CLI + test output).
[[nodiscard]] const char* lint_kind_name(LintKind kind);

[[nodiscard]] LintSeverity lint_kind_severity(LintKind kind);

/// One finding.  `net` is the offending net/cell id where one exists
/// (kNoNet for pure port-name findings); `pin` the offending input pin
/// for FloatingInput/InvalidNetRef on a pin (-1 otherwise).
struct LintDiagnostic {
  LintKind kind;
  NetId net = kNoNet;
  int pin = -1;
  std::string detail;

  /// "error: combinational-loop: net 12: <detail>".
  [[nodiscard]] std::string message() const;
};

struct LintOptions {
  /// Maximum allowed fanout per net; 0 disables the check.  The cell
  /// library's linear delay model stays meaningful only for bounded
  /// fanout, so benches comparing architectures may want a cap.
  int fanout_cap = 0;
  /// Observability warnings (dead cells / unused inputs) need primary
  /// outputs to reason from; they are skipped when the netlist has
  /// none, and can be disabled for intentionally partial netlists.
  bool check_dead_cells = true;
  bool check_unused_inputs = true;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  int errors = 0;
  int warnings = 0;

  /// No findings at all (the post-sweep bar for shipped generators).
  [[nodiscard]] bool clean() const { return errors == 0 && warnings == 0; }
  /// No Error-severity findings (the always-on bar).
  [[nodiscard]] bool structurally_sound() const { return errors == 0; }

  [[nodiscard]] std::vector<LintDiagnostic> of_kind(LintKind kind) const;

  /// One diagnostic message per line; "" when clean.
  [[nodiscard]] std::string to_string() const;
};

/// Run every structural check; diagnostics are ordered by check, then
/// by net id, so reports are deterministic.
[[nodiscard]] LintReport lint(const Netlist& nl, const LintOptions& options = {});

}  // namespace vlsa::netlist
