#pragma once
// 64-way bit-parallel functional simulator for Netlists.
//
// Each net carries a 64-bit word whose lanes are 64 independent test
// vectors, so one sweep over the netlist evaluates 64 stimuli.  This is
// the verification loop the paper ran outside the repo (VHDL simulation):
// every generated netlist in this repository is checked against an
// independent behavioral model through this simulator.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace vlsa::netlist {

/// Word-level (64-lane) evaluation of a single cell; unused operand
/// words may be anything.  Shared by the functional and fault simulators.
std::uint64_t eval_cell_word(CellKind kind, std::uint64_t a, std::uint64_t b,
                             std::uint64_t c);

/// Evaluates a netlist on 64 parallel input patterns.
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// `input_values[i]` is the 64-lane stimulus for the i-th primary input
  /// (in `Netlist::inputs()` order).  Returns the value of every net.
  std::vector<std::uint64_t> eval(
      std::span<const std::uint64_t> input_values) const;

  /// Evaluate and return only the primary outputs, in
  /// `Netlist::outputs()` order.
  std::vector<std::uint64_t> eval_outputs(
      std::span<const std::uint64_t> input_values) const;

  const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
};

/// Helpers for driving bus-structured netlists (e.g. adders) with BitVec
/// operands.  `lane` selects which of the 64 lanes carries the operand.
namespace stim {

/// Set operand bits into the per-input stimulus array.  `bus` holds the
/// NetIds of the bus (LSB first); `input_index_of_net` maps NetId to the
/// position in the inputs() order.
void load_operand(std::vector<std::uint64_t>& input_values,
                  const std::vector<int>& input_index_of_net,
                  std::span<const NetId> bus, const util::BitVec& value,
                  int lane);

/// Build the NetId → inputs()-index map for a netlist.
std::vector<int> input_index_map(const Netlist& nl);

/// Extract one lane of a bus from a full net-value array.
util::BitVec read_bus(const std::vector<std::uint64_t>& net_values,
                      std::span<const NetId> bus, int lane);

}  // namespace stim

}  // namespace vlsa::netlist
