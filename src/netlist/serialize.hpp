#pragma once
// Netlist serialization — a line-oriented text format that round-trips
// every construct of the IR (ports, gates, constants, flip-flops with
// feedback).  Generated designs can be cached to disk, diffed, and
// shipped alongside the emitted HDL.
//
// Format (one record per line, '#' comments ignored):
//
//   netlist <module-name>
//   input <name>                 # creates the next NetId
//   gate <CELL> <in0> [in1 [in2]]
//   const0 | const1
//   dff                          # D bound later
//   bind <q-net> <d-net>         # flip-flop feedback
//   output <net> <name>
//
// NetIds in the file are the dense creation indices, so a load replays
// creation in order and the ids match by construction (verified).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

/// Serialize to the text format.
std::string to_text(const Netlist& nl);

/// Parse the text format; throws std::invalid_argument with a line
/// number on malformed input.
Netlist from_text(const std::string& text);

}  // namespace vlsa::netlist
