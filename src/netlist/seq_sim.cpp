#include "netlist/seq_sim.hpp"

#include <stdexcept>

#include "netlist/simulator.hpp"

namespace vlsa::netlist {

SequentialSimulator::SequentialSimulator(const Netlist& nl) : nl_(&nl) {
  nl.check_dffs_connected();
  for (const Gate& g : nl.gates()) {
    if (g.kind == CellKind::Dff) dff_nets_.push_back(g.output);
  }
  state_.assign(dff_nets_.size(), 0);
}

void SequentialSimulator::reset() {
  state_.assign(dff_nets_.size(), 0);
}

std::vector<std::uint64_t> SequentialSimulator::step(
    std::span<const std::uint64_t> input_values) {
  const auto& gates = nl_->gates();
  const auto& inputs = nl_->inputs();
  if (input_values.size() != inputs.size()) {
    throw std::invalid_argument("SequentialSimulator: input arity mismatch");
  }
  std::vector<std::uint64_t> value(gates.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[static_cast<std::size_t>(inputs[i].net)] = input_values[i];
  }
  for (std::size_t i = 0; i < dff_nets_.size(); ++i) {
    value[static_cast<std::size_t>(dff_nets_[i])] = state_[i];
  }
  for (const Gate& g : gates) {
    if (g.kind == CellKind::Input || g.kind == CellKind::Dff) continue;
    const auto out = static_cast<std::size_t>(g.output);
    const auto in = [&](int i) {
      const NetId net = g.inputs[i];
      return net == kNoNet ? 0 : value[static_cast<std::size_t>(net)];
    };
    value[out] = eval_cell_word(g.kind, in(0), in(1), in(2));
  }
  // Latch: D values become the next state.
  for (std::size_t i = 0; i < dff_nets_.size(); ++i) {
    const Gate& g = nl_->gate(dff_nets_[i]);
    state_[i] = value[static_cast<std::size_t>(g.inputs[0])];
  }
  return value;
}

std::uint64_t SequentialSimulator::state_of(NetId q) const {
  for (std::size_t i = 0; i < dff_nets_.size(); ++i) {
    if (dff_nets_[i] == q) return state_[i];
  }
  throw std::invalid_argument("SequentialSimulator: not a flip-flop net");
}

}  // namespace vlsa::netlist
