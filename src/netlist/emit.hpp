#pragma once
// HDL emission from the netlist IR.
//
// The paper's experimental artifact is "a C++ program which takes the
// value n as input and generates VHDL files" for the ACA, error-detection
// and error-recovery circuits.  These emitters reproduce that artifact:
// any Netlist can be serialized to synthesizable structural VHDL-93 or
// Verilog-2001 (one concurrent assignment per cell, no behavioral code).

#include <string>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

/// Emit the netlist as a self-contained Verilog-2001 module.
std::string to_verilog(const Netlist& nl);

/// Emit the netlist as a self-contained VHDL-93 entity/architecture pair.
std::string to_vhdl(const Netlist& nl);

/// Sanitize a port name for HDL identifiers ("a[3]" → "a_3").
std::string sanitize_identifier(const std::string& name);

}  // namespace vlsa::netlist
