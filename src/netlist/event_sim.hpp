#pragma once
// Event-driven timing simulation.
//
// The static analyzer (sta.hpp) reports the *structural worst case*.  The
// paper's whole premise, however, is about typical inputs: "when adding
// two integers, the carry propagates only a small way in the vast
// majority of cases".  This simulator applies an input transition to a
// netlist and propagates events through the library's delay model,
// reporting when each output actually settles — so the data-dependent
// delay distribution (the quantity asynchronous speculative-completion
// adders like Nowick's exploit, cf. Sec. 2) can be measured directly.

#include <cstdint>
#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace vlsa::netlist {

/// Result of simulating one input transition.
struct TransitionResult {
  double settle_ns = 0.0;        ///< time the last primary output settled
  double last_event_ns = 0.0;    ///< time the last internal event fired
  long long events = 0;          ///< total events propagated (glitches incl.)
  double energy_fj = 0.0;        ///< switching energy of the transition
                                 ///  (per-cell energy x transitions,
                                 ///  glitches included — the honest number)
  std::vector<bool> outputs;     ///< final output values, outputs() order
};

/// Single-vector event-driven simulator (one boolean value per net).
class EventSimulator {
 public:
  explicit EventSimulator(const Netlist& nl,
                          const CellLibrary& lib = CellLibrary::umc18());

  /// Set the quiescent state for `inputs` (outputs() of previous vector)
  /// without advancing time; returns the settled output values.
  std::vector<bool> settle_initial(const std::vector<bool>& inputs);

  /// Apply a new input vector at t = 0 and propagate until quiescent.
  /// Must be called after settle_initial (or a previous transition).
  TransitionResult apply(const std::vector<bool>& inputs);

  const Netlist& netlist() const { return *nl_; }

 private:
  bool eval_gate(const Gate& gate) const;

  const Netlist* nl_;
  const CellLibrary* lib_;
  std::vector<bool> value_;                  // current value per net
  std::vector<double> gate_delay_;           // per driving gate
  std::vector<double> gate_energy_;          // per driving gate (fJ)
  std::vector<std::vector<NetId>> fanouts_;  // net -> driven gate outputs
  std::vector<int> output_index_;            // net -> outputs() index or -1
  bool initialized_ = false;
};

/// Convenience: mean/max settle time over random back-to-back transitions
/// of a two-operand circuit (used by the average-delay bench).
struct SettleStats {
  double mean_ns = 0.0;
  double max_ns = 0.0;
  double p99_ns = 0.0;
  double mean_energy_fj = 0.0;   ///< average switching energy per operation
};
SettleStats measure_settle_distribution(
    const Netlist& nl, int trials, std::uint64_t seed,
    const CellLibrary& lib = CellLibrary::umc18());

}  // namespace vlsa::netlist
