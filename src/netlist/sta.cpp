#include "netlist/sta.hpp"

#include <algorithm>

namespace vlsa::netlist {

TimingReport analyze_timing(const Netlist& nl, const CellLibrary& lib) {
  TimingReport report;
  const auto& gates = nl.gates();
  const std::vector<int> fanout = nl.fanout_counts();

  report.arrival_ns.assign(gates.size(), 0.0);
  std::vector<int> depth(gates.size(), 0);
  std::vector<NetId> critical_fanin(gates.size(), kNoNet);

  for (const Gate& g : gates) {
    const CellSpec& spec = lib.spec(g.kind);
    if (spec.fanin == 0) continue;  // inputs and constants arrive at 0
    if (g.kind == CellKind::Dff) {
      // Registers cut timing paths: Q launches at clk->Q (load-dependent).
      const auto out = static_cast<std::size_t>(g.output);
      report.arrival_ns[out] =
          lib.delay_ns(g.kind, std::max(fanout[out], 1));
      continue;
    }
    double worst_in = 0.0;
    NetId worst_net = kNoNet;
    int worst_depth = 0;
    for (int i = 0; i < spec.fanin; ++i) {
      const NetId in = g.inputs[i];
      const double t = report.arrival_ns[static_cast<std::size_t>(in)];
      if (worst_net == kNoNet || t > worst_in) {
        worst_in = t;
        worst_net = in;
      }
      worst_depth = std::max(worst_depth, depth[static_cast<std::size_t>(in)]);
    }
    const std::size_t out = static_cast<std::size_t>(g.output);
    report.arrival_ns[out] =
        worst_in + lib.delay_ns(g.kind, std::max(fanout[out], 1));
    depth[out] = worst_depth + 1;
    critical_fanin[out] = worst_net;
  }

  NetId worst_out = kNoNet;
  for (const Port& p : nl.outputs()) {
    const std::size_t n = static_cast<std::size_t>(p.net);
    if (worst_out == kNoNet ||
        report.arrival_ns[n] >
            report.arrival_ns[static_cast<std::size_t>(worst_out)]) {
      worst_out = p.net;
    }
    report.logic_levels = std::max(report.logic_levels, depth[n]);
  }
  if (worst_out != kNoNet) {
    report.critical_delay_ns =
        report.arrival_ns[static_cast<std::size_t>(worst_out)];
    for (NetId n = worst_out; n != kNoNet;
         n = critical_fanin[static_cast<std::size_t>(n)]) {
      report.critical_path.push_back(n);
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
  }
  return report;
}

AreaReport analyze_area(const Netlist& nl, const CellLibrary& lib) {
  AreaReport report;
  for (const Gate& g : nl.gates()) {
    const CellSpec& spec = lib.spec(g.kind);
    if (g.kind == CellKind::Input || g.kind == CellKind::Const0 ||
        g.kind == CellKind::Const1) {
      continue;
    }
    report.total_area += spec.area;
    report.num_cells += 1;
  }
  const std::vector<int> fanout = nl.fanout_counts();
  for (int f : fanout) report.max_fanout = std::max(report.max_fanout, f);
  for (const Port& p : nl.inputs()) {
    report.max_input_fanout =
        std::max(report.max_input_fanout,
                 fanout[static_cast<std::size_t>(p.net)]);
  }
  return report;
}

SeqTimingReport analyze_sequential_timing(const Netlist& nl,
                                          const CellLibrary& lib) {
  const TimingReport combinational = analyze_timing(nl, lib);
  SeqTimingReport report;
  report.clk_to_q_ns = lib.spec(CellKind::Dff).intrinsic_ns;

  // Classify each net by whether a register output feeds it (transitively).
  const auto& gates = nl.gates();
  std::vector<bool> reg_fed(gates.size(), false);
  for (const Gate& g : gates) {
    if (g.kind == CellKind::Dff) {
      reg_fed[static_cast<std::size_t>(g.output)] = true;
      continue;
    }
    const int fanin = lib.spec(g.kind).fanin;
    for (int i = 0; i < fanin; ++i) {
      if (g.inputs[i] != kNoNet &&
          reg_fed[static_cast<std::size_t>(g.inputs[i])]) {
        reg_fed[static_cast<std::size_t>(g.output)] = true;
      }
    }
  }

  // Endpoints: flip-flop D pins (plus setup) and primary outputs.
  for (const Gate& g : gates) {
    if (g.kind != CellKind::Dff || g.inputs[0] == kNoNet) continue;
    const auto d = static_cast<std::size_t>(g.inputs[0]);
    const double t = combinational.arrival_ns[d] + kDffSetupNs;
    if (reg_fed[d]) {
      report.worst_reg_to_reg_ns = std::max(report.worst_reg_to_reg_ns, t);
    } else {
      report.worst_in_to_reg_ns = std::max(report.worst_in_to_reg_ns, t);
    }
  }
  for (const Port& p : nl.outputs()) {
    const auto net = static_cast<std::size_t>(p.net);
    const double t = combinational.arrival_ns[net];
    if (reg_fed[net]) {
      report.worst_reg_to_out_ns = std::max(report.worst_reg_to_out_ns, t);
    } else {
      report.worst_in_to_out_ns = std::max(report.worst_in_to_out_ns, t);
    }
  }
  report.min_clock_ns =
      std::max({report.worst_reg_to_reg_ns, report.worst_in_to_reg_ns,
                report.worst_reg_to_out_ns});
  return report;
}

}  // namespace vlsa::netlist
