#pragma once
// Self-contained CDCL SAT solver — the proof engine behind the formal
// equivalence checker (see formal/miter.hpp and docs/formal_verification.md).
//
// A deliberately small MiniSat-style core: two-literal watches, 1UIP
// conflict-clause learning with local minimization, VSIDS decision
// activities on an indexed heap, phase saving, Luby restarts and learnt
// clause-database reduction.  Solving under *assumptions* is first-class
// because the miter slices one proof obligation per output and reuses
// everything the solver learned for the lower bits — the incremental
// pattern that makes wide adder miters tractable (PolyAdd, arXiv
// 2009.03242, shows adder equivalence is polynomially easy; slicing is
// how a general-purpose CDCL core gets to exploit that structure).
//
// No external dependencies; nothing here knows about netlists.

#include <cstdint>
#include <span>
#include <vector>

namespace vlsa::netlist::formal {

/// A literal: variable index (0-based) with sign, encoded as 2*var + neg.
/// This is the encoding the watch lists index on, so it is also the
/// public one — use the helpers below rather than the raw arithmetic.
using Lit = std::int32_t;

inline constexpr Lit kLitUndef = -1;

constexpr Lit make_lit(int var, bool negated = false) {
  return static_cast<Lit>(2 * var + (negated ? 1 : 0));
}
constexpr Lit negate(Lit l) { return l ^ 1; }
constexpr int var_of(Lit l) { return l >> 1; }
constexpr bool sign_of(Lit l) { return (l & 1) != 0; }

/// Outcome of a `solve()` call.  `Unknown` is only possible when a
/// conflict budget was given and exhausted.
enum class SatVerdict { Sat, Unsat, Unknown };

struct SolverStats {
  long long decisions = 0;
  long long conflicts = 0;
  long long propagations = 0;
  long long learned_clauses = 0;
  long long learned_literals = 0;
  long long restarts = 0;
};

class Solver {
 public:
  Solver();

  /// Create a fresh variable; returns its index.
  int new_var();
  int num_vars() const { return static_cast<int>(assign_.size()); }
  int num_clauses() const { return num_problem_clauses_; }

  /// Add a problem clause (disjunction of literals).  Returns false if
  /// the clause makes the formula trivially unsatisfiable at the top
  /// level (the solver is then dead: every solve() returns Unsat).
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Solve under `assumptions` (each literal is held true for this call
  /// only).  `conflict_limit` of 0 means no budget.  Learnt clauses are
  /// kept across calls — that is the point.
  SatVerdict solve(std::span<const Lit> assumptions = {},
                   long long conflict_limit = 0);

  /// After a Sat verdict: the value of `var` in the satisfying model
  /// (unconstrained variables default to false).
  bool model_value(int var) const {
    return model_[static_cast<std::size_t>(var)] == 1;
  }

  const SolverStats& stats() const { return stats_; }

 private:
  // Truth values are stored per variable: 0 = false, 1 = true, 2 = unset.
  static constexpr std::uint8_t kFalse = 0, kTrue = 1, kUnset = 2;

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  struct Watcher {
    int clause = -1;
    Lit blocker = kLitUndef;  // satisfied blocker short-circuits the visit
  };

  std::uint8_t lit_value(Lit l) const {
    const std::uint8_t v = assign_[static_cast<std::size_t>(var_of(l))];
    return v == kUnset ? kUnset : (v ^ static_cast<std::uint8_t>(sign_of(l)));
  }

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void enqueue(Lit l, int reason);
  int propagate();  // returns conflicting clause index or -1
  void analyze(int confl, std::vector<Lit>& learnt, int& backtrack_level);
  bool literal_redundant(Lit l) const;
  void cancel_until(int level);
  int pick_branch_var();

  void var_bump(int var);
  void var_decay() { var_inc_ /= kVarDecay; }
  void clause_bump(Clause& c);
  void clause_decay() { clause_inc_ /= kClauseDecay; }
  void heap_insert(int var);
  void heap_percolate_up(int pos);
  void heap_percolate_down(int pos);
  int heap_pop();

  int attach_clause(std::vector<Lit> lits, bool learnt);
  void detach_clause(int idx);
  void reduce_learnt_db();

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;

  std::vector<Clause> clauses_;       // problem + learnt, index = clause ref
  std::vector<int> learnt_refs_;      // indices of live learnt clauses
  int num_problem_clauses_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit
  std::vector<std::uint8_t> assign_;           // per var
  std::vector<std::uint8_t> polarity_;         // saved phase per var
  std::vector<int> level_;                     // per var
  std::vector<int> reason_;                    // per var, clause ref or -1
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_;       // max-heap of vars by activity
  std::vector<int> heap_pos_;   // var -> position in heap_, -1 if absent

  std::vector<std::uint8_t> seen_;  // analyze scratch, per var
  std::vector<std::uint8_t> model_;
  bool dead_ = false;  // top-level contradiction reached

  double max_learnts_ = 0;
  SolverStats stats_;
};

}  // namespace vlsa::netlist::formal
