#pragma once
// Structurally hashed CNF construction from netlists (Tseitin encoding).
//
// The builder maintains an AIG-like node graph over solver literals:
// every cell of a Netlist is decomposed into AND / XOR nodes with
// inverters folded into literal polarity, constants propagated, and
// identical nodes merged by a structural hash.  Because a miter encodes
// *two* circuits over the same input literals, the hash merges their
// common substructure — two runs of the same generator collapse to the
// same literals and the miter is proved by construction, and even
// unrelated adders share their propagate/generate layer.  Clauses are
// emitted only for nodes inside the cone of influence of the requested
// roots, using the standard Tseitin clauses (3 per AND, 4 per XOR).

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/formal/solver.hpp"
#include "netlist/netlist.hpp"

namespace vlsa::netlist::formal {

/// Builds a hashed AND/XOR node graph and emits it as CNF.
class CnfBuilder {
 public:
  CnfBuilder();

  /// The constant literals (var 0 is reserved as "true").
  Lit lit_true() const { return make_lit(0, false); }
  Lit lit_false() const { return make_lit(0, true); }

  /// A fresh unconstrained variable (primary input).
  Lit add_input();

  // Hashed, constant-folding node constructors.
  Lit lit_and(Lit a, Lit b);
  Lit lit_or(Lit a, Lit b) {
    return negate(lit_and(negate(a), negate(b)));
  }
  Lit lit_xor(Lit a, Lit b);
  Lit lit_mux(Lit sel, Lit d0, Lit d1) {
    return lit_or(lit_and(sel, d1), lit_and(negate(sel), d0));
  }

  /// The literal computed by one library cell over operand literals
  /// (combinational kinds only; throws on Dff).
  Lit lit_cell(CellKind kind, Lit a, Lit b, Lit c);

  /// Encode a whole combinational netlist: `input_lits[i]` drives the
  /// i-th primary input (Netlist::inputs() order).  Returns the literal
  /// of every net, indexed by NetId.
  std::vector<Lit> encode_netlist(const Netlist& nl,
                                  std::span<const Lit> input_lits);

  /// Number of structural nodes (inputs + AND + XOR, excluding the
  /// constant).
  int num_nodes() const { return static_cast<int>(nodes_.size()) - 1; }

  /// Emit Tseitin clauses for every node in the cone of influence of
  /// `roots` into `solver` (which must be empty).  Returns the number of
  /// clauses emitted.  Call once; solve with roots as assumptions or
  /// assert them via Solver::add_clause.  `in_cone_out`, if given, gets
  /// one flag per variable saying whether its node was encoded.
  int emit(Solver& solver, std::span<const Lit> roots,
           std::vector<char>* in_cone_out = nullptr) const;

  /// 64 parallel random-ish evaluations of every node, for candidate
  /// discovery in SAT sweeping: `input_words[i]` is the 64-lane value of
  /// input i (add_input() order).  Returns one word per node variable.
  std::vector<std::uint64_t> simulate(
      std::span<const std::uint64_t> input_words) const;

  int num_inputs() const { return static_cast<int>(input_vars_.size()); }
  /// Variable of the i-th add_input() call.
  int input_var(int i) const { return input_vars_[static_cast<std::size_t>(i)]; }

 private:
  enum class NodeType : std::uint8_t { Const, Input, And, Xor };

  struct Node {
    NodeType type;
    Lit a = kLitUndef;
    Lit b = kLitUndef;
  };

  struct Key {
    std::uint8_t type;
    Lit a;
    Lit b;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = static_cast<std::uint64_t>(k.type) << 60;
      h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.a)) << 29);
      h ^= static_cast<std::uint32_t>(k.b);
      h *= 0x9e3779b97f4a7c15ULL;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  Lit new_node(NodeType type, Lit a, Lit b);

  std::vector<Node> nodes_;  // indexed by variable
  std::vector<int> input_vars_;
  std::unordered_map<Key, Lit, KeyHash> hash_;
};

}  // namespace vlsa::netlist::formal
