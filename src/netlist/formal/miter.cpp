#include "netlist/formal/miter.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "netlist/formal/cnf.hpp"
#include "netlist/formal/solver.hpp"
#include "util/rng.hpp"

namespace vlsa::netlist::formal {

namespace {

// Map a port list to name -> index, rejecting nothing (netlist
// construction already forbids duplicate port names).
std::unordered_map<std::string, std::size_t> port_index(
    const std::vector<Port>& ports) {
  std::unordered_map<std::string, std::size_t> map;
  map.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) map.emplace(ports[i].name, i);
  return map;
}

// One compared output pair, in lhs outputs() order.
struct ComparedOutput {
  std::string name;
  Lit diff;  // XOR of the two output literals
};

// The SAT-sweeping preprocessing pass: find internal equivalence
// candidates by constrained random simulation, confirm them bottom-up
// with budgeted incremental SAT calls, and pin each proven equality into
// the solver as two binary clauses.  Proven facts make the final
// output-slice proofs near-trivial on wide adder miters.
struct SweepOutcome {
  int candidates = 0;
  int merges = 0;
};

SweepOutcome sat_sweep(const CnfBuilder& builder, Solver& solver,
                       const std::vector<char>& in_cone,
                       std::span<const Lit> care_zero_lits,
                       const FormalOptions& options) {
  SweepOutcome outcome;
  const int num_inputs = builder.num_inputs();
  const int num_vars = builder.num_nodes() + 1;

  // Accumulate >= 128 signature bits per node over lanes where every
  // care literal (the assumed-zero flags) evaluates to 0, so that
  // *conditionally* equivalent nodes — equal only when the flag is quiet
  // — still land in the same candidate bucket.
  constexpr int kSigWords = 2;
  constexpr int kSigBits = kSigWords * 64;
  std::vector<std::uint64_t> sig(
      static_cast<std::size_t>(num_vars) * kSigWords, 0);
  util::Rng rng(options.seed);
  std::vector<std::uint64_t> input_words(static_cast<std::size_t>(num_inputs));
  int collected = 0;
  for (int round = 0; round < 64 && collected < kSigBits; ++round) {
    for (auto& w : input_words) w = rng.next_u64();
    const std::vector<std::uint64_t> value = builder.simulate(input_words);
    std::uint64_t care = ~std::uint64_t{0};
    for (const Lit f : care_zero_lits) {
      const std::uint64_t w = value[static_cast<std::size_t>(var_of(f))];
      care &= sign_of(f) ? w : ~w;
    }
    for (int lane = 0; lane < 64 && collected < kSigBits; ++lane) {
      if (((care >> lane) & 1) == 0) continue;
      const int word = collected / 64;
      const int bit = collected % 64;
      for (int v = 0; v < num_vars; ++v) {
        const std::uint64_t b =
            (value[static_cast<std::size_t>(v)] >> lane) & 1;
        sig[static_cast<std::size_t>(v) * kSigWords +
            static_cast<std::size_t>(word)] |= b << bit;
      }
      ++collected;
    }
  }
  if (collected < kSigBits) return outcome;  // care set too thin: skip

  // Bucket nodes by polarity-canonical signature (a node and its
  // complement conjecture the same equivalence class).
  struct SigKey {
    std::uint64_t w0, w1;
    bool operator==(const SigKey&) const = default;
  };
  struct SigKeyHash {
    std::size_t operator()(const SigKey& k) const {
      std::uint64_t h = k.w0 * 0x9e3779b97f4a7c15ULL;
      h ^= k.w1 + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Member {
    int var;
    bool flipped;
  };
  std::unordered_map<SigKey, std::vector<Member>, SigKeyHash> buckets;
  for (int v = 1; v < num_vars; ++v) {  // skip the constant
    if (!in_cone[static_cast<std::size_t>(v)]) continue;
    std::uint64_t w0 = sig[static_cast<std::size_t>(v) * kSigWords];
    std::uint64_t w1 = sig[static_cast<std::size_t>(v) * kSigWords + 1];
    const bool flip = (w0 & 1) != 0;
    if (flip) {
      w0 = ~w0;
      w1 = ~w1;
    }
    buckets[SigKey{w0, w1}].push_back({v, flip});
  }

  // Confirm candidates bottom-up: within a bucket the lowest variable is
  // the representative (creation order is topological), and each later
  // member is conjectured equal to it modulo relative polarity.
  struct Candidate {
    int rep, var;
    bool anti;  // true: var == NOT rep
  };
  std::vector<Candidate> candidates;
  for (auto& [key, members] : buckets) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end(),
              [](const Member& a, const Member& b) { return a.var < b.var; });
    for (std::size_t i = 1; i < members.size(); ++i) {
      candidates.push_back({members[0].var, members[i].var,
                            members[0].flipped != members[i].flipped});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.var < b.var; });
  outcome.candidates = static_cast<int>(candidates.size());

  for (const Candidate& c : candidates) {
    const Lit rep = make_lit(c.rep, false);
    const Lit m = make_lit(c.var, c.anti);  // conjecture: rep == m
    // rep == m  iff  both (rep & !m) and (!rep & m) are unsatisfiable.
    const Lit q1[2] = {rep, negate(m)};
    if (solver.solve(q1, options.sweep_conflict_limit) != SatVerdict::Unsat) {
      continue;
    }
    const Lit q2[2] = {negate(rep), m};
    if (solver.solve(q2, options.sweep_conflict_limit) != SatVerdict::Unsat) {
      continue;
    }
    solver.add_clause({negate(rep), m});
    solver.add_clause({rep, negate(m)});
    ++outcome.merges;
  }
  return outcome;
}

}  // namespace

std::string FormalResult::summary() const {
  std::ostringstream out;
  switch (verdict) {
    case FormalVerdict::Proven:
      out << "PROVEN equivalent: " << outputs_compared << " output(s) UNSAT ("
          << outputs_structural << " structural)";
      break;
    case FormalVerdict::Counterexample:
      out << "NOT equivalent: output '" << mismatched_output
          << "' differs (counterexample found)";
      break;
    case FormalVerdict::Unknown:
      out << "UNKNOWN: conflict budget exhausted on output '"
          << mismatched_output << "'";
      break;
  }
  out << "; " << nodes << " nodes, " << clauses << " clauses, " << conflicts
      << " conflicts, " << decisions << " decisions";
  if (sweep_candidates > 0) {
    out << ", sweep " << sweep_merges << "/" << sweep_candidates;
  }
  return out.str();
}

FormalResult check_equivalence_formal(const Netlist& lhs, const Netlist& rhs,
                                      const MiterSpec& spec,
                                      const FormalOptions& options) {
  if (lhs.is_sequential() || rhs.is_sequential()) {
    throw std::invalid_argument(
        "check_equivalence_formal: combinational netlists only");
  }

  // ----- input matching (by name, must agree exactly) -----
  // Name-check both directions before the count so the exception names
  // the first offending port rather than reporting a bare count.
  const auto rhs_inputs = port_index(rhs.inputs());
  const auto lhs_inputs = port_index(lhs.inputs());
  for (const Port& p : rhs.inputs()) {
    if (lhs_inputs.find(p.name) == lhs_inputs.end()) {
      throw std::invalid_argument("check_equivalence_formal: input '" +
                                  p.name + "' missing from '" +
                                  lhs.module_name() + "'");
    }
  }
  CnfBuilder builder;
  std::vector<Lit> lhs_in_lits;
  std::vector<Lit> rhs_in_lits(rhs.inputs().size(), kLitUndef);
  lhs_in_lits.reserve(lhs.inputs().size());
  for (const Port& p : lhs.inputs()) {
    const auto it = rhs_inputs.find(p.name);
    if (it == rhs_inputs.end()) {
      throw std::invalid_argument(
          "check_equivalence_formal: input '" + p.name +
          "' missing from '" + rhs.module_name() + "'");
    }
    const Lit l = builder.add_input();
    lhs_in_lits.push_back(l);
    rhs_in_lits[it->second] = l;
  }

  // ----- encode both circuits over the shared input literals -----
  const std::vector<Lit> lhs_nets = builder.encode_netlist(lhs, lhs_in_lits);
  const std::vector<Lit> rhs_nets = builder.encode_netlist(rhs, rhs_in_lits);
  const auto lhs_out_lit = [&](const Port& p) {
    return lhs_nets[static_cast<std::size_t>(p.net)];
  };
  const auto rhs_out_lit = [&](const Port& p) {
    return rhs_nets[static_cast<std::size_t>(p.net)];
  };

  // ----- output matching -----
  std::unordered_set<std::string> assumed(spec.assume_zero.begin(),
                                          spec.assume_zero.end());
  const auto lhs_outputs = port_index(lhs.outputs());
  const auto rhs_outputs = port_index(rhs.outputs());
  std::vector<Lit> assume_lits;
  for (const std::string& name : spec.assume_zero) {
    const auto it = lhs_outputs.find(name);
    if (it == lhs_outputs.end()) {
      throw std::invalid_argument(
          "check_equivalence_formal: assumed-zero output '" + name +
          "' is not an output of '" + lhs.module_name() + "'");
    }
    assume_lits.push_back(lhs_out_lit(lhs.outputs()[it->second]));
  }
  std::vector<ComparedOutput> compared;
  for (const Port& p : lhs.outputs()) {
    if (assumed.contains(p.name)) continue;
    const auto it = rhs_outputs.find(p.name);
    if (it == rhs_outputs.end()) {
      if (spec.ignore_unmatched_outputs) continue;
      throw std::invalid_argument(
          "check_equivalence_formal: output '" + p.name +
          "' missing from '" + rhs.module_name() + "'");
    }
    const Lit diff = builder.lit_xor(
        lhs_out_lit(p), rhs_out_lit(rhs.outputs()[it->second]));
    compared.push_back({p.name, diff});
  }
  if (!spec.ignore_unmatched_outputs) {
    for (const Port& p : rhs.outputs()) {
      if (!lhs_outputs.contains(p.name) && !assumed.contains(p.name)) {
        throw std::invalid_argument(
            "check_equivalence_formal: output '" + p.name +
            "' missing from '" + lhs.module_name() + "'");
      }
    }
  }
  if (compared.empty()) {
    throw std::invalid_argument(
        "check_equivalence_formal: no outputs left to compare");
  }

  // ----- emit the cone of all proof obligations -----
  FormalResult result;
  result.nodes = builder.num_nodes();
  std::vector<Lit> roots;
  roots.reserve(compared.size() + assume_lits.size());
  for (const ComparedOutput& c : compared) roots.push_back(c.diff);
  for (const Lit a : assume_lits) roots.push_back(a);
  Solver solver;
  std::vector<char> in_cone;
  result.clauses = builder.emit(solver, roots, &in_cone);
  for (const Lit a : assume_lits) {
    solver.add_clause({negate(a)});  // the flag = 0 assumption, permanent
  }

  // ----- SAT sweeping: pin internal equivalences bottom-up -----
  if (options.sweep) {
    const SweepOutcome sweep =
        sat_sweep(builder, solver, in_cone, assume_lits, options);
    result.sweep_candidates = sweep.candidates;
    result.sweep_merges = sweep.merges;
  }

  // ----- prove one output slice at a time, LSB first -----
  const auto finish = [&](FormalResult& r) -> FormalResult& {
    r.conflicts = solver.stats().conflicts;
    r.decisions = solver.stats().decisions;
    r.propagations = solver.stats().propagations;
    return r;
  };
  for (const ComparedOutput& c : compared) {
    ++result.outputs_compared;
    if (c.diff == builder.lit_false()) {
      ++result.outputs_structural;  // hashed to the same literal
      continue;
    }
    const SatVerdict verdict =
        c.diff == builder.lit_true()
            ? solver.solve({}, options.conflict_limit)  // any model differs
            : [&] {
                const Lit assumption[1] = {c.diff};
                return solver.solve(assumption, options.conflict_limit);
              }();
    if (verdict == SatVerdict::Unsat) {
      // Pin the proven equality so later slices can reuse it.
      solver.add_clause({negate(c.diff)});
      continue;
    }
    result.mismatched_output = c.name;
    if (verdict == SatVerdict::Unknown) {
      result.verdict = FormalVerdict::Unknown;
      return finish(result);
    }
    result.verdict = FormalVerdict::Counterexample;
    result.counterexample.resize(lhs.inputs().size());
    for (std::size_t i = 0; i < lhs.inputs().size(); ++i) {
      result.counterexample[i] =
          solver.model_value(var_of(lhs_in_lits[i])) != sign_of(lhs_in_lits[i]);
    }
    return finish(result);
  }
  return finish(result);
}

util::BitVec counterexample_bus(const Netlist& lhs,
                                const std::vector<bool>& assignment,
                                const std::string& name) {
  const auto& inputs = lhs.inputs();
  if (assignment.size() != inputs.size()) {
    throw std::invalid_argument(
        "counterexample_bus: assignment size does not match lhs inputs");
  }
  // Gather `name[i]` members (or the scalar port `name`).
  std::vector<std::pair<int, bool>> bits;  // (bit index, value)
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::string& port = inputs[i].name;
    if (port == name) {
      bits.emplace_back(0, assignment[i]);
      continue;
    }
    if (port.size() > name.size() + 2 && port.compare(0, name.size(), name) == 0 &&
        port[name.size()] == '[' && port.back() == ']') {
      const int idx = std::stoi(port.substr(name.size() + 1,
                                            port.size() - name.size() - 2));
      bits.emplace_back(idx, assignment[i]);
    }
  }
  if (bits.empty()) {
    throw std::invalid_argument("counterexample_bus: no input named '" + name +
                                "'");
  }
  int width = 0;
  for (const auto& [idx, value] : bits) width = std::max(width, idx + 1);
  util::BitVec out(width);
  for (const auto& [idx, value] : bits) out.set_bit(idx, value);
  return out;
}

}  // namespace vlsa::netlist::formal
