#include "netlist/formal/cnf.hpp"

#include <stdexcept>

namespace vlsa::netlist::formal {

CnfBuilder::CnfBuilder() {
  nodes_.push_back({NodeType::Const, kLitUndef, kLitUndef});  // var 0 = true
}

Lit CnfBuilder::new_node(NodeType type, Lit a, Lit b) {
  const int var = static_cast<int>(nodes_.size());
  nodes_.push_back({type, a, b});
  return make_lit(var, false);
}

Lit CnfBuilder::add_input() {
  const Lit l = new_node(NodeType::Input, kLitUndef, kLitUndef);
  input_vars_.push_back(var_of(l));
  return l;
}

Lit CnfBuilder::lit_and(Lit a, Lit b) {
  if (a == lit_false() || b == lit_false()) return lit_false();
  if (a == lit_true()) return b;
  if (b == lit_true()) return a;
  if (a == b) return a;
  if (a == negate(b)) return lit_false();
  if (a > b) std::swap(a, b);
  const Key key{static_cast<std::uint8_t>(NodeType::And), a, b};
  const auto it = hash_.find(key);
  if (it != hash_.end()) return it->second;
  const Lit l = new_node(NodeType::And, a, b);
  hash_.emplace(key, l);
  return l;
}

Lit CnfBuilder::lit_xor(Lit a, Lit b) {
  // Fold inverters into the result's polarity so XOR and XNOR of the
  // same operands hash to one node.
  bool pol = false;
  if (sign_of(a)) { a = negate(a); pol = !pol; }
  if (sign_of(b)) { b = negate(b); pol = !pol; }
  if (a == lit_true()) return pol ? b : negate(b);
  if (b == lit_true()) return pol ? a : negate(a);
  if (a == b) return pol ? lit_true() : lit_false();
  if (a > b) std::swap(a, b);
  const Key key{static_cast<std::uint8_t>(NodeType::Xor), a, b};
  const auto it = hash_.find(key);
  Lit l;
  if (it != hash_.end()) {
    l = it->second;
  } else {
    l = new_node(NodeType::Xor, a, b);
    hash_.emplace(key, l);
  }
  return pol ? negate(l) : l;
}

Lit CnfBuilder::lit_cell(CellKind kind, Lit a, Lit b, Lit c) {
  switch (kind) {
    case CellKind::Const0: return lit_false();
    case CellKind::Const1: return lit_true();
    case CellKind::Buf:    return a;
    case CellKind::Inv:    return negate(a);
    case CellKind::And2:   return lit_and(a, b);
    case CellKind::Or2:    return lit_or(a, b);
    case CellKind::Nand2:  return negate(lit_and(a, b));
    case CellKind::Nor2:   return negate(lit_or(a, b));
    case CellKind::Xor2:   return lit_xor(a, b);
    case CellKind::Xnor2:  return negate(lit_xor(a, b));
    case CellKind::And3:   return lit_and(lit_and(a, b), c);
    case CellKind::Or3:    return lit_or(lit_or(a, b), c);
    case CellKind::Aoi21:  return negate(lit_or(lit_and(a, b), c));
    case CellKind::Oai21:  return negate(lit_and(lit_or(a, b), c));
    case CellKind::Mux2:   return lit_mux(a, b, c);
    case CellKind::Input:
    case CellKind::Dff:
      break;
  }
  throw std::logic_error("CnfBuilder::lit_cell: non-combinational cell");
}

std::vector<Lit> CnfBuilder::encode_netlist(const Netlist& nl,
                                            std::span<const Lit> input_lits) {
  if (nl.is_sequential()) {
    throw std::invalid_argument(
        "CnfBuilder::encode_netlist: combinational netlists only");
  }
  if (input_lits.size() != nl.inputs().size()) {
    throw std::invalid_argument(
        "CnfBuilder::encode_netlist: input literal arity mismatch");
  }
  std::vector<Lit> net_lit(static_cast<std::size_t>(nl.num_nets()), kLitUndef);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    net_lit[static_cast<std::size_t>(nl.inputs()[i].net)] = input_lits[i];
  }
  // Creation order is topological, so one forward sweep suffices.
  for (const Gate& g : nl.gates()) {
    if (g.kind == CellKind::Input) continue;
    const auto in = [&](int i) {
      const NetId net = g.inputs[i];
      return net == kNoNet ? lit_false()
                           : net_lit[static_cast<std::size_t>(net)];
    };
    net_lit[static_cast<std::size_t>(g.output)] =
        lit_cell(g.kind, in(0), in(1), in(2));
  }
  return net_lit;
}

int CnfBuilder::emit(Solver& solver, std::span<const Lit> roots,
                     std::vector<char>* in_cone_out) const {
  if (solver.num_vars() != 0) {
    throw std::logic_error("CnfBuilder::emit: solver must be empty");
  }
  // Builder variables map 1:1 onto solver variables.
  for (std::size_t v = 0; v < nodes_.size(); ++v) solver.new_var();

  // Cone of influence of the roots (iterative DFS over node operands).
  std::vector<char> in_cone(nodes_.size(), 0);
  std::vector<int> stack;
  const auto visit = [&](Lit l) {
    const int v = var_of(l);
    if (!in_cone[static_cast<std::size_t>(v)]) {
      in_cone[static_cast<std::size_t>(v)] = 1;
      stack.push_back(v);
    }
  };
  for (const Lit r : roots) visit(r);
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(v)];
    if (n.type == NodeType::And || n.type == NodeType::Xor) {
      visit(n.a);
      visit(n.b);
    }
  }

  if (in_cone_out != nullptr) *in_cone_out = in_cone;

  int emitted = 0;
  solver.add_clause({lit_true()});  // the reserved constant
  ++emitted;
  for (std::size_t v = 1; v < nodes_.size(); ++v) {
    if (!in_cone[v]) continue;
    const Node& n = nodes_[v];
    const Lit o = make_lit(static_cast<int>(v), false);
    if (n.type == NodeType::And) {
      solver.add_clause({negate(o), n.a});
      solver.add_clause({negate(o), n.b});
      solver.add_clause({o, negate(n.a), negate(n.b)});
      emitted += 3;
    } else if (n.type == NodeType::Xor) {
      solver.add_clause({negate(o), n.a, n.b});
      solver.add_clause({negate(o), negate(n.a), negate(n.b)});
      solver.add_clause({o, negate(n.a), n.b});
      solver.add_clause({o, n.a, negate(n.b)});
      emitted += 4;
    }
  }
  return emitted;
}

std::vector<std::uint64_t> CnfBuilder::simulate(
    std::span<const std::uint64_t> input_words) const {
  if (input_words.size() != input_vars_.size()) {
    throw std::invalid_argument("CnfBuilder::simulate: input arity mismatch");
  }
  std::vector<std::uint64_t> value(nodes_.size(), 0);
  value[0] = ~std::uint64_t{0};  // constant true
  for (std::size_t i = 0; i < input_vars_.size(); ++i) {
    value[static_cast<std::size_t>(input_vars_[i])] = input_words[i];
  }
  const auto lit_word = [&](Lit l) {
    const std::uint64_t w = value[static_cast<std::size_t>(var_of(l))];
    return sign_of(l) ? ~w : w;
  };
  for (std::size_t v = 1; v < nodes_.size(); ++v) {
    const Node& n = nodes_[v];
    if (n.type == NodeType::And) {
      value[v] = lit_word(n.a) & lit_word(n.b);
    } else if (n.type == NodeType::Xor) {
      value[v] = lit_word(n.a) ^ lit_word(n.b);
    }
  }
  return value;
}

}  // namespace vlsa::netlist::formal
