#pragma once
// SAT-based formal equivalence checking between two netlists.
//
// Complements netlist/equiv.hpp's random simulation with *proof*: a
// miter is built over the shared primary inputs (matched by name), both
// circuits are Tseitin-encoded through the structurally hashing
// CnfBuilder, and each pair of same-named outputs is XOR-compared.  An
// UNSAT verdict on every XOR is a proof of equivalence at any width —
// this is what certifies the paper's central claims (ACA exactness
// whenever the error flag is 0, and recovery-path exactness) at widths
// the 64-way simulation checker cannot begin to exhaust.
//
// Conditional equivalence (the flag = 0 case) is encoded by constraining
// the named flag outputs of the first netlist to 0 and excluding them
// from comparison — the block-based conditional-error-model view of
// arXiv 1703.03522 reduced to a single assumption literal.
//
// Tractability at width 256+ comes from three layers (see
// docs/formal_verification.md):
//   1. structural hashing merges the circuits' common substructure;
//   2. SAT sweeping proves internal node equivalences bottom-up (found
//      by constrained random simulation, confirmed by budgeted SAT
//      calls) and pins them as clauses;
//   3. the outputs are proved one slice at a time, LSB first, on one
//      incremental solver that keeps everything it learned.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace vlsa::netlist::formal {

/// What the miter compares and what it assumes.
struct MiterSpec {
  /// lhs output names constrained to constant 0 (e.g. {"error"}); these
  /// are excluded from comparison on both sides.  Must exist on lhs.
  std::vector<std::string> assume_zero;
  /// If true, outputs present on only one side are skipped instead of
  /// rejected (used to compare a full VLSA datapath, which also exposes
  /// its speculative bus, against a plain exact adder).
  bool ignore_unmatched_outputs = false;
};

struct FormalOptions {
  /// Conflict budget per output proof obligation; 0 = unlimited.
  long long conflict_limit = 0;
  /// Enable the SAT-sweeping preprocessing layer.
  bool sweep = true;
  /// Conflict budget per internal sweeping candidate.
  long long sweep_conflict_limit = 2000;
  /// Random-simulation seed for sweeping candidate discovery.
  std::uint64_t seed = 1;
};

enum class FormalVerdict {
  Proven,          ///< every compared output UNSAT: equivalent
  Counterexample,  ///< some miter output SAT: inputs found that differ
  Unknown,         ///< conflict budget exhausted before a verdict
};

struct FormalResult {
  FormalVerdict verdict = FormalVerdict::Proven;
  bool proven() const { return verdict == FormalVerdict::Proven; }

  /// On Counterexample: the differing output (lhs name) and the input
  /// assignment, in lhs Netlist::inputs() order (decode buses with
  /// counterexample_bus()).  On Unknown: the output that timed out.
  std::string mismatched_output;
  std::vector<bool> counterexample;

  // Proof effort accounting.
  int outputs_compared = 0;
  int outputs_structural = 0;  ///< equal by structural hashing alone
  int sweep_candidates = 0;
  int sweep_merges = 0;
  int nodes = 0;     ///< hashed AND/XOR nodes in the combined graph
  int clauses = 0;   ///< Tseitin clauses emitted
  long long conflicts = 0;
  long long decisions = 0;
  long long propagations = 0;

  /// One-line human-readable verdict + effort summary.
  std::string summary() const;
};

/// Prove `lhs` and `rhs` equivalent (under `spec`), or produce a
/// counterexample.  Inputs are matched by name and must agree exactly;
/// throws std::invalid_argument naming the first offending port.
FormalResult check_equivalence_formal(const Netlist& lhs, const Netlist& rhs,
                                      const MiterSpec& spec = {},
                                      const FormalOptions& options = {});

/// Decode the bits of bus `name[0..w)` (or single-bit port `name`) from
/// a counterexample assignment into a BitVec, LSB first.
util::BitVec counterexample_bus(const Netlist& lhs,
                                const std::vector<bool>& assignment,
                                const std::string& name);

}  // namespace vlsa::netlist::formal
