#include "netlist/formal/solver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vlsa::netlist::formal {

Solver::Solver() = default;

int Solver::new_var() {
  const int v = num_vars();
  watches_.emplace_back();
  watches_.emplace_back();
  assign_.push_back(kUnset);
  polarity_.push_back(0);  // default phase false: circuit nets idle low
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  model_.push_back(0);
  heap_insert(v);
  return v;
}

// ----- activity heap (max-heap on activity_, indexed by heap_pos_) -----

void Solver::heap_insert(int var) {
  if (heap_pos_[static_cast<std::size_t>(var)] >= 0) return;
  heap_pos_[static_cast<std::size_t>(var)] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heap_percolate_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_percolate_up(int pos) {
  const int var = heap_[static_cast<std::size_t>(pos)];
  const double act = activity_[static_cast<std::size_t>(var)];
  while (pos > 0) {
    const int parent = (pos - 1) / 2;
    const int pvar = heap_[static_cast<std::size_t>(parent)];
    if (activity_[static_cast<std::size_t>(pvar)] >= act) break;
    heap_[static_cast<std::size_t>(pos)] = pvar;
    heap_pos_[static_cast<std::size_t>(pvar)] = pos;
    pos = parent;
  }
  heap_[static_cast<std::size_t>(pos)] = var;
  heap_pos_[static_cast<std::size_t>(var)] = pos;
}

void Solver::heap_percolate_down(int pos) {
  const int size = static_cast<int>(heap_.size());
  const int var = heap_[static_cast<std::size_t>(pos)];
  const double act = activity_[static_cast<std::size_t>(var)];
  while (true) {
    int child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child + 1)])] >
            activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child)])]) {
      ++child;
    }
    const int cvar = heap_[static_cast<std::size_t>(child)];
    if (act >= activity_[static_cast<std::size_t>(cvar)]) break;
    heap_[static_cast<std::size_t>(pos)] = cvar;
    heap_pos_[static_cast<std::size_t>(cvar)] = pos;
    pos = child;
  }
  heap_[static_cast<std::size_t>(pos)] = var;
  heap_pos_[static_cast<std::size_t>(var)] = pos;
}

int Solver::heap_pop() {
  const int top = heap_.front();
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  const int last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    heap_pos_[static_cast<std::size_t>(last)] = 0;
    heap_percolate_down(0);
  }
  return top;
}

void Solver::var_bump(int var) {
  double& act = activity_[static_cast<std::size_t>(var)];
  act += var_inc_;
  if (act > 1e100) {  // rescale everything to keep doubles finite
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  const int pos = heap_pos_[static_cast<std::size_t>(var)];
  if (pos >= 0) heap_percolate_up(pos);
}

void Solver::clause_bump(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (const int ref : learnt_refs_) {
      clauses_[static_cast<std::size_t>(ref)].activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

// ----- clause attachment -----

int Solver::attach_clause(std::vector<Lit> lits, bool learnt) {
  assert(lits.size() >= 2);
  const int idx = static_cast<int>(clauses_.size());
  Clause c;
  c.lits = std::move(lits);
  c.learnt = learnt;
  clauses_.push_back(std::move(c));
  const auto& stored = clauses_.back().lits;
  watches_[static_cast<std::size_t>(negate(stored[0]))].push_back(
      {idx, stored[1]});
  watches_[static_cast<std::size_t>(negate(stored[1]))].push_back(
      {idx, stored[0]});
  if (learnt) {
    learnt_refs_.push_back(idx);
  } else {
    ++num_problem_clauses_;
  }
  return idx;
}

void Solver::detach_clause(int idx) {
  Clause& c = clauses_[static_cast<std::size_t>(idx)];
  for (int w = 0; w < 2; ++w) {
    auto& list = watches_[static_cast<std::size_t>(negate(c.lits[static_cast<std::size_t>(w)]))];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].clause == idx) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
  c.deleted = true;
  c.lits.clear();
  c.lits.shrink_to_fit();
}

bool Solver::add_clause(std::span<const Lit> lits) {
  if (dead_) return false;
  if (decision_level() != 0) {
    throw std::logic_error("Solver::add_clause: only at decision level 0");
  }
  // Normalize: drop false/duplicate literals, detect tautologies.
  std::vector<Lit> c(lits.begin(), lits.end());
  std::sort(c.begin(), c.end());
  std::vector<Lit> out;
  out.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Lit l = c[i];
    if (i + 1 < c.size() && c[i + 1] == negate(l)) return true;  // tautology
    if (!out.empty() && out.back() == l) continue;
    if (lit_value(l) == kTrue) return true;  // already satisfied at level 0
    if (lit_value(l) == kFalse) continue;    // falsified at level 0: drop
    out.push_back(l);
  }
  if (out.empty()) {
    dead_ = true;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], -1);
    if (propagate() != -1) {
      dead_ = true;
      return false;
    }
    return true;
  }
  attach_clause(std::move(out), /*learnt=*/false);
  return true;
}

// ----- search -----

void Solver::enqueue(Lit l, int reason) {
  const auto v = static_cast<std::size_t>(var_of(l));
  assert(assign_[v] == kUnset);
  assign_[v] = sign_of(l) ? kFalse : kTrue;
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

int Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& list = watches_[static_cast<std::size_t>(p)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Watcher w = list[i];
      if (lit_value(w.blocker) == kTrue) {
        list[keep++] = w;
        continue;
      }
      Clause& c = clauses_[static_cast<std::size_t>(w.clause)];
      auto& cl = c.lits;
      // Ensure the falsified watch (¬p) sits in slot 1.
      if (cl[0] == negate(p)) std::swap(cl[0], cl[1]);
      if (lit_value(cl[0]) == kTrue) {
        list[keep++] = {w.clause, cl[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < cl.size(); ++k) {
        if (lit_value(cl[k]) != kFalse) {
          std::swap(cl[1], cl[k]);
          watches_[static_cast<std::size_t>(negate(cl[1]))].push_back(
              {w.clause, cl[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      list[keep++] = {w.clause, cl[0]};
      if (lit_value(cl[0]) == kFalse) {
        // Conflict: keep the remaining watchers, then report.
        for (std::size_t k = i + 1; k < list.size(); ++k) list[keep++] = list[k];
        list.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(cl[0], w.clause);
    }
    list.resize(keep);
  }
  return -1;
}

// True when every antecedent of `l` is already marked seen — the cheap
// (non-recursive) clause-minimization test.
bool Solver::literal_redundant(Lit l) const {
  const int r = reason_[static_cast<std::size_t>(var_of(l))];
  if (r < 0) return false;
  const Clause& c = clauses_[static_cast<std::size_t>(r)];
  for (const Lit q : c.lits) {
    if (var_of(q) == var_of(l)) continue;
    if (level_[static_cast<std::size_t>(var_of(q))] == 0) continue;
    if (!seen_[static_cast<std::size_t>(var_of(q))]) return false;
  }
  return true;
}

void Solver::analyze(int confl, std::vector<Lit>& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting (1UIP) literal
  int counter = 0;
  Lit p = kLitUndef;
  auto index = static_cast<int>(trail_.size()) - 1;
  // Every variable whose seen_ flag we raise, so all of them — including
  // literals later dropped by minimization — can be cleared at the end.
  std::vector<int> to_clear;

  do {
    Clause& c = clauses_[static_cast<std::size_t>(confl)];
    if (c.learnt) clause_bump(c);
    for (const Lit q : c.lits) {
      if (p != kLitUndef && q == p) continue;
      const auto v = static_cast<std::size_t>(var_of(q));
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      to_clear.push_back(var_of(q));
      var_bump(var_of(q));
      if (level_[v] >= decision_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail back to the next marked literal.
    while (!seen_[static_cast<std::size_t>(var_of(trail_[static_cast<std::size_t>(index)]))]) {
      --index;
    }
    p = trail_[static_cast<std::size_t>(index)];
    seen_[static_cast<std::size_t>(var_of(p))] = 0;
    confl = reason_[static_cast<std::size_t>(var_of(p))];
    --counter;
    --index;
  } while (counter > 0);
  learnt[0] = negate(p);

  // Local minimization: drop literals implied by the rest of the clause.
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (!literal_redundant(learnt[i])) learnt[kept++] = learnt[i];
  }
  learnt.resize(kept);

  // Backtrack to the second-highest decision level in the clause and put
  // that literal in watch slot 1.
  backtrack_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[static_cast<std::size_t>(var_of(learnt[i]))] >
          level_[static_cast<std::size_t>(var_of(learnt[max_i]))]) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[static_cast<std::size_t>(var_of(learnt[1]))];
  }
  // Clear every flag raised above, not just the surviving clause literals:
  // literals dropped by minimization would otherwise keep seen_ set and
  // silently corrupt the next conflict analysis.
  for (const int v : to_clear) seen_[static_cast<std::size_t>(v)] = 0;
}

void Solver::cancel_until(int target) {
  if (decision_level() <= target) return;
  const int bound = trail_lim_[static_cast<std::size_t>(target)];
  for (auto i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Lit l = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(var_of(l));
    polarity_[v] = assign_[v];  // phase saving
    assign_[v] = kUnset;
    reason_[v] = -1;
    heap_insert(var_of(l));
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(target));
  qhead_ = trail_.size();
}

int Solver::pick_branch_var() {
  while (!heap_.empty()) {
    const int v = heap_pop();
    if (assign_[static_cast<std::size_t>(v)] == kUnset) return v;
  }
  return -1;
}

void Solver::reduce_learnt_db() {
  // Keep the most active half; never drop a clause that is currently the
  // reason for an assignment, nor binary clauses (cheap and valuable).
  std::sort(learnt_refs_.begin(), learnt_refs_.end(), [this](int a, int b) {
    return clauses_[static_cast<std::size_t>(a)].activity <
           clauses_[static_cast<std::size_t>(b)].activity;
  });
  std::vector<char> locked(clauses_.size(), 0);
  for (const Lit l : trail_) {
    const int r = reason_[static_cast<std::size_t>(var_of(l))];
    if (r >= 0) locked[static_cast<std::size_t>(r)] = 1;
  }
  std::vector<int> kept;
  kept.reserve(learnt_refs_.size());
  const std::size_t to_drop = learnt_refs_.size() / 2;
  for (std::size_t i = 0; i < learnt_refs_.size(); ++i) {
    const int ref = learnt_refs_[i];
    const Clause& c = clauses_[static_cast<std::size_t>(ref)];
    if (i < to_drop && !locked[static_cast<std::size_t>(ref)] &&
        c.lits.size() > 2) {
      detach_clause(ref);
    } else {
      kept.push_back(ref);
    }
  }
  learnt_refs_ = std::move(kept);
}

namespace {
// Luby restart sequence: 1,1,2,1,1,2,4,...
double luby(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x = x % size;
  }
  double result = 1;
  for (int i = 0; i < seq; ++i) result *= y;
  return result;
}
}  // namespace

SatVerdict Solver::solve(std::span<const Lit> assumptions,
                         long long conflict_limit) {
  if (dead_) return SatVerdict::Unsat;
  for (const Lit a : assumptions) {
    if (var_of(a) < 0 || var_of(a) >= num_vars()) {
      throw std::invalid_argument("Solver::solve: assumption out of range");
    }
  }
  if (max_learnts_ <= 0) {
    max_learnts_ = std::max(4000.0, num_problem_clauses_ / 3.0);
  }

  const long long start_conflicts = stats_.conflicts;
  int curr_restarts = 0;
  long long restart_budget =
      static_cast<long long>(luby(2.0, curr_restarts) * 100);
  long long conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  while (true) {
    const int confl = propagate();
    if (confl != -1) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        dead_ = true;
        return SatVerdict::Unsat;
      }
      int backtrack_level = 0;
      analyze(confl, learnt, backtrack_level);
      // Backjumping below the assumption levels is fine: the asserting
      // literal lands there, and the decision loop re-establishes the
      // remaining assumptions (detecting a now-falsified one as Unsat).
      cancel_until(backtrack_level);
      ++stats_.learned_clauses;
      stats_.learned_literals += static_cast<long long>(learnt.size());
      if (learnt.size() == 1) {
        enqueue(learnt[0], -1);
      } else {
        const int ref = attach_clause(learnt, /*learnt=*/true);
        clause_bump(clauses_[static_cast<std::size_t>(ref)]);
        enqueue(learnt[0], ref);
      }
      var_decay();
      clause_decay();
      if (conflict_limit > 0 &&
          stats_.conflicts - start_conflicts >= conflict_limit) {
        cancel_until(0);
        return SatVerdict::Unknown;
      }
      continue;
    }

    if (conflicts_since_restart >= restart_budget) {
      ++stats_.restarts;
      ++curr_restarts;
      restart_budget = static_cast<long long>(luby(2.0, curr_restarts) * 100);
      conflicts_since_restart = 0;
      cancel_until(0);
      continue;
    }
    if (static_cast<double>(learnt_refs_.size()) >= max_learnts_) {
      max_learnts_ *= 1.5;
      reduce_learnt_db();
    }

    // Re-establish assumptions (they are popped by restarts/backjumps),
    // one decision level each.
    if (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
      if (lit_value(a) == kFalse) {
        cancel_until(0);
        return SatVerdict::Unsat;
      }
      new_decision_level();
      if (lit_value(a) == kUnset) enqueue(a, -1);
      continue;
    }

    const int next = pick_branch_var();
    if (next < 0) {
      // Every variable assigned: satisfying model found.
      for (int v = 0; v < num_vars(); ++v) {
        model_[static_cast<std::size_t>(v)] =
            assign_[static_cast<std::size_t>(v)] == kTrue ? 1 : 0;
      }
      cancel_until(0);
      return SatVerdict::Sat;
    }
    ++stats_.decisions;
    new_decision_level();
    enqueue(make_lit(next, polarity_[static_cast<std::size_t>(next)] != kTrue),
            -1);
  }
}

}  // namespace vlsa::netlist::formal
