#include "netlist/netlist.hpp"

#include <stdexcept>

namespace vlsa::netlist {

Netlist::Netlist(std::string module_name)
    : module_name_(std::move(module_name)) {}

NetId Netlist::add_input(std::string name) {
  const NetId id = push_gate(CellKind::Input);
  inputs_.push_back(Port{std::move(name), id});
  return id;
}

std::vector<NetId> Netlist::add_input_bus(const std::string& name, int width) {
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(add_input(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

void Netlist::mark_output(NetId net, std::string name) {
  check_operand(net);
  outputs_.push_back(Port{std::move(name), net});
}

void Netlist::mark_output_bus(const std::string& name,
                              std::span<const NetId> nets) {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    mark_output(nets[i], name + "[" + std::to_string(i) + "]");
  }
}

NetId Netlist::const0() {
  if (const0_ == kNoNet) const0_ = push_gate(CellKind::Const0);
  return const0_;
}

NetId Netlist::const1() {
  if (const1_ == kNoNet) const1_ = push_gate(CellKind::Const1);
  return const1_;
}

NetId Netlist::add_gate(CellKind kind, std::span<const NetId> inputs) {
  const CellSpec& spec = CellLibrary::umc18().spec(kind);
  if (static_cast<int>(inputs.size()) != spec.fanin) {
    throw std::invalid_argument("Netlist::add_gate: fanin mismatch for " +
                                std::string(spec.name));
  }
  NetId a = inputs.size() > 0 ? inputs[0] : kNoNet;
  NetId b = inputs.size() > 1 ? inputs[1] : kNoNet;
  NetId c = inputs.size() > 2 ? inputs[2] : kNoNet;
  return push_gate(kind, a, b, c);
}

NetId Netlist::buf(NetId a) { return push_gate(CellKind::Buf, a); }
NetId Netlist::inv(NetId a) { return push_gate(CellKind::Inv, a); }
NetId Netlist::and2(NetId a, NetId b) { return push_gate(CellKind::And2, a, b); }
NetId Netlist::or2(NetId a, NetId b) { return push_gate(CellKind::Or2, a, b); }
NetId Netlist::nand2(NetId a, NetId b) { return push_gate(CellKind::Nand2, a, b); }
NetId Netlist::nor2(NetId a, NetId b) { return push_gate(CellKind::Nor2, a, b); }
NetId Netlist::xor2(NetId a, NetId b) { return push_gate(CellKind::Xor2, a, b); }
NetId Netlist::xnor2(NetId a, NetId b) { return push_gate(CellKind::Xnor2, a, b); }
NetId Netlist::and3(NetId a, NetId b, NetId c) {
  return push_gate(CellKind::And3, a, b, c);
}
NetId Netlist::or3(NetId a, NetId b, NetId c) {
  return push_gate(CellKind::Or3, a, b, c);
}
NetId Netlist::aoi21(NetId a, NetId b, NetId c) {
  return push_gate(CellKind::Aoi21, a, b, c);
}
NetId Netlist::oai21(NetId a, NetId b, NetId c) {
  return push_gate(CellKind::Oai21, a, b, c);
}
NetId Netlist::mux2(NetId sel, NetId d0, NetId d1) {
  return push_gate(CellKind::Mux2, sel, d0, d1);
}

NetId Netlist::dff() {
  // Placeholder D: bypasses the operand check (bound via connect_dff).
  Gate g;
  g.kind = CellKind::Dff;
  g.output = static_cast<NetId>(gates_.size());
  gates_.push_back(g);
  num_dffs_ += 1;
  return g.output;
}

NetId Netlist::dff(NetId d) {
  const NetId q = dff();
  connect_dff(q, d);
  return q;
}

void Netlist::connect_dff(NetId q, NetId d) {
  check_operand(q);
  check_operand(d);
  Gate& g = gates_[static_cast<std::size_t>(q)];
  if (g.kind != CellKind::Dff) {
    throw std::invalid_argument("connect_dff: net is not a flip-flop");
  }
  g.inputs[0] = d;
}

void Netlist::check_dffs_connected() const {
  for (const Gate& g : gates_) {
    if (g.kind == CellKind::Dff && g.inputs[0] == kNoNet) {
      throw std::logic_error("Netlist: flip-flop with unconnected D input");
    }
  }
}

NetId Netlist::and_tree(std::span<const NetId> nets) {
  if (nets.empty()) return const1();
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    // Prefer 3-input cells; a trailing pair uses a 2-input cell, a
    // trailing single passes through.
    while (i < level.size()) {
      const std::size_t remaining = level.size() - i;
      if (remaining >= 3) {
        next.push_back(and3(level[i], level[i + 1], level[i + 2]));
        i += 3;
      } else if (remaining == 2) {
        next.push_back(and2(level[i], level[i + 1]));
        i += 2;
      } else {
        next.push_back(level[i]);
        i += 1;
      }
    }
    level = std::move(next);
  }
  return level[0];
}

NetId Netlist::or_tree(std::span<const NetId> nets) {
  if (nets.empty()) return const0();
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < level.size()) {
      const std::size_t remaining = level.size() - i;
      if (remaining >= 3) {
        next.push_back(or3(level[i], level[i + 1], level[i + 2]));
        i += 3;
      } else if (remaining == 2) {
        next.push_back(or2(level[i], level[i + 1]));
        i += 2;
      } else {
        next.push_back(level[i]);
        i += 1;
      }
    }
    level = std::move(next);
  }
  return level[0];
}

int Netlist::num_cells() const {
  int n = 0;
  for (const Gate& g : gates_) {
    if (g.kind != CellKind::Input && g.kind != CellKind::Const0 &&
        g.kind != CellKind::Const1) {
      ++n;
    }
  }
  return n;
}

std::vector<int> Netlist::fanout_counts() const {
  std::vector<int> fanout(gates_.size(), 0);
  for (const Gate& g : gates_) {
    const int fanin = CellLibrary::umc18().spec(g.kind).fanin;
    for (int i = 0; i < fanin; ++i) {
      if (g.inputs[i] == kNoNet) continue;  // unconnected flip-flop D
      fanout[static_cast<std::size_t>(g.inputs[i])] += 1;
    }
  }
  for (const Port& p : outputs_) {
    fanout[static_cast<std::size_t>(p.net)] += 1;
  }
  return fanout;
}

NetId Netlist::find_input(std::string_view name) const {
  for (const Port& p : inputs_) {
    if (p.name == name) return p.net;
  }
  return kNoNet;
}

NetId Netlist::find_output(std::string_view name) const {
  for (const Port& p : outputs_) {
    if (p.name == name) return p.net;
  }
  return kNoNet;
}

NetId Netlist::push_gate(CellKind kind, NetId a, NetId b, NetId c) {
  const CellSpec& spec = CellLibrary::umc18().spec(kind);
  const NetId ins[3] = {a, b, c};
  for (int i = 0; i < spec.fanin; ++i) check_operand(ins[i]);
  Gate g;
  g.kind = kind;
  g.inputs[0] = a;
  g.inputs[1] = b;
  g.inputs[2] = c;
  g.output = static_cast<NetId>(gates_.size());
  gates_.push_back(g);
  if (kind == CellKind::Dff) num_dffs_ += 1;  // e.g. via add_gate
  return g.output;
}

void Netlist::check_operand(NetId id) const {
  if (id < 0 || id >= num_nets()) {
    throw std::invalid_argument("Netlist: operand net does not exist yet");
  }
}

}  // namespace vlsa::netlist
