#pragma once
// Combinational equivalence checking between two netlists.
//
// Ports are matched by name, so independently generated circuits (e.g.
// the naive and the shared-strip ACA, or two prefix-adder topologies)
// can be compared directly.  Inputs with up to 20 bits are checked
// exhaustively; wider circuits are checked with dense random vectors plus
// biased corner patterns (all-zeros, all-ones, single walking bits) —
// the patterns that excite long carry chains.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

struct EquivalenceResult {
  bool equivalent = true;
  long long vectors_checked = 0;
  bool exhaustive = false;
  /// First mismatch found, if any (input assignment by inputs() order of
  /// the first netlist, plus the differing output name).
  std::vector<bool> counterexample;
  std::string mismatched_output;
  /// Human-readable description of the mismatch: names the differing
  /// output and prints the witnessing input vector grouped by bus
  /// (e.g. "output 'sum[5]' differs; witness inputs: a=0xffef b=0xffd1").
  /// Empty when the circuits matched on every vector checked.
  std::string failure_message;
};

/// Check functional equivalence of `lhs` and `rhs`.
/// Throws std::invalid_argument if the port interfaces differ.
EquivalenceResult check_equivalence(const Netlist& lhs, const Netlist& rhs,
                                    int random_vectors = 4096,
                                    std::uint64_t seed = 1);

}  // namespace vlsa::netlist
