#include "netlist/fault.hpp"

#include <stdexcept>

#include "netlist/simulator.hpp"
#include "util/rng.hpp"

namespace vlsa::netlist {

std::vector<Fault> enumerate_faults(const Netlist& nl) {
  std::vector<Fault> faults;
  faults.reserve(static_cast<std::size_t>(nl.num_nets()) * 2);
  for (const Gate& g : nl.gates()) {
    if (g.kind == CellKind::Const0 || g.kind == CellKind::Const1) continue;
    faults.push_back(Fault{g.output, false});
    faults.push_back(Fault{g.output, true});
  }
  return faults;
}

FaultSimulator::FaultSimulator(const Netlist& nl) : nl_(&nl) {
  if (nl.is_sequential()) {
    throw std::invalid_argument(
        "FaultSimulator: combinational netlists only");
  }
}

std::vector<std::uint64_t> FaultSimulator::golden(
    std::span<const std::uint64_t> input_values) const {
  return Simulator(*nl_).eval(input_values);
}

std::vector<std::uint64_t> FaultSimulator::with_fault(
    const Fault& fault, std::span<const std::uint64_t> input_values) const {
  const auto& gates = nl_->gates();
  const auto& inputs = nl_->inputs();
  if (input_values.size() != inputs.size()) {
    throw std::invalid_argument("FaultSimulator: input arity mismatch");
  }
  const std::uint64_t forced =
      fault.stuck_value ? ~std::uint64_t{0} : std::uint64_t{0};
  std::vector<std::uint64_t> value(gates.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[static_cast<std::size_t>(inputs[i].net)] = input_values[i];
  }
  if (fault.net != kNoNet) {
    value[static_cast<std::size_t>(fault.net)] = forced;
  }
  for (const Gate& g : gates) {
    if (g.kind == CellKind::Input) {
      continue;  // loaded above (and possibly forced)
    }
    const auto out = static_cast<std::size_t>(g.output);
    if (fault.net == g.output) {
      value[out] = forced;
      continue;
    }
    const auto in = [&](int i) {
      const NetId net = g.inputs[i];
      return net == kNoNet ? 0 : value[static_cast<std::size_t>(net)];
    };
    value[out] = eval_cell_word(g.kind, in(0), in(1), in(2));
  }
  return value;
}

std::uint64_t FaultSimulator::detecting_lanes(
    const Fault& fault, std::span<const std::uint64_t> input_values,
    const std::vector<std::uint64_t>& golden_values) const {
  const std::vector<std::uint64_t> faulty = with_fault(fault, input_values);
  std::uint64_t lanes = 0;
  for (const Port& p : nl_->outputs()) {
    lanes |= faulty[static_cast<std::size_t>(p.net)] ^
             golden_values[static_cast<std::size_t>(p.net)];
  }
  return lanes;
}

FaultCoverage measure_fault_coverage(const Netlist& nl, int batches,
                                     std::uint64_t seed) {
  if (batches < 1) {
    throw std::invalid_argument("measure_fault_coverage: batches < 1");
  }
  const FaultSimulator sim(nl);
  const std::vector<Fault> faults = enumerate_faults(nl);
  std::vector<bool> hit(faults.size(), false);
  util::Rng rng(seed);
  for (int b = 0; b < batches; ++b) {
    std::vector<std::uint64_t> stim(nl.inputs().size());
    for (auto& w : stim) w = rng.next_u64();
    const auto golden = sim.golden(stim);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (hit[f]) continue;
      if (sim.detecting_lanes(faults[f], stim, golden) != 0) hit[f] = true;
    }
  }
  FaultCoverage coverage;
  coverage.total_faults = static_cast<long long>(faults.size());
  for (bool h : hit) coverage.detected += h ? 1 : 0;
  coverage.coverage =
      coverage.total_faults == 0
          ? 0.0
          : static_cast<double>(coverage.detected) / coverage.total_faults;
  return coverage;
}

}  // namespace vlsa::netlist
