#include "netlist/lint.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>
#include <utility>

#include "netlist/cell_library.hpp"

namespace vlsa::netlist {

namespace {

bool valid_id(NetId id, int num_nets) { return id >= 0 && id < num_nets; }

bool is_real_cell(CellKind kind) {
  return kind != CellKind::Input && kind != CellKind::Const0 &&
         kind != CellKind::Const1;
}

int fanin_of(CellKind kind) {
  return CellLibrary::umc18().spec(kind).fanin;
}

std::string cell_label(const Netlist& nl, NetId id) {
  return "net " + std::to_string(id) + " (" +
         cell_kind_name(nl.gate(id).kind) + ")";
}

// ----- combinational cycle detection (iterative Tarjan SCC) -----
//
// Dependency edges run consumer -> producer over *combinational* cells
// only: a flip-flop samples its D pin at the clock edge, so feedback
// through a DFF is sequential, not a combinational loop.  Every SCC
// with more than one member (or a self-loop) is one diagnostic.

struct SccResult {
  std::vector<std::vector<NetId>> cycles;  // each sorted ascending
};

SccResult find_combinational_cycles(const Netlist& nl) {
  const int n = nl.num_nets();
  std::vector<std::vector<NetId>> succ(static_cast<std::size_t>(n));
  std::vector<bool> self_loop(static_cast<std::size_t>(n), false);
  for (NetId u = 0; u < n; ++u) {
    const Gate& g = nl.gate(u);
    if (g.kind == CellKind::Dff) continue;
    const int fanin = fanin_of(g.kind);
    for (int pin = 0; pin < fanin; ++pin) {
      const NetId v = g.inputs[pin];
      if (!valid_id(v, n)) continue;  // reported separately
      if (v == u) self_loop[static_cast<std::size_t>(u)] = true;
      succ[static_cast<std::size_t>(u)].push_back(v);
    }
  }

  SccResult result;
  constexpr int kUnvisited = -1;
  std::vector<int> index(static_cast<std::size_t>(n), kUnvisited);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<NetId> stack;
  int next_index = 0;

  struct Frame {
    NetId node;
    std::size_t next_succ;
  };
  std::vector<Frame> dfs;

  for (NetId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != kUnvisited) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const auto u = static_cast<std::size_t>(frame.node);
      if (frame.next_succ == 0) {
        index[u] = lowlink[u] = next_index++;
        stack.push_back(frame.node);
        on_stack[u] = true;
      }
      bool descended = false;
      while (frame.next_succ < succ[u].size()) {
        const NetId v_id = succ[u][frame.next_succ++];
        const auto v = static_cast<std::size_t>(v_id);
        if (index[v] == kUnvisited) {
          dfs.push_back({v_id, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) lowlink[u] = std::min(lowlink[u], index[v]);
      }
      if (descended) continue;
      // u is finished: pop an SCC if u is its root.
      if (lowlink[u] == index[u]) {
        std::vector<NetId> members;
        for (;;) {
          const NetId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          members.push_back(w);
          if (w == frame.node) break;
        }
        if (members.size() > 1 || self_loop[u]) {
          std::sort(members.begin(), members.end());
          result.cycles.push_back(std::move(members));
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const auto parent = static_cast<std::size_t>(dfs.back().node);
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  std::sort(result.cycles.begin(), result.cycles.end());
  return result;
}

// Fixpoint reverse reachability from the primary outputs (the same
// sweep opt.cpp uses, hardened against invalid ids so lint can run on
// corrupted netlists without crashing).
std::vector<bool> observable_mask(const Netlist& nl) {
  const int n = nl.num_nets();
  std::vector<bool> live(static_cast<std::size_t>(n), false);
  for (const Port& p : nl.outputs()) {
    if (valid_id(p.net, n)) live[static_cast<std::size_t>(p.net)] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = n; i-- > 0;) {
      if (!live[static_cast<std::size_t>(i)]) continue;
      const Gate& g = nl.gate(i);
      const int fanin = fanin_of(g.kind);
      for (int pin = 0; pin < fanin; ++pin) {
        const NetId in = g.inputs[pin];
        if (!valid_id(in, n)) continue;
        if (!live[static_cast<std::size_t>(in)]) {
          live[static_cast<std::size_t>(in)] = true;
          changed = true;
        }
      }
    }
  }
  return live;
}

struct BusName {
  std::string base;
  int index = -1;  // -1: not of the form base[digits]
};

BusName split_bus_name(const std::string& name) {
  BusName out;
  const std::size_t open = name.rfind('[');
  if (open == std::string::npos || name.empty() || name.back() != ']' ||
      open + 2 > name.size() - 1) {
    out.base = name;
    return out;
  }
  int value = 0;
  for (std::size_t i = open + 1; i + 1 < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      out.base = name;
      return out;
    }
    value = value * 10 + (c - '0');
  }
  out.base = name.substr(0, open);
  out.index = value;
  return out;
}

}  // namespace

const char* lint_kind_name(LintKind kind) {
  switch (kind) {
    case LintKind::CombinationalLoop: return "combinational-loop";
    case LintKind::UndrivenNet: return "undriven-net";
    case LintKind::MultiplyDrivenNet: return "multiply-driven-net";
    case LintKind::InvalidNetRef: return "invalid-net-ref";
    case LintKind::FloatingInput: return "floating-input";
    case LintKind::PortNameCollision: return "port-name-collision";
    case LintKind::PortBusGap: return "port-bus-gap";
    case LintKind::DeadCell: return "dead-cell";
    case LintKind::UnusedPrimaryInput: return "unused-primary-input";
    case LintKind::FanoutCapExceeded: return "fanout-cap-exceeded";
  }
  return "unknown";
}

LintSeverity lint_kind_severity(LintKind kind) {
  switch (kind) {
    case LintKind::DeadCell:
    case LintKind::UnusedPrimaryInput:
    case LintKind::FanoutCapExceeded:
      return LintSeverity::Warning;
    default:
      return LintSeverity::Error;
  }
}

std::string LintDiagnostic::message() const {
  std::ostringstream os;
  os << (lint_kind_severity(kind) == LintSeverity::Error ? "error"
                                                         : "warning")
     << ": " << lint_kind_name(kind);
  if (net != kNoNet) {
    os << ": net " << net;
    if (pin >= 0) os << " pin " << pin;
  }
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

std::vector<LintDiagnostic> LintReport::of_kind(LintKind kind) const {
  std::vector<LintDiagnostic> out;
  for (const LintDiagnostic& d : diagnostics) {
    if (d.kind == kind) out.push_back(d);
  }
  return out;
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintDiagnostic& d : diagnostics) {
    out += d.message();
    out += '\n';
  }
  return out;
}

LintReport lint(const Netlist& nl, const LintOptions& options) {
  LintReport report;
  const int n = nl.num_nets();
  auto add = [&report](LintKind kind, NetId net, int pin,
                       std::string detail) {
    if (lint_kind_severity(kind) == LintSeverity::Error) {
      ++report.errors;
    } else {
      ++report.warnings;
    }
    report.diagnostics.push_back(
        LintDiagnostic{kind, net, pin, std::move(detail)});
  };

  // --- driver structure: every net id claimed by exactly one output ---
  std::vector<int> drivers(static_cast<std::size_t>(n), 0);
  for (NetId i = 0; i < n; ++i) {
    const NetId out = nl.gate(i).output;
    if (!valid_id(out, n)) {
      add(LintKind::InvalidNetRef, i, -1,
          "gate output id " + std::to_string(out) + " is out of range");
      continue;
    }
    drivers[static_cast<std::size_t>(out)] += 1;
  }
  for (NetId i = 0; i < n; ++i) {
    if (drivers[static_cast<std::size_t>(i)] == 0) {
      add(LintKind::UndrivenNet, i, -1,
          "no gate output claims this net id");
    } else if (drivers[static_cast<std::size_t>(i)] > 1) {
      add(LintKind::MultiplyDrivenNet, i, -1,
          std::to_string(drivers[static_cast<std::size_t>(i)]) +
              " gate outputs claim this net id");
    }
  }

  // --- pin connectivity ---
  for (NetId i = 0; i < n; ++i) {
    const Gate& g = nl.gate(i);
    const int fanin = fanin_of(g.kind);
    for (int pin = 0; pin < fanin; ++pin) {
      const NetId in = g.inputs[pin];
      if (in == kNoNet) {
        add(LintKind::FloatingInput, i, pin,
            g.kind == CellKind::Dff
                ? "flip-flop D input never connected (connect_dff)"
                : std::string(cell_kind_name(g.kind)) +
                      " input pin left unconnected");
      } else if (!valid_id(in, n)) {
        add(LintKind::InvalidNetRef, i, pin,
            "input references net " + std::to_string(in) +
                ", which is out of range");
      }
    }
  }

  // --- combinational loops ---
  for (const auto& cycle : find_combinational_cycles(nl).cycles) {
    std::ostringstream os;
    os << "cycle through " << cycle.size() << " cell(s):";
    const std::size_t shown = std::min<std::size_t>(cycle.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      os << ' ' << cell_label(nl, cycle[i]);
    }
    if (shown < cycle.size()) os << " ...";
    add(LintKind::CombinationalLoop, cycle.front(), -1, os.str());
  }

  // --- port names ---
  std::map<std::string, int> name_count;
  for (const Port& p : nl.inputs()) name_count[p.name] += 1;
  for (const Port& p : nl.outputs()) name_count[p.name] += 1;
  for (const auto& [name, count] : name_count) {
    if (count > 1) {
      add(LintKind::PortNameCollision, kNoNet, -1,
          "port name '" + name + "' declared " + std::to_string(count) +
              " times");
    }
  }
  const auto check_bus_gaps = [&](const std::vector<Port>& ports,
                                  const char* direction) {
    std::map<std::string, std::vector<int>> buses;
    for (const Port& p : ports) {
      const BusName bus = split_bus_name(p.name);
      if (bus.index >= 0) buses[bus.base].push_back(bus.index);
    }
    for (auto& [base, indices] : buses) {
      std::sort(indices.begin(), indices.end());
      indices.erase(std::unique(indices.begin(), indices.end()),
                    indices.end());
      const int width = indices.back() + 1;
      if (static_cast<int>(indices.size()) == width) continue;
      int missing = 0;
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] != static_cast<int>(i)) break;
        missing = static_cast<int>(i) + 1;
      }
      add(LintKind::PortBusGap, kNoNet, -1,
          std::string(direction) + " bus '" + base + "' is missing index " +
              std::to_string(missing) + " (declares " +
              std::to_string(indices.size()) + " of " +
              std::to_string(width) + " bits)");
    }
  };
  check_bus_gaps(nl.inputs(), "input");
  check_bus_gaps(nl.outputs(), "output");
  for (const Port& p : nl.outputs()) {
    if (!valid_id(p.net, n)) {
      add(LintKind::InvalidNetRef, kNoNet, -1,
          "output port '" + p.name + "' references net " +
              std::to_string(p.net) + ", which is out of range");
    }
  }

  // --- observability (needs outputs to reason from) ---
  if (!nl.outputs().empty() &&
      (options.check_dead_cells || options.check_unused_inputs)) {
    const std::vector<bool> live = observable_mask(nl);
    if (options.check_dead_cells) {
      for (NetId i = 0; i < n; ++i) {
        if (!is_real_cell(nl.gate(i).kind)) continue;
        if (!live[static_cast<std::size_t>(i)]) {
          add(LintKind::DeadCell, i, -1,
              std::string(cell_kind_name(nl.gate(i).kind)) +
                  " reaches no primary output (remove_dead_gates sweeps "
                  "it)");
        }
      }
    }
  }

  // --- fanout (also powers unused-input detection) ---
  std::vector<int> fanout(static_cast<std::size_t>(n), 0);
  for (NetId i = 0; i < n; ++i) {
    const Gate& g = nl.gate(i);
    const int fanin = fanin_of(g.kind);
    for (int pin = 0; pin < fanin; ++pin) {
      if (valid_id(g.inputs[pin], n)) {
        fanout[static_cast<std::size_t>(g.inputs[pin])] += 1;
      }
    }
  }
  for (const Port& p : nl.outputs()) {
    if (valid_id(p.net, n)) fanout[static_cast<std::size_t>(p.net)] += 1;
  }
  if (options.check_unused_inputs && !nl.outputs().empty()) {
    for (const Port& p : nl.inputs()) {
      if (!valid_id(p.net, n)) continue;
      if (fanout[static_cast<std::size_t>(p.net)] == 0) {
        add(LintKind::UnusedPrimaryInput, p.net, -1,
            "primary input '" + p.name +
                "' feeds no cell and no output port");
      }
    }
  }
  if (options.fanout_cap > 0) {
    for (NetId i = 0; i < n; ++i) {
      if (fanout[static_cast<std::size_t>(i)] > options.fanout_cap) {
        add(LintKind::FanoutCapExceeded, i, -1,
            "fanout " + std::to_string(fanout[static_cast<std::size_t>(i)]) +
                " exceeds cap " + std::to_string(options.fanout_cap));
      }
    }
  }

  return report;
}

}  // namespace vlsa::netlist
