#include "netlist/opt.hpp"

#include <stdexcept>

namespace vlsa::netlist {

namespace {

// Mark the cone of influence of the primary outputs.  A single reverse
// sweep suffices for combinational netlists; flip-flop feedback (D pins
// referencing later nets) needs the sweep iterated to a fixpoint.
std::vector<bool> live_mask(const Netlist& nl) {
  std::vector<bool> live(static_cast<std::size_t>(nl.num_nets()), false);
  for (const Port& p : nl.outputs()) {
    live[static_cast<std::size_t>(p.net)] = true;
  }
  const auto& gates = nl.gates();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = gates.size(); i-- > 0;) {
      if (!live[i]) continue;
      const Gate& g = gates[i];
      const int fanin = CellLibrary::umc18().spec(g.kind).fanin;
      for (int j = 0; j < fanin; ++j) {
        if (g.inputs[j] == kNoNet) continue;
        if (!live[static_cast<std::size_t>(g.inputs[j])]) {
          live[static_cast<std::size_t>(g.inputs[j])] = true;
          changed = true;
        }
      }
    }
  }
  return live;
}

}  // namespace

StructuralReport analyze_structure(const Netlist& nl) {
  const std::vector<bool> live = live_mask(nl);
  StructuralReport report;
  report.has_outputs = !nl.outputs().empty();
  for (const Gate& g : nl.gates()) {
    const bool is_cell = g.kind != CellKind::Input &&
                         g.kind != CellKind::Const0 &&
                         g.kind != CellKind::Const1;
    if (is_cell) {
      report.total_cells += 1;
      if (!live[static_cast<std::size_t>(g.output)]) report.dead_gates += 1;
    }
  }
  for (const Port& p : nl.inputs()) {
    if (!live[static_cast<std::size_t>(p.net)]) report.unused_inputs += 1;
  }
  return report;
}

Netlist remove_dead_gates(const Netlist& nl) {
  const std::vector<bool> live = live_mask(nl);
  Netlist out(nl.module_name());
  std::vector<NetId> new_id(static_cast<std::size_t>(nl.num_nets()), kNoNet);

  // Primary inputs are always kept (the port interface is part of the
  // circuit's contract even if a bit is unused).
  for (const Port& p : nl.inputs()) {
    new_id[static_cast<std::size_t>(p.net)] = out.add_input(p.name);
  }
  // First pass: create everything (flip-flops as placeholders, since
  // their D inputs may reference later nets — feedback).
  for (const Gate& g : nl.gates()) {
    if (g.kind == CellKind::Input) continue;
    if (!live[static_cast<std::size_t>(g.output)]) continue;
    if (g.kind == CellKind::Const0) {
      new_id[static_cast<std::size_t>(g.output)] = out.const0();
      continue;
    }
    if (g.kind == CellKind::Const1) {
      new_id[static_cast<std::size_t>(g.output)] = out.const1();
      continue;
    }
    if (g.kind == CellKind::Dff) {
      new_id[static_cast<std::size_t>(g.output)] = out.dff();
      continue;
    }
    const int fanin = CellLibrary::umc18().spec(g.kind).fanin;
    std::vector<NetId> ins;
    ins.reserve(static_cast<std::size_t>(fanin));
    for (int j = 0; j < fanin; ++j) {
      const NetId mapped = new_id[static_cast<std::size_t>(g.inputs[j])];
      if (mapped == kNoNet) {
        throw std::logic_error("remove_dead_gates: live gate uses dead net");
      }
      ins.push_back(mapped);
    }
    new_id[static_cast<std::size_t>(g.output)] = out.add_gate(g.kind, ins);
  }
  // Second pass: bind flip-flop D inputs.
  for (const Gate& g : nl.gates()) {
    if (g.kind != CellKind::Dff) continue;
    if (!live[static_cast<std::size_t>(g.output)]) continue;
    if (g.inputs[0] == kNoNet) continue;  // stays unconnected
    const NetId q = new_id[static_cast<std::size_t>(g.output)];
    const NetId d = new_id[static_cast<std::size_t>(g.inputs[0])];
    if (d == kNoNet) {
      throw std::logic_error("remove_dead_gates: live dff uses dead net");
    }
    out.connect_dff(q, d);
  }
  for (const Port& p : nl.outputs()) {
    out.mark_output(new_id[static_cast<std::size_t>(p.net)], p.name);
  }
  return out;
}

}  // namespace vlsa::netlist
