#pragma once
// Single-stuck-at fault simulation.
//
// The paper's error detector is designed against *speculation* errors,
// but it lives in the same reliability conversation as Razor and
// soft-DSP (its Sec. 2 related work): what happens when the silicon
// itself misbehaves?  This module injects classical single-stuck-at
// faults and measures (a) which faults are observable at the outputs
// under random stimulus (test coverage) and (b) for the ACA datapath,
// how often the ER flag happens to fire when a fault corrupts the sum —
// the detector's incidental fault coverage.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

/// One stuck-at fault site.
struct Fault {
  NetId net = kNoNet;
  bool stuck_value = false;  // stuck-at-0 or stuck-at-1
};

/// All 2 * num_nets() single-stuck-at faults (inputs included, constants
/// excluded — forcing a tie cell is meaningless).
std::vector<Fault> enumerate_faults(const Netlist& nl);

/// 64-lane fault simulator: evaluates the netlist with one net forced.
class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl);

  /// Golden (fault-free) evaluation; returns the full net-value array.
  std::vector<std::uint64_t> golden(
      std::span<const std::uint64_t> input_values) const;

  /// Evaluate with `fault` injected.  Returns the full net-value array.
  std::vector<std::uint64_t> with_fault(
      const Fault& fault, std::span<const std::uint64_t> input_values) const;

  /// Lanes (bitmask) in which any primary output differs from golden.
  std::uint64_t detecting_lanes(const Fault& fault,
                                std::span<const std::uint64_t> input_values,
                                const std::vector<std::uint64_t>& golden_values)
      const;

 private:
  const Netlist* nl_;
};

/// Random-stimulus coverage summary.
struct FaultCoverage {
  long long total_faults = 0;
  long long detected = 0;     ///< observable at >= 1 output for >= 1 vector
  double coverage = 0.0;      ///< detected / total
};

/// Apply `vectors` random 64-lane batches and report single-stuck-at
/// coverage of the whole netlist.
FaultCoverage measure_fault_coverage(const Netlist& nl, int batches,
                                     std::uint64_t seed);

}  // namespace vlsa::netlist
