#include "netlist/simulator.hpp"

#include <stdexcept>

namespace vlsa::netlist {

std::uint64_t eval_cell_word(CellKind kind, std::uint64_t a,
                             std::uint64_t b, std::uint64_t c) {
  switch (kind) {
    case CellKind::Input:
      return a;  // inputs are loaded externally; `a` carries the value
    case CellKind::Const0:
      return 0;
    case CellKind::Const1:
      return ~std::uint64_t{0};
    case CellKind::Buf:
      return a;
    case CellKind::Inv:
      return ~a;
    case CellKind::And2:
      return a & b;
    case CellKind::Or2:
      return a | b;
    case CellKind::Nand2:
      return ~(a & b);
    case CellKind::Nor2:
      return ~(a | b);
    case CellKind::Xor2:
      return a ^ b;
    case CellKind::Xnor2:
      return ~(a ^ b);
    case CellKind::And3:
      return a & b & c;
    case CellKind::Or3:
      return a | b | c;
    case CellKind::Aoi21:
      return ~((a & b) | c);
    case CellKind::Oai21:
      return ~((a | b) & c);
    case CellKind::Mux2:
      // operands: sel, d0, d1
      return (a & c) | (~a & b);
    case CellKind::Dff:
      // Combinational evaluators must not see flip-flops; the sequential
      // simulator handles them as state.
      throw std::logic_error("eval_cell_word: flip-flop in combinational "
                             "evaluation");
  }
  throw std::logic_error("eval_cell_word: bad cell kind");
}

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  if (nl.is_sequential()) {
    throw std::invalid_argument(
        "Simulator: sequential netlist; use SequentialSimulator");
  }
}

std::vector<std::uint64_t> Simulator::eval(
    std::span<const std::uint64_t> input_values) const {
  const auto& gates = nl_->gates();
  const auto& inputs = nl_->inputs();
  if (input_values.size() != inputs.size()) {
    throw std::invalid_argument("Simulator::eval: input arity mismatch");
  }
  std::vector<std::uint64_t> value(gates.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[static_cast<std::size_t>(inputs[i].net)] = input_values[i];
  }
  for (const Gate& g : gates) {
    if (g.kind == CellKind::Input) continue;  // already loaded
    const auto out = static_cast<std::size_t>(g.output);
    const auto in = [&](int i) {
      const NetId net = g.inputs[i];
      return net == kNoNet ? 0 : value[static_cast<std::size_t>(net)];
    };
    value[out] = eval_cell_word(g.kind, in(0), in(1), in(2));
  }
  return value;
}

std::vector<std::uint64_t> Simulator::eval_outputs(
    std::span<const std::uint64_t> input_values) const {
  const std::vector<std::uint64_t> value = eval(input_values);
  std::vector<std::uint64_t> out;
  out.reserve(nl_->outputs().size());
  for (const Port& p : nl_->outputs()) {
    out.push_back(value[static_cast<std::size_t>(p.net)]);
  }
  return out;
}

namespace stim {

std::vector<int> input_index_map(const Netlist& nl) {
  std::vector<int> map(static_cast<std::size_t>(nl.num_nets()), -1);
  const auto& inputs = nl.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    map[static_cast<std::size_t>(inputs[i].net)] = static_cast<int>(i);
  }
  return map;
}

void load_operand(std::vector<std::uint64_t>& input_values,
                  const std::vector<int>& input_index_of_net,
                  std::span<const NetId> bus, const util::BitVec& value,
                  int lane) {
  if (static_cast<int>(bus.size()) != value.width()) {
    throw std::invalid_argument("stim::load_operand: width mismatch");
  }
  const std::uint64_t lane_mask = std::uint64_t{1} << lane;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const int idx = input_index_of_net[static_cast<std::size_t>(bus[i])];
    if (idx < 0) {
      throw std::invalid_argument("stim::load_operand: net is not an input");
    }
    auto& word = input_values[static_cast<std::size_t>(idx)];
    if (value.bit(static_cast<int>(i))) {
      word |= lane_mask;
    } else {
      word &= ~lane_mask;
    }
  }
}

util::BitVec read_bus(const std::vector<std::uint64_t>& net_values,
                      std::span<const NetId> bus, int lane) {
  util::BitVec v(static_cast<int>(bus.size()));
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const bool bit =
        (net_values[static_cast<std::size_t>(bus[i])] >> lane) & 1;
    v.set_bit(static_cast<int>(i), bit);
  }
  return v;
}

}  // namespace stim

}  // namespace vlsa::netlist
