#include "netlist/serialize.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace vlsa::netlist {

std::string to_text(const Netlist& nl) {
  std::ostringstream os;
  os << "netlist " << nl.module_name() << "\n";
  // Port-name lookup by net (inputs only; outputs listed at the end).
  std::unordered_map<NetId, const std::string*> input_names;
  for (const Port& p : nl.inputs()) input_names[p.net] = &p.name;

  const CellLibrary& lib = CellLibrary::umc18();
  std::vector<NetId> dff_binds;
  for (const Gate& g : nl.gates()) {
    switch (g.kind) {
      case CellKind::Input:
        os << "input " << *input_names.at(g.output) << "\n";
        break;
      case CellKind::Const0:
        os << "const0\n";
        break;
      case CellKind::Const1:
        os << "const1\n";
        break;
      case CellKind::Dff:
        os << "dff\n";
        if (g.inputs[0] != kNoNet) dff_binds.push_back(g.output);
        break;
      default: {
        os << "gate " << lib.spec(g.kind).name;
        for (int i = 0; i < lib.spec(g.kind).fanin; ++i) {
          os << ' ' << g.inputs[i];
        }
        os << "\n";
        break;
      }
    }
  }
  for (NetId q : dff_binds) {
    os << "bind " << q << ' ' << nl.gate(q).inputs[0] << "\n";
  }
  for (const Port& p : nl.outputs()) {
    os << "output " << p.net << ' ' << p.name << "\n";
  }
  return os.str();
}

namespace {

CellKind kind_from_name(const std::string& name) {
  const CellLibrary& lib = CellLibrary::umc18();
  for (int i = 0; i < kNumCellKinds; ++i) {
    const auto kind = static_cast<CellKind>(i);
    if (name == lib.spec(kind).name) return kind;
  }
  throw std::invalid_argument("from_text: unknown cell '" + name + "'");
}

}  // namespace

Netlist from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  Netlist nl("loaded");
  bool named = false;
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("from_text: line " +
                                std::to_string(line_no) + ": " + what);
  };
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string op;
    ls >> op;
    if (op == "netlist") {
      std::string name;
      ls >> name;
      if (name.empty()) fail("missing module name");
      nl = Netlist(name);
      named = true;
    } else if (op == "input") {
      std::string name;
      ls >> name;
      if (name.empty()) fail("missing input name");
      nl.add_input(name);
    } else if (op == "const0") {
      if (nl.const0() != nl.num_nets() - 1) fail("duplicate const0");
    } else if (op == "const1") {
      if (nl.const1() != nl.num_nets() - 1) fail("duplicate const1");
    } else if (op == "dff") {
      nl.dff();
    } else if (op == "bind") {
      NetId q = kNoNet, d = kNoNet;
      ls >> q >> d;
      if (ls.fail()) fail("bad bind record");
      nl.connect_dff(q, d);
    } else if (op == "gate") {
      std::string cell;
      ls >> cell;
      const CellKind kind = kind_from_name(cell);
      const int fanin = CellLibrary::umc18().spec(kind).fanin;
      std::vector<NetId> ins(static_cast<std::size_t>(fanin), kNoNet);
      for (int i = 0; i < fanin; ++i) ls >> ins[static_cast<std::size_t>(i)];
      if (ls.fail()) fail("bad gate operands");
      nl.add_gate(kind, ins);
    } else if (op == "output") {
      NetId net = kNoNet;
      std::string name;
      ls >> net >> name;
      if (ls.fail() || name.empty()) fail("bad output record");
      nl.mark_output(net, name);
    } else {
      fail("unknown record '" + op + "'");
    }
  }
  if (!named) throw std::invalid_argument("from_text: missing header");
  return nl;
}

}  // namespace vlsa::netlist
