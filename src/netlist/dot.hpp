#pragma once
// Graphviz DOT emission for netlist visualization (inputs at the top,
// outputs at the bottom, the critical path highlighted when provided).

#include <span>
#include <string>

#include "netlist/netlist.hpp"

namespace vlsa::netlist {

/// Render the netlist as a DOT digraph.  `critical_path` (optional, a
/// chain of NetIds as produced by analyze_timing) is drawn in red.
std::string to_dot(const Netlist& nl,
                   std::span<const NetId> critical_path = {});

}  // namespace vlsa::netlist
