#include "netlist/event_sim.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace vlsa::netlist {

EventSimulator::EventSimulator(const Netlist& nl, const CellLibrary& lib)
    : nl_(&nl), lib_(&lib) {
  if (nl.is_sequential()) {
    throw std::invalid_argument(
        "EventSimulator: sequential netlist not supported");
  }
  const auto& gates = nl.gates();
  value_.assign(gates.size(), false);
  fanouts_.assign(gates.size(), {});
  const std::vector<int> fanout_count = nl.fanout_counts();
  gate_delay_.assign(gates.size(), 0.0);
  gate_energy_.assign(gates.size(), 0.0);
  for (const Gate& g : gates) {
    const CellSpec& spec = lib.spec(g.kind);
    const auto out = static_cast<std::size_t>(g.output);
    gate_delay_[out] =
        lib.delay_ns(g.kind, std::max(fanout_count[out], 1));
    gate_energy_[out] = spec.energy_fj;
    for (int i = 0; i < spec.fanin; ++i) {
      fanouts_[static_cast<std::size_t>(g.inputs[i])].push_back(g.output);
    }
  }
  output_index_.assign(gates.size(), -1);
  const auto& outputs = nl.outputs();
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    output_index_[static_cast<std::size_t>(outputs[i].net)] =
        static_cast<int>(i);
  }
}

bool EventSimulator::eval_gate(const Gate& g) const {
  const auto in = [&](int i) {
    return value_[static_cast<std::size_t>(g.inputs[i])];
  };
  switch (g.kind) {
    case CellKind::Input:
      return value_[static_cast<std::size_t>(g.output)];
    case CellKind::Const0:
      return false;
    case CellKind::Const1:
      return true;
    case CellKind::Buf:
      return in(0);
    case CellKind::Inv:
      return !in(0);
    case CellKind::And2:
      return in(0) && in(1);
    case CellKind::Or2:
      return in(0) || in(1);
    case CellKind::Nand2:
      return !(in(0) && in(1));
    case CellKind::Nor2:
      return !(in(0) || in(1));
    case CellKind::Xor2:
      return in(0) != in(1);
    case CellKind::Xnor2:
      return in(0) == in(1);
    case CellKind::And3:
      return in(0) && in(1) && in(2);
    case CellKind::Or3:
      return in(0) || in(1) || in(2);
    case CellKind::Aoi21:
      return !((in(0) && in(1)) || in(2));
    case CellKind::Oai21:
      return !((in(0) || in(1)) && in(2));
    case CellKind::Mux2:
      return in(0) ? in(2) : in(1);
    case CellKind::Dff:
      break;  // guarded in the constructor
  }
  throw std::logic_error("EventSimulator: bad cell kind");
}

std::vector<bool> EventSimulator::settle_initial(const std::vector<bool>& inputs) {
  const auto& ports = nl_->inputs();
  if (inputs.size() != ports.size()) {
    throw std::invalid_argument("EventSimulator: input arity mismatch");
  }
  for (std::size_t i = 0; i < ports.size(); ++i) {
    value_[static_cast<std::size_t>(ports[i].net)] = inputs[i];
  }
  // Netlists are stored in topological order: one sweep settles all nets.
  for (const Gate& g : nl_->gates()) {
    if (g.kind == CellKind::Input) continue;
    value_[static_cast<std::size_t>(g.output)] = eval_gate(g);
  }
  initialized_ = true;
  std::vector<bool> out;
  out.reserve(nl_->outputs().size());
  for (const Port& p : nl_->outputs()) {
    out.push_back(value_[static_cast<std::size_t>(p.net)]);
  }
  return out;
}

TransitionResult EventSimulator::apply(const std::vector<bool>& inputs) {
  if (!initialized_) {
    throw std::logic_error("EventSimulator: call settle_initial first");
  }
  const auto& ports = nl_->inputs();
  if (inputs.size() != ports.size()) {
    throw std::invalid_argument("EventSimulator: input arity mismatch");
  }

  struct Event {
    double time;
    long long seq;  // schedule order: ties on `time` resolve to the
                    // most recent recomputation winning (applied last)
    NetId net;
    bool value;
    bool operator>(const Event& rhs) const {
      if (time != rhs.time) return time > rhs.time;
      return seq > rhs.seq;
    }
  };
  long long next_seq = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;

  // `pending[net]` is the value the net will hold once all scheduled
  // events fire; comparing recomputed gate outputs against it (rather
  // than the current value) prevents stale events from surviving a
  // cancelling input change (transport-delay semantics).
  std::vector<char> pending(value_.size());
  for (std::size_t i = 0; i < value_.size(); ++i) pending[i] = value_[i];

  for (std::size_t i = 0; i < ports.size(); ++i) {
    const auto net = static_cast<std::size_t>(ports[i].net);
    if (value_[net] != static_cast<bool>(inputs[i])) {
      queue.push(Event{0.0, next_seq++, ports[i].net,
                       static_cast<bool>(inputs[i])});
      pending[net] = inputs[i];
    }
  }

  TransitionResult result;
  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    const auto net = static_cast<std::size_t>(event.net);
    if (value_[net] == event.value) continue;  // glitch cancelled itself
    value_[net] = event.value;
    result.events += 1;
    result.energy_fj += gate_energy_[net];
    result.last_event_ns = std::max(result.last_event_ns, event.time);
    if (output_index_[net] >= 0) {
      result.settle_ns = std::max(result.settle_ns, event.time);
    }
    for (NetId gate_out : fanouts_[net]) {
      const Gate& g = nl_->gate(gate_out);
      const bool new_value = eval_gate(g);
      const auto out = static_cast<std::size_t>(gate_out);
      if (new_value != static_cast<bool>(pending[out])) {
        queue.push(Event{event.time + gate_delay_[out], next_seq++,
                         gate_out, new_value});
        pending[out] = new_value;
      }
    }
  }
  result.outputs.reserve(nl_->outputs().size());
  for (const Port& p : nl_->outputs()) {
    result.outputs.push_back(value_[static_cast<std::size_t>(p.net)]);
  }
  return result;
}

SettleStats measure_settle_distribution(const Netlist& nl, int trials,
                                        std::uint64_t seed,
                                        const CellLibrary& lib) {
  if (trials < 1) {
    throw std::invalid_argument("measure_settle_distribution: trials < 1");
  }
  EventSimulator sim(nl, lib);
  util::Rng rng(seed);
  const std::size_t width = nl.inputs().size();
  auto random_vector = [&] {
    std::vector<bool> v(width);
    for (std::size_t i = 0; i < width; ++i) v[i] = rng.next_bool();
    return v;
  };
  sim.settle_initial(random_vector());
  std::vector<double> settles;
  settles.reserve(static_cast<std::size_t>(trials));
  double energy_acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    const TransitionResult r = sim.apply(random_vector());
    settles.push_back(r.settle_ns);
    energy_acc += r.energy_fj;
  }
  std::sort(settles.begin(), settles.end());
  SettleStats stats;
  stats.mean_energy_fj = energy_acc / trials;
  for (double s : settles) stats.mean_ns += s;
  stats.mean_ns /= trials;
  stats.max_ns = settles.back();
  stats.p99_ns = settles[static_cast<std::size_t>(
      std::min<double>(trials - 1, trials * 0.99))];
  return stats;
}

}  // namespace vlsa::netlist
