#include "netlist/equiv.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/simulator.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa::netlist {

namespace {

// rhs input/output order mapped onto lhs port names.
struct PortMap {
  std::vector<std::size_t> rhs_input_for_lhs;   // lhs input i -> rhs index
  std::vector<std::size_t> rhs_output_for_lhs;  // lhs output i -> rhs index
};

PortMap map_ports(const Netlist& lhs, const Netlist& rhs) {
  PortMap map;
  auto find = [](const std::vector<Port>& ports, const std::string& name,
                 const char* direction, const char* side) {
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (ports[i].name == name) return i;
    }
    throw std::invalid_argument(std::string("check_equivalence: ") +
                                direction + " '" + name +
                                "' has no counterpart in the " + side +
                                " netlist");
  };
  // Match each port by name in both directions so the exception names the
  // exact offending port instead of a bare count mismatch.
  for (const Port& p : lhs.inputs()) {
    map.rhs_input_for_lhs.push_back(find(rhs.inputs(), p.name, "input", "rhs"));
  }
  for (const Port& p : rhs.inputs()) {
    find(lhs.inputs(), p.name, "input", "lhs");
  }
  for (const Port& p : lhs.outputs()) {
    map.rhs_output_for_lhs.push_back(
        find(rhs.outputs(), p.name, "output", "rhs"));
  }
  for (const Port& p : rhs.outputs()) {
    find(lhs.outputs(), p.name, "output", "lhs");
  }
  return map;
}

// Format the witnessing input assignment grouped by bus: "a[i]" style
// ports collapse into one hex number per bus, scalars print as name=0/1.
std::string format_witness(const Netlist& lhs,
                           const std::vector<bool>& assignment) {
  struct Bus {
    std::string name;
    util::BitVec bits;
    bool scalar = false;
  };
  std::vector<Bus> buses;
  auto bus_for = [&](const std::string& base) -> Bus& {
    for (Bus& b : buses) {
      if (b.name == base) return b;
    }
    buses.push_back({base, util::BitVec(0), false});
    return buses.back();
  };
  const auto& inputs = lhs.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::string& name = inputs[i].name;
    const auto lb = name.rfind('[');
    std::size_t index = 0;
    bool indexed = false;
    if (lb != std::string::npos && name.back() == ']') {
      indexed = true;
      for (std::size_t p = lb + 1; p + 1 < name.size(); ++p) {
        const char c = name[p];
        if (c < '0' || c > '9') {
          indexed = false;
          break;
        }
        index = index * 10 + static_cast<std::size_t>(c - '0');
      }
    }
    Bus& bus = bus_for(indexed ? name.substr(0, lb) : name);
    if (!indexed) {
      bus.scalar = true;
      index = 0;
    }
    if (static_cast<std::size_t>(bus.bits.width()) <= index) {
      bus.bits = bus.bits.resized(static_cast<int>(index) + 1);
    }
    bus.bits.set_bit(static_cast<int>(index), assignment[i]);
  }
  std::string out;
  for (const Bus& b : buses) {
    if (!out.empty()) out += ' ';
    out += b.name + '=';
    out += b.scalar ? (b.bits.bit(0) ? "1" : "0") : "0x" + b.bits.to_hex();
  }
  return out;
}

}  // namespace

EquivalenceResult check_equivalence(const Netlist& lhs, const Netlist& rhs,
                                    int random_vectors, std::uint64_t seed) {
  if (lhs.is_sequential() || rhs.is_sequential()) {
    throw std::invalid_argument(
        "check_equivalence: combinational netlists only");
  }
  const PortMap map = map_ports(lhs, rhs);
  const Simulator sim_l(lhs);
  const Simulator sim_r(rhs);
  const std::size_t n_in = lhs.inputs().size();
  const std::size_t n_out = lhs.outputs().size();

  EquivalenceResult result;
  util::Rng rng(seed);

  // Vector generator state: either exhaustive enumeration or
  // random + corners.
  const bool exhaustive = n_in <= 20;
  result.exhaustive = exhaustive;
  const long long total = exhaustive
                              ? (1LL << n_in)
                              : static_cast<long long>(random_vectors);

  long long produced = 0;
  auto next_batch = [&](std::vector<std::uint64_t>& lhs_stim,
                        std::vector<std::uint64_t>& rhs_stim) -> int {
    int lanes = 0;
    std::fill(lhs_stim.begin(), lhs_stim.end(), 0);
    std::fill(rhs_stim.begin(), rhs_stim.end(), 0);
    auto set_bit = [&](std::size_t lhs_input, int lane, bool v) {
      if (!v) return;
      const std::uint64_t mask = std::uint64_t{1} << lane;
      lhs_stim[lhs_input] |= mask;
      rhs_stim[map.rhs_input_for_lhs[lhs_input]] |= mask;
    };
    while (lanes < 64 && produced < total) {
      if (exhaustive) {
        for (std::size_t i = 0; i < n_in; ++i) {
          set_bit(i, lanes, (produced >> i) & 1);
        }
      } else if (produced == 0) {
        // all zeros
      } else if (produced == 1) {
        for (std::size_t i = 0; i < n_in; ++i) set_bit(i, lanes, true);
      } else if (produced - 2 < static_cast<long long>(n_in)) {
        set_bit(static_cast<std::size_t>(produced - 2), lanes, true);
      } else {
        for (std::size_t i = 0; i < n_in; ++i) {
          set_bit(i, lanes, rng.next_bool());
        }
      }
      ++lanes;
      ++produced;
    }
    return lanes;
  };

  std::vector<std::uint64_t> lhs_stim(n_in), rhs_stim(n_in);
  while (produced < total) {
    const long long batch_start = produced;
    const int lanes = next_batch(lhs_stim, rhs_stim);
    const auto lhs_out = sim_l.eval_outputs(lhs_stim);
    const auto rhs_out = sim_r.eval_outputs(rhs_stim);
    for (std::size_t o = 0; o < n_out; ++o) {
      const std::uint64_t diff =
          lhs_out[o] ^ rhs_out[map.rhs_output_for_lhs[o]];
      const std::uint64_t lane_mask =
          lanes == 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << lanes) - 1);
      if (diff & lane_mask) {
        // Reconstruct the first differing lane's input assignment.
        int lane = 0;
        while (!((diff >> lane) & 1)) ++lane;
        result.equivalent = false;
        result.vectors_checked = batch_start + lane + 1;
        result.mismatched_output = lhs.outputs()[o].name;
        result.counterexample.resize(n_in);
        for (std::size_t i = 0; i < n_in; ++i) {
          result.counterexample[i] = (lhs_stim[i] >> lane) & 1;
        }
        result.failure_message =
            "output '" + result.mismatched_output +
            "' differs; witness inputs: " +
            format_witness(lhs, result.counterexample);
        return result;
      }
    }
    result.vectors_checked = produced;
  }
  return result;
}

}  // namespace vlsa::netlist
