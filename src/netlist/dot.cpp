#include "netlist/dot.hpp"

#include <sstream>
#include <vector>

#include "netlist/emit.hpp"

namespace vlsa::netlist {

std::string to_dot(const Netlist& nl, std::span<const NetId> critical_path) {
  std::vector<bool> on_path(static_cast<std::size_t>(nl.num_nets()), false);
  for (NetId n : critical_path) on_path[static_cast<std::size_t>(n)] = true;

  std::ostringstream os;
  os << "digraph " << sanitize_identifier(nl.module_name()) << " {\n";
  os << "  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  for (const Port& p : nl.inputs()) {
    os << "  n" << p.net << " [label=\"" << p.name
       << "\", shape=invtriangle";
    if (on_path[static_cast<std::size_t>(p.net)]) os << ", color=red";
    os << "];\n";
  }
  for (const Gate& g : nl.gates()) {
    if (g.kind == CellKind::Input) continue;
    os << "  n" << g.output << " [label=\"" << cell_kind_name(g.kind)
       << (g.kind == CellKind::Dff ? "\", shape=box3d" : "\", shape=box");
    if (on_path[static_cast<std::size_t>(g.output)]) os << ", color=red";
    os << "];\n";
    const int fanin = CellLibrary::umc18().spec(g.kind).fanin;
    for (int i = 0; i < fanin; ++i) {
      if (g.inputs[i] == kNoNet) continue;
      os << "  n" << g.inputs[i] << " -> n" << g.output;
      if (on_path[static_cast<std::size_t>(g.inputs[i])] &&
          on_path[static_cast<std::size_t>(g.output)]) {
        os << " [color=red, penwidth=2]";
      }
      os << ";\n";
    }
  }
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const Port& p = nl.outputs()[i];
    os << "  out" << i << " [label=\"" << p.name << "\", shape=triangle];\n";
    os << "  n" << p.net << " -> out" << i << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace vlsa::netlist
