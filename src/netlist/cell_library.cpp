#include "netlist/cell_library.hpp"

#include <stdexcept>

namespace vlsa::netlist {

namespace {
// Representative 0.18 µm-class values.  Area is in NAND2 equivalents;
// delays are intrinsic-at-fanout-1 plus a per-extra-fanout slope.  Simple
// NAND/NOR are fastest; XOR/XNOR and MUX cost roughly two simple gates;
// AOI/OAI sit in between (single complex stage).
constexpr CellSpec kUmc18Specs[kNumCellKinds] = {
    // kind            name     fanin area  intr   slope  energy inverting
    {CellKind::Input, "INPUT", 0, 0.00, 0.000, 0.000, 0.0, false},
    {CellKind::Const0, "TIE0", 0, 0.00, 0.000, 0.000, 0.0, false},
    {CellKind::Const1, "TIE1", 0, 0.00, 0.000, 0.000, 0.0, false},
    {CellKind::Buf, "BUFX2", 1, 0.67, 0.080, 0.008, 1.5, false},
    {CellKind::Inv, "INVX1", 1, 0.50, 0.040, 0.012, 1.0, true},
    {CellKind::And2, "AND2X1", 2, 1.33, 0.090, 0.013, 2.2, false},
    {CellKind::Or2, "OR2X1", 2, 1.33, 0.100, 0.014, 2.2, false},
    {CellKind::Nand2, "NAND2X1", 2, 1.00, 0.055, 0.014, 1.8, true},
    {CellKind::Nor2, "NOR2X1", 2, 1.00, 0.065, 0.016, 1.8, true},
    {CellKind::Xor2, "XOR2X1", 2, 2.33, 0.130, 0.018, 3.6, false},
    {CellKind::Xnor2, "XNOR2X1", 2, 2.33, 0.130, 0.018, 3.6, false},
    {CellKind::And3, "AND3X1", 3, 1.67, 0.110, 0.015, 2.8, false},
    {CellKind::Or3, "OR3X1", 3, 1.67, 0.120, 0.016, 2.8, false},
    {CellKind::Aoi21, "AOI21X1", 3, 1.33, 0.080, 0.016, 2.4, true},
    {CellKind::Oai21, "OAI21X1", 3, 1.33, 0.080, 0.016, 2.4, true},
    {CellKind::Mux2, "MUX2X1", 3, 2.00, 0.120, 0.016, 3.2, false},
    {CellKind::Dff, "DFFX1", 1, 4.50, 0.150, 0.010, 4.0, false},
};
}  // namespace

CellLibrary::CellLibrary(std::string name) : name_(std::move(name)) {
  for (int i = 0; i < kNumCellKinds; ++i) specs_[i] = kUmc18Specs[i];
}

const CellLibrary& CellLibrary::umc18() {
  static const CellLibrary lib("umc18-class");
  return lib;
}

CellLibrary CellLibrary::scaled(std::string name, double delay_scale,
                                double area_scale, double energy_scale) {
  if (delay_scale <= 0 || area_scale <= 0 || energy_scale <= 0) {
    throw std::invalid_argument("CellLibrary::scaled: bad scale");
  }
  CellLibrary lib(std::move(name));
  for (auto& spec : lib.specs_) {
    spec.intrinsic_ns *= delay_scale;
    spec.slope_ns *= delay_scale;
    spec.area *= area_scale;
    spec.energy_fj *= energy_scale;
  }
  return lib;
}

const CellSpec& CellLibrary::spec(CellKind kind) const {
  const int i = static_cast<int>(kind);
  if (i < 0 || i >= kNumCellKinds) {
    throw std::out_of_range("CellLibrary::spec: bad kind");
  }
  return specs_[i];
}

double CellLibrary::delay_ns(CellKind kind, int fanout) const {
  const CellSpec& s = spec(kind);
  const int extra = fanout > 1 ? fanout - 1 : 0;
  return s.intrinsic_ns + s.slope_ns * extra;
}

const char* cell_kind_name(CellKind kind) {
  return CellLibrary::umc18().spec(kind).name;
}

}  // namespace vlsa::netlist
