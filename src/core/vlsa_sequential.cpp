#include "core/vlsa_sequential.hpp"

#include <stdexcept>
#include <string>

namespace vlsa::core {

using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;

SequentialVlsa build_sequential_vlsa(int width, int window) {
  if (width < 2 || window < 1) {
    throw std::invalid_argument("build_sequential_vlsa: bad dimensions");
  }
  SequentialVlsa v{Netlist("vlsa_seq" + std::to_string(width) + "_k" +
                           std::to_string(window)),
                   {}, {}, {}, kNoNet, kNoNet, kNoNet, kNoNet};
  Netlist& nl = v.nl;
  v.a = nl.add_input_bus("a", width);
  v.b = nl.add_input_bus("b", width);

  // State flip-flops (created first so control logic can reference Q).
  v.state0 = nl.dff();  // 1 during REC1
  v.state1 = nl.dff();  // 1 during REC2
  const NetId in_eval = nl.nor2(v.state0, v.state1);
  const NetId is_rec2 = v.state1;

  // Operand registers with capture-enable.
  std::vector<NetId> a_q(static_cast<std::size_t>(width));
  std::vector<NetId> b_q(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    a_q[static_cast<std::size_t>(i)] = nl.dff();
    b_q[static_cast<std::size_t>(i)] = nl.dff();
  }

  // Datapath from the registers: speculative sum + ER + recovered sum.
  const VlsaNets nets = build_vlsa_into(nl, a_q, b_q, window);

  // Control.
  const NetId er_eval = nl.and2(nets.error, in_eval);
  // EVAL & ER -> REC1; REC1 -> REC2; REC2/EVAL&!ER -> EVAL.
  nl.connect_dff(v.state0, er_eval);
  nl.connect_dff(v.state1, v.state0);

  // Capture next operands when presenting a valid result.  The raw
  // capture signal would drive 2*width mux selects; buffer it per 8-bit
  // slice so the fanout penalty stays flat across widths (a synthesis
  // tool would insert the same tree).
  const NetId capture =
      nl.or2(nl.and2(in_eval, nl.inv(nets.error)), is_rec2);
  std::vector<NetId> capture_buf;
  for (int lo = 0; lo < width; lo += 8) {
    capture_buf.push_back(nl.buf(capture));
  }
  for (int i = 0; i < width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const NetId cap = capture_buf[static_cast<std::size_t>(i / 8)];
    nl.connect_dff(a_q[idx], nl.mux2(cap, a_q[idx], v.a[idx]));
    nl.connect_dff(b_q[idx], nl.mux2(cap, b_q[idx], v.b[idx]));
  }

  // Outputs: speculative sum during EVAL, recovered sum during REC2.
  v.sum.resize(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    v.sum[idx] = nl.mux2(is_rec2, nets.speculative_sum[idx],
                         nets.exact_sum[idx]);
  }
  v.valid = capture;  // valid exactly when a result is presented
  v.stall = nl.inv(v.valid);

  nl.mark_output_bus("sum", v.sum);
  nl.mark_output(v.valid, "valid");
  nl.mark_output(v.stall, "stall");
  nl.check_dffs_connected();
  return v;
}

}  // namespace vlsa::core
