#include "core/vlsa.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analysis/aca_probability.hpp"
#include "core/aca_netlist.hpp"
#include "netlist/sta.hpp"

namespace vlsa::core {

VlsaDesign VlsaDesign::design(int width, double target_accuracy,
                              int recovery_cycles) {
  if (target_accuracy <= 0.0 || target_accuracy >= 1.0) {
    throw std::invalid_argument("VlsaDesign: accuracy must be in (0, 1)");
  }
  return with_window(width,
                     analysis::choose_window(width, 1.0 - target_accuracy),
                     recovery_cycles);
}

VlsaDesign VlsaDesign::with_window(int width, int window,
                                   int recovery_cycles) {
  if (width < 2 || window < 1 || recovery_cycles < 1) {
    throw std::invalid_argument("VlsaDesign: bad configuration");
  }
  VlsaDesign d;
  d.width_ = width;
  d.window_ = window;
  d.recovery_cycles_ = recovery_cycles;
  d.flag_probability_ = analysis::aca_flag_probability(width, window);
  d.wrong_probability_ = analysis::aca_wrong_probability(width, window);

  const auto aca = build_aca(width, window, /*with_error_flag=*/false);
  const auto det = build_error_detector(width, window);
  const auto vlsa = build_vlsa(width, window);
  d.aca_delay_ns_ = netlist::analyze_timing(aca.nl).critical_delay_ns;
  d.error_detect_delay_ns_ =
      netlist::analyze_timing(det.nl).critical_delay_ns;
  d.recovery_delay_ns_ = netlist::analyze_timing(vlsa.nl).critical_delay_ns;
  d.clock_period_ns_ =
      1.05 * std::max(d.aca_delay_ns_, d.error_detect_delay_ns_);
  d.expected_latency_cycles_ =
      1.0 + recovery_cycles * d.flag_probability_;

  const auto trad = adders::fastest_traditional(width);
  d.traditional_kind_ = trad.kind;
  d.traditional_delay_ns_ = trad.delay_ns;
  d.traditional_area_ = trad.area;
  d.aca_area_ = netlist::analyze_area(aca.nl).total_area;
  d.vlsa_area_ = netlist::analyze_area(vlsa.nl).total_area;
  return d;
}

std::string VlsaDesign::datasheet() const {
  std::ostringstream os;
  os << "VLSA design point — " << width_ << "-bit, window k = " << window_
     << "\n";
  os << "  P(flag)  = " << flag_probability_
     << "   P(wrong sum if unflagged) = 0 (detector is sound)\n";
  os << "  P(speculation actually wrong) = " << wrong_probability_ << "\n";
  os << "  T_ACA = " << aca_delay_ns_ << " ns,  T_errdet = "
     << error_detect_delay_ns_ << " ns,  T_recovery = " << recovery_delay_ns_
     << " ns\n";
  os << "  clock = " << clock_period_ns_ << " ns,  E[latency] = "
     << expected_latency_cycles_ << " cycles,  effective delay = "
     << effective_delay_ns() << " ns\n";
  os << "  baseline: " << adders::adder_kind_name(traditional_kind_)
     << " at " << traditional_delay_ns_ << " ns  ->  average speedup "
     << average_speedup() << "x\n";
  os << "  area (NAND2-eq): ACA " << aca_area_ << ", full VLSA "
     << vlsa_area_ << ", baseline " << traditional_area_ << "\n";
  return os.str();
}

}  // namespace vlsa::core
