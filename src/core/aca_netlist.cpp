#include "core/aca_netlist.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "adders/cla.hpp"
#include "adders/pg.hpp"
#include "adders/prefix.hpp"

namespace vlsa::core {

using adders::PG;
using adders::apply_carry;
using adders::bitwise_pg;
using adders::combine;
using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;

namespace {

void check_dims(int width, int window) {
  if (width < 1) throw std::invalid_argument("ACA: width must be >= 1");
  if (window < 1) throw std::invalid_argument("ACA: window must be >= 1");
}

// Shared window-product strips (Fig. 3/4).  strip(d)[i] is the matrix
// product over bit span [max(0, i-d+1) .. i] for power-of-two d; windows
// of arbitrary length are composed from the binary decomposition of the
// length, memoized so equal spans share gates.
class WindowStrips {
 public:
  WindowStrips(Netlist& nl, std::vector<PG> bit_pg, int max_len)
      : nl_(nl), strips_{std::move(bit_pg)} {
    const int n = static_cast<int>(strips_[0].size());
    // Build strips of length 2, 4, ..., up to the largest power of two
    // that any window decomposition can use (2d <= max_len).
    for (int d = 1; d * 2 <= max_len; d *= 2) {
      const std::vector<PG>& prev = strips_.back();
      std::vector<PG> next(prev.size());
      for (int i = 0; i < n; ++i) {
        next[static_cast<std::size_t>(i)] =
            i >= d ? combine(nl_, prev[static_cast<std::size_t>(i)],
                             prev[static_cast<std::size_t>(i - d)])
                   : prev[static_cast<std::size_t>(i)];  // clamped at bit 0
      }
      strips_.push_back(std::move(next));
    }
  }

  /// Product over [max(0, top-len+1) .. top]; len in [1, max_len].
  PG window(int top, int len) {
    if (len <= 0 || top < 0) {
      throw std::invalid_argument("WindowStrips::window: bad span");
    }
    if (len > top + 1) len = top + 1;  // clamp at bit 0
    const auto key = std::make_pair(top, len);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;

    // Largest power-of-two strip that fits, then recurse on the rest.
    // The resulting chain folds the *smaller* (earlier-ready) pieces
    // first, which aligns with strip arrival times: a deliberately
    // unbalanced tree that a balanced reduction measurably loses to
    // under the fanout-aware delay model.
    int d = 1, level = 0;
    while (d * 2 <= len) {
      d *= 2;
      level += 1;
    }
    const PG hi = strips_[static_cast<std::size_t>(level)]
                         [static_cast<std::size_t>(top)];
    PG result = hi;
    if (len > d && top - d >= 0) {
      const PG lo = window(top - d, len - d);
      result = combine(nl_, hi, lo);
    }
    memo_.emplace(key, result);
    return result;
  }

 private:
  Netlist& nl_;
  std::vector<std::vector<PG>> strips_;  // strips_[l][i]: length 2^l at i
  std::map<std::pair<int, int>, PG> memo_;
};

// Speculative carries c_0..c_{n-1} plus (optionally) the ER signal, all
// from shared strips.
struct SpecCarries {
  std::vector<NetId> carry;
  NetId error = kNoNet;
};

SpecCarries speculative_carries(Netlist& nl, WindowStrips& strips, int n,
                                int k, bool with_error_flag) {
  SpecCarries out;
  out.carry.resize(static_cast<std::size_t>(n));
  std::vector<NetId> er_terms;
  for (int i = 0; i < n; ++i) {
    const PG w = strips.window(i, k);
    // Assumed window carry-in is 0, so c_i is just the window generate.
    out.carry[static_cast<std::size_t>(i)] = w.g;
    // ER term: a full k-long window that is all-propagate (only windows
    // that do not clamp at bit 0 can misspeculate).
    if (with_error_flag && i >= k - 1) er_terms.push_back(w.p);
  }
  if (with_error_flag) out.error = nl.or_tree(er_terms);
  return out;
}

}  // namespace

AcaNets build_aca_into(Netlist& nl, std::span<const NetId> a,
                       std::span<const NetId> b, int window,
                       bool with_error_flag) {
  const int width = static_cast<int>(a.size());
  if (a.size() != b.size()) {
    throw std::invalid_argument("build_aca_into: operand width mismatch");
  }
  check_dims(width, window);
  const std::vector<PG> pg = bitwise_pg(nl, a, b);
  WindowStrips strips(nl, pg, window);
  const SpecCarries spec =
      speculative_carries(nl, strips, width, window, with_error_flag);
  AcaNets out;
  out.sum.resize(static_cast<std::size_t>(width));
  out.sum[0] = pg[0].p;
  for (int i = 1; i < width; ++i) {
    out.sum[static_cast<std::size_t>(i)] =
        nl.xor2(pg[static_cast<std::size_t>(i)].p,
                spec.carry[static_cast<std::size_t>(i - 1)]);
  }
  out.carry_out = spec.carry[static_cast<std::size_t>(width - 1)];
  out.error = spec.error;
  return out;
}

AcaNetlist build_aca(int width, int window, bool with_error_flag) {
  check_dims(width, window);
  AcaNetlist aca{Netlist("aca" + std::to_string(width) + "_k" +
                         std::to_string(window)),
                 {}, {}, {}, kNoNet, kNoNet};
  Netlist& nl = aca.nl;
  aca.a = nl.add_input_bus("a", width);
  aca.b = nl.add_input_bus("b", width);
  AcaNets nets = build_aca_into(nl, aca.a, aca.b, window, with_error_flag);
  aca.sum = std::move(nets.sum);
  aca.carry_out = nets.carry_out;
  nl.mark_output_bus("sum", aca.sum);
  nl.mark_output(aca.carry_out, "cout");
  if (with_error_flag) {
    aca.error = nets.error;
    nl.mark_output(aca.error, "error");
  }
  return aca;
}

AcaNetlist build_aca_naive(int width, int window) {
  check_dims(width, window);
  AcaNetlist aca{Netlist("aca_naive" + std::to_string(width) + "_k" +
                         std::to_string(window)),
                 {}, {}, {}, kNoNet, kNoNet};
  Netlist& nl = aca.nl;
  aca.a = nl.add_input_bus("a", width);
  aca.b = nl.add_input_bus("b", width);

  // One independent sub-adder per output bit, each recomputing its own
  // propagate/generate signals straight from the primary inputs (this is
  // what blows up input fanout in Fig. 2).
  auto window_carry = [&](int i) -> NetId {
    const int lo = i - window + 1 < 0 ? 0 : i - window + 1;
    NetId carry = kNoNet;  // carry into position `lo` is assumed 0
    for (int j = lo; j <= i; ++j) {
      const NetId gj = nl.and2(aca.a[static_cast<std::size_t>(j)],
                               aca.b[static_cast<std::size_t>(j)]);
      if (carry == kNoNet) {
        carry = gj;
      } else {
        const NetId pj = nl.xor2(aca.a[static_cast<std::size_t>(j)],
                                 aca.b[static_cast<std::size_t>(j)]);
        carry = nl.or2(gj, nl.and2(pj, carry));
      }
    }
    return carry;
  };

  aca.sum.resize(static_cast<std::size_t>(width));
  aca.sum[0] = nl.xor2(aca.a[0], aca.b[0]);
  for (int i = 1; i < width; ++i) {
    const NetId p_i = nl.xor2(aca.a[static_cast<std::size_t>(i)],
                              aca.b[static_cast<std::size_t>(i)]);
    aca.sum[static_cast<std::size_t>(i)] = nl.xor2(p_i, window_carry(i - 1));
  }
  aca.carry_out = window_carry(width - 1);
  nl.mark_output_bus("sum", aca.sum);
  nl.mark_output(aca.carry_out, "cout");
  return aca;
}

ErrorDetectorNetlist build_error_detector(int width, int window) {
  check_dims(width, window);
  ErrorDetectorNetlist det{Netlist("errdet" + std::to_string(width) + "_k" +
                                   std::to_string(window)),
                           {}, {}, kNoNet};
  Netlist& nl = det.nl;
  det.a = nl.add_input_bus("a", width);
  det.b = nl.add_input_bus("b", width);
  if (window > width) {
    // No full window exists; ER is constantly 0.
    det.error = nl.const0();
    nl.mark_output(det.error, "error");
    return det;
  }
  // Propagate bits, then AND-strips of doubling length (sharing exactly
  // as in the ACA, but only the P half — simple gates only, Sec. 4.1).
  std::vector<NetId> strip(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    strip[static_cast<std::size_t>(i)] =
        nl.xor2(det.a[static_cast<std::size_t>(i)],
                det.b[static_cast<std::size_t>(i)]);
  }
  std::vector<std::vector<NetId>> strips{strip};
  for (int d = 1; d * 2 <= window; d *= 2) {
    const std::vector<NetId>& prev = strips.back();
    std::vector<NetId> next(prev.size(), kNoNet);
    // A length-2d strip entry needs a full length-d entry at i-d, which
    // only exists from position d-1 — so start at i = 2d-1.
    for (int i = 2 * d - 1; i < width; ++i) {
      next[static_cast<std::size_t>(i)] =
          nl.and2(prev[static_cast<std::size_t>(i)],
                  prev[static_cast<std::size_t>(i - d)]);
    }
    strips.push_back(std::move(next));
  }
  // window-length AND at position i composed from the binary
  // decomposition of `window`.
  auto window_and = [&](int top) -> NetId {
    NetId acc = kNoNet;
    int pos = top;
    int remaining = window;
    while (remaining > 0) {
      int d = 1, level = 0;
      while (d * 2 <= remaining) {
        d *= 2;
        level += 1;
      }
      const NetId piece = strips[static_cast<std::size_t>(level)]
                                [static_cast<std::size_t>(pos)];
      acc = acc == kNoNet ? piece : nl.and2(acc, piece);
      pos -= d;
      remaining -= d;
    }
    return acc;
  };
  std::vector<NetId> terms;
  for (int i = window - 1; i < width; ++i) terms.push_back(window_and(i));
  det.error = nl.or_tree(terms);
  nl.mark_output(det.error, "error");
  return det;
}

namespace {
std::vector<NetId> reuse_block_recovery_impl(Netlist& nl, WindowStrips& strips,
                                             int width, int window);
}  // namespace

VlsaNets build_vlsa_into(Netlist& nl, std::span<const NetId> a,
                         std::span<const NetId> b, int window,
                         RecoveryStyle style) {
  const int width = static_cast<int>(a.size());
  if (a.size() != b.size()) {
    throw std::invalid_argument("build_vlsa_into: operand width mismatch");
  }
  check_dims(width, window);
  VlsaNets v;
  const std::vector<PG> pg = bitwise_pg(nl, a, b);
  WindowStrips strips(nl, pg, window);

  // --- speculative half (the ACA + ER of Fig. 6) ---
  const SpecCarries spec =
      speculative_carries(nl, strips, width, window, /*with_error_flag=*/true);
  v.speculative_sum.resize(static_cast<std::size_t>(width));
  v.speculative_sum[0] = pg[0].p;
  for (int i = 1; i < width; ++i) {
    v.speculative_sum[static_cast<std::size_t>(i)] =
        nl.xor2(pg[static_cast<std::size_t>(i)].p,
                spec.carry[static_cast<std::size_t>(i - 1)]);
  }
  v.speculative_carry_out = spec.carry[static_cast<std::size_t>(width - 1)];
  v.error = spec.error == kNoNet ? nl.const0() : spec.error;

  // --- error recovery ---
  std::vector<NetId> exact_carry(static_cast<std::size_t>(width));
  if (style == RecoveryStyle::ReplicatedAdder) {
    // Strawman: an independent Kogge-Stone prefix network over the same
    // bitwise (g, p) signals — no reuse of the ACA's matrix products.
    std::vector<PG> prefix = pg;
    adders::kogge_stone_core(nl, prefix);
    for (int i = 0; i < width; ++i) {
      exact_carry[static_cast<std::size_t>(i)] =
          prefix[static_cast<std::size_t>(i)].g;
    }
  } else {
    exact_carry = reuse_block_recovery_impl(nl, strips, width, window);
  }
  v.exact_sum.resize(static_cast<std::size_t>(width));
  v.exact_sum[0] = pg[0].p;
  for (int i = 1; i < width; ++i) {
    v.exact_sum[static_cast<std::size_t>(i)] =
        nl.xor2(pg[static_cast<std::size_t>(i)].p,
                exact_carry[static_cast<std::size_t>(i - 1)]);
  }
  v.exact_carry_out = exact_carry[static_cast<std::size_t>(width - 1)];
  return v;
}

VlsaNetlist build_vlsa(int width, int window, RecoveryStyle style) {
  check_dims(width, window);
  VlsaNetlist v{Netlist("vlsa" + std::to_string(width) + "_k" +
                        std::to_string(window)),
                {}, {}, {}, {}, kNoNet, kNoNet, kNoNet, kNoNet};
  Netlist& nl = v.nl;
  v.a = nl.add_input_bus("a", width);
  v.b = nl.add_input_bus("b", width);
  VlsaNets nets = build_vlsa_into(nl, v.a, v.b, window, style);
  v.speculative_sum = std::move(nets.speculative_sum);
  v.exact_sum = std::move(nets.exact_sum);
  v.speculative_carry_out = nets.speculative_carry_out;
  v.exact_carry_out = nets.exact_carry_out;
  v.error = nets.error;
  v.valid = nl.inv(v.error);
  nl.mark_output_bus("spec_sum", v.speculative_sum);
  nl.mark_output(v.speculative_carry_out, "spec_cout");
  nl.mark_output_bus("sum", v.exact_sum);
  nl.mark_output(v.exact_carry_out, "cout");
  nl.mark_output(v.error, "error");
  nl.mark_output(v.valid, "valid");
  return v;
}

namespace {

// Fig. 5: the k-bit block (G, P) signals come straight from the ACA's
// shared window products; an n/k-bit CLA produces the block carries and
// the shared strips provide the intra-block spans.
std::vector<NetId> reuse_block_recovery_impl(Netlist& nl, WindowStrips& strips,
                                             int width, int window) {
  std::vector<PG> block_pg;
  std::vector<int> block_lo;
  for (int lo = 0; lo < width; lo += window) {
    const int hi = std::min(lo + window, width) - 1;
    block_pg.push_back(strips.window(hi, hi - lo + 1));
    block_lo.push_back(lo);
  }
  // n/k-bit carry look-ahead over the block signals.
  const std::vector<NetId> block_carry =
      adders::cla_carry_network(nl, block_pg, nl.const0());

  // Exact carry for every bit: within block j the local span
  // [block_lo .. i] (again from the shared strips) is applied to the
  // carry into the block.
  std::vector<NetId> exact_carry(static_cast<std::size_t>(width));
  for (std::size_t j = 0; j < block_lo.size(); ++j) {
    const int lo = block_lo[j];
    const int hi = std::min(lo + window, width) - 1;
    const NetId cin = j == 0 ? nl.const0() : block_carry[j - 1];
    for (int i = lo; i <= hi; ++i) {
      if (i == hi) {
        exact_carry[static_cast<std::size_t>(i)] = block_carry[j];
      } else if (j == 0) {
        // Block 0 sees the architectural carry-in 0: the clamped window
        // products are already exact.
        exact_carry[static_cast<std::size_t>(i)] =
            strips.window(i, i + 1).g;
      } else {
        const PG span = strips.window(i, i - lo + 1);
        exact_carry[static_cast<std::size_t>(i)] = apply_carry(nl, span, cin);
      }
    }
  }
  return exact_carry;
}

}  // namespace

}  // namespace vlsa::core
