#pragma once
// VlsaDesign — the datasheet-level API a downstream integrator uses.
//
// One call sizes a complete variable-latency speculative adder for a
// width and a target accuracy: it picks the window from the exact
// longest-run analysis, generates the ACA / error-detection / recovery
// netlists, runs the timing model, and exposes every number the paper's
// evaluation reports (clock period, expected latency, average speedup
// over the fastest traditional adder, areas).  Construction is the
// expensive part; the resulting object is an immutable report plus a
// software adder for functional use.

#include <string>

#include "adders/adders.hpp"
#include "core/aca.hpp"

namespace vlsa::core {

class VlsaDesign {
 public:
  /// Size a design: `target_accuracy` in (0, 1), e.g. 0.9999 for the
  /// paper's design points.  Builds and times all three circuits.
  static VlsaDesign design(int width, double target_accuracy,
                           int recovery_cycles = 2);

  /// Same, but with an explicitly chosen window.
  static VlsaDesign with_window(int width, int window,
                                int recovery_cycles = 2);

  // ----- configuration -----
  int width() const { return width_; }
  int window() const { return window_; }
  int recovery_cycles() const { return recovery_cycles_; }

  // ----- probabilities (uniform operands) -----
  double flag_probability() const { return flag_probability_; }
  double wrong_probability() const { return wrong_probability_; }

  // ----- timing (built-in 0.18 µm-class model) -----
  double aca_delay_ns() const { return aca_delay_ns_; }
  double error_detect_delay_ns() const { return error_detect_delay_ns_; }
  double recovery_delay_ns() const { return recovery_delay_ns_; }
  /// 5% margin over max(T_ACA, T_ER), as in Fig. 6.
  double clock_period_ns() const { return clock_period_ns_; }
  double expected_latency_cycles() const { return expected_latency_cycles_; }
  /// clock_period * expected latency.
  double effective_delay_ns() const {
    return clock_period_ns_ * expected_latency_cycles_;
  }

  // ----- baseline -----
  adders::AdderKind traditional_kind() const { return traditional_kind_; }
  double traditional_delay_ns() const { return traditional_delay_ns_; }
  /// Average speedup of the VLSA over the fastest traditional adder.
  double average_speedup() const {
    return traditional_delay_ns_ / effective_delay_ns();
  }

  // ----- area (NAND2 equivalents) -----
  double aca_area() const { return aca_area_; }
  double vlsa_area() const { return vlsa_area_; }
  double traditional_area() const { return traditional_area_; }

  /// Functional software twin configured with this design's window.
  SpeculativeAdder make_adder() const {
    return SpeculativeAdder(width_, window_);
  }

  /// Multi-line human-readable datasheet.
  std::string datasheet() const;

 private:
  VlsaDesign() = default;

  int width_ = 0;
  int window_ = 0;
  int recovery_cycles_ = 0;
  double flag_probability_ = 0.0;
  double wrong_probability_ = 0.0;
  double aca_delay_ns_ = 0.0;
  double error_detect_delay_ns_ = 0.0;
  double recovery_delay_ns_ = 0.0;
  double clock_period_ns_ = 0.0;
  double expected_latency_cycles_ = 0.0;
  adders::AdderKind traditional_kind_ = adders::AdderKind::KoggeStone;
  double traditional_delay_ns_ = 0.0;
  double aca_area_ = 0.0;
  double vlsa_area_ = 0.0;
  double traditional_area_ = 0.0;
};

}  // namespace vlsa::core
