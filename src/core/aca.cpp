#include "core/aca.hpp"

#include <stdexcept>

#include "analysis/aca_probability.hpp"

namespace vlsa::core {

namespace {

void check_args(const BitVec& a, const BitVec& b, int k) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("aca_add: operand width mismatch");
  }
  if (a.width() < 1) throw std::invalid_argument("aca_add: empty operands");
  if (k < 1) throw std::invalid_argument("aca_add: window must be >= 1");
}

// Windowed carry chain shared by aca_add and aca_speculative_carries:
// bit i of `carries` is the speculative carry out of position i.
struct CarryTrace {
  BitVec carries;
  bool flagged = false;
};

CarryTrace window_carries(const BitVec& a, const BitVec& b, int k,
                          bool carry_in) {
  const int n = a.width();
  const BitVec p = a ^ b;
  const BitVec g = a & b;

  CarryTrace out{BitVec(n), false};
  int run = 0;  // propagate run length ending at the current bit
  for (int i = 0; i < n; ++i) {
    run = p.bit(i) ? run + 1 : 0;
    if (run >= k) out.flagged = true;
    bool carry;
    if (run >= k) {
      // Window is all-propagate: speculate 0 (this is the error source).
      carry = false;
    } else if (run > i) {
      // Window extends past bit 0: the architectural carry-in is known
      // exactly and propagates through the (short) chain.
      carry = carry_in;
    } else {
      // The nearest non-propagate position inside the window decides.
      carry = g.bit(i - run);
    }
    out.carries.set_bit(i, carry);
  }
  return out;
}

}  // namespace

AcaResult aca_add(const BitVec& a, const BitVec& b, int k, bool carry_in) {
  check_args(a, b, k);
  const int n = a.width();
  const BitVec p = a ^ b;
  const CarryTrace trace = window_carries(a, b, k, carry_in);

  AcaResult out{BitVec(n), false, trace.flagged};
  bool carry_prev = carry_in;  // speculative c_{i-1}; c_{-1} = carry_in
  for (int i = 0; i < n; ++i) {
    out.sum.set_bit(i, p.bit(i) ^ carry_prev);
    carry_prev = trace.carries.bit(i);
  }
  out.carry_out = carry_prev;
  return out;
}

BitVec aca_speculative_carries(const BitVec& a, const BitVec& b, int k,
                               bool carry_in) {
  check_args(a, b, k);
  return window_carries(a, b, k, carry_in).carries;
}

AcaResult aca_sub(const BitVec& a, const BitVec& b, int k) {
  return aca_add(a, ~b, k, /*carry_in=*/true);
}

bool aca_flag(const BitVec& a, const BitVec& b, int k) {
  check_args(a, b, k);
  return (a ^ b).longest_one_run() >= k;
}

bool aca_is_exact(const BitVec& a, const BitVec& b, int k) {
  return aca_add(a, b, k).sum == a + b;
}

int longest_propagate_chain(const BitVec& a, const BitVec& b) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("longest_propagate_chain: width mismatch");
  }
  return (a ^ b).longest_one_run();
}

SpeculativeAdder::SpeculativeAdder(int width, int window)
    : width_(width), window_(window) {
  if (width < 1 || window < 1) {
    throw std::invalid_argument("SpeculativeAdder: bad configuration");
  }
}

SpeculativeAdder SpeculativeAdder::with_target_accuracy(
    int width, double target_accuracy) {
  if (target_accuracy <= 0.0 || target_accuracy >= 1.0) {
    throw std::invalid_argument(
        "SpeculativeAdder: accuracy must be in (0, 1)");
  }
  const int k = analysis::choose_window(width, 1.0 - target_accuracy);
  return SpeculativeAdder(width, k);
}

SpeculativeAdder::SpeculativeAdder(const SpeculativeAdder& other)
    : width_(other.width_),
      window_(other.window_),
      total_(other.total_adds()),
      flagged_(other.flagged_adds()),
      wrong_(other.wrong_adds()) {}

SpeculativeAdder& SpeculativeAdder::operator=(const SpeculativeAdder& other) {
  width_ = other.width_;
  window_ = other.window_;
  total_.store(other.total_adds(), std::memory_order_relaxed);
  flagged_.store(other.flagged_adds(), std::memory_order_relaxed);
  wrong_.store(other.wrong_adds(), std::memory_order_relaxed);
  return *this;
}

void SpeculativeAdder::record(const Outcome& out) {
  total_.fetch_add(1, std::memory_order_relaxed);
  if (out.flagged) flagged_.fetch_add(1, std::memory_order_relaxed);
  if (out.was_wrong) wrong_.fetch_add(1, std::memory_order_relaxed);
}

SpeculativeAdder::Outcome SpeculativeAdder::add(const BitVec& a,
                                                const BitVec& b) {
  if (a.width() != width_ || b.width() != width_) {
    throw std::invalid_argument("SpeculativeAdder::add: width mismatch");
  }
  const AcaResult spec = aca_add(a, b, window_);
  const auto exact = a.add_with_carry(b);
  Outcome out{spec.sum, exact.sum, exact.carry_out, spec.flagged,
              spec.sum != exact.sum || spec.carry_out != exact.carry_out};
  record(out);
  return out;
}

SpeculativeAdder::Outcome SpeculativeAdder::sub(const BitVec& a,
                                                const BitVec& b) {
  if (a.width() != width_ || b.width() != width_) {
    throw std::invalid_argument("SpeculativeAdder::sub: width mismatch");
  }
  const AcaResult spec = aca_sub(a, b, window_);
  const auto exact = a.add_with_carry(~b, /*carry_in=*/true);
  Outcome out{spec.sum, exact.sum, exact.carry_out, spec.flagged,
              spec.sum != exact.sum || spec.carry_out != exact.carry_out};
  record(out);
  return out;
}

double SpeculativeAdder::observed_flag_rate() const {
  const long long total = total_adds();
  return total == 0 ? 0.0 : static_cast<double>(flagged_adds()) / total;
}

double SpeculativeAdder::observed_error_rate() const {
  const long long total = total_adds();
  return total == 0 ? 0.0 : static_cast<double>(wrong_adds()) / total;
}

}  // namespace vlsa::core
