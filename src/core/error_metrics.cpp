#include "core/error_metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "core/aca.hpp"
#include "util/rng.hpp"

namespace vlsa::core {

namespace {

// value / 2^width as a double; exact in the leading 53 bits.
double normalized_value(const util::BitVec& v) {
  double acc = 0.0;
  const auto& limbs = v.limbs();
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    acc += std::ldexp(static_cast<double>(limbs[i]),
                      static_cast<int>(i) * 64 - v.width());
  }
  return acc;
}

}  // namespace

double normalized_distance(const util::BitVec& a, const util::BitVec& b) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("normalized_distance: width mismatch");
  }
  const double da = normalized_value(a);
  const double db = normalized_value(b);
  return da >= db ? da - db : db - da;
}

ErrorMagnitude measure_error_magnitude(int width, int window, int trials,
                                       std::uint64_t seed) {
  if (width < 1 || window < 1 || trials < 1) {
    throw std::invalid_argument("measure_error_magnitude: bad arguments");
  }
  util::Rng rng(seed);
  ErrorMagnitude m;
  m.trials = trials;
  double med_acc = 0.0;
  double mred_acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    const util::BitVec a = rng.next_bits(width);
    const util::BitVec b = rng.next_bits(width);
    const auto spec = aca_add(a, b, window);
    const util::BitVec exact = a + b;
    if (spec.sum == exact) continue;
    m.wrong += 1;
    const double distance = normalized_distance(spec.sum, exact);
    med_acc += distance;
    const double exact_value = normalized_value(exact);
    mred_acc += distance / (exact_value > 0.0 ? exact_value
                                              : std::ldexp(1.0, -width));
    const util::BitVec diff_bits = spec.sum ^ exact;
    for (int i = 0; i < width; ++i) {
      if (diff_bits.bit(i)) {
        if (m.min_error_bit < 0 || i < m.min_error_bit) m.min_error_bit = i;
        break;
      }
    }
  }
  m.error_rate = static_cast<double>(m.wrong) / trials;
  m.normalized_med = med_acc / trials;
  m.mred_given_wrong = m.wrong > 0 ? mred_acc / m.wrong : 0.0;
  return m;
}

}  // namespace vlsa::core
