#pragma once
// Error-magnitude metrics for the ACA, in the vocabulary the
// approximate-computing literature that followed this paper settled on
// (error distance, MED, MRED).
//
// The ACA's error structure is distinctive: a misspeculated carry flips
// sum bits only at positions >= k-1, so when it is wrong it is wrong by
// at least 2^(k-1) — large absolute errors with tiny probability, the
// opposite trade-off from truncation-style approximate adders.  These
// metrics quantify that signature.

#include <cstdint>

#include "util/bitvec.hpp"

namespace vlsa::core {

/// Monte-Carlo error-magnitude summary over uniform random operands.
struct ErrorMagnitude {
  long long trials = 0;
  long long wrong = 0;
  double error_rate = 0.0;
  /// Mean error distance |spec - exact| normalized by 2^width, over ALL
  /// trials (correct ones contribute 0) — the normalized MED.
  double normalized_med = 0.0;
  /// Mean relative error distance |spec - exact| / max(exact, 1) over the
  /// wrong trials only (0 when nothing went wrong).
  double mred_given_wrong = 0.0;
  /// Lowest sum-bit index that ever differed (-1 if none did); the ACA
  /// guarantees this is >= window - 1.
  int min_error_bit = -1;
};

ErrorMagnitude measure_error_magnitude(int width, int window, int trials,
                                       std::uint64_t seed);

/// |a - b| / 2^width as a double (helper, exposed for tests).
double normalized_distance(const util::BitVec& a, const util::BitVec& b);

}  // namespace vlsa::core
