#pragma once
// Behavioral model of the Almost Correct Adder (ACA) — the paper's first
// contribution (Sec. 3).
//
// ACA(n, k) computes every carry c_i from the k bit positions
// [i-k+1 .. i] (clamped at bit 0) assuming the carry into that window is
// 0.  Every sum bit therefore depends on at most k+1 input positions and
// the carry network has O(log k) = O(log log n) depth — exponentially
// faster than the Ω(log n) bound for exact adders — at the price of a
// deterministic error on the rare inputs with an activated propagate
// chain of length >= k.
//
// This model is the executable specification: the gate-level generators
// in core/aca_netlist.hpp are verified against it, and it is fast enough
// (O(n) per add) for Monte-Carlo error studies and the cryptographic
// workload.

#include <atomic>

#include "util/bitvec.hpp"

namespace vlsa::core {

using util::BitVec;

/// Result of one speculative addition.
struct AcaResult {
  BitVec sum;        ///< speculative sum (width n)
  bool carry_out;    ///< speculative carry out of bit n-1
  bool flagged;      ///< ER: a propagate chain of length >= k exists
};

/// Speculative sum of `a` and `b` with window `k` (1 <= k; a,b same width).
/// `carry_in` feeds bit 0 exactly (a clamped window *knows* the carry-in;
/// only full k-propagate windows speculate), so subtraction via
/// a + ~b + 1 keeps the ACA's soundness guarantee.
AcaResult aca_add(const BitVec& a, const BitVec& b, int k,
                  bool carry_in = false);

/// Speculative subtraction a - b (two's complement: a + ~b + 1).
AcaResult aca_sub(const BitVec& a, const BitVec& b, int k);

/// The windowed carry chain itself: bit i of the result is the
/// speculative carry out of position i (so `aca_add(...).sum` equals
/// `p ^ (carries << 1 | carry_in)`).  The window semantics are exactly
/// those of `aca_add`:
///   * a full k-propagate window speculates carry 0 (the error source),
///   * a window clamped at bit 0 with fewer than k positions sees the
///     architectural `carry_in` exactly,
///   * otherwise the nearest non-propagate position decides (its
///     generate bit rides the propagate chain up to the queried bit).
/// Exposed so alternative evaluators — in particular the bit-sliced
/// batch engine in sim/batch_engine.hpp — can be checked against the
/// internal carry lanes, not just the final sums.
BitVec aca_speculative_carries(const BitVec& a, const BitVec& b, int k,
                               bool carry_in = false);

/// Just the error-detection signal ER (Sec. 4.1): true iff the addenda
/// contain a propagate chain of length >= k.  ER == false guarantees
/// `aca_add(a, b, k).sum == a + b` (tested property).
bool aca_flag(const BitVec& a, const BitVec& b, int k);

/// Convenience: does ACA(n, k) return the exact sum for these operands?
bool aca_is_exact(const BitVec& a, const BitVec& b, int k);

/// Length of the longest propagate chain of the operand pair — the
/// quantity whose distribution drives the whole design (Sec. 3.1).
int longest_propagate_chain(const BitVec& a, const BitVec& b);

/// A configured speculative adder with running statistics; the software
/// twin of the VLSA datapath.
///
/// Thread safety: `add`/`sub` may be called concurrently from any number
/// of threads — the statistics counters are relaxed atomics, so totals
/// are never lost or torn (tests/test_parallel.cpp hammers this).  The
/// three counters are sampled independently; a reader racing with
/// writers can observe `flagged_adds() > 0` a moment before the matching
/// `total_adds()` increment, so compute rates from a quiescent adder.
class SpeculativeAdder {
 public:
  /// `width` = operand bits, `window` = k.
  SpeculativeAdder(int width, int window);

  /// Pick the smallest window whose flag probability (on uniform random
  /// operands) is at most `1 - target_accuracy` — e.g. 0.9999 reproduces
  /// the paper's "99.99% accurate" design points.
  static SpeculativeAdder with_target_accuracy(int width,
                                               double target_accuracy);

  int width() const { return width_; }
  int window() const { return window_; }

  /// One addition: speculative result plus the exact sum (what the
  /// recovery stage would produce).
  struct Outcome {
    BitVec speculative;
    BitVec exact;
    bool carry_out_exact;
    bool flagged;      ///< ER fired — VLSA would stall for recovery
    bool was_wrong;    ///< speculative != exact (implies flagged)
  };
  Outcome add(const BitVec& a, const BitVec& b);

  /// Speculative subtraction with the same statistics accounting.
  Outcome sub(const BitVec& a, const BitVec& b);

  /// Copies carry the configuration and a snapshot of the counters.
  SpeculativeAdder(const SpeculativeAdder& other);
  SpeculativeAdder& operator=(const SpeculativeAdder& other);

  // Running statistics over every `add`/`sub` call.
  long long total_adds() const {
    return total_.load(std::memory_order_relaxed);
  }
  long long flagged_adds() const {
    return flagged_.load(std::memory_order_relaxed);
  }
  long long wrong_adds() const {
    return wrong_.load(std::memory_order_relaxed);
  }
  double observed_flag_rate() const;
  double observed_error_rate() const;

 private:
  void record(const Outcome& out);

  int width_;
  int window_;
  std::atomic<long long> total_ = 0;
  std::atomic<long long> flagged_ = 0;
  std::atomic<long long> wrong_ = 0;
};

}  // namespace vlsa::core
