#pragma once
// The clocked VLSA of Fig. 6, as an actual sequential netlist.
//
// Operands are captured into registers at the clock edge; during the
// following cycle the ACA and the error detector evaluate from the
// registers.  On a hit, VALID rises and the next operands are captured.
// On a miss the FSM walks two recovery states while the (multicycle)
// recovery cone settles, then presents the exact sum with VALID = 1 —
// exactly the Fig. 7 waveform:
//
//   state EVAL  : sum = speculative, VALID = !ER, capture next if !ER
//   state REC1  : VALID = 0, STALL = 1 (recovery cone settling)
//   state REC2  : sum = recovered (exact), VALID = 1, capture next
//
// Timing contract (checked by analyze_sequential_timing + the bench):
// the single-cycle paths are the ACA/ER cones (register -> output /
// register -> state FF); the recovery cone register -> sum is a declared
// 2-cycle multicycle path, which is why the clock can sit just above
// max(T_ACA, T_ER) instead of at the recovery delay.

#include <vector>

#include "core/aca_netlist.hpp"
#include "netlist/netlist.hpp"

namespace vlsa::core {

struct SequentialVlsa {
  netlist::Netlist nl;
  std::vector<netlist::NetId> a;    ///< primary inputs (LSB first)
  std::vector<netlist::NetId> b;
  std::vector<netlist::NetId> sum;  ///< output bus
  netlist::NetId valid = netlist::kNoNet;
  netlist::NetId stall = netlist::kNoNet;
  /// State flip-flop Q nets (bit0: entering REC1, bit1: in REC2).
  netlist::NetId state0 = netlist::kNoNet;
  netlist::NetId state1 = netlist::kNoNet;
  /// Cycles from operand capture to VALID on a flagged operation.
  static constexpr int kRecoveryLatency = 2;
};

/// Build the clocked VLSA (width >= 2, window >= 1).
SequentialVlsa build_sequential_vlsa(int width, int window);

}  // namespace vlsa::core
