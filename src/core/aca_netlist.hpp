#pragma once
// Gate-level generators for the ACA family (the paper's experimental
// artifact, Sec. 3.2-4.3 and Fig. 2-6).
//
//  * build_aca            — shared-strip construction of Fig. 3/4: window
//                           matrix products of lengths 1,2,4,...  are
//                           computed once and reused, giving O(n log k)
//                           area and bounded fanout.
//  * build_aca_naive      — the strawman of Fig. 2: one independent
//                           (k+1)-bit sub-adder per output bit, O(n k)
//                           area and O(k) input fanout; kept as the
//                           ablation baseline for the sharing idea.
//  * build_error_detector — standalone ER circuit (Sec. 4.1): AND-windows
//                           of k consecutive propagates OR-reduced, all
//                           simple gates.
//  * build_vlsa           — ACA + error detection + error recovery wired
//                           as in Fig. 5/6: exact sum outputs, plus the
//                           speculative sum and the error flag.  Its
//                           critical path is the recovery path the paper
//                           plots as "ACA + error recovery".

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace vlsa::core {

/// A generated speculative adder with its port nets.
struct AcaNetlist {
  netlist::Netlist nl;
  std::vector<netlist::NetId> a;          ///< LSB first
  std::vector<netlist::NetId> b;
  std::vector<netlist::NetId> sum;        ///< speculative sum
  netlist::NetId carry_out = netlist::kNoNet;
  netlist::NetId error = netlist::kNoNet; ///< ER (kNoNet if not requested)
};

/// Shared-strip ACA; `with_error_flag` adds the ER output reusing the
/// window products (the P half of the same matrices).
AcaNetlist build_aca(int width, int window, bool with_error_flag = false);

/// Composable form: instantiate the shared-strip ACA *inside* an existing
/// netlist over arbitrary operand nets (used e.g. as the final adder of
/// the speculative multiplier).  `error` is kNoNet unless requested.
struct AcaNets {
  std::vector<netlist::NetId> sum;
  netlist::NetId carry_out = netlist::kNoNet;
  netlist::NetId error = netlist::kNoNet;
};
AcaNets build_aca_into(netlist::Netlist& nl,
                       std::span<const netlist::NetId> a,
                       std::span<const netlist::NetId> b, int window,
                       bool with_error_flag);

/// Naive replicated-sub-adder ACA (Fig. 2 strawman, ablation only).
AcaNetlist build_aca_naive(int width, int window);

/// Standalone error detector: inputs a/b, single output "error".
struct ErrorDetectorNetlist {
  netlist::Netlist nl;
  std::vector<netlist::NetId> a;
  std::vector<netlist::NetId> b;
  netlist::NetId error = netlist::kNoNet;
};
ErrorDetectorNetlist build_error_detector(int width, int window);

/// How the exact (recovery) sum is produced.
enum class RecoveryStyle {
  /// Fig. 5: reuse the ACA's k-bit block (G, P) products and run an
  /// n/k-bit carry look-ahead over them — the paper's contribution.
  ReuseBlocks,
  /// The strawman the paper mentions first in Sec. 4.2: bolt a complete
  /// traditional (Kogge-Stone) adder next to the ACA.  Kept for the
  /// ablation bench.
  ReplicatedAdder,
};

/// Full variable-latency datapath, combinational view: speculative sum,
/// ER, and the recovered (always exact) sum built from the ACA's block
/// (G, P) signals plus an n/k-bit carry look-ahead (Fig. 5).
struct VlsaNetlist {
  netlist::Netlist nl;
  std::vector<netlist::NetId> a;
  std::vector<netlist::NetId> b;
  std::vector<netlist::NetId> speculative_sum;
  std::vector<netlist::NetId> exact_sum;
  netlist::NetId speculative_carry_out = netlist::kNoNet;
  netlist::NetId exact_carry_out = netlist::kNoNet;
  netlist::NetId error = netlist::kNoNet;
  netlist::NetId valid = netlist::kNoNet;  ///< NOT error
};
VlsaNetlist build_vlsa(int width, int window,
                       RecoveryStyle style = RecoveryStyle::ReuseBlocks);

/// Composable form of the VLSA datapath over existing operand nets
/// (used by the sequential Fig. 6 wrapper, which feeds it from operand
/// registers).
struct VlsaNets {
  std::vector<netlist::NetId> speculative_sum;
  std::vector<netlist::NetId> exact_sum;
  netlist::NetId speculative_carry_out = netlist::kNoNet;
  netlist::NetId exact_carry_out = netlist::kNoNet;
  netlist::NetId error = netlist::kNoNet;
};
VlsaNets build_vlsa_into(netlist::Netlist& nl,
                         std::span<const netlist::NetId> a,
                         std::span<const netlist::NetId> b, int window,
                         RecoveryStyle style = RecoveryStyle::ReuseBlocks);

}  // namespace vlsa::core
