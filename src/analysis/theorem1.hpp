#pragma once
// Theorem 1 of the paper: the expected number of fair-coin flips needed
// to first observe a run of k heads is 2^(k+1) - 2.
//
// The proof walks the infinite line graph of Fig. 2 with the recurrence
// T_k = T_{k-1} + (T_{k-1} + 2)/... solved to T_k = 2^(k+1) - 2.  We
// expose the closed form, an independent numeric solution of the Markov
// recurrence, and a Monte-Carlo estimator — the bench cross-checks all
// three.

#include <cstdint>

#include "util/rng.hpp"

namespace vlsa::analysis {

/// Closed form 2^(k+1) - 2 (k >= 1; k <= 62 to fit in uint64).
std::uint64_t expected_flips_closed_form(int k);

/// Numeric solution of T_j = 2*T_{j-1} + 2, T_0 = 0 — independent of the
/// closed form.
double expected_flips_recurrence(int k);

/// Monte-Carlo mean number of flips to reach a run of k heads over
/// `trials` independent experiments.
double expected_flips_monte_carlo(int k, int trials, util::Rng& rng);

}  // namespace vlsa::analysis
