#include "analysis/biguint.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace vlsa::analysis {

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

BigUint BigUint::pow2(int exponent) {
  if (exponent < 0) throw std::invalid_argument("BigUint::pow2: negative");
  BigUint v;
  v.limbs_.assign(static_cast<std::size_t>(exponent / 64) + 1, 0);
  v.limbs_.back() = std::uint64_t{1} << (exponent % 64);
  return v;
}

int BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  const int top = 64 - std::countl_zero(limbs_.back());
  return static_cast<int>(limbs_.size() - 1) * 64 + top;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t r = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    if (r == 0 && carry == 0 && i >= rhs.limbs_.size()) break;
    const unsigned __int128 s =
        static_cast<unsigned __int128>(limbs_[i]) + r + carry;
    limbs_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  if (carry) limbs_.push_back(1);
  return *this;
}

BigUint BigUint::operator+(const BigUint& rhs) const {
  BigUint out = *this;
  out += rhs;
  return out;
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  if (*this < rhs) throw std::underflow_error("BigUint: negative result");
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t r = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    if (r == 0 && borrow == 0 && i >= rhs.limbs_.size()) break;
    const unsigned __int128 sub =
        static_cast<unsigned __int128>(r) + borrow;
    const unsigned __int128 before = limbs_[i];
    borrow = before < sub ? 1 : 0;
    limbs_[i] = static_cast<std::uint64_t>(
        before + (static_cast<unsigned __int128>(1) << 64) - sub);
  }
  trim();
  return *this;
}

BigUint BigUint::operator-(const BigUint& rhs) const {
  BigUint out = *this;
  out -= rhs;
  return out;
}

std::strong_ordering BigUint::operator<=>(const BigUint& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) {
    return limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

double BigUint::ratio_to_pow2(int exponent) const {
  if (is_zero()) return 0.0;
  const int len = bit_length();
  // Take the top (up to) 64 bits as the mantissa.
  std::uint64_t mantissa = 0;
  int mantissa_exp = 0;  // value ≈ mantissa * 2^mantissa_exp
  if (len <= 64) {
    mantissa = limbs_[0];
  } else {
    const int shift = len - 64;  // drop `shift` low bits
    const std::size_t limb = static_cast<std::size_t>(shift) / 64;
    const int off = shift % 64;
    mantissa = limbs_[limb] >> off;
    if (off != 0 && limb + 1 < limbs_.size()) {
      mantissa |= limbs_[limb + 1] << (64 - off);
    }
    mantissa_exp = shift;
  }
  return std::ldexp(static_cast<double>(mantissa), mantissa_exp - exponent);
}

std::uint64_t BigUint::to_u64() const {
  if (limbs_.size() > 1) throw std::overflow_error("BigUint::to_u64");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      const int v = static_cast<int>((limbs_[i] >> (nib * 4)) & 0xf);
      if (out.empty() && v == 0) continue;
      out.push_back(kHex[v]);
    }
  }
  return out;
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

}  // namespace vlsa::analysis
