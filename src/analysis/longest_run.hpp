#pragma once
// Exact and asymptotic statistics of the longest run of 1s in a uniform
// random n-bit string (Sec. 3.1 of the paper).
//
// Because p_i = a_i XOR b_i and the XOR of two independent uniform
// operands is uniform, the longest *propagate chain* in a random addition
// has exactly this distribution — it is the quantity every ACA design
// decision is driven by.

#include "analysis/biguint.hpp"

namespace vlsa::analysis {

/// Incremental evaluator of the paper's recurrence
///   A_n(x) = 2^n                          for n <= x,
///   A_n(x) = sum_{j=0..x} A_{n-1-j}(x)    otherwise,
/// where A_n(x) counts n-bit strings whose longest 1-run is <= x.
/// Values are memoized, so sweeping n upward is O(1) big-adds per step.
class LongestRunCounter {
 public:
  /// `max_run` is x; must be >= 0.
  explicit LongestRunCounter(int max_run);

  int max_run() const { return max_run_; }

  /// A_n(x); n >= 0.
  const BigUint& count(int n);

  /// P(longest run <= x) for a uniform n-bit string.
  double prob_at_most(int n);

 private:
  int max_run_;
  std::vector<BigUint> memo_;   // memo_[n] = A_n(x)
  BigUint window_sum_;          // sum of the last (x+1) memo entries
};

/// P(longest 1-run of a uniform n-bit string <= x).  Exact.
double prob_longest_run_at_most(int n, int x);

/// P(longest 1-run >= x).  Exact (big-integer subtraction, so small tail
/// probabilities keep full double precision).
double prob_longest_run_at_least(int n, int x);

/// Smallest x such that P(longest run <= x) >= prob — the per-width bound
/// reported in Table 1 (prob = 0.99 and 0.9999 there).
int longest_run_quantile(int n, double prob);

/// Schilling's asymptotic expectation: E[longest run] ≈ log2(n) - 2/3.
double schilling_expected_run(int n);

/// Asymptotic variance of the longest run: pi^2/(6 ln^2 2) + 1/12
/// ≈ 3.507 (width-independent up to small oscillations).  The paper's
/// text prints "variance 1.873" for this constant; our exact recurrence
/// (longest_run_moments) converges to ≈ 3.5, matching the published
/// extreme-value asymptotics, so we treat the paper's figure as a typo
/// and report the exact value.
double schilling_run_variance();

/// Exact mean and variance of the longest-run distribution for a uniform
/// n-bit string, from the recurrence.
struct RunMoments {
  double mean = 0.0;
  double variance = 0.0;
};
RunMoments longest_run_moments(int n);

/// Poisson/extreme-value tail approximation (Gordon, Schilling, Waterman):
/// P(longest run >= x) ≈ 1 - exp(-(n - x + 1) * 2^-(x+1)).
double gordon_prob_run_at_least(int n, int x);

}  // namespace vlsa::analysis
