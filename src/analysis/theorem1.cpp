#include "analysis/theorem1.hpp"

#include <stdexcept>

namespace vlsa::analysis {

std::uint64_t expected_flips_closed_form(int k) {
  if (k < 1 || k > 62) {
    throw std::invalid_argument("expected_flips_closed_form: k out of range");
  }
  return (std::uint64_t{1} << (k + 1)) - 2;
}

double expected_flips_recurrence(int k) {
  if (k < 1) throw std::invalid_argument("expected_flips_recurrence: k < 1");
  // From the line-graph argument: advancing from node j-1 to node j takes
  // on average avg(1, 1 + T_{j-1} + (advance again)) — solving the one-step
  // equation gives T_j = 2*T_{j-1} + 2.
  double t = 0.0;
  for (int j = 1; j <= k; ++j) t = 2.0 * t + 2.0;
  return t;
}

double expected_flips_monte_carlo(int k, int trials, util::Rng& rng) {
  if (k < 1 || trials < 1) {
    throw std::invalid_argument("expected_flips_monte_carlo: bad arguments");
  }
  std::uint64_t total = 0;
  for (int t = 0; t < trials; ++t) {
    int run = 0;
    std::uint64_t flips = 0;
    while (run < k) {
      // Consume random bits 64 at a time.
      std::uint64_t word = rng.next_u64();
      for (int b = 0; b < 64 && run < k; ++b) {
        flips += 1;
        run = (word & 1) ? run + 1 : 0;
        word >>= 1;
      }
    }
    total += flips;
  }
  return static_cast<double>(total) / trials;
}

}  // namespace vlsa::analysis
