#include "analysis/aca_probability.hpp"

#include <stdexcept>
#include <vector>

#include "analysis/longest_run.hpp"

namespace vlsa::analysis {

double aca_wrong_probability(int n, int k) {
  if (n < 1 || k < 1) {
    throw std::invalid_argument("aca_wrong_probability: bad arguments");
  }
  if (k > n) return 0.0;  // window covers every carry exactly
  // State: run length r in [0, k-1] of the current trailing propagate run,
  // crossed with whether the symbol just below that run is a generate.
  // Reaching r == k with the generate flag set is the absorbing error
  // state.  A run touching bit 0 has carry-in 0, modeled by flag = false.
  std::vector<double> no_gen(static_cast<std::size_t>(k), 0.0);
  std::vector<double> with_gen(static_cast<std::size_t>(k), 0.0);
  no_gen[0] = 1.0;  // "below bit 0" behaves like a kill
  double error = 0.0;
  for (int pos = 0; pos < n; ++pos) {
    std::vector<double> next_no(static_cast<std::size_t>(k), 0.0);
    std::vector<double> next_gen(static_cast<std::size_t>(k), 0.0);
    double kill_mass = 0.0;
    double gen_mass = 0.0;
    for (int r = 0; r < k; ++r) {
      const double n0 = no_gen[static_cast<std::size_t>(r)];
      const double n1 = with_gen[static_cast<std::size_t>(r)];
      if (n0 == 0.0 && n1 == 0.0) continue;
      // propagate (1/2): run grows
      if (r + 1 < k) {
        next_no[static_cast<std::size_t>(r + 1)] += 0.5 * n0;
        next_gen[static_cast<std::size_t>(r + 1)] += 0.5 * n1;
      } else {
        // run reaches k: an activated run is an error; an unactivated run
        // of length >= k stays harmless no matter how much longer it
        // grows (the incoming carry is genuinely 0), so it collapses to
        // the same "long dead run" behaviour as r = k-1 without a
        // generate below... but its *next* non-propagate symbol resets
        // the state anyway, so parking it at (k-1, no_gen) is exact.
        error += 0.5 * n1;
        next_no[static_cast<std::size_t>(k - 1)] += 0.5 * n0;
      }
      // generate (1/4) / kill (1/4): run resets with the matching flag
      gen_mass += 0.25 * (n0 + n1);
      kill_mass += 0.25 * (n0 + n1);
    }
    next_gen[0] += gen_mass;
    next_no[0] += kill_mass;
    no_gen = std::move(next_no);
    with_gen = std::move(next_gen);
  }
  return error;
}

double aca_flag_probability(int n, int k) {
  if (n < 1 || k < 1) {
    throw std::invalid_argument("aca_flag_probability: bad arguments");
  }
  return prob_longest_run_at_least(n, k);
}

double aca_false_positive_probability(int n, int k) {
  return aca_flag_probability(n, k) - aca_wrong_probability(n, k);
}

int choose_window(int n, double max_flag_probability) {
  if (n < 1 || max_flag_probability <= 0.0) {
    throw std::invalid_argument("choose_window: bad arguments");
  }
  // P(run >= k) <= target  ⟺  P(run <= k-1) >= 1 - target.
  const int bound = longest_run_quantile(n, 1.0 - max_flag_probability);
  return bound + 1;
}

double expected_vlsa_cycles(int n, int k, int recovery_cycles) {
  return 1.0 + recovery_cycles * aca_flag_probability(n, k);
}

}  // namespace vlsa::analysis
