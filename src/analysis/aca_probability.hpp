#pragma once
// Exact probabilities for the ACA under uniform random operands.
//
// Parameterization used across this repository: ACA(n, k) computes every
// carry c_i from the k bit positions [i-k+1 .. i] (clamped at bit 0),
// assuming the carry into that window is 0.  Consequences:
//
//   * the sum is wrong  iff some propagate run of length >= k is
//     "activated" — immediately preceded (below) by a generate;
//   * the error flag ER fires iff some propagate run of length >= k
//     exists at all (activated or not), so ER = 0 implies exactness.
//
// For uniform independent operands each bit position is i.i.d. with
// P(propagate) = 1/2, P(generate) = P(kill) = 1/4, which makes both
// probabilities computable by a small Markov DP.

namespace vlsa::analysis {

/// P(ACA(n, k) produces a wrong sum) — exact DP over the
/// (run-length, preceded-by-generate) state space.
double aca_wrong_probability(int n, int k);

/// P(ER = 1) = P(longest propagate run >= k); exact (delegates to the
/// longest-run recurrence).
double aca_flag_probability(int n, int k);

/// P(ER = 1 but the sum is correct) — the detector's false-positive mass
/// (it costs a recovery cycle without having been necessary).
double aca_false_positive_probability(int n, int k);

/// Smallest window k such that P(ER) <= max_flag_probability, i.e. the
/// design point "accuracy >= 1 - max_flag_probability" used for the
/// paper's 99.99%-accurate ACAs.
int choose_window(int n, double max_flag_probability);

/// Expected VLSA latency in cycles when a flagged addition costs
/// `recovery_cycles` extra cycles (Sec. 4.3: 1 + c * P(ER)).
double expected_vlsa_cycles(int n, int k, int recovery_cycles = 2);

}  // namespace vlsa::analysis
