#pragma once
// Arbitrary-precision unsigned integers.
//
// The exact longest-run recurrence A_n(x) of Sec. 3.1 counts n-bit
// strings, so its values reach 2^2048 for the paper's widest adders —
// far beyond native integers.  Only the operations the recurrence needs
// are provided: addition, subtraction, comparison and conversion of
// ratios against powers of two to double.

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace vlsa::analysis {

/// Unsigned big integer on 64-bit little-endian limbs (no leading zero
/// limbs stored).
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  /// 2^exponent.
  static BigUint pow2(int exponent);

  bool is_zero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  int bit_length() const;

  BigUint& operator+=(const BigUint& rhs);
  BigUint operator+(const BigUint& rhs) const;

  /// Subtraction; throws std::underflow_error if rhs > *this.
  BigUint& operator-=(const BigUint& rhs);
  BigUint operator-(const BigUint& rhs) const;

  std::strong_ordering operator<=>(const BigUint& rhs) const;
  bool operator==(const BigUint& rhs) const = default;

  /// this / 2^exponent as a double (accurate to double precision even
  /// when bit_length() far exceeds 1024, as long as the *ratio* is
  /// representable).
  double ratio_to_pow2(int exponent) const;

  /// Exact value when it fits in 64 bits; throws std::overflow_error
  /// otherwise.
  std::uint64_t to_u64() const;

  /// Lower-case hex string ("0" for zero).
  std::string to_hex() const;

 private:
  void trim();
  std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zeros
};

}  // namespace vlsa::analysis
