#include "analysis/longest_run.hpp"

#include <cmath>
#include <stdexcept>

namespace vlsa::analysis {

LongestRunCounter::LongestRunCounter(int max_run) : max_run_(max_run) {
  if (max_run < 0) {
    throw std::invalid_argument("LongestRunCounter: negative max_run");
  }
  memo_.push_back(BigUint(1));  // A_0 = 1 (the empty string)
  window_sum_ = BigUint(1);
}

const BigUint& LongestRunCounter::count(int n) {
  if (n < 0) throw std::invalid_argument("LongestRunCounter::count: n < 0");
  while (static_cast<int>(memo_.size()) <= n) {
    const int m = static_cast<int>(memo_.size());
    BigUint next;
    if (m <= max_run_) {
      next = BigUint::pow2(m);
    } else {
      // A_m = sum_{j=0..x} A_{m-1-j}; `window_sum_` already holds the sum
      // of memo_[m-1-x .. m-1].
      next = window_sum_;
    }
    // Slide the window: add the new value, drop the one that falls out.
    window_sum_ += next;
    const int drop = m - max_run_ - 1;
    if (drop >= 0) window_sum_ -= memo_[static_cast<std::size_t>(drop)];
    memo_.push_back(std::move(next));
  }
  return memo_[static_cast<std::size_t>(n)];
}

double LongestRunCounter::prob_at_most(int n) {
  return count(n).ratio_to_pow2(n);
}

double prob_longest_run_at_most(int n, int x) {
  if (x < 0) return n == 0 ? 1.0 : 0.0;
  if (x >= n) return 1.0;
  LongestRunCounter counter(x);
  return counter.prob_at_most(n);
}

double prob_longest_run_at_least(int n, int x) {
  if (x <= 0) return 1.0;
  if (x > n) return 0.0;
  LongestRunCounter counter(x - 1);
  const BigUint bad = BigUint::pow2(n) - counter.count(n);
  return bad.ratio_to_pow2(n);
}

int longest_run_quantile(int n, double prob) {
  for (int x = 0; x <= n; ++x) {
    if (prob_longest_run_at_most(n, x) >= prob) return x;
  }
  return n;
}

double schilling_expected_run(int n) {
  return std::log2(static_cast<double>(n)) - 2.0 / 3.0;
}

double schilling_run_variance() {
  const double ln2 = std::log(2.0);
  const double pi = 3.14159265358979323846;
  return pi * pi / (6.0 * ln2 * ln2) + 1.0 / 12.0;
}

RunMoments longest_run_moments(int n) {
  if (n < 1) throw std::invalid_argument("longest_run_moments: n < 1");
  RunMoments m;
  double prev_cdf = 0.0;
  for (int x = 0; x <= n; ++x) {
    const double cdf = prob_longest_run_at_most(n, x);
    const double pmf = cdf - prev_cdf;
    m.mean += x * pmf;
    m.variance += static_cast<double>(x) * x * pmf;
    prev_cdf = cdf;
    if (cdf > 1.0 - 1e-15) break;
  }
  m.variance -= m.mean * m.mean;
  return m;
}

double gordon_prob_run_at_least(int n, int x) {
  if (x <= 0) return 1.0;
  if (x > n) return 0.0;
  const double expected_starts =
      static_cast<double>(n - x + 1) * std::pow(2.0, -(x + 1));
  return 1.0 - std::exp(-expected_starts);
}

}  // namespace vlsa::analysis
