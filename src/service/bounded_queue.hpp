#pragma once
// Bounded MPMC queue — the submission spine of the arithmetic service.
//
// Any number of producers push requests; any number of dispatcher
// workers pop them *in batches* so one queue transaction amortizes over
// up to 64 requests (the batch engine's lane count).  The bound is the
// backpressure mechanism: when the queue is full, `try_push` fails
// immediately (reject policy) and `push_block` waits for space (block
// policy), so overload degrades into rejections or producer throttling
// instead of unbounded memory growth.
//
// `pop_batch` implements the batching scheduler's max-linger: it waits
// for the first item, then keeps collecting until either `max` items
// are in hand or `linger` has elapsed — full batches under load,
// bounded added latency when arrivals are sparse.  After `close()`,
// pushes fail, poppers drain whatever remains without lingering, and
// then `pop_batch` returns 0 — the worker-shutdown signal.
//
// The locking discipline is machine-checked: every field behind
// `mutex_` carries GUARDED_BY, so `clang++ -Wthread-safety` (the
// `thread-safety` preset) proves no access escapes the lock.  Waits are
// written as explicit `while (!condition) wait` loops rather than
// predicate lambdas so the analysis sees every guarded read under the
// capability (see util/mutex.hpp).
//
// The synchronization primitives are a policy template parameter:
// production code uses the default `DefaultSync` (util::Mutex et al.,
// zero overhead — the default instantiation is byte-identical to the
// pre-policy queue), while the model-checker tests instantiate
// `BoundedQueue<T, mc::Sync>` so the *exact same* push/pop/linger code
// runs under schedule-injected primitives (src/mc/,
// docs/model_checking.md).

#include <chrono>
#include <cstddef>
#include <deque>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace vlsa::service {

/// Production sync policy: the util wrappers over std primitives.
struct DefaultSync {
  using Mutex = util::Mutex;
  using LockGuard = util::LockGuard;
  using UniqueLock = util::UniqueLock;
  using CondVar = util::CondVar;
};

template <typename T, typename Sync = DefaultSync>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push; false when full or closed.
  bool try_push(T&& item) {
    bool wake = false;
    {
      typename Sync::LockGuard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      wake = waiting_consumers_ > 0;
    }
    if (wake) not_empty_.notify_one();
    return true;
  }

  /// Waits for space; false only when the queue is (or becomes) closed.
  bool push_block(T&& item) {
    bool wake = false;
    {
      typename Sync::UniqueLock lock(mutex_);
      ++waiting_producers_;
      while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
      --waiting_producers_;
      if (closed_) return false;
      items_.push_back(std::move(item));
      wake = waiting_consumers_ > 0;
    }
    if (wake) not_empty_.notify_one();
    return true;
  }

  /// Blocking bulk push: moves every element of `items` in, waiting for
  /// space as needed.  One lock round-trip and at most one wakeup per
  /// *chunk* of freed capacity instead of per item — this is what lets
  /// producers keep 64-deep batches ahead of the dispatchers.  Returns
  /// the number of items pushed, which is items.size() unless the queue
  /// is (or becomes) closed mid-way.
  std::size_t push_many_block(std::vector<T>& items) {
    std::size_t pushed = 0;
    while (pushed < items.size()) {
      bool wake = false;
      {
        typename Sync::UniqueLock lock(mutex_);
        ++waiting_producers_;
        while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
        --waiting_producers_;
        if (closed_) break;
        while (pushed < items.size() && items_.size() < capacity_) {
          items_.push_back(std::move(items[pushed]));
          ++pushed;
        }
        wake = waiting_consumers_ > 0;
      }
      // More than one consumer can make progress on a multi-item push.
      if (wake) not_empty_.notify_all();
    }
    return pushed;
  }

  /// Append up to `max` items to `out`.  Blocks until at least one item
  /// is available (or the queue is closed and empty — returns 0); after
  /// the first item, waits up to `linger` for the batch to fill.  A
  /// closed queue drains without lingering.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max,
                        std::chrono::microseconds linger) {
    std::size_t taken = 0;
    bool wake = false;
    {
      typename Sync::UniqueLock lock(mutex_);
      ++waiting_consumers_;
      while (!closed_ && items_.empty()) not_empty_.wait(lock);
      --waiting_consumers_;
      taken += take_locked(out, max);
      if (!closed_ && taken > 0 && taken < max && linger.count() > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() + linger;
        while (taken < max && !closed_) {
          ++waiting_consumers_;
          // Timed wait for the "closed or non-empty" condition; `got`
          // false means the linger deadline passed with nothing new.
          bool got = true;
          while (!closed_ && items_.empty()) {
            if (not_empty_.wait_until(lock, deadline) ==
                std::cv_status::timeout) {
              got = closed_ || !items_.empty();
              break;
            }
          }
          --waiting_consumers_;
          if (!got) break;  // linger expired
          taken += take_locked(out, max - taken);
        }
      }
      wake = taken > 0 && waiting_producers_ > 0;
    }
    if (wake) not_full_.notify_all();
    return taken;
  }

  /// Result of a timed pop.  `done` is the worker-exit signal: it is
  /// true only when the queue was closed AND empty, evaluated together
  /// under the queue lock.  The obvious-looking alternative — return a
  /// count, let the caller test `closed()` separately on timeout — has
  /// a drain race: an item pushed between the timeout return and the
  /// `closed()` check (close() fails *future* pushes, not in-flight
  /// ones that already hold the lock) is seen by neither, and a worker
  /// that exits on `closed()` strands it forever.  With N shard queues
  /// draining concurrently during lame-duck the window is hit in
  /// practice; the mc two-queue drain suite (tests/test_mc_suites.cpp)
  /// pins the atomic evaluation with a replayable schedule.
  struct PopResult {
    std::size_t taken = 0;
    bool done = false;  ///< closed && empty, checked atomically
  };

  /// Timed variant of pop_batch for workers that must wake while their
  /// queue is idle (the work-stealing dispatchers): waits up to
  /// `timeout` for the first item, then lingers like pop_batch.  A
  /// `{0, false}` return means the timeout expired with the queue open
  /// (or open-and-racing) — retry or go steal; `{_, true}` means closed
  /// and fully drained — exit.  Never returns done with items left.
  PopResult pop_batch_for(std::vector<T>& out, std::size_t max,
                          std::chrono::microseconds linger,
                          std::chrono::microseconds timeout) {
    PopResult result;
    bool wake = false;
    {
      typename Sync::UniqueLock lock(mutex_);
      const auto wait_deadline = std::chrono::steady_clock::now() + timeout;
      ++waiting_consumers_;
      while (!closed_ && items_.empty()) {
        if (not_empty_.wait_until(lock, wait_deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      --waiting_consumers_;
      result.taken += take_locked(out, max);
      if (!closed_ && result.taken > 0 && result.taken < max &&
          linger.count() > 0) {
        const auto deadline = std::chrono::steady_clock::now() + linger;
        while (result.taken < max && !closed_) {
          ++waiting_consumers_;
          bool got = true;
          while (!closed_ && items_.empty()) {
            if (not_empty_.wait_until(lock, deadline) ==
                std::cv_status::timeout) {
              got = closed_ || !items_.empty();
              break;
            }
          }
          --waiting_consumers_;
          if (!got) break;  // linger expired
          result.taken += take_locked(out, max - result.taken);
        }
      }
      // The load-bearing line: closed-and-empty is decided under the
      // same lock that serializes pushes, so no item can slip between
      // "nothing taken" and "we are done".
      result.done = closed_ && items_.empty();
      wake = result.taken > 0 && waiting_producers_ > 0;
    }
    if (wake) not_full_.notify_all();
    return result;
  }

  /// Non-blocking variant: grab whatever is there, up to `max`.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t taken = 0;
    bool wake = false;
    {
      typename Sync::LockGuard lock(mutex_);
      taken = take_locked(out, max);
      wake = taken > 0 && waiting_producers_ > 0;
    }
    if (wake) not_full_.notify_all();
    return taken;
  }

  /// Fail all future pushes and wake every waiter; queued items remain
  /// poppable so workers drain before exiting.
  void close() {
    {
      typename Sync::LockGuard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    typename Sync::LockGuard lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    typename Sync::LockGuard lock(mutex_);
    return closed_;
  }

 private:
  std::size_t take_locked(std::vector<T>& out, std::size_t max)
      REQUIRES(mutex_) {
    std::size_t taken = 0;
    while (taken < max && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  mutable typename Sync::Mutex mutex_;
  typename Sync::CondVar not_empty_;
  typename Sync::CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  const std::size_t capacity_;
  bool closed_ GUARDED_BY(mutex_) = false;
  // Waiter counts make notifies precise: a push into a queue nobody is
  // sleeping on costs zero futex traffic.
  std::size_t waiting_consumers_ GUARDED_BY(mutex_) = 0;
  std::size_t waiting_producers_ GUARDED_BY(mutex_) = 0;
};

}  // namespace vlsa::service
