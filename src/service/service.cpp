#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "core/aca.hpp"
#include "trace/drift.hpp"
#include "trace/postmortem.hpp"
#include "trace/trace.hpp"

namespace vlsa::service {

namespace {

ServiceConfig validated(ServiceConfig config) {
  if (config.pipeline.width < 1) {
    throw std::invalid_argument("AdderService: width < 1");
  }
  if (config.pipeline.window < 1) {
    throw std::invalid_argument("AdderService: window < 1");
  }
  if (config.pipeline.recovery_cycles < 0) {
    throw std::invalid_argument("AdderService: negative recovery_cycles");
  }
  if (config.workers < 0) {
    throw std::invalid_argument("AdderService: negative workers");
  }
  if (config.shards < 1) {
    throw std::invalid_argument("AdderService: shards < 1");
  }
  if (config.max_batch < 0) {
    throw std::invalid_argument("AdderService: negative max_batch");
  }
  // Every shard needs at least one dispatcher or its queue never
  // drains; round the total up to a multiple of shards and reflect the
  // effective count back (workers=4, shards=4 -> one per shard, the
  // per-core intent).  Pump mode (workers == 0) is exempt: the caller's
  // pump() rotates over all shards itself.
  if (config.workers > 0 && config.shards > 1) {
    const int per_shard = std::max(1, config.workers / config.shards);
    config.workers = per_shard * config.shards;
  }
  // 0 = auto: pack to the SIMD lane width this process dispatches on.
  const int lanes = sim::active_lanes();
  config.max_batch =
      config.max_batch == 0 ? lanes : std::clamp(config.max_batch, 1, lanes);
  return config;
}

/// Fibonacci + murmur3-final mix over the operand low limbs: cheap,
/// deterministic, and uniform enough that hash routing spreads any
/// non-adversarial operand distribution across shards (the
/// hash-distribution test in tests/test_service.cpp checks no shard
/// starves under uniform operands).
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Best-effort: pin `thread` to core (shard index mod hardware
/// concurrency).  A refused affinity call (restricted cgroup mask) is
/// ignored — pinning is a performance hint, never a correctness
/// requirement.
void pin_to_core(std::thread& thread, std::size_t shard_index) {
#ifdef __linux__
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(shard_index) % cores, &set);
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof set, &set);
#else
  (void)thread;
  (void)shard_index;
#endif
}

/// How long a steal-enabled worker parks on its own empty queue before
/// checking the neighbor's backlog.  Short enough that a skewed load is
/// picked up promptly; long enough that balanced shards don't burn
/// cycles polling each other.
constexpr std::chrono::microseconds kStealPoll{200};

}  // namespace

AdderService::AdderService(const ServiceConfig& config,
                           telemetry::Registry* registry)
    : config_(validated(config)),
      owned_registry_(registry == nullptr
                          ? std::make_unique<telemetry::Registry>()
                          : nullptr),
      registry_(registry == nullptr ? owned_registry_.get() : registry),
      submitted_(registry_->counter("service.submitted")),
      rejected_(registry_->counter("service.rejected")),
      completed_(registry_->counter("service.completed")),
      fast_path_(registry_->counter("service.fast_path")),
      recovered_(registry_->counter("service.recovered")),
      wrong_(registry_->counter("service.speculative_wrong")),
      batches_(registry_->counter("service.batches")),
      queue_depth_(registry_->gauge("service.queue_depth")),
      latency_cycles_(registry_->histogram("service.latency_cycles")),
      batch_occupancy_(registry_->histogram("service.batch_occupancy")),
      latency_ns_(registry_->histogram("service.latency_ns")) {
  const auto n_shards = static_cast<std::size_t>(config_.shards);
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        config_.queue_capacity,
        config_.queue_capacity + sim::kMaxBatchLanes));
  }
  // Per-shard labeled metrics only above one shard: single-shard
  // snapshots must stay byte-identical to the pre-sharding service
  // (tests/test_service.cpp fixed-seed determinism).  The label block
  // is embedded in the registry name; the Prometheus writer renders it
  // as a real label set (telemetry/prometheus.cpp).
  if (n_shards > 1) {
    for (std::size_t i = 0; i < n_shards; ++i) {
      Shard& shard = *shards_[i];
      const std::string suffix = "{shard=" + std::to_string(i) + "}";
      shard.submitted = &registry_->counter("service.submitted" + suffix);
      shard.completed = &registry_->counter("service.completed" + suffix);
      shard.rejected = &registry_->counter("service.rejected" + suffix);
      shard.recovered = &registry_->counter("service.recovered" + suffix);
      shard.batches = &registry_->counter("service.batches" + suffix);
      shard.stolen = &registry_->counter("service.stolen" + suffix);
      shard.queue_depth = &registry_->gauge("service.queue_depth" + suffix);
    }
  }
  if (config_.workers > 0) {
    const int per_shard = config_.workers / config_.shards;
    for (std::size_t i = 0; i < n_shards; ++i) {
      Shard& shard = *shards_[i];
      shard.workers.reserve(static_cast<std::size_t>(per_shard));
      for (int j = 0; j < per_shard; ++j) {
        shard.workers.emplace_back([this, i] { worker_loop(i); });
      }
      if (config_.pin_threads) {
        for (auto& worker : shard.workers) pin_to_core(worker, i);
      }
      shard.recovery_worker =
          std::thread([this, &shard] { recovery_loop(shard); });
    }
  }
}

AdderService::~AdderService() { close(); }

long long AdderService::now_cycles() const {
  long long makespan = 0;
  for (const auto& shard : shards_) {
    makespan =
        std::max(makespan, shard->vclock.load(std::memory_order_relaxed));
  }
  return makespan;
}

long long AdderService::shard_cycles(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard))
      ->vclock.load(std::memory_order_relaxed);
}

std::size_t AdderService::shard_queue_depth(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard))->queue.size();
}

std::size_t AdderService::route_of(const BitVec& a, const BitVec& b) const {
  const std::size_t n_shards = shards_.size();
  if (n_shards == 1) return 0;
  const std::uint64_t h =
      mix64(a.limbs()[0] * 0x9e3779b97f4a7c15ULL + (b.limbs()[0] ^
            0x6a09e667f3bcc909ULL));
  return static_cast<std::size_t>(h % n_shards);
}

std::size_t AdderService::pick_shard(const BitVec& a, const BitVec& b) {
  const std::size_t n_shards = shards_.size();
  if (n_shards == 1) return 0;
  if (config_.route == RoutePolicy::RoundRobin) {
    return static_cast<std::size_t>(
        rr_next_.fetch_add(1, std::memory_order_relaxed) % n_shards);
  }
  return route_of(a, b);
}

std::optional<std::future<Completion>> AdderService::submit(BitVec a,
                                                            BitVec b) {
  if (closed_.load(std::memory_order_acquire)) {
    throw std::runtime_error("AdderService: submit after close");
  }
  if (a.width() != config_.pipeline.width ||
      b.width() != config_.pipeline.width) {
    throw std::invalid_argument("AdderService: operand width mismatch");
  }
  const std::size_t shard_index = pick_shard(a, b);
  Shard& shard = *shards_[shard_index];
  Request request;
  request.a = std::move(a);
  request.b = std::move(b);
  request.arrival_cycle = shard.vclock.load(std::memory_order_relaxed);
  if (config_.record_wall_time) {
    request.arrival_time = std::chrono::steady_clock::now();
  }
  auto future = request.promise.emplace().get_future();

  inflight_.fetch_add(1, std::memory_order_acq_rel);
  // Blocking on a full queue in pump mode would deadlock (nothing
  // drains until the caller pumps), so pump mode always rejects.
  const bool block = config_.overflow == OverflowPolicy::Block &&
                     config_.workers > 0;
  const bool accepted = block ? shard.queue.push_block(std::move(request))
                              : shard.queue.try_push(std::move(request));
  if (!accepted) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    if (shard.queue.closed()) {
      throw std::runtime_error("AdderService: submit after close");
    }
    rejected_.increment();
    if (shard.rejected != nullptr) shard.rejected->increment();
    return std::nullopt;
  }
  submitted_.increment();
  if (shard.submitted != nullptr) shard.submitted->increment();
  if (trace::enabled() && trace::sample()) {
    trace::EventArgs args;
    args.k = config_.pipeline.window;
    if (config_.shards > 1) args.shard = static_cast<int>(shard_index);
    trace::emit_instant(trace::EventName::kSubmit, args);
  }
  return future;
}

bool AdderService::try_submit_callback(BitVec&& a, BitVec&& b,
                                       CompletionCallback callback) {
  if (closed_.load(std::memory_order_acquire)) {
    throw std::runtime_error("AdderService: submit after close");
  }
  if (a.width() != config_.pipeline.width ||
      b.width() != config_.pipeline.width) {
    throw std::invalid_argument("AdderService: operand width mismatch");
  }
  // Hash routing keeps net-server backpressure per-shard: a retry of
  // the same parked frame recomputes the same shard, so a full shard
  // stalls exactly the connections feeding it and no others.
  const std::size_t shard_index = pick_shard(a, b);
  Shard& shard = *shards_[shard_index];
  Request request;
  request.a = std::move(a);
  request.b = std::move(b);
  request.callback = std::move(callback);
  request.arrival_cycle = shard.vclock.load(std::memory_order_relaxed);
  if (config_.record_wall_time) {
    request.arrival_time = std::chrono::steady_clock::now();
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  // Always try-semantics: this path exists for event loops, which must
  // never park on a condition variable.  The caller translates a full
  // queue into its own backpressure (socket read stall or REJECTED
  // frame); only the Reject policy counts it as a service rejection.
  if (!shard.queue.try_push(std::move(request))) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    // Not consumed on failure: hand the operands back so a Block-policy
    // caller can park them for retry without having paid a defensive
    // copy on every successful submit (the overwhelmingly common case).
    a = std::move(request.a);
    b = std::move(request.b);
    if (shard.queue.closed()) {
      throw std::runtime_error("AdderService: submit after close");
    }
    if (config_.overflow == OverflowPolicy::Reject) {
      rejected_.increment();
      if (shard.rejected != nullptr) shard.rejected->increment();
    }
    return false;
  }
  submitted_.increment();
  if (shard.submitted != nullptr) shard.submitted->increment();
  if (trace::enabled() && trace::sample()) {
    trace::EventArgs args;
    args.k = config_.pipeline.window;
    if (config_.shards > 1) args.shard = static_cast<int>(shard_index);
    trace::emit_instant(trace::EventName::kSubmit, args);
  }
  return true;
}

std::vector<std::optional<std::future<Completion>>>
AdderService::submit_many(std::vector<std::pair<BitVec, BitVec>> ops) {
  if (closed_.load(std::memory_order_acquire)) {
    throw std::runtime_error("AdderService: submit after close");
  }
  const std::size_t n_shards = shards_.size();
  // Routing granularity: RoundRobin takes ONE ticket for the whole
  // chunk (the chunk is submit_many's unit of work — rotating chunks
  // keeps the one-bulk-transaction batching win), Hash buckets request
  // by request and pays one bulk push per non-empty bucket.
  std::size_t chunk_shard = 0;
  if (n_shards > 1 && config_.route == RoutePolicy::RoundRobin) {
    chunk_shard = static_cast<std::size_t>(
        rr_next_.fetch_add(1, std::memory_order_relaxed) % n_shards);
  }
  std::vector<std::vector<Request>> buckets(n_shards);
  std::vector<std::vector<std::size_t>> origin(n_shards);
  std::vector<std::optional<std::future<Completion>>> futures;
  futures.reserve(ops.size());
  // Arrival stamps are read once per shard, not per request: requests
  // of one chunk landing on one shard share an arrival cycle, which is
  // what lets dispatch aggregate their latency records into runs.
  std::vector<long long> arrival(n_shards, -1);
  const auto now = config_.record_wall_time
                       ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{};
  for (std::size_t i = 0; i < ops.size(); ++i) {
    auto& [a, b] = ops[i];
    if (a.width() != config_.pipeline.width ||
        b.width() != config_.pipeline.width) {
      throw std::invalid_argument("AdderService: operand width mismatch");
    }
    const std::size_t shard_index =
        (n_shards > 1 && config_.route == RoutePolicy::Hash)
            ? route_of(a, b)
            : chunk_shard;
    if (arrival[shard_index] < 0) {
      arrival[shard_index] =
          shards_[shard_index]->vclock.load(std::memory_order_relaxed);
    }
    Request request;
    request.a = std::move(a);
    request.b = std::move(b);
    request.arrival_cycle = arrival[shard_index];
    request.arrival_time = now;
    futures.push_back(request.promise.emplace().get_future());
    origin[shard_index].push_back(i);
    buckets[shard_index].push_back(std::move(request));
  }
  inflight_.fetch_add(static_cast<long long>(ops.size()),
                      std::memory_order_acq_rel);
  const bool block = config_.overflow == OverflowPolicy::Block &&
                     config_.workers > 0;
  std::size_t accepted = 0;
  bool any_closed = false;
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::size_t taken = 0;
    if (block) {
      taken = shard.queue.push_many_block(buckets[s]);
    } else {
      // Reject policy (and pump mode, where blocking would deadlock):
      // leading requests are accepted until the queue fills.
      for (auto& request : buckets[s]) {
        if (!shard.queue.try_push(std::move(request))) break;
        ++taken;
      }
    }
    accepted += taken;
    if (shard.submitted != nullptr) {
      shard.submitted->increment(static_cast<long long>(taken));
    }
    const std::size_t dropped_here = buckets[s].size() - taken;
    if (dropped_here > 0) {
      any_closed = any_closed || shard.queue.closed();
      if (shard.rejected != nullptr) {
        shard.rejected->increment(static_cast<long long>(dropped_here));
      }
      for (std::size_t j = taken; j < buckets[s].size(); ++j) {
        futures[origin[s][j]].reset();
      }
    }
  }
  const auto dropped = static_cast<long long>(ops.size() - accepted);
  if (dropped > 0) {
    inflight_.fetch_sub(dropped, std::memory_order_acq_rel);
    if (any_closed) {
      throw std::runtime_error("AdderService: submit after close");
    }
    rejected_.increment(dropped);
  }
  submitted_.increment(static_cast<long long>(accepted));
  // One submit instant per chunk (not per request): submit_many is the
  // batched producer path, and the chunk is its unit of work.
  if (accepted > 0 && trace::enabled() && trace::sample()) {
    trace::EventArgs args;
    args.k = config_.pipeline.window;
    trace::emit_instant(trace::EventName::kSubmit, args);
  }
  return futures;
}

void AdderService::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  const auto max_batch = static_cast<std::size_t>(config_.max_batch);
  std::vector<Request> batch;
  batch.reserve(max_batch);
  sim::WideResult scratch;
  const bool steal =
      config_.steal == StealPolicy::Neighbor && shards_.size() > 1;
  if (!steal) {
    while (shard.queue.pop_batch(batch, max_batch, config_.max_linger) > 0) {
      // Depth is sampled per batch, not per submission: the gauge is a
      // load indicator and must stay off the producers' hot path.
      const auto depth = static_cast<long long>(shard.queue.size());
      queue_depth_.set(depth);
      if (shard.queue_depth != nullptr) shard.queue_depth->set(depth);
      dispatch(batch, scratch, shard, shard_index, false,
               &shard.recovery_queue);
      batch.clear();
    }
    return;
  }
  // Steal-enabled loop: park on the own queue for at most kStealPoll,
  // then opportunistically drain the right-hand neighbor.  Exit only on
  // pop_batch_for's atomic closed-and-empty signal — checking closed()
  // separately after a timeout is exactly the lost-item drain race the
  // mc two-queue suite pins down (see BoundedQueue::PopResult).
  Shard& victim = *shards_[(shard_index + 1) % shards_.size()];
  for (;;) {
    const auto result = shard.queue.pop_batch_for(
        batch, max_batch, config_.max_linger, kStealPoll);
    if (result.taken > 0) {
      const auto depth = static_cast<long long>(shard.queue.size());
      queue_depth_.set(depth);
      if (shard.queue_depth != nullptr) shard.queue_depth->set(depth);
      dispatch(batch, scratch, shard, shard_index, false,
               &shard.recovery_queue);
      batch.clear();
      continue;
    }
    if (result.done) return;
    // Own queue idle: alternate own-queue checks with neighbor steals
    // so a refilling home queue preempts further stealing.
    for (;;) {
      if (shard.queue.try_pop_batch(batch, max_batch) > 0) {
        dispatch(batch, scratch, shard, shard_index, false,
                 &shard.recovery_queue);
        batch.clear();
        break;
      }
      if (victim.queue.try_pop_batch(batch, max_batch) > 0) {
        // Stolen work runs on OUR engine and recovery lane, clocked by
        // OUR vclock — provenance lands in service.stolen{shard=us},
        // Completion::shard, and the trace shard id.
        dispatch(batch, scratch, shard, shard_index, true,
                 &shard.recovery_queue);
        batch.clear();
        continue;
      }
      break;  // both queues empty — back to the timed wait
    }
  }
}

void AdderService::recovery_loop(Shard& shard) {
  std::vector<RecoveryItem> items;
  while (shard.recovery_queue.pop_batch(items, sim::kMaxBatchLanes,
                                        std::chrono::microseconds{0}) > 0) {
    for (auto& item : items) recover_one(std::move(item));
    items.clear();
  }
}

std::size_t AdderService::dispatch(std::vector<Request>& batch,
                                   sim::WideResult& scratch, Shard& shard,
                                   std::size_t shard_index, bool stolen,
                                   BoundedQueue<RecoveryItem>* recovery) {
  const int width = config_.pipeline.width;
  const int window = config_.pipeline.window;
  // Evaluate at the smallest lane count that fits this batch: a
  // partial pop (or the batch-1 baseline) keeps the 64-lane cost, a
  // full SIMD-width pop runs one AVX2/AVX-512 evaluation.
  const int lanes = sim::lanes_for_batch(static_cast<int>(batch.size()));
  // One modeled cycle per dispatched batch on THIS shard's clock —
  // each shard models an independent VLSA functional unit, so N shards
  // advance N clocks in parallel and the makespan (now_cycles(), the
  // max) is what the scaling bench divides by.  `round` is this batch's
  // cycle; a request submitted and dispatched in the same round
  // completes with the minimum latency of 1 cycle.
  const long long round = shard.vclock.fetch_add(1, std::memory_order_relaxed);
  const int trace_shard =
      config_.shards > 1 ? static_cast<int>(shard_index) : -1;

  // Tracing gates, resolved once per batch: `tracing` is the single
  // relaxed load that keeps the idle cost at one branch; `sampled`
  // gates the detail events for this whole batch; recovery-path events
  // additionally honor the session's always-on-recovery knob.
  const bool tracing = trace::enabled();
  const bool sampled = tracing && trace::sample();
  const bool trace_recovery = sampled || (tracing && trace::sample_recovery());
  const auto batch_id = static_cast<std::uint64_t>(round);

  // Operands are *moved* into the transpose input — the fast path never
  // needs them again, and the rare flagged lane takes its pair back
  // below before heading to the recovery lane.
  const std::uint64_t t_pack = sampled ? trace::now_ns() : 0;
  std::vector<std::pair<BitVec, BitVec>> pairs;
  pairs.reserve(batch.size());
  for (auto& request : batch) {
    pairs.emplace_back(std::move(request.a), std::move(request.b));
  }
  const sim::WideBatch ops = sim::wide_transpose_batch(pairs, width, lanes);
  if (sampled) {
    trace::EventArgs args;
    args.batch = batch_id;
    args.k = window;
    args.lane = static_cast<int>(batch.size());  // occupancy, not a lane
    args.shard = trace_shard;
    trace::emit_complete(trace::EventName::kBatchPack, t_pack, args);
  }
  const std::uint64_t t_eval = sampled ? trace::now_ns() : 0;
  sim::wide_aca_add_into(ops, window, nullptr, scratch);
  if (sampled) {
    trace::EventArgs args;
    args.batch = batch_id;
    args.k = window;
    args.shard = trace_shard;
    trace::emit_complete(trace::EventName::kEngineEval, t_eval, args);
  }

  if (config_.drift != nullptr) {
    config_.drift->record_batch(
        batch.size(), static_cast<std::uint64_t>(scratch.flagged_count(
                          static_cast<int>(batch.size()))));
  }

  batches_.increment();
  if (shard.batches != nullptr) shard.batches->increment();
  if (stolen && shard.stolen != nullptr) {
    shard.stolen->increment(static_cast<long long>(batch.size()));
  }
  batch_occupancy_.record(batch.size());

  // One word-level un-transpose for the whole batch instead of a
  // bit-at-a-time lane_value() per request; tiny batches (the batch-1
  // baseline) extract their few lanes directly instead of paying for
  // all 64.
  std::vector<BitVec> sums;
  if (batch.size() > 8) {
    sums = sim::wide_lane_values(scratch.sum_spec, width, lanes);
  }
  // Fast-path telemetry is aggregated over the batch: requests that
  // arrived in the same cycle (every submit_many chunk) share one
  // latency, so runs collapse into one record_n and the counters into
  // one increment each — otherwise 8 workers serialize on these cache
  // lines and telemetry becomes the throughput ceiling.
  long long n_fast = 0;
  std::uint64_t run_value = 0, run_count = 0;
  for (std::size_t lane = 0; lane < batch.size(); ++lane) {
    Request& request = batch[lane];
    const bool flagged = scratch.flagged_lane(static_cast<int>(lane));
    const bool wrong = scratch.wrong_lane(static_cast<int>(lane));
    if (!flagged) {
      // Soundness: ER clear implies the speculative sum is exact.
      Completion completion;
      completion.sum =
          sums.empty()
              ? sim::wide_lane_value(scratch.sum_spec, width, lanes / 64,
                                     static_cast<int>(lane))
              : std::move(sums[lane]);
      completion.shard = static_cast<int>(shard_index);
      // Clamped at the 1-cycle floor: a STOLEN request was stamped
      // against its home shard's clock but completes on the thief's,
      // and the two clocks are unordered.
      completion.latency_cycles =
          std::max<long long>(1, round + 1 - request.arrival_cycle);
      const auto cycles =
          static_cast<std::uint64_t>(completion.latency_cycles);
      if (run_count > 0 && cycles != run_value) {
        latency_cycles_.record_n(run_value, run_count);
        run_count = 0;
      }
      run_value = cycles;
      ++run_count;
      if (config_.record_wall_time) {
        const auto elapsed =
            std::chrono::steady_clock::now() - request.arrival_time;
        latency_ns_.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
      }
      if (sampled) {
        trace::EventArgs args;
        args.batch = batch_id;
        args.lane = static_cast<int>(lane);
        args.k = window;
        args.er = 0;
        args.shard = trace_shard;
        // Queue-wait needs the arrival timestamp, which only exists
        // when wall-clock recording is on.
        if (config_.record_wall_time) {
          trace::emit_complete(trace::EventName::kQueueWait,
                               trace::to_session_ns(request.arrival_time),
                               args);
        }
        trace::emit_instant(trace::EventName::kComplete, args);
      }
      deliver(request, std::move(completion));
      ++n_fast;
      continue;
    }
    RecoveryItem item;
    item.speculative_wrong = wrong;
    item.batch = batch_id;
    item.lane = static_cast<int>(lane);
    item.shard = static_cast<int>(shard_index);
    if (trace_recovery) {
      trace::EventArgs args;
      args.batch = batch_id;
      args.lane = static_cast<int>(lane);
      args.k = window;
      args.er = 1;
      args.shard = trace_shard;
      if (sampled && config_.record_wall_time) {
        trace::emit_complete(trace::EventName::kQueueWait,
                             trace::to_session_ns(request.arrival_time),
                             args);
      }
      trace::emit_instant(trace::EventName::kErCheck, args);
    }
    {
      // The recovery lane is a serial resource PER SHARD: it picks the
      // request up no earlier than the cycle after detection and holds
      // it for recovery_cycles — queued flags congest, fattening the
      // tail of the shard they flagged on.
      util::LockGuard lock(shard.recovery_clock_mutex);
      shard.recovery_free_at =
          std::max(shard.recovery_free_at, round + 1) +
          config_.pipeline.recovery_cycles;
      item.latency_cycles = std::max<long long>(
          1, shard.recovery_free_at - request.arrival_cycle);
    }
    request.a = std::move(pairs[lane].first);
    request.b = std::move(pairs[lane].second);
    item.request = std::move(request);
    if (recovery != nullptr) {
      recovery->push_block(std::move(item));
    } else {
      recover_one(std::move(item));
    }
  }
  if (run_count > 0) latency_cycles_.record_n(run_value, run_count);
  if (n_fast > 0) {
    fast_path_.increment(n_fast);
    completed_.increment(n_fast);
    if (shard.completed != nullptr) shard.completed->increment(n_fast);
    inflight_.fetch_sub(n_fast, std::memory_order_acq_rel);
  }
  return batch.size();
}

void AdderService::recover_one(RecoveryItem item) {
  const bool trace_recovery = trace::enabled() && trace::sample_recovery();
  const std::uint64_t t_start = trace_recovery ? trace::now_ns() : 0;
  // The recovery lane recomputes the sum exactly — the software twin of
  // the paper's recovery adder stage.
  auto exact = item.request.a.add_with_carry(item.request.b);
  if (config_.postmortem != nullptr) {
    config_.postmortem->record(item.request.a, item.request.b,
                               config_.pipeline.window,
                               item.speculative_wrong, item.batch, item.lane,
                               t_start);
  }
  if (trace_recovery) {
    trace::EventArgs args;
    args.batch = item.batch;
    args.lane = item.lane;
    args.k = config_.pipeline.window;
    args.er = 1;
    args.shard = config_.shards > 1 ? item.shard : -1;
    args.chain =
        core::longest_propagate_chain(item.request.a, item.request.b);
    args.a_lo = item.request.a.limbs()[0];
    args.b_lo = item.request.b.limbs()[0];
    args.has_operands = true;
    trace::emit_complete(trace::EventName::kRecovery, t_start, args);
    trace::emit_instant(trace::EventName::kComplete, args);
  }
  recovered_.increment();
  Shard& shard = *shards_[static_cast<std::size_t>(item.shard)];
  if (shard.recovered != nullptr) shard.recovered->increment();
  if (item.speculative_wrong) wrong_.increment();
  Completion completion;
  completion.sum = std::move(exact.sum);
  completion.flagged = true;
  completion.speculative_wrong = item.speculative_wrong;
  completion.latency_cycles = item.latency_cycles;
  completion.shard = item.shard;
  complete(item.request, std::move(completion));
}

void AdderService::complete(Request& request, Completion completion) {
  latency_cycles_.record(
      static_cast<std::uint64_t>(completion.latency_cycles));
  if (config_.record_wall_time) {
    const auto elapsed =
        std::chrono::steady_clock::now() - request.arrival_time;
    latency_ns_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  if (!completion.flagged) fast_path_.increment();
  completed_.increment();
  Shard& shard = *shards_[static_cast<std::size_t>(completion.shard)];
  if (shard.completed != nullptr) shard.completed->increment();
  deliver(request, std::move(completion));
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void AdderService::deliver(Request& request, Completion&& completion) {
  if (request.callback) {
    request.callback(std::move(completion));
  } else {
    request.promise->set_value(std::move(completion));
  }
}

std::size_t AdderService::pump() {
  if (config_.workers != 0) {
    throw std::logic_error("AdderService::pump: only valid with workers=0");
  }
  std::vector<Request> batch;
  sim::WideResult scratch;
  const std::size_t n_shards = shards_.size();
  // Rotate so no shard starves when several hold work; pump mode is
  // single-threaded by contract, so plain member state suffices.
  for (std::size_t i = 0; i < n_shards; ++i) {
    const std::size_t idx = (pump_next_ + i) % n_shards;
    Shard& shard = *shards_[idx];
    if (shard.queue.try_pop_batch(
            batch, static_cast<std::size_t>(config_.max_batch)) == 0) {
      continue;
    }
    pump_next_ = (idx + 1) % n_shards;
    const auto depth = static_cast<long long>(shard.queue.size());
    queue_depth_.set(depth);
    if (shard.queue_depth != nullptr) shard.queue_depth->set(depth);
    return dispatch(batch, scratch, shard, idx, false, nullptr);
  }
  return 0;
}

void AdderService::flush() {
  while (inflight_.load(std::memory_order_acquire) > 0) {
    if (config_.workers == 0) {
      if (pump() == 0) break;  // nothing queued; nothing can be in flight
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void AdderService::close() {
  util::LockGuard lock(close_mutex_);
  if (close_finished_) return;
  closed_.store(true, std::memory_order_release);
  // Shutdown ordering across N shards (the lame-duck drain):
  //   1. close EVERY submission queue — no shard accepts new work;
  //   2. join EVERY dispatcher — each drains its own queue to the
  //      atomic closed-and-empty signal (a thief may also drain its
  //      neighbor's leftovers, which only speeds this up);
  //   3. only then close the recovery queues and join their workers —
  //      dispatch() ignores push_block's return, so a recovery queue
  //      must outlive every thread that might still push into it.
  // Closing recovery queues shard-by-shard interleaved with step 2
  // would reintroduce the drain race the mc suite pins.
  for (auto& shard : shards_) shard->queue.close();
  if (config_.workers == 0) {
    while (pump() > 0) {
    }
  } else {
    for (auto& shard : shards_) {
      for (auto& worker : shard->workers) worker.join();
    }
    for (auto& shard : shards_) shard->recovery_queue.close();
    for (auto& shard : shards_) {
      if (shard->recovery_worker.joinable()) shard->recovery_worker.join();
    }
  }
  close_finished_ = true;
}

}  // namespace vlsa::service
