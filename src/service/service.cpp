#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "core/aca.hpp"
#include "trace/drift.hpp"
#include "trace/postmortem.hpp"
#include "trace/trace.hpp"

namespace vlsa::service {

namespace {

ServiceConfig validated(ServiceConfig config) {
  if (config.pipeline.width < 1) {
    throw std::invalid_argument("AdderService: width < 1");
  }
  if (config.pipeline.window < 1) {
    throw std::invalid_argument("AdderService: window < 1");
  }
  if (config.pipeline.recovery_cycles < 0) {
    throw std::invalid_argument("AdderService: negative recovery_cycles");
  }
  if (config.workers < 0) {
    throw std::invalid_argument("AdderService: negative workers");
  }
  if (config.max_batch < 0) {
    throw std::invalid_argument("AdderService: negative max_batch");
  }
  // 0 = auto: pack to the SIMD lane width this process dispatches on.
  const int lanes = sim::active_lanes();
  config.max_batch =
      config.max_batch == 0 ? lanes : std::clamp(config.max_batch, 1, lanes);
  return config;
}

}  // namespace

AdderService::AdderService(const ServiceConfig& config,
                           telemetry::Registry* registry)
    : config_(validated(config)),
      owned_registry_(registry == nullptr
                          ? std::make_unique<telemetry::Registry>()
                          : nullptr),
      registry_(registry == nullptr ? owned_registry_.get() : registry),
      queue_(config_.queue_capacity),
      recovery_queue_(config_.queue_capacity + sim::kMaxBatchLanes),
      submitted_(registry_->counter("service.submitted")),
      rejected_(registry_->counter("service.rejected")),
      completed_(registry_->counter("service.completed")),
      fast_path_(registry_->counter("service.fast_path")),
      recovered_(registry_->counter("service.recovered")),
      wrong_(registry_->counter("service.speculative_wrong")),
      batches_(registry_->counter("service.batches")),
      queue_depth_(registry_->gauge("service.queue_depth")),
      latency_cycles_(registry_->histogram("service.latency_cycles")),
      batch_occupancy_(registry_->histogram("service.batch_occupancy")),
      latency_ns_(registry_->histogram("service.latency_ns")) {
  if (config_.workers > 0) {
    workers_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    recovery_worker_ = std::thread([this] { recovery_loop(); });
  }
}

AdderService::~AdderService() { close(); }

std::optional<std::future<Completion>> AdderService::submit(BitVec a,
                                                            BitVec b) {
  if (closed_.load(std::memory_order_acquire)) {
    throw std::runtime_error("AdderService: submit after close");
  }
  if (a.width() != config_.pipeline.width ||
      b.width() != config_.pipeline.width) {
    throw std::invalid_argument("AdderService: operand width mismatch");
  }
  Request request;
  request.a = std::move(a);
  request.b = std::move(b);
  request.arrival_cycle = vclock_.load(std::memory_order_relaxed);
  if (config_.record_wall_time) {
    request.arrival_time = std::chrono::steady_clock::now();
  }
  auto future = request.promise.emplace().get_future();

  inflight_.fetch_add(1, std::memory_order_acq_rel);
  // Blocking on a full queue in pump mode would deadlock (nothing
  // drains until the caller pumps), so pump mode always rejects.
  const bool block = config_.overflow == OverflowPolicy::Block &&
                     config_.workers > 0;
  const bool accepted = block ? queue_.push_block(std::move(request))
                              : queue_.try_push(std::move(request));
  if (!accepted) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    if (queue_.closed()) {
      throw std::runtime_error("AdderService: submit after close");
    }
    rejected_.increment();
    return std::nullopt;
  }
  submitted_.increment();
  if (trace::enabled() && trace::sample()) {
    trace::EventArgs args;
    args.k = config_.pipeline.window;
    trace::emit_instant(trace::EventName::kSubmit, args);
  }
  return future;
}

bool AdderService::try_submit_callback(BitVec&& a, BitVec&& b,
                                       CompletionCallback callback) {
  if (closed_.load(std::memory_order_acquire)) {
    throw std::runtime_error("AdderService: submit after close");
  }
  if (a.width() != config_.pipeline.width ||
      b.width() != config_.pipeline.width) {
    throw std::invalid_argument("AdderService: operand width mismatch");
  }
  Request request;
  request.a = std::move(a);
  request.b = std::move(b);
  request.callback = std::move(callback);
  request.arrival_cycle = vclock_.load(std::memory_order_relaxed);
  if (config_.record_wall_time) {
    request.arrival_time = std::chrono::steady_clock::now();
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  // Always try-semantics: this path exists for event loops, which must
  // never park on a condition variable.  The caller translates a full
  // queue into its own backpressure (socket read stall or REJECTED
  // frame); only the Reject policy counts it as a service rejection.
  if (!queue_.try_push(std::move(request))) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    // Not consumed on failure: hand the operands back so a Block-policy
    // caller can park them for retry without having paid a defensive
    // copy on every successful submit (the overwhelmingly common case).
    a = std::move(request.a);
    b = std::move(request.b);
    if (queue_.closed()) {
      throw std::runtime_error("AdderService: submit after close");
    }
    if (config_.overflow == OverflowPolicy::Reject) rejected_.increment();
    return false;
  }
  submitted_.increment();
  if (trace::enabled() && trace::sample()) {
    trace::EventArgs args;
    args.k = config_.pipeline.window;
    trace::emit_instant(trace::EventName::kSubmit, args);
  }
  return true;
}

std::vector<std::optional<std::future<Completion>>>
AdderService::submit_many(std::vector<std::pair<BitVec, BitVec>> ops) {
  if (closed_.load(std::memory_order_acquire)) {
    throw std::runtime_error("AdderService: submit after close");
  }
  std::vector<Request> requests;
  requests.reserve(ops.size());
  std::vector<std::optional<std::future<Completion>>> futures;
  futures.reserve(ops.size());
  const long long arrival = vclock_.load(std::memory_order_relaxed);
  const auto now = config_.record_wall_time
                       ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{};
  for (auto& [a, b] : ops) {
    if (a.width() != config_.pipeline.width ||
        b.width() != config_.pipeline.width) {
      throw std::invalid_argument("AdderService: operand width mismatch");
    }
    Request request;
    request.a = std::move(a);
    request.b = std::move(b);
    request.arrival_cycle = arrival;
    request.arrival_time = now;
    futures.push_back(request.promise.emplace().get_future());
    requests.push_back(std::move(request));
  }
  inflight_.fetch_add(static_cast<long long>(requests.size()),
                      std::memory_order_acq_rel);
  std::size_t accepted = 0;
  if (config_.overflow == OverflowPolicy::Block && config_.workers > 0) {
    accepted = queue_.push_many_block(requests);
  } else {
    // Reject policy (and pump mode, where blocking would deadlock):
    // leading requests are accepted until the queue fills.
    for (auto& request : requests) {
      if (!queue_.try_push(std::move(request))) break;
      ++accepted;
    }
  }
  const auto dropped = static_cast<long long>(requests.size() - accepted);
  if (dropped > 0) {
    inflight_.fetch_sub(dropped, std::memory_order_acq_rel);
    if (queue_.closed()) {
      throw std::runtime_error("AdderService: submit after close");
    }
    rejected_.increment(dropped);
    for (std::size_t i = accepted; i < futures.size(); ++i) {
      futures[i].reset();
    }
  }
  submitted_.increment(static_cast<long long>(accepted));
  // One submit instant per chunk (not per request): submit_many is the
  // batched producer path, and the chunk is its unit of work.
  if (accepted > 0 && trace::enabled() && trace::sample()) {
    trace::EventArgs args;
    args.k = config_.pipeline.window;
    trace::emit_instant(trace::EventName::kSubmit, args);
  }
  return futures;
}

void AdderService::worker_loop() {
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(config_.max_batch));
  sim::WideResult scratch;
  while (queue_.pop_batch(batch, static_cast<std::size_t>(config_.max_batch),
                          config_.max_linger) > 0) {
    // Depth is sampled per batch, not per submission: the gauge is a
    // load indicator and must stay off the producers' hot path.
    queue_depth_.set(static_cast<long long>(queue_.size()));
    dispatch(batch, scratch, &recovery_queue_);
    batch.clear();
  }
}

void AdderService::recovery_loop() {
  std::vector<RecoveryItem> items;
  while (recovery_queue_.pop_batch(items, sim::kMaxBatchLanes,
                                   std::chrono::microseconds{0}) > 0) {
    for (auto& item : items) recover_one(std::move(item));
    items.clear();
  }
}

std::size_t AdderService::dispatch(std::vector<Request>& batch,
                                   sim::WideResult& scratch,
                                   BoundedQueue<RecoveryItem>* recovery) {
  const int width = config_.pipeline.width;
  const int window = config_.pipeline.window;
  // Evaluate at the smallest lane count that fits this batch: a
  // partial pop (or the batch-1 baseline) keeps the 64-lane cost, a
  // full SIMD-width pop runs one AVX2/AVX-512 evaluation.
  const int lanes = sim::lanes_for_batch(static_cast<int>(batch.size()));
  // One modeled VLSA cycle per dispatched batch; `round` is this
  // batch's cycle, so a request submitted and dispatched in the same
  // round completes with the minimum latency of 1 cycle.
  const long long round = vclock_.fetch_add(1, std::memory_order_relaxed);

  // Tracing gates, resolved once per batch: `tracing` is the single
  // relaxed load that keeps the idle cost at one branch; `sampled`
  // gates the detail events for this whole batch; recovery-path events
  // additionally honor the session's always-on-recovery knob.
  const bool tracing = trace::enabled();
  const bool sampled = tracing && trace::sample();
  const bool trace_recovery = sampled || (tracing && trace::sample_recovery());
  const auto batch_id = static_cast<std::uint64_t>(round);

  // Operands are *moved* into the transpose input — the fast path never
  // needs them again, and the rare flagged lane takes its pair back
  // below before heading to the recovery lane.
  const std::uint64_t t_pack = sampled ? trace::now_ns() : 0;
  std::vector<std::pair<BitVec, BitVec>> pairs;
  pairs.reserve(batch.size());
  for (auto& request : batch) {
    pairs.emplace_back(std::move(request.a), std::move(request.b));
  }
  const sim::WideBatch ops = sim::wide_transpose_batch(pairs, width, lanes);
  if (sampled) {
    trace::EventArgs args;
    args.batch = batch_id;
    args.k = window;
    args.lane = static_cast<int>(batch.size());  // occupancy, not a lane
    trace::emit_complete(trace::EventName::kBatchPack, t_pack, args);
  }
  const std::uint64_t t_eval = sampled ? trace::now_ns() : 0;
  sim::wide_aca_add_into(ops, window, nullptr, scratch);
  if (sampled) {
    trace::EventArgs args;
    args.batch = batch_id;
    args.k = window;
    trace::emit_complete(trace::EventName::kEngineEval, t_eval, args);
  }

  if (config_.drift != nullptr) {
    config_.drift->record_batch(
        batch.size(), static_cast<std::uint64_t>(scratch.flagged_count(
                          static_cast<int>(batch.size()))));
  }

  batches_.increment();
  batch_occupancy_.record(batch.size());

  // One word-level un-transpose for the whole batch instead of a
  // bit-at-a-time lane_value() per request; tiny batches (the batch-1
  // baseline) extract their few lanes directly instead of paying for
  // all 64.
  std::vector<BitVec> sums;
  if (batch.size() > 8) {
    sums = sim::wide_lane_values(scratch.sum_spec, width, lanes);
  }
  // Fast-path telemetry is aggregated over the batch: requests that
  // arrived in the same cycle (every submit_many chunk) share one
  // latency, so runs collapse into one record_n and the counters into
  // one increment each — otherwise 8 workers serialize on these cache
  // lines and telemetry becomes the throughput ceiling.
  long long n_fast = 0;
  std::uint64_t run_value = 0, run_count = 0;
  for (std::size_t lane = 0; lane < batch.size(); ++lane) {
    Request& request = batch[lane];
    const bool flagged = scratch.flagged_lane(static_cast<int>(lane));
    const bool wrong = scratch.wrong_lane(static_cast<int>(lane));
    if (!flagged) {
      // Soundness: ER clear implies the speculative sum is exact.
      Completion completion;
      completion.sum =
          sums.empty()
              ? sim::wide_lane_value(scratch.sum_spec, width, lanes / 64,
                                     static_cast<int>(lane))
              : std::move(sums[lane]);
      completion.latency_cycles = round + 1 - request.arrival_cycle;
      const auto cycles =
          static_cast<std::uint64_t>(completion.latency_cycles);
      if (run_count > 0 && cycles != run_value) {
        latency_cycles_.record_n(run_value, run_count);
        run_count = 0;
      }
      run_value = cycles;
      ++run_count;
      if (config_.record_wall_time) {
        const auto elapsed =
            std::chrono::steady_clock::now() - request.arrival_time;
        latency_ns_.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
      }
      if (sampled) {
        trace::EventArgs args;
        args.batch = batch_id;
        args.lane = static_cast<int>(lane);
        args.k = window;
        args.er = 0;
        // Queue-wait needs the arrival timestamp, which only exists
        // when wall-clock recording is on.
        if (config_.record_wall_time) {
          trace::emit_complete(trace::EventName::kQueueWait,
                               trace::to_session_ns(request.arrival_time),
                               args);
        }
        trace::emit_instant(trace::EventName::kComplete, args);
      }
      deliver(request, std::move(completion));
      ++n_fast;
      continue;
    }
    RecoveryItem item;
    item.speculative_wrong = wrong;
    item.batch = batch_id;
    item.lane = static_cast<int>(lane);
    if (trace_recovery) {
      trace::EventArgs args;
      args.batch = batch_id;
      args.lane = static_cast<int>(lane);
      args.k = window;
      args.er = 1;
      if (sampled && config_.record_wall_time) {
        trace::emit_complete(trace::EventName::kQueueWait,
                             trace::to_session_ns(request.arrival_time),
                             args);
      }
      trace::emit_instant(trace::EventName::kErCheck, args);
    }
    {
      // The recovery lane is a serial resource: it picks the request up
      // no earlier than the cycle after detection and holds it for
      // recovery_cycles — queued flags congest, fattening the tail.
      util::LockGuard lock(recovery_clock_mutex_);
      recovery_free_at_ = std::max(recovery_free_at_, round + 1) +
                          config_.pipeline.recovery_cycles;
      item.latency_cycles = recovery_free_at_ - request.arrival_cycle;
    }
    request.a = std::move(pairs[lane].first);
    request.b = std::move(pairs[lane].second);
    item.request = std::move(request);
    if (recovery != nullptr) {
      recovery->push_block(std::move(item));
    } else {
      recover_one(std::move(item));
    }
  }
  if (run_count > 0) latency_cycles_.record_n(run_value, run_count);
  if (n_fast > 0) {
    fast_path_.increment(n_fast);
    completed_.increment(n_fast);
    inflight_.fetch_sub(n_fast, std::memory_order_acq_rel);
  }
  return batch.size();
}

void AdderService::recover_one(RecoveryItem item) {
  const bool trace_recovery = trace::enabled() && trace::sample_recovery();
  const std::uint64_t t_start = trace_recovery ? trace::now_ns() : 0;
  // The recovery lane recomputes the sum exactly — the software twin of
  // the paper's recovery adder stage.
  auto exact = item.request.a.add_with_carry(item.request.b);
  if (config_.postmortem != nullptr) {
    config_.postmortem->record(item.request.a, item.request.b,
                               config_.pipeline.window,
                               item.speculative_wrong, item.batch, item.lane,
                               t_start);
  }
  if (trace_recovery) {
    trace::EventArgs args;
    args.batch = item.batch;
    args.lane = item.lane;
    args.k = config_.pipeline.window;
    args.er = 1;
    args.chain =
        core::longest_propagate_chain(item.request.a, item.request.b);
    args.a_lo = item.request.a.limbs()[0];
    args.b_lo = item.request.b.limbs()[0];
    args.has_operands = true;
    trace::emit_complete(trace::EventName::kRecovery, t_start, args);
    trace::emit_instant(trace::EventName::kComplete, args);
  }
  recovered_.increment();
  if (item.speculative_wrong) wrong_.increment();
  Completion completion;
  completion.sum = std::move(exact.sum);
  completion.flagged = true;
  completion.speculative_wrong = item.speculative_wrong;
  completion.latency_cycles = item.latency_cycles;
  complete(item.request, std::move(completion));
}

void AdderService::complete(Request& request, Completion completion) {
  latency_cycles_.record(
      static_cast<std::uint64_t>(completion.latency_cycles));
  if (config_.record_wall_time) {
    const auto elapsed =
        std::chrono::steady_clock::now() - request.arrival_time;
    latency_ns_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  if (!completion.flagged) fast_path_.increment();
  completed_.increment();
  deliver(request, std::move(completion));
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void AdderService::deliver(Request& request, Completion&& completion) {
  if (request.callback) {
    request.callback(std::move(completion));
  } else {
    request.promise->set_value(std::move(completion));
  }
}

std::size_t AdderService::pump() {
  if (config_.workers != 0) {
    throw std::logic_error("AdderService::pump: only valid with workers=0");
  }
  std::vector<Request> batch;
  sim::WideResult scratch;
  if (queue_.try_pop_batch(batch,
                           static_cast<std::size_t>(config_.max_batch)) == 0) {
    return 0;
  }
  queue_depth_.set(static_cast<long long>(queue_.size()));
  return dispatch(batch, scratch, nullptr);
}

void AdderService::flush() {
  while (inflight_.load(std::memory_order_acquire) > 0) {
    if (config_.workers == 0) {
      if (pump() == 0) break;  // nothing queued; nothing can be in flight
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void AdderService::close() {
  util::LockGuard lock(close_mutex_);
  if (close_finished_) return;
  closed_.store(true, std::memory_order_release);
  queue_.close();
  if (config_.workers == 0) {
    while (pump() > 0) {
    }
  } else {
    for (auto& worker : workers_) worker.join();
    recovery_queue_.close();
    if (recovery_worker_.joinable()) recovery_worker_.join();
  }
  close_finished_ = true;
}

}  // namespace vlsa::service
