#pragma once
// AdderService — arithmetic as a service: a concurrent request server
// over the bit-sliced batch engine (sim/batch_engine.hpp).
//
// The paper's processor sketch (Sec. 5) treats the VLSA as a shared
// functional unit: many in-flight additions, almost all answered in one
// cycle, the rare ER flag paying a recovery penalty.  This layer is the
// system-scale version of that argument.  Producers submit operand
// pairs into a bounded MPMC queue; dispatcher workers pop up to the
// detected SIMD lane width of outstanding requests (64/256/512 — see
// sim/isa.hpp; a partial batch after `max_linger`), evaluate
// them in ONE `wide_aca_add` call, and complete the unflagged majority
// immediately — soundness (`wrong & ~flagged == 0`, tested in
// tests/test_batch_engine.cpp) guarantees the fast path returns the
// exact sum.  Flagged requests detour through a serial *recovery lane*
// that recomputes the exact sum and models
// `PipelineConfig::recovery_cycles` of extra service time per request,
// so adversarial traffic (long propagate chains) visibly congests the
// tail instead of averaging away.
//
// Two clocks. (1) Wall time: nanosecond latency histograms, for real
// throughput numbers (optional — `record_wall_time`). (2) A modeled
// cycle clock: each batch dispatch is one VLSA cycle, a fast-path
// request completes the cycle after dispatch, and the recovery lane is
// a serial resource at `recovery_cycles` per flagged request.  The
// modeled histogram is what makes the "fast almost always, slow
// rarely" claim quantitative (p50 vs p999) and — unlike wall time — is
// deterministic in pump mode (below).
//
// Backpressure: `OverflowPolicy::Reject` fails submissions when the
// queue is full (counted in `service.rejected`); `Block` throttles the
// producer.  Either way memory stays bounded under overload.
//
// Determinism: with `workers == 0` nothing runs concurrently — the
// caller drives dispatch with `pump()` (the destructor pumps any
// leftovers).  Same seed + same submission order then yields a
// bit-identical telemetry snapshot, the reproducibility anchor for the
// whole layer (tests/test_service.cpp).  With `workers >= 1` batching
// depends on real arrival timing, so only the counters (totals, flags)
// are schedule-independent; histogram shapes vary with load.
//
// Sharding (`ServiceConfig::shards`, docs/scaling.md): above one shard
// the service becomes N independent {queue, engine, recovery lane}
// units — the single global MPMC queue stops being the serialization
// point.  Submissions route by operand hash or round-robin
// (`RoutePolicy`); idle workers can steal a neighbor shard's backlog
// (`StealPolicy::Neighbor`); workers optionally pin to cores.  Each
// shard owns a modeled cycle clock (one VLSA functional unit per
// shard), its own serial recovery lane, and labeled per-shard metrics
// ("service.submitted{shard=3}").  shards == 1 is byte-for-byte the
// pre-sharding service — no routing, no labels, same snapshots.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "service/bounded_queue.hpp"
#include "sim/batch_engine.hpp"
#include "sim/vlsa_pipeline.hpp"
#include "telemetry/registry.hpp"
#include "util/bitvec.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace vlsa::trace {
class DriftMonitor;
class PostmortemRing;
}  // namespace vlsa::trace

namespace vlsa::service {

using util::BitVec;

/// How a full submission queue treats new requests.
enum class OverflowPolicy {
  Block,   ///< producer waits for space (closed-loop throttling)
  Reject,  ///< submission fails fast, counted in service.rejected
};

/// How submissions pick a shard (meaningful only when shards > 1).
enum class RoutePolicy {
  /// Operand hash — deterministic, so a Block-policy retry of the same
  /// frame lands on the same (still-full) shard and backpressure stays
  /// per-shard instead of leaking onto a neighbor.
  Hash,
  /// Strict rotation — perfectly even under any operand distribution,
  /// at the cost of one shared atomic counter on the submit path.
  RoundRobin,
};

/// What an idle shard worker does about a busy neighbor's backlog.
enum class StealPolicy {
  None,      ///< shards are fully independent (strict per-shard FIFO)
  Neighbor,  ///< idle workers drain shard (i+1) % shards opportunistically
};

struct ServiceConfig {
  /// width / window / recovery_cycles of the modeled VLSA datapath.
  sim::PipelineConfig pipeline;
  /// Dispatcher threads, TOTAL across shards.  0 = pump mode: no
  /// threads, the caller calls pump() — fully deterministic (see file
  /// comment).  In sharded mode each shard gets max(1, workers/shards)
  /// dispatchers, so the effective total (reflected back into this
  /// field by the constructor) is never below `shards`.
  int workers = 1;
  /// Shard count: independent {queue, engine, recovery lane} units.
  /// 1 (the default) is byte-for-byte the pre-sharding service: one
  /// queue, no routing, no per-shard metric labels.  Each shard models
  /// one VLSA functional unit with its own cycle clock, so the modeled
  /// throughput scales with shards even where the host's cores do not
  /// (docs/scaling.md).
  int shards = 1;
  /// Shard selection for submissions (shards > 1 only).
  RoutePolicy route = RoutePolicy::Hash;
  /// Work stealing between shard workers (shards > 1 only).  Stealing
  /// trades strict per-shard FIFO for tail latency under skew: a stolen
  /// request executes (and is clocked) on the thief's shard, counted in
  /// that shard's `service.stolen{shard=i}`.
  StealPolicy steal = StealPolicy::None;
  /// Pin each shard's dispatcher threads to core (shard index mod
  /// hardware_concurrency).  Linux-only; a no-op elsewhere and off by
  /// default — pinning helps dedicated hosts and hurts shared ones.
  bool pin_threads = false;
  /// Requests packed per batch-engine evaluation, in
  /// [1, sim::active_lanes()].  0 (the default) packs to the detected
  /// SIMD lane width (64 scalar, 256 AVX2, 512 AVX-512 — or whatever
  /// VLSA_FORCE_ISA pins).  1 gives the no-batching baseline the
  /// throughput bench compares against.  Each dispatch still evaluates
  /// at the smallest lane count that fits the batch it actually popped
  /// (sim::lanes_for_batch), so small batches keep the 64-lane cost.
  int max_batch = 0;
  /// Submission queue bound, PER SHARD — the backpressure knob.
  std::size_t queue_capacity = 1024;
  /// How long a dispatcher holds a partial batch open for latecomers.
  std::chrono::microseconds max_linger{50};
  OverflowPolicy overflow = OverflowPolicy::Block;
  /// Record wall-clock latency histograms (service.latency_ns).  Off
  /// for bit-identical fixed-seed telemetry.  Also gates queue-wait
  /// trace spans (they need the arrival timestamp).
  bool record_wall_time = true;
  /// Observability hooks (trace/postmortem.hpp, trace/drift.hpp); both
  /// non-owning and optional — when set they must outlive the service.
  /// The postmortem ring captures every ER=1 request's operands; the
  /// drift monitor ingests one (count, flagged) sample per batch.
  /// Request-path *trace events* need no hook: the service emits them
  /// whenever a trace::TraceSession is active (one relaxed atomic load
  /// per batch when idle).
  trace::PostmortemRing* postmortem = nullptr;
  trace::DriftMonitor* drift = nullptr;
};

/// What the requester gets back.
struct Completion {
  BitVec sum;              ///< always the exact sum
  bool flagged = false;    ///< ER fired; took the recovery lane
  bool speculative_wrong = false;  ///< the one-cycle answer was wrong
  long long latency_cycles = 0;    ///< modeled: queue wait + service
  /// Shard whose engine produced the sum — equals the routed shard
  /// unless a neighbor stole the request (work-steal provenance).
  int shard = 0;
};

class AdderService {
 public:
  /// `registry`, when given, must outlive the service (metrics from
  /// several services can share one registry); otherwise the service
  /// owns one, reachable via registry().
  explicit AdderService(const ServiceConfig& config,
                        telemetry::Registry* registry = nullptr);

  /// Drains: every accepted request is completed before destruction
  /// returns (workers joined, recovery lane flushed, pump-mode leftovers
  /// pumped).  No promise is ever dropped.
  ~AdderService();

  AdderService(const AdderService&) = delete;
  AdderService& operator=(const AdderService&) = delete;

  /// Submit one addition (operands must match the configured width).
  /// Returns std::nullopt when the queue is full under Reject.  Throws
  /// std::runtime_error after close(), and std::invalid_argument on a
  /// width mismatch.  In pump mode a full queue returns std::nullopt
  /// under either policy (blocking would deadlock — there is no
  /// consumer until the caller pumps).
  std::optional<std::future<Completion>> submit(BitVec a, BitVec b);

  /// Submit a batch of additions in one queue transaction — the
  /// producer-side mirror of the dispatcher's 64-wide batching, and the
  /// way to saturate the service (per-submission locking caps a
  /// producer long before the batch engine does).  Element i of the
  /// result corresponds to ops[i]; std::nullopt marks a rejected
  /// request (Reject policy or pump mode with a full queue — under
  /// Block everything is accepted).  Same throw conditions as submit().
  std::vector<std::optional<std::future<Completion>>> submit_many(
      std::vector<std::pair<BitVec, BitVec>> ops);

  /// Completion delivery for callers that cannot block on a future —
  /// the network front-end's event loops (src/net/server.cpp).  The
  /// callback runs on whichever service thread completes the request
  /// (dispatcher fast path or recovery lane), so it must be cheap and
  /// must not call back into submit paths.
  using CompletionCallback = std::function<void(Completion)>;

  /// Non-blocking submit with callback completion: pushes with
  /// try-semantics REGARDLESS of the overflow policy (an event loop can
  /// never afford to block) and returns false when the queue is full —
  /// the caller maps that onto its own backpressure currency (the net
  /// server stops reading the socket under Block, sends a REJECTED
  /// frame under Reject).  A false return is counted in
  /// service.rejected only under Reject; under Block it is a stall, not
  /// a rejection — and the operands are handed back through the rvalue
  /// references untouched, so the caller can park the SAME frame for a
  /// retry instead of copying operands defensively on every attempt.
  /// Same throw conditions as submit().
  bool try_submit_callback(BitVec&& a, BitVec&& b,
                           CompletionCallback callback);

  /// Pump mode only: dispatch at most one batch (plus its recovery
  /// work) on the calling thread.  Returns requests completed; 0 when
  /// the queue is empty.
  std::size_t pump();

  /// Block until every accepted request has completed.
  void flush();

  /// Stop accepting; drain everything in flight.  Idempotent; the
  /// destructor calls it.
  void close();

  const ServiceConfig& config() const { return config_; }
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }

  /// Modeled cycle clock: the furthest-advanced shard clock (each shard
  /// ticks once per batch it dispatches).  With shards == 1 this is the
  /// pre-sharding global clock.  The max is the modeled *makespan* —
  /// N independent functional units running in parallel finish when the
  /// busiest one does — which is what the scaling bench divides request
  /// counts by (bench/service_throughput.cpp, docs/scaling.md).
  long long now_cycles() const;

  /// Effective shard count (>= 1).
  int shards() const { return config_.shards; }

  /// One shard's modeled cycle clock (index in [0, shards())).
  long long shard_cycles(int shard) const;

  /// Depth of one shard's submission queue (tests, /statusz).
  std::size_t shard_queue_depth(int shard) const;

  /// The shard a request with these operands routes to — exposed so
  /// tests and capacity planners can predict placement under Hash
  /// routing (RoundRobin placement depends on global submission order).
  std::size_t route_of(const BitVec& a, const BitVec& b) const;

 private:
  struct Request {
    BitVec a, b;
    /// Engaged only on the future paths (submit/submit_many) — a
    /// default-constructed std::promise allocates its shared state, so
    /// the callback path (one request per network frame) must not pay
    /// for a promise it never reads.
    std::optional<std::promise<Completion>> promise;
    /// When set, completion is delivered here instead of the promise.
    CompletionCallback callback;
    long long arrival_cycle = 0;
    std::chrono::steady_clock::time_point arrival_time;
  };
  struct RecoveryItem {
    Request request;
    bool speculative_wrong = false;
    long long latency_cycles = 0;  ///< modeled, fixed at dispatch time
    std::uint64_t batch = 0;       ///< dispatch round that flagged it
    int lane = -1;                 ///< lane within that batch
    int shard = 0;                 ///< shard whose recovery lane runs it
  };

  /// One shard: a complete, independent copy of the pre-sharding
  /// service's data plane — submission queue, dispatcher threads,
  /// recovery lane, modeled clocks — plus its labeled metrics.  Shards
  /// share only the engine code, the registry, and the global
  /// inflight/closed bookkeeping.
  struct Shard {
    Shard(std::size_t queue_capacity, std::size_t recovery_capacity)
        : queue(queue_capacity), recovery_queue(recovery_capacity) {}

    BoundedQueue<Request> queue;
    BoundedQueue<RecoveryItem> recovery_queue;
    std::vector<std::thread> workers;
    std::thread recovery_worker;

    /// This shard's modeled cycle clock (1 tick per dispatched batch).
    /// Relaxed everywhere, same audit as the old global vclock below.
    std::atomic<long long> vclock{0};
    util::Mutex recovery_clock_mutex;
    /// Modeled cycle this shard's serial recovery lane frees up.
    long long recovery_free_at GUARDED_BY(recovery_clock_mutex) = 0;

    // Labeled per-shard metrics ("service.submitted{shard=3}" etc.),
    // registered only when shards > 1 — single-shard snapshots stay
    // byte-identical to the pre-sharding service.  Null otherwise.
    telemetry::Counter* submitted = nullptr;
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* rejected = nullptr;
    telemetry::Counter* recovered = nullptr;
    telemetry::Counter* batches = nullptr;
    telemetry::Counter* stolen = nullptr;
    telemetry::Gauge* queue_depth = nullptr;
  };

  void worker_loop(std::size_t shard_index);
  void recovery_loop(Shard& shard);
  /// Pick the shard for a submission (Hash mixes the operand low limbs;
  /// RoundRobin takes a ticket from rr_next_).
  std::size_t pick_shard(const BitVec& a, const BitVec& b);
  /// Evaluate one batch on `shard`'s engine; flagged lanes go to
  /// `recovery` (worker mode) or are recovered inline when
  /// `recovery == nullptr` (pump mode).  `stolen` marks a batch the
  /// executing worker took from a neighbor's queue.
  std::size_t dispatch(std::vector<Request>& batch,
                       sim::WideResult& scratch, Shard& shard,
                       std::size_t shard_index, bool stolen,
                       BoundedQueue<RecoveryItem>* recovery);
  void recover_one(RecoveryItem item);
  void complete(Request& request, Completion completion);
  /// Hand the finished completion to whichever channel the request
  /// carries (callback or promise).
  static void deliver(Request& request, Completion&& completion);

  ServiceConfig config_;
  std::unique_ptr<telemetry::Registry> owned_registry_;
  telemetry::Registry* registry_;

  /// shards() entries; unique_ptr because a Shard owns non-movable
  /// members (mutex, atomics) and the vector is sized once.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Memory-ordering audit (every atomic below, and why its ordering is
  // what it is):
  //
  //  * Shard::vclock — relaxed everywhere.  A pure tick counter: values
  //    are compared arithmetically to compute modeled latencies, and no
  //    other data is published through it.  fetch_add is already atomic
  //    read-modify-write, so ticks are never lost.
  //  * rr_next_ — relaxed fetch_add; a rotation ticket, publishes
  //    nothing.
  //  * inflight_ — fetch_add/fetch_sub acq_rel, loads acquire.  The
  //    release half of each decrement orders the promise fulfillment
  //    (set_value) before the count drop, so a flush() that observes 0
  //    with an acquire load happens-after every completion it waited
  //    for.  The increment side could be relaxed, but submit/complete
  //    share one helper pattern and the cost is unmeasurable off the
  //    per-batch path.
  //  * closed_ — store release in close(), load acquire in the submit
  //    paths: a submitter that sees closed_ == true also sees the
  //    queue close() calls that preceded the store (it will observe
  //    queue.closed() and throw rather than silently drop).
  std::atomic<std::uint64_t> rr_next_{0};
  /// Pump mode is single-threaded by definition, so plain rotation
  /// state is fine here.
  std::size_t pump_next_ = 0;

  std::atomic<long long> inflight_{0};
  std::atomic<bool> closed_{false};
  util::Mutex close_mutex_;
  bool close_finished_ GUARDED_BY(close_mutex_) = false;

  // Hot-path metrics, resolved once at construction.
  telemetry::Counter& submitted_;
  telemetry::Counter& rejected_;
  telemetry::Counter& completed_;
  telemetry::Counter& fast_path_;
  telemetry::Counter& recovered_;
  telemetry::Counter& wrong_;
  telemetry::Counter& batches_;
  telemetry::Gauge& queue_depth_;
  telemetry::Histogram& latency_cycles_;
  telemetry::Histogram& batch_occupancy_;
  telemetry::Histogram& latency_ns_;
};

}  // namespace vlsa::service
