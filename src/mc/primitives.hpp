#pragma once
// Instrumented drop-in synchronization primitives for the model
// checker (docs/model_checking.md).  API-compatible with the types the
// production code is parameterized over:
//
//   mc::atomic<T>                   <->  std::atomic<T>
//   mc::Mutex/LockGuard/UniqueLock  <->  util::Mutex/LockGuard/UniqueLock
//   mc::CondVar                     <->  util::CondVar
//
// plus the policy bundles the templates accept: `mc::Sync` for
// `service::BoundedQueue<T, Sync>` and `mc::Atomics` for
// `trace::BasicEventRing<Atomics>`.  Swapping the policy is the ONLY
// difference between the code under test and the code in production —
// the checker exercises the exact shipped algorithms.
//
// Every operation announces itself to the scheduler (sched.hpp) and
// parks until granted, so each is one interleaving point.  The types
// here are *models*, not real primitives: an mc::Mutex is a flag the
// single-running-thread invariant makes safe, an mc::atomic's value
// lives in a plain word plus the owning thread's store buffer.  Under
// Options::weak_memory, relaxed/release stores are buffered per thread
// and commit later as separate schedulable steps (release commits only
// in order; a release fence bars reordering across it) — strong enough
// to catch writer-side ordering mutants like a demoted release store.
// Loads always see the newest committed value (plus the thread's own
// buffer, store-forwarding style); read-side stale values are not
// modeled.
//
// The classes carry the same Clang thread-safety annotations as the
// util types, so templates annotated with GUARDED_BY/REQUIRES stay
// clean under -Wthread-safety when instantiated with mc primitives.
//
// Outside a scheduler (no explore() active, or during abort unwind)
// every operation falls back to plain unsynchronized behavior — mc
// types are meaningful only under the checker.

#include <atomic>  // std::memory_order
#include <chrono>
#include <condition_variable>  // std::cv_status
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "mc/model.hpp"
#include "mc/sched.hpp"
#include "util/thread_annotations.hpp"

namespace vlsa::mc {

namespace detail {

/// Model state of one mutex.  Mutated only by the thread holding the
/// scheduler token (or read by the parked coordinator) — never raced.
struct MutexModel {
  std::uint32_t id;
  bool locked = false;
  int owner = -1;
};

/// Model state of one condition variable.
struct CvModel {
  std::uint32_t id = 0;
  std::uint64_t waiters = 0;  ///< bitmask of tids parked in wait
  /// One entry per un-consumed notify_one: the waiter set at notify
  /// time.  Which of those waiters consumes it is the scheduler's
  /// choice — the wake-choice nondeterminism folds into the ordinary
  /// "which thread runs next" decision.
  std::vector<std::uint64_t> signals;
  std::uint64_t woken = 0;  ///< notify_all: per-waiter woken bits
};

/// Model state of one atomic word (raw 64-bit representation).
struct AtomicModel {
  std::uint32_t id;
  std::uint64_t committed = 0;  ///< globally visible value
};

/// What a primitive announces when it parks (see Hooks::yield).
struct OpDesc {
  OpKind kind;
  ObjClass cls = ObjClass::kNone;
  std::uint32_t obj = 0;
  const char* site = "";
  MutexModel* mutex = nullptr;  ///< lock target / cv-wait reacquire
  CvModel* cv = nullptr;        ///< cv wait/notify target
  int join_tid = -1;            ///< kJoin target
  bool unwind_ctx = false;      ///< announced while unwinding: no McAbort
};

/// Low-level scheduler hooks (implemented in sched.cpp).
struct PrimHooks {
  /// Announce `op` and park until granted.  False = not controlled
  /// (no scheduler, or unwinding from an abort): caller must fall back
  /// to plain behavior.
  static bool yield(const OpDesc& op);
  static bool controlled();
  static int self_tid();
  static std::uint32_t register_object(ObjClass cls);
  static const Options& options();
  static bool suppress_notify(std::uint32_t cv_id);
  // Store-buffer access for the calling thread (weak_memory only).
  static void buffer_store(AtomicModel* a, std::uint64_t v, bool release);
  static bool buffer_lookup(const AtomicModel* a, std::uint64_t* v);
  static void buffer_flush();
  static void buffer_fence();
};

[[noreturn]] void model_misuse(const char* what, const char* site);

}  // namespace detail

// ---------------------------------------------------------------------
// Mutex / LockGuard / UniqueLock / CondVar — mirrors util/mutex.hpp.

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() : state_{detail::PrimHooks::register_object(ObjClass::kMutex)} {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    detail::OpDesc op{OpKind::kMutexLock, ObjClass::kMutex, state_.id,
                      "Mutex::lock"};
    op.mutex = &state_;
    if (!detail::PrimHooks::yield(op)) {  // fallback / unwind
      state_.locked = true;
      return;
    }
    // Granted only while free (eligibility), by the one running thread.
    state_.locked = true;
    state_.owner = detail::PrimHooks::self_tid();
  }

  void unlock() RELEASE() {
    detail::OpDesc op{OpKind::kMutexUnlock, ObjClass::kMutex, state_.id,
                      "Mutex::unlock"};
    op.mutex = &state_;
    if (!detail::PrimHooks::yield(op)) {
      state_.locked = false;
      return;
    }
    if (!state_.locked || state_.owner != detail::PrimHooks::self_tid()) {
      detail::model_misuse("unlock of a mutex not held by this thread",
                           "Mutex::unlock");
    }
    state_.locked = false;
    state_.owner = -1;
  }

  bool try_lock() TRY_ACQUIRE(true) {
    detail::OpDesc op{OpKind::kMutexTryLock, ObjClass::kMutex, state_.id,
                      "Mutex::try_lock"};
    op.mutex = &state_;
    if (!detail::PrimHooks::yield(op)) {
      state_.locked = true;
      return true;
    }
    if (state_.locked) return false;
    state_.locked = true;
    state_.owner = detail::PrimHooks::self_tid();
    return true;
  }

  detail::MutexModel& model() { return state_; }

 private:
  friend class CondVar;
  detail::MutexModel state_;
};

class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) ACQUIRE(mutex)
      : mutex_(&mutex), held_(true) {
    mutex_->lock();
  }
  ~UniqueLock() RELEASE() {
    if (held_) mutex_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() {
    mutex_->lock();
    held_ = true;
  }
  void unlock() RELEASE() {
    mutex_->unlock();
    held_ = false;
  }

  Mutex& mutex() { return *mutex_; }

 private:
  friend class CondVar;
  Mutex* mutex_;
  bool held_;
};

/// Condition variable over mc::Mutex.  Untimed waits are eligible only
/// once signaled — a deleted notify therefore shows up as a global
/// deadlock with a schedule attached.  Timed waits are always eligible
/// (the scheduler may grant the timeout path at any point, regardless
/// of the deadline value — time itself is not modeled); a pending
/// signal is preferred on grant.  Spurious wakeups are NOT injected.
class CondVar {
 public:
  CondVar() {
    state_.id = detail::PrimHooks::register_object(ObjClass::kCv);
  }
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { notify(false); }
  void notify_all() noexcept { notify(true); }

  void wait(UniqueLock& lock) { wait_impl(lock, /*timed=*/false); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& /*deadline*/) {
    return wait_impl(lock, /*timed=*/true) ? std::cv_status::no_timeout
                                           : std::cv_status::timeout;
  }

 private:
  /// Returns true when woken by a signal, false on (modeled) timeout.
  bool wait_impl(UniqueLock& lock, bool timed) {
    if (!detail::PrimHooks::controlled()) return true;  // fallback
    const int tid = detail::PrimHooks::self_tid();
    const std::uint64_t bit = std::uint64_t{1} << tid;
    detail::MutexModel& m = lock.mutex_->state_;
    if (!m.locked || m.owner != tid) {
      detail::model_misuse("cv wait without holding the lock",
                           "CondVar::wait");
    }
    // Atomically (we hold the token): register as waiter, release the
    // mutex, park.  Eligibility: mutex free AND (signal covers us, or
    // woken by notify_all, or — timed waits only — the timeout path).
    state_.waiters |= bit;
    m.locked = false;
    m.owner = -1;
    // The lock is released in the model while we park; if the wait is
    // aborted (McAbort unwinds through the caller), ~UniqueLock must
    // not try to unlock a mutex this thread no longer owns.
    lock.held_ = false;
    detail::OpDesc op{timed ? OpKind::kCvTimedWait : OpKind::kCvWait,
                      ObjClass::kCv, state_.id,
                      timed ? "CondVar::wait_until" : "CondVar::wait"};
    op.cv = &state_;
    op.mutex = &m;
    bool granted;
    try {
      granted = detail::PrimHooks::yield(op);
    } catch (...) {
      state_.waiters &= ~bit;
      throw;
    }
    if (!granted) {  // lost scheduler control mid-wait: plain fallback
      state_.waiters &= ~bit;
      lock.held_ = true;
      return true;
    }
    // Granted: consume a wakeup if one covers us (preferred over the
    // timeout), reacquire the mutex (scheduler granted it free).
    state_.waiters &= ~bit;
    bool signaled = false;
    if (state_.woken & bit) {
      state_.woken &= ~bit;
      signaled = true;
    } else {
      for (std::size_t i = 0; i < state_.signals.size(); ++i) {
        if (state_.signals[i] & bit) {
          state_.signals.erase(
              state_.signals.begin() + static_cast<std::ptrdiff_t>(i));
          signaled = true;
          break;
        }
      }
    }
    m.locked = true;
    m.owner = tid;
    lock.held_ = true;
    return signaled;
  }

  void notify(bool all) {
    detail::OpDesc op{all ? OpKind::kCvNotifyAll : OpKind::kCvNotifyOne,
                      ObjClass::kCv, state_.id,
                      all ? "CondVar::notify_all" : "CondVar::notify_one"};
    op.cv = &state_;
    if (!detail::PrimHooks::yield(op)) return;
    // Seeded-mutant hook: the exploration options may delete this
    // notify (tests prove the checker catches the resulting lost
    // wakeup; see Options::suppress_notify_cv).
    if (detail::PrimHooks::suppress_notify(state_.id)) return;
    if (all) {
      state_.woken |= state_.waiters;
    } else if (state_.waiters != 0) {
      // Wake "some one" of the waiters present now; which one is the
      // scheduler's choice when it next grants a covered waiter.
      state_.signals.push_back(state_.waiters);
    }
    // A notify with no waiters is lost — exactly the real semantics.
  }

  detail::CvModel state_;
};

// ---------------------------------------------------------------------
// atomic<T>

template <typename T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "mc::atomic models <=64-bit trivially copyable types");

 public:
  atomic() : atomic(T{}) {}
  explicit atomic(T value)
      : state_{detail::PrimHooks::register_object(ObjClass::kAtomic)} {
    state_.committed = to_raw(value);
  }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const {
    detail::OpDesc op{OpKind::kAtomicLoad, ObjClass::kAtomic, state_.id,
                      "atomic::load"};
    if (!detail::PrimHooks::yield(op)) return from_raw(state_.committed);
    // Own-store forwarding: the newest value this thread buffered wins;
    // otherwise the committed (globally visible) value.  Other
    // threads' buffers are invisible — that is the store-buffer model.
    std::uint64_t raw;
    if (detail::PrimHooks::options().weak_memory &&
        detail::PrimHooks::buffer_lookup(&state_, &raw)) {
      return from_raw(raw);
    }
    return from_raw(state_.committed);
  }

  void store(T value, std::memory_order mo = std::memory_order_seq_cst) {
    detail::OpDesc op{OpKind::kAtomicStore, ObjClass::kAtomic, state_.id,
                      "atomic::store"};
    if (!detail::PrimHooks::yield(op)) {
      state_.committed = to_raw(value);
      return;
    }
    if (detail::PrimHooks::options().weak_memory &&
        mo != std::memory_order_seq_cst) {
      // Buffered: becomes globally visible at a later, separately
      // scheduled commit step.  A release store additionally may not
      // commit before anything buffered ahead of it.
      detail::PrimHooks::buffer_store(&state_, to_raw(value),
                                      mo >= std::memory_order_release);
      return;
    }
    if (detail::PrimHooks::options().weak_memory) {
      detail::PrimHooks::buffer_flush();  // seq_cst: no reordering
    }
    state_.committed = to_raw(value);
  }

  T exchange(T value, std::memory_order = std::memory_order_seq_cst) {
    return rmw([&](T) { return value; }, "atomic::exchange");
  }

  T fetch_add(T arg, std::memory_order = std::memory_order_seq_cst) {
    return rmw([&](T old) { return static_cast<T>(old + arg); },
               "atomic::fetch_add");
  }

  T fetch_sub(T arg, std::memory_order = std::memory_order_seq_cst) {
    return rmw([&](T old) { return static_cast<T>(old - arg); },
               "atomic::fetch_sub");
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order = std::memory_order_seq_cst) {
    bool ok = false;
    rmw(
        [&](T old) {
          ok = raw_eq(old, expected);
          if (!ok) expected = old;
          return ok ? desired : old;
        },
        "atomic::compare_exchange");
    return ok;
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    // No spurious CAS failure in the model.
    return compare_exchange_strong(expected, desired, mo);
  }

 private:
  template <typename Fn>
  T rmw(Fn&& fn, const char* site) {
    detail::OpDesc op{OpKind::kAtomicRmw, ObjClass::kAtomic, state_.id, site};
    if (!detail::PrimHooks::yield(op)) {
      const T old = from_raw(state_.committed);
      state_.committed = to_raw(fn(old));
      return old;
    }
    // RMWs act on the latest value: drain the own buffer first, then
    // read-modify-write the committed word in one step.
    if (detail::PrimHooks::options().weak_memory) {
      detail::PrimHooks::buffer_flush();
    }
    const T old = from_raw(state_.committed);
    state_.committed = to_raw(fn(old));
    return old;
  }

  static std::uint64_t to_raw(T value) {
    std::uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(T));
    return raw;
  }
  static T from_raw(std::uint64_t raw) {
    T value;
    std::memcpy(&value, &raw, sizeof(T));
    return value;
  }
  static bool raw_eq(T a, T b) { return to_raw(a) == to_raw(b); }

  mutable detail::AtomicModel state_;
};

/// Release fence: buffered stores issued after it may not commit while
/// anything buffered before it remains (the barrier the seqlock's
/// busy-mark ordering relies on).
inline void fence_release() {
  detail::OpDesc op{OpKind::kFence, ObjClass::kNone, 0, "fence_release"};
  if (!detail::PrimHooks::yield(op)) return;
  if (detail::PrimHooks::options().weak_memory) {
    detail::PrimHooks::buffer_fence();
  }
}

/// Acquire fence: a scheduling point only — read-side reordering is
/// not modeled (loads always see the newest committed value).
inline void fence_acquire() {
  detail::OpDesc op{OpKind::kFence, ObjClass::kNone, 0, "fence_acquire"};
  (void)detail::PrimHooks::yield(op);
}

// ---------------------------------------------------------------------
// Policy bundles the production templates accept.

/// Drop-in for service::DefaultSync (service/bounded_queue.hpp):
/// `BoundedQueue<T, mc::Sync>` is the production queue running on
/// checker-controlled primitives.
struct Sync {
  using Mutex = mc::Mutex;
  using LockGuard = mc::LockGuard;
  using UniqueLock = mc::UniqueLock;
  using CondVar = mc::CondVar;
};

/// Drop-in for trace::StdAtomics (trace/trace.hpp):
/// `BasicEventRing<mc::Atomics>` is the production seqlock ring on
/// checker-controlled atomics.
struct Atomics {
  template <typename U>
  using Atomic = mc::atomic<U>;
  static void fence_release() { mc::fence_release(); }
  static void fence_acquire() { mc::fence_acquire(); }
};

}  // namespace vlsa::mc
