#pragma once
// Shared vocabulary of the deterministic concurrency model checker
// (docs/model_checking.md): the operation taxonomy the instrumented
// primitives announce, the decision-list schedule format, the
// exploration knobs, and the exploration result.
//
// A *schedule* is the complete nondeterminism of one execution: the
// sequence of choices the scheduler made, one per step.  Re-running the
// same test body under the same choices reproduces the execution
// exactly — that is what makes every failure the checker reports
// replayable.  Choices are encoded as `tid * 64 + action`, where
// action 0 runs the thread's announced operation and action 1+j
// commits the j-th entry of the thread's store buffer (the weak-memory
// model of primitives.hpp).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace vlsa::mc {

/// Everything an instrumented primitive can announce to the scheduler.
/// One yield per operation — this is the interleaving granularity.
enum class OpKind : std::uint8_t {
  kStart = 0,      ///< thread begins executing its function
  kAtomicLoad,     ///< mc::atomic load
  kAtomicStore,    ///< mc::atomic store (buffered unless seq_cst)
  kAtomicRmw,      ///< fetch_add / exchange / CAS (flushes, then atomic)
  kFence,          ///< mc::fence_release / fence_acquire / seq_cst
  kMutexLock,      ///< blocking acquire (eligible only when free)
  kMutexTryLock,   ///< non-blocking acquire (always eligible)
  kMutexUnlock,    ///< release
  kCvWait,         ///< untimed wait (eligible only when signaled)
  kCvTimedWait,    ///< timed wait (always eligible — timeout path)
  kCvNotifyOne,    ///< pushes a signal covering the current waiters
  kCvNotifyAll,    ///< wakes every current waiter
  kJoin,           ///< mc::Thread::join (eligible when target finished)
  kSpawn,          ///< mc::Thread construction
  kYield,          ///< explicit mc::yield() scheduling point
  kCommit,         ///< store-buffer commit (coordinator-executed)
  kDrain,          ///< thread function returned; store buffer draining
};

/// Which primitive an operation touched.  Ids are assigned per class in
/// registration (construction) order, which is deterministic under a
/// deterministic schedule — so "cv c0" names the same object in every
/// execution of the same body, and schedules contain no addresses.
enum class ObjClass : std::uint8_t {
  kNone = 0,
  kAtomic,  ///< a0, a1, ...
  kMutex,   ///< m0, m1, ...
  kCv,      ///< c0, c1, ...
  kThread,  ///< t0 (the body), t1, ... in spawn order
};

/// Short stable name for an operation ("lock", "cv-wait", ...).
const char* op_name(OpKind kind);

/// Short stable prefix for an object class ("m", "c", "a", "t").
const char* obj_prefix(ObjClass cls);

/// A decision list: the complete schedule of one execution.
struct Schedule {
  std::vector<std::uint32_t> choices;

  bool empty() const { return choices.empty(); }
};

/// Compact textual form, e.g. "64 0 65 129" — stable across runs and
/// suitable for pinning in a regression test.
std::string format_schedule(const Schedule& schedule);

/// Inverse of format_schedule; throws std::invalid_argument on junk.
Schedule parse_schedule(const std::string& text);

/// Exploration knobs.
struct Options {
  enum class Mode {
    kExhaustive,  ///< DFS over every choice, in deterministic order
    kRandom,      ///< seeded uniform random walks
  };

  Mode mode = Mode::kExhaustive;

  /// Maximum context switches away from a still-runnable thread per
  /// schedule; < 0 = unbounded.  Most bugs fall at small bounds
  /// (CHESS); explore_iterative() sweeps 0..bound for a minimal
  /// counterexample.
  int preemption_bound = -1;

  /// Exploration budget: stop after this many executions even if the
  /// DFS frontier is not exhausted (Result::budget_exhausted tells).
  std::uint64_t max_schedules = 100000;

  /// Per-execution step budget — the livelock / unbounded-spin guard.
  std::uint64_t max_steps = 20000;

  /// Random-mode seed; execution i uses a stream derived from seed+i.
  std::uint64_t seed = 1;

  /// Model per-thread store buffers (relaxed stores commit later, as
  /// separate schedulable steps).  Off = sequentially consistent
  /// interleaving semantics — smaller state space, right for
  /// mutex/condvar code with no rawatomics under test.
  bool weak_memory = false;

  // Seeded-mutant fault injection: drop notify_one/notify_all calls on
  // the cv with the given registration id (-1 = inject nothing).
  // `suppress_notify_nth` selects one occurrence (0-based, counted per
  // execution); -1 suppresses every call.  This is how the mutant
  // suites delete a wakeup from *production* queue code without
  // forking it (tests/test_mc_suites.cpp).
  int suppress_notify_cv = -1;
  int suppress_notify_nth = -1;
};

/// What exploration found.
struct Result {
  bool failed = false;
  bool budget_exhausted = false;  ///< hit max_schedules with DFS unfinished
  std::uint64_t schedules = 0;    ///< executions run (pruned ones included)
  std::uint64_t steps = 0;        ///< total scheduling decisions made
  Schedule failing;               ///< decision list of the failing run
  std::string message;            ///< assertion text / deadlock / budget
  std::string trace;              ///< human-readable failing schedule
};

/// Thrown by MC_ASSERT; the thread wrapper catches it and records the
/// failure plus the schedule that produced it.
struct McFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace vlsa::mc

/// Checker-visible assertion: failing under exploration aborts the
/// execution and reports the schedule that got here.  Usable from any
/// controlled thread (outside exploration it throws McFailure to the
/// caller).
#define MC_ASSERT(cond)                                              \
  (void)((cond) ||                                                   \
         (::vlsa::mc::detail::assert_fail(#cond, __FILE__, __LINE__), 0))
