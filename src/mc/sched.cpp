// The model checker's scheduler and exploration engine (sched.hpp).
//
// Concurrency structure: the explore() caller is the *coordinator*.
// Controlled threads are real std::threads, but all parking/granting
// goes through one mutex + condvar (m_/cv_) and a single token — at
// any instant either exactly one controlled thread runs (token_ ==
// its tid) or the coordinator does (token_ == kCoordinator).  Model
// state (mutex/cv/atomic models, store buffers, the thread table) is
// therefore never accessed concurrently, and every cross-slice access
// is ordered by the m_ handoff.
//
// Stateless exploration: every schedule re-executes the body from
// scratch.  The DFS keeps a stack of frames, one per decision, each
// holding the deterministic enabled-choice list, the index currently
// being followed, and the sleep set inherited from its parent
// (Godefroid-style: a choice explored at a node need not be re-explored
// from a sibling branch unless a dependent action ran in between).
// Preemption bounding filters frame candidates by the switch budget;
// since staying on the current thread (or switching away from a
// blocked one) costs nothing, the bound can never empty a non-empty
// enabled set — only sleep sets can, and such executions abort early
// as "pruned".
//
// Failure unwinding is serialized: on the first failure (assert,
// deadlock, step budget) the coordinator grants each remaining thread
// the token with the abort flag set — younger threads first, the body
// (t0, whose stack owns the shared objects) last — so each unwinds and
// exits while everything it references is still alive.  Primitive
// calls made during unwinding bypass the scheduler entirely.

#include "mc/sched.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "mc/primitives.hpp"

namespace vlsa::mc {

namespace {
constexpr int kCoordinator = -1;
constexpr int kMaxThreads = 62;            // tid bitmasks are uint64
constexpr std::uint32_t kActionsPerTid = 64;
constexpr std::uint32_t kNoId = ~std::uint32_t{0};

/// Thrown into a controlled thread granted the token while the
/// scheduler is aborting the execution; caught by the thread wrapper.
struct McAbort {};

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kStart: return "start";
    case OpKind::kAtomicLoad: return "load";
    case OpKind::kAtomicStore: return "store";
    case OpKind::kAtomicRmw: return "rmw";
    case OpKind::kFence: return "fence";
    case OpKind::kMutexLock: return "lock";
    case OpKind::kMutexTryLock: return "try-lock";
    case OpKind::kMutexUnlock: return "unlock";
    case OpKind::kCvWait: return "cv-wait";
    case OpKind::kCvTimedWait: return "cv-timed-wait";
    case OpKind::kCvNotifyOne: return "notify-one";
    case OpKind::kCvNotifyAll: return "notify-all";
    case OpKind::kJoin: return "join";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kYield: return "yield";
    case OpKind::kDrain: return "drain";
    case OpKind::kCommit: return "commit";
  }
  return "?";
}

const char* obj_prefix(ObjClass cls) {
  switch (cls) {
    case ObjClass::kNone: return "";
    case ObjClass::kAtomic: return "a";
    case ObjClass::kMutex: return "m";
    case ObjClass::kCv: return "c";
    case ObjClass::kThread: return "t";
  }
  return "?";
}

std::string format_schedule(const Schedule& schedule) {
  std::string out;
  for (std::size_t i = 0; i < schedule.choices.size(); ++i) {
    if (i) out.push_back(' ');
    out += std::to_string(schedule.choices[i]);
  }
  return out;
}

Schedule parse_schedule(const std::string& text) {
  Schedule schedule;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != tok.size()) {
      throw std::invalid_argument("parse_schedule: bad token '" + tok + "'");
    }
    schedule.choices.push_back(static_cast<std::uint32_t>(value));
  }
  return schedule;
}

namespace detail {

void model_misuse(const char* what, const char* site) {
  throw McFailure(std::string("model misuse: ") + what + " (" + site + ")");
}

void assert_fail(const char* expr, const char* file, int line) {
  std::string where(file);
  const std::size_t slash = where.find_last_of('/');
  if (slash != std::string::npos) where.erase(0, slash + 1);
  throw McFailure(std::string("MC_ASSERT failed: ") + expr + " at " + where +
                  ":" + std::to_string(line));
}

namespace {

struct StoreEntry {
  AtomicModel* obj;
  std::uint64_t value;
  bool release;      ///< may only commit as the oldest entry
  bool fence_guard;  ///< a release fence precedes: same constraint
};

struct ThreadRec {
  int tid = -1;
  std::thread sys;
  bool parked = false;    // guarded by Scheduler::m_
  bool finished = false;  // guarded by Scheduler::m_
  OpDesc op{OpKind::kStart};
  std::vector<StoreEntry> buffer;
  bool fence_active = false;
};

/// One schedulable choice, with enough op identity recorded for the
/// sleep-set dependence check and the human-readable trace.
struct Choice {
  std::uint32_t code;  // tid * 64 + action
  int tid;
  int action;  // 0 = run announced op, 1+j = commit buffer entry j
  OpKind kind;
  ObjClass cls;
  std::uint32_t obj;
  const char* site;
};

enum class ExecStatus { kOk, kFailed, kPruned };

class Scheduler;
thread_local Scheduler* tls_sched = nullptr;
thread_local int tls_tid = -1;
thread_local ThreadRec* tls_rec = nullptr;

class Scheduler {
 public:
  Result run(const std::function<void()>& body, const Options& opts) {
    opts_ = opts;
    if (opts_.mode == Options::Mode::kRandom) return run_random(body);
    return run_dfs(body);
  }

  Result run_replay(const std::function<void()>& body,
                    const Schedule& schedule, const Options& opts) {
    opts_ = opts;
    Result result;
    replay_list_ = &schedule.choices;
    replay_pos_ = 0;
    ExecStatus status = run_execution(body, [&](const std::vector<Choice>& eligible) {
      if (replay_pos_ >= replay_list_->size()) {
        // Schedule exhausted with the body still making choices: the
        // original execution ended here (in a failure the recorded
        // choices stop at the failing step), so anything more means
        // the pinned schedule no longer matches the body.
        fail("replay: schedule exhausted before the execution ended");
        return -1;
      }
      const std::uint32_t want = (*replay_list_)[replay_pos_++];
      for (std::size_t i = 0; i < eligible.size(); ++i) {
        if (eligible[i].code == want) return static_cast<int>(i);
      }
      fail("replay: schedule diverged (choice " + std::to_string(want) +
           " not enabled at step " + std::to_string(trace_.size()) + ")");
      return -1;
    });
    if (status == ExecStatus::kOk && replay_pos_ < replay_list_->size()) {
      // The body finished with choices left over: it no longer matches
      // the schedule (e.g. a pinned schedule from different code).
      fail("replay: execution ended with " +
           std::to_string(replay_list_->size() - replay_pos_) +
           " schedule choices unconsumed");
      status = ExecStatus::kFailed;
    }
    result.schedules = 1;
    result.steps = steps_run_;
    finish_result(result, status);
    replay_list_ = nullptr;
    return result;
  }

  // ----- hooks called by the primitives (see PrimHooks) -----

  bool yield_op(const OpDesc& op) {
    ThreadRec& t = *tls_rec;
    std::unique_lock<std::mutex> lk(m_);
    t.op = op;
    t.parked = true;
    token_ = kCoordinator;
    cv_.notify_all();
    cv_.wait(lk, [&] { return token_ == t.tid; });
    if (abort_) {
      // Unlock and notify are announced from noexcept contexts
      // (~LockGuard, CondVar::notify_*); throwing the abort unwinder
      // through them would std::terminate.  Let those ops complete —
      // abort_all() re-grants this thread until it parks at an
      // interruptible operation (or its function returns).
      const bool noexcept_ctx = op.kind == OpKind::kMutexUnlock ||
                                op.kind == OpKind::kCvNotifyOne ||
                                op.kind == OpKind::kCvNotifyAll ||
                                op.unwind_ctx;
      if (!noexcept_ctx) {
        lk.unlock();
        throw McAbort{};
      }
    }
    return true;
  }

  std::uint32_t register_object(ObjClass cls) {
    return obj_counters_[static_cast<std::size_t>(cls)]++;
  }

  const Options& options() const { return opts_; }

  bool suppress_notify(std::uint32_t cv_id) {
    if (opts_.suppress_notify_cv < 0 ||
        static_cast<std::uint32_t>(opts_.suppress_notify_cv) != cv_id) {
      return false;
    }
    const int seen = suppress_seen_++;
    return opts_.suppress_notify_nth < 0 || opts_.suppress_notify_nth == seen;
  }

  void buffer_store(AtomicModel* a, std::uint64_t v, bool release) {
    ThreadRec& t = *tls_rec;
    t.buffer.push_back(
        StoreEntry{a, v, release, t.fence_active && !t.buffer.empty()});
  }

  bool buffer_lookup(const AtomicModel* a, std::uint64_t* v) const {
    const ThreadRec& t = *tls_rec;
    for (auto it = t.buffer.rbegin(); it != t.buffer.rend(); ++it) {
      if (it->obj == a) {
        *v = it->value;
        return true;
      }
    }
    return false;
  }

  void buffer_flush() {
    ThreadRec& t = *tls_rec;
    for (const StoreEntry& e : t.buffer) e.obj->committed = e.value;
    t.buffer.clear();
    t.fence_active = false;
  }

  void buffer_fence() {
    ThreadRec& t = *tls_rec;
    if (!t.buffer.empty()) t.fence_active = true;
  }

  int spawn(std::function<void()> fn) {
    OpDesc op{OpKind::kSpawn, ObjClass::kThread,
              static_cast<std::uint32_t>(threads_.size()), "Thread::Thread"};
    if (!yield_op(op)) return -1;
    const int tid = static_cast<int>(threads_.size());
    if (tid >= kMaxThreads) {
      model_misuse("too many threads (max 62)", "Thread::Thread");
    }
    auto rec = std::make_unique<ThreadRec>();
    ThreadRec& t = *rec;
    t.tid = tid;
    {
      // The coordinator iterates `threads_` from the cv_ predicate, so
      // the vector only ever mutates under m_.
      std::lock_guard<std::mutex> lk(m_);
      threads_.push_back(std::move(rec));
    }
    t.sys = std::thread([this, rec_ptr = &t, fn = std::move(fn)] {
      thread_main(rec_ptr, fn);
    });
    return tid;
  }

  void join(int target) {
    OpDesc op{OpKind::kJoin, ObjClass::kThread,
              static_cast<std::uint32_t>(target), "Thread::join"};
    op.join_tid = target;
    if (!yield_op(op)) return;  // unreachable: yield_op throws or true
    // Eligibility guaranteed target finished; reap the system thread.
    ThreadRec& t = *threads_[static_cast<std::size_t>(target)];
    if (t.sys.joinable()) t.sys.join();
  }

  /// Join for the unwind path (~Thread while an McFailure or McAbort
  /// propagates).  The unwinder still holds the scheduling token, so a
  /// plain sys.join() on an unfinished target would deadlock the whole
  /// checker: the target may be parked mid-body or draining its store
  /// buffer and only the coordinator can advance it.  Instead, park as
  /// a join op and hand the token back; the coordinator runs the
  /// target to completion (or abort_all() does, younger threads
  /// first), then grants us.  unwind_ctx makes an abort grant complete
  /// normally — throwing McAbort through an active unwind would
  /// std::terminate.
  void join_unwind(int target) {
    ThreadRec& t = *threads_[static_cast<std::size_t>(target)];
    bool finished;
    {
      std::lock_guard<std::mutex> lk(m_);
      finished = t.finished;
    }
    if (!finished) {
      OpDesc op{OpKind::kJoin, ObjClass::kThread,
                static_cast<std::uint32_t>(target), "Thread::~Thread(unwind)"};
      op.join_tid = target;
      op.unwind_ctx = true;
      yield_op(op);
    }
    if (t.sys.joinable()) t.sys.join();
  }

 private:
  // Chooser: index into the eligible list, or -1 to prune/abort.
  using Chooser = std::function<int(const std::vector<Choice>&)>;

  // ----- per-execution engine -----

  ExecStatus run_execution(const std::function<void()>& body,
                           const Chooser& choose) {
    threads_.clear();
    obj_counters_.fill(0);
    failed_ = false;
    fail_msg_.clear();
    abort_ = false;
    token_ = kCoordinator;
    choices_.clear();
    trace_.clear();
    steps_run_ = 0;
    cur_tid_ = -1;
    suppress_seen_ = 0;

    threads_.push_back(std::make_unique<ThreadRec>());
    ThreadRec& t0 = *threads_.back();
    t0.tid = 0;
    t0.sys = std::thread([this, rec_ptr = &t0, &body] {
      thread_main(rec_ptr, body);
    });

    ExecStatus status = ExecStatus::kOk;
    for (;;) {
      bool failed_now = false;
      bool all_done = true;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] {
          return token_ == kCoordinator &&
                 (failed_ || all_parked_or_finished());
        });
        failed_now = failed_;
        for (const auto& t : threads_) {
          if (!t->finished) all_done = false;
        }
      }
      if (failed_now) {
        status = ExecStatus::kFailed;
        break;
      }
      if (all_done) {
        status = ExecStatus::kOk;
        break;
      }
      std::vector<Choice> eligible = compute_eligible();
      if (eligible.empty()) {
        fail(deadlock_message());
        status = ExecStatus::kFailed;
        break;
      }
      if (steps_run_ >= opts_.max_steps) {
        fail("step budget exceeded (" + std::to_string(opts_.max_steps) +
             " steps): livelock or unbounded spin");
        status = ExecStatus::kFailed;
        break;
      }
      const int idx = choose(eligible);
      if (idx < 0) {
        status = failed_ ? ExecStatus::kFailed : ExecStatus::kPruned;
        break;
      }
      const Choice c = eligible[static_cast<std::size_t>(idx)];
      choices_.push_back(c.code);
      trace_.push_back(c);
      ++steps_run_;
      if (c.action > 0) {
        execute_commit(c.tid, c.action - 1);
        continue;
      }
      cur_tid_ = c.tid;
      std::lock_guard<std::mutex> lk(m_);
      threads_[static_cast<std::size_t>(c.tid)]->parked = false;
      token_ = c.tid;
      cv_.notify_all();
    }
    abort_all();
    return status;
  }

  void thread_main(ThreadRec* rec, const std::function<void()>& fn) {
    tls_sched = this;
    tls_tid = rec->tid;
    tls_rec = rec;
    const int tid = rec->tid;
    ThreadRec& t = *rec;
    try {
      {
        std::unique_lock<std::mutex> lk(m_);
        t.parked = true;
        cv_.notify_all();
        cv_.wait(lk, [&] { return token_ == tid; });
        if (abort_) throw McAbort{};
      }
      fn();
      // A finished function's buffered stores remain schedulable: park
      // until every entry has committed (kDrain is eligible only with
      // an empty buffer), so a late out-of-order commit interleaving
      // with other threads stays explorable right up to thread exit.
      while (!t.buffer.empty()) {
        OpDesc drain{OpKind::kDrain, ObjClass::kNone, 0, "thread-exit"};
        yield_op(drain);
      }
    } catch (const McAbort&) {
    } catch (const McFailure& f) {
      fail(std::string(f.what()) + " (thread t" + std::to_string(tid) + ")");
    } catch (const std::exception& e) {
      fail(std::string("uncaught exception in thread t") +
           std::to_string(tid) + ": " + e.what());
    }
    // Aborted threads abandon their store buffer: nothing uncommitted
    // becomes visible from a cancelled execution.
    t.buffer.clear();
    std::lock_guard<std::mutex> lk(m_);
    t.finished = true;
    t.parked = false;
    token_ = kCoordinator;
    cv_.notify_all();
  }

  bool all_parked_or_finished() const {
    for (const auto& t : threads_) {
      if (!t->finished && !t->parked) return false;
    }
    return true;
  }

  void fail(const std::string& msg) {
    std::lock_guard<std::mutex> lk(m_);
    if (!failed_) {
      failed_ = true;
      fail_msg_ = msg;
    }
  }

  std::string deadlock_message() const {
    std::string msg = "deadlock: no eligible thread;";
    for (const auto& t : threads_) {
      if (t->finished) continue;
      msg += " t" + std::to_string(t->tid) + " blocked in " +
             op_name(t->op.kind);
      if (t->op.cls != ObjClass::kNone) {
        msg += std::string(" ") + obj_prefix(t->op.cls) +
               std::to_string(t->op.obj);
      }
      msg += ";";
    }
    return msg;
  }

  bool thread_eligible(const ThreadRec& t) const {
    if (t.finished || !t.parked) return false;
    switch (t.op.kind) {
      case OpKind::kMutexLock:
        return !t.op.mutex->locked;
      case OpKind::kCvTimedWait:
        // The timeout path keeps a timed wait always grantable (once
        // the lock can be retaken); a pending signal is preferred at
        // wake time, but time itself is not modeled.
        return !t.op.mutex->locked;
      case OpKind::kCvWait: {
        if (t.op.mutex->locked) return false;
        const std::uint64_t bit = std::uint64_t{1} << t.tid;
        if (t.op.cv->woken & bit) return true;
        for (const std::uint64_t mask : t.op.cv->signals) {
          if (mask & bit) return true;
        }
        return false;
      }
      case OpKind::kJoin:
        return threads_[static_cast<std::size_t>(t.op.join_tid)]->finished;
      case OpKind::kDrain:
        // Grantable only once every buffered store has committed (via
        // scheduled kCommit steps), so a thread cannot finish with
        // stores still invisible to the rest of the execution.
        return t.buffer.empty();
      default:
        return true;
    }
  }

  bool commit_committable(const ThreadRec& t, std::size_t j) const {
    const StoreEntry& e = t.buffer[j];
    if (j > 0 && (e.release || e.fence_guard)) return false;
    for (std::size_t i = 0; i < j; ++i) {
      if (t.buffer[i].obj == e.obj) return false;  // per-object coherence
    }
    return true;
  }

  /// Deterministic order: the currently running thread first, the rest
  /// by ascending tid, store-buffer commits last.
  std::vector<Choice> compute_eligible() const {
    std::vector<Choice> out;
    auto add_run = [&](const ThreadRec& t) {
      if (!thread_eligible(t)) return;
      out.push_back(Choice{
          static_cast<std::uint32_t>(t.tid) * kActionsPerTid, t.tid, 0,
          t.op.kind, t.op.cls, t.op.obj, t.op.site});
    };
    if (cur_tid_ >= 0 &&
        static_cast<std::size_t>(cur_tid_) < threads_.size()) {
      add_run(*threads_[static_cast<std::size_t>(cur_tid_)]);
    }
    for (const auto& t : threads_) {
      if (t->tid != cur_tid_) add_run(*t);
    }
    for (const auto& t : threads_) {
      const std::size_t limit =
          std::min<std::size_t>(t->buffer.size(), kActionsPerTid - 1);
      for (std::size_t j = 0; j < limit; ++j) {
        if (!commit_committable(*t, j)) continue;
        out.push_back(Choice{static_cast<std::uint32_t>(t->tid) *
                                     kActionsPerTid +
                                 1 + static_cast<std::uint32_t>(j),
                             t->tid, 1 + static_cast<int>(j), OpKind::kCommit,
                             ObjClass::kAtomic, t->buffer[j].obj->id,
                             "commit"});
      }
    }
    return out;
  }

  void execute_commit(int tid, int j) {
    ThreadRec& t = *threads_[static_cast<std::size_t>(tid)];
    const StoreEntry e = t.buffer[static_cast<std::size_t>(j)];
    e.obj->committed = e.value;
    t.buffer.erase(t.buffer.begin() + j);
    if (t.buffer.empty()) t.fence_active = false;
  }

  /// Serialized unwind of whatever threads remain (no-op when all
  /// finished): younger threads first, the body (t0) last, each run to
  /// completion before the next is granted.
  void abort_all() {
    {
      std::lock_guard<std::mutex> lk(m_);
      abort_ = true;
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = static_cast<int>(threads_.size()) - 1; i >= 0; --i) {
        if ((pass == 0) == (i == 0)) continue;  // pass 0: all but t0
        ThreadRec& t = *threads_[static_cast<std::size_t>(i)];
        std::unique_lock<std::mutex> lk(m_);
        // Re-grant until the thread finishes: an abort grant at an
        // unlock/notify op completes that op and parks again.
        while (!t.finished) {
          cv_.wait(lk, [&] { return t.finished || t.parked; });
          if (t.finished) break;
          t.parked = false;
          token_ = t.tid;
          cv_.notify_all();
          cv_.wait(lk, [&] { return t.finished || t.parked; });
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      abort_ = false;
      token_ = kCoordinator;
    }
    for (const auto& t : threads_) {
      if (t->sys.joinable()) t->sys.join();
    }
  }

  void finish_result(Result& result, ExecStatus status) {
    if (status != ExecStatus::kFailed) return;
    result.failed = true;
    result.message = fail_msg_;
    result.failing.choices = choices_;
    std::string trace;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const Choice& c = trace_[i];
      trace += "  step " + std::to_string(i) + ": t" +
               std::to_string(c.tid) + " " + op_name(c.kind);
      if (c.cls != ObjClass::kNone) {
        trace += std::string(" ") + obj_prefix(c.cls) + std::to_string(c.obj);
      }
      if (c.site && c.site[0]) trace += std::string(" @") + c.site;
      trace += "\n";
    }
    trace += "  => " + fail_msg_ + "\n";
    result.trace = trace;
  }

  // ----- exhaustive DFS with preemption bounding + sleep sets -----

  /// Ops on the same object conflict unless both only read; thread
  /// management is conservatively dependent with everything.  Used
  /// only to shrink sleep sets — over-reporting dependence costs
  /// pruning, never soundness.
  static bool dependent(const Choice& a, const Choice& b) {
    if (a.tid == b.tid) return true;
    auto global = [](OpKind k) {
      return k == OpKind::kStart || k == OpKind::kSpawn ||
             k == OpKind::kJoin || k == OpKind::kFence ||
             k == OpKind::kDrain;
    };
    if (global(a.kind) || global(b.kind)) return true;
    if (a.cls == ObjClass::kNone || b.cls == ObjClass::kNone) return false;
    if (a.cls != b.cls || a.obj != b.obj) return false;
    return !(a.kind == OpKind::kAtomicLoad && b.kind == OpKind::kAtomicLoad);
  }

  struct Frame {
    std::vector<Choice> enabled;  ///< candidates after sleep/bound filter
    std::size_t next = 0;         ///< index followed this execution
    std::vector<Choice> slept;    ///< inherited sleep set (thread-runs only)
    std::vector<Choice> done;     ///< explored siblings
    int preempt_used = 0;         ///< context switches spent on the prefix
    int cur_tid_before = -1;      ///< running thread on arrival
  };

  Result run_dfs(const std::function<void()>& body) {
    Result result;
    std::vector<Frame> stack;
    while (result.schedules < opts_.max_schedules) {
      ++result.schedules;
      std::size_t depth = 0;
      const ExecStatus status = run_execution(body, [&](const std::vector<Choice>& eligible) {
        if (depth < stack.size()) {
          // Prefix replay: follow the frame's current choice, checking
          // the body is actually deterministic.
          Frame& frame = stack[depth];
          const std::uint32_t want = frame.enabled[frame.next].code;
          for (std::size_t i = 0; i < eligible.size(); ++i) {
            if (eligible[i].code == want) {
              ++depth;
              return static_cast<int>(i);
            }
          }
          fail("nondeterminism detected: recorded choice " +
               std::to_string(want) + " not enabled on re-execution " +
               "(the body must not use real time, randomness, or " +
               "uninstrumented synchronization)");
          return -1;
        }
        // Frontier: build a new frame.
        Frame frame;
        frame.cur_tid_before = cur_tid_;
        if (!stack.empty()) {
          const Frame& parent = stack.back();
          const Choice& chosen = parent.enabled[parent.next];
          frame.preempt_used = parent.preempt_used +
                               switch_cost(parent, chosen);
          for (const Choice& s : parent.slept) {
            if (!dependent(s, chosen)) frame.slept.push_back(s);
          }
          for (const Choice& s : parent.done) {
            if (s.action == 0 && !dependent(s, chosen)) {
              frame.slept.push_back(s);
            }
          }
        }
        for (const Choice& c : eligible) {
          if (c.action == 0) {
            bool sleeping = false;
            for (const Choice& s : frame.slept) {
              if (s.tid == c.tid && s.code == c.code) sleeping = true;
            }
            if (sleeping) continue;
            if (opts_.preemption_bound >= 0 &&
                frame.preempt_used + choice_cost(c, eligible) >
                    opts_.preemption_bound) {
              continue;
            }
          }
          frame.enabled.push_back(c);
        }
        if (frame.enabled.empty()) return -1;  // fully slept: prune
        stack.push_back(std::move(frame));
        const Choice& chosen = stack.back().enabled[0];
        ++depth;
        for (std::size_t i = 0; i < eligible.size(); ++i) {
          if (eligible[i].code == chosen.code) return static_cast<int>(i);
        }
        return -1;  // unreachable
      });
      result.steps += steps_run_;
      if (status == ExecStatus::kFailed) {
        finish_result(result, status);
        return result;
      }
      // Backtrack to the deepest frame with an untried sibling.
      bool more = false;
      while (!stack.empty()) {
        Frame& top = stack.back();
        top.done.push_back(top.enabled[top.next]);
        ++top.next;
        if (top.next < top.enabled.size()) {
          more = true;
          break;
        }
        stack.pop_back();
      }
      if (!more) return result;  // state space exhausted
    }
    result.budget_exhausted = true;
    return result;
  }

  /// Cost of the switch the parent actually made (for the child's
  /// preemption budget).
  int switch_cost(const Frame& parent, const Choice& chosen) const {
    if (chosen.action != 0) return 0;  // commits are not switches
    if (parent.cur_tid_before < 0 || chosen.tid == parent.cur_tid_before) {
      return 0;
    }
    // Switching away from a thread that could have continued is a
    // preemption; switching away from a blocked one is free.
    for (const Choice& c : parent.enabled) {
      if (c.action == 0 && c.tid == parent.cur_tid_before) return 1;
    }
    // The previous thread may have been filtered from `enabled` by the
    // sleep set while still eligible; check the recorded list instead.
    return 0;
  }

  /// Same computation against the *current* eligible list, for
  /// filtering frontier candidates.
  int choice_cost(const Choice& c, const std::vector<Choice>& eligible) const {
    if (c.action != 0) return 0;
    if (cur_tid_ < 0 || c.tid == cur_tid_) return 0;
    for (const Choice& e : eligible) {
      if (e.action == 0 && e.tid == cur_tid_) return 1;
    }
    return 0;
  }

  Result run_random(const std::function<void()>& body) {
    Result result;
    for (std::uint64_t i = 0; i < opts_.max_schedules; ++i) {
      ++result.schedules;
      std::uint64_t rng = opts_.seed + 0x632be59bd9b4e019ULL * (i + 1);
      const ExecStatus status = run_execution(body, [&](const std::vector<Choice>& eligible) {
        return static_cast<int>(splitmix64(rng) % eligible.size());
      });
      result.steps += steps_run_;
      if (status == ExecStatus::kFailed) {
        finish_result(result, status);
        return result;
      }
    }
    result.budget_exhausted = true;
    return result;
  }

  // ----- state -----

  std::mutex m_;
  std::condition_variable cv_;
  int token_ = kCoordinator;
  bool abort_ = false;
  bool failed_ = false;
  std::string fail_msg_;

  Options opts_;
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  std::array<std::uint32_t, 5> obj_counters_{};
  std::vector<std::uint32_t> choices_;
  std::vector<Choice> trace_;
  std::uint64_t steps_run_ = 0;
  int cur_tid_ = -1;
  int suppress_seen_ = 0;
  const std::vector<std::uint32_t>* replay_list_ = nullptr;
  std::size_t replay_pos_ = 0;
};

}  // namespace

// ----- PrimHooks: the bridge the header-only primitives call -----

bool PrimHooks::controlled() {
  return tls_sched != nullptr && tls_tid >= 0 &&
         std::uncaught_exceptions() == 0;
}

bool PrimHooks::yield(const OpDesc& op) {
  if (!controlled()) return false;
  return tls_sched->yield_op(op);
}

int PrimHooks::self_tid() { return tls_tid; }

std::uint32_t PrimHooks::register_object(ObjClass cls) {
  if (tls_sched == nullptr || tls_tid < 0) return kNoId;
  return tls_sched->register_object(cls);
}

const Options& PrimHooks::options() {
  static const Options kDefault;
  return tls_sched ? tls_sched->options() : kDefault;
}

bool PrimHooks::suppress_notify(std::uint32_t cv_id) {
  if (!controlled()) return false;
  return tls_sched->suppress_notify(cv_id);
}

void PrimHooks::buffer_store(AtomicModel* a, std::uint64_t v, bool release) {
  tls_sched->buffer_store(a, v, release);
}

bool PrimHooks::buffer_lookup(const AtomicModel* a, std::uint64_t* v) {
  return tls_sched->buffer_lookup(a, v);
}

void PrimHooks::buffer_flush() { tls_sched->buffer_flush(); }

void PrimHooks::buffer_fence() { tls_sched->buffer_fence(); }

}  // namespace detail

// ----- public API -----

Thread::Thread(std::function<void()> fn) {
  if (!detail::PrimHooks::controlled()) {
    detail::model_misuse("mc::Thread outside an explore() body",
                         "Thread::Thread");
  }
  tid_ = detail::tls_sched->spawn(std::move(fn));
}

Thread::~Thread() noexcept(false) {
  if (!joined_) join();
}

void Thread::join() {
  if (joined_ || tid_ < 0) return;
  joined_ = true;
  if (detail::PrimHooks::controlled()) {
    detail::tls_sched->join(tid_);
  } else if (detail::tls_sched != nullptr) {
    detail::tls_sched->join_unwind(tid_);
  }
}

void yield() {
  detail::OpDesc op{OpKind::kYield, ObjClass::kNone, 0, "yield"};
  (void)detail::PrimHooks::yield(op);
}

Result explore(const std::function<void()>& body, const Options& opts) {
  detail::Scheduler scheduler;
  return scheduler.run(body, opts);
}

Result explore_iterative(const std::function<void()>& body,
                         int max_preemptions, Options opts) {
  Result total;
  for (int bound = 0; bound <= max_preemptions; ++bound) {
    opts.preemption_bound = bound;
    Result round = explore(body, opts);
    total.schedules += round.schedules;
    total.steps += round.steps;
    total.budget_exhausted = round.budget_exhausted;
    if (round.failed) {
      total.failed = true;
      total.failing = std::move(round.failing);
      total.message = std::move(round.message);
      total.trace = std::move(round.trace);
      return total;
    }
  }
  return total;
}

Result replay(const std::function<void()>& body, const Schedule& schedule,
              const Options& opts) {
  detail::Scheduler scheduler;
  return scheduler.run_replay(body, schedule, opts);
}

}  // namespace vlsa::mc
