#pragma once
// The cooperative scheduler at the heart of the model checker
// (docs/model_checking.md).  CHESS/Loom style, stateless:
//
//   * The test body and every mc::Thread it spawns run on *real*
//     std::threads, but exactly one is ever runnable — a token is
//     handed from the coordinator (the explore() caller) to one thread
//     and back per step, so an execution is a pure function of its
//     decision list.
//   * Instrumented primitives (primitives.hpp) announce each operation
//     and park; the coordinator computes which threads are *eligible*
//     (a thread blocked on a held mutex, an unsignaled condvar, or an
//     unfinished join simply is not), picks one choice, and grants it.
//     Blocked threads are never woken to retry — eligibility is a pure
//     function of the model state, recomputed every step.
//   * Exploration re-executes the body from scratch for every
//     schedule: exhaustive DFS (deterministic choice order, optional
//     preemption bound, sleep-set pruning) or seeded random walks.
//
// Failure modes reported with a replayable schedule: MC_ASSERT
// violations, global deadlock (no eligible choice with threads left),
// and step-budget exhaustion (livelock guard).

#include <cstdint>
#include <functional>
#include <string>

#include "mc/model.hpp"

namespace vlsa::mc {

// The hooks the instrumented primitives call into the scheduler live
// in primitives.hpp (detail::PrimHooks) and are implemented by
// sched.cpp.

/// A thread under the checker.  API-compatible subset of std::thread:
/// construct with a callable, join() exactly once (the destructor
/// joins if you did not).  Must be constructed from a controlled
/// thread (inside an explore()/replay() body).
class Thread {
 public:
  explicit Thread(std::function<void()> fn);
  /// Joins if join() was never called; may propagate the abort
  /// unwinder when the execution is being torn down.
  ~Thread() noexcept(false);

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void join();
  bool joinable() const { return !joined_; }

  /// The checker's id for this thread ("t1", "t2", ... in schedules).
  int tid() const { return tid_; }

 private:
  int tid_ = -1;
  bool joined_ = false;
};

/// Explicit scheduling point — lets a plain-computation loop be
/// preempted (rarely needed; every primitive op already yields).
void yield();

/// Run `body` under the checker, exploring schedules per `opts`.
/// The body executes as thread t0; it may spawn mc::Thread workers and
/// must join them before returning.  Returns after the first failing
/// schedule (Result::failed, with the replayable decision list) or
/// when exploration finishes/exhausts its budget.
Result explore(const std::function<void()>& body, const Options& opts = {});

/// Iterative preemption bounding: explore with bound 0, 1, ... up to
/// `max_preemptions`, returning the first failure found — which is
/// therefore a minimal-preemption counterexample.  Schedule/step
/// counts accumulate across rounds.
Result explore_iterative(const std::function<void()>& body,
                         int max_preemptions, Options opts = {});

/// Re-execute `body` under one fixed decision list (e.g. a pinned
/// failing schedule).  Deterministic: the same schedule reproduces the
/// same failure.  A schedule that diverges from the body's actual
/// choice points is itself reported as a failure.
Result replay(const std::function<void()>& body, const Schedule& schedule,
              const Options& opts = {});

}  // namespace vlsa::mc
