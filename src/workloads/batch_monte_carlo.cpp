#include "workloads/batch_monte_carlo.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "sim/batch_engine.hpp"
#include "util/parallel.hpp"

namespace vlsa::workloads {

namespace {

// Shard granularity: 512 batches per shard (512 * lanes trials).
// Fixed (not derived from the thread count) so the shard -> substream
// mapping, and with it every tally, is identical at any parallelism.
constexpr long long kBatchesPerShard = 512;

}  // namespace

void BatchMcTally::merge(const BatchMcTally& other) {
  trials += other.trials;
  flagged += other.flagged;
  wrong += other.wrong;
  if (run_histogram.size() < other.run_histogram.size()) {
    run_histogram.resize(other.run_histogram.size(), 0);
  }
  for (std::size_t i = 0; i < other.run_histogram.size(); ++i) {
    run_histogram[i] += other.run_histogram[i];
  }
}

double BatchMcResult::flag_rate() const {
  return tally.trials == 0
             ? 0.0
             : static_cast<double>(tally.flagged) / tally.trials;
}

double BatchMcResult::error_rate() const {
  return tally.trials == 0 ? 0.0
                           : static_cast<double>(tally.wrong) / tally.trials;
}

BatchMcResult run_batch_monte_carlo(const BatchMcConfig& config) {
  if (config.width < 1 || config.window < 1) {
    throw std::invalid_argument("batch Monte-Carlo: bad width/window");
  }
  if (config.trials < 1) {
    throw std::invalid_argument("batch Monte-Carlo: need at least 1 trial");
  }
  if (config.threads < 1) {
    throw std::invalid_argument("batch Monte-Carlo: need at least 1 thread");
  }
  if (config.lanes != 0 &&
      (config.lanes < 64 || config.lanes > sim::kMaxBatchLanes ||
       config.lanes % 64 != 0)) {
    throw std::invalid_argument(
        "batch Monte-Carlo: lanes must be 0 or a multiple of 64 in "
        "[64, 512]");
  }

  const int lanes = config.lanes == 0 ? sim::active_lanes() : config.lanes;
  const long long batches = (config.trials + lanes - 1) / lanes;
  const int shards =
      static_cast<int>((batches + kBatchesPerShard - 1) / kBatchesPerShard);
  const util::Rng master(config.seed);

  std::vector<BatchMcTally> partial(shards);
  const auto t0 = std::chrono::steady_clock::now();
  util::parallel_for_shards(shards, config.threads, [&](int shard) {
    util::Rng rng = master.split(static_cast<std::uint64_t>(shard));
    const long long first_batch = shard * kBatchesPerShard;
    const long long n_batches =
        std::min(kBatchesPerShard, batches - first_batch);

    BatchMcTally& tally = partial[shard];
    if (config.collect_runs) {
      tally.run_histogram.assign(config.width + 1, 0);
    }
    sim::WideBatch batch(config.width, lanes);
    sim::WideResult result;
    for (long long i = 0; i < n_batches; ++i) {
      sim::fill_uniform(rng, batch);
      if (config.subtract) {
        sim::wide_aca_sub_into(batch, config.window, result);
      } else {
        sim::wide_aca_add_into(batch, config.window, /*carry_in=*/nullptr,
                               result);
      }
      tally.trials += lanes;
      for (const std::uint64_t m : result.flagged) {
        tally.flagged += std::popcount(m);
      }
      for (const std::uint64_t m : result.wrong) {
        tally.wrong += std::popcount(m);
      }
      if (config.collect_runs) {
        const auto runs = sim::wide_longest_runs(batch);
        for (int run : runs) tally.run_histogram[run] += 1;
      }
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  BatchMcResult out;
  out.shards = shards;
  out.threads = config.threads;
  out.lanes = lanes;
  out.isa = sim::resolved_isa(sim::active_isa(), lanes);
  for (const auto& tally : partial) out.tally.merge(tally);
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.trials_per_sec =
      out.seconds > 0.0 ? out.tally.trials / out.seconds : 0.0;
  return out;
}

}  // namespace vlsa::workloads
