#include "workloads/operand_stream.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace vlsa::workloads {

std::vector<Distribution> all_distributions() {
  return {Distribution::Uniform,       Distribution::SmallOperands,
          Distribution::SparseLow,     Distribution::SparseHigh,
          Distribution::Correlated,    Distribution::Complementary,
          Distribution::Counter};
}

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::Uniform:
      return "uniform";
    case Distribution::SmallOperands:
      return "small-operands";
    case Distribution::SparseLow:
      return "sparse-low";
    case Distribution::SparseHigh:
      return "sparse-high";
    case Distribution::Correlated:
      return "correlated";
    case Distribution::Complementary:
      return "complementary";
    case Distribution::Counter:
      return "counter";
  }
  throw std::invalid_argument("distribution_name: bad distribution");
}

TraceStream::TraceStream(std::vector<std::pair<BitVec, BitVec>> trace,
                         int width)
    : trace_(std::move(trace)), width_(width) {
  if (trace_.empty()) {
    throw std::invalid_argument("TraceStream: empty trace");
  }
  for (auto& [a, b] : trace_) {
    if (a.width() != width || b.width() != width) {
      throw std::invalid_argument("TraceStream: width mismatch in trace");
    }
  }
}

TraceStream TraceStream::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::vector<std::pair<std::string, std::string>> raw;
  std::size_t digits = 0;
  std::size_t line_no = 0;
  const auto bad = [&line_no](const std::string& what) {
    throw std::invalid_argument("TraceStream: line " +
                                std::to_string(line_no) + ": " + what);
  };
  const auto check_hex = [&bad](const std::string& token) {
    for (char c : token) {
      if (!std::isxdigit(static_cast<unsigned char>(c))) {
        bad(std::string("invalid hex digit '") + c + "' in operand '" +
            token + "'");
      }
    }
  };
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string a, b, extra;
    ls >> a;
    if (a.empty() || a[0] == '#') continue;  // blank or comment line
    if (!(ls >> b) || b[0] == '#') {
      bad("expected two hex operands, got one");
    }
    if (ls >> extra && extra[0] != '#') {
      bad("trailing garbage '" + extra + "' after operands");
    }
    check_hex(a);
    check_hex(b);
    digits = std::max({digits, a.size(), b.size()});
    raw.emplace_back(a, b);
  }
  if (raw.empty()) throw std::invalid_argument("TraceStream: empty trace");
  const int width = static_cast<int>(digits) * 4;
  std::vector<std::pair<BitVec, BitVec>> trace;
  trace.reserve(raw.size());
  for (auto& [a, b] : raw) {
    trace.emplace_back(
        BitVec::from_hex(std::string(digits - a.size(), '0') + a),
        BitVec::from_hex(std::string(digits - b.size(), '0') + b));
  }
  return TraceStream(std::move(trace), width);
}

std::pair<BitVec, BitVec> TraceStream::next() {
  const auto& op = trace_[cursor_];
  cursor_ = (cursor_ + 1) % trace_.size();
  return op;
}

std::string TraceStream::to_text() const {
  std::ostringstream os;
  for (const auto& [a, b] : trace_) {
    os << a.to_hex() << ' ' << b.to_hex() << '\n';
  }
  return os.str();
}

OperandStream::OperandStream(Distribution distribution, int width,
                             std::uint64_t seed)
    : distribution_(distribution),
      width_(width),
      rng_(seed),
      counter_(width) {
  if (width < 1) throw std::invalid_argument("OperandStream: width < 1");
}

BitVec OperandStream::biased_bits(double p_one) {
  BitVec v(width_);
  for (int i = 0; i < width_; ++i) v.set_bit(i, rng_.next_bool(p_one));
  return v;
}

std::pair<BitVec, BitVec> OperandStream::next() {
  switch (distribution_) {
    case Distribution::Uniform:
      return {rng_.next_bits(width_), rng_.next_bits(width_)};
    case Distribution::SmallOperands: {
      const int active = std::max(1, width_ / 4);
      const BitVec a = rng_.next_bits(active).resized(width_);
      const BitVec b = rng_.next_bits(active).resized(width_);
      return {a, b};
    }
    case Distribution::SparseLow:
      return {biased_bits(0.125), biased_bits(0.125)};
    case Distribution::SparseHigh:
      return {biased_bits(0.875), biased_bits(0.875)};
    case Distribution::Correlated: {
      // Accumulator-style: b = a + delta with a small random delta.
      const BitVec a = rng_.next_bits(width_);
      const int delta_bits = std::max(1, width_ / 8);
      const BitVec delta = rng_.next_bits(delta_bits).resized(width_);
      return {a, a + delta};
    }
    case Distribution::Complementary: {
      // b = ~a with a few random flips: almost every position propagates,
      // so the longest propagate chain is Θ(n) — worst case for the ACA.
      const BitVec a = rng_.next_bits(width_);
      BitVec b = ~a;
      const int flips = std::max(1, width_ / 32);
      for (int i = 0; i < flips; ++i) {
        const int pos = static_cast<int>(rng_.next_below(
            static_cast<std::uint64_t>(width_)));
        b.set_bit(pos, !b.bit(pos));
      }
      return {a, b};
    }
    case Distribution::Counter: {
      counter_ = counter_ + BitVec::from_u64(width_, 1);
      return {counter_, BitVec::from_u64(width_, 1)};
    }
  }
  throw std::logic_error("OperandStream::next: bad distribution");
}

}  // namespace vlsa::workloads
