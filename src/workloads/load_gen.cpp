#include "workloads/load_gen.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace vlsa::workloads {

namespace {

using Clock = std::chrono::steady_clock;

// Exponential variate with the given rate (events/sec), in seconds.
double exp_interval(util::Rng& rng, double rate_per_sec) {
  // 1 - next_double() is in (0, 1], so the log is finite.
  return -std::log(1.0 - rng.next_double()) / rate_per_sec;
}

// Two-state modulated Poisson process: on-state at burst_factor * rate,
// off-state scaled so the long-run mean is `rate`.  Sojourn times are
// exponential; interarrival sampling advances across state boundaries.
class ArrivalClock {
 public:
  ArrivalClock(const LoadGenConfig& config, util::Rng rng)
      : config_(config), rng_(std::move(rng)) {
    if (config_.arrival == ArrivalProcess::Bursty) {
      if (config_.burst_factor * config_.burst_fraction >= 1.0) {
        throw std::invalid_argument(
            "LoadGenConfig: burst_factor * burst_fraction must be < 1");
      }
      state_remaining_s_ = next_sojourn();
    }
  }

  /// Seconds (since the previous arrival) until the next one.
  double next_interval() {
    switch (config_.arrival) {
      case ArrivalProcess::Saturate:
        return 0.0;
      case ArrivalProcess::Poisson:
        return exp_interval(rng_, config_.rate_per_sec);
      case ArrivalProcess::Bursty: {
        double waited = 0.0;
        for (;;) {
          const double dt = exp_interval(rng_, current_rate());
          if (dt <= state_remaining_s_) {
            state_remaining_s_ -= dt;
            return waited + dt;
          }
          waited += state_remaining_s_;
          in_burst_ = !in_burst_;
          state_remaining_s_ = next_sojourn();
        }
      }
    }
    throw std::logic_error("ArrivalClock: bad arrival process");
  }

  /// Phase the most recently sampled arrival lands in (next_interval
  /// advances the on/off state machine before returning).
  bool in_burst() const { return in_burst_; }

 private:
  double current_rate() const {
    if (!in_burst_) {
      const double f = config_.burst_fraction;
      return config_.rate_per_sec * (1.0 - f * config_.burst_factor) /
             (1.0 - f);
    }
    return config_.rate_per_sec * config_.burst_factor;
  }

  double next_sojourn() {
    const double f = config_.burst_fraction;
    const double mean_s = in_burst_
                              ? config_.mean_burst_ms * 1e-3
                              : config_.mean_burst_ms * 1e-3 * (1.0 - f) / f;
    return exp_interval(rng_, 1.0 / mean_s);
  }

  const LoadGenConfig& config_;
  util::Rng rng_;
  bool in_burst_ = false;
  double state_remaining_s_ = 0.0;
};

}  // namespace

const char* arrival_process_name(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::Poisson:
      return "poisson";
    case ArrivalProcess::Bursty:
      return "bursty";
    case ArrivalProcess::Saturate:
      return "saturate";
  }
  throw std::invalid_argument("arrival_process_name: bad process");
}

LoadGenReport run_load_gen(service::AdderService& service,
                           const LoadGenConfig& config) {
  const int width = service.config().pipeline.width;
  OperandStream operands(config.distribution, width, config.seed);
  // Arrival times draw from an independent substream so changing the
  // operand distribution never reshapes the arrival process.
  ArrivalClock arrivals(config, util::Rng(config.seed).split(0x715e));

  LoadGenReport report;
  const auto start = Clock::now();
  auto scheduled = start;
  for (long long i = 0; i < config.requests; ++i) {
    scheduled += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(arrivals.next_interval()));
    // Open loop: sleep only when ahead of schedule; when behind, submit
    // immediately (catch-up burst) instead of thinning the load.
    if (scheduled > Clock::now()) std::this_thread::sleep_until(scheduled);
    auto [a, b] = operands.next();
    PhaseStats& phase = arrivals.in_burst() ? report.burst : report.steady;
    ++report.offered;
    ++phase.offered;
    // Completions are discarded here — the service records latency and
    // outcome telemetry for every request; see service.registry().
    const auto submit_start = Clock::now();
    const bool accepted =
        service.submit(std::move(a), std::move(b)).has_value();
    phase.submit_stall_s +=
        std::chrono::duration<double>(Clock::now() - submit_start).count();
    if (accepted) {
      ++report.accepted;
      ++phase.accepted;
    } else {
      ++report.rejected;
      ++phase.rejected;
    }
  }
  service.flush();
  report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_rate =
      report.seconds > 0.0 ? report.accepted / report.seconds : 0.0;
  return report;
}

}  // namespace vlsa::workloads
