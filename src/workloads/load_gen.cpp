#include "workloads/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <optional>
#include <vector>

#include "net/client.hpp"

namespace vlsa::workloads {

namespace {

using Clock = std::chrono::steady_clock;

// Exponential variate with the given rate (events/sec), in seconds.
double exp_interval(util::Rng& rng, double rate_per_sec) {
  // 1 - next_double() is in (0, 1], so the log is finite.
  return -std::log(1.0 - rng.next_double()) / rate_per_sec;
}

// Two-state modulated Poisson process: on-state at burst_factor * rate,
// off-state scaled so the long-run mean is `rate`.  Sojourn times are
// exponential; interarrival sampling advances across state boundaries.
class ArrivalClock {
 public:
  ArrivalClock(const LoadGenConfig& config, util::Rng rng)
      : config_(config), rng_(std::move(rng)) {
    if (config_.arrival == ArrivalProcess::Bursty) {
      if (config_.burst_factor * config_.burst_fraction >= 1.0) {
        throw std::invalid_argument(
            "LoadGenConfig: burst_factor * burst_fraction must be < 1");
      }
      state_remaining_s_ = next_sojourn();
    }
  }

  /// Seconds (since the previous arrival) until the next one.
  double next_interval() {
    switch (config_.arrival) {
      case ArrivalProcess::Saturate:
        return 0.0;
      case ArrivalProcess::Poisson:
        return exp_interval(rng_, config_.rate_per_sec);
      case ArrivalProcess::Bursty: {
        double waited = 0.0;
        for (;;) {
          const double dt = exp_interval(rng_, current_rate());
          if (dt <= state_remaining_s_) {
            state_remaining_s_ -= dt;
            return waited + dt;
          }
          waited += state_remaining_s_;
          in_burst_ = !in_burst_;
          state_remaining_s_ = next_sojourn();
        }
      }
    }
    throw std::logic_error("ArrivalClock: bad arrival process");
  }

  /// Phase the most recently sampled arrival lands in (next_interval
  /// advances the on/off state machine before returning).
  bool in_burst() const { return in_burst_; }

 private:
  double current_rate() const {
    if (!in_burst_) {
      const double f = config_.burst_fraction;
      return config_.rate_per_sec * (1.0 - f * config_.burst_factor) /
             (1.0 - f);
    }
    return config_.rate_per_sec * config_.burst_factor;
  }

  double next_sojourn() {
    const double f = config_.burst_fraction;
    const double mean_s = in_burst_
                              ? config_.mean_burst_ms * 1e-3
                              : config_.mean_burst_ms * 1e-3 * (1.0 - f) / f;
    return exp_interval(rng_, 1.0 / mean_s);
  }

  const LoadGenConfig& config_;
  util::Rng rng_;
  bool in_burst_ = false;
  double state_remaining_s_ = 0.0;
};

}  // namespace

const char* arrival_process_name(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::Poisson:
      return "poisson";
    case ArrivalProcess::Bursty:
      return "bursty";
    case ArrivalProcess::Saturate:
      return "saturate";
  }
  throw std::invalid_argument("arrival_process_name: bad process");
}

LoadGenReport run_load_gen(service::AdderService& service,
                           const LoadGenConfig& config) {
  const int width = service.config().pipeline.width;
  OperandStream operands(config.distribution, width, config.seed);
  // Arrival times draw from an independent substream so changing the
  // operand distribution never reshapes the arrival process.
  ArrivalClock arrivals(config, util::Rng(config.seed).split(0x715e));

  LoadGenReport report;
  const auto start = Clock::now();
  auto scheduled = start;
  for (long long i = 0; i < config.requests; ++i) {
    scheduled += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(arrivals.next_interval()));
    // Open loop: sleep only when ahead of schedule; when behind, submit
    // immediately (catch-up burst) instead of thinning the load.
    if (scheduled > Clock::now()) std::this_thread::sleep_until(scheduled);
    auto [a, b] = operands.next();
    PhaseStats& phase = arrivals.in_burst() ? report.burst : report.steady;
    ++report.offered;
    ++phase.offered;
    // Completions are discarded here — the service records latency and
    // outcome telemetry for every request; see service.registry().
    const auto submit_start = Clock::now();
    const bool accepted =
        service.submit(std::move(a), std::move(b)).has_value();
    phase.submit_stall_s +=
        std::chrono::duration<double>(Clock::now() - submit_start).count();
    if (accepted) {
      ++report.accepted;
      ++phase.accepted;
    } else {
      ++report.rejected;
      ++phase.rejected;
    }
  }
  service.flush();
  report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_rate =
      report.seconds > 0.0 ? report.accepted / report.seconds : 0.0;
  return report;
}

namespace {

/// One connection's share of the run (its own thread).
struct ConnStats {
  long long offered = 0;
  long long ok = 0;
  long long rejected = 0;
  long long errors = 0;
  long long recovered = 0;
};

/// Send timestamps for in-flight requests.  The client's ids are
/// sequential and at most `max_outstanding` are unanswered, so a
/// power-of-two ring indexed by id replaces a hash map on the
/// per-request hot path.  A zero timestamp means "not in flight".
class SentAtRing {
 public:
  explicit SentAtRing(int max_outstanding) {
    std::size_t cap = 1;
    while (cap < static_cast<std::size_t>(max_outstanding) * 2) cap <<= 1;
    slots_.resize(cap);
  }

  struct Sent {
    Clock::time_point at{};
    bool burst = false;  ///< arrival phase at send time
  };

  void insert(std::uint64_t id, Clock::time_point t, bool burst) {
    slots_[id & (slots_.size() - 1)] = Slot{id, t, burst};
  }

  /// Removes and returns the send record, or nullopt if unknown.
  std::optional<Sent> take(std::uint64_t id) {
    Slot& slot = slots_[id & (slots_.size() - 1)];
    if (slot.id != id || slot.at == Clock::time_point{}) return std::nullopt;
    const Sent sent{slot.at, slot.burst};
    slot.at = Clock::time_point{};
    return sent;
  }

  long long in_flight() const {
    long long n = 0;
    for (const auto& slot : slots_) {
      if (slot.at != Clock::time_point{}) ++n;
    }
    return n;
  }

 private:
  struct Slot {
    std::uint64_t id = 0;
    Clock::time_point at{};
    bool burst = false;
  };
  std::vector<Slot> slots_;
};

/// Client-observed e2e latency sinks: the aggregate and the per-phase
/// split (steady vs burst arrivals).  Phase attribution happens at
/// *send* time — what matters for tail analysis is what the request
/// experienced, and a request launched inside a burst rides the
/// congested queue no matter when its response lands.
struct E2eHistograms {
  telemetry::Histogram* all = nullptr;
  telemetry::Histogram* steady = nullptr;
  telemetry::Histogram* burst = nullptr;
};

void count_response(const net::ResponseFrame& response, SentAtRing& sent_at,
                    const E2eHistograms& e2e, ConnStats& stats) {
  if (const auto sent = sent_at.take(response.id)) {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             sent->at)
            .count());
    if (e2e.all != nullptr) e2e.all->record(ns);
    telemetry::Histogram* phase = sent->burst ? e2e.burst : e2e.steady;
    if (phase != nullptr) phase->record(ns);
  }
  switch (response.status) {
    case net::Status::Ok:
      ++stats.ok;
      if ((response.flags & net::kFlagRecovered) != 0) ++stats.recovered;
      break;
    case net::Status::Rejected:
      ++stats.rejected;
      break;
    case net::Status::Error:
      ++stats.errors;
      break;
  }
}

void run_connection(const NetLoadGenConfig& config, int index,
                    long long requests, ConnStats& stats) {
  // Per-connection substreams: the aggregate arrival process is the
  // superposition of `connections` thinned processes, and operands
  // never repeat across connections.
  const std::uint64_t seed =
      util::Rng(config.base.seed)
          .split(0xc0 + static_cast<std::uint64_t>(index))
          .next_u64();
  OperandStream operands(config.base.distribution, config.width, seed);
  LoadGenConfig arrival_config = config.base;
  arrival_config.rate_per_sec =
      config.base.rate_per_sec / std::max(config.connections, 1);
  ArrivalClock arrivals(arrival_config, util::Rng(seed).split(0x715e));

  E2eHistograms e2e;
  if (config.registry != nullptr) {
    e2e.all = &config.registry->histogram("netclient.e2e_ns");
    e2e.steady = &config.registry->histogram("netclient.e2e_steady_ns");
    // The burst histogram only exists for the arrival process that has
    // a burst phase, so scrapes never show a phantom all-zero phase.
    if (config.base.arrival == ArrivalProcess::Bursty) {
      e2e.burst = &config.registry->histogram("netclient.e2e_burst_ns");
    }
  }

  SentAtRing sent_at(config.max_outstanding);
  net::Client client(config.host, config.port);
  // Cork the client: back-to-back sends coalesce into one write(2) per
  // ~64 KiB.  Any pause flushes first (below, and recv() always does),
  // so paced arrivals still leave on schedule — only saturating bursts
  // batch up.
  client.cork(true);
  auto scheduled = Clock::now();
  try {
    for (long long i = 0; i < requests; ++i) {
      if (config.stop != nullptr &&
          config.stop->load(std::memory_order_relaxed)) {
        break;
      }
      scheduled += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(arrivals.next_interval()));
      if (scheduled > Clock::now()) {
        client.flush();
        std::this_thread::sleep_until(scheduled);
      }
      // Hysteresis on the pipelining window: draining to half (rather
      // than popping exactly one response per send) keeps the sender in
      // send-bursts and recv-bursts.  Lock-step send-1/recv-1 would
      // flush the cork every frame — one small write(2) per request —
      // and the syscall rate, not the service, becomes the ceiling.
      if (client.outstanding() >=
          static_cast<std::size_t>(config.max_outstanding)) {
        const auto low = static_cast<std::size_t>(
            std::max(config.max_outstanding / 2, 1));
        while (client.outstanding() > low) {
          count_response(client.recv(), sent_at, e2e, stats);
        }
      }
      auto [a, b] = operands.next();
      const auto t0 = Clock::now();
      const std::uint64_t id = client.send(a, b);
      sent_at.insert(id, t0, arrivals.in_burst());
      ++stats.offered;
    }
    while (client.outstanding() > 0) {
      count_response(client.recv(), sent_at, e2e, stats);
    }
  } catch (const std::exception&) {
    // Broken connection or protocol violation: every unanswered request
    // is an error.  The other connections keep running.
    stats.errors += sent_at.in_flight();
  }
}

}  // namespace

NetLoadGenReport run_load_gen_net(const NetLoadGenConfig& config) {
  if (config.connections < 1) {
    throw std::invalid_argument("NetLoadGenConfig: connections must be >= 1");
  }
  if (config.max_outstanding < 1) {
    throw std::invalid_argument(
        "NetLoadGenConfig: max_outstanding must be >= 1");
  }
  // Probe the server before spawning threads so an unreachable address
  // fails fast with one clean error.
  { net::Client probe(config.host, config.port); }

  const int n = config.connections;
  std::vector<ConnStats> stats(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  const long long per_conn = config.base.requests / n;
  const long long remainder = config.base.requests % n;

  const auto start = Clock::now();
  for (int i = 0; i < n; ++i) {
    const long long share = per_conn + (i < remainder ? 1 : 0);
    threads.emplace_back([&config, i, share, &stats] {
      run_connection(config, i, share, stats[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& t : threads) t.join();

  NetLoadGenReport report;
  for (const ConnStats& s : stats) {
    report.offered += s.offered;
    report.ok += s.ok;
    report.rejected += s.rejected;
    report.errors += s.errors;
    report.recovered += s.recovered;
  }
  report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_rate =
      report.seconds > 0.0 ? report.ok / report.seconds : 0.0;
  if (config.registry != nullptr) {
    config.registry->counter("netclient.ok").increment(report.ok);
    config.registry->counter("netclient.rejected").increment(report.rejected);
    config.registry->counter("netclient.error").increment(report.errors);
  }
  return report;
}

}  // namespace vlsa::workloads
