#pragma once
// Operand distributions for error-rate and latency studies.
//
// The paper's analysis assumes uniform random operands (where the XOR of
// the addenda is uniform).  Real workloads deviate from that, and the
// ACA's error rate is *input-dependent* — a key caveat for deploying
// speculative arithmetic.  This module provides the uniform baseline plus
// several structured distributions that bracket realistic behaviour, from
// benign (small operands) to adversarial (near-complementary operands
// whose propagate strings are long almost surely).

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace vlsa::workloads {

using util::BitVec;
using util::Rng;

/// Available operand distributions.
enum class Distribution {
  Uniform,         ///< both operands i.i.d. uniform (the paper's model)
  SmallOperands,   ///< only the low quarter of the bits is random
  SparseLow,       ///< each bit set with probability 1/8
  SparseHigh,      ///< each bit set with probability 7/8
  Correlated,      ///< b = a + small delta (accumulator-style traffic)
  Complementary,   ///< b ≈ ~a: nearly all positions propagate (adversarial)
  Counter,         ///< a = running counter, b = 1 (increment traffic)
};

std::vector<Distribution> all_distributions();
const char* distribution_name(Distribution d);

/// Replay a recorded operand trace (wraps around at the end) — the hook
/// for feeding captured application traffic into the error-rate benches.
class TraceStream {
 public:
  /// `trace` must be non-empty; all pairs must share `width`.
  TraceStream(std::vector<std::pair<BitVec, BitVec>> trace, int width);

  /// Parse a text trace: one operation per line, "<hex-a> <hex-b>",
  /// '#' comments ignored.  Width is 4x the widest digit count.
  static TraceStream from_text(const std::string& text);

  int width() const { return width_; }
  std::size_t size() const { return trace_.size(); }
  std::pair<BitVec, BitVec> next();

  /// Serialize back to the text format.
  std::string to_text() const;

 private:
  std::vector<std::pair<BitVec, BitVec>> trace_;
  int width_;
  std::size_t cursor_ = 0;
};

/// A reproducible stream of operand pairs of fixed width.
class OperandStream {
 public:
  OperandStream(Distribution distribution, int width, std::uint64_t seed);

  Distribution distribution() const { return distribution_; }
  int width() const { return width_; }

  /// Next operand pair.
  std::pair<BitVec, BitVec> next();

 private:
  Distribution distribution_;
  int width_;
  Rng rng_;
  BitVec counter_;  // state for Distribution::Counter

  BitVec biased_bits(double p_one);
};

}  // namespace vlsa::workloads
