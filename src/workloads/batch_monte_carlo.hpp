#pragma once
// Multithreaded Monte-Carlo driver over the bit-sliced batch engine.
//
// Trials are split into fixed-size shards; shard s draws all of its
// operands from the substream `Rng(seed).split(s)` and accumulates a
// private tally, and the per-shard tallies are reduced in shard order
// after the pool drains.  Both the shard layout and the substreams
// depend only on (trials, seed, lanes) — never on the thread count —
// so the same configuration produces bit-identical tallies on 1, 4, or
// 13 threads (tests/test_parallel.cpp pins this down).  Threads only
// change the wall clock.  The lane count (batch width drawn per RNG
// step) *is* part of the stream: a 256-lane run is distribution-
// identical but not trial-for-trial identical to a 64-lane run, so pin
// `lanes` explicitly when a tally must be reproduced across machines
// with different SIMD tiers.

#include <cstdint>
#include <vector>

#include "sim/isa.hpp"
#include "util/rng.hpp"

namespace vlsa::workloads {

struct BatchMcConfig {
  int width = 64;       ///< operand bits (n)
  int window = 4;       ///< speculation window (k)
  long long trials = 1 << 20;  ///< rounded up to a whole number of batches
  std::uint64_t seed = 0x5eedULL;
  int threads = 1;      ///< worker threads; does not affect the tallies
  bool collect_runs = true;  ///< longest-propagate-run histogram (Table 1)
  bool subtract = false;     ///< exercise the a - b (carry-in = 1) path
  /// Lanes per engine batch: a multiple of 64 in [64, 512], or 0 (the
  /// default) for the detected SIMD lane width (sim::active_lanes()).
  /// Part of the RNG stream — see the file comment.
  int lanes = 0;
};

/// Integer tallies — everything needed for flag/error rates and the
/// longest-run distribution.  Addition of tallies is associative and
/// commutative, but the driver still reduces in shard order so any
/// future non-commutative statistic stays reproducible.
struct BatchMcTally {
  long long trials = 0;
  long long flagged = 0;   ///< ER fired
  long long wrong = 0;     ///< speculative sum != exact sum
  std::vector<long long> run_histogram;  ///< [chain length] -> count;
                                         ///< size width+1 when collected

  void merge(const BatchMcTally& other);
};

struct BatchMcResult {
  BatchMcTally tally;
  int shards = 0;
  int threads = 0;
  int lanes = 0;  ///< lanes per batch the run actually used
  /// Kernel tier the batches resolved to (provenance for sidecars).
  sim::Isa isa = sim::Isa::Scalar;
  double seconds = 0.0;
  double trials_per_sec = 0.0;

  double flag_rate() const;
  double error_rate() const;
};

/// Run the configured experiment.  `trials` is rounded up to a multiple
/// of the lane count; the returned tally reports the actual count.
BatchMcResult run_batch_monte_carlo(const BatchMcConfig& config);

}  // namespace vlsa::workloads
