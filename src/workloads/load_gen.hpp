#pragma once
// Open-loop load generator for the arithmetic service.
//
// Closed-loop drivers (submit, wait, submit) can never expose queueing
// collapse: the producer slows down with the server and the tail looks
// flat.  This generator is open-loop — arrival times come from a
// modeled process (Poisson, or a two-state bursty modulated Poisson),
// independent of how the service is doing; if the generator falls
// behind wall-clock schedule it submits in a catch-up burst rather
// than thinning the offered load.  Combined with the service's bounded
// queue this is what produces honest p99/p999 numbers: under Reject
// overload turns into a measured rejection rate, under Block into
// producer throttling.
//
// Operands come from the operand_stream distributions, so the same
// sweep covers the paper's uniform model and the adversarial
// `Complementary` traffic whose near-certain ER flags congest the
// recovery lane.

#include <atomic>
#include <cstdint>
#include <string>

#include "service/service.hpp"
#include "util/rng.hpp"
#include "workloads/operand_stream.hpp"

namespace vlsa::workloads {

/// Arrival process shapes.
enum class ArrivalProcess {
  Poisson,   ///< exponential interarrivals at `rate_per_sec`
  Bursty,    ///< two-state modulated Poisson (on/off), same mean rate
  Saturate,  ///< no pacing: submit as fast as the service accepts
};

const char* arrival_process_name(ArrivalProcess p);

struct LoadGenConfig {
  Distribution distribution = Distribution::Uniform;
  ArrivalProcess arrival = ArrivalProcess::Poisson;
  double rate_per_sec = 100'000.0;  ///< mean offered rate (not Saturate)
  long long requests = 1 << 16;     ///< total arrivals to offer
  std::uint64_t seed = 0x10adULL;
  /// Bursty shape: the on-state offers `burst_factor * rate_per_sec`
  /// for an expected `burst_fraction` of the time; the off-state rate
  /// is scaled down so the long-run mean stays `rate_per_sec`.
  /// Requires burst_factor * burst_fraction < 1.
  double burst_factor = 8.0;
  double burst_fraction = 0.1;
  double mean_burst_ms = 2.0;  ///< expected on-state sojourn
};

/// Backpressure accounting for one arrival phase.  The two overflow
/// policies push back in different currencies — Reject rejects
/// submissions, Block stalls the producer — and a single aggregate
/// `rejected` count collapsed them (Block always reported 0 and the
/// throttling was invisible).  Each phase now reports both.
struct PhaseStats {
  long long offered = 0;
  long long accepted = 0;
  long long rejected = 0;  ///< Reject policy (and pump-mode overflow)
  /// Wall time spent inside submit() for this phase's arrivals.  Under
  /// Block this is dominated by producer throttling on a full queue;
  /// under Reject it stays near zero.
  double submit_stall_s = 0.0;
};

struct LoadGenReport {
  long long offered = 0;
  long long accepted = 0;
  long long rejected = 0;
  double seconds = 0.0;        ///< submit window + drain (flush)
  double achieved_rate = 0.0;  ///< completed accepted requests / second
  /// Per-phase breakdown: `steady` covers Poisson/Saturate arrivals and
  /// the Bursty off-state; `burst` covers the Bursty on-state (always
  /// zero for the other processes).
  PhaseStats steady;
  PhaseStats burst;
};

/// Drive `service` with the configured arrival stream, then flush it.
/// Completions are consumed by the service's own telemetry — read the
/// latency histograms from `service.registry()` afterwards.
LoadGenReport run_load_gen(service::AdderService& service,
                           const LoadGenConfig& config);

// ---------------------------------------------------------------------
// Network mode: the same arrival processes and operand distributions,
// offered over TCP through net/client.hpp instead of in-process
// submit().  Each connection gets its own thread, client, and
// independent RNG substreams; the offered rate and request budget are
// split evenly across connections, so `base.rate_per_sec` stays the
// AGGREGATE rate.

struct NetLoadGenConfig {
  LoadGenConfig base;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Operand width in bits; must match the server's configured width or
  /// every frame comes back Status::Error.
  int width = 64;
  int connections = 4;
  /// Pipelining cap per connection: when this many requests are
  /// unanswered the sender blocks in recv() before sending more.  Keeps
  /// the bytes parked in socket buffers bounded (a TCP-deadlock guard:
  /// both sides writing with nobody reading) while still letting the
  /// server batch deeply.
  int max_outstanding = 256;
  /// When set, client-observed end-to-end latency lands in histograms
  /// here — `netclient.e2e_ns` (aggregate), `netclient.e2e_steady_ns`,
  /// and, for Bursty arrivals, `netclient.e2e_burst_ns` (phase decided
  /// at send time) — and outcomes in `netclient.{ok,rejected,error}`
  /// counters.  Must outlive the call.
  telemetry::Registry* registry = nullptr;
  /// When set, arrival loops stop offering as soon as it turns true
  /// (the CLI's SIGINT hook); in-flight requests still drain.
  const std::atomic<bool>* stop = nullptr;
};

struct NetLoadGenReport {
  long long offered = 0;
  long long ok = 0;        ///< Status::Ok responses
  long long rejected = 0;  ///< Status::Rejected (server queue full)
  long long errors = 0;    ///< Status::Error or broken connections
  long long recovered = 0; ///< responses with the ER/recovery flag set
  double seconds = 0.0;
  double achieved_rate = 0.0;  ///< ok responses / second
};

/// Drive host:port with `connections` concurrent pipelined clients.
/// Throws net::ConnectionError when the initial connects fail.
NetLoadGenReport run_load_gen_net(const NetLoadGenConfig& config);

}  // namespace vlsa::workloads
