#include "cpu/mini_cpu.hpp"

#include <stdexcept>

namespace vlsa::cpu {

RunStats run_program(const Program& program, const CpuConfig& config) {
  if (config.width < 1 || config.registers < 1) {
    throw std::invalid_argument("run_program: bad configuration");
  }
  core::SpeculativeAdder adder(config.width, config.window);

  RunStats stats;
  stats.registers.assign(static_cast<std::size_t>(config.registers),
                         BitVec(config.width));
  auto reg = [&](int r) -> BitVec& {
    if (r < 0 || r >= config.registers) {
      throw std::out_of_range("run_program: bad register");
    }
    return stats.registers[static_cast<std::size_t>(r)];
  };

  std::size_t pc = 0;
  while (stats.cycles < config.max_cycles) {
    if (pc >= program.size()) {
      throw std::out_of_range("run_program: fell off the program");
    }
    const Instruction& insn = program[pc];
    stats.cycles += 1;        // every instruction takes at least a cycle
    stats.instructions += 1;
    bool jumped = false;
    switch (insn.op) {
      case Opcode::Nop:
        break;
      case Opcode::LoadImm:
        reg(insn.rd) = BitVec::from_u64(config.width, insn.imm);
        break;
      case Opcode::Move:
        reg(insn.rd) = reg(insn.rs1);
        break;
      case Opcode::Add:
      case Opcode::Sub: {
        stats.alu_ops += 1;
        const BitVec& a = reg(insn.rs1);
        const BitVec& b = reg(insn.rs2);
        if (config.speculative_alu) {
          const auto out =
              insn.op == Opcode::Add ? adder.add(a, b) : adder.sub(a, b);
          if (out.flagged) {
            stats.flagged_alu_ops += 1;
            stats.cycles += config.recovery_cycles;  // VALID=0 stall
          }
          reg(insn.rd) = out.exact;  // recovery guarantees exactness
        } else {
          reg(insn.rd) = insn.op == Opcode::Add ? a + b : a - b;
        }
        break;
      }
      case Opcode::Xor:
        reg(insn.rd) = reg(insn.rs1) ^ reg(insn.rs2);
        break;
      case Opcode::And:
        reg(insn.rd) = reg(insn.rs1) & reg(insn.rs2);
        break;
      case Opcode::Shl1:
        reg(insn.rd) = reg(insn.rs1).shl(1);
        break;
      case Opcode::Dec:
        // Dedicated decrementer: exact, single cycle, no speculation.
        reg(insn.rd) =
            reg(insn.rs1) - BitVec::from_u64(config.width, 1);
        break;
      case Opcode::Bnez:
        if (!reg(insn.rs1).is_zero()) {
          pc = static_cast<std::size_t>(insn.target);
          jumped = true;
        }
        break;
      case Opcode::Halt:
        stats.halted = true;
        stats.cpi = stats.instructions == 0
                        ? 0.0
                        : static_cast<double>(stats.cycles) /
                              static_cast<double>(stats.instructions);
        return stats;
    }
    if (!jumped) pc += 1;
  }
  stats.cpi = stats.instructions == 0
                  ? 0.0
                  : static_cast<double>(stats.cycles) /
                        static_cast<double>(stats.instructions);
  return stats;  // halted == false: budget exhausted
}

Program kernel_sum_loop(std::uint64_t n) {
  // r1 = accumulator, r2 = i, r3 = 1; loop: r1 += r2; r2 -= r3 (through
  // the speculative ALU — deliberately); bnez r2.
  return Program{
      {Opcode::LoadImm, 1, 0, 0, 0, 0},
      {Opcode::LoadImm, 2, 0, 0, n, 0},
      {Opcode::LoadImm, 3, 0, 0, 1, 0},
      /*3:*/ {Opcode::Add, 1, 1, 2, 0, 0},
      {Opcode::Sub, 2, 2, 3, 0, 0},
      {Opcode::Bnez, 0, 2, 0, 0, 3},
      {Opcode::Halt, 0, 0, 0, 0, 0},
  };
}

Program kernel_fibonacci(int n) {
  // r1 = F(k), r2 = F(k-1), r4 = counter.
  return Program{
      {Opcode::LoadImm, 1, 0, 0, 1, 0},
      {Opcode::LoadImm, 2, 0, 0, 0, 0},
      {Opcode::LoadImm, 3, 0, 0, 1, 0},
      {Opcode::LoadImm, 4, 0, 0, static_cast<std::uint64_t>(n), 0},
      /*4:*/ {Opcode::Add, 5, 1, 2, 0, 0},   // r5 = F(k) + F(k-1)
      {Opcode::Move, 2, 1, 0, 0, 0},
      {Opcode::Move, 1, 5, 0, 0, 0},
      {Opcode::Dec, 4, 4, 0, 0, 0},          // loop control off the ALU
      {Opcode::Bnez, 0, 4, 0, 0, 4},
      {Opcode::Halt, 0, 0, 0, 0, 0},
  };
}

Program kernel_mixed(std::uint64_t iterations) {
  // Weyl-sequence accumulator: r2 walks a golden-ratio arithmetic
  // progression (uniform-looking addends) and r1 accumulates; loop
  // control goes through the dedicated decrementer, so only the
  // benign-operand adds exercise the speculative ALU.
  return Program{
      {Opcode::LoadImm, 1, 0, 0, 0, 0},
      {Opcode::LoadImm, 2, 0, 0, 0x2545f4914f6cdd1dULL, 0},
      {Opcode::LoadImm, 3, 0, 0, 1, 0},
      {Opcode::LoadImm, 4, 0, 0, iterations, 0},
      {Opcode::LoadImm, 6, 0, 0, 0x9e3779b97f4a7c15ULL, 0},
      /*5:*/ {Opcode::Add, 2, 2, 6, 0, 0},  // weyl step
      {Opcode::Add, 1, 1, 2, 0, 0},         // accumulate
      {Opcode::Dec, 4, 4, 0, 0, 0},         // loop control off the ALU
      {Opcode::Bnez, 0, 4, 0, 0, 5},
      {Opcode::Halt, 0, 0, 0, 0, 0},
  };
}

}  // namespace vlsa::cpu
