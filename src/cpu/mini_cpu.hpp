#pragma once
// A minimal in-order scalar core with a pluggable ALU adder — the
// "inside a processor" deployment the paper sketches in Sec. 4.2: ACA
// additions and the error signal are produced in one (short) cycle; on
// the rare error the pipeline stalls for the recovery cycles.
//
// The architectural contract is unchanged (recovery always yields the
// exact result), so an exact-ALU run and a VLSA-ALU run of the same
// program retire identical register states; only the cycle accounting —
// and, crucially, the cycle *time* — differ.

#include <cstdint>
#include <string>
#include <vector>

#include "core/aca.hpp"
#include "util/bitvec.hpp"

namespace vlsa::cpu {

using util::BitVec;

enum class Opcode {
  Nop,
  LoadImm,   ///< rd <- imm
  Move,      ///< rd <- rs1
  Add,       ///< rd <- rs1 + rs2   (through the ALU adder)
  Sub,       ///< rd <- rs1 - rs2   (through the ALU adder)
  Xor,       ///< rd <- rs1 ^ rs2   (carry-free, never stalls)
  And,       ///< rd <- rs1 & rs2
  Shl1,      ///< rd <- rs1 << 1
  Dec,       ///< rd <- rs1 - 1 via a dedicated small decrementer (loop
             ///  control hardware; never touches the speculative ALU)
  Bnez,      ///< if rs1 != 0 jump to `target`
  Halt,
};

struct Instruction {
  Opcode op = Opcode::Nop;
  int rd = 0;
  int rs1 = 0;
  int rs2 = 0;
  std::uint64_t imm = 0;
  int target = 0;  ///< Bnez destination (instruction index)
};

using Program = std::vector<Instruction>;

/// Machine configuration.
struct CpuConfig {
  int width = 64;          ///< register/datapath width
  int registers = 16;
  bool speculative_alu = false;  ///< false: exact adder, 1 cycle per op
  int window = 12;               ///< ACA window when speculative
  int recovery_cycles = 2;       ///< extra cycles on a flagged ALU op
  long long max_cycles = 10'000'000;
};

/// Result of a program run.
struct RunStats {
  long long cycles = 0;
  long long instructions = 0;
  long long alu_ops = 0;         ///< Add/Sub through the adder
  long long flagged_alu_ops = 0; ///< ALU ops that took the recovery path
  bool halted = false;           ///< false: hit max_cycles
  double cpi = 0.0;
  std::vector<BitVec> registers; ///< final architectural state
};

/// Execute `program` from instruction 0 until Halt (or max_cycles).
RunStats run_program(const Program& program, const CpuConfig& config);

// ----- ready-made kernels for the benches/tests -----

/// sum += i for i = n..1, with the loop counter decremented *through the
/// ALU* — deliberately exhibits the counter-decrement pitfall (x - 1 on a
/// small x always flags).  Result in r1.
Program kernel_sum_loop(std::uint64_t n);

/// Fibonacci: r1 = F(n) mod 2^width (dependent adds).
Program kernel_fibonacci(int n);

/// Random-walk accumulator: XOR-mixed adds over a seeded LCG-in-registers
/// (stress: operands with varied propagate structure); result in r1.
Program kernel_mixed(std::uint64_t iterations);

}  // namespace vlsa::cpu
