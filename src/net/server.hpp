#pragma once
// Network front-end of the arithmetic service — a non-blocking,
// edge-triggered epoll TCP server speaking the net/protocol.hpp binary
// framing, feeding decoded requests straight into an AdderService.
//
// Thread model: ONE acceptor thread (poll on the listen socket, so
// shutdown never hangs in accept) plus N event-loop threads.  Each
// accepted connection is pinned to one loop round-robin; all of its
// socket I/O, decoding, and epoll bookkeeping happen on that loop
// thread.  Completions arrive on *service* threads (dispatcher fast
// path or recovery lane): the completion callback encodes the response
// into the connection's pending buffer and wakes the owning loop
// through an eventfd — the loop does the actual write.  Nothing in the
// request path ever blocks an event loop: submission into the service
// uses try-semantics only (AdderService::try_submit_callback).
//
// Backpressure maps the service's overflow policy onto the socket:
//
//   Block  — a full queue parks the *decoded* request on the
//            connection and the loop stops reading that socket; bytes
//            back up in kernel buffers, TCP flow control reaches the
//            client, and the loop retries on its next tick.  No frame
//            is ever dropped.
//   Reject — a full queue answers immediately with a
//            Status::Rejected frame (counted in net.frames_rejected
//            and service.rejected); the client decides what to retry.
//
// A protocol violation (bad magic, hostile lengths — see
// net/protocol.hpp) poisons the connection's decoder and tears the
// connection down; `net.decode_errors` counts them and the CI
// net-smoke job asserts the count stays zero under a healthy client.
//
// Graceful shutdown (`shutdown()`, also the destructor): stop
// accepting, then lame-duck the existing connections — frames already
// on the wire (including a half-close burst) are still read and
// served, every in-flight request completes, every response flushes,
// and each connection is closed as soon as it goes quiet (nothing in
// flight or buffered in either direction) — bounded by
// `ServerConfig::drain_timeout`, after which stragglers are
// force-closed.  `vlsa_tool serve --listen` wires SIGINT/SIGTERM to
// exactly this.
//
// Observability: net.* counters/gauges/histograms land in the same
// telemetry::Registry as the service's metrics (so one Prometheus
// scrape covers the whole socket path), and the request path emits
// net-accept/net-read/net-decode/net-dispatch/net-write/net-close
// trace events whenever a trace::TraceSession is active.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "service/service.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace vlsa::net {

struct ServerConfig {
  /// Listen address.  Port 0 binds an ephemeral port — read the real
  /// one back from Server::port() (the CI smoke test and the loopback
  /// tests depend on this).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Event-loop threads (>= 1); the acceptor is its own thread.
  int event_threads = 2;
  int listen_backlog = 128;
  /// Frame limits for every connection's decoder.
  DecoderLimits decoder;
  /// Bytes per read(2) call when draining a socket.
  std::size_t read_chunk = std::size_t{64} * 1024;
  /// A connection whose un-flushed response bytes exceed this is a
  /// slow (or hostile) reader and is closed — the cap that keeps a
  /// misbehaving client from ballooning server memory.
  std::size_t max_write_buffer = std::size_t{4} << 20;
  /// How long shutdown() waits for in-flight requests and un-flushed
  /// responses before force-closing the stragglers.
  std::chrono::milliseconds drain_timeout{5000};
};

namespace detail {
class EventLoop;
struct Metrics;
}  // namespace detail

class Server {
 public:
  /// Binds and starts serving immediately.  `service` must outlive the
  /// server and must run with workers >= 1 (pump mode has no consumer
  /// to drain the queue, so every socket would stall forever).  Metrics
  /// are registered in `service.registry()`.  Throws std::runtime_error
  /// when the socket cannot be bound.
  Server(const ServerConfig& config, service::AdderService& service);

  /// Calls shutdown().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  std::uint16_t port() const { return port_; }

  /// "host:port" of the listening socket.
  std::string address() const;

  /// Graceful stop: close the listen socket, drain in-flight requests
  /// and write buffers (up to drain_timeout), close every connection,
  /// join all threads.  Idempotent and thread-safe; safe to call from
  /// a signal-watcher thread.
  void shutdown();

  /// Connections currently registered across all loops (approximate
  /// while running; exact once quiesced).
  long long active_connections() const;

  /// True once graceful drain has begun (shutdown() entered) — the
  /// admin plane's /readyz flips not-ready on exactly this edge, before
  /// a single connection is closed, so load balancers stop sending new
  /// work while the lame duck finishes the old.
  bool draining() const { return stopping_.load(std::memory_order_acquire); }

 private:
  void acceptor_loop();

  ServerConfig config_;
  service::AdderService& service_;
  std::shared_ptr<detail::Metrics> metrics_;
  std::vector<std::unique_ptr<detail::EventLoop>> loops_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_conn_{0};
  util::Mutex shutdown_mutex_;
  bool shutdown_done_ GUARDED_BY(shutdown_mutex_) = false;
};

}  // namespace vlsa::net
