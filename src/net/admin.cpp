#include "net/admin.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace vlsa::net {

// -------------------------------------------------------------------
// HttpRequestParser

HttpRequestParser::HttpRequestParser(std::size_t max_bytes)
    : max_bytes_(max_bytes) {}

HttpRequestParser::Result HttpRequestParser::fail(int status,
                                                  const std::string& message) {
  error_status_ = status;
  error_ = message;
  buffer_.clear();
  return Result::Error;
}

HttpRequestParser::Result HttpRequestParser::feed(const char* data,
                                                  std::size_t size) {
  if (poisoned()) return Result::Error;
  buffer_.append(data, size);
  if (buffer_.size() > max_bytes_) {
    return fail(431, "request head exceeds " + std::to_string(max_bytes_) +
                         " bytes");
  }
  // The head ends at CRLFCRLF (bare LFLF tolerated — curl never sends
  // it, humans with netcat do).
  std::size_t head_end = buffer_.find("\r\n\r\n");
  std::size_t term = 4;
  if (head_end == std::string::npos) {
    head_end = buffer_.find("\n\n");
    term = 2;
  }
  if (head_end == std::string::npos) return Result::NeedMore;
  const std::string head = buffer_.substr(0, head_end + term);

  // Request line: METHOD SP TARGET SP HTTP/1.x
  const std::size_t line_end = head.find_first_of("\r\n");
  std::string line = head.substr(0, line_end);
  for (const char c : line) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return fail(400, "control byte in request line");
    }
  }
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return fail(400, "malformed request line");
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() ||
      target.find(' ') != std::string::npos) {
    return fail(400, "malformed request line");
  }
  if (version.rfind("HTTP/1.", 0) != 0) {
    return fail(400, "unsupported protocol version");
  }
  if (target[0] != '/') return fail(400, "request target must be absolute");

  request_ = AdminRequest();
  request_.method = method;
  const std::size_t q = target.find('?');
  request_.path = target.substr(0, q);
  if (q != std::string::npos) request_.query = target.substr(q + 1);
  buffer_.erase(0, head_end + term);
  return Result::Request;
}

// -------------------------------------------------------------------
// AdminServer

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string render_response(const AdminResponse& r) {
  std::string out;
  out.reserve(r.body.size() + 128);
  out += "HTTP/1.1 " + std::to_string(r.status) + " " +
         status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

}  // namespace

struct AdminServer::Connection {
  int fd = -1;
  HttpRequestParser parser;
  std::string outbuf;
  std::size_t out_off = 0;
  bool responding = false;  ///< response queued; stop reading

  explicit Connection(int f, std::size_t max_bytes)
      : fd(f), parser(max_bytes) {}
};

AdminServer::AdminServer(const AdminConfig& config) : config_(config) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw std::runtime_error("admin: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("admin: bad address '" + config_.host +
                             "' (IPv4 dotted quad expected)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("admin: bind(" + config_.host + ":" +
                             std::to_string(config_.port) +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("admin: listen() failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("admin: eventfd() failed");
  }
  thread_ = std::thread([this] { loop(); });
}

AdminServer::~AdminServer() { shutdown(); }

std::string AdminServer::address() const {
  return config_.host + ":" + std::to_string(port_);
}

void AdminServer::handle(const std::string& path, Handler handler) {
  util::LockGuard lock(mutex_);
  handlers_[path] = std::move(handler);
}

void AdminServer::shutdown() {
  {
    util::LockGuard lock(mutex_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

AdminResponse AdminServer::dispatch(const AdminRequest& request) {
  if (request.method != "GET") {
    return AdminResponse{405, "text/plain; charset=utf-8",
                         "only GET is supported\n"};
  }
  Handler handler;
  {
    util::LockGuard lock(mutex_);
    const auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    return AdminResponse{404, "text/plain; charset=utf-8",
                         "no such endpoint: " + request.path + "\n"};
  }
  try {
    return handler(request);
  } catch (const std::exception& e) {
    return AdminResponse{500, "text/plain; charset=utf-8",
                         std::string("handler failed: ") + e.what() + "\n"};
  }
}

void AdminServer::serve_connection(Connection& conn) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      const auto result =
          conn.parser.feed(chunk, static_cast<std::size_t>(n));
      if (result == HttpRequestParser::Result::NeedMore) continue;
      AdminResponse response;
      if (result == HttpRequestParser::Result::Request) {
        response = dispatch(conn.parser.request());
      } else {
        response.status = conn.parser.error_status();
        response.body = conn.parser.error() + "\n";
      }
      conn.outbuf = render_response(response);
      conn.out_off = 0;
      conn.responding = true;
      return;
    }
    if (n == 0) {  // EOF before a complete request: just close
      conn.outbuf.clear();
      conn.out_off = 0;
      conn.responding = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.outbuf.clear();
    conn.out_off = 0;
    conn.responding = true;  // tear down on next pass
    return;
  }
}

void AdminServer::loop() {
  std::vector<std::unique_ptr<Connection>> conns;
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{wake_fd_, POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& conn : conns) {
      short events = 0;
      if (!conn->responding) events |= POLLIN;
      if (conn->responding && conn->out_off < conn->outbuf.size()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{conn->fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      // shutdown() poked the eventfd: close everything and exit.
      for (const auto& conn : conns) ::close(conn->fd);
      return;
    }
    // Connections accepted below were not part of this poll round;
    // only the first `polled` entries have a pollfd at fds[i + 2].
    const std::size_t polled = conns.size();
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        if (conns.size() >= config_.max_connections) {
          ::close(fd);  // admin plane, not a data plane
          continue;
        }
        conns.push_back(std::make_unique<Connection>(
            fd, config_.max_request_bytes));
      }
    }
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = *conns[i];
      const short revents = fds[i + 2].revents;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          !conn.responding) {
        conn.responding = true;  // drop it below
      }
      if ((revents & POLLIN) != 0 && !conn.responding) {
        serve_connection(conn);
      }
      if (conn.responding && conn.out_off < conn.outbuf.size() &&
          (revents & (POLLOUT | POLLIN)) != 0) {
        // One response per connection (Connection: close): write until
        // done or EAGAIN, then the poll above watches POLLOUT.
        while (conn.out_off < conn.outbuf.size()) {
          const ssize_t n =
              ::write(conn.fd, conn.outbuf.data() + conn.out_off,
                      conn.outbuf.size() - conn.out_off);
          if (n > 0) {
            conn.out_off += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          conn.out_off = conn.outbuf.size();  // peer gone; give up
          break;
        }
      }
      if (conn.responding && conn.out_off >= conn.outbuf.size()) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Connection>& c) {
                                 return c->fd < 0;
                               }),
                conns.end());
  }
}

}  // namespace vlsa::net
