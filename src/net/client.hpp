#pragma once
// C++ client for the VLSA network front-end (net/server.hpp) — a
// deliberately simple blocking-socket counterpart to the server's epoll
// machinery.  Two usage styles:
//
//   * Blocking RPC: `call(a, b)` sends one request and waits for its
//     response.  Other responses arriving first (the server completes
//     in service order, not submission order — a recovery-lane detour
//     reorders) are stashed and handed out by later recv()/call()s.
//   * Pipelined: `send(a, b)` enqueues-and-writes immediately and
//     returns the request id; `recv()` blocks for the next response in
//     arrival order.  Keeping a bounded number of requests outstanding
//     (workloads/load_gen.cpp uses this) overlaps client think-time,
//     network, and server batching — the same motivation as the
//     service's submit_many.
//
// The client shares the server's FrameDecoder, so it applies the same
// strict validation to everything the server sends back; a protocol
// violation throws ProtocolError and poisons the connection.
//
// Thread model: NOT thread-safe.  One Client per thread (the load
// generator runs one per connection); wrap externally to share.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "util/bitvec.hpp"

namespace vlsa::net {

/// The server closed the connection (or was never reachable).
class ConnectionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The peer violated the wire protocol; the connection is unusable.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  /// Connect (blocking) to host:port.  IPv4 dotted quad, same as
  /// ServerConfig::host.  Throws ConnectionError on failure.
  Client(const std::string& host, std::uint16_t port,
         DecoderLimits limits = {});
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Pipelined submit: frames and writes one request, returns its id
  /// (monotone per client).  `window` 0 asks for the server default.
  /// Throws ConnectionError when the socket breaks.
  std::uint64_t send(const util::BitVec& a, const util::BitVec& b,
                     int window = 0);

  /// Send batching.  Uncorked (the default), every send() is one
  /// write(2).  Corked, frames accumulate in the send buffer and hit
  /// the socket only when the buffer passes ~64 KiB or at the next
  /// flush point — recv()/call() (before blocking for a response),
  /// finish_sending(), and close() all flush first, so a corked client
  /// can never deadlock waiting for a response to bytes it kept.  For
  /// pipelined callers this collapses the per-request syscall into one
  /// write per tens of frames (the load generator corks; on a loopback
  /// saturation run the syscall rate is the bottleneck).
  void cork(bool on);

  /// Write out any corked frames now.  No-op when empty or uncorked.
  void flush();

  /// Next response in arrival order (stashed responses first).  Blocks.
  /// Throws ConnectionError on EOF with requests outstanding,
  /// ProtocolError on a framing violation.
  ResponseFrame recv();

  /// Blocking RPC: send then wait for THIS request's response; responses
  /// for other outstanding requests are stashed for later recv()/call().
  ResponseFrame call(const util::BitVec& a, const util::BitVec& b,
                     int window = 0);

  /// Requests sent but not yet received.
  std::size_t outstanding() const { return outstanding_; }

  /// Half-close: tell the server no more requests are coming (it will
  /// finish in-flight work, flush responses, then close).  recv() keeps
  /// working for outstanding responses.
  void finish_sending();

  /// Full close (also the destructor).  Idempotent.
  void close();

  bool connected() const { return fd_ >= 0; }

 private:
  ResponseFrame read_one();  ///< pull the next response off the wire

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::size_t outstanding_ = 0;
  bool corked_ = false;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> sendbuf_;  ///< per-send scratch; corked
                                       ///< frames accumulate here
  std::vector<std::uint8_t> readbuf_;  ///< scratch, reused per read
  std::unordered_map<std::uint64_t, ResponseFrame> stashed_;
};

}  // namespace vlsa::net
