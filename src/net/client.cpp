#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "trace/trace.hpp"

namespace vlsa::net {

namespace {

// Corked-mode flush threshold: enough frames per write(2) that the
// syscall stops being the per-request cost, small enough that the
// kernel socket buffer absorbs it without blocking mid-burst.
constexpr std::size_t kCorkFlushBytes = std::size_t{64} * 1024;

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ConnectionError(std::string("net: write failed: ") +
                          std::strerror(errno));
  }
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port,
               DecoderLimits limits)
    : decoder_(limits), readbuf_(64 * 1024) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw ConnectionError("net: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ConnectionError("net: bad address '" + host +
                          "' (IPv4 dotted quad expected)");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw ConnectionError("net: connect(" + host + ":" +
                          std::to_string(port) +
                          ") failed: " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      outstanding_(other.outstanding_),
      corked_(other.corked_),
      decoder_(std::move(other.decoder_)),
      sendbuf_(std::move(other.sendbuf_)),
      readbuf_(std::move(other.readbuf_)),
      stashed_(std::move(other.stashed_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    outstanding_ = other.outstanding_;
    corked_ = other.corked_;
    decoder_ = std::move(other.decoder_);
    sendbuf_ = std::move(other.sendbuf_);
    readbuf_ = std::move(other.readbuf_);
    stashed_ = std::move(other.stashed_);
  }
  return *this;
}

std::uint64_t Client::send(const util::BitVec& a, const util::BitVec& b,
                           int window) {
  if (fd_ < 0) throw ConnectionError("net: send on closed client");
  if (a.width() != b.width()) {
    throw std::invalid_argument("net: operand widths differ");
  }
  const std::uint64_t id = next_id_++;
  // The client owns the distributed-tracing sampling decision: a
  // sampled request carries kFlagTraceSampled on the wire, so the
  // server records its spans under the same request id and echoes the
  // bit back for the client-recv span (docs/observability.md).
  const bool sampled = trace::enabled() && trace::sample();
  const std::uint64_t t0 = sampled ? trace::now_ns() : 0;
  if (!corked_) sendbuf_.clear();
  encode_request(id, window, a, b, sendbuf_,
                 sampled ? kFlagTraceSampled : std::uint8_t{0});
  ++outstanding_;
  if (corked_) {
    if (sendbuf_.size() >= kCorkFlushBytes) flush();
  } else {
    write_all(fd_, sendbuf_.data(), sendbuf_.size());
  }
  if (sampled) {
    trace::EventArgs args;
    args.req = id;
    args.has_req = true;
    trace::emit_complete(trace::EventName::kClientSend, t0, args);
  }
  return id;
}

void Client::cork(bool on) {
  if (corked_ && !on) flush();
  corked_ = on;
}

void Client::flush() {
  if (fd_ < 0 || sendbuf_.empty() || !corked_) return;
  write_all(fd_, sendbuf_.data(), sendbuf_.size());
  sendbuf_.clear();
}

ResponseFrame Client::recv() {
  if (!stashed_.empty()) {
    auto it = stashed_.begin();
    ResponseFrame frame = std::move(it->second);
    stashed_.erase(it);
    return frame;
  }
  return read_one();
}

ResponseFrame Client::call(const util::BitVec& a, const util::BitVec& b,
                           int window) {
  const std::uint64_t id = send(a, b, window);
  const auto it = stashed_.find(id);  // cannot hit, but keeps the
  if (it != stashed_.end()) {         // invariant obvious
    ResponseFrame frame = std::move(it->second);
    stashed_.erase(it);
    return frame;
  }
  for (;;) {
    ResponseFrame frame = read_one();
    if (frame.id == id) return frame;
    stashed_.emplace(frame.id, std::move(frame));
  }
}

ResponseFrame Client::read_one() {
  if (fd_ < 0) throw ConnectionError("net: recv on closed client");
  flush();  // never block on responses to frames we kept buffered
  const bool tracing = trace::enabled();
  const std::uint64_t t0 = tracing ? trace::now_ns() : 0;
  RequestFrame request;
  ResponseFrame response;
  for (;;) {
    const auto result = decoder_.next(request, response);
    if (result == FrameDecoder::Result::Frame) {
      if (decoder_.type() != FrameType::Response) {
        throw ProtocolError("net: server sent a request frame");
      }
      if (outstanding_ > 0) --outstanding_;
      // The span covers blocking-read through decode of a response the
      // server marked trace-sampled; `req` joins it to the client-send
      // and server-side spans in a merged trace.
      if (tracing && (response.flags & kFlagTraceSampled) != 0) {
        trace::EventArgs args;
        args.req = response.id;
        args.has_req = true;
        args.er = (response.flags & kFlagRecovered) != 0 ? 1 : 0;
        trace::emit_complete(trace::EventName::kClientRecv, t0, args);
      }
      return response;
    }
    if (result == FrameDecoder::Result::Error) {
      throw ProtocolError("net: " + decoder_.error());
    }
    const ssize_t n = ::read(fd_, readbuf_.data(), readbuf_.size());
    if (n > 0) {
      decoder_.feed(readbuf_.data(), static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      throw ConnectionError("net: server closed the connection with " +
                            std::to_string(outstanding_) +
                            " request(s) outstanding");
    }
    if (errno == EINTR) continue;
    throw ConnectionError(std::string("net: read failed: ") +
                          std::strerror(errno));
  }
}

void Client::finish_sending() {
  if (fd_ < 0) return;
  flush();
  ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    try {
      flush();
    } catch (const ConnectionError&) {
      // Closing anyway; a peer that already went away is fine.
    }
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace vlsa::net
