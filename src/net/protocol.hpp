#pragma once
// Wire protocol of the VLSA network front-end — a compact
// length-prefixed binary framing, plus an incremental decoder built to
// survive partial reads and hostile bytes.
//
// Every frame is a fixed 32-byte little-endian header followed by a
// payload whose length the header declares:
//
//   offset  size  field
//   0       4     magic          0x41534C56 ("VLSA" as LE bytes)
//   4       1     version        kVersion (1)
//   5       1     type           1 = request, 2 = response
//   6       1     op / status    request: Op; response: Status
//   7       1     flags          response: bit0 ER/recovery, bit1 the
//                                speculative one-cycle sum was wrong;
//                                bit2 (both directions) trace-sampled
//   8       8     request id     client-chosen, echoed verbatim
//   16      2     width          operand width in bits
//   18      2     window         speculation window k (request; 0 means
//                                "server default"; response echoes the
//                                window actually used)
//   20      4     payload bytes  length of everything after the header
//   24      8     latency ticks  response: modeled service cycles
//                                (queue wait + dispatch + recovery);
//                                request: must be 0
//
// Request payload: operand a then operand b, each ceil(width/8) bytes,
// little-endian (BitVec limb order).  Response payload: the sum, same
// encoding, present only for Status::Ok.
//
// The decoder is a two-state machine (header -> payload) over an
// internal append buffer, so a frame arriving one byte at a time costs
// one state transition per boundary, never a re-parse.  Validation is
// strict and *fatal*: a bad magic, unknown version/type/op/status, an
// out-of-range width, a payload length that disagrees with the header,
// or nonzero bits above `width` in an operand all poison the decoder
// (framing is lost — the connection must be torn down).  Limits are
// explicit (DecoderLimits::max_width bounds the largest frame a peer
// can make us buffer), so hostile input can neither overflow nor
// balloon memory.  tests/test_net.cpp drives all of this, including
// under ASan.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace vlsa::net {

inline constexpr std::uint32_t kMagic = 0x41534C56;  // "VLSA" little-endian
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;

enum class FrameType : std::uint8_t { Request = 1, Response = 2 };

/// Operations a request can ask for.  One today; the byte exists so the
/// protocol does not need a version bump to grow.
enum class Op : std::uint8_t { Add = 0 };

enum class Status : std::uint8_t {
  Ok = 0,        ///< payload carries the exact sum
  Rejected = 1,  ///< service queue full under the Reject policy
  Error = 2,     ///< server-side failure (width mismatch, shutdown)
};

/// Response flag bits.
inline constexpr std::uint8_t kFlagRecovered = 1;  ///< ER fired
inline constexpr std::uint8_t kFlagWrong = 2;      ///< speculation was wrong

/// Valid on requests AND responses: the sender sampled this frame into
/// an active trace session.  The client's sampling decision propagates
/// to the server (which records its spans under the same request id),
/// and the server echoes the bit so the client knows its `client-recv`
/// span completes a distributed trace (docs/observability.md).
inline constexpr std::uint8_t kFlagTraceSampled = 4;

/// Bytes one operand of `width` bits occupies on the wire.
inline std::size_t operand_bytes(int width) {
  return static_cast<std::size_t>((width + 7) / 8);
}

struct RequestFrame {
  std::uint64_t id = 0;
  Op op = Op::Add;
  std::uint8_t flags = 0;  ///< kFlagTraceSampled is the only valid bit
  int width = 0;           ///< operand width in bits
  int window = 0;          ///< requested k; 0 = server default
  util::BitVec a, b;
};

struct ResponseFrame {
  std::uint64_t id = 0;
  Status status = Status::Ok;
  std::uint8_t flags = 0;
  int width = 0;
  int window = 0;                   ///< k the server actually used
  std::uint64_t latency_ticks = 0;  ///< modeled service cycles
  util::BitVec sum;                 ///< empty unless status == Ok
};

/// Serialize a frame, appending to `out` (append, not overwrite, so a
/// pipelined sender batches frames into one buffer / one write).
void encode_request(const RequestFrame& frame, std::vector<std::uint8_t>& out);
void encode_response(const ResponseFrame& frame,
                     std::vector<std::uint8_t>& out);

/// Request encode from parts — what Client::send uses on its hot path
/// so a per-request RequestFrame (two operand copies) never exists.
void encode_request(std::uint64_t id, int window, const util::BitVec& a,
                    const util::BitVec& b, std::vector<std::uint8_t>& out,
                    std::uint8_t flags = 0);

struct DecoderLimits {
  /// Largest operand width a peer may name; bounds the payload (and so
  /// the decoder's buffered bytes) at 2 * operand_bytes(max_width).
  int max_width = 4096;
};

/// Incremental frame decoder.  Feed it raw bytes as they arrive; pull
/// frames out until it reports NeedMore.  After Error the decoder is
/// poisoned — every later call returns Error and the connection owning
/// it must close (byte framing is unrecoverable).
class FrameDecoder {
 public:
  explicit FrameDecoder(DecoderLimits limits = {});

  enum class Result {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< one frame decoded (see type())
    Error,     ///< protocol violation; see error()
  };

  /// Append raw bytes (e.g. straight from read(2)).
  void feed(const std::uint8_t* data, std::size_t size);

  /// Try to decode the next frame.  On Frame, `type()` says which of
  /// `request` / `response` was filled in.
  Result next(RequestFrame& request, ResponseFrame& response);

  FrameType type() const { return type_; }
  const std::string& error() const { return error_; }
  bool poisoned() const { return !error_.empty(); }

  /// Bytes fed but not yet consumed by a decoded frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Result fail(const std::string& message);
  void compact();

  DecoderLimits limits_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  FrameType type_ = FrameType::Request;
  std::string error_;
};

}  // namespace vlsa::net
